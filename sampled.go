package morphcache

import (
	"fmt"

	"morphcache/internal/baselines/dsr"
	"morphcache/internal/baselines/pipp"
	"morphcache/internal/core"
	"morphcache/internal/hierarchy"
	"morphcache/internal/sampled"
	"morphcache/internal/sim"
	"morphcache/internal/topology"
)

// SampledConfig configures sampled simulation (see internal/sampled and
// DESIGN.md §13): phase detection over cheap per-epoch signatures,
// deterministic k-means clustering of the measured epochs into phases, one
// simulated representative window per phase, and weighted reconstruction of
// the full-run metrics. Attach one to Config.Sampled to switch a run to
// sampled mode. The zero value of every field selects the defaults.
type SampledConfig = sampled.Options

// SampledReport summarizes a sampled run's phases and reconstruction (with
// heuristic per-metric error bars); Result.SampledReport carries it.
type SampledReport = sampled.Report

// DefaultSampledConfig returns the default sampling parameters — the
// configuration the -run sampled validation experiment gates at ≤ 3%
// reconstruction error in CI.
func DefaultSampledConfig() SampledConfig { return sampled.Defaults() }

// FastSampledConfig returns the aggressive benchmark preset: fewer phases,
// a single warmup epoch per window, and window epochs truncated to the
// given cycle count (0 keeps full epochs). Lower accuracy than
// DefaultSampledConfig; used by BenchmarkBatchSweepSampled.
func FastSampledConfig(windowCycles uint64) SampledConfig {
	o := sampled.Fast()
	o.WindowCycles = windowCycles
	return o
}

// runSampled executes one sampled run: it profiles the workload (cached
// across the batch — profiles are policy-independent), clusters the
// measured epochs, and simulates one representative window per phase on a
// fresh target. policy is the RunSpec policy vocabulary; staticSpec is the
// "(x:y:z)" topology for static runs.
func runSampled(c Config, w Workload, policy, staticSpec string) (*Result, error) {
	f := sampled.Factories{
		NewTarget: func() (sim.Target, error) { return c.sampledTarget(policy, staticSpec) },
		NewSources: func() ([]sim.Source, error) {
			gens, err := w.Generators(c)
			if err != nil {
				return nil, err
			}
			return sim.FromGenerators(gens), nil
		},
	}
	key := fmt.Sprintf("%s|c%d|x%d|cy%d", w.String(), c.Cores, c.Scale, c.EpochCycles)
	rr, err := sampled.Run(c.simConfig(), *c.Sampled, key, f)
	if err != nil {
		return nil, err
	}
	res := fromRun(rr.Run)
	res.SampledReport = rr.Report
	if c.Telemetry {
		res.Telemetry = rr.Log
	}
	return res, nil
}

// sampledTarget builds a fresh simulation target for one representative
// window. Each window gets its own hierarchy and controller — windows share
// nothing mutable, exactly like batch jobs — so every window starts from
// the same initial state the full run starts from.
func (c Config) sampledTarget(policy, staticSpec string) (sim.Target, error) {
	p := c.Params()
	switch policy {
	case "morph", "morph-nodegrade":
		p.ChargeRemote = true
		sys, err := hierarchy.New(p, topology.AllPrivate(p.Cores))
		if err != nil {
			return nil, err
		}
		ctrl := core.New(c.Morph)
		if policy == "morph-nodegrade" {
			ctrl.SetDegradation(false)
		}
		return &sim.HierarchyTarget{Sys: sys, Policy: ctrl}, nil
	case "pipp":
		return pipp.New(p, pipp.DefaultOptions()), nil
	case "dsr":
		return dsr.New(p, dsr.DefaultOptions()), nil
	default:
		topo, err := topology.FromSpec(staticSpec, p.Cores)
		if err != nil {
			return nil, err
		}
		p.ChargeRemote = false
		sys, err := hierarchy.New(p, topo)
		if err != nil {
			return nil, err
		}
		return &sim.HierarchyTarget{Sys: sys, Policy: sim.NopPolicy{Label: staticSpec}}, nil
	}
}
