package workload

import (
	"math"

	"morphcache/internal/mem"
	"morphcache/internal/rng"
)

// Region layout within an address space, in line addresses. Each thread
// owns a private block; shared regions (multithreaded benchmarks) sit at
// the bottom of the space. Regions are far enough apart that footprints
// never collide, and bases are multiples of large powers of two so set
// indexing stays uniform.
const (
	sharedHotBase  = 0x0000_0000
	sharedWarmBase = 0x0040_0000 // 4 Mi lines beyond shared hot
	threadStride   = 0x1000_0000 // 256 Mi lines between per-thread blocks
	privHotOff     = 0x0000_0000
	privWarmOff    = 0x0040_0000
	privStreamOff  = 0x0080_0000
	streamLen      = 0x0020_0000 // 2 Mi lines of streaming working set
)

// GenConfig sizes the generator's notion of one cache slice; the footprint
// targets of Table 4 are fractions of these (Table 3 defaults: 4096-line L2
// slices, 16384-line L3 slices). Sensitivity experiments resize them.
// Model holds the calibration constants (zero value = DefaultModel).
type GenConfig struct {
	L2SliceLines int
	L3SliceLines int
	Model        Model
}

// DefaultGenConfig matches Table 3 (256 KB L2, 1 MB L3, 64 B lines).
func DefaultGenConfig() GenConfig {
	return GenConfig{L2SliceLines: 4096, L3SliceLines: 16384, Model: DefaultModel()}
}

// ScaledGenConfig divides the slice line counts by div, matching a
// hierarchy built with hierarchy.ScaledDefault so footprint fractions — the
// quantities Table 4 fixes — are preserved on the scaled system.
func ScaledGenConfig(div int) GenConfig {
	c := DefaultGenConfig()
	c.L2SliceLines /= div
	c.L3SliceLines /= div
	return c
}

// Generator produces the deterministic reference stream of one thread of
// one benchmark. It is not safe for concurrent use; each simulated core
// owns one generator.
type Generator struct {
	prof   *Profile
	cfg    GenConfig
	asid   mem.ASID
	thread int
	seed   uint64

	// Class-derived region weights.
	pHot, pWarm float64

	// Spatial factor ψ(thread) (zero-mean, unit-ish variance across
	// threads), fixed for the run.
	psi float64

	// Temporal phase parameters, fixed for the run; L2 and L3 get separate
	// phases so footprints at the two levels drift independently (the
	// paper's motivation (iii) in §1.2).
	period2, phase2 float64
	period3, phase3 float64

	// Per-epoch state.
	epoch                      int
	privHot, privWarm          int
	sharedHot, sharedWarm      int
	streamCursor               uint64
	r                          *rng.Stream
	privBase                   uint64
	effSharedFrac              float64
	totalHotLines, totalL3Line int // diagnostics for tests
}

// NewGenerator builds the generator for one thread. For SPEC benchmarks,
// thread is 0 and the ASID is unique to the application; for PARSEC, all 16
// threads share the ASID and are distinguished by thread index. The seed
// isolates whole experiments from each other.
func NewGenerator(p *Profile, cfg GenConfig, asid mem.ASID, thread int, seed uint64) *Generator {
	hot, warm := classMix(p.Class)
	init := rng.Derive(seed, uint64(asid), uint64(thread), 0xC0FFEE)
	g := &Generator{
		prof: p, cfg: cfg, asid: asid, thread: thread, seed: seed,
		pHot: hot, pWarm: warm,
		privBase: uint64(thread+1) * threadStride,
	}
	// ψ(thread): deterministic, zero-mean-ish spread across threads.
	g.psi = rng.Derive(seed, uint64(asid), uint64(thread), 0x51A7).NormFloat64()
	if p.Suite == SPEC {
		g.psi = 0
	}
	g.period2 = 6 + float64(init.Intn(10))
	g.phase2 = init.Float64()
	g.period3 = 6 + float64(init.Intn(10))
	g.phase3 = init.Float64()
	g.effSharedFrac = p.SharedFrac
	if p.Suite == SPEC {
		g.effSharedFrac = 0
	}
	g.BeginEpoch(0)
	return g
}

// ASID returns the generator's address space.
func (g *Generator) ASID() mem.ASID { return g.asid }

// Profile returns the benchmark being modeled.
func (g *Generator) Profile() *Profile { return g.prof }

// phi evaluates the unit-variance temporal factor at epoch e: a smooth
// sinusoid by default, or a two-level square wave when the model asks for
// abrupt phases.
func phi(e int, period, phase float64, square bool) float64 {
	v := math.Sin(2 * math.Pi * (float64(e)/period + phase))
	if square {
		if v >= 0 {
			return 1
		}
		return -1
	}
	return math.Sqrt2 * v
}

// phiExact evaluates a two-level square wave exactly on integer epochs:
// +1 on epochs [0, period/2), -1 on [period/2, period), offset by
// shift·period epochs (rounded). Unlike the sign-of-sin form above, the
// half-period boundary cannot wobble on floating-point rounding.
func phiExact(e, period int, shift float64) float64 {
	s := (e + int(math.Round(shift*float64(period)))) % period
	if s < 0 {
		s += period
	}
	if 2*s < period {
		return 1
	}
	return -1
}

// BeginEpoch recomputes the epoch's working-set sizes and reseeds the
// reference stream (deterministically: the stream depends only on seed,
// asid, thread, and epoch).
func (g *Generator) BeginEpoch(e int) {
	g.epoch = e
	g.r = rng.Derive(g.seed, uint64(g.asid), uint64(g.thread), uint64(e), 0xACCE55)

	p := g.prof
	m := g.cfg.Model
	// Profiles with an explicit PhasePeriod override the seed-derived
	// drifting phases with a machine-aligned square wave (see Profile),
	// evaluated exactly on integer epochs — a sin-sign wave is numerically
	// ambiguous right at the half-period boundary.
	f2 := phi(e, g.period2, g.phase2, m.SquarePhases)
	f3 := phi(e, g.period3, g.phase3, m.SquarePhases)
	if p.PhasePeriod > 0 {
		f2 = phiExact(e, p.PhasePeriod, p.PhaseShift)
		f3 = f2
	}
	acf2 := p.L2ACF + m.TemporalGain*p.L2SigmaT*f2 + m.SpatialGain*p.L2SigmaS*g.psi
	acf3 := p.L3ACF + m.TemporalGain*p.L3SigmaT*f3 + m.SpatialGain*p.L3SigmaS*g.psi
	acf2 = clamp(acf2, 0.02, 1.0)
	acf3 = clamp(acf3, 0.02, 1.0)

	hot := m.FootprintLines(acf2, g.cfg.L2SliceLines)
	total3 := m.FootprintLines(acf3, g.cfg.L3SliceLines)
	warm := total3 - hot
	if warm < 16 {
		warm = 16
	}
	g.totalHotLines, g.totalL3Line = hot, total3

	// Shared region sizes are common to all threads: they derive from the
	// profile means with the benchmark-wide (thread-0 parameters are not
	// used; the shared set simply does not vary spatially) temporal factor
	// of this epoch using the benchmark-level phase of thread 0.
	if g.effSharedFrac > 0 {
		g.sharedHot = int(g.effSharedFrac * float64(hot))
		g.sharedWarm = int(g.effSharedFrac * float64(warm))
		if g.sharedHot < 8 {
			g.sharedHot = 8
		}
		if g.sharedWarm < 8 {
			g.sharedWarm = 8
		}
	}
	g.privHot = max(hot-g.sharedHot, 8)
	g.privWarm = max(warm-g.sharedWarm, 8)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Next produces the thread's next memory reference.
func (g *Generator) Next() mem.Access {
	r := g.r
	u := r.Float64()
	var line uint64
	switch {
	case u < g.pHot:
		if g.effSharedFrac > 0 && r.Float64() < g.effSharedFrac {
			line = sharedHotBase + uint64(r.Zipf(g.sharedHot, g.cfg.Model.HotTheta))
		} else {
			line = g.privBase + privHotOff + uint64(r.Zipf(g.privHot, g.cfg.Model.HotTheta))
		}
	case u < g.pHot+g.pWarm:
		if g.effSharedFrac > 0 && r.Float64() < g.effSharedFrac {
			line = sharedWarmBase + uint64(r.Zipf(g.sharedWarm, g.cfg.Model.WarmTheta))
		} else {
			line = g.privBase + privWarmOff + uint64(r.Zipf(g.privWarm, g.cfg.Model.WarmTheta))
		}
	default:
		line = g.privBase + privStreamOff + g.streamCursor
		g.streamCursor = (g.streamCursor + 1) % streamLen
	}
	kind := mem.Read
	if r.Float64() < g.prof.WriteFrac {
		kind = mem.Write
	}
	return mem.Access{Line: mem.Line(line), ASID: g.asid, Kind: kind}
}

// EpochFootprint returns the modeled working-set sizes of the current epoch
// (hot lines, total L3-level lines), for tests and the Table 4 closed-loop
// experiment.
func (g *Generator) EpochFootprint() (hot, total int) {
	return g.totalHotLines, g.totalL3Line
}
