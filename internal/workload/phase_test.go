package workload

import (
	"testing"

	"morphcache/internal/mem"
)

// An explicit PhasePeriod must produce an exact machine-aligned square
// wave: big footprints for the first half-period, small for the second,
// identically across threads and seeds (the seed-derived drifting phases
// are bypassed).
func TestPhasePeriodSquareWave(t *testing.T) {
	flip, err := ByName("phaseflip")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGenConfig()
	ga := NewGenerator(flip, cfg, mem.ASID(1), 0, 1)
	gb := NewGenerator(flip, cfg, mem.ASID(9), 0, 99)

	P := flip.PhasePeriod
	if P <= 0 {
		t.Fatal("phaseflip must set PhasePeriod")
	}
	var bigHot, smallHot int
	for e := 0; e < 2*P; e++ {
		ga.BeginEpoch(e)
		gb.BeginEpoch(e)
		hotA, _ := ga.EpochFootprint()
		hotB, _ := gb.EpochFootprint()
		if hotA != hotB {
			t.Fatalf("epoch %d: footprints not aligned across seeds/ASIDs: %d vs %d", e, hotA, hotB)
		}
		big := e%P < P/2
		if big {
			if bigHot == 0 {
				bigHot = hotA
			}
			if hotA != bigHot {
				t.Fatalf("epoch %d: big-phase footprint %d, want %d", e, hotA, bigHot)
			}
		} else {
			if smallHot == 0 {
				smallHot = hotA
			}
			if hotA != smallHot {
				t.Fatalf("epoch %d: small-phase footprint %d, want %d", e, hotA, smallHot)
			}
		}
	}
	if bigHot <= smallHot {
		t.Fatalf("big phase (%d lines) must exceed small phase (%d lines)", bigHot, smallHot)
	}
	// The inflated big phase must overflow one L2 slice — that is what
	// makes merging worth having.
	if bigHot <= cfg.L2SliceLines {
		t.Fatalf("big-phase hot set %d lines fits one %d-line slice; the mix would not be adversarial", bigHot, cfg.L2SliceLines)
	}
}

// Profiles without PhasePeriod keep the seed-derived drifting phases: two
// different seeds disagree about epoch footprints somewhere in a run.
func TestPhasePeriodZeroKeepsDriftingPhases(t *testing.T) {
	p, err := ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGenConfig()
	ga := NewGenerator(p, cfg, mem.ASID(1), 0, 1)
	gb := NewGenerator(p, cfg, mem.ASID(1), 0, 2)
	same := true
	for e := 0; e < 24; e++ {
		ga.BeginEpoch(e)
		gb.BeginEpoch(e)
		ha, _ := ga.EpochFootprint()
		hb, _ := gb.EpochFootprint()
		same = same && ha == hb
	}
	if same {
		t.Fatal("seed-derived phases should differ between seeds for Table 4 profiles")
	}
}

func TestPhaseShiftMixShape(t *testing.T) {
	m, err := MixByName(PhaseShiftMixName)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Benchmarks) != 16 {
		t.Fatalf("mix has %d benchmarks, want 16", len(m.Benchmarks))
	}
	if m.Type != [4]int{8, 0, 0, 8} {
		t.Fatalf("class census %v, want [8 0 0 8]", m.Type)
	}
	for i, b := range m.Benchmarks {
		want := "phasecalm"
		if i%2 == 0 {
			want = "phaseflip"
		}
		if b.Name != want {
			t.Fatalf("core %d runs %q, want %q", i, b.Name, want)
		}
	}
	// The figure experiments must not pick it up.
	for _, mm := range Mixes() {
		if mm.Name == PhaseShiftMixName {
			t.Fatal("the phase-shift mix must not appear in Mixes()")
		}
	}
}
