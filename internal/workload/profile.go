// Package workload provides the synthetic benchmark models that stand in
// for the paper's SPEC CPU 2006 and PARSEC suites (§4.1), parameterized by
// the paper's own Table 4 characterization: per-benchmark average Active
// Cache Footprint (ACF) at L2 and L3, temporal standard deviation σt, class
// (0–3, by low/high L2/L3 ACF), and — for PARSEC — spatial standard
// deviation σs across threads.
//
// Each model generates a deterministic stream of line-granular memory
// references from three regions:
//
//   - a hot set sized to reproduce the benchmark's L2 ACF, accessed with a
//     Zipf head so the hottest lines live in L1;
//   - a warm set sized (with the hot set) to reproduce the L3 ACF; and
//   - a streaming component of cold lines that sweeps the caches, whose
//     weight per class reflects that the paper's class-0 benchmarks (lbm,
//     libquantum, GemsFDTD, ...) are streaming-dominated.
//
// Temporal variation: the per-epoch footprint follows a deterministic
// sinusoid with standard deviation σt around the Table 4 mean, giving the
// smooth phase behavior that makes the best topology drift over time
// (Fig. 2(a)). Spatial variation (PARSEC): per-thread footprints spread
// around the mean with standard deviation σs. Threads of a multithreaded
// benchmark share one address space and direct a benchmark-specific
// fraction of their references at shared regions, producing the ACFV
// overlap that merge rule (ii) detects.
//
// Footprint inflation: Table 4 ACFs were measured in a private slice, so a
// value near 1 is occupancy-saturated — the benchmark's true working set
// can exceed the slice. Footprint sizing therefore inflates measured ACFs
// above 0.5 (see footprintLines), which is what makes capacity sharing
// worth having, exactly as the paper's class-2/3 benchmarks motivate.
package workload

import "fmt"

// Suite distinguishes the two benchmark suites.
type Suite uint8

const (
	// SPEC benchmarks are single-threaded (multiprogrammed mixes).
	SPEC Suite = iota
	// PARSEC benchmarks run 16 threads in one address space.
	PARSEC
)

func (s Suite) String() string {
	if s == SPEC {
		return "SPEC CPU 2006"
	}
	return "PARSEC"
}

// Profile is one benchmark's Table 4 characterization.
type Profile struct {
	Name  string
	Suite Suite
	// Class is the paper's 0–3 classification of SPEC benchmarks by
	// low/high L2 and L3 ACF; -1 for PARSEC.
	Class int

	// L2ACF/L3ACF are the average active footprints as fractions of one
	// 256 KB / 1 MB slice; L2SigmaT/L3SigmaT the temporal std-devs.
	L2ACF, L2SigmaT float64
	L3ACF, L3SigmaT float64

	// L2SigmaS/L3SigmaS are the spatial std-devs across threads (PARSEC
	// only; zero for SPEC).
	L2SigmaS, L3SigmaS float64

	// SharedFrac is the fraction of a thread's non-streaming references that
	// target data shared by all threads (PARSEC only). The paper does not
	// tabulate sharing degree; these values are chosen so that the
	// benchmarks its discussion singles out for sharing-driven topology
	// gains (dedup, freqmine, canneal, facesim, ferret, x264) sit high.
	SharedFrac float64

	// WriteFrac is the fraction of references that are stores.
	WriteFrac float64

	// PhasePeriod, when positive, replaces the seed-derived per-generator
	// temporal phases with an exact square wave of this period in absolute
	// epochs, identical at both cache levels and aligned across every
	// thread and benchmark that sets it: epochs [0, P/2) sit at +gain·σt
	// above the mean ACF, epochs [P/2, P) at -gain·σt below (offset by
	// PhaseShift·P epochs). Table 4 profiles leave it 0; the synthetic
	// adversarial benchmarks of the phase-shift mix (PhaseShiftMix) use it
	// so that whole-machine phase changes happen abruptly and in lockstep —
	// the regime where every fixed topology loses at least one phase.
	PhasePeriod int
	// PhaseShift offsets the square wave by this fraction of the period.
	PhaseShift float64
}

// String returns the benchmark name.
func (p *Profile) String() string { return p.Name }

// spec builds a SPEC profile row.
func spec(name string, class int, l2, l2t, l3, l3t float64) Profile {
	return Profile{
		Name: name, Suite: SPEC, Class: class,
		L2ACF: l2, L2SigmaT: l2t, L3ACF: l3, L3SigmaT: l3t,
		WriteFrac: 0.2,
	}
}

// parsec builds a PARSEC profile row.
func parsec(name string, l2, l2t, l2s, l3, l3t, l3s, shared float64) Profile {
	return Profile{
		Name: name, Suite: PARSEC, Class: -1,
		L2ACF: l2, L2SigmaT: l2t, L2SigmaS: l2s,
		L3ACF: l3, L3SigmaT: l3t, L3SigmaS: l3s,
		SharedFrac: shared, WriteFrac: 0.2,
	}
}

// specProfiles is Table 4's SPEC CPU 2006 characterization: name(class),
// L2 ACF, L2 σt, L3 ACF, L3 σt.
var specProfiles = []Profile{
	spec("GemsFDTD", 0, 0.34, 0.14, 0.46, 0.25),
	spec("astar", 1, 0.42, 0.06, 0.56, 0.02),
	spec("bwaves", 2, 0.56, 0.05, 0.43, 0.17),
	spec("bzip2", 2, 0.59, 0.18, 0.46, 0.22),
	spec("cactusADM", 2, 0.74, 0.16, 0.48, 0.04),
	spec("calculix", 3, 0.62, 0.02, 0.56, 0.02),
	spec("dealII", 3, 0.58, 0.07, 0.71, 0.19),
	spec("gamess", 0, 0.41, 0.09, 0.38, 0.11),
	spec("gcc", 3, 0.59, 0.18, 0.66, 0.13),
	spec("gobmk", 2, 0.73, 0.13, 0.45, 0.01),
	spec("gromacs", 1, 0.39, 0.14, 0.77, 0.20),
	spec("h264ref", 3, 0.65, 0.02, 0.55, 0.04),
	spec("hmmer", 1, 0.31, 0.19, 0.69, 0.11),
	spec("lbm", 0, 0.44, 0.19, 0.42, 0.08),
	spec("leslie3d", 2, 0.56, 0.04, 0.34, 0.12),
	spec("libquantum", 0, 0.26, 0.14, 0.18, 0.11),
	spec("mcf", 1, 0.38, 0.16, 0.51, 0.04),
	spec("milc", 1, 0.42, 0.02, 0.59, 0.05),
	spec("namd", 2, 0.55, 0.04, 0.48, 0.12),
	spec("omnetpp", 1, 0.47, 0.03, 0.58, 0.08),
	spec("perlbench", 0, 0.31, 0.08, 0.42, 0.01),
	spec("povray", 2, 0.58, 0.11, 0.41, 0.07),
	spec("sjeng", 2, 0.56, 0.02, 0.41, 0.06),
	spec("soplex", 2, 0.53, 0.07, 0.47, 0.07),
	spec("sphinx", 1, 0.49, 0.04, 0.63, 0.11),
	spec("tonto", 3, 0.63, 0.12, 0.57, 0.06),
	spec("wrf", 1, 0.46, 0.07, 0.73, 0.14),
	spec("xalancbmk", 3, 0.58, 0.03, 0.57, 0.03),
	spec("zeusmp", 2, 0.54, 0.05, 0.44, 0.17),
}

// parsecProfiles is Table 4's PARSEC characterization: L2 (ACF, σt, σs),
// L3 (ACF, σt, σs), plus the sharing fraction discussed in the package
// comment.
var parsecProfiles = []Profile{
	parsec("blackscholes", 0.23, 0.04, 0.07, 0.18, 0.02, 0.05, 0.10),
	parsec("bodytrack", 0.38, 0.07, 0.03, 0.22, 0.04, 0.02, 0.15),
	parsec("canneal", 0.65, 0.13, 0.18, 0.58, 0.07, 0.14, 0.40),
	parsec("dedup", 0.47, 0.05, 0.08, 0.74, 0.16, 0.12, 0.50),
	parsec("facesim", 0.41, 0.11, 0.14, 0.64, 0.17, 0.08, 0.45),
	parsec("ferret", 0.59, 0.14, 0.18, 0.58, 0.06, 0.08, 0.45),
	parsec("fluidanimate", 0.47, 0.04, 0.11, 0.41, 0.03, 0.19, 0.20),
	parsec("freqmine", 0.61, 0.13, 0.13, 0.71, 0.14, 0.20, 0.50),
	parsec("streamcluster", 0.79, 0.28, 0.12, 0.61, 0.16, 0.07, 0.25),
	parsec("swaptions", 0.43, 0.05, 0.11, 0.37, 0.04, 0.02, 0.10),
	parsec("vips", 0.62, 0.09, 0.15, 0.57, 0.06, 0.12, 0.20),
	parsec("x264", 0.55, 0.07, 0.10, 0.52, 0.13, 0.18, 0.45),
}

var byName = func() map[string]*Profile {
	m := make(map[string]*Profile, len(specProfiles)+len(parsecProfiles))
	for i := range specProfiles {
		m[specProfiles[i].Name] = &specProfiles[i]
	}
	for i := range parsecProfiles {
		m[parsecProfiles[i].Name] = &parsecProfiles[i]
	}
	// Synthetic adversarial benchmarks (phase.go); not Table 4 rows, but
	// resolvable by name like everything else.
	for i := range phaseProfiles {
		m[phaseProfiles[i].Name] = &phaseProfiles[i]
	}
	// Table 5 shorthand aliases.
	for alias, full := range map[string]string{
		"Gems": "GemsFDTD", "cactus": "cactusADM", "leslie": "leslie3d",
		"h264": "h264ref", "libm": "lbm", "libq": "libquantum",
		"perl": "perlbench", "xalanc": "xalancbmk", "gomacs": "gromacs",
	} {
		m[alias] = m[full]
	}
	return m
}()

// SPECProfiles returns the Table 4 SPEC rows.
func SPECProfiles() []*Profile {
	out := make([]*Profile, len(specProfiles))
	for i := range specProfiles {
		out[i] = &specProfiles[i]
	}
	return out
}

// PARSECProfiles returns the Table 4 PARSEC rows.
func PARSECProfiles() []*Profile {
	out := make([]*Profile, len(parsecProfiles))
	for i := range parsecProfiles {
		out[i] = &parsecProfiles[i]
	}
	return out
}

// ByName looks a benchmark up by its full name or Table 5 shorthand.
func ByName(name string) (*Profile, error) {
	if p, ok := byName[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Model collects the calibration constants of the synthetic workload
// generator. The Table 4 numbers fix each benchmark's *relative* footprint
// and variation; Model fixes how those map onto working sets and reference
// streams. DefaultModel's values were calibrated so that the relative
// behavior of the static topologies and MorphCache reproduces the shape of
// the paper's Figs. 2/13/16 (see EXPERIMENTS.md).
type Model struct {
	// RampStart/RampSlope/TopSlope define the piecewise-linear inflation of
	// measured per-slice ACF into a working-set size (see FootprintLines):
	// identity below RampStart, slope RampSlope up to occupancy 0.60, then
	// TopSlope beyond. Inflation reflects that an LRU slice measuring 60%
	// active occupancy typically serves a working set of about twice its
	// capacity.
	RampStart, RampSlope, TopSlope float64
	// TemporalGain scales the Table 4 σt phase swings.
	TemporalGain float64
	// SpatialGain scales the Table 4 σs per-thread spread (PARSEC).
	SpatialGain float64
	// HotTheta/WarmTheta are the Zipf skews of the hot and warm regions.
	HotTheta, WarmTheta float64
	// SquarePhases switches the temporal variation from the default smooth
	// sinusoid to abrupt two-level phases (same variance): working sets
	// jump rather than drift, stressing the controller's reaction time
	// instead of its tracking.
	SquarePhases bool
}

// DefaultModel returns the calibrated constants.
func DefaultModel() Model {
	return Model{
		RampStart: 0.45, RampSlope: 3, TopSlope: 3,
		TemporalGain: 1.5, SpatialGain: 1.0,
		HotTheta: 0.50, WarmTheta: 0.25,
	}
}

// classMix gives the per-class access-region weights (hot, warm, stream).
// Class 0 is streaming-dominated, class 1 has large L3-resident warm sets,
// class 2 is hot-set-dominated, class 3 stresses both levels. The
// remainder after hot+warm is the streaming weight.
func classMix(class int) (hot, warm float64) {
	switch class {
	case 0:
		return 0.42, 0.28 // 30% streaming: lbm, libquantum, GemsFDTD, ...
	case 1:
		return 0.45, 0.50 // L3-heavy reuse, 5% streaming
	case 2:
		return 0.62, 0.33 // hot-set bound, 5% streaming
	case 3:
		return 0.55, 0.41 // both levels pressured, 4% streaming
	default: // PARSEC
		return 0.55, 0.39
	}
}

// FootprintLines converts a measured per-slice ACF into a working-set size
// in lines under the model's inflation mapping (see Model).
func (m Model) FootprintLines(acf float64, capacityLines int) int {
	f := acf
	if acf > m.RampStart {
		f += (acf - m.RampStart) * m.RampSlope
	}
	n := int(f * float64(capacityLines))
	if n < 16 {
		n = 16
	}
	return n
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
