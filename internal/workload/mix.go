package workload

import "fmt"

// Mix is one multiprogrammed workload: an ordered list of 16 single-threaded
// benchmarks, one per core (Table 5).
type Mix struct {
	Name string
	// Type is the paper's class census (class0, class1, class2, class3).
	Type [4]int
	// Benchmarks holds one profile per core, in core order.
	Benchmarks []*Profile
}

// mixRows transcribes Table 5 (shorthand names resolve via ByName).
var mixRows = []struct {
	name  string
	typ   [4]int
	names []string
}{
	{"MIX 01", [4]int{0, 0, 10, 6}, []string{"calculix", "bwaves", "leslie", "namd", "sjeng", "bzip2", "povray", "soplex", "cactus", "tonto", "xalanc", "zeusmp", "dealII", "gcc", "gobmk", "h264"}},
	{"MIX 02", [4]int{0, 4, 6, 6}, []string{"dealII", "gcc", "leslie", "namd", "sjeng", "zeusmp", "bzip2", "calculix", "gobmk", "h264", "gomacs", "hmmer", "wrf", "milc", "tonto", "xalanc"}},
	{"MIX 03", [4]int{0, 8, 4, 4}, []string{"gromacs", "hmmer", "mcf", "sphinx", "wrf", "astar", "milc", "omnetpp", "namd", "cactus", "gobmk", "soplex", "gcc", "calculix", "h264", "tonto"}},
	{"MIX 04", [4]int{0, 8, 8, 0}, []string{"gromacs", "hmmer", "mcf", "sphinx", "wrf", "astar", "milc", "omnetpp", "bwaves", "namd", "leslie", "sjeng", "zeusmp", "bzip2", "povray", "soplex"}},
	{"MIX 05", [4]int{2, 2, 6, 6}, []string{"gamess", "libm", "sphinx", "astar", "bwaves", "namd", "sjeng", "gobmk", "povray", "soplex", "dealII", "gcc", "calculix", "h264", "tonto", "xalanc"}},
	{"MIX 06", [4]int{2, 6, 2, 6}, []string{"dealII", "libq", "perl", "gromacs", "hmmer", "mcf", "wrf", "astar", "milc", "sjeng", "gobmk", "gcc", "calculix", "h264", "tonto", "xalanc"}},
	{"MIX 07", [4]int{4, 0, 6, 6}, []string{"gcc", "libm", "libq", "perl", "cactus", "zeusmp", "bzip2", "gobmk", "povray", "soplex", "dealII", "gamess", "calculix", "h264", "tonto", "xalanc"}},
	{"MIX 08", [4]int{4, 4, 4, 4}, []string{"hmmer", "mcf", "libq", "wrf", "omnetpp", "Gems", "bwaves", "bzip2", "gobmk", "perl", "povray", "gcc", "calculix", "libm", "h264", "xalanc"}},
	{"MIX 09", [4]int{4, 4, 8, 0}, []string{"Gems", "gamess", "libm", "libq", "astar", "gromacs", "hmmer", "milc", "bwaves", "leslie", "sjeng", "povray", "gobmk", "soplex", "bzip2", "zeusmp"}},
	{"MIX 10", [4]int{4, 6, 0, 6}, []string{"perl", "hmmer", "mcf", "wrf", "astar", "milc", "Gems", "omnetpp", "dealII", "libm", "gcc", "calculix", "h264", "gamess", "tonto", "xalanc"}},
	{"MIX 11", [4]int{4, 8, 0, 4}, []string{"libm", "libq", "gromacs", "hmmer", "mcf", "sphinx", "wrf", "gamess", "astar", "milc", "omnetpp", "gcc", "Gems", "h264", "tonto", "xalanc"}},
	{"MIX 12", [4]int{4, 8, 4, 0}, []string{"gamess", "libm", "libq", "perl", "gromacs", "hmmer", "mcf", "sphinx", "wrf", "astar", "milc", "omnetpp", "sjeng", "zeusmp", "gobmk", "soplex"}},
}

// Mixes returns the 12 Table 5 multiprogrammed workloads.
func Mixes() []Mix {
	out := make([]Mix, 0, len(mixRows))
	for _, row := range mixRows {
		m := Mix{Name: row.name, Type: row.typ}
		for _, n := range row.names {
			p, err := ByName(n)
			if err != nil {
				panic(err) // the table is a program constant
			}
			m.Benchmarks = append(m.Benchmarks, p)
		}
		out = append(out, m)
	}
	return out
}

// Mixes8 derives 8-application mixes for the paper's 8-core sensitivity
// study (§5.4: "we also experimented with 8 core configurations ... with
// multiple 8-application mixes"): each Table 5 mix contributes its even-
// indexed applications, preserving its class balance roughly by
// construction (classes are spread through the listing).
func Mixes8() []Mix {
	out := make([]Mix, 0, len(mixRows))
	for _, m := range Mixes() {
		m8 := Mix{Name: m.Name + " (8)"}
		for i := 0; i < len(m.Benchmarks); i += 2 {
			b := m.Benchmarks[i]
			m8.Benchmarks = append(m8.Benchmarks, b)
			m8.Type[b.Class]++
		}
		out = append(out, m8)
	}
	return out
}

// MixByName returns one Table 5 mix ("MIX 01" ... "MIX 12"), an 8-core
// derivative, or the synthetic adversarial phase-shift mix ("PHASE SHIFT").
func MixByName(name string) (Mix, error) {
	if name == PhaseShiftMixName {
		return PhaseShiftMix(), nil
	}
	for _, m := range Mixes() {
		if m.Name == name {
			return m, nil
		}
	}
	for _, m := range Mixes8() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}
