package workload

import (
	"testing"
	"testing/quick"

	"morphcache/internal/mem"
)

func TestTablesComplete(t *testing.T) {
	if n := len(SPECProfiles()); n != 29 {
		t.Fatalf("Table 4 has 29 SPEC rows, got %d", n)
	}
	if n := len(PARSECProfiles()); n != 12 {
		t.Fatalf("Table 4 has 12 PARSEC rows, got %d", n)
	}
	if n := len(Mixes()); n != 12 {
		t.Fatalf("Table 5 has 12 mixes, got %d", n)
	}
}

func TestProfileRanges(t *testing.T) {
	for _, p := range SPECProfiles() {
		if p.L2ACF <= 0 || p.L2ACF > 1 || p.L3ACF <= 0 || p.L3ACF > 1 {
			t.Errorf("%s: ACFs out of range", p.Name)
		}
		if p.Class < 0 || p.Class > 3 {
			t.Errorf("%s: class %d", p.Name, p.Class)
		}
		if p.Suite != SPEC || p.L2SigmaS != 0 {
			t.Errorf("%s: SPEC rows must have no spatial deviation", p.Name)
		}
	}
	for _, p := range PARSECProfiles() {
		if p.Suite != PARSEC || p.Class != -1 {
			t.Errorf("%s: PARSEC row misclassified", p.Name)
		}
		if p.SharedFrac <= 0 || p.SharedFrac >= 1 {
			t.Errorf("%s: shared fraction %v", p.Name, p.SharedFrac)
		}
	}
}

// TestMixClassCensus cross-checks the transcription of Table 5: the class
// census of each mix's benchmarks must equal the mix's declared type.
func TestMixClassCensus(t *testing.T) {
	for _, m := range Mixes() {
		if len(m.Benchmarks) != 16 {
			t.Fatalf("%s has %d benchmarks, want 16", m.Name, len(m.Benchmarks))
		}
		var census [4]int
		for _, b := range m.Benchmarks {
			census[b.Class]++
		}
		if census != m.Type {
			t.Errorf("%s: census %v != declared type %v", m.Name, census, m.Type)
		}
	}
}

func TestByNameAliases(t *testing.T) {
	for alias, full := range map[string]string{
		"Gems": "GemsFDTD", "cactus": "cactusADM", "leslie": "leslie3d",
		"h264": "h264ref", "libm": "lbm", "libq": "libquantum",
		"perl": "perlbench", "xalanc": "xalancbmk",
	} {
		a, err := ByName(alias)
		if err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
		f, err := ByName(full)
		if err != nil {
			t.Fatal(err)
		}
		if a != f {
			t.Fatalf("alias %q != %q", alias, full)
		}
	}
	if _, err := ByName("nosuchbench"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestMixByName(t *testing.T) {
	if _, err := MixByName("MIX 07"); err != nil {
		t.Fatal(err)
	}
	if _, err := MixByName("MIX 13"); err == nil {
		t.Fatal("unknown mix should error")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("gcc")
	cfg := ScaledGenConfig(16)
	a := NewGenerator(p, cfg, 3, 0, 42)
	b := NewGenerator(p, cfg, 3, 0, 42)
	for e := 0; e < 3; e++ {
		a.BeginEpoch(e)
		b.BeginEpoch(e)
		for i := 0; i < 5000; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("generators diverged at epoch %d ref %d", e, i)
			}
		}
	}
	// Different seeds diverge.
	c := NewGenerator(p, cfg, 3, 0, 43)
	c.BeginEpoch(0)
	a.BeginEpoch(0)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorASIDAndKinds(t *testing.T) {
	p, _ := ByName("mcf")
	g := NewGenerator(p, ScaledGenConfig(16), 9, 0, 1)
	writes := 0
	for i := 0; i < 10000; i++ {
		a := g.Next()
		if a.ASID != 9 {
			t.Fatalf("wrong ASID %d", a.ASID)
		}
		if a.Kind == mem.Write {
			writes++
		}
	}
	// WriteFrac is 0.2.
	if writes < 1600 || writes > 2400 {
		t.Fatalf("write fraction %v, want ~0.2", float64(writes)/10000)
	}
}

func TestParsecSharing(t *testing.T) {
	p, _ := ByName("dedup")
	cfg := ScaledGenConfig(16)
	g0 := NewGenerator(p, cfg, 1, 0, 7)
	g1 := NewGenerator(p, cfg, 1, 1, 7)
	seen0 := map[mem.Line]bool{}
	for i := 0; i < 20000; i++ {
		seen0[g0.Next().Line] = true
	}
	shared := 0
	for i := 0; i < 20000; i++ {
		if seen0[g1.Next().Line] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("threads of a PARSEC app must reference common lines")
	}
	// SPEC apps in different address spaces never share (and even their raw
	// line ranges coincide only because thread index matches; the ASID
	// disambiguates). Two SPEC generators with different ASIDs:
	s1, _ := ByName("gcc")
	a := NewGenerator(s1, cfg, 2, 0, 7)
	b := NewGenerator(s1, cfg, 3, 0, 7)
	if x, y := a.Next(), b.Next(); x.ASID == y.ASID {
		t.Fatal("distinct SPEC applications must use distinct address spaces")
	}
}

func TestSpatialSpread(t *testing.T) {
	// PARSEC threads with σs > 0 get different footprints; SPEC threads are
	// unaffected by thread index (they never have siblings).
	p, _ := ByName("canneal") // σs = 0.18/0.14
	cfg := ScaledGenConfig(16)
	sizes := map[int]bool{}
	for th := 0; th < 8; th++ {
		g := NewGenerator(p, cfg, 1, th, 11)
		_, tot := g.EpochFootprint()
		sizes[tot] = true
	}
	if len(sizes) < 4 {
		t.Fatalf("spatial deviation should spread per-thread footprints, got %d distinct sizes", len(sizes))
	}
}

func TestTemporalVariation(t *testing.T) {
	p, _ := ByName("bzip2") // σt = 0.18/0.22
	g := NewGenerator(p, ScaledGenConfig(16), 1, 0, 5)
	sizes := map[int]bool{}
	for e := 0; e < 12; e++ {
		g.BeginEpoch(e)
		_, tot := g.EpochFootprint()
		sizes[tot] = true
	}
	if len(sizes) < 6 {
		t.Fatalf("temporal deviation should vary footprints across epochs, got %d distinct", len(sizes))
	}
}

func TestFootprintLinesProperties(t *testing.T) {
	m := DefaultModel()
	err := quick.Check(func(a, b float64) bool {
		x := clampUnit(a)
		y := clampUnit(b)
		if x > y {
			x, y = y, x
		}
		fx := m.FootprintLines(x, 4096)
		fy := m.FootprintLines(y, 4096)
		return fx >= 16 && fx <= fy // monotone, floored
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Identity below the ramp.
	if got := m.FootprintLines(0.30, 1000); got != 300 {
		t.Fatalf("below-ramp footprint %d, want 300", got)
	}
	// Inflation above.
	if got := m.FootprintLines(0.70, 1000); got <= 700 {
		t.Fatalf("above-ramp footprint %d should be inflated", got)
	}
}

func clampUnit(v float64) float64 {
	if v != v || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestScaledGenConfig(t *testing.T) {
	c := ScaledGenConfig(16)
	if c.L2SliceLines != 256 || c.L3SliceLines != 1024 {
		t.Fatalf("scaled lines %d/%d", c.L2SliceLines, c.L3SliceLines)
	}
	d := DefaultGenConfig()
	if d.L2SliceLines != 4096 || d.L3SliceLines != 16384 {
		t.Fatalf("default lines %d/%d (Table 3)", d.L2SliceLines, d.L3SliceLines)
	}
}

func TestMixGenerators(t *testing.T) {
	m, _ := MixByName("MIX 03")
	gens := MixGenerators(m, ScaledGenConfig(16), 1)
	if len(gens) != 16 {
		t.Fatalf("%d generators", len(gens))
	}
	seen := map[mem.ASID]bool{}
	for _, g := range gens {
		if seen[g.ASID()] {
			t.Fatal("duplicate ASID across applications")
		}
		seen[g.ASID()] = true
	}
}

func TestParsecGenerators(t *testing.T) {
	p, _ := ByName("ferret")
	gens := ParsecGenerators(p, 16, ScaledGenConfig(16), 1)
	if len(gens) != 16 {
		t.Fatalf("%d generators", len(gens))
	}
	for _, g := range gens {
		if g.ASID() != gens[0].ASID() {
			t.Fatal("threads must share one address space")
		}
	}
}

func TestMixes8(t *testing.T) {
	m8s := Mixes8()
	if len(m8s) != 12 {
		t.Fatalf("%d 8-app mixes", len(m8s))
	}
	for _, m := range m8s {
		if len(m.Benchmarks) != 8 {
			t.Fatalf("%s has %d benchmarks", m.Name, len(m.Benchmarks))
		}
		var census [4]int
		for _, b := range m.Benchmarks {
			census[b.Class]++
		}
		if census != m.Type {
			t.Fatalf("%s census %v != type %v", m.Name, census, m.Type)
		}
	}
	if _, err := MixByName("MIX 03 (8)"); err != nil {
		t.Fatal(err)
	}
}

func TestSquarePhases(t *testing.T) {
	p, _ := ByName("bzip2")
	cfg := ScaledGenConfig(16)
	cfg.Model.SquarePhases = true
	g := NewGenerator(p, cfg, 1, 0, 5)
	sizes := map[int]int{}
	for e := 0; e < 24; e++ {
		g.BeginEpoch(e)
		_, tot := g.EpochFootprint()
		sizes[tot]++
	}
	// A square wave visits exactly two footprint levels per cache level.
	if len(sizes) != 2 {
		t.Fatalf("square phases should produce 2 distinct footprints, got %d (%v)", len(sizes), sizes)
	}
}
