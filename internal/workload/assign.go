package workload

import "morphcache/internal/mem"

// MixGenerators builds one generator per core for a multiprogrammed mix:
// application i runs on core i in its own address space.
func MixGenerators(m Mix, cfg GenConfig, seed uint64) []*Generator {
	out := make([]*Generator, len(m.Benchmarks))
	for i, p := range m.Benchmarks {
		out[i] = NewGenerator(p, cfg, mem.ASID(i+1), 0, seed)
	}
	return out
}

// ParsecGenerators builds one generator per core for a multithreaded
// benchmark: `cores` threads of one application sharing one address space.
func ParsecGenerators(p *Profile, cores int, cfg GenConfig, seed uint64) []*Generator {
	out := make([]*Generator, cores)
	for t := 0; t < cores; t++ {
		out[t] = NewGenerator(p, cfg, mem.ASID(1), t, seed)
	}
	return out
}
