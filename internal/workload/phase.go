package workload

// Synthetic adversarial benchmarks for the phase-shift mix. These are not
// Table 4 rows: they exist to build a workload where the best topology
// changes abruptly, machine-wide, mid-run — the regime the bandit
// meta-policy (internal/baselines/bandit) is gated on. Two ingredients:
//
//   - "phaseflip": a class-3 benchmark whose footprint square-waves between
//     saturating (ACF 1.0, inflated to ~2.6 slices of demand — merging with
//     a small neighbor is the only way to keep it cached) and tiny
//     (ACF 0.10) with an exact machine-aligned period, so all flip cores
//     swing together;
//   - "phasecalm": a streaming-heavy class-0 benchmark with a constant tiny
//     footprint. Its reuse sets never pressure capacity, but its streaming
//     traffic keeps the shared-bus segments of merged topologies busy, so
//     merging is pure overhead whenever the flip cores are in their small
//     phase.
//
// Interleaving the two gives half the machine a reason to merge in the
// flips' big phase and every core a reason to stay private in the small
// phase: (16:1:1) loses the big phase, merged statics lose the small phase,
// and reactive policies pay their adaptation lag at every flip.

// PhaseShiftPeriod is the square-wave period in absolute epochs. 24 gives
// one flip inside a 24-measured-epoch quick run and two in a 48-epoch full
// run (the first two absolute epochs are warmup).
const PhaseShiftPeriod = 24

var phaseProfiles = []Profile{
	{
		Name: "phaseflip", Suite: SPEC, Class: 3,
		L2ACF: 0.55, L2SigmaT: 0.30,
		L3ACF: 0.55, L3SigmaT: 0.30,
		WriteFrac:   0.2,
		PhasePeriod: PhaseShiftPeriod,
	},
	{
		Name: "phasecalm", Suite: SPEC, Class: 0,
		L2ACF: 0.10, L3ACF: 0.10,
		WriteFrac: 0.2,
	},
}

// PhaseShiftMixName names the adversarial mix for MixByName.
const PhaseShiftMixName = "PHASE SHIFT"

// PhaseShiftMix returns the adversarial 16-application mix: flip and calm
// benchmarks interleaved core-by-core, so every buddy pair and every
// 4-group contains both kinds. It resolves via MixByName like the Table 5
// mixes but is deliberately not part of Mixes() — figure experiments sweep
// the paper's workloads only.
func PhaseShiftMix() Mix {
	m := Mix{Name: PhaseShiftMixName, Type: [4]int{8, 0, 0, 8}}
	flip := &phaseProfiles[0]
	calm := &phaseProfiles[1]
	for i := 0; i < 8; i++ {
		m.Benchmarks = append(m.Benchmarks, flip, calm)
	}
	return m
}
