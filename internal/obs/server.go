package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Admin is the admin endpoint's handler set:
//
//	/metrics      Prometheus text exposition of the registry
//	/healthz      200 while serving, 503 once shutdown begins
//	              (?verbose=1 adds the registered detail view, JSON)
//	/jobs         live batch progress (JobsView JSON)
//	/debug/vars   expvar
//	/debug/pprof  net/http/pprof profiles
//
// It is decoupled from the listener so tests drive it with httptest.
type Admin struct {
	reg     *Registry
	jobs    func() JobsView
	healthy atomic.Bool
	detail  atomic.Value // of func() any
	mux     *http.ServeMux
}

// NewAdmin builds the handler set over a registry and an optional live
// jobs view (nil serves an empty view). The endpoint starts healthy.
func NewAdmin(reg *Registry, jobs func() JobsView) *Admin {
	a := &Admin{reg: reg, jobs: jobs}
	a.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.serveMetrics)
	mux.HandleFunc("/healthz", a.serveHealthz)
	mux.HandleFunc("/jobs", a.serveJobs)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.mux = mux
	return a
}

// Handler returns the endpoint's root handler.
func (a *Admin) Handler() http.Handler { return a.mux }

// Handle mounts an additional handler on the admin mux (Go 1.22 ServeMux
// patterns). The serve-mode cache uses this to ride the same listener as
// /metrics and /healthz.
func (a *Admin) Handle(pattern string, h http.Handler) { a.mux.Handle(pattern, h) }

// SetHealthy flips the /healthz state (Server.Shutdown flips it false
// before draining, so load balancers and probes see the drain).
func (a *Admin) SetHealthy(ok bool) { a.healthy.Store(ok) }

// SetHealthDetail registers the /healthz?verbose=1 detail provider: f's
// JSON-encodable return value is embedded in the verbose health response.
// The serve-mode cache uses this to expose per-tenant SLO burn rates and
// partition state next to the plain ok/draining bit.
func (a *Admin) SetHealthDetail(f func() any) { a.detail.Store(f) }

func (a *Admin) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := a.reg.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

func (a *Admin) serveHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := a.healthy.Load()
	if r.URL.Query().Get("verbose") == "1" {
		body := struct {
			Healthy bool `json:"healthy"`
			Detail  any  `json:"detail,omitempty"`
		}{Healthy: healthy}
		if f, ok := a.detail.Load().(func() any); ok && f != nil {
			body.Detail = f()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(body) //nolint:errcheck // best effort over HTTP
		return
	}
	if !healthy {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (a *Admin) serveJobs(w http.ResponseWriter, r *http.Request) {
	view := JobsView{Jobs: []JobStatus{}}
	if a.jobs != nil {
		view = a.jobs()
		if view.Jobs == nil {
			view.Jobs = []JobStatus{}
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(view) //nolint:errcheck // best effort over HTTP
}

// Server runs an Admin over a real listener.
type Server struct {
	admin *Admin
	srv   *http.Server
	ln    net.Listener
}

// ServerOptions are the listener-side timeouts Serve applies. The zero
// value of any field falls back to the matching DefaultServerOptions
// value, so callers override only what they test.
type ServerOptions struct {
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	// WriteTimeout bounds a whole response write. Handlers that
	// legitimately stream for longer (the serve-mode /events SSE feed)
	// must be wrapped in Streaming, which exempts just that response.
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
}

// DefaultServerOptions returns the production timeouts: full-request
// bounds, not just the header read — once the mux also carries cache
// traffic (internal/serve), a stalled client must not be able to pin a
// handler goroutine for the life of the process. The write timeout stays
// above /debug/pprof/profile's 30s default profiling window.
func DefaultServerOptions() ServerOptions {
	return ServerOptions{
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

func (o ServerOptions) withDefaults() ServerOptions {
	d := DefaultServerOptions()
	if o.ReadHeaderTimeout == 0 {
		o.ReadHeaderTimeout = d.ReadHeaderTimeout
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = d.ReadTimeout
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = d.WriteTimeout
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = d.IdleTimeout
	}
	return o
}

// Streaming wraps a long-lived streaming handler (server-sent events, log
// tails) with a per-response exemption from the server's blanket
// WriteTimeout: the connection's write deadline is cleared before the
// handler runs, so the stream lives until the client goes away or the
// handler returns. Read deadlines are left alone — a streaming response
// still must not let a stalled *request* pin the goroutine.
func Streaming(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rc := http.NewResponseController(w)
		// ErrNotSupported (e.g. a bare httptest recorder) is fine: there
		// is no server-side deadline to lift in that case.
		rc.SetWriteDeadline(time.Time{}) //nolint:errcheck
		h.ServeHTTP(w, r)
	})
}

// Serve binds addr (e.g. ":9190" or "127.0.0.1:0") and serves the admin
// endpoint in the background until Shutdown, with DefaultServerOptions
// timeouts.
func Serve(addr string, a *Admin) (*Server, error) {
	return ServeWith(addr, a, ServerOptions{})
}

// ServeWith is Serve with explicit timeouts (zero fields take defaults).
func ServeWith(addr string, a *Admin, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	opts = opts.withDefaults()
	srv := &http.Server{
		Handler:           a.Handler(),
		ReadHeaderTimeout: opts.ReadHeaderTimeout,
		ReadTimeout:       opts.ReadTimeout,
		WriteTimeout:      opts.WriteTimeout,
		IdleTimeout:       opts.IdleTimeout,
	}
	s := &Server{admin: a, srv: srv, ln: ln}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Shutdown
	return s, nil
}

// Addr returns the bound address (resolves ":0" to the chosen port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown flips /healthz unhealthy and gracefully drains the server
// within ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admin.SetHealthy(false)
	return s.srv.Shutdown(ctx)
}
