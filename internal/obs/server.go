package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Admin is the admin endpoint's handler set:
//
//	/metrics      Prometheus text exposition of the registry
//	/healthz      200 while serving, 503 once shutdown begins
//	/jobs         live batch progress (JobsView JSON)
//	/debug/vars   expvar
//	/debug/pprof  net/http/pprof profiles
//
// It is decoupled from the listener so tests drive it with httptest.
type Admin struct {
	reg     *Registry
	jobs    func() JobsView
	healthy atomic.Bool
	mux     *http.ServeMux
}

// NewAdmin builds the handler set over a registry and an optional live
// jobs view (nil serves an empty view). The endpoint starts healthy.
func NewAdmin(reg *Registry, jobs func() JobsView) *Admin {
	a := &Admin{reg: reg, jobs: jobs}
	a.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.serveMetrics)
	mux.HandleFunc("/healthz", a.serveHealthz)
	mux.HandleFunc("/jobs", a.serveJobs)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.mux = mux
	return a
}

// Handler returns the endpoint's root handler.
func (a *Admin) Handler() http.Handler { return a.mux }

// Handle mounts an additional handler on the admin mux (Go 1.22 ServeMux
// patterns). The serve-mode cache uses this to ride the same listener as
// /metrics and /healthz.
func (a *Admin) Handle(pattern string, h http.Handler) { a.mux.Handle(pattern, h) }

// SetHealthy flips the /healthz state (Server.Shutdown flips it false
// before draining, so load balancers and probes see the drain).
func (a *Admin) SetHealthy(ok bool) { a.healthy.Store(ok) }

func (a *Admin) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := a.reg.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

func (a *Admin) serveHealthz(w http.ResponseWriter, r *http.Request) {
	if !a.healthy.Load() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (a *Admin) serveJobs(w http.ResponseWriter, r *http.Request) {
	view := JobsView{Jobs: []JobStatus{}}
	if a.jobs != nil {
		view = a.jobs()
		if view.Jobs == nil {
			view.Jobs = []JobStatus{}
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(view) //nolint:errcheck // best effort over HTTP
}

// Server runs an Admin over a real listener.
type Server struct {
	admin *Admin
	srv   *http.Server
	ln    net.Listener
}

// Serve binds addr (e.g. ":9190" or "127.0.0.1:0") and serves the admin
// endpoint in the background until Shutdown.
func Serve(addr string, a *Admin) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	// Full-request timeouts, not just the header read: once this mux also
	// carries cache traffic (internal/serve), a stalled client must not be
	// able to pin a handler goroutine for the life of the process. The
	// write timeout stays above /debug/pprof/profile's 30s default.
	srv := &http.Server{
		Handler:           a.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	s := &Server{admin: a, srv: srv, ln: ln}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Shutdown
	return s, nil
}

// Addr returns the bound address (resolves ":0" to the chosen port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown flips /healthz unhealthy and gracefully drains the server
// within ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admin.SetHealthy(false)
	return s.srv.Shutdown(ctx)
}
