package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testAdmin(t *testing.T) (*Admin, *Hub) {
	t.Helper()
	hub := NewHub(HubOptions{Shards: 2})
	o := hub.Observer("morph MIX 01")
	o.JobStarted()
	o.ObserveAccess(ServedL1, 3)
	o.ObserveAccess(ServedMem, 311)
	o.CountReconfig("merge")
	o.CountEpoch()
	return NewAdmin(hub.Registry, hub.Jobs), hub
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminMetricsEndpoint(t *testing.T) {
	admin, _ := testAdmin(t)
	srv := httptest.NewServer(admin.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	n, err := ValidatePrometheusText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v\n%s", err, body)
	}
	if n == 0 {
		t.Fatal("/metrics served zero samples")
	}
	for _, want := range []string{
		`morphcache_accesses_total{served="l1"} 1`,
		`morphcache_accesses_total{served="mem"} 1`,
		`morphcache_reconfig_total{op="merge"} 1`,
		`morphcache_jobs{state="running"} 1`,
		`morphcache_access_latency_cycles_bucket{served="mem",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestAdminHealthzFlipsOnShutdown(t *testing.T) {
	admin, _ := testAdmin(t)
	srv := httptest.NewServer(admin.Handler())
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy /healthz = %d %q", code, body)
	}
	admin.SetHealthy(false)
	if code, body := get(t, srv, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "shutting down") {
		t.Fatalf("draining /healthz = %d %q", code, body)
	}
}

func TestAdminJobsEndpoint(t *testing.T) {
	admin, hub := testAdmin(t)
	srv := httptest.NewServer(admin.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/jobs")
	if code != http.StatusOK {
		t.Fatalf("/jobs status = %d", code)
	}
	var view JobsView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("/jobs is not JSON: %v\n%s", err, body)
	}
	if view.Total != 1 || view.Running != 1 {
		t.Fatalf("/jobs view = %+v", view)
	}
	if view.Jobs[0].Label != "morph MIX 01" || view.Jobs[0].State != "running" {
		t.Fatalf("/jobs row = %+v", view.Jobs[0])
	}

	// A nil jobs source serves the empty view rather than null.
	empty := NewAdmin(hub.Registry, nil)
	esrv := httptest.NewServer(empty.Handler())
	defer esrv.Close()
	if _, body := get(t, esrv, "/jobs"); !strings.Contains(body, `"jobs": []`) {
		t.Fatalf("nil jobs view = %s", body)
	}
}

func TestAdminDebugEndpoints(t *testing.T) {
	admin, _ := testAdmin(t)
	srv := httptest.NewServer(admin.Handler())
	defer srv.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol", "/debug/vars"} {
		if code, _ := get(t, srv, path); code != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, code)
		}
	}
}

func TestServeAndShutdown(t *testing.T) {
	admin, _ := testAdmin(t)
	srv, err := Serve("127.0.0.1:0", admin)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live /healthz = %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener is closed; further requests fail.
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
}

func TestServeBadAddress(t *testing.T) {
	admin, _ := testAdmin(t)
	if _, err := Serve("definitely-not-an-address:xyz", admin); err == nil {
		t.Fatal("Serve accepted a bad address")
	}
}

// slowStream writes one chunk every tick for the given total duration,
// flushing each — a stand-in for a long-lived SSE feed.
func slowStream(tick time.Duration, chunks int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fl, _ := w.(http.Flusher)
		for i := 0; i < chunks; i++ {
			time.Sleep(tick)
			if _, err := io.WriteString(w, "data: tick\n\n"); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
	})
}

// TestStreamingExemptsWriteTimeout is the regression test for the blanket
// WriteTimeout killing long-lived streaming responses: a stream that
// outlives the server's WriteTimeout dies unwrapped and survives wrapped
// in Streaming. Both cases run against a real listener (httptest servers
// configure no write timeout, so the kill would not reproduce there).
func TestStreamingExemptsWriteTimeout(t *testing.T) {
	admin, _ := testAdmin(t)
	admin.Handle("GET /bare-stream", slowStream(50*time.Millisecond, 10))
	admin.Handle("GET /stream", Streaming(slowStream(50*time.Millisecond, 10)))
	srv, err := ServeWith("127.0.0.1:0", admin, ServerOptions{WriteTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	read := func(path string) (string, error) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	// The full stream takes ~500ms against a 150ms write timeout. The
	// exempted stream must deliver every chunk.
	body, err := read("/stream")
	if err != nil {
		t.Fatalf("streaming-wrapped read failed: %v", err)
	}
	if got := strings.Count(body, "data: tick"); got != 10 {
		t.Fatalf("streaming-wrapped response delivered %d/10 chunks:\n%s", got, body)
	}

	// The bare stream must be cut off by the write timeout (the deadline
	// fires mid-stream and the connection dies). If this starts passing,
	// the server's WriteTimeout is no longer applied and Streaming is dead
	// code.
	if body, err := read("/bare-stream"); err == nil && strings.Count(body, "data: tick") == 10 {
		t.Fatalf("unwrapped stream survived a 150ms write timeout — WriteTimeout not in force")
	}
}

// TestDefaultWriteTimeoutFitsPprofProfile pins the contract that the
// default write timeout keeps /debug/pprof/profile's 30s default window
// usable: the deadline must clear 30s with margin for the profile
// serialization tail.
func TestDefaultWriteTimeoutFitsPprofProfile(t *testing.T) {
	d := DefaultServerOptions()
	if d.WriteTimeout <= 35*time.Second {
		t.Fatalf("default WriteTimeout %s leaves no room for pprof's 30s profile window", d.WriteTimeout)
	}
	if d.ReadTimeout <= d.ReadHeaderTimeout {
		t.Fatalf("read timeout %s not above header timeout %s", d.ReadTimeout, d.ReadHeaderTimeout)
	}
}

// TestHealthzVerboseDetail covers the ?verbose=1 detail view: JSON with
// the registered provider's payload, and a 503 body once unhealthy.
func TestHealthzVerboseDetail(t *testing.T) {
	admin, _ := testAdmin(t)
	admin.SetHealthDetail(func() any { return map[string]any{"epoch": 7} })
	srv := httptest.NewServer(admin.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/healthz?verbose=1")
	if code != http.StatusOK {
		t.Fatalf("verbose healthz status = %d", code)
	}
	var v struct {
		Healthy bool           `json:"healthy"`
		Detail  map[string]any `json:"detail"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("verbose healthz not JSON: %v\n%s", err, body)
	}
	if !v.Healthy || v.Detail["epoch"] != float64(7) {
		t.Fatalf("verbose healthz = %+v, want healthy with epoch 7", v)
	}

	admin.SetHealthy(false)
	code, body = get(t, srv, "/healthz?verbose=1")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("verbose healthz after SetHealthy(false) status = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil || v.Healthy {
		t.Fatalf("verbose unhealthy body = %q (err %v), want healthy:false JSON", body, err)
	}
}
