package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// The exposition-format grammar fragments the validator checks. Metric and
// label names follow the Prometheus data model.
var (
	promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ValidatePrometheusText checks that r is a well-formed Prometheus text
// exposition: every non-comment line is `name[{labels}] value`, names are
// legal, every series' name was announced by a preceding # TYPE, and
// histogram series carry consistent _bucket/_sum/_count suffixes. It
// returns the number of samples validated. The admin-endpoint tests and
// the CI obs job use it as a lightweight stand-in for promtool.
func ValidatePrometheusText(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	types := map[string]string{} // family -> type
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				name, typ := fields[2], ""
				if len(fields) == 4 {
					typ = fields[3]
				}
				if !promMetricName.MatchString(name) {
					return samples, fmt.Errorf("line %d: bad metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("line %d: bad metric type %q", lineNo, typ)
				}
				types[name] = typ
			}
			continue
		}
		name, rest, perr := parseSampleName(line)
		if perr != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		fam := histogramFamily(name, types)
		if _, ok := types[fam]; !ok {
			return samples, fmt.Errorf("line %d: series %q has no preceding # TYPE", lineNo, name)
		}
		val := strings.TrimSpace(rest)
		if _, perr := strconv.ParseFloat(val, 64); perr != nil {
			return samples, fmt.Errorf("line %d: bad sample value %q", lineNo, val)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples")
	}
	return samples, nil
}

// parseSampleName splits a sample line into its metric name (validating
// any label block) and the remainder (the value).
func parseSampleName(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !promMetricName.MatchString(name) {
		return "", "", fmt.Errorf("bad metric name %q", name)
	}
	if line[i] == ' ' {
		return name, line[i+1:], nil
	}
	// Label block: scan to the closing brace, honoring escapes in values.
	j := i + 1
	body := ""
	for ; j < len(line); j++ {
		if line[j] == '"' { // skip quoted value
			for j++; j < len(line); j++ {
				if line[j] == '\\' {
					j++
				} else if line[j] == '"' {
					break
				}
			}
			if j >= len(line) {
				return "", "", fmt.Errorf("unterminated label value in %q", line)
			}
			continue
		}
		if line[j] == '}' {
			body = line[i+1 : j]
			break
		}
	}
	if j >= len(line) {
		return "", "", fmt.Errorf("unterminated label block in %q", line)
	}
	if err := validateLabelBody(body); err != nil {
		return "", "", err
	}
	rest = line[j+1:]
	if !strings.HasPrefix(rest, " ") {
		return "", "", fmt.Errorf("missing value in %q", line)
	}
	return name, rest[1:], nil
}

// validateLabelBody checks `k="v",k2="v2"` label pair syntax.
func validateLabelBody(body string) error {
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return fmt.Errorf("label pair missing '=' in %q", body)
		}
		k := body[:eq]
		if !promLabelName.MatchString(k) {
			return fmt.Errorf("bad label name %q", k)
		}
		v := body[eq+1:]
		if !strings.HasPrefix(v, `"`) {
			return fmt.Errorf("label %q value not quoted", k)
		}
		// Find the closing quote, honoring escapes.
		end := -1
		for i := 1; i < len(v); i++ {
			if v[i] == '\\' {
				i++
			} else if v[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("label %q value unterminated", k)
		}
		body = v[end+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return nil
}

// histogramFamily maps a histogram component series back to its family
// name: name_bucket/_sum/_count belong to family name when that family was
// declared a histogram (or summary, which shares the suffixes).
func histogramFamily(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		fam, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if t := types[fam]; t == "histogram" || t == "summary" {
			return fam
		}
	}
	return name
}
