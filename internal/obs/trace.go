package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// TraceEvent is one Chrome trace-event record (the JSON array format that
// chrome://tracing and Perfetto load). The simulator emits complete events
// (ph "X", with a duration) for spans and instant events (ph "i") for
// point occurrences like fault injections.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"` // microseconds
	Dur  int64          `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// TraceDoc is the JSON object format wrapper tracecheck and the writers
// use: {"traceEvents": [...]}.
type TraceDoc struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// Tracer collects trace events. It is safe for concurrent use (every
// worker of a batch appends through one mutex; spans are built off the
// shared path and appended once, at End).
//
// Time comes from the injected clock, a monotonic microsecond counter. A
// nil clock means wall time (monotonic, starting at zero when the tracer
// is created); tests inject a deterministic counter so span timing is
// reproducible.
type Tracer struct {
	clock func() int64

	mu     sync.Mutex
	events []TraceEvent
}

// NewTracer returns a tracer over the given monotonic microsecond clock
// (nil = wall time from tracer creation).
func NewTracer(clock func() int64) *Tracer {
	if clock == nil {
		start := time.Now()
		clock = func() int64 { return time.Since(start).Microseconds() }
	}
	return &Tracer{clock: clock}
}

// Now returns the tracer's current clock reading in microseconds, or 0 on
// a nil tracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Span is an in-flight traced operation; End emits the complete event.
// The zero/nil Span is inert, so call sites need no nil checks.
type Span struct {
	t     *Tracer
	tid   int64
	cat   string
	name  string
	start int64
	args  map[string]any
}

// Begin opens a span on track tid. A nil tracer returns a nil span.
func (t *Tracer) Begin(tid int64, cat, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, tid: tid, cat: cat, name: name, start: t.clock()}
}

// Arg attaches one argument to the span (shown in the trace viewer's
// detail pane). Args must be deterministic values — they are part of the
// canonical trace shape tracecheck compares across worker counts.
func (s *Span) Arg(k string, v any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[k] = v
	return s
}

// End closes the span and records the complete event.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.t.clock()
	s.t.append(TraceEvent{
		Name: s.name, Cat: s.cat, Ph: "X",
		TS: s.start, Dur: now - s.start,
		PID: 1, TID: s.tid, Args: s.args,
	})
}

// Instant records a point event on track tid (thread scope).
func (t *Tracer) Instant(tid int64, cat, name string, args map[string]any) {
	if t == nil {
		return
	}
	t.append(TraceEvent{
		Name: name, Cat: cat, Ph: "i", S: "t",
		TS: t.clock(), PID: 1, TID: tid, Args: args,
	})
}

func (t *Tracer) append(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a copy of the collected events, sorted by (TS, TID,
// Name) so output order is stable for a given set of timestamps.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].TID != out[j].TID {
			return out[i].TID < out[j].TID
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteJSON writes the collected events as a Chrome trace document.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := TraceDoc{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// CanonicalTrace renders events stripped of every nondeterministic field
// (timestamp, duration, pid, tid) and sorted, one JSON object per line.
// Two runs of the same batch — at any worker count — produce identical
// canonical traces; cmd/tracecheck -canon exposes this for CI diffing.
func CanonicalTrace(events []TraceEvent, w io.Writer) error {
	lines := make([]string, 0, len(events))
	for _, ev := range events {
		c := struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat,omitempty"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args,omitempty"`
		}{ev.Name, ev.Cat, ev.Ph, ev.Args}
		b, err := json.Marshal(c)
		if err != nil {
			return err
		}
		lines = append(lines, string(b))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
