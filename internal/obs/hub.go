package obs

import (
	"sync"
	"time"
)

// Served-level indices of the access hooks; they mirror
// hierarchy.ServedBy (L1, L2, L3, cache-to-cache, memory) without
// importing the package (obs sits below every simulator layer).
const (
	ServedL1 = iota
	ServedL2
	ServedL3
	ServedC2C
	ServedMem
	servedLevels
)

// NumServed is the number of serving levels (the length of the arrays
// AccessStats.Snapshot returns).
const NumServed = servedLevels

// servedNames label the access metrics' served dimension.
var servedNames = [servedLevels]string{"l1", "l2", "l3", "c2c", "mem"}

// LatencyBuckets are the access-latency histogram bounds in CPU cycles,
// spanning the hierarchy's range: L1 hits (~3) through contended memory
// accesses (300 plus queueing, derated under faults).
var LatencyBuckets = []uint64{2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 2048, 4096}

// numLatencyBuckets sizes the local collectors; must match LatencyBuckets.
const numLatencyBuckets = 20

// Metrics is the live simulation metric set: per-level access counters and
// latency histograms, MorphCache decision counters, and epoch progress,
// all sharded so concurrent batch workers never contend.
type Metrics struct {
	shards   int
	served   [servedLevels]*ShardedCounter
	latency  [servedLevels]*ShardedHistogram
	reconfig map[string]*ShardedCounter // merge / split / veto
	epochs   *ShardedCounter
}

// NewMetrics registers the simulation metric families in reg with the
// given shard count (one shard per expected worker).
func NewMetrics(reg *Registry, shards int) *Metrics {
	if shards < 1 {
		shards = 1
	}
	m := &Metrics{shards: shards, reconfig: map[string]*ShardedCounter{}}
	for i, name := range servedNames {
		m.served[i] = reg.ShardedCounter("morphcache_accesses_total",
			"memory references by serving level", Labels{"served": name}, shards)
		m.latency[i] = reg.ShardedHistogram("morphcache_access_latency_cycles",
			"access latency distribution in CPU cycles by serving level", Labels{"served": name}, shards, LatencyBuckets)
	}
	for _, op := range []string{"merge", "split", "veto"} {
		m.reconfig[op] = reg.ShardedCounter("morphcache_reconfig_total",
			"MorphCache controller decisions (merges, splits, fault vetoes)", Labels{"op": op}, shards)
	}
	m.epochs = reg.ShardedCounter("morphcache_epochs_total",
		"simulated epochs completed (warmup included)", nil, shards)
	return m
}

// ServedValue returns the cumulative access count of one serving level
// (summed across shards).
func (m *Metrics) ServedValue(level int) uint64 { return m.served[level].Value() }

// ReconfigValue returns the cumulative count of one decision op ("merge",
// "split", "veto").
func (m *Metrics) ReconfigValue(op string) uint64 {
	c := m.reconfig[op]
	if c == nil {
		return 0
	}
	return c.Value()
}

// EpochsValue returns the cumulative completed-epoch count.
func (m *Metrics) EpochsValue() uint64 { return m.epochs.Value() }

// jobState is one tracked job's lifecycle position.
type jobState int32

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobFailed
)

func (s jobState) String() string {
	switch s {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	default:
		return "?"
	}
}

// jobEntry is one job's tracked state.
type jobEntry struct {
	label   string
	state   jobState
	started time.Time
	elapsed time.Duration
	err     string
}

// JobStatus is one job's row in the /jobs view.
type JobStatus struct {
	Index     int    `json:"index"`
	Label     string `json:"label"`
	State     string `json:"state"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Error     string `json:"error,omitempty"`
}

// JobsView is the /jobs JSON document: batch progress counts plus per-job
// rows in submission order.
type JobsView struct {
	Total   int         `json:"total"`
	Queued  int         `json:"queued"`
	Running int         `json:"running"`
	Done    int         `json:"done"`
	Failed  int         `json:"failed"`
	Jobs    []JobStatus `json:"jobs"`
}

// Hub ties one process's observability together: the registry, the live
// simulation metrics, the job tracker behind /jobs, and (optionally) the
// tracer. One Hub serves all batches of an invocation; each simulation job
// gets its own Observer via Observer().
type Hub struct {
	Registry *Registry
	Metrics  *Metrics
	Tracer   *Tracer // nil when tracing is off

	mu   sync.Mutex
	jobs []jobEntry
	now  func() time.Time

	queued, running Gauge
	done, failed    Gauge
}

// HubOptions configures NewHub.
type HubOptions struct {
	// Shards is the expected worker count (the sharding degree of the
	// metric families); <= 0 means 1.
	Shards int
	// Trace enables span collection.
	Trace bool
	// Clock is the tracer's monotonic microsecond clock (nil = wall time).
	Clock func() int64
	// Now is the job tracker's time source (nil = time.Now). Injecting it
	// keeps /jobs output testable and job timestamps consistent with an
	// injected trace Clock.
	Now func() time.Time
}

// NewHub builds a hub with a fresh registry.
func NewHub(opts HubOptions) *Hub {
	h := &Hub{Registry: NewRegistry(), now: opts.Now}
	if h.now == nil {
		h.now = time.Now
	}
	h.Metrics = NewMetrics(h.Registry, opts.Shards)
	if opts.Trace {
		h.Tracer = NewTracer(opts.Clock)
	}
	h.Registry.RegisterGaugeFunc("morphcache_jobs", "batch jobs by state", Labels{"state": "queued"},
		func() float64 { return float64(h.queued.Value()) })
	h.Registry.RegisterGaugeFunc("morphcache_jobs", "batch jobs by state", Labels{"state": "running"},
		func() float64 { return float64(h.running.Value()) })
	h.Registry.RegisterGaugeFunc("morphcache_jobs", "batch jobs by state", Labels{"state": "done"},
		func() float64 { return float64(h.done.Value()) })
	h.Registry.RegisterGaugeFunc("morphcache_jobs", "batch jobs by state", Labels{"state": "failed"},
		func() float64 { return float64(h.failed.Value()) })
	return h
}

// Observer registers a new tracked job and returns its observer: metric
// handles bound to the job's shard, the hub's tracer, and a trace track id
// equal to the job's registration order. Safe for concurrent use.
func (h *Hub) Observer(label string) *Observer {
	h.mu.Lock()
	id := len(h.jobs)
	h.jobs = append(h.jobs, jobEntry{label: label, state: jobQueued})
	h.mu.Unlock()
	h.queued.Add(1)

	o := &Observer{hub: h, job: id, Tracer: h.Tracer, TID: int64(id + 1)}
	o.bind(h.Metrics, id)
	return o
}

// Jobs returns the current /jobs view.
func (h *Hub) Jobs() JobsView {
	h.mu.Lock()
	defer h.mu.Unlock()
	v := JobsView{Total: len(h.jobs), Jobs: make([]JobStatus, len(h.jobs))}
	for i, j := range h.jobs {
		st := JobStatus{Index: i, Label: j.label, State: j.state.String(), Error: j.err}
		switch j.state {
		case jobQueued:
			v.Queued++
		case jobRunning:
			v.Running++
			st.ElapsedMS = h.now().Sub(j.started).Milliseconds()
		case jobDone:
			v.Done++
			st.ElapsedMS = j.elapsed.Milliseconds()
		case jobFailed:
			v.Failed++
			st.ElapsedMS = j.elapsed.Milliseconds()
		}
		v.Jobs[i] = st
	}
	return v
}

// Observer is one simulation run's observability hooks: shard-bound metric
// handles, an optional per-run access-latency collector (for telemetry
// percentile summaries), and the tracer with this run's track id.
//
// A nil *Observer is valid everywhere and records nothing — the simulator
// consults it behind single nil checks, so default runs pay nothing.
type Observer struct {
	hub *Hub
	job int

	// Access, when non-nil, collects this run's per-level latency
	// histograms locally (single-goroutine, no atomics needed by the
	// consumer — the engine diffs snapshots at epoch boundaries into
	// telemetry latency summaries).
	Access *AccessStats

	// Tracer and TID address this run's span track (Tracer nil = off).
	Tracer *Tracer
	TID    int64

	// Shard-bound live metric handles (nil when the observer is not
	// attached to a Hub, e.g. a bare Observer built for telemetry only).
	served   [servedLevels]*Counter
	latency  [servedLevels]*Histogram
	reconfig map[string]*Counter
	epochs   *Counter

	span *Span // the job's lifecycle span, Begin/End by JobStarted/Finished
}

// bind resolves the observer's shard-local metric handles.
func (o *Observer) bind(m *Metrics, shard int) {
	for i := range o.served {
		o.served[i] = m.served[i].Shard(shard)
		o.latency[i] = m.latency[i].Shard(shard)
	}
	o.reconfig = map[string]*Counter{}
	for op, c := range m.reconfig {
		o.reconfig[op] = c.Shard(shard)
	}
	o.epochs = m.epochs.Shard(shard)
}

// ObserveAccess records one memory reference's outcome: the serving level
// (a Served* constant) and its latency in cycles. Called from the
// hierarchy's access path behind a single nil check.
func (o *Observer) ObserveAccess(served int, cycles int) {
	if o.Access != nil {
		o.Access.observe(served, uint64(cycles))
	}
	if o.served[served] != nil {
		o.served[served].Inc()
		o.latency[served].Observe(uint64(cycles))
	}
}

// CountReconfig counts one controller decision ("merge", "split", or
// "veto" — a fault-blocked operation). Nil-safe.
func (o *Observer) CountReconfig(op string) {
	if o == nil || o.reconfig == nil {
		return
	}
	if c := o.reconfig[op]; c != nil {
		c.Inc()
	}
}

// CountEpoch counts one completed simulation epoch. Nil-safe.
func (o *Observer) CountEpoch() {
	if o == nil || o.epochs == nil {
		return
	}
	o.epochs.Inc()
}

// Span opens a span on this run's trace track. Nil-safe: with no observer
// or no tracer it returns an inert nil span.
func (o *Observer) Span(cat, name string) *Span {
	if o == nil {
		return nil
	}
	return o.Tracer.Begin(o.TID, cat, name)
}

// Instant records an instant event on this run's trace track. Nil-safe.
func (o *Observer) Instant(cat, name string, args map[string]any) {
	if o == nil {
		return
	}
	o.Tracer.Instant(o.TID, cat, name, args)
}

// JobStarted marks the tracked job running and opens its lifecycle span.
// Nil-safe; called by the batch layer on the worker goroutine.
func (o *Observer) JobStarted() {
	if o == nil || o.hub == nil {
		return
	}
	h := o.hub
	h.mu.Lock()
	j := &h.jobs[o.job]
	label := j.label
	j.state = jobRunning
	j.started = h.now()
	h.mu.Unlock()
	h.queued.Add(-1)
	h.running.Add(1)
	o.span = o.Span("job", label).Arg("index", o.job)
}

// JobFinished marks the tracked job done or failed and closes its span.
// Nil-safe.
func (o *Observer) JobFinished(err error, elapsed time.Duration) {
	if o == nil || o.hub == nil {
		return
	}
	h := o.hub
	h.mu.Lock()
	j := &h.jobs[o.job]
	j.elapsed = elapsed
	if err != nil {
		j.state = jobFailed
		j.err = err.Error()
	} else {
		j.state = jobDone
	}
	h.mu.Unlock()
	h.running.Add(-1)
	if err != nil {
		h.failed.Add(1)
		o.span.Arg("failed", true)
	} else {
		h.done.Add(1)
	}
	o.span.End()
	o.span = nil
}

// AccessStats collects one run's per-level latency histograms. It is
// written by the run's single goroutine only (plain counters, no atomics):
// the engine owns it and snapshots it at epoch boundaries.
type AccessStats struct {
	levels [servedLevels]localHist
}

// localHist is a plain fixed-bucket histogram over LatencyBuckets.
type localHist struct {
	counts [numLatencyBuckets + 1]uint64 // +1 for the overflow bucket
	count  uint64
	sum    uint64
}

// NewAccessStats returns an empty collector.
func NewAccessStats() *AccessStats { return &AccessStats{} }

func (a *AccessStats) observe(level int, v uint64) {
	h := &a.levels[level]
	// Linear scan: the bucket list is short and the common case (L1 hits,
	// small latencies) exits in the first few comparisons.
	i := 0
	for i < len(LatencyBuckets) && v > LatencyBuckets[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Snapshot returns per-level histogram snapshots (Served* order). Bounds
// are shared; Counts are copies.
func (a *AccessStats) Snapshot() [servedLevels]HistSnapshot {
	var out [servedLevels]HistSnapshot
	for l := range a.levels {
		h := &a.levels[l]
		out[l] = HistSnapshot{
			Bounds: LatencyBuckets,
			Counts: append([]uint64(nil), h.counts[:]...),
			Count:  h.count,
			Sum:    h.sum,
		}
	}
	return out
}
