package obs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestShardedCounterConcurrent(t *testing.T) {
	s := NewShardedCounter(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.Shard(w) // wraps past the shard count
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := s.Value(); got != 8000 {
		t.Fatalf("sharded counter = %d, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]uint64{10, 20, 40})
	for _, v := range []uint64{1, 10, 11, 20, 39, 41, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 1, 2} // <=10, <=20, <=40, +Inf
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 || s.Sum != 1+10+11+20+39+41+1000 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]uint64{10, 20, 40})
	// 100 observations uniformly in the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("P50 = %v, want within (0, 10]", q)
	}
	// Empty histogram reports zero.
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	// Overflow-dominated histogram reports the largest finite bound.
	h2 := NewHistogram([]uint64{10})
	h2.Observe(99)
	if q := h2.Snapshot().Quantile(0.99); q != 10 {
		t.Fatalf("overflow quantile = %v, want 10", q)
	}
}

func TestHistSnapshotSub(t *testing.T) {
	h := NewHistogram([]uint64{10, 20})
	h.Observe(5)
	prev := h.Snapshot()
	h.Observe(15)
	h.Observe(25)
	d := h.Snapshot().Sub(prev)
	if d.Count != 2 || d.Sum != 40 {
		t.Fatalf("delta count/sum = %d/%d, want 2/40", d.Count, d.Sum)
	}
	if d.Counts[0] != 0 || d.Counts[1] != 1 || d.Counts[2] != 1 {
		t.Fatalf("delta counts = %v", d.Counts)
	}
	// Subtracting the zero snapshot (nil Counts) is the epoch-0 baseline.
	zero := HistSnapshot{}
	d0 := prev.Sub(zero)
	if d0.Count != 1 {
		t.Fatalf("baseline delta count = %d, want 1", d0.Count)
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "a test counter", Labels{"kind": "x"})
	c.Add(3)
	reg.Gauge("test_gauge", "a gauge", nil).Set(9)
	h := NewHistogram([]uint64{1, 2})
	h.Observe(1)
	h.Observe(5)
	reg.RegisterHistogramFunc("test_hist", "a histogram", nil, h.Snapshot)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_total counter",
		`test_total{kind="x"} 3`,
		"# TYPE test_gauge gauge",
		"test_gauge 9",
		"# TYPE test_hist histogram",
		`test_hist_bucket{le="1"} 1`,
		`test_hist_bucket{le="2"} 1`,
		`test_hist_bucket{le="+Inf"} 2`,
		"test_hist_sum 6",
		"test_hist_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	n, err := ValidatePrometheusText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("self-validation failed: %v\n%s", err, out)
	}
	if n == 0 {
		t.Fatal("no samples validated")
	}
}

func TestRegistryDeterministicOrder(t *testing.T) {
	render := func() string {
		reg := NewRegistry()
		reg.Counter("b_total", "", Labels{"x": "2"}).Inc()
		reg.Counter("a_total", "", nil).Inc()
		reg.Counter("b_total", "", Labels{"x": "1"}).Inc()
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("nondeterministic output:\n%s\n---\n%s", a, b)
	}
}

func TestValidatePrometheusTextRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":    "foo 1\n",
		"bad value":  "# TYPE foo counter\nfoo abc\n",
		"bad name":   "# TYPE 1foo counter\n1foo 1\n",
		"empty":      "",
		"bad labels": "# TYPE foo counter\nfoo{x=1} 1\n",
		"unterm":     "# TYPE foo counter\nfoo{x=\"1} 1\n",
		"bad type":   "# TYPE foo banana\nfoo 1\n",
	}
	for name, in := range cases {
		if _, err := ValidatePrometheusText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated bad input %q", name, in)
		}
	}
}

// fakeClock is a deterministic microsecond counter for tracer tests.
func fakeClock() func() int64 {
	var t int64
	return func() int64 {
		t += 10
		return t
	}
}

func TestTracerSpansAndInstants(t *testing.T) {
	tr := NewTracer(fakeClock())
	sp := tr.Begin(1, "sim", "epoch").Arg("epoch", 0)
	tr.Instant(1, "sim", "fault", map[string]any{"event": "x"})
	sp.End()
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Sorted by TS: the span began at t=10, the instant fired at t=20.
	if evs[0].Name != "epoch" || evs[0].Ph != "X" || evs[0].Dur != 20 {
		t.Fatalf("span event = %+v", evs[0])
	}
	if evs[1].Name != "fault" || evs[1].Ph != "i" || evs[1].S != "t" {
		t.Fatalf("instant event = %+v", evs[1])
	}
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin(1, "a", "b")
	sp.Arg("k", "v")
	sp.End() // must not panic
	tr.Instant(1, "a", "b", nil)
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil tracer returned events: %v", evs)
	}
	if tr.Now() != 0 {
		t.Fatal("nil tracer Now() != 0")
	}
}

func TestCanonicalTraceIgnoresTiming(t *testing.T) {
	build := func(base int64, tid int64) []TraceEvent {
		var tick int64 = base
		tr := NewTracer(func() int64 { tick += 7; return tick })
		tr.Begin(tid, "sim", "epoch").Arg("epoch", 1).End()
		tr.Begin(tid, "job", "morph MIX 01").End()
		return tr.Events()
	}
	var a, b bytes.Buffer
	if err := CanonicalTrace(build(0, 1), &a); err != nil {
		t.Fatal(err)
	}
	if err := CanonicalTrace(build(1000, 5), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("canonical traces differ:\n%s---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), `"epoch"`) {
		t.Fatalf("canonical trace missing span name:\n%s", a.String())
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(fakeClock())
	tr.Begin(1, "sim", "epoch").End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Fatalf("missing traceEvents wrapper:\n%s", buf.String())
	}
}

func TestHubObserverLifecycle(t *testing.T) {
	h := NewHub(HubOptions{Shards: 2, Trace: true, Clock: fakeClock()})
	a := h.Observer("job-a")
	b := h.Observer("job-b")

	v := h.Jobs()
	if v.Total != 2 || v.Queued != 2 {
		t.Fatalf("initial view = %+v", v)
	}

	a.JobStarted()
	v = h.Jobs()
	if v.Queued != 1 || v.Running != 1 {
		t.Fatalf("after start = %+v", v)
	}

	a.JobFinished(nil, 5*time.Millisecond)
	b.JobStarted()
	b.JobFinished(errors.New("boom"), time.Millisecond)
	v = h.Jobs()
	if v.Done != 1 || v.Failed != 1 || v.Running != 0 || v.Queued != 0 {
		t.Fatalf("final view = %+v", v)
	}
	if v.Jobs[1].Error != "boom" || v.Jobs[1].State != "failed" {
		t.Fatalf("failed job row = %+v", v.Jobs[1])
	}
	if v.Jobs[0].ElapsedMS != 5 {
		t.Fatalf("elapsed = %d, want 5", v.Jobs[0].ElapsedMS)
	}

	// The lifecycle left one job span per observer in the trace.
	evs := h.Tracer.Events()
	if len(evs) != 2 {
		t.Fatalf("trace events = %d, want 2 job spans", len(evs))
	}
	for _, ev := range evs {
		if ev.Cat != "job" {
			t.Fatalf("unexpected span %+v", ev)
		}
	}
}

func TestObserverMetricsFlow(t *testing.T) {
	h := NewHub(HubOptions{Shards: 2})
	o := h.Observer("job")
	o.Access = NewAccessStats()
	o.ObserveAccess(ServedL1, 3)
	o.ObserveAccess(ServedL1, 3)
	o.ObserveAccess(ServedMem, 300)
	o.CountReconfig("merge")
	o.CountReconfig("veto")
	o.CountEpoch()

	if got := h.Metrics.served[ServedL1].Value(); got != 2 {
		t.Fatalf("l1 accesses = %d, want 2", got)
	}
	if got := h.Metrics.served[ServedMem].Value(); got != 1 {
		t.Fatalf("mem accesses = %d, want 1", got)
	}
	if got := h.Metrics.reconfig["merge"].Value(); got != 1 {
		t.Fatalf("merges = %d, want 1", got)
	}
	if got := h.Metrics.epochs.Value(); got != 1 {
		t.Fatalf("epochs = %d, want 1", got)
	}
	snap := o.Access.Snapshot()
	if snap[ServedL1].Count != 2 || snap[ServedMem].Count != 1 {
		t.Fatalf("access stats counts = %d/%d", snap[ServedL1].Count, snap[ServedMem].Count)
	}
	if snap[ServedMem].Sum != 300 {
		t.Fatalf("mem latency sum = %d", snap[ServedMem].Sum)
	}

	// The whole hub renders as valid Prometheus text.
	var buf bytes.Buffer
	if err := h.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePrometheusText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("hub registry invalid: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		`morphcache_accesses_total{served="l1"} 2`,
		`morphcache_reconfig_total{op="merge"} 1`,
		`morphcache_jobs{state="queued"} 1`,
		`morphcache_epochs_total 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	o.CountReconfig("merge")
	o.CountEpoch()
	o.JobStarted()
	o.JobFinished(nil, 0)
	o.Instant("a", "b", nil)
	o.Span("a", "b").Arg("k", 1).End()
}

func TestBareObserverCollectsAccessOnly(t *testing.T) {
	// The engine mints a bare observer for telemetry-only runs: no hub, no
	// tracer, just the per-run access stats.
	o := &Observer{Access: NewAccessStats()}
	o.ObserveAccess(ServedL2, 12)
	o.CountReconfig("split") // no-op without a hub
	o.CountEpoch()           // no-op without a hub
	s := o.Access.Snapshot()
	if s[ServedL2].Count != 1 || s[ServedL2].Sum != 12 {
		t.Fatalf("bare observer stats = %+v", s[ServedL2])
	}
}

func TestLatencyBucketsMatchConstant(t *testing.T) {
	if len(LatencyBuckets) != numLatencyBuckets {
		t.Fatalf("numLatencyBuckets = %d but len(LatencyBuckets) = %d",
			numLatencyBuckets, len(LatencyBuckets))
	}
}

func TestRegistryDuplicateSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series did not panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("dup_total", "", Labels{"a": "1"})
	reg.Counter("dup_total", "", Labels{"a": "1"})
}

func TestEscapeLabel(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "", Labels{"l": "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePrometheusText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("escaped label invalid: %v\n%s", err, buf.String())
	}
}

func BenchmarkObserveAccess(b *testing.B) {
	h := NewHub(HubOptions{Shards: 1})
	o := h.Observer("bench")
	o.Access = NewAccessStats()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.ObserveAccess(ServedL1, 3)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i & 1023))
	}
}

func ExampleRegistry() {
	reg := NewRegistry()
	reg.Counter("example_total", "an example", nil).Add(2)
	var buf bytes.Buffer
	_ = reg.WritePrometheus(&buf)
	fmt.Print(buf.String())
	// Output:
	// # HELP example_total an example
	// # TYPE example_total counter
	// example_total 2
}

func TestHubInjectedClock(t *testing.T) {
	// A fake clock makes /jobs ElapsedMS deterministic: running jobs report
	// exactly the fake time elapsed since JobStarted, not wall time.
	now := time.Unix(1000, 0)
	h := NewHub(HubOptions{Shards: 1, Now: func() time.Time { return now }})
	o := h.Observer("fig13")
	o.JobStarted()
	now = now.Add(1500 * time.Millisecond)
	v := h.Jobs()
	if len(v.Jobs) != 1 || v.Jobs[0].State != "running" {
		t.Fatalf("jobs view = %+v", v)
	}
	if v.Jobs[0].ElapsedMS != 1500 {
		t.Fatalf("running ElapsedMS = %d, want 1500 from the injected clock", v.Jobs[0].ElapsedMS)
	}
	// Finished jobs report the elapsed duration passed by the batch layer,
	// untouched by the clock.
	o.JobFinished(nil, 2*time.Second)
	if got := h.Jobs().Jobs[0].ElapsedMS; got != 2000 {
		t.Fatalf("done ElapsedMS = %d, want 2000", got)
	}
}
