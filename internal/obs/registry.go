// Package obs is the live observability layer of the simulator: a metrics
// registry of lock-free atomic counters, gauges, and fixed-bucket
// histograms (sharded per worker so the runner pool never contends on one
// cache line), a Prometheus-text / expvar / pprof admin HTTP server, and a
// span tracer that emits Chrome trace-event JSON.
//
// Design constraints (DESIGN.md §10):
//
//   - Zero cost when disabled. Every hook in the simulator is behind one
//     nil check; a nil *Observer records nothing, and default runs are
//     byte-identical and benchmark-neutral with the package compiled in.
//   - Observation never changes results. The observer only reads what the
//     simulation already computed; enabling -admin or -trace leaves stdout
//     and report output byte-identical.
//   - Deterministic where it matters. The tracer runs against an injected
//     monotonic clock, so tests drive it with a counter; the span
//     *structure* (names, categories, args) of a batch is identical at any
//     worker count — only timestamps and track ids move.
//
// The package depends only on the standard library so every layer of the
// simulator can use it without import cycles.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// counterCell pads a Counter out to its own cache line so per-shard
// counters written by different workers never false-share.
type counterCell struct {
	c Counter
	_ [56]byte
}

// ShardedCounter spreads increments across per-worker cells; reads sum
// them. Writers use their own shard and never contend.
type ShardedCounter struct{ cells []counterCell }

// NewShardedCounter returns a counter with the given shard count (minimum 1).
func NewShardedCounter(shards int) *ShardedCounter {
	if shards < 1 {
		shards = 1
	}
	return &ShardedCounter{cells: make([]counterCell, shards)}
}

// Shard returns shard i's counter (wrapping, so any index is safe).
func (s *ShardedCounter) Shard(i int) *Counter {
	return &s.cells[i%len(s.cells)].c
}

// Value sums all shards.
func (s *ShardedCounter) Value() uint64 {
	var t uint64
	for i := range s.cells {
		t += s.cells[i].c.Value()
	}
	return t
}

// RequestLatencyBuckets are histogram bounds for request-scale latencies
// in microseconds: sub-millisecond in-memory hits through multi-second
// degraded tail requests. The simulator's cycle-scale LatencyBuckets
// (hub.go) are three orders of magnitude too fine for a served request,
// so the serve-mode request histograms use these instead.
var RequestLatencyBuckets = []uint64{
	5, 10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
	250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
}

// Histogram is a fixed-bucket histogram of uint64 observations (CPU
// cycles, here). Bucket i counts observations <= Bounds[i]; one overflow
// bucket counts the rest. All operations are lock-free atomics, so one
// histogram may be written by a worker while the admin server reads it.
type Histogram struct {
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1, last = overflow (+Inf)
	count   atomic.Uint64
	sum     atomic.Uint64
}

// NewHistogram returns a histogram over the given strictly increasing
// upper bounds.
func NewHistogram(bounds []uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds:  append([]uint64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[h.bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// bucketOf locates the bucket for v by binary search.
func (h *Histogram) bucketOf(v uint64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Snapshot returns a consistent-enough copy for export (buckets are read
// individually; a concurrent Observe may straddle, which Prometheus
// scraping tolerates).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a histogram's state. Bounds is
// shared with the source histogram and must not be mutated.
type HistSnapshot struct {
	Bounds []uint64
	Counts []uint64 // len(Bounds)+1; last is the overflow (+Inf) bucket
	Count  uint64
	Sum    uint64
}

// Sub returns the delta histogram between two snapshots of the same
// histogram (s - prev), used for per-epoch distributions.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i]
		if i < len(prev.Counts) {
			d.Counts[i] -= prev.Counts[i]
		}
	}
	return d
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the containing bucket, Prometheus-style. The
// overflow bucket reports its lower bound (the largest finite bound).
// Returns 0 on an empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: no finite upper edge to interpolate to.
			if len(s.Bounds) == 0 {
				return 0
			}
			return float64(s.Bounds[len(s.Bounds)-1])
		}
		lower := 0.0
		if i > 0 {
			lower = float64(s.Bounds[i-1])
		}
		upper := float64(s.Bounds[i])
		if c == 0 {
			return upper
		}
		inBucket := rank - float64(cum-c)
		return lower + (upper-lower)*(inBucket/float64(c))
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// ShardedHistogram spreads observations across per-worker histograms;
// Snapshot merges them. Each shard's buckets live in their own allocation,
// so workers never share write cache lines.
type ShardedHistogram struct{ shards []*Histogram }

// NewShardedHistogram returns a per-shard histogram family over bounds.
func NewShardedHistogram(shards int, bounds []uint64) *ShardedHistogram {
	if shards < 1 {
		shards = 1
	}
	s := &ShardedHistogram{shards: make([]*Histogram, shards)}
	for i := range s.shards {
		s.shards[i] = NewHistogram(bounds)
	}
	return s
}

// Shard returns shard i's histogram (wrapping).
func (s *ShardedHistogram) Shard(i int) *Histogram {
	return s.shards[i%len(s.shards)]
}

// Snapshot merges all shards.
func (s *ShardedHistogram) Snapshot() HistSnapshot {
	out := s.shards[0].Snapshot()
	// The first shard's snapshot owns fresh Counts; fold the rest in.
	for _, h := range s.shards[1:] {
		sn := h.Snapshot()
		for i := range out.Counts {
			out.Counts[i] += sn.Counts[i]
		}
		out.Count += sn.Count
		out.Sum += sn.Sum
	}
	return out
}

// Labels are one metric series' label set.
type Labels map[string]string

// renderLabels produces the canonical {k="v",...} form, keys sorted.
func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// series is one exported time series.
type series struct {
	labels string
	value  func() float64      // counter/gauge
	hist   func() HistSnapshot // histogram
}

// family is one named metric with help, type, and its series.
type family struct {
	name, help, typ string
	series          []series
}

// Registry holds the process's metric families and renders them in the
// Prometheus text exposition format. Registration takes a lock; reading a
// metric's value at scrape time goes through the registered closure (the
// atomic loads above), so the hot path never touches the registry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func (r *Registry) register(name, help, typ string, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	for _, have := range f.series {
		if have.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// RegisterCounterFunc exports a counter read through f.
func (r *Registry) RegisterCounterFunc(name, help string, labels Labels, f func() uint64) {
	r.register(name, help, "counter", series{labels: renderLabels(labels), value: func() float64 { return float64(f()) }})
}

// RegisterGaugeFunc exports a gauge read through f.
func (r *Registry) RegisterGaugeFunc(name, help string, labels Labels, f func() float64) {
	r.register(name, help, "gauge", series{labels: renderLabels(labels), value: f})
}

// RegisterHistogramFunc exports a histogram read through f.
func (r *Registry) RegisterHistogramFunc(name, help string, labels Labels, f func() HistSnapshot) {
	r.register(name, help, "histogram", series{labels: renderLabels(labels), hist: f})
}

// Counter creates, registers, and returns a plain counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.RegisterCounterFunc(name, help, labels, c.Value)
	return c
}

// Gauge creates, registers, and returns a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.RegisterGaugeFunc(name, help, labels, func() float64 { return float64(g.Value()) })
	return g
}

// ShardedCounter creates, registers, and returns a sharded counter.
func (r *Registry) ShardedCounter(name, help string, labels Labels, shards int) *ShardedCounter {
	c := NewShardedCounter(shards)
	r.RegisterCounterFunc(name, help, labels, c.Value)
	return c
}

// ShardedHistogram creates, registers, and returns a sharded histogram.
func (r *Registry) ShardedHistogram(name, help string, labels Labels, shards int, bounds []uint64) *ShardedHistogram {
	h := NewShardedHistogram(shards, bounds)
	r.RegisterHistogramFunc(name, help, labels, h.Snapshot)
	return h
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name and series by label string, so output is
// deterministic for a given metric state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		ss := append([]series(nil), f.series...)
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, s := range ss {
			var err error
			if s.hist != nil {
				err = writeHistogram(w, f.name, s.labels, s.hist())
			} else {
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.value()))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// with le labels, then _sum and _count.
func writeHistogram(w io.Writer, name, labels string, s HistSnapshot) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	le := func(bound string) string {
		if inner == "" {
			return `{le="` + bound + `"}`
		}
		return "{" + inner + `,le="` + bound + `"}`
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		bound := "+Inf"
		if i < len(s.Bounds) {
			bound = strconv.FormatUint(s.Bounds[i], 10)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le(bound), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
	return err
}

// formatValue renders a sample value compactly and losslessly.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
