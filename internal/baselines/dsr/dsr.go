// Package dsr implements the Dynamic Spill-Receive baseline (Qureshi, HPCA
// 2009) extended to both the L2 and L3 caches, the private-cache competitor
// of the paper's Fig. 17.
//
// Each level keeps per-core private slices. Every slice learns, by set
// dueling, whether it is better off as a *spiller* (its evictions are
// installed into another slice, giving it remote capacity) or a *receiver*
// (it accepts other slices' spills, donating capacity):
//
//   - A few sets of each slice always behave as a spiller, a few others
//     always as a receiver; a per-slice saturating counter (PSEL) tracks
//     which sample population misses less, and follower sets adopt the
//     winner.
//   - On a miss in the local slice, all peer slices are snooped; a hit in a
//     peer costs the remote (bus) latency, exactly like a merged-slice hit
//     in MorphCache.
//
// Like PIPP, DSR is topology-agnostic: it moves lines between fixed private
// slices rather than reshaping the hierarchy, and it manages the two levels
// independently (non-inclusive).
package dsr

import (
	"math/bits"

	"morphcache/internal/cache"
	"morphcache/internal/hierarchy"
	"morphcache/internal/mem"
	"morphcache/internal/metrics"
	"morphcache/internal/sim"
	"morphcache/internal/workload"
)

// Options tunes the DSR mechanism.
type Options struct {
	// SampleEvery: in every window of this many sets, set 0 is an
	// always-spill sample and set SampleEvery/2 an always-receive sample.
	SampleEvery int
	// PSELMax bounds the saturating counter (starts at the midpoint).
	PSELMax int
}

// DefaultOptions returns the dueling constants.
func DefaultOptions() Options { return Options{SampleEvery: 32, PSELMax: 1024} }

// System is the two-level DSR hierarchy implementing sim.Target.
type System struct {
	cores    int
	p        hierarchy.Params
	opts     Options
	l1       []*cache.Slice
	l2, l3   *level
	coreASID []mem.ASID
}

// New builds the DSR system with Table 3 slice parameters.
func New(p hierarchy.Params, opts Options) *System {
	s := &System{cores: p.Cores, p: p, opts: opts, coreASID: make([]mem.ASID, p.Cores)}
	for i := 0; i < p.Cores; i++ {
		s.l1 = append(s.l1, cache.New(cache.Config{SizeBytes: p.L1SizeBytes, Ways: p.L1Ways, Policy: cache.LRU}))
	}
	remote := p.BusTiming.OverheadCPUCycles()
	s.l2 = newLevel(p.Cores, cache.Config{SizeBytes: p.L2SliceBytes, Ways: p.L2Ways, Policy: cache.LRU},
		p.L2LocalCycles, p.L2LocalCycles+remote, opts)
	s.l3 = newLevel(p.Cores, cache.Config{SizeBytes: p.L3SliceBytes, Ways: p.L3Ways, Policy: cache.LRU},
		p.L3LocalCycles, p.L3LocalCycles+remote, opts)
	return s
}

// Name implements sim.Target.
func (s *System) Name() string { return "DSR" }

// Cores implements sim.Target.
func (s *System) Cores() int { return s.cores }

// Spec implements sim.Target.
func (s *System) Spec() string { return "DSR(L2+L3)" }

// SetCoreASID implements sim.Target.
func (s *System) SetCoreASID(core int, asid mem.ASID) { s.coreASID[core] = asid }

// EndEpoch implements sim.Target (PSEL adapts continuously; nothing to do).
func (s *System) EndEpoch(int) (int, bool) { return 0, false }

// SpillerCount returns how many slices currently act as spillers at L2
// (diagnostics and tests).
func (s *System) SpillerCount() int {
	n := 0
	for i := 0; i < s.cores; i++ {
		if s.l2.isSpiller(i) {
			n++
		}
	}
	return n
}

// Access implements sim.Target.
func (s *System) Access(core int, a mem.Access, _ uint64) hierarchy.AccessResult {
	gl := a.Global()
	write := a.Kind == mem.Write
	lat := s.p.L1HitCycles
	if s.l1[core].Access(a.ASID, a.Line, write) >= 0 {
		if write {
			s.invalidateOtherL1s(core, gl)
		}
		return hierarchy.AccessResult{Latency: lat, Served: hierarchy.ByL1}
	}

	if cost, remote, ok := s.l2.access(core, gl, write); ok {
		lat += cost
		s.fillL1(core, a, write)
		if write {
			s.invalidateOtherL1s(core, gl)
		}
		return hierarchy.AccessResult{Latency: lat, Served: hierarchy.ByL2, Remote: remote}
	}

	if cost, remote, ok := s.l3.access(core, gl, false); ok {
		lat += cost
		s.l2.fill(core, gl, write)
		s.fillL1(core, a, write)
		if write {
			s.invalidateOtherL1s(core, gl)
		}
		return hierarchy.AccessResult{Latency: lat, Served: hierarchy.ByL3, Remote: remote}
	}

	lat += s.p.MemCycles
	s.l3.fill(core, gl, false)
	s.l2.fill(core, gl, write)
	s.fillL1(core, a, write)
	if write {
		s.invalidateOtherL1s(core, gl)
	}
	return hierarchy.AccessResult{Latency: lat, Served: hierarchy.ByMemory}
}

func (s *System) fillL1(core int, a mem.Access, write bool) {
	old := s.l1[core].Insert(a.ASID, a.Line, write)
	if old.Valid && old.Dirty {
		ogl := mem.GlobalLine{ASID: old.ASID, Line: old.Line}
		if !s.l2.setDirty(ogl) {
			s.l3.setDirty(ogl)
		}
	}
}

func (s *System) invalidateOtherL1s(core int, gl mem.GlobalLine) {
	for c := range s.l1 {
		if c != core {
			s.l1[c].Invalidate(gl.ASID, gl.Line)
		}
	}
	// A write also invalidates copies of the line in other slices at both
	// levels (replicated shared data or stale spills).
	s.l2.invalidateExcept(core, gl)
	s.l3.invalidateExcept(core, gl)
}

// --- one DSR level ----------------------------------------------------------

type level struct {
	slices        []*cache.Slice
	present       map[mem.GlobalLine]uint32
	psel          []int // > mid: spilling wins
	opts          Options
	local, remote int
	nextReceiver  int
	sets          int
}

func newLevel(cores int, cfg cache.Config, local, remote int, opts Options) *level {
	lv := &level{
		present: make(map[mem.GlobalLine]uint32),
		psel:    make([]int, cores),
		opts:    opts,
		local:   local, remote: remote,
		sets: cfg.Sets(),
	}
	clock := &cache.Clock{}
	for i := 0; i < cores; i++ {
		sl := cache.New(cfg)
		sl.ShareClock(clock)
		lv.slices = append(lv.slices, sl)
		lv.psel[i] = opts.PSELMax / 2
	}
	return lv
}

// setRole classifies a set index: +1 always-spill sample, -1 always-receive
// sample, 0 follower.
func (lv *level) setRole(set int) int {
	m := set % lv.opts.SampleEvery
	switch m {
	case 0:
		return +1
	case lv.opts.SampleEvery / 2:
		return -1
	default:
		return 0
	}
}

func (lv *level) isSpiller(slice int) bool { return lv.psel[slice] > lv.opts.PSELMax/2 }

// access looks up the line for the core, snooping peers on a local miss.
// Returns (latency, remote?, hit?).
func (lv *level) access(core int, gl mem.GlobalLine, write bool) (int, bool, bool) {
	sl := lv.slices[core]
	if w := sl.Access(gl.ASID, gl.Line, write); w >= 0 {
		return lv.local, false, true
	}
	// Miss in the local slice: update the dueling counter by sample role.
	set := sl.SetIndex(gl.Line)
	switch lv.setRole(set) {
	case +1:
		// The spill-sample population missing argues against spilling.
		if lv.psel[core] > 0 {
			lv.psel[core]--
		}
	case -1:
		if lv.psel[core] < lv.opts.PSELMax {
			lv.psel[core]++
		}
	}
	// Snoop peers for a spilled or replicated copy.
	mask := lv.present[gl] &^ (1 << uint(core))
	if mask != 0 {
		peer := bits.TrailingZeros32(mask)
		if w := lv.slices[peer].Access(gl.ASID, gl.Line, write); w >= 0 {
			return lv.remote, true, true
		}
	}
	return 0, false, false
}

// fill installs the line in the core's own slice; if the slice (or the
// sample role of the victim's set) is in spill mode, the victim is spilled
// to a receiver peer instead of being dropped.
func (lv *level) fill(core int, gl mem.GlobalLine, dirty bool) {
	old := lv.slices[core].Insert(gl.ASID, gl.Line, dirty)
	lv.present[gl] |= 1 << uint(core)
	if !old.Valid {
		return
	}
	ogl := mem.GlobalLine{ASID: old.ASID, Line: old.Line}
	lv.clearPresent(ogl, core)

	set := lv.slices[core].SetIndex(old.Line)
	spill := lv.isSpiller(core)
	switch lv.setRole(set) {
	case +1:
		spill = true
	case -1:
		spill = false
	}
	if !spill {
		return
	}
	if r, ok := lv.pickReceiver(core); ok {
		spilledOut := lv.slices[r].Insert(old.ASID, old.Line, old.Dirty)
		lv.present[ogl] |= 1 << uint(r)
		if spilledOut.Valid {
			lv.clearPresent(mem.GlobalLine{ASID: spilledOut.ASID, Line: spilledOut.Line}, r)
		}
	}
}

// pickReceiver round-robins over slices currently in receive mode.
func (lv *level) pickReceiver(except int) (int, bool) {
	n := len(lv.slices)
	for i := 0; i < n; i++ {
		r := (lv.nextReceiver + i) % n
		if r != except && !lv.isSpiller(r) {
			lv.nextReceiver = (r + 1) % n
			return r, true
		}
	}
	return 0, false
}

func (lv *level) setDirty(gl mem.GlobalLine) bool {
	for m := lv.present[gl]; m != 0; m &= m - 1 {
		sl := bits.TrailingZeros32(m)
		if w := lv.slices[sl].Lookup(gl.ASID, gl.Line); w >= 0 {
			lv.slices[sl].SetDirty(lv.slices[sl].SetIndex(gl.Line), w)
			return true
		}
	}
	return false
}

func (lv *level) invalidateExcept(core int, gl mem.GlobalLine) {
	for m := lv.present[gl] &^ (1 << uint(core)); m != 0; m &= m - 1 {
		sl := bits.TrailingZeros32(m)
		lv.slices[sl].Invalidate(gl.ASID, gl.Line)
		lv.clearPresent(gl, sl)
	}
}

func (lv *level) clearPresent(gl mem.GlobalLine, slice int) {
	if v := lv.present[gl] &^ (1 << uint(slice)); v == 0 {
		delete(lv.present, gl)
	} else {
		lv.present[gl] = v
	}
}

// Run executes a workload under DSR with the engine defaults.
func Run(cfg sim.Config, p hierarchy.Params, gens []*workload.Generator) (*metrics.Run, error) {
	sys := New(p, DefaultOptions())
	eng, err := sim.New(cfg, sys, gens)
	if err != nil {
		return nil, err
	}
	return eng.Run(), nil
}
