package dsr

import (
	"testing"

	"morphcache/internal/cache"
	"morphcache/internal/hierarchy"
	"morphcache/internal/mem"
	"morphcache/internal/sim"
	"morphcache/internal/workload"
)

func newLevelT() *level {
	cfg := cache.Config{SizeBytes: 64 * 64, Ways: 4, Policy: cache.LRU} // 16 sets x 4 ways
	return newLevel(4, cfg, 10, 25, DefaultOptions())
}

func TestSetRoles(t *testing.T) {
	lv := newLevelT()
	if lv.setRole(0) != 1 {
		t.Fatal("set 0 should be an always-spill sample")
	}
	if lv.setRole(lv.opts.SampleEvery/2) != -1 {
		t.Fatal("mid-window set should be an always-receive sample")
	}
	if lv.setRole(3) != 0 {
		t.Fatal("other sets are followers")
	}
}

func TestSpillToReceiver(t *testing.T) {
	lv := newLevelT()
	// Make slice 0 a spiller, everyone else receivers.
	lv.psel[0] = lv.opts.PSELMax
	for i := 1; i < 4; i++ {
		lv.psel[i] = 0
	}
	// Fill set 1 (a follower set) of slice 0, then overflow it.
	for i := 0; i < 5; i++ {
		gl := mem.GlobalLine{ASID: 1, Line: mem.Line(1 + i*16)}
		lv.fill(0, gl, false)
	}
	// The victim of the overflow must now live in some peer slice.
	victim := mem.GlobalLine{ASID: 1, Line: 1}
	if lv.present[victim]&^1 == 0 {
		t.Fatalf("victim not spilled: mask %#x", lv.present[victim])
	}
	// And a local miss finds it remotely at the remote latency.
	cost, remote, ok := lv.access(0, victim, false)
	if !ok || !remote || cost != 25 {
		t.Fatalf("remote spill hit: cost=%d remote=%v ok=%v", cost, remote, ok)
	}
}

func TestNoSpillWhenReceiver(t *testing.T) {
	lv := newLevelT()
	for i := range lv.psel {
		lv.psel[i] = 0 // everyone receives; no one spills
	}
	for i := 0; i < 5; i++ {
		lv.fill(0, mem.GlobalLine{ASID: 1, Line: mem.Line(1 + i*16)}, false)
	}
	victim := mem.GlobalLine{ASID: 1, Line: 1}
	if lv.present[victim] != 0 {
		t.Fatalf("receiver's victim should be dropped, mask %#x", lv.present[victim])
	}
}

func TestDuelingMovesPSEL(t *testing.T) {
	lv := newLevelT()
	start := lv.psel[2]
	// Misses in slice 2's always-spill sample set (set 0) argue against
	// spilling: PSEL decrements.
	for i := 0; i < 10; i++ {
		lv.access(2, mem.GlobalLine{ASID: 3, Line: mem.Line(i * 1024)}, false) // set 0 lines
	}
	if lv.psel[2] >= start {
		t.Fatalf("PSEL should fall on spill-sample misses: %d -> %d", start, lv.psel[2])
	}
}

func TestWriteInvalidatesPeers(t *testing.T) {
	p := hierarchy.ScaledDefault(4, 16)
	s := New(p, DefaultOptions())
	s.SetCoreASID(0, 5)
	s.SetCoreASID(1, 5)
	a := mem.Access{Line: 100, ASID: 5}
	s.Access(0, a, 0)
	s.Access(1, a, 0)
	w := a
	w.Kind = mem.Write
	s.Access(0, w, 0)
	// Peer copies at both levels must be gone.
	gl := a.Global()
	if s.l2.present[gl]&^1 != 0 || s.l3.present[gl]&^1 != 0 {
		t.Fatalf("peer copies survive a write: L2 %#x L3 %#x", s.l2.present[gl], s.l3.present[gl])
	}
}

func TestSystemEndToEnd(t *testing.T) {
	p := hierarchy.ScaledDefault(4, 16)
	mix, _ := workload.MixByName("MIX 02")
	mix.Benchmarks = mix.Benchmarks[:4]
	gens := workload.MixGenerators(mix, workload.ScaledGenConfig(16), 1)
	cfg := sim.DefaultConfig()
	cfg.Epochs, cfg.WarmupEpochs, cfg.EpochCycles = 3, 1, 100_000
	run, err := Run(cfg, p, gens)
	if err != nil {
		t.Fatal(err)
	}
	if run.Throughput() <= 0 {
		t.Fatal("DSR run made no progress")
	}
	sys := New(p, DefaultOptions())
	if sys.Name() != "DSR" || sys.Spec() == "" || sys.Cores() != 4 {
		t.Fatal("target metadata")
	}
	if n := sys.SpillerCount(); n < 0 || n > 4 {
		t.Fatalf("spiller count %d", n)
	}
}

func TestPresentMaskConsistency(t *testing.T) {
	lv := newLevelT()
	// Random fills and accesses must keep present masks matching contents.
	for i := 0; i < 20000; i++ {
		core := i % 4
		gl := mem.GlobalLine{ASID: mem.ASID(core + 1), Line: mem.Line((i * 7) % 256)}
		if _, _, ok := lv.access(core, gl, i%5 == 0); !ok {
			lv.fill(core, gl, false)
		}
	}
	counts := map[mem.GlobalLine]uint32{}
	for i, sl := range lv.slices {
		sl.ForEachValid(func(_, _ int, e cache.Entry) {
			counts[mem.GlobalLine{ASID: e.ASID, Line: e.Line}] |= 1 << uint(i)
		})
	}
	for gl, mask := range counts {
		if lv.present[gl] != mask {
			t.Fatalf("mask mismatch for %+v: %#x vs %#x", gl, lv.present[gl], mask)
		}
	}
	for gl, mask := range lv.present {
		if counts[gl] != mask {
			t.Fatalf("stale mask for %+v", gl)
		}
	}
}
