// Package bandit implements an online meta-policy over the baseline zoo:
// a multi-armed bandit that, at every window of epochs, picks one policy
// (MorphCache, PIPP, DSR, or a fixed static topology), runs it for the
// window, observes a reward, and updates its estimates. The paper measures
// MorphCache against an unrealizable offline oracle (§5.1, Fig. 15); the
// bandit is the realizable counterpart — it learns online which arm wins
// the current phase, so on adversarial phase-shift mixes where every fixed
// policy loses at least one phase it can approach the oracle's envelope.
//
// Soundness of switching rides the same resume machinery sampled
// simulation uses (sim.Config.StartEpoch): workload generators reseed per
// epoch from (seed, asid, thread, epoch), so a window started at absolute
// epoch r sees exactly the reference stream a full run sees at epoch r.
// Each window gets a fresh target with a warmup prefix (cache contents and
// controller state rebuilt, never measured), which makes the stitched
// per-epoch series directly comparable with full fixed-policy runs and
// with offline.Ideal's envelope over them.
//
// Non-stationarity is handled three ways: reward statistics decay by a
// per-window discount; a change-point detector wipes every arm's
// statistics when the played arm's reward deviates sharply from its own
// mean (Options.ChangeThreshold) — discounting alone never re-explores
// after a phase shift that raises every reward, because the incumbent's
// own reward jumps with it; and arms unplayed past a sliding-window
// horizon are forcibly replayed (Options.Refresh) as a backstop.
//
// Determinism: every random choice (the epsilon-greedy coin and arm draw)
// derives from the run seed via rng.Derive(seed, salt, window); UCB1 is
// deterministic outright. Arms are canonicalized by sorting on name before
// selection, and all argmax ties break toward the lowest canonical index,
// so the arm schedule is byte-identical across reruns, worker counts, and
// permutations of the caller's arm order.
package bandit

import (
	"fmt"
	"math"
	"sort"

	"morphcache/internal/energy"
	"morphcache/internal/hierarchy"
	"morphcache/internal/metrics"
	"morphcache/internal/rng"
	"morphcache/internal/sim"
	"morphcache/internal/telemetry"
)

// banditSalt separates the bandit's random stream from every other
// consumer of the run seed (workload generation, k-means seeding, ...).
const banditSalt = 0xBA4D17

// NoWindowWarmup requests windows with no warmup prefix (the zero value of
// Options.WindowWarmup means "use the default", matching the sampled
// package convention).
const NoWindowWarmup = -1

// NoRefresh disables the sliding-window refresh (the zero value of
// Options.Refresh means "use the default", same convention).
const NoRefresh = -1

// NoChangeDetection disables the change-point reset (the zero value of
// Options.ChangeThreshold means "use the default", same convention).
const NoChangeDetection = -1

// Strategies.
const (
	StrategyUCB1    = "ucb1"
	StrategyEpsilon = "epsilon"
)

// Reward modes.
const (
	RewardThroughput = "throughput" // mean per-epoch throughput (higher is better)
	RewardMPKI       = "mpki"       // negated last-level MPKI (lower MPKI is better)
	RewardEnergy     = "energy"     // negated nJ/access via internal/energy
)

// Options configures the meta-policy. The zero value of every field
// selects the default printed by Defaults.
type Options struct {
	// Arms lists the candidate policies in the facade's RunSpec vocabulary:
	// "morph", "morph-nodegrade", "pipp", "dsr", or a static topology spec
	// like "(4:4:1)". Empty means "the caller's default zoo" (the facade
	// substitutes it before calling Run); Run itself requires at least one
	// arm. Order does not matter — arms are canonicalized by sorting.
	Arms []string
	// Strategy is the selection rule: StrategyUCB1 (default) or
	// StrategyEpsilon.
	Strategy string
	// Reward is the per-window reward signal: RewardThroughput (default),
	// RewardMPKI, or RewardEnergy. Modes needing telemetry counters degrade
	// to throughput (with a Report warning) when any arm lacks them.
	Reward string
	// WindowEpochs is the number of measured epochs each arm evaluation
	// covers before the bandit may switch. Default 2.
	WindowEpochs int
	// WindowWarmup is the number of unmeasured epochs simulated before each
	// window to rebuild cache and controller state on the fresh target
	// (clamped near epoch 0). Default 1; NoWindowWarmup disables.
	WindowWarmup int
	// Epsilon is the exploration probability of StrategyEpsilon. Default 0.1.
	Epsilon float64
	// Exploration is the UCB1 confidence width multiplier (applied to
	// rewards normalized onto [0, 1] by the running min/max). Default 0.7.
	Exploration float64
	// Discount is the per-window decay of past reward statistics (discounted
	// UCB for non-stationary workloads: 1 means never forget, smaller values
	// re-explore sooner after a phase shift). Default 0.8.
	Discount float64
	// Refresh is the sliding-window horizon: an arm unplayed for more than
	// Refresh windows has its reward statistics expired and is forcibly
	// replayed (lowest canonical index first, rule "refresh"). Discounting
	// alone cannot recover from a phase shift that raises every reward —
	// the incumbent's own reward jumps, so it keeps winning the argmax
	// against rivals whose means are frozen at the old phase's level; the
	// refresh bounds that blindness to Refresh windows. Default 10;
	// NoRefresh disables.
	Refresh int
	// ChangeThreshold is the change-point sensitivity: when the played
	// arm's observed reward deviates from its own live mean by more than
	// this fraction of the larger magnitude, a phase shift is declared and
	// every arm's statistics — and the reward normalization range — are
	// reset, forcing a fresh seeding sweep against the new phase. This is
	// the fast path the sliding-window refresh backstops: a flip is
	// detected on the very next window instead of up to Refresh windows
	// later. Default 0.25; NoChangeDetection disables.
	ChangeThreshold float64
}

// Defaults returns the default bandit options.
func Defaults() Options {
	return Options{
		Strategy:        StrategyUCB1,
		Reward:          RewardThroughput,
		WindowEpochs:    2,
		WindowWarmup:    1,
		Epsilon:         0.1,
		Exploration:     0.7,
		Discount:        0.8,
		Refresh:         10,
		ChangeThreshold: 0.25,
	}
}

// withDefaults replaces zero-valued fields with the defaults (and maps
// NoWindowWarmup to an actual zero warmup).
func (o Options) withDefaults() Options {
	d := Defaults()
	if o.Strategy == "" {
		o.Strategy = d.Strategy
	}
	if o.Reward == "" {
		o.Reward = d.Reward
	}
	if o.WindowEpochs == 0 {
		o.WindowEpochs = d.WindowEpochs
	}
	if o.WindowWarmup == 0 {
		o.WindowWarmup = d.WindowWarmup
	} else if o.WindowWarmup == NoWindowWarmup {
		o.WindowWarmup = 0
	}
	if o.Epsilon == 0 {
		o.Epsilon = d.Epsilon
	}
	if o.Exploration == 0 {
		o.Exploration = d.Exploration
	}
	if o.Discount == 0 {
		o.Discount = d.Discount
	}
	if o.Refresh == 0 {
		o.Refresh = d.Refresh
	} else if o.Refresh == NoRefresh {
		o.Refresh = 0 // internal convention: 0 = disabled after defaulting
	}
	if o.ChangeThreshold == 0 {
		o.ChangeThreshold = d.ChangeThreshold
	} else if o.ChangeThreshold == NoChangeDetection {
		o.ChangeThreshold = 0 // internal convention: 0 = disabled
	}
	return o
}

// Validate rejects unusable options (after default substitution). An empty
// arm list is accepted here — it means "default zoo" to the facade — but
// Run requires at least one arm.
func (o Options) Validate() error {
	v := o.withDefaults()
	switch v.Strategy {
	case StrategyUCB1, StrategyEpsilon:
	default:
		return fmt.Errorf("bandit: unknown strategy %q (want %q or %q)", o.Strategy, StrategyUCB1, StrategyEpsilon)
	}
	switch v.Reward {
	case RewardThroughput, RewardMPKI, RewardEnergy:
	default:
		return fmt.Errorf("bandit: unknown reward %q (want %q, %q, or %q)", o.Reward, RewardThroughput, RewardMPKI, RewardEnergy)
	}
	if v.WindowEpochs < 1 {
		return fmt.Errorf("bandit: WindowEpochs must be >= 1, got %d", o.WindowEpochs)
	}
	if v.WindowWarmup < 0 {
		return fmt.Errorf("bandit: WindowWarmup must be >= 0 or NoWindowWarmup, got %d", o.WindowWarmup)
	}
	if v.Epsilon < 0 || v.Epsilon > 1 {
		return fmt.Errorf("bandit: Epsilon must be in [0, 1], got %v", o.Epsilon)
	}
	if v.Exploration < 0 {
		return fmt.Errorf("bandit: Exploration must be >= 0, got %v", o.Exploration)
	}
	if v.Discount <= 0 || v.Discount > 1 {
		return fmt.Errorf("bandit: Discount must be in (0, 1], got %v", o.Discount)
	}
	if v.Refresh < 0 {
		return fmt.Errorf("bandit: Refresh must be >= 1 or NoRefresh, got %d", o.Refresh)
	}
	if v.ChangeThreshold < 0 || v.ChangeThreshold >= 1 {
		return fmt.Errorf("bandit: ChangeThreshold must be in (0, 1) or NoChangeDetection, got %v", o.ChangeThreshold)
	}
	seen := make(map[string]bool, len(o.Arms))
	for _, a := range o.Arms {
		if a == "" {
			return fmt.Errorf("bandit: empty arm name")
		}
		if seen[a] {
			return fmt.Errorf("bandit: duplicate arm %q", a)
		}
		seen[a] = true
	}
	return nil
}

// Fingerprint renders the effective options compactly for memo keys: two
// configurations with the same fingerprint produce identical bandit results
// on the same run configuration.
func (o Options) Fingerprint() string {
	v := o.withDefaults()
	arms := append([]string(nil), v.Arms...)
	sort.Strings(arms)
	return fmt.Sprintf("s=%s,r=%s,w=%d,u=%d,e=%g,c=%g,g=%g,t=%d,d=%g,a=%v",
		v.Strategy, v.Reward, v.WindowEpochs, v.WindowWarmup, v.Epsilon, v.Exploration, v.Discount, v.Refresh, v.ChangeThreshold, arms)
}

// Factories builds the per-window simulation state. Every window gets a
// fresh target and fresh sources (windows share nothing mutable, exactly
// like sampled representative windows), so each arm evaluation starts from
// the state a full run of that arm would start from.
type Factories struct {
	// NewTarget builds the cache system for the named arm.
	NewTarget func(arm string) (sim.Target, error)
	// NewSources builds the per-core reference sources.
	NewSources func() ([]sim.Source, error)
}

// WindowChoice records one arm evaluation.
type WindowChoice struct {
	// Window is the window's ordinal; StartEpoch the absolute index of its
	// first measured epoch; Epochs how many measured epochs it covers.
	Window     int `json:"window"`
	StartEpoch int `json:"start_epoch"`
	Epochs     int `json:"epochs"`
	// Arm is the chosen arm; Rule why it was chosen ("init" round-robin
	// seeding, "refresh" sliding-window replay of an expired arm, "ucb"
	// confidence bound, "exploit" greedy mean, "explore" epsilon draw).
	Arm  string `json:"arm"`
	Rule string `json:"rule"`
	// Reward is the observed reward in the effective reward mode;
	// Throughput the window's mean per-epoch throughput (always recorded,
	// whatever the reward mode).
	Reward     float64 `json:"reward"`
	Throughput float64 `json:"throughput"`
}

// ArmStats summarizes one arm at the end of the run.
type ArmStats struct {
	Name  string `json:"name"`
	Plays int    `json:"plays"`
	// MeanReward is the discounted mean reward estimate the final selection
	// saw; MeanThroughput the undiscounted mean window throughput.
	MeanReward     float64 `json:"mean_reward"`
	MeanThroughput float64 `json:"mean_throughput"`
}

// Report is the bandit run's decision summary.
type Report struct {
	// Strategy and Reward are the effective (post-degradation) modes;
	// RewardRequested is the caller's reward mode when degradation kicked in.
	Strategy        string `json:"strategy"`
	Reward          string `json:"reward"`
	RewardRequested string `json:"reward_requested,omitempty"`
	WindowEpochs    int    `json:"window_epochs"`
	// Windows is the arm schedule; Switches counts windows whose arm
	// differs from the previous window's.
	Windows  []WindowChoice `json:"windows"`
	Arms     []ArmStats     `json:"arms"`
	Switches int            `json:"switches"`
	// Resets counts change-point detections: windows whose reward deviated
	// from the played arm's mean past ChangeThreshold, wiping every arm's
	// statistics for a fresh seeding sweep.
	Resets int `json:"resets"`
	// Warnings records degradations (e.g. counter-less arms forcing
	// throughput rewards); CLIs surface them on stderr.
	Warnings []string `json:"warnings,omitempty"`
	// Regret is filled by callers that also ran every arm in full (the
	// -run bandit experiment): realized series vs offline.Ideal's envelope.
	Regret *RegretReport `json:"regret,omitempty"`
}

// RunResult is a bandit run's full outcome: a stitched metrics.Run shaped
// exactly like a full run's (so downstream reporting works unchanged) and
// the decision report.
type RunResult struct {
	Run    *metrics.Run
	Report *Report
}

// armState is one arm's discounted statistics.
type armState struct {
	name       string
	nGamma     float64 // discounted play count
	sumGamma   float64 // discounted reward sum
	plays      int
	lastPlayed int     // window index of the most recent play (-1 = never)
	sumThr     float64 // undiscounted throughput sum (reporting only)
}

func (a *armState) mean() float64 {
	if a.nGamma <= 0 {
		return 0
	}
	return a.sumGamma / a.nGamma
}

// Run executes the bandit meta-policy over the full run described by scfg
// (StartEpoch 0, no faults): it splits the measured region into windows of
// WindowEpochs, picks one arm per window, simulates the window with the
// resume machinery, and stitches the per-epoch results into one run.
func Run(scfg sim.Config, opts Options, f Factories) (*RunResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	if len(o.Arms) == 0 {
		return nil, fmt.Errorf("bandit: no arms")
	}
	if !scfg.Faults.Empty() {
		return nil, fmt.Errorf("bandit: fault plans are not supported (window replays would re-inject damage out of order)")
	}
	if scfg.StartEpoch != 0 {
		return nil, fmt.Errorf("bandit: StartEpoch must be 0 in the full-run configuration, got %d", scfg.StartEpoch)
	}

	// Canonical arm order: sorted by name, so the schedule is invariant
	// under permutations of the caller's arm list.
	names := append([]string(nil), o.Arms...)
	sort.Strings(names)
	arms := make([]*armState, len(names))
	for i, n := range names {
		arms[i] = &armState{name: n, lastPlayed: -1}
	}

	rep := &Report{
		Strategy:     o.Strategy,
		Reward:       o.Reward,
		WindowEpochs: o.WindowEpochs,
	}
	if err := degradeReward(o.Reward, names, f, rep); err != nil {
		return nil, err
	}

	M := scfg.Epochs
	W := o.WindowEpochs
	windows := (M + W - 1) / W

	run := &metrics.Run{Policy: "bandit"}
	var perCore []float64
	rMin, rMax := math.Inf(1), math.Inf(-1)
	prevArm := -1

	for w := 0; w < windows; w++ {
		// Sliding-window refresh: expire the statistics of arms unplayed
		// past the horizon, so selectArm's seeding branch replays them
		// against the current phase instead of trusting frozen means.
		if o.Refresh > 0 {
			for _, a := range arms {
				if a.plays > 0 && w-a.lastPlayed > o.Refresh {
					a.nGamma, a.sumGamma = 0, 0
				}
			}
		}
		idx, rule := selectArm(arms, o, scfg.Seed, w, rMin, rMax)
		mStart := w * W
		mLen := W
		if mStart+mLen > M {
			mLen = M - mStart
		}
		absStart := scfg.WarmupEpochs + mStart

		wrun, reward, thr, err := runWindow(scfg, o, f, rep.Reward, names[idx], absStart, mLen)
		if err != nil {
			return nil, err
		}

		// Stitch the window's measured epochs onto the full-run timeline.
		if perCore == nil {
			perCore = make([]float64, len(wrun.PerCoreIPC))
		}
		for i, ep := range wrun.Epochs {
			ep.Index = mStart + i
			run.Epochs = append(run.Epochs, ep)
			for c, v := range ep.PerCoreIPC {
				perCore[c] += v / float64(M)
			}
		}
		run.Reconfigurations += wrun.Reconfigurations
		run.AsymmetricSteps += wrun.AsymmetricSteps

		// Telemetry: one arm-choice event per window, reusing the
		// reconfiguration event taxonomy (Level "meta", Op "arm") so the
		// schedule lands next to the merge/split decisions it supersedes.
		if scfg.Recorder != nil {
			scfg.Recorder.RecordReconfig(telemetry.ReconfigEvent{
				Epoch:  absStart,
				Level:  "meta",
				Op:     "arm",
				Rule:   rule,
				Groups: names[idx],
				UtilA:  reward,
				UtilB:  arms[idx].mean(),
			})
		}
		rep.Windows = append(rep.Windows, WindowChoice{
			Window:     w,
			StartEpoch: absStart,
			Epochs:     mLen,
			Arm:        names[idx],
			Rule:       rule,
			Reward:     reward,
			Throughput: thr,
		})
		if prevArm >= 0 && prevArm != idx {
			rep.Switches++
		}
		prevArm = idx

		// Change-point detection: a reward far off the played arm's own
		// live mean means the workload flipped phase under us. Every arm's
		// statistics describe the old phase, so wipe them all — and the
		// normalization range, so the next phase's reward spread uses the
		// full [0, 1] scale — and let the seeding sweep re-measure. The
		// fresh observation credited below seeds the new phase.
		if o.ChangeThreshold > 0 && arms[idx].nGamma > 0 {
			m := arms[idx].mean()
			if math.Abs(reward-m) > o.ChangeThreshold*math.Max(math.Abs(m), math.Abs(reward)) {
				for _, a := range arms {
					a.nGamma, a.sumGamma = 0, 0
				}
				rMin, rMax = math.Inf(1), math.Inf(-1)
				rep.Resets++
				if scfg.Recorder != nil {
					scfg.Recorder.RecordReconfig(telemetry.ReconfigEvent{
						Epoch:  absStart,
						Level:  "meta",
						Op:     "reset",
						Rule:   "change",
						Groups: names[idx],
						UtilA:  reward,
						UtilB:  m,
					})
				}
			}
		}

		// Discounted update: decay everyone, credit the played arm.
		for _, a := range arms {
			a.nGamma *= o.Discount
			a.sumGamma *= o.Discount
		}
		arms[idx].nGamma++
		arms[idx].sumGamma += reward
		arms[idx].plays++
		arms[idx].lastPlayed = w
		arms[idx].sumThr += thr
		if reward < rMin {
			rMin = reward
		}
		if reward > rMax {
			rMax = reward
		}
	}

	run.PerCoreIPC = perCore
	for _, a := range arms {
		st := ArmStats{Name: a.name, Plays: a.plays, MeanReward: a.mean()}
		if a.plays > 0 {
			st.MeanThroughput = a.sumThr / float64(a.plays)
		}
		rep.Arms = append(rep.Arms, st)
	}
	return &RunResult{Run: run, Report: rep}, nil
}

// degradeReward downgrades counter-dependent reward modes to throughput
// when any arm cannot supply them, recording a warning: rewarding those
// arms 0 instead would starve them forever, and mixing reward units across
// arms would make the estimates incomparable. It probes by building one
// throwaway target per arm and checking the same capability the engine
// checks (telemetry.Snapshotter for MPKI; a hierarchy-backed target for the
// energy meter's stats and topology).
func degradeReward(reward string, names []string, f Factories, rep *Report) error {
	if reward == RewardThroughput {
		return nil
	}
	var lacking []string
	for _, n := range names {
		t, err := f.NewTarget(n)
		if err != nil {
			return fmt.Errorf("bandit: building arm %q: %w", n, err)
		}
		ok := false
		switch reward {
		case RewardMPKI:
			_, ok = t.(telemetry.Snapshotter)
		case RewardEnergy:
			_, ok = t.(*sim.HierarchyTarget)
		}
		if !ok {
			lacking = append(lacking, n)
		}
	}
	if len(lacking) > 0 {
		rep.RewardRequested = reward
		rep.Reward = RewardThroughput
		rep.Warnings = append(rep.Warnings, fmt.Sprintf(
			"reward %q degraded to %q: arm(s) %v expose no telemetry counters", reward, RewardThroughput, lacking))
	}
	return nil
}

// selectArm picks the window's arm. Ties break toward the lowest canonical
// index everywhere (strict > comparisons), and the only random draw — the
// epsilon-greedy coin — comes from rng.Derive(seed, salt, window), so the
// choice is a pure function of (seed, window, past rewards).
func selectArm(arms []*armState, o Options, seed uint64, w int, rMin, rMax float64) (int, string) {
	// Seeding round: play each arm with no live statistics, in canonical
	// order — never-played arms at the start of the run ("init"), expired
	// arms after a refresh ("refresh").
	for i, a := range arms {
		if a.plays == 0 {
			return i, "init"
		}
		if a.nGamma == 0 {
			return i, "refresh"
		}
	}
	norm := func(x float64) float64 {
		if rMax > rMin {
			return (x - rMin) / (rMax - rMin)
		}
		return 0.5
	}
	switch o.Strategy {
	case StrategyEpsilon:
		s := rng.Derive(seed, banditSalt, uint64(w))
		if s.Float64() < o.Epsilon {
			return s.Intn(len(arms)), "explore"
		}
		best, bestM := 0, math.Inf(-1)
		for i, a := range arms {
			if m := a.mean(); m > bestM {
				best, bestM = i, m
			}
		}
		return best, "exploit"
	default: // StrategyUCB1
		var total float64
		for _, a := range arms {
			total += a.nGamma
		}
		best, bestU := 0, math.Inf(-1)
		for i, a := range arms {
			u := norm(a.mean()) + o.Exploration*math.Sqrt(2*math.Log(math.Max(total, 1))/a.nGamma)
			if u > bestU {
				best, bestU = i, u
			}
		}
		return best, "ucb"
	}
}

// runWindow evaluates one arm over [absStart, absStart+mLen) with a warmup
// prefix on a fresh target and fresh sources, returning the window's run,
// its reward in the given mode, and its mean per-epoch throughput.
func runWindow(scfg sim.Config, o Options, f Factories, reward, arm string, absStart, mLen int) (*metrics.Run, float64, float64, error) {
	warm := o.WindowWarmup
	if warm > absStart {
		warm = absStart
	}
	wcfg := scfg
	wcfg.StartEpoch = absStart - warm
	wcfg.WarmupEpochs = warm
	wcfg.Epochs = mLen

	// MPKI rewards read per-epoch counter records: attach a window log,
	// teeing into the caller's recorder when one is set.
	var wlog *telemetry.Log
	if reward == RewardMPKI {
		wlog = telemetry.NewLog()
		if scfg.Recorder != nil {
			wcfg.Recorder = tee{scfg.Recorder, wlog}
		} else {
			wcfg.Recorder = wlog
		}
	}

	target, err := f.NewTarget(arm)
	if err != nil {
		return nil, 0, 0, err
	}
	srcs, err := f.NewSources()
	if err != nil {
		return nil, 0, 0, err
	}
	eng, err := sim.NewFromSources(wcfg, target, srcs)
	if err != nil {
		return nil, 0, 0, err
	}
	wrun := eng.Run()

	var thr float64
	for _, t := range wrun.EpochThroughputs() {
		thr += t
	}
	thr /= float64(mLen)

	r := thr
	switch reward {
	case RewardMPKI:
		var misses, instr float64
		for _, rec := range wlog.Epochs {
			if rec.Warmup {
				continue
			}
			for _, ce := range rec.Cores {
				misses += float64(ce.C2C + ce.MemReads)
				instr += float64(ce.Instructions)
			}
		}
		if instr > 0 {
			r = -misses * 1000 / instr
		} else {
			r = 0
		}
	case RewardEnergy:
		// Whole-window energy per access (warmup included — the ratio is a
		// rate, and the prefix is short).
		ht := target.(*sim.HierarchyTarget)
		stats := *ht.Sys.Stats()
		m := energy.NewMeter(energy.Default())
		m.Charge(hierarchy.Stats{}, stats, ht.Sys.Topology())
		r = -m.PerAccessNJ(stats.Accesses)
	}
	return wrun, r, thr, nil
}

// tee forwards telemetry to two recorders.
type tee struct{ a, b telemetry.Recorder }

func (t tee) RecordEpoch(r telemetry.EpochRecord) {
	t.a.RecordEpoch(r)
	t.b.RecordEpoch(r)
}

func (t tee) RecordReconfig(e telemetry.ReconfigEvent) {
	t.a.RecordReconfig(e)
	t.b.RecordReconfig(e)
}
