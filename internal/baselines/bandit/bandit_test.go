package bandit

import (
	"reflect"
	"strings"
	"testing"

	"morphcache/internal/hierarchy"
	"morphcache/internal/mem"
	"morphcache/internal/sim"
	"morphcache/internal/telemetry"
)

const testCycles = 2000

// fakeTarget is a deterministic synthetic target: every access costs
// lat(epoch) cycles, so per-epoch throughput is a pure function of the
// (arm, epoch) pair. The epoch is recovered from the virtual clock — the
// engine keeps clocks on the absolute timeline even in resumed windows.
type fakeTarget struct {
	name  string
	cores int
	lat   func(epoch int) int
}

func (f *fakeTarget) Name() string              { return f.name }
func (f *fakeTarget) Cores() int                { return f.cores }
func (f *fakeTarget) SetCoreASID(int, mem.ASID) {}
func (f *fakeTarget) EndEpoch(int) (int, bool)  { return 0, false }
func (f *fakeTarget) Spec() string              { return f.name }
func (f *fakeTarget) Access(core int, a mem.Access, now uint64) hierarchy.AccessResult {
	return hierarchy.AccessResult{Latency: f.lat(int(now / testCycles))}
}

// snapFakeTarget adds telemetry counters: every access is a last-level
// miss (MemReads), so MPKI scales with the access count.
type snapFakeTarget struct {
	fakeTarget
	accesses, memReads uint64
}

func (f *snapFakeTarget) Access(core int, a mem.Access, now uint64) hierarchy.AccessResult {
	f.accesses++
	f.memReads++
	return f.fakeTarget.Access(core, a, now)
}

func (f *snapFakeTarget) TelemetrySnapshot() telemetry.Snapshot {
	return telemetry.Snapshot{Cores: []telemetry.CoreCounters{{Accesses: f.accesses, MemReads: f.memReads}}}
}

// fakeSource replays a trivial single-line stream.
type fakeSource struct{}

func (fakeSource) ASID() mem.ASID   { return 1 }
func (fakeSource) BeginEpoch(int)   {}
func (fakeSource) Next() mem.Access { return mem.Access{Line: 1, ASID: 1} }

func testConfig(epochs int) sim.Config {
	return sim.Config{
		EpochCycles:  testCycles,
		Epochs:       epochs,
		WarmupEpochs: 1,
		GapInstr:     8,
		IssueWidth:   4,
		Seed:         7,
	}
}

// flat returns a factory set whose arms have constant latencies.
func flat(lats map[string]int) Factories {
	return Factories{
		NewTarget: func(arm string) (sim.Target, error) {
			l := lats[arm]
			return &fakeTarget{name: arm, cores: 1, lat: func(int) int { return l }}, nil
		},
		NewSources: func() ([]sim.Source, error) { return []sim.Source{fakeSource{}}, nil },
	}
}

// phased returns factories where "a" is fast before the flip epoch and slow
// after, and "b" the reverse — every fixed arm loses one phase.
func phased(flip int) Factories {
	return Factories{
		NewTarget: func(arm string) (sim.Target, error) {
			lat := func(e int) int {
				fast := e < flip
				if arm == "b" {
					fast = !fast
				}
				if fast {
					return 1
				}
				return 40
			}
			return &fakeTarget{name: arm, cores: 1, lat: lat}, nil
		},
		NewSources: func() ([]sim.Source, error) { return []sim.Source{fakeSource{}}, nil },
	}
}

func TestBanditPrefersBestArmStationary(t *testing.T) {
	f := flat(map[string]int{"fast": 1, "slow": 40})
	opts := Options{Arms: []string{"slow", "fast"}, WindowEpochs: 1}
	rr, err := Run(testConfig(12), opts, f)
	if err != nil {
		t.Fatal(err)
	}
	plays := map[string]int{}
	for _, w := range rr.Report.Windows {
		plays[w.Arm]++
	}
	if plays["fast"] <= plays["slow"] {
		t.Fatalf("expected the fast arm to dominate, plays: %v", plays)
	}
	if len(rr.Run.Epochs) != 12 {
		t.Fatalf("stitched run has %d epochs, want 12", len(rr.Run.Epochs))
	}
	for i, ep := range rr.Run.Epochs {
		if ep.Index != i {
			t.Fatalf("epoch %d re-indexed as %d", i, ep.Index)
		}
	}
}

func TestBanditBeatsFixedArmsOnPhaseShift(t *testing.T) {
	const epochs = 20
	cfg := testConfig(epochs)
	// The flip happens mid-run on the absolute timeline (warmup included).
	f := phased(cfg.WarmupEpochs + epochs/2)
	opts := Options{Arms: []string{"a", "b"}, WindowEpochs: 1, Discount: 0.5}
	rr, err := Run(cfg, opts, f)
	if err != nil {
		t.Fatal(err)
	}
	// Full fixed runs of each arm for comparison.
	for _, arm := range []string{"a", "b"} {
		target, _ := f.NewTarget(arm)
		srcs, _ := f.NewSources()
		eng, err := sim.NewFromSources(cfg, target, srcs)
		if err != nil {
			t.Fatal(err)
		}
		fixed := eng.Run()
		if rr.Run.Throughput() <= fixed.Throughput() {
			t.Fatalf("bandit throughput %.4f did not beat fixed arm %q at %.4f",
				rr.Run.Throughput(), arm, fixed.Throughput())
		}
	}
	if rr.Report.Switches == 0 {
		t.Fatal("phase shift should force at least one switch")
	}
}

func TestBanditDeterminismAcrossRerunsAndPermutations(t *testing.T) {
	for _, strategy := range []string{StrategyUCB1, StrategyEpsilon} {
		cfg := testConfig(16)
		perms := [][]string{
			{"a", "b", "c"}, {"c", "b", "a"}, {"b", "a", "c"},
			{"c", "a", "b"}, {"a", "c", "b"},
		}
		var ref *RunResult
		for i, arms := range perms {
			f := phased(cfg.WarmupEpochs + 8)
			// "c" is a mediocre constant arm to make three distinct arms.
			base := f.NewTarget
			f.NewTarget = func(arm string) (sim.Target, error) {
				if arm == "c" {
					return &fakeTarget{name: "c", cores: 1, lat: func(int) int { return 10 }}, nil
				}
				return base(arm)
			}
			rr, err := Run(cfg, Options{Arms: arms, Strategy: strategy, WindowEpochs: 1}, f)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = rr
				continue
			}
			if !reflect.DeepEqual(rr.Report.Windows, ref.Report.Windows) {
				t.Fatalf("%s: arm schedule differs for permutation %v:\n%v\nvs\n%v",
					strategy, arms, rr.Report.Windows, ref.Report.Windows)
			}
			if !reflect.DeepEqual(rr.Run, ref.Run) {
				t.Fatalf("%s: stitched run differs for permutation %v", strategy, arms)
			}
		}
	}
}

func TestBanditSingleArmDegenerate(t *testing.T) {
	f := flat(map[string]int{"only": 3})
	rr, err := Run(testConfig(6), Options{Arms: []string{"only"}, WindowEpochs: 2}, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rr.Report.Windows {
		if w.Arm != "only" {
			t.Fatalf("single-arm run chose %q", w.Arm)
		}
	}
	if rr.Report.Switches != 0 {
		t.Fatalf("single arm cannot switch, got %d", rr.Report.Switches)
	}
	// Its regret against its own full-run series must be exactly zero per
	// epoch if stitching is sound... it is not exactly zero (fresh-target
	// warmup differs from the accumulated full run), but with a constant-
	// latency fake there is no state, so the series must match exactly.
	target, _ := f.NewTarget("only")
	srcs, _ := f.NewSources()
	eng, _ := sim.NewFromSources(testConfig(6), target, srcs)
	full := eng.Run()
	reg, err := Regret(rr.Run.EpochThroughputs(), full.EpochThroughputs())
	if err != nil {
		t.Fatal(err)
	}
	for e, d := range reg.PerEpoch {
		if d != 0 {
			t.Fatalf("stateless arm: epoch %d regret %v, want 0", e, d)
		}
	}
	if reg.Ratio != 1 {
		t.Fatalf("ratio %v, want 1", reg.Ratio)
	}
}

func TestBanditArmChoiceTelemetry(t *testing.T) {
	f := flat(map[string]int{"x": 2, "y": 20})
	log := telemetry.NewLog()
	cfg := testConfig(8)
	cfg.Recorder = log
	rr, err := Run(cfg, Options{Arms: []string{"x", "y"}, WindowEpochs: 2}, f)
	if err != nil {
		t.Fatal(err)
	}
	var events []telemetry.ReconfigEvent
	for _, ev := range log.Reconfigs {
		if ev.Level == "meta" && ev.Op == "arm" {
			events = append(events, ev)
		}
	}
	if len(events) != len(rr.Report.Windows) {
		t.Fatalf("%d arm events for %d windows", len(events), len(rr.Report.Windows))
	}
	for i, ev := range events {
		w := rr.Report.Windows[i]
		if ev.Groups != w.Arm || ev.Rule != w.Rule || ev.Epoch != w.StartEpoch || ev.UtilA != w.Reward {
			t.Fatalf("event %d %+v does not mirror window %+v", i, ev, w)
		}
	}
}

func TestRewardDegradationForCounterlessArms(t *testing.T) {
	plain := flat(map[string]int{"p": 2, "q": 2})
	counters := Factories{
		NewTarget: func(arm string) (sim.Target, error) {
			return &snapFakeTarget{fakeTarget: fakeTarget{name: arm, cores: 1, lat: func(int) int { return 2 }}}, nil
		},
		NewSources: plain.NewSources,
	}
	cases := []struct {
		name    string
		reward  string
		f       Factories
		want    string
		degrade bool
	}{
		{"throughput never degrades", RewardThroughput, plain, RewardThroughput, false},
		{"mpki without counters", RewardMPKI, plain, RewardThroughput, true},
		{"mpki with counters", RewardMPKI, counters, RewardMPKI, false},
		{"energy without hierarchy", RewardEnergy, counters, RewardThroughput, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr, err := Run(testConfig(4), Options{Arms: []string{"p", "q"}, Reward: tc.reward, WindowEpochs: 2}, tc.f)
			if err != nil {
				t.Fatal(err)
			}
			if rr.Report.Reward != tc.want {
				t.Fatalf("effective reward %q, want %q", rr.Report.Reward, tc.want)
			}
			if tc.degrade {
				if len(rr.Report.Warnings) == 0 || !strings.Contains(rr.Report.Warnings[0], "degraded") {
					t.Fatalf("expected a degradation warning, got %v", rr.Report.Warnings)
				}
				if rr.Report.RewardRequested != tc.reward {
					t.Fatalf("RewardRequested %q, want %q", rr.Report.RewardRequested, tc.reward)
				}
			} else if len(rr.Report.Warnings) != 0 {
				t.Fatalf("unexpected warnings %v", rr.Report.Warnings)
			}
		})
	}
}

func TestMPKIRewardIsNegatedMisses(t *testing.T) {
	counters := Factories{
		NewTarget: func(arm string) (sim.Target, error) {
			return &snapFakeTarget{fakeTarget: fakeTarget{name: arm, cores: 1, lat: func(int) int { return 2 }}}, nil
		},
		NewSources: func() ([]sim.Source, error) { return []sim.Source{fakeSource{}}, nil },
	}
	rr, err := Run(testConfig(4), Options{Arms: []string{"m"}, Reward: RewardMPKI, WindowEpochs: 2}, counters)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rr.Report.Windows {
		if w.Reward >= 0 {
			t.Fatalf("every access misses, so the MPKI reward must be negative, got %v", w.Reward)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Strategy: "greedy"},
		{Reward: "latency"},
		{WindowEpochs: -1},
		{WindowWarmup: -2},
		{Epsilon: 1.5},
		{Exploration: -1},
		{Discount: 2},
		{Arms: []string{"a", "a"}},
		{Arms: []string{""}},
		{Refresh: -2},
		{ChangeThreshold: -0.5},
		{ChangeThreshold: 1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("case %d (%+v) should fail validation", i, o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options must validate: %v", err)
	}
	if err := Defaults().Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
}

func TestFingerprintDistinguishesConfigs(t *testing.T) {
	a := Options{Arms: []string{"morph", "pipp"}}
	b := Options{Arms: []string{"morph", "dsr"}}
	c := Options{Arms: []string{"pipp", "morph"}}
	d := Options{Arms: []string{"morph", "pipp"}, Strategy: StrategyEpsilon}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different arm sets must fingerprint differently")
	}
	if a.Fingerprint() != c.Fingerprint() {
		t.Fatal("arm order must not change the fingerprint")
	}
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("different strategies must fingerprint differently")
	}
	e := Options{Arms: []string{"morph", "pipp"}, Refresh: 5}
	g := Options{Arms: []string{"morph", "pipp"}, ChangeThreshold: 0.5}
	if a.Fingerprint() == e.Fingerprint() || a.Fingerprint() == g.Fingerprint() {
		t.Fatal("refresh and change-threshold settings must fingerprint differently")
	}
}

// upshift returns factories where BOTH arms speed up at the flip epoch but
// the winner changes: "a" goes 4→2 and "b" 8→1. Discounting alone never
// re-explores here — the incumbent's own reward improves at the flip, so a
// greedy bandit happily keeps playing "a". Only the change-point reset (or
// the refresh backstop) can discover "b".
func upshift(flip int) Factories {
	return Factories{
		NewTarget: func(arm string) (sim.Target, error) {
			lat := func(e int) int {
				if arm == "a" {
					if e < flip {
						return 4
					}
					return 2
				}
				if e < flip {
					return 8
				}
				return 1
			}
			return &fakeTarget{name: arm, cores: 1, lat: lat}, nil
		},
		NewSources: func() ([]sim.Source, error) { return []sim.Source{fakeSource{}}, nil },
	}
}

// lastPlays counts each arm's plays over the final n windows.
func lastPlays(rep *Report, n int) map[string]int {
	plays := map[string]int{}
	for _, w := range rep.Windows[len(rep.Windows)-n:] {
		plays[w.Arm]++
	}
	return plays
}

func TestChangeResetRecoversFromUpwardShift(t *testing.T) {
	const epochs = 16
	cfg := testConfig(epochs)
	f := upshift(cfg.WarmupEpochs + epochs/2)
	// Refresh disabled: the reset must do the re-exploration on its own.
	opts := Options{
		Arms: []string{"a", "b"}, WindowEpochs: 1,
		Exploration: 0.001, Refresh: NoRefresh, ChangeThreshold: 0.25,
	}
	rr, err := Run(cfg, opts, f)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Report.Resets == 0 {
		t.Fatal("the incumbent's reward doubles at the flip; change detection should reset")
	}
	if plays := lastPlays(rr.Report, 4); plays["b"] <= plays["a"] {
		t.Fatalf("after the reset the new winner must dominate, final plays: %v", plays)
	}
}

func TestRefreshReplaysStaleArms(t *testing.T) {
	const epochs = 16
	cfg := testConfig(epochs)
	f := upshift(cfg.WarmupEpochs + epochs/2)
	// Change detection disabled and the confidence bonus near zero: only the
	// sliding-window refresh can ever replay the losing arm.
	opts := Options{
		Arms: []string{"a", "b"}, WindowEpochs: 1,
		Exploration: 0.001, Refresh: 3, ChangeThreshold: NoChangeDetection,
	}
	rr, err := Run(cfg, opts, f)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Report.Resets != 0 {
		t.Fatalf("change detection is off, got %d resets", rr.Report.Resets)
	}
	refreshed := false
	for _, w := range rr.Report.Windows {
		if w.Rule == "refresh" {
			refreshed = true
		}
	}
	if !refreshed {
		t.Fatal("no window was chosen by the refresh rule")
	}
	if plays := lastPlays(rr.Report, 4); plays["b"] <= plays["a"] {
		t.Fatalf("refresh must rediscover the new winner, final plays: %v", plays)
	}
}

func TestRunRejections(t *testing.T) {
	f := flat(map[string]int{"a": 1})
	if _, err := Run(testConfig(4), Options{}, f); err == nil {
		t.Fatal("no arms should error")
	}
	cfg := testConfig(4)
	cfg.StartEpoch = 3
	if _, err := Run(cfg, Options{Arms: []string{"a"}}, f); err == nil {
		t.Fatal("nonzero StartEpoch should error")
	}
}

func TestRegretEdgeCases(t *testing.T) {
	if _, err := Regret(nil, nil); err == nil {
		t.Fatal("empty series should error")
	}
	if _, err := Regret([]float64{1}, nil); err == nil {
		t.Fatal("empty oracle should error")
	}
	if _, err := Regret([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched epoch counts should error")
	}
	r, err := Regret([]float64{1, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cumulative != 1 || r.PerEpoch[0] != 1 || r.PerEpoch[1] != 0 {
		t.Fatalf("bad regret math: %+v", r)
	}
	if r.MeanRealized != 1.5 || r.MeanOracle != 2 || r.Ratio != 0.75 {
		t.Fatalf("bad means: %+v", r)
	}
}
