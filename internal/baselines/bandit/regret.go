package bandit

import "fmt"

// RegretReport compares the bandit's realized per-epoch throughput series
// against the offline oracle's envelope (offline.Ideal over full runs of
// every arm). Regret here is throughput regret — oracle minus realized per
// epoch — regardless of the reward mode the bandit optimized, because the
// oracle is defined on throughput (§5.1, Fig. 15).
type RegretReport struct {
	// PerEpoch is oracle[e] - realized[e]. Individual entries can be
	// negative: a bandit window warmed near epoch e can beat the oracle's
	// same-epoch snapshot of a full fixed run.
	PerEpoch []float64 `json:"per_epoch"`
	// Cumulative is the sum of PerEpoch.
	Cumulative float64 `json:"cumulative"`
	// MeanRealized and MeanOracle are the whole-run mean throughputs;
	// Ratio is MeanRealized/MeanOracle (1.0 = matched the oracle).
	MeanRealized float64 `json:"mean_realized"`
	MeanOracle   float64 `json:"mean_oracle"`
	Ratio        float64 `json:"ratio"`
}

// Regret computes the regret report for a realized per-epoch throughput
// series against the oracle envelope. Both series must be non-empty and
// cover the same epochs.
func Regret(realized, oracle []float64) (*RegretReport, error) {
	if len(realized) == 0 || len(oracle) == 0 {
		return nil, fmt.Errorf("bandit: regret needs non-empty series (realized %d, oracle %d epochs)", len(realized), len(oracle))
	}
	if len(realized) != len(oracle) {
		return nil, fmt.Errorf("bandit: regret series cover %d vs %d epochs", len(realized), len(oracle))
	}
	r := &RegretReport{PerEpoch: make([]float64, len(realized))}
	for e := range realized {
		r.PerEpoch[e] = oracle[e] - realized[e]
		r.Cumulative += r.PerEpoch[e]
		r.MeanRealized += realized[e] / float64(len(realized))
		r.MeanOracle += oracle[e] / float64(len(oracle))
	}
	if r.MeanOracle != 0 {
		r.Ratio = r.MeanRealized / r.MeanOracle
	}
	return r, nil
}
