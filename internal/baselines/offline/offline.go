// Package offline implements the paper's ideal offline scheme (§5.1,
// Fig. 15): an oracle that executes the workload under every candidate
// static topology and, at each epoch boundary, picks the topology that
// performs best for that epoch. It is not realizable in practice (it needs
// the future), which is exactly why the paper uses it as the upper bound
// MorphCache is measured against (MorphCache reaches ≈97% of it).
package offline

import (
	"fmt"

	"morphcache/internal/metrics"
)

// Labels assigns each candidate run an unambiguous label: the policy name
// alone when no other candidate shares it, and "policy#i" (i the run's
// position in the slice) when two candidates carry the same policy name —
// e.g. two static topologies both recorded as "static". Envelope choices
// must name exactly one run or the regret report cannot attribute winners.
func Labels(runs []*metrics.Run) []string {
	seen := make(map[string]int, len(runs))
	for _, r := range runs {
		seen[r.Policy]++
	}
	labels := make([]string, len(runs))
	for i, r := range runs {
		if seen[r.Policy] > 1 {
			labels[i] = fmt.Sprintf("%s#%d", r.Policy, i)
		} else {
			labels[i] = r.Policy
		}
	}
	return labels
}

// Ideal composes the per-epoch upper envelope over the given static runs.
// All runs must cover the same number of epochs. It returns the per-epoch
// best throughput and which configuration achieved it, labelled per Labels
// so duplicate policy names stay distinguishable. Equal throughput breaks
// toward the lowest index, so permuting equal candidates permutes the
// reported labels but job-completion order can never change the envelope.
func Ideal(runs []*metrics.Run) (series []float64, choice []string, err error) {
	if len(runs) == 0 {
		return nil, nil, fmt.Errorf("offline: no candidate runs")
	}
	n := len(runs[0].Epochs)
	for _, r := range runs[1:] {
		if len(r.Epochs) != n {
			return nil, nil, fmt.Errorf("offline: runs cover %d vs %d epochs", len(r.Epochs), n)
		}
	}
	labels := Labels(runs)
	series = make([]float64, n)
	choice = make([]string, n)
	for e := 0; e < n; e++ {
		best, bestT := -1, 0.0
		for i, r := range runs {
			// Strictly-greater keeps the lowest-index winner on ties.
			if t := r.Epochs[e].Throughput(); best < 0 || t > bestT {
				best, bestT = i, t
			}
		}
		series[e] = bestT
		choice[e] = labels[best]
	}
	return series, choice, nil
}

// Throughput returns the whole-run throughput of the ideal schedule: the
// mean of the per-epoch envelope.
func Throughput(series []float64) float64 {
	var sum float64
	for _, t := range series {
		sum += t
	}
	if len(series) == 0 {
		return 0
	}
	return sum / float64(len(series))
}
