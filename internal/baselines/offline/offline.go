// Package offline implements the paper's ideal offline scheme (§5.1,
// Fig. 15): an oracle that executes the workload under every candidate
// static topology and, at each epoch boundary, picks the topology that
// performs best for that epoch. It is not realizable in practice (it needs
// the future), which is exactly why the paper uses it as the upper bound
// MorphCache is measured against (MorphCache reaches ≈97% of it).
package offline

import (
	"fmt"

	"morphcache/internal/metrics"
)

// Ideal composes the per-epoch upper envelope over the given static runs.
// All runs must cover the same number of epochs. It returns the per-epoch
// best throughput and which configuration achieved it.
func Ideal(runs []*metrics.Run) (series []float64, choice []string, err error) {
	if len(runs) == 0 {
		return nil, nil, fmt.Errorf("offline: no candidate runs")
	}
	n := len(runs[0].Epochs)
	for _, r := range runs[1:] {
		if len(r.Epochs) != n {
			return nil, nil, fmt.Errorf("offline: runs cover %d vs %d epochs", len(r.Epochs), n)
		}
	}
	series = make([]float64, n)
	choice = make([]string, n)
	for e := 0; e < n; e++ {
		best, bestT := -1, 0.0
		for i, r := range runs {
			if t := r.Epochs[e].Throughput(); best < 0 || t > bestT {
				best, bestT = i, t
			}
		}
		series[e] = bestT
		choice[e] = runs[best].Policy
	}
	return series, choice, nil
}

// Throughput returns the whole-run throughput of the ideal schedule: the
// mean of the per-epoch envelope.
func Throughput(series []float64) float64 {
	var sum float64
	for _, t := range series {
		sum += t
	}
	if len(series) == 0 {
		return 0
	}
	return sum / float64(len(series))
}
