package offline

import (
	"testing"

	"morphcache/internal/metrics"
)

func runWith(policy string, series ...float64) *metrics.Run {
	r := &metrics.Run{Policy: policy}
	for i, t := range series {
		r.Epochs = append(r.Epochs, metrics.Epoch{Index: i, PerCoreIPC: []float64{t}})
	}
	return r
}

func TestIdealEnvelope(t *testing.T) {
	a := runWith("A", 1.0, 3.0, 2.0)
	b := runWith("B", 2.0, 1.0, 2.5)
	series, choice, err := Ideal([]*metrics.Run{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.0, 3.0, 2.5}
	wantChoice := []string{"B", "A", "B"}
	for i := range want {
		if series[i] != want[i] || choice[i] != wantChoice[i] {
			t.Fatalf("epoch %d: %v/%v, want %v/%v", i, series[i], choice[i], want[i], wantChoice[i])
		}
	}
	if m := Throughput(series); m != 2.5 {
		t.Fatalf("mean %v, want 2.5", m)
	}
}

func TestIdealDominates(t *testing.T) {
	a := runWith("A", 1, 2, 3, 4)
	b := runWith("B", 4, 3, 2, 1)
	series, _, err := Ideal([]*metrics.Run{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for i := range series {
		if series[i] < a.Epochs[i].Throughput() || series[i] < b.Epochs[i].Throughput() {
			t.Fatal("the envelope must dominate every candidate at every epoch")
		}
	}
}

func TestIdealErrors(t *testing.T) {
	if _, _, err := Ideal(nil); err == nil {
		t.Fatal("no candidates should error")
	}
	if _, _, err := Ideal([]*metrics.Run{runWith("A", 1), runWith("B", 1, 2)}); err == nil {
		t.Fatal("mismatched epoch counts should error")
	}
}

func TestThroughputEmpty(t *testing.T) {
	if Throughput(nil) != 0 {
		t.Fatal("empty series mean should be 0")
	}
}
