package offline

import (
	"testing"

	"morphcache/internal/metrics"
)

func runWith(policy string, series ...float64) *metrics.Run {
	r := &metrics.Run{Policy: policy}
	for i, t := range series {
		r.Epochs = append(r.Epochs, metrics.Epoch{Index: i, PerCoreIPC: []float64{t}})
	}
	return r
}

func TestIdealEnvelope(t *testing.T) {
	a := runWith("A", 1.0, 3.0, 2.0)
	b := runWith("B", 2.0, 1.0, 2.5)
	series, choice, err := Ideal([]*metrics.Run{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.0, 3.0, 2.5}
	wantChoice := []string{"B", "A", "B"}
	for i := range want {
		if series[i] != want[i] || choice[i] != wantChoice[i] {
			t.Fatalf("epoch %d: %v/%v, want %v/%v", i, series[i], choice[i], want[i], wantChoice[i])
		}
	}
	if m := Throughput(series); m != 2.5 {
		t.Fatalf("mean %v, want 2.5", m)
	}
}

func TestIdealDominates(t *testing.T) {
	a := runWith("A", 1, 2, 3, 4)
	b := runWith("B", 4, 3, 2, 1)
	series, _, err := Ideal([]*metrics.Run{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for i := range series {
		if series[i] < a.Epochs[i].Throughput() || series[i] < b.Epochs[i].Throughput() {
			t.Fatal("the envelope must dominate every candidate at every epoch")
		}
	}
}

func TestIdealErrors(t *testing.T) {
	if _, _, err := Ideal(nil); err == nil {
		t.Fatal("no candidates should error")
	}
	if _, _, err := Ideal([]*metrics.Run{runWith("A", 1), runWith("B", 1, 2)}); err == nil {
		t.Fatal("mismatched epoch counts should error")
	}
}

func TestThroughputEmpty(t *testing.T) {
	if Throughput(nil) != 0 {
		t.Fatal("empty series mean should be 0")
	}
}

// Two candidates sharing a policy name must still be distinguishable in the
// choice series (regression for the ambiguous runs[best].Policy labelling).
func TestIdealDuplicatePolicyNames(t *testing.T) {
	a := runWith("static", 3.0, 1.0)
	b := runWith("static", 1.0, 3.0)
	c := runWith("morph", 2.0, 2.0)
	_, choice, err := Ideal([]*metrics.Run{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"static#0", "static#1"}
	for i := range want {
		if choice[i] != want[i] {
			t.Fatalf("epoch %d winner %q, want %q", i, choice[i], want[i])
		}
	}
	if choice[0] == choice[1] {
		t.Fatal("duplicate-named winners must carry distinct labels")
	}
}

// Equal throughput must resolve to the lowest-index candidate so that the
// envelope is a pure function of the candidate list, not of job ordering.
func TestIdealTieBreakLowestIndex(t *testing.T) {
	a := runWith("A", 2.0, 1.0)
	b := runWith("B", 2.0, 2.0)
	c := runWith("C", 2.0, 2.0)
	series, choice, err := Ideal([]*metrics.Run{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if choice[0] != "A" {
		t.Fatalf("three-way tie at epoch 0 chose %q, want lowest index %q", choice[0], "A")
	}
	if choice[1] != "B" {
		t.Fatalf("two-way tie at epoch 1 chose %q, want lowest index %q", choice[1], "B")
	}
	// Permuting the candidates must leave the envelope values untouched.
	series2, _, err := Ideal([]*metrics.Run{c, b, a})
	if err != nil {
		t.Fatal(err)
	}
	for i := range series {
		if series[i] != series2[i] {
			t.Fatalf("epoch %d envelope changed under permutation: %v vs %v", i, series[i], series2[i])
		}
	}
}

func TestLabelsUniqueOnly(t *testing.T) {
	runs := []*metrics.Run{runWith("A", 1), runWith("B", 1)}
	got := Labels(runs)
	if got[0] != "A" || got[1] != "B" {
		t.Fatalf("unique names must stay undecorated, got %v", got)
	}
}
