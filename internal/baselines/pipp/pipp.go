// Package pipp implements the Promotion/Insertion Pseudo-Partitioning
// baseline (Xie & Loh, ISCA 2009) extended to both the L2 and L3 caches,
// which the paper compares MorphCache against in Fig. 17.
//
// PIPP manages a single shared cache at each level (the paper: "partitioning
// a single shared cache at each level"):
//
//   - Utility monitors (UMON-style sampled auxiliary tag directories, one
//     per core per level) record stack-distance hit histograms.
//   - At each interval a greedy utility-based allocation assigns each core a
//     target partition π_i of the ways.
//   - A core's incoming line is inserted at stack priority π_i (counting
//     from the LRU end); on a hit the line is promoted by a single position
//     with probability p_prom. Cores detected as streaming (negligible
//     reuse in their monitor) insert at the LRU+1 position with a low
//     promotion probability, so streams cannot pollute partitions.
//
// The combined insertion/promotion discipline yields partitioning, adaptive
// insertion, and capacity stealing with one mechanism, but is
// "topology-unaware": both levels are flat shared caches with the idealized
// static latencies, which is exactly the property the paper's comparison
// targets.
//
// The two levels are managed independently and are not inclusive (the
// extension manages "a single shared cache at each level"; cross-level
// inclusion is not part of the mechanism).
package pipp

import (
	"morphcache/internal/cache"
	"morphcache/internal/hierarchy"
	"morphcache/internal/mem"
	"morphcache/internal/metrics"
	"morphcache/internal/rng"
	"morphcache/internal/sim"
	"morphcache/internal/workload"
)

// Options tunes the PIPP mechanism.
type Options struct {
	// PromoteProb is the hit-promotion probability (3/4 in the PIPP paper).
	PromoteProb float64
	// StreamPromoteProb is the promotion probability for streaming cores
	// (1/128 in the PIPP paper).
	StreamPromoteProb float64
	// SampleEvery selects UMON sampled sets (every 32nd set).
	SampleEvery int
	// StreamHitRate: a core whose monitor hit rate falls below this is
	// treated as streaming.
	StreamHitRate float64
}

// DefaultOptions returns the PIPP paper's constants.
func DefaultOptions() Options {
	return Options{PromoteProb: 0.75, StreamPromoteProb: 1.0 / 128, SampleEvery: 32, StreamHitRate: 0.04}
}

// System is a two-level PIPP-managed shared hierarchy implementing
// sim.Target.
type System struct {
	cores    int
	p        hierarchy.Params
	opts     Options
	l1       []*cache.Slice
	l2, l3   *level
	coreASID []mem.ASID
	r        *rng.Stream
}

// New builds the PIPP system: one shared L2 of cores×256 KB and one shared
// L3 of cores×1 MB, each with summed associativity.
func New(p hierarchy.Params, opts Options) *System {
	s := &System{
		cores:    p.Cores,
		p:        p,
		opts:     opts,
		coreASID: make([]mem.ASID, p.Cores),
		r:        rng.New(0xD1CE),
	}
	for i := 0; i < p.Cores; i++ {
		s.l1 = append(s.l1, cache.New(cache.Config{SizeBytes: p.L1SizeBytes, Ways: p.L1Ways, Policy: cache.LRU}))
	}
	l2Sets := p.L2SliceBytes / mem.LineSize / p.L2Ways
	l3Sets := p.L3SliceBytes / mem.LineSize / p.L3Ways
	s.l2 = newLevel(p.Cores, l2Sets, p.L2Ways*p.Cores, opts)
	s.l3 = newLevel(p.Cores, l3Sets, p.L3Ways*p.Cores, opts)
	return s
}

// Name implements sim.Target.
func (s *System) Name() string { return "PIPP" }

// Cores implements sim.Target.
func (s *System) Cores() int { return s.cores }

// Spec implements sim.Target.
func (s *System) Spec() string { return "PIPP(L2+L3)" }

// SetCoreASID implements sim.Target.
func (s *System) SetCoreASID(core int, asid mem.ASID) { s.coreASID[core] = asid }

// EndEpoch implements sim.Target: recompute partitions from the monitors.
func (s *System) EndEpoch(int) (int, bool) {
	s.l2.repartition()
	s.l3.repartition()
	return 0, false
}

// Access implements sim.Target.
func (s *System) Access(core int, a mem.Access, _ uint64) hierarchy.AccessResult {
	gl := a.Global()
	write := a.Kind == mem.Write
	lat := s.p.L1HitCycles
	if s.l1[core].Access(a.ASID, a.Line, write) >= 0 {
		if write {
			s.invalidateOtherL1s(core, gl)
		}
		return hierarchy.AccessResult{Latency: lat, Served: hierarchy.ByL1}
	}

	s.l2.monitor(core, gl, s.r)
	if s.l2.hit(core, gl, write, s.r) {
		lat += s.p.L2LocalCycles
		s.fillL1(core, a, write)
		if write {
			s.invalidateOtherL1s(core, gl)
		}
		return hierarchy.AccessResult{Latency: lat, Served: hierarchy.ByL2}
	}

	s.l3.monitor(core, gl, s.r)
	if s.l3.hit(core, gl, false, s.r) {
		lat += s.p.L3LocalCycles
		s.fillLevel(s.l2, core, gl, write)
		s.fillL1(core, a, write)
		if write {
			s.invalidateOtherL1s(core, gl)
		}
		return hierarchy.AccessResult{Latency: lat, Served: hierarchy.ByL3}
	}

	lat += s.p.MemCycles
	s.fillLevel(s.l3, core, gl, false)
	s.fillLevel(s.l2, core, gl, write)
	s.fillL1(core, a, write)
	if write {
		s.invalidateOtherL1s(core, gl)
	}
	return hierarchy.AccessResult{Latency: lat, Served: hierarchy.ByMemory}
}

func (s *System) fillL1(core int, a mem.Access, write bool) {
	old := s.l1[core].Insert(a.ASID, a.Line, write)
	if old.Valid && old.Dirty {
		ogl := mem.GlobalLine{ASID: old.ASID, Line: old.Line}
		if !s.l2.setDirty(ogl) {
			s.l3.setDirty(ogl)
		}
	}
}

func (s *System) fillLevel(lv *level, core int, gl mem.GlobalLine, dirty bool) {
	victim, hadVictim := lv.insert(core, gl, dirty)
	if hadVictim && victim.dirty {
		vgl := mem.GlobalLine{ASID: victim.asid, Line: victim.line}
		if lv == s.l2 {
			s.l3.setDirty(vgl) // best effort; counts as memory writeback otherwise
		}
		_ = vgl
	}
}

func (s *System) invalidateOtherL1s(core int, gl mem.GlobalLine) {
	for c := range s.l1 {
		if c != core {
			s.l1[c].Invalidate(gl.ASID, gl.Line)
		}
	}
}

// --- one PIPP-managed shared cache -----------------------------------------

type entry struct {
	valid bool
	dirty bool
	asid  mem.ASID
	line  mem.Line
	owner uint8
}

type level struct {
	cores, sets, ways int
	setMask           uint64
	entries           []entry    // sets*ways
	stack             [][]uint16 // per set, MRU first
	pos               [][]uint16 // per set: way -> stack index
	lookup            []map[mem.GlobalLine]uint16
	alloc             []int // π_i per core
	mon               []*umon
	streaming         []bool
	opts              Options
}

func newLevel(cores, sets, ways int, opts Options) *level {
	// Keep at least eight sampled sets per monitor regardless of cache
	// scale, otherwise the utility histograms are too noisy to allocate on.
	if sets/opts.SampleEvery < 8 {
		opts.SampleEvery = sets / 8
		if opts.SampleEvery < 1 {
			opts.SampleEvery = 1
		}
	}
	lv := &level{
		cores: cores, sets: sets, ways: ways,
		setMask: uint64(sets - 1),
		entries: make([]entry, sets*ways),
		opts:    opts,
	}
	lv.stack = make([][]uint16, sets)
	lv.pos = make([][]uint16, sets)
	lv.lookup = make([]map[mem.GlobalLine]uint16, sets)
	for s := range lv.stack {
		lv.stack[s] = make([]uint16, ways)
		lv.pos[s] = make([]uint16, ways)
		for w := 0; w < ways; w++ {
			lv.stack[s][w] = uint16(w)
			lv.pos[s][w] = uint16(w)
		}
		lv.lookup[s] = make(map[mem.GlobalLine]uint16)
	}
	lv.alloc = make([]int, cores)
	lv.streaming = make([]bool, cores)
	for c := range lv.alloc {
		lv.alloc[c] = ways / cores
	}
	lv.mon = make([]*umon, cores)
	for c := range lv.mon {
		lv.mon[c] = newUMON(ways)
	}
	return lv
}

func (lv *level) set(gl mem.GlobalLine) int { return int(uint64(gl.Line) & lv.setMask) }

// hit looks the line up; on a hit it applies single-step promotion and
// returns true.
func (lv *level) hit(core int, gl mem.GlobalLine, write bool, r *rng.Stream) bool {
	set := lv.set(gl)
	w, ok := lv.lookup[set][gl]
	if !ok {
		return false
	}
	e := &lv.entries[set*lv.ways+int(w)]
	if write {
		e.dirty = true
	}
	p := lv.opts.PromoteProb
	if lv.streaming[core] {
		p = lv.opts.StreamPromoteProb
	}
	if pos := int(lv.pos[set][w]); pos > 0 && r.Float64() < p {
		// Single-step promotion in the PIPP paper's 16-way caches climbs
		// 1/16th of the stack per hit; the merged 16-core stacks here are
		// 128/256 ways deep, so the step scales with depth to keep the
		// climb rate (and thus the partitioning strength) comparable.
		step := lv.ways / 32
		if step < 1 {
			step = 1
		}
		target := pos - step
		if target < 0 {
			target = 0
		}
		for pos > target {
			lv.swap(set, pos, pos-1)
			pos--
		}
	}
	return true
}

// swap exchanges two stack positions of a set.
func (lv *level) swap(set, i, j int) {
	st, pos := lv.stack[set], lv.pos[set]
	st[i], st[j] = st[j], st[i]
	pos[st[i]] = uint16(i)
	pos[st[j]] = uint16(j)
}

// insert places the core's line at stack priority π_core from the LRU end,
// evicting the LRU entry. Returns the victim.
func (lv *level) insert(core int, gl mem.GlobalLine, dirty bool) (victim entry, hadVictim bool) {
	set := lv.set(gl)
	st := lv.stack[set]
	w := st[lv.ways-1] // LRU way
	e := &lv.entries[set*lv.ways+int(w)]
	if e.valid {
		victim, hadVictim = *e, true
		delete(lv.lookup[set], mem.GlobalLine{ASID: e.asid, Line: e.line})
	}
	*e = entry{valid: true, dirty: dirty, asid: gl.ASID, line: gl.Line, owner: uint8(core)}
	lv.lookup[set][gl] = w

	// Insertion priority: the PIPP paper's π_i is the core's allocation in
	// a 16-way cache, i.e., 1/16th-granular stack depth. The merged
	// 16-core stacks here are 8-16x deeper, so π_i scales by cores/2 to
	// land at the equivalent relative depth (a core with its fair-share
	// allocation inserts mid-stack; high-utility cores insert near MRU,
	// streaming cores just above LRU), preserving the utility ordering the
	// mechanism encodes.
	pi := lv.alloc[core] * lv.cores / 2
	if lv.streaming[core] {
		pi = 1
	}
	if pi < 1 {
		pi = 1
	}
	if pi > lv.ways {
		pi = lv.ways
	}
	// Move the newly filled way from the LRU end to position ways-pi.
	target := lv.ways - pi
	for i := lv.ways - 1; i > target; i-- {
		lv.swap(set, i, i-1)
	}
	return victim, hadVictim
}

// setDirty marks the line dirty if present.
func (lv *level) setDirty(gl mem.GlobalLine) bool {
	set := lv.set(gl)
	if w, ok := lv.lookup[set][gl]; ok {
		lv.entries[set*lv.ways+int(w)].dirty = true
		return true
	}
	return false
}

// invalidate removes the line if present (coherence writes from DSR-style
// sharing are not modeled here: one shared cache has one copy).
func (lv *level) invalidate(gl mem.GlobalLine) {
	set := lv.set(gl)
	if w, ok := lv.lookup[set][gl]; ok {
		lv.entries[set*lv.ways+int(w)] = entry{}
		delete(lv.lookup[set], gl)
	}
}

// monitor feeds the core's UMON on sampled sets.
func (lv *level) monitor(core int, gl mem.GlobalLine, _ *rng.Stream) {
	set := lv.set(gl)
	if set%lv.opts.SampleEvery != 0 {
		return
	}
	lv.mon[core].access(set, gl)
}

// repartition runs the greedy utility allocation and refreshes stream
// detection, then decays the monitors.
func (lv *level) repartition() {
	// Stream detection: reuse rate in the monitor.
	for c, m := range lv.mon {
		total := m.accesses
		lv.streaming[c] = total > 64 && float64(m.totalHits()) < lv.opts.StreamHitRate*float64(total)
	}
	// Greedy marginal-utility allocation (UCP-style, single-way steps).
	alloc := make([]int, lv.cores)
	for c := range alloc {
		alloc[c] = 1
	}
	remaining := lv.ways - lv.cores
	for remaining > 0 {
		best, bestGain := -1, -1.0
		for c, m := range lv.mon {
			if alloc[c] >= lv.ways {
				continue
			}
			gain := float64(m.utility(alloc[c]+1) - m.utility(alloc[c]))
			if gain > bestGain {
				best, bestGain = c, gain
			}
		}
		if best < 0 {
			break
		}
		alloc[best]++
		remaining--
	}
	lv.alloc = alloc
	for _, m := range lv.mon {
		m.decay()
	}
}

// --- UMON: sampled auxiliary tag directory ---------------------------------

// umon is one core's utility monitor: an auxiliary tag directory over the
// sampled sets, fully associative per set with true-LRU stacks of `ways`
// entries, recording per-stack-position hit counters (the UCP UMON-DSS
// design the PIPP paper builds on).
type umon struct {
	ways     int
	stacks   map[int][]mem.GlobalLine
	hits     []uint64
	accesses uint64
}

func newUMON(ways int) *umon {
	return &umon{ways: ways, stacks: make(map[int][]mem.GlobalLine), hits: make([]uint64, ways)}
}

func (m *umon) access(set int, gl mem.GlobalLine) {
	m.accesses++
	stack := m.stacks[set]
	for i, x := range stack {
		if x == gl {
			m.hits[i]++
			copy(stack[1:i+1], stack[:i])
			stack[0] = gl
			return
		}
	}
	if len(stack) < m.ways {
		stack = append(stack, gl)
	}
	copy(stack[1:], stack[:len(stack)-1])
	stack[0] = gl
	m.stacks[set] = stack
}

func (m *umon) utility(ways int) uint64 {
	var u uint64
	for i := 0; i < ways && i < len(m.hits); i++ {
		u += m.hits[i]
	}
	return u
}

func (m *umon) totalHits() uint64 { return m.utility(m.ways) }

func (m *umon) decay() {
	for i := range m.hits {
		m.hits[i] /= 2
	}
	m.accesses /= 2
}

// Run executes a workload under PIPP with the engine defaults.
func Run(cfg sim.Config, p hierarchy.Params, gens []*workload.Generator) (*metrics.Run, error) {
	sys := New(p, DefaultOptions())
	eng, err := sim.New(cfg, sys, gens)
	if err != nil {
		return nil, err
	}
	return eng.Run(), nil
}
