package pipp

import (
	"testing"

	"morphcache/internal/hierarchy"
	"morphcache/internal/mem"
	"morphcache/internal/rng"
	"morphcache/internal/sim"
	"morphcache/internal/workload"
)

func newLevelT() *level {
	return newLevel(4, 64, 32, DefaultOptions())
}

func TestInsertEvictsLRU(t *testing.T) {
	lv := newLevelT()
	// Fill one set completely.
	var lines []mem.Line
	for i := 0; i < 32; i++ {
		l := mem.Line(i * 64) // all map to set 0
		lines = append(lines, l)
		lv.insert(0, mem.GlobalLine{ASID: 1, Line: l}, false)
	}
	// The next insertion must evict one of the earliest, least-promoted
	// lines, not a recent one.
	v, had := lv.insert(0, mem.GlobalLine{ASID: 1, Line: 64 * 100}, false)
	if !had {
		t.Fatal("full set must evict")
	}
	if v.line == lines[len(lines)-1] {
		t.Fatal("evicted the most recent insertion")
	}
}

func TestHitAndPromotion(t *testing.T) {
	lv := newLevelT()
	r := rng.New(1)
	gl := mem.GlobalLine{ASID: 1, Line: 0}
	lv.insert(0, gl, false)
	if !lv.hit(0, gl, false, r) {
		t.Fatal("inserted line should hit")
	}
	if lv.hit(0, mem.GlobalLine{ASID: 1, Line: 999 * 64}, false, r) {
		t.Fatal("absent line should miss")
	}
	// Repeated hits climb toward MRU: after many hits the line survives 31
	// fresh insertions.
	for i := 0; i < 200; i++ {
		lv.hit(0, gl, false, r)
	}
	for i := 1; i <= 31; i++ {
		lv.insert(1, mem.GlobalLine{ASID: 2, Line: mem.Line(i * 64)}, false)
	}
	if !lv.hit(0, gl, false, r) {
		t.Fatal("well-promoted line should survive a set of insertions")
	}
}

func TestStackPosConsistency(t *testing.T) {
	lv := newLevelT()
	r := rng.New(2)
	for i := 0; i < 5000; i++ {
		line := mem.Line(r.Intn(128) * 64)
		gl := mem.GlobalLine{ASID: 1, Line: line}
		if !lv.hit(0, gl, r.Intn(4) == 0, r) {
			lv.insert(r.Intn(4), gl, false)
		}
		// Invariant: stack and pos are inverse permutations.
		st, pos := lv.stack[0], lv.pos[0]
		for idx, way := range st {
			if int(pos[way]) != idx {
				t.Fatalf("stack/pos inconsistent at step %d", i)
			}
		}
	}
}

func TestUMONStackDistances(t *testing.T) {
	m := newUMON(8)
	gl := func(i int) mem.GlobalLine { return mem.GlobalLine{ASID: 1, Line: mem.Line(i)} }
	m.access(0, gl(1))
	m.access(0, gl(2))
	m.access(0, gl(1)) // stack distance 2 -> hits[1]
	if m.hits[1] != 1 {
		t.Fatalf("hits %v, want hit at position 1", m.hits)
	}
	if m.utility(1) != 0 || m.utility(2) != 1 {
		t.Fatalf("utility(1)=%d utility(2)=%d", m.utility(1), m.utility(2))
	}
	m.decay()
	if m.hits[1] != 0 {
		t.Fatal("decay should halve counters")
	}
}

func TestRepartitionFavorsReuse(t *testing.T) {
	lv := newLevelT()
	// Core 0 shows strong reuse in the monitor; core 1 streams.
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 4; i++ {
			lv.monitor(0, mem.GlobalLine{ASID: 1, Line: mem.Line(i * 64)}, nil)
		}
	}
	for i := 0; i < 200; i++ {
		lv.monitor(1, mem.GlobalLine{ASID: 2, Line: mem.Line(i * 64)}, nil)
	}
	lv.repartition()
	if lv.alloc[0] <= lv.alloc[1] {
		t.Fatalf("reusing core should out-allocate the stream: %v", lv.alloc)
	}
	if !lv.streaming[1] {
		t.Fatal("core 1 should be flagged streaming")
	}
	total := 0
	for _, a := range lv.alloc {
		total += a
	}
	if total > lv.ways {
		t.Fatalf("allocations %v exceed ways %d", lv.alloc, lv.ways)
	}
}

func TestSystemEndToEnd(t *testing.T) {
	p := hierarchy.ScaledDefault(4, 16)
	mix, _ := workload.MixByName("MIX 01")
	mix.Benchmarks = mix.Benchmarks[:4]
	gens := workload.MixGenerators(mix, workload.ScaledGenConfig(16), 1)
	cfg := sim.DefaultConfig()
	cfg.Epochs, cfg.WarmupEpochs, cfg.EpochCycles = 3, 1, 100_000
	run, err := Run(cfg, p, gens)
	if err != nil {
		t.Fatal(err)
	}
	if run.Throughput() <= 0 {
		t.Fatal("PIPP run produced no progress")
	}
	if run.Policy != "PIPP" {
		t.Fatalf("policy %q", run.Policy)
	}
}

func TestSetDirtyAndInvalidate(t *testing.T) {
	lv := newLevelT()
	gl := mem.GlobalLine{ASID: 1, Line: 7 * 64}
	lv.insert(0, gl, false)
	if !lv.setDirty(gl) {
		t.Fatal("setDirty on present line")
	}
	lv.invalidate(gl)
	if lv.setDirty(gl) {
		t.Fatal("line should be gone after invalidate")
	}
}
