package trace

import (
	"bytes"
	"errors"
	"testing"

	"morphcache/internal/mem"
	"morphcache/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]mem.Access{
		{{Line: 1, ASID: 1}, {Line: 2, ASID: 1, Kind: mem.Write}, {Line: 3, ASID: 1}},
		{{Line: 100, ASID: 2}, {Line: 101, ASID: 2}},
	}
	for i := 0; i < 3; i++ {
		if err := w.Record(0, want[0][i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := w.Record(1, want[1][i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.EpochBoundary(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 6 {
		t.Fatalf("records %d", w.Records())
	}

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cores != 2 || tr.Len(0) != 3 || tr.Len(1) != 2 || tr.Epochs() != 2 {
		t.Fatalf("trace shape: cores=%d len0=%d len1=%d epochs=%d", tr.Cores, tr.Len(0), tr.Len(1), tr.Epochs())
	}
	for c := range want {
		cur, err := tr.Cursor(c)
		if err != nil {
			t.Fatal(err)
		}
		cur.BeginEpoch(0)
		for i, exp := range want[c] {
			if got := cur.Next(); got != exp {
				t.Fatalf("core %d ref %d: %+v != %+v", c, i, got, exp)
			}
		}
	}
}

func TestCursorWraps(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	w.Record(0, mem.Access{Line: 7, ASID: 1})
	w.Record(0, mem.Access{Line: 8, ASID: 1})
	w.Flush()
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := tr.Cursor(0)
	seq := []mem.Line{7, 8, 7, 8, 7}
	for i, want := range seq {
		if got := cur.Next().Line; got != want {
			t.Fatalf("ref %d: %d != %d", i, got, want)
		}
	}
	// Epochs beyond the recording wrap too.
	cur.BeginEpoch(5)
	if cur.Next().Line != 7 {
		t.Fatal("epoch wrap")
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("BAD!"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("MCTR\x01\x00"))); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := NewWriter(&bytes.Buffer{}, 0); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewWriter(&bytes.Buffer{}, 300); err == nil {
		t.Fatal("too many cores accepted")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	if err := w.Record(5, mem.Access{}); err == nil {
		t.Fatal("out-of-range core accepted")
	}
}

// validTrace builds a two-core trace with two epochs (five records total,
// epoch marker included) for the corruption tests.
func validTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Record(0, mem.Access{Line: 1, ASID: 1})
	w.Record(1, mem.Access{Line: 2, ASID: 2, Kind: mem.Write})
	w.EpochBoundary()
	w.Record(0, mem.Access{Line: 3, ASID: 1})
	w.Record(1, mem.Access{Line: 4, ASID: 2})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTruncationDetection(t *testing.T) {
	data := validTrace(t)
	const header = 8
	// Every cut inside the record region that is NOT on a record boundary
	// must be flagged as mid-record truncation; every cut ON a boundary is a
	// clean (shorter) trace.
	for cut := header; cut < len(data); cut++ {
		_, err := Read(bytes.NewReader(data[:cut]))
		if (cut-header)%recordLen == 0 {
			if err != nil {
				t.Fatalf("cut at boundary %d rejected: %v", cut, err)
			}
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("mid-record cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
	// Cuts inside the header are header errors, not record truncation.
	for cut := 1; cut < header; cut++ {
		_, err := Read(bytes.NewReader(data[:cut]))
		if err == nil || errors.Is(err, ErrTruncated) {
			t.Fatalf("header cut at %d: got %v, want non-truncation error", cut, err)
		}
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCorruptRecords(t *testing.T) {
	const header = 8
	cases := []struct {
		name    string
		corrupt func([]byte)
	}{
		{"unknown access kind", func(d []byte) { d[header+1] = 9 }},
		{"epoch marker with kind payload", func(d []byte) { d[header+2*recordLen+1] = 1 }},
		{"epoch marker with line payload", func(d []byte) { d[header+2*recordLen+7] = 0xAB }},
		{"record for out-of-range core", func(d []byte) { d[header] = 5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := append([]byte(nil), validTrace(t)...)
			tc.corrupt(data)
			if _, err := Read(bytes.NewReader(data)); err == nil {
				t.Fatal("corrupt trace accepted")
			}
		})
	}
}

// FuzzRead asserts the reader never panics and never hands corrupt bytes to
// a replay cursor: any trace it accepts must satisfy the cursor contract.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	w.Record(0, mem.Access{Line: 1, ASID: 1})
	w.EpochBoundary()
	w.Record(1, mem.Access{Line: 2, ASID: 2, Kind: mem.Write})
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])           // mid-record cut
	f.Add(valid[:8])                      // header only
	f.Add([]byte("MCTR"))                 // short header
	f.Add([]byte("XXXX\x01\x00\x02\x00")) // bad magic
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tr.Cores <= 0 || tr.Cores >= 0xFF {
			t.Fatalf("accepted trace with core count %d", tr.Cores)
		}
		if tr.Epochs() < 1 {
			t.Fatalf("accepted trace with %d epochs", tr.Epochs())
		}
		for c := 0; c < tr.Cores; c++ {
			cur, err := tr.Cursor(c)
			if err != nil {
				continue // cores without records have no cursor
			}
			cur.BeginEpoch(0)
			cur.BeginEpoch(tr.Epochs() + 3) // wraps, must not panic
			for i := 0; i < 4; i++ {
				if a := cur.Next(); a.Kind > mem.Write {
					t.Fatalf("replayed unknown kind %d", a.Kind)
				}
			}
		}
	})
}

func TestRecordGeneratorOutput(t *testing.T) {
	// Capture a synthetic generator's stream and verify the replay is
	// identical — the record/replay path does not disturb determinism.
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(prof, workload.ScaledGenConfig(16), 1, 0, 9)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	var recorded []mem.Access
	for e := 0; e < 2; e++ {
		gen.BeginEpoch(e)
		for i := 0; i < 1000; i++ {
			a := gen.Next()
			recorded = append(recorded, a)
			if err := w.Record(0, a); err != nil {
				t.Fatal(err)
			}
		}
		w.EpochBoundary()
	}
	w.Flush()
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := tr.Cursor(0)
	for e := 0; e < 2; e++ {
		cur.BeginEpoch(e)
		for i := 0; i < 1000; i++ {
			if got := cur.Next(); got != recorded[e*1000+i] {
				t.Fatalf("replay diverged at epoch %d ref %d", e, i)
			}
		}
	}
	if cur.ASID() != 1 {
		t.Fatal("cursor ASID")
	}
}

func TestEpochLen(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	w.Record(0, mem.Access{Line: 1, ASID: 1})
	w.Record(0, mem.Access{Line: 2, ASID: 1})
	w.EpochBoundary()
	w.Record(0, mem.Access{Line: 3, ASID: 1})
	w.Flush()
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.EpochLen(0, 0) != 2 || tr.EpochLen(0, 1) != 1 {
		t.Fatalf("epoch lengths %d/%d, want 2/1", tr.EpochLen(0, 0), tr.EpochLen(0, 1))
	}
	if tr.EpochLen(0, 5) != 0 || tr.EpochLen(0, -1) != 0 {
		t.Fatal("out-of-range epochs should be empty")
	}
}
