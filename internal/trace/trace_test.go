package trace

import (
	"bytes"
	"testing"

	"morphcache/internal/mem"
	"morphcache/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]mem.Access{
		{{Line: 1, ASID: 1}, {Line: 2, ASID: 1, Kind: mem.Write}, {Line: 3, ASID: 1}},
		{{Line: 100, ASID: 2}, {Line: 101, ASID: 2}},
	}
	for i := 0; i < 3; i++ {
		if err := w.Record(0, want[0][i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := w.Record(1, want[1][i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.EpochBoundary(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 6 {
		t.Fatalf("records %d", w.Records())
	}

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cores != 2 || tr.Len(0) != 3 || tr.Len(1) != 2 || tr.Epochs() != 2 {
		t.Fatalf("trace shape: cores=%d len0=%d len1=%d epochs=%d", tr.Cores, tr.Len(0), tr.Len(1), tr.Epochs())
	}
	for c := range want {
		cur, err := tr.Cursor(c)
		if err != nil {
			t.Fatal(err)
		}
		cur.BeginEpoch(0)
		for i, exp := range want[c] {
			if got := cur.Next(); got != exp {
				t.Fatalf("core %d ref %d: %+v != %+v", c, i, got, exp)
			}
		}
	}
}

func TestCursorWraps(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	w.Record(0, mem.Access{Line: 7, ASID: 1})
	w.Record(0, mem.Access{Line: 8, ASID: 1})
	w.Flush()
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := tr.Cursor(0)
	seq := []mem.Line{7, 8, 7, 8, 7}
	for i, want := range seq {
		if got := cur.Next().Line; got != want {
			t.Fatalf("ref %d: %d != %d", i, got, want)
		}
	}
	// Epochs beyond the recording wrap too.
	cur.BeginEpoch(5)
	if cur.Next().Line != 7 {
		t.Fatal("epoch wrap")
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("BAD!"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("MCTR\x01\x00"))); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := NewWriter(&bytes.Buffer{}, 0); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewWriter(&bytes.Buffer{}, 300); err == nil {
		t.Fatal("too many cores accepted")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	if err := w.Record(5, mem.Access{}); err == nil {
		t.Fatal("out-of-range core accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	w.Record(0, mem.Access{Line: 1, ASID: 1})
	w.Flush()
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestRecordGeneratorOutput(t *testing.T) {
	// Capture a synthetic generator's stream and verify the replay is
	// identical — the record/replay path does not disturb determinism.
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(prof, workload.ScaledGenConfig(16), 1, 0, 9)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	var recorded []mem.Access
	for e := 0; e < 2; e++ {
		gen.BeginEpoch(e)
		for i := 0; i < 1000; i++ {
			a := gen.Next()
			recorded = append(recorded, a)
			if err := w.Record(0, a); err != nil {
				t.Fatal(err)
			}
		}
		w.EpochBoundary()
	}
	w.Flush()
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := tr.Cursor(0)
	for e := 0; e < 2; e++ {
		cur.BeginEpoch(e)
		for i := 0; i < 1000; i++ {
			if got := cur.Next(); got != recorded[e*1000+i] {
				t.Fatalf("replay diverged at epoch %d ref %d", e, i)
			}
		}
	}
	if cur.ASID() != 1 {
		t.Fatal("cursor ASID")
	}
}

func TestEpochLen(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	w.Record(0, mem.Access{Line: 1, ASID: 1})
	w.Record(0, mem.Access{Line: 2, ASID: 1})
	w.EpochBoundary()
	w.Record(0, mem.Access{Line: 3, ASID: 1})
	w.Flush()
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.EpochLen(0, 0) != 2 || tr.EpochLen(0, 1) != 1 {
		t.Fatalf("epoch lengths %d/%d, want 2/1", tr.EpochLen(0, 0), tr.EpochLen(0, 1))
	}
	if tr.EpochLen(0, 5) != 0 || tr.EpochLen(0, -1) != 0 {
		t.Fatal("out-of-range epochs should be empty")
	}
}
