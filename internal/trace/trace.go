// Package trace records and replays per-core memory reference streams.
//
// The synthetic workload models (internal/workload) stand in for the
// paper's benchmark suites, but a downstream user of the simulator will
// often have real traces — from Pin, DynamoRIO, or another simulator. This
// package defines a compact binary format for multi-core access traces,
// a Writer that captures any generator's output, and a Reader whose
// per-core cursors satisfy the same contract as workload.Generator
// (BeginEpoch/Next), so recorded or external traces drive the engine
// unchanged.
//
// Format (little-endian):
//
//	magic "MCTR" | version u16 | cores u16
//	then per record: core u8, kind u8, asid u16, line u64  (12 bytes)
//
// Epoch boundaries are encoded as a record with core = 0xFF; replaying
// cursors loop their stream if the engine asks for more references than
// were recorded (with a documented wrap, so short traces still drive long
// runs deterministically).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"morphcache/internal/mem"
)

// ErrTruncated reports a trace that ends in the middle of a record: the
// file was cut while being written or copied. A well-formed trace can only
// end on a record boundary (records are fixed-width), so a partial trailing
// record is always corruption, never a clean end of stream. The wrapping
// error carries the byte offset of the partial record.
var ErrTruncated = errors.New("trace: truncated mid-record")

const (
	magic   = "MCTR"
	version = 1
	// epochMark is the pseudo-core id of an epoch-boundary record.
	epochMark = 0xFF
	recordLen = 12
)

// Writer streams trace records to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	cores int
	n     uint64
}

// NewWriter writes the header and returns a Writer for the given core
// count (at most 255 real cores; core 255 is reserved).
func NewWriter(w io.Writer, cores int) (*Writer, error) {
	if cores <= 0 || cores >= epochMark {
		return nil, fmt.Errorf("trace: unsupported core count %d", cores)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], version)
	binary.LittleEndian.PutUint16(hdr[2:], uint16(cores))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, cores: cores}, nil
}

// Record appends one access by a core.
func (w *Writer) Record(core int, a mem.Access) error {
	if core < 0 || core >= w.cores {
		return fmt.Errorf("trace: core %d out of range", core)
	}
	return w.write(byte(core), a)
}

// EpochBoundary marks the end of an epoch across all cores.
func (w *Writer) EpochBoundary() error {
	return w.write(epochMark, mem.Access{})
}

func (w *Writer) write(core byte, a mem.Access) error {
	var rec [recordLen]byte
	rec[0] = core
	rec[1] = byte(a.Kind)
	binary.LittleEndian.PutUint16(rec[2:], uint16(a.ASID))
	binary.LittleEndian.PutUint64(rec[4:], uint64(a.Line))
	if _, err := w.w.Write(rec[:]); err != nil {
		return err
	}
	w.n++
	return nil
}

// Records returns the number of records written.
func (w *Writer) Records() uint64 { return w.n }

// Flush flushes buffered records.
func (w *Writer) Flush() error { return w.w.Flush() }

// Trace is a fully loaded multi-core trace.
type Trace struct {
	Cores int
	// perCore[c] is the ordered access stream of core c; epochStarts[c]
	// holds indices where epochs begin.
	perCore     [][]mem.Access
	epochStarts [][]int
}

// Read loads a trace written by Writer. It distinguishes a clean end of
// stream (EOF exactly on a record boundary) from a mid-record truncation,
// which returns an error wrapping ErrTruncated with the byte offset of the
// cut; corrupt record payloads (unknown access kinds, epoch markers with
// nonzero payload bytes) are rejected the same way rather than replayed as
// garbage accesses.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 8)
	if _, err := io.ReadFull(br, head); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("trace: empty input")
		}
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	cores := int(binary.LittleEndian.Uint16(head[6:]))
	if cores <= 0 || cores >= epochMark {
		return nil, fmt.Errorf("trace: bad core count %d", cores)
	}
	t := &Trace{
		Cores:       cores,
		perCore:     make([][]mem.Access, cores),
		epochStarts: make([][]int, cores),
	}
	for c := 0; c < cores; c++ {
		t.epochStarts[c] = []int{0}
	}
	var rec [recordLen]byte
	offset := int64(len(head)) // byte offset of the record being read
	for nrec := 0; ; nrec++ {
		n, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			break // clean end of stream, exactly on a record boundary
		}
		if err != nil {
			return nil, fmt.Errorf("%w: record %d at byte %d has %d of %d bytes",
				ErrTruncated, nrec, offset, n, recordLen)
		}
		core := rec[0]
		if core == epochMark {
			// Epoch markers carry no payload; nonzero bytes mean the stream
			// is corrupt (e.g. interleaved writes), not a real boundary.
			if rec[1] != 0 || binary.LittleEndian.Uint16(rec[2:]) != 0 ||
				binary.LittleEndian.Uint64(rec[4:]) != 0 {
				return nil, fmt.Errorf("trace: corrupt epoch marker at byte %d (nonzero payload)", offset)
			}
			for c := 0; c < cores; c++ {
				t.epochStarts[c] = append(t.epochStarts[c], len(t.perCore[c]))
			}
			offset += recordLen
			continue
		}
		if int(core) >= cores {
			return nil, fmt.Errorf("trace: record at byte %d for core %d of %d", offset, core, cores)
		}
		if k := mem.Kind(rec[1]); k > mem.Write {
			return nil, fmt.Errorf("trace: record at byte %d has unknown access kind %d", offset, rec[1])
		}
		t.perCore[core] = append(t.perCore[core], mem.Access{
			Kind: mem.Kind(rec[1]),
			ASID: mem.ASID(binary.LittleEndian.Uint16(rec[2:])),
			Line: mem.Line(binary.LittleEndian.Uint64(rec[4:])),
		})
		offset += recordLen
	}
	return t, nil
}

// Len returns the number of records for one core.
func (t *Trace) Len(core int) int { return len(t.perCore[core]) }

// Epochs returns the number of recorded epochs.
func (t *Trace) Epochs() int { return len(t.epochStarts[0]) }

// EpochLen returns the number of records of one core within one recorded
// epoch (the final epoch runs to the end of the stream).
func (t *Trace) EpochLen(core, epoch int) int {
	starts := t.epochStarts[core]
	if epoch < 0 || epoch >= len(starts) {
		return 0
	}
	end := len(t.perCore[core])
	if epoch+1 < len(starts) {
		end = starts[epoch+1]
	}
	return end - starts[epoch]
}

// Cursor is one core's replay stream. It satisfies the generator contract
// the engine needs (ASID/BeginEpoch/Next).
type Cursor struct {
	t    *Trace
	core int
	pos  int
}

// Cursor returns the replay cursor for one core.
func (t *Trace) Cursor(core int) (*Cursor, error) {
	if core < 0 || core >= t.Cores {
		return nil, fmt.Errorf("trace: core %d out of range", core)
	}
	if len(t.perCore[core]) == 0 {
		return nil, fmt.Errorf("trace: core %d has no records", core)
	}
	return &Cursor{t: t, core: core}, nil
}

// ASID returns the address space of the core's first access (traces are
// expected to keep a core within one address space, as the simulator does).
func (c *Cursor) ASID() mem.ASID { return c.t.perCore[c.core][0].ASID }

// BeginEpoch repositions the cursor at the recorded epoch's start; epochs
// beyond the recording wrap around modulo the recorded epoch count.
func (c *Cursor) BeginEpoch(e int) {
	starts := c.t.epochStarts[c.core]
	c.pos = starts[e%len(starts)]
}

// Next returns the next access, wrapping at the end of the stream. The wrap
// check runs before the read, not after: BeginEpoch can legally position the
// cursor at the stream's end when the core has no records in the final
// recorded epoch (an epoch marker closing the file), and that position must
// wrap, not fault.
func (c *Cursor) Next() mem.Access {
	s := c.t.perCore[c.core]
	if c.pos >= len(s) {
		c.pos = 0
	}
	a := s[c.pos]
	c.pos++
	return a
}
