// Package sampled implements SimPoint-style sampled simulation for the
// epoch engine: instead of simulating every reconfiguration interval of a
// run, it detects the run's phases from cheap per-epoch signatures, groups
// the measured epochs into a handful of phases by deterministic k-means
// clustering, simulates one representative epoch window per phase (with a
// configurable warmup prefix to reconstruct cache and topology state), and
// reconstructs the full-run metrics as the weighted combination of the
// representatives (Bueno et al., "Improving the Representativeness of
// Simulation Intervals for the Cache Memory System").
//
// Three properties of the simulator make this sound here:
//
//   - workload generators reseed per epoch from (seed, asid, thread, epoch),
//     so a window started at epoch r sees exactly the reference stream the
//     full run sees at epoch r (two deliberate approximations: the
//     streaming-region cursor persists across epochs in a full run, but the
//     streaming region is uniform so its position does not matter; and a
//     full run may enter epoch r with one reference still in flight, so the
//     window can issue at most one extra trailing reference per epoch);
//   - sim.Config.StartEpoch resumes the engine at any absolute epoch, with
//     clocks, telemetry, and sources all positioned on the full run's
//     timeline;
//   - every random choice (the k-means++ seeding) derives from the run seed
//     via internal/rng, and every tie in clustering breaks toward the lowest
//     index, so phase assignments and representatives are byte-identical at
//     every worker count and across repeated runs.
//
// What sampling cannot see: state that genuinely accumulates across many
// epochs. A warmup prefix of a few epochs rebuilds cache contents and gives
// the MorphCache controller a few reconfiguration decisions, but a topology
// that the full run reached through a long drift may differ from what the
// window converges to, and fault plans (which damage the machine at specific
// epochs) are rejected outright. The -run sampled validation experiment and
// its CI gate quantify the resulting reconstruction error.
package sampled

import (
	"fmt"

	"morphcache/internal/metrics"
	"morphcache/internal/sim"
	"morphcache/internal/telemetry"
)

// NoWindowWarmup requests a window with no warmup prefix (the zero value of
// Options.WindowWarmup means "use the default" instead, matching the
// package convention that zero-valued options are the defaults).
const NoWindowWarmup = -1

// Options configures sampled simulation. The zero value of every field
// selects the default printed by Defaults; Fast is the preset the batch
// benchmarks use.
type Options struct {
	// MaxPhases is k, the maximum number of phases (clusters) detected; the
	// effective count is min(MaxPhases, measured epochs), and empty clusters
	// are dropped. Default 4.
	MaxPhases int
	// WindowWarmup is the number of unmeasured epochs simulated before each
	// representative epoch to reconstruct cache contents and give the
	// policy's controller reconfiguration decisions to converge on. Windows
	// near epoch 0 are clamped (a representative at absolute epoch 1 can
	// warm up for at most 1 epoch). Default 2; NoWindowWarmup disables.
	WindowWarmup int
	// WindowCycles, when non-zero, truncates every window epoch (warmup and
	// measured) to this many cycles — the SMARTS-style short measurement:
	// IPC is a rate, so a representative slice of an epoch estimates the
	// epoch's rate at a fraction of its cost. 0 simulates full epochs.
	WindowCycles uint64
	// ProfileRefs is the number of references sampled per core per epoch by
	// the profiling pass that builds phase signatures. Default 2048.
	ProfileRefs int
	// SignatureBits is the width of each ACFV-style occupancy vector in the
	// phase signature (a power of two, as the XOR hash requires). Default 256.
	SignatureBits int
	// MaxIters caps the Lloyd refinement iterations. Default 32.
	MaxIters int
}

// Defaults returns the default sampling options.
func Defaults() Options {
	return Options{
		MaxPhases:     4,
		WindowWarmup:  2,
		WindowCycles:  0,
		ProfileRefs:   2048,
		SignatureBits: 256,
		MaxIters:      32,
	}
}

// Fast returns the aggressive preset used by the batch-sweep benchmark:
// fewer phases, one warmup epoch, quarter-length window epochs, and a
// lighter profiling pass. Accuracy is lower than Defaults; the validation
// experiment gates Defaults, not Fast.
func Fast() Options {
	return Options{
		MaxPhases:     2,
		WindowWarmup:  1,
		WindowCycles:  0, // set by the caller relative to its EpochCycles
		ProfileRefs:   1024,
		SignatureBits: 128,
		MaxIters:      16,
	}
}

// withDefaults replaces zero-valued fields with the defaults (and maps
// NoWindowWarmup to an actual zero warmup).
func (o Options) withDefaults() Options {
	d := Defaults()
	if o.MaxPhases == 0 {
		o.MaxPhases = d.MaxPhases
	}
	if o.WindowWarmup == 0 {
		o.WindowWarmup = d.WindowWarmup
	} else if o.WindowWarmup == NoWindowWarmup {
		o.WindowWarmup = 0
	}
	if o.ProfileRefs == 0 {
		o.ProfileRefs = d.ProfileRefs
	}
	if o.SignatureBits == 0 {
		o.SignatureBits = d.SignatureBits
	}
	if o.MaxIters == 0 {
		o.MaxIters = d.MaxIters
	}
	return o
}

// Validate rejects unusable options (after default substitution).
func (o Options) Validate() error {
	v := o.withDefaults()
	if v.MaxPhases < 1 {
		return fmt.Errorf("sampled: MaxPhases must be >= 1, got %d", o.MaxPhases)
	}
	if v.WindowWarmup < 0 {
		return fmt.Errorf("sampled: WindowWarmup must be >= 0 or NoWindowWarmup, got %d", o.WindowWarmup)
	}
	if v.ProfileRefs < 1 {
		return fmt.Errorf("sampled: ProfileRefs must be >= 1, got %d", o.ProfileRefs)
	}
	if v.SignatureBits < 1 || v.SignatureBits&(v.SignatureBits-1) != 0 {
		return fmt.Errorf("sampled: SignatureBits must be a positive power of two, got %d", o.SignatureBits)
	}
	if v.MaxIters < 1 {
		return fmt.Errorf("sampled: MaxIters must be >= 1, got %d", o.MaxIters)
	}
	return nil
}

// Fingerprint renders the effective options compactly for memo keys: two
// configurations with the same fingerprint produce identical sampled
// results on the same run configuration.
func (o Options) Fingerprint() string {
	v := o.withDefaults()
	return fmt.Sprintf("k%d,w%d,c%d,r%d,b%d,i%d",
		v.MaxPhases, v.WindowWarmup, v.WindowCycles, v.ProfileRefs, v.SignatureBits, v.MaxIters)
}

// Factories builds the per-window simulation state. Every representative
// window gets a fresh target and fresh sources (windows share nothing
// mutable, exactly like batch jobs), so the policy controller and cache
// contents always start from the same state the full run starts from.
type Factories struct {
	// NewTarget builds the cache system under its policy.
	NewTarget func() (sim.Target, error)
	// NewSources builds the per-core reference sources.
	NewSources func() ([]sim.Source, error)
}

// Metric is a reconstructed value with its heuristic error bar (see
// errorBar for the math; the CI gate checks actual reconstruction error
// against full runs, not this bar).
type Metric struct {
	Value float64 `json:"value"`
	Err   float64 `json:"err"`
}

// LevelShares is the fraction of accesses served by each level/path.
type LevelShares struct {
	L1  float64 `json:"l1"`
	L2  float64 `json:"l2"`
	L3  float64 `json:"l3"`
	C2C float64 `json:"c2c"`
	Mem float64 `json:"mem"`
}

// PhaseReport describes one detected phase.
type PhaseReport struct {
	// Representative is the absolute epoch index simulated for this phase.
	Representative int `json:"representative"`
	// Epochs lists the absolute measured epochs assigned to the phase.
	Epochs []int `json:"epochs"`
	// Weight is the phase's share of the measured epochs.
	Weight float64 `json:"weight"`
	// Radius is the RMS signature distance of members to the phase
	// centroid, normalized to [0, 1] (0 = all members identical).
	Radius float64 `json:"radius"`
	// Topology is the configuration in force during the representative
	// epoch; Throughput its per-epoch throughput (sum of per-core IPC).
	Topology   string  `json:"topology,omitempty"`
	Throughput float64 `json:"throughput"`
}

// Report is the sampled run's reconstruction summary.
type Report struct {
	// Phases, sorted by representative epoch.
	Phases []PhaseReport `json:"phases"`
	// MeasuredEpochs is the number of full-run measured epochs being
	// reconstructed; SimulatedEpochs the number of window epochs actually
	// simulated (warmup prefixes included).
	MeasuredEpochs  int `json:"measured_epochs"`
	SimulatedEpochs int `json:"simulated_epochs"`
	// WindowCycles is the effective cycles per window epoch.
	WindowCycles uint64 `json:"window_cycles"`
	// Speedup is the ratio of full-run simulated cycles (warmup included)
	// to window cycles — the cost reduction, profiling pass excluded.
	Speedup float64 `json:"speedup"`
	// Throughput is the reconstructed whole-run throughput (sum of per-core
	// IPC); MPKI the reconstructed last-level misses per kilo-instruction
	// (zero for targets without telemetry counters, i.e. PIPP/DSR).
	Throughput Metric `json:"throughput"`
	MPKI       Metric `json:"mpki"`
	// Hits is the reconstructed per-level service breakdown (nil for
	// targets without telemetry counters).
	Hits *LevelShares `json:"hits,omitempty"`
}

// RunResult is a sampled run's full outcome: a reconstructed metrics.Run
// shaped exactly like a full run's (so downstream reporting works
// unchanged), the reconstruction report, and the concatenated telemetry of
// the simulated windows (absolute epoch indices; warmup records flagged).
type RunResult struct {
	Run    *metrics.Run
	Report *Report
	Log    *telemetry.Log
}

// Run executes a sampled simulation. scfg is the full run's engine
// configuration (StartEpoch 0, no faults); profileKey must uniquely
// identify the workload + configuration whose profile is being built (the
// profile cache is keyed on it, so distinct workloads must yield distinct
// keys). The profile is policy-independent — it samples the reference
// streams without simulating a cache — so batches sweeping policies over
// one workload profile it once.
func Run(scfg sim.Config, opts Options, profileKey string, f Factories) (*RunResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	if !scfg.Faults.Empty() {
		return nil, fmt.Errorf("sampled: fault plans are not supported (faults damage specific epochs; a sampled run does not simulate them all)")
	}
	if scfg.StartEpoch != 0 {
		return nil, fmt.Errorf("sampled: StartEpoch must be 0 in the full-run configuration, got %d", scfg.StartEpoch)
	}
	sigs, err := profileFor(profileKey, scfg, o, f.NewSources)
	if err != nil {
		return nil, err
	}
	phases := clusterPhases(sigs, o.MaxPhases, o.MaxIters, scfg.Seed)

	windowCycles := scfg.EpochCycles
	if o.WindowCycles > 0 {
		windowCycles = o.WindowCycles
	}

	// Simulate one window per phase.
	wins := make([]*window, len(phases))
	for i, ph := range phases {
		w, err := runWindow(scfg, o, f, ph)
		if err != nil {
			return nil, err
		}
		wins[i] = w
	}
	return reconstruct(scfg, phases, wins, windowCycles), nil
}

// window is one simulated representative window.
type window struct {
	run *metrics.Run   // one measured epoch
	log *telemetry.Log // warmup + measured records, absolute epochs
	// measured is the measured epoch's aggregate telemetry (nil when the
	// target records no counters).
	measured *telemetry.EpochRecord
	epochs   int // epochs simulated (warmup + 1)
}

// runWindow simulates the representative window of one phase: WindowWarmup
// unmeasured epochs (clamped at the start of the run) followed by the
// representative epoch, on a fresh target with fresh sources.
func runWindow(scfg sim.Config, o Options, f Factories, ph phase) (*window, error) {
	rep := scfg.WarmupEpochs + ph.rep // absolute epoch
	warm := o.WindowWarmup
	if warm > rep {
		warm = rep
	}
	wcfg := scfg
	wcfg.StartEpoch = rep - warm
	wcfg.WarmupEpochs = warm
	wcfg.Epochs = 1
	if o.WindowCycles > 0 {
		wcfg.EpochCycles = o.WindowCycles
	}
	wlog := telemetry.NewLog()
	wcfg.Recorder = wlog

	target, err := f.NewTarget()
	if err != nil {
		return nil, err
	}
	srcs, err := f.NewSources()
	if err != nil {
		return nil, err
	}
	eng, err := sim.NewFromSources(wcfg, target, srcs)
	if err != nil {
		return nil, err
	}
	run := eng.Run()

	w := &window{run: run, log: wlog, epochs: warm + 1}
	for i := range wlog.Epochs {
		if r := &wlog.Epochs[i]; r.Epoch == rep && !r.Warmup {
			w.measured = r
			break
		}
	}
	return w, nil
}

// reconstruct assembles the weighted full-run estimate from the windows.
func reconstruct(scfg sim.Config, phases []phase, wins []*window, windowCycles uint64) *RunResult {
	e := scfg.Epochs
	run := &metrics.Run{Policy: wins[0].run.Policy}
	rep := &Report{
		MeasuredEpochs: e,
		WindowCycles:   windowCycles,
	}
	agg := telemetry.NewLog()

	// Per-epoch series: each measured epoch inherits its phase's
	// representative epoch verbatim.
	byEpoch := make([]int, e)
	for pi, ph := range phases {
		for _, m := range ph.members {
			byEpoch[m] = pi
		}
	}
	n := len(wins[0].run.PerCoreIPC)
	perCore := make([]float64, n)
	for i := 0; i < e; i++ {
		w := wins[byEpoch[i]]
		src := w.run.Epochs[0]
		ipc := make([]float64, n)
		copy(ipc, src.PerCoreIPC)
		run.Epochs = append(run.Epochs, metrics.Epoch{Index: i, PerCoreIPC: ipc, Topology: src.Topology})
		for c := 0; c < n; c++ {
			perCore[c] += src.PerCoreIPC[c] / float64(e)
		}
	}
	run.PerCoreIPC = perCore

	// Weighted totals, heuristic dispersion, and the phase table.
	var relDisp float64
	var instr, misses, accesses, l1, l2, l3, c2c, mr float64
	haveCounters := false
	for pi, ph := range phases {
		w := wins[pi]
		members := len(ph.members)
		run.Reconfigurations += members * w.run.Reconfigurations
		run.AsymmetricSteps += members * w.run.AsymmetricSteps
		weight := float64(members) / float64(e)
		relDisp += weight * ph.radius

		abs := make([]int, members)
		for i, m := range ph.members {
			abs[i] = scfg.WarmupEpochs + m
		}
		pr := PhaseReport{
			Representative: scfg.WarmupEpochs + ph.rep,
			Epochs:         abs,
			Weight:         weight,
			Radius:         ph.radius,
			Topology:       w.run.Epochs[0].Topology,
		}
		for _, v := range w.run.Epochs[0].PerCoreIPC {
			pr.Throughput += v
		}
		rep.Phases = append(rep.Phases, pr)
		rep.SimulatedEpochs += w.epochs
		agg.Epochs = append(agg.Epochs, w.log.Epochs...)
		agg.Reconfigs = append(agg.Reconfigs, w.log.Reconfigs...)

		if m := w.measured; m != nil {
			scale := float64(members)
			for _, ce := range m.Cores {
				if ce.Accesses > 0 {
					haveCounters = true
				}
				instr += scale * float64(ce.Instructions)
				misses += scale * float64(ce.C2C+ce.MemReads)
				accesses += scale * float64(ce.Accesses)
				l1 += scale * float64(ce.L1Hits)
				l2 += scale * float64(ce.L2Hits)
				l3 += scale * float64(ce.L3Hits)
				c2c += scale * float64(ce.C2C)
				mr += scale * float64(ce.MemReads)
			}
		}
	}

	rep.Throughput.Value = 0
	for _, v := range perCore {
		rep.Throughput.Value += v
	}
	rep.Throughput.Err = errorBar(rep.Throughput.Value, relDisp)
	if haveCounters {
		if instr > 0 {
			rep.MPKI.Value = misses * 1000 / instr
			rep.MPKI.Err = errorBar(rep.MPKI.Value, relDisp)
		}
		if accesses > 0 {
			rep.Hits = &LevelShares{
				L1:  l1 / accesses,
				L2:  l2 / accesses,
				L3:  l3 / accesses,
				C2C: c2c / accesses,
				Mem: mr / accesses,
			}
		}
	}
	fullCycles := float64(uint64(scfg.WarmupEpochs+e) * scfg.EpochCycles)
	winCycles := float64(uint64(rep.SimulatedEpochs) * windowCycles)
	if winCycles > 0 {
		rep.Speedup = fullCycles / winCycles
	}
	return &RunResult{Run: run, Report: rep, Log: agg}
}

// errorBar is the heuristic per-metric error bar: the metric scaled by the
// weighted mean normalized cluster radius. The assumption — metric
// variation within a phase is proportional to signature dispersion — is a
// proxy, not a bound; the CI validation experiment measures the actual
// reconstruction error against full runs and gates on that.
func errorBar(value, relDisp float64) float64 {
	if value < 0 {
		value = -value
	}
	return value * relDisp
}
