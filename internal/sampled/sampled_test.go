package sampled

import (
	"fmt"
	"reflect"
	"testing"

	"morphcache/internal/fault"
	"morphcache/internal/rng"
	"morphcache/internal/sim"
	"morphcache/internal/workload"
)

// testSigs builds n deterministic pseudo-random signatures of width d.
func testSigs(n, d int, seed uint64) [][]float64 {
	r := rng.Derive(seed, 0xBEEF)
	sigs := make([][]float64, n)
	for i := range sigs {
		s := make([]float64, d)
		for j := range s {
			s[j] = r.Float64()
		}
		sigs[i] = s
	}
	return sigs
}

func TestClusterDeterministic(t *testing.T) {
	sigs := testSigs(24, 8, 3)
	want := clusterPhases(sigs, 4, 32, 9)
	for i := 0; i < 5; i++ {
		if got := clusterPhases(sigs, 4, 32, 9); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d diverged:\n%+v\nvs\n%+v", i, got, want)
		}
	}
}

func TestClusterWellSeparated(t *testing.T) {
	// Three tight blobs far apart must come out as three phases whose
	// members never mix blobs.
	var sigs [][]float64
	blob := func(center float64, n int) {
		for i := 0; i < n; i++ {
			sigs = append(sigs, []float64{center + float64(i)*1e-4, center})
		}
	}
	blob(0.1, 5)
	blob(0.5, 5)
	blob(0.9, 5)
	phases := clusterPhases(sigs, 3, 32, 1)
	if len(phases) != 3 {
		t.Fatalf("%d phases, want 3", len(phases))
	}
	seen := 0
	for _, ph := range phases {
		blobOf := ph.members[0] / 5
		for _, m := range ph.members {
			if m/5 != blobOf {
				t.Fatalf("phase mixes blobs: members %v", ph.members)
			}
		}
		if ph.rep/5 != blobOf {
			t.Fatalf("representative %d outside its blob %d", ph.rep, blobOf)
		}
		seen += len(ph.members)
	}
	if seen != len(sigs) {
		t.Fatalf("phases cover %d of %d epochs", seen, len(sigs))
	}
}

func TestClusterIdenticalSignatures(t *testing.T) {
	sigs := make([][]float64, 6)
	for i := range sigs {
		sigs[i] = []float64{0.25, 0.75}
	}
	phases := clusterPhases(sigs, 4, 32, 5)
	if len(phases) != 1 {
		t.Fatalf("%d phases for identical signatures, want 1", len(phases))
	}
	if phases[0].radius != 0 {
		t.Fatalf("radius %v, want 0", phases[0].radius)
	}
	if len(phases[0].members) != 6 {
		t.Fatalf("members %v", phases[0].members)
	}
}

func TestClusterKClamped(t *testing.T) {
	sigs := testSigs(3, 4, 7)
	phases := clusterPhases(sigs, 8, 32, 1)
	if len(phases) > 3 {
		t.Fatalf("%d phases from 3 epochs", len(phases))
	}
	total := 0
	for _, ph := range phases {
		total += len(ph.members)
	}
	if total != 3 {
		t.Fatalf("phases cover %d of 3 epochs", total)
	}
}

func TestOptionsValidateAndFingerprint(t *testing.T) {
	var zero Options
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	if zero.Fingerprint() != Defaults().Fingerprint() {
		t.Fatalf("zero fingerprint %q != defaults %q", zero.Fingerprint(), Defaults().Fingerprint())
	}
	if err := (Options{MaxPhases: -1}).Validate(); err == nil {
		t.Fatal("negative MaxPhases accepted")
	}
	if err := (Options{SignatureBits: 100}).Validate(); err == nil {
		t.Fatal("non-power-of-two SignatureBits accepted")
	}
	if err := (Options{WindowWarmup: -7}).Validate(); err == nil {
		t.Fatal("negative warmup other than the sentinel accepted")
	}
	o := Options{WindowWarmup: NoWindowWarmup}
	if err := o.Validate(); err != nil {
		t.Fatalf("NoWindowWarmup rejected: %v", err)
	}
	if got := o.Fingerprint(); got != "k4,w0,c0,r2048,b256,i32" {
		t.Fatalf("NoWindowWarmup fingerprint %q", got)
	}
}

func testSources(t *testing.T, cores int) func() ([]sim.Source, error) {
	t.Helper()
	mix, err := workload.MixByName("MIX 01")
	if err != nil {
		t.Fatal(err)
	}
	mix.Benchmarks = mix.Benchmarks[:cores]
	return func() ([]sim.Source, error) {
		return sim.FromGenerators(workload.MixGenerators(mix, workload.ScaledGenConfig(16), 1)), nil
	}
}

func TestProfileDeterministic(t *testing.T) {
	scfg := sim.DefaultConfig()
	scfg.Epochs = 3
	scfg.WarmupEpochs = 1
	o := Defaults()
	o.ProfileRefs = 64
	o.SignatureBits = 32
	newSrc := testSources(t, 4)
	a, err := profileFor("det-a", scfg, o, newSrc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := profileFor("det-b", scfg, o, newSrc) // distinct key: rebuilt, not cached
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("profile pass is not deterministic")
	}
	c, err := profileFor("det-a", scfg, o, func() ([]sim.Source, error) {
		return nil, fmt.Errorf("cache miss: sources rebuilt for a cached key")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("cache returned different signatures")
	}
	if len(a) != 3 || len(a[0]) != 4*4 {
		t.Fatalf("profile shape %dx%d, want 3x16", len(a), len(a[0]))
	}
	for _, sig := range a {
		for _, v := range sig {
			if v < 0 || v > 1 {
				t.Fatalf("feature %v outside [0,1]", v)
			}
		}
	}
}

func TestRunRejectsFaultsAndResume(t *testing.T) {
	scfg := sim.DefaultConfig()
	scfg.Epochs = 2
	plan, err := fault.NewPlan(1, fault.Spec{Cores: 16, FirstEpoch: 0, Epochs: 2, Events: 1})
	if err != nil {
		t.Fatal(err)
	}
	fcfg := scfg
	fcfg.Faults = plan
	if _, err := Run(fcfg, Options{}, "k", Factories{}); err == nil {
		t.Fatal("fault plan accepted")
	}
	rcfg := scfg
	rcfg.StartEpoch = 3
	if _, err := Run(rcfg, Options{}, "k", Factories{}); err == nil {
		t.Fatal("nonzero StartEpoch accepted")
	}
	if _, err := Run(scfg, Options{MaxPhases: -1}, "k", Factories{}); err == nil {
		t.Fatal("invalid options accepted")
	}
}
