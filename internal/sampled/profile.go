package sampled

import (
	"fmt"
	"sync"

	"morphcache/internal/acfv"
	"morphcache/internal/mem"
	"morphcache/internal/sim"
)

// filterSlots sizes the direct-mapped reuse filter that contributes the
// miss-proxy feature to each signature: a tiny tag store whose miss rate
// over the sampled references tracks how reuse-friendly the epoch is — the
// cheap stand-in for the hit/MPKI component of a telemetry signature,
// computed without simulating a cache.
const filterSlots = 256

// buildProfile samples every measured epoch of the run and returns one
// signature per epoch. A signature is the concatenation, over cores, of
// four features in [0, 1]:
//
//	line occupancy    |ACFV| / bits over sampled line addresses (§2.1's
//	                  utilization signal, computed on the reference stream)
//	region occupancy  the same over 4 KiB regions (line >> 6), separating
//	                  "many lines in few regions" from true sprawl
//	miss proxy        miss rate of a small direct-mapped reuse filter
//	write fraction    stores / references
//
// The pass drives only the reference sources — no cache, no timing — so it
// costs ProfileRefs stream steps per core per epoch. Sources reseed per
// epoch, so sampling a prefix of the epoch's stream is sampling the same
// stream the simulation will replay.
func buildProfile(scfg sim.Config, o Options, srcs []sim.Source) [][]float64 {
	n := len(srcs)
	lineVec := make([]*acfv.Vector, n)
	regionVec := make([]*acfv.Vector, n)
	for c := 0; c < n; c++ {
		lineVec[c] = acfv.NewVector(o.SignatureBits, acfv.XOR)
		regionVec[c] = acfv.NewVector(o.SignatureBits, acfv.XOR)
	}
	filt := make([]mem.Line, filterSlots)

	sigs := make([][]float64, scfg.Epochs)
	for i := 0; i < scfg.Epochs; i++ {
		ep := scfg.WarmupEpochs + i // absolute epoch
		sig := make([]float64, 0, 4*n)
		for c := 0; c < n; c++ {
			srcs[c].BeginEpoch(ep)
			lineVec[c].Reset()
			regionVec[c].Reset()
			for s := range filt {
				filt[s] = ^mem.Line(0)
			}
			writes, filterMisses := 0, 0
			for r := 0; r < o.ProfileRefs; r++ {
				a := srcs[c].Next()
				lineVec[c].Set(a.Line)
				regionVec[c].Set(a.Line >> 6)
				if slot := uint64(a.Line) % filterSlots; filt[slot] != a.Line {
					filt[slot] = a.Line
					filterMisses++
				}
				if a.Kind == mem.Write {
					writes++
				}
			}
			refs := float64(o.ProfileRefs)
			sig = append(sig,
				lineVec[c].Utilization(),
				regionVec[c].Utilization(),
				float64(filterMisses)/refs,
				float64(writes)/refs,
			)
		}
		sigs[i] = sig
	}
	return sigs
}

// The profile cache: signatures depend only on the workload, the run
// configuration, and the profiling options — not on the policy — so a batch
// sweeping policies over one workload profiles it once. Concurrent misses
// on the same key may both compute; the results are identical (the pass is
// deterministic), so last-store-wins is safe.
var (
	profMu    sync.Mutex
	profCache = make(map[string][][]float64)
)

// profileFor returns the cached signatures for profileKey (which the caller
// derives from workload + configuration), building them on a miss.
func profileFor(profileKey string, scfg sim.Config, o Options, newSources func() ([]sim.Source, error)) ([][]float64, error) {
	key := fmt.Sprintf("%s|e%d|w%d|s%d|r%d|b%d", profileKey,
		scfg.Epochs, scfg.WarmupEpochs, scfg.Seed, o.ProfileRefs, o.SignatureBits)
	profMu.Lock()
	sigs, ok := profCache[key]
	profMu.Unlock()
	if ok {
		return sigs, nil
	}
	srcs, err := newSources()
	if err != nil {
		return nil, err
	}
	sigs = buildProfile(scfg, o, srcs)
	profMu.Lock()
	profCache[key] = sigs
	profMu.Unlock()
	return sigs, nil
}
