package sampled

import (
	"math"
	"sort"

	"morphcache/internal/rng"
)

// clusterSeedLabel salts the rng stream that drives k-means++ seeding, so
// sampling randomness never collides with workload or fault streams derived
// from the same run seed.
const clusterSeedLabel = 0x5A3D_C157

// phase is one cluster of measured epochs. Indices are measured-epoch
// offsets (0 = the first measured epoch); callers add WarmupEpochs to get
// absolute epochs.
type phase struct {
	rep     int   // member closest to the centroid
	members []int // ascending
	radius  float64
}

// clusterPhases groups the epoch signatures into at most k phases with
// k-means: k-means++ seeding driven by an rng stream derived from the run
// seed, then Lloyd refinement capped at maxIters. Every tie (nearest
// center, representative choice) breaks toward the lowest index and the
// iteration order is fixed, so the output is a pure function of
// (sigs, k, maxIters, seed) — the byte-identity argument for sampled
// batches at any worker count. Empty clusters are dropped; phases are
// returned sorted by representative epoch.
func clusterPhases(sigs [][]float64, k, maxIters int, seed uint64) []phase {
	n := len(sigs)
	if k > n {
		k = n
	}
	d := len(sigs[0])

	// k-means++ seeding.
	r := rng.Derive(seed, clusterSeedLabel, uint64(n), uint64(k))
	centers := make([][]float64, 0, k)
	centers = append(centers, append([]float64(nil), sigs[r.Intn(n)]...))
	d2 := make([]float64, n)
	for len(centers) < k {
		total := 0.0
		for i := range sigs {
			best := math.Inf(1)
			for _, c := range centers {
				if v := sqDist(sigs[i], c); v < best {
					best = v
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			break // fewer distinct signatures than k
		}
		t := r.Float64() * total
		pick := n - 1
		acc := 0.0
		for i := range d2 {
			acc += d2[i]
			if acc >= t {
				pick = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), sigs[pick]...))
	}
	k = len(centers)

	// Lloyd refinement.
	assign := make([]int, n)
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i := range sigs {
			best, bestD := 0, math.Inf(1)
			for ci := range centers {
				if v := sqDist(sigs[i], centers[ci]); v < bestD {
					best, bestD = ci, v
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for ci := range centers {
			cnt := 0
			sum := make([]float64, d)
			for i := range sigs {
				if assign[i] != ci {
					continue
				}
				cnt++
				for j, v := range sigs[i] {
					sum[j] += v
				}
			}
			if cnt == 0 {
				continue // keep the old center; the cluster is dropped below
			}
			for j := range sum {
				sum[j] /= float64(cnt)
			}
			centers[ci] = sum
		}
	}

	// Representatives, radii, and the phase list. Radius is normalized by
	// sqrt(d): every feature lives in [0, 1], so sqrt(d) is the diameter of
	// the signature space and the normalized radius lands in [0, 1].
	phases := make([]phase, 0, k)
	for ci := range centers {
		var members []int
		for i := range sigs {
			if assign[i] == ci {
				members = append(members, i)
			}
		}
		if len(members) == 0 {
			continue
		}
		rep, repD := members[0], math.Inf(1)
		sumSq := 0.0
		for _, m := range members {
			v := sqDist(sigs[m], centers[ci])
			sumSq += v
			if v < repD {
				rep, repD = m, v
			}
		}
		phases = append(phases, phase{
			rep:     rep,
			members: members,
			radius:  math.Sqrt(sumSq/float64(len(members))) / math.Sqrt(float64(d)),
		})
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i].rep < phases[j].rep })
	return phases
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		v := a[i] - b[i]
		s += v * v
	}
	return s
}
