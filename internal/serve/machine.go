package serve

import (
	"fmt"
	"math/bits"

	"morphcache/internal/acfv"
	"morphcache/internal/core"
	"morphcache/internal/hierarchy"
	"morphcache/internal/topology"
)

// machine adapts the Cache to core.Machine so the unmodified MorphCache
// controller can govern it. Slots play the role of cores; both topology
// levels mirror one grouping (the partition map), so the controller's
// L2/L3 coupling rules are trivially satisfied: an L3 merge and the L2
// merge it enables both resolve to the same partition change.
//
// Every method is called only from Cache.EndEpoch, with all shard locks
// held — signal reads and topology mutation are serialized against the
// access path.
type machine struct{ c *Cache }

var _ core.Machine = machine{}

// Cores implements core.Machine: slots are the cores.
func (m machine) Cores() int { return m.c.cfg.Slots }

// Topology implements core.Machine.
func (m machine) Topology() topology.Topology { return m.c.topo }

// SetTopology implements core.Machine: it swaps the partition map and
// evicts every line the new map strands outside its owner's partition
// (the serving analogue of the hierarchy's inclusion enforcement on
// shrink; merges strand nothing).
func (m machine) SetTopology(t topology.Topology) error {
	c := m.c
	if t.L2.N() != c.cfg.Slots || t.L3.N() != c.cfg.Slots {
		return fmt.Errorf("serve: topology over %d/%d slots, want %d", t.L2.N(), t.L3.N(), c.cfg.Slots)
	}
	if err := t.Validate(); err != nil {
		return err
	}
	// Stash the per-tenant granted-slot delta for the decision audit
	// record: the controller emits its reconfiguration event right after
	// this call returns, and the recorder attaches the delta to it.
	old := c.topo.L2
	var delta map[string]int
	for slot, name := range c.names {
		if name == "" {
			continue
		}
		was := old.GroupSize(old.GroupOf(slot))
		is := t.L2.GroupSize(t.L2.GroupOf(slot))
		if was != is {
			if delta == nil {
				delta = make(map[string]int)
			}
			delta[name] = is - was
		}
	}
	c.pendingDelta = delta
	c.topo = t
	c.computePartMask()
	for _, sh := range c.shards {
		for gl := range sh.store {
			owner := int(gl.ASID) - 1
			bit := sh.pres.Get(gl)
			if bit&c.partMask[owner] != 0 {
				continue
			}
			phys := bits.TrailingZeros32(bit)
			sh.slices[phys].Invalidate(gl.ASID, gl.Line)
			sh.pres.Clear(gl, bit)
			delete(sh.store, gl)
			c.occupancy[owner].Add(-1)
			c.met.evict(owner, "repartition")
		}
	}
	c.met.repartition()
	c.met.setPartitionGauges()
	return nil
}

// CoresUtilization implements core.Machine: the summed |ACFV| of the
// slots' homed tenants across shards, normalized by the slots' line
// capacity — the demand-vs-capacity fraction the MSAT bounds compare.
// Donor (tenant-less) slots contribute capacity but no demand, so they
// read as under-utilized merge partners.
func (m machine) CoresUtilization(_ hierarchy.Level, cores []int) float64 {
	c := m.c
	ones := 0
	for _, sh := range c.shards {
		for _, s := range cores {
			ones += sh.vecs[s].Ones()
		}
	}
	capLines := len(cores) * c.slotLines * len(c.shards)
	if capLines == 0 {
		return 0
	}
	return float64(ones) / float64(capLines)
}

// CoresOverlap implements core.Machine: the fraction of the smaller
// side's footprint both sides touched. Distinct tenants never share an
// address space, so this signal only reaches recorders — the sharing
// merge rule is gated on SlicesShareASID first.
func (m machine) CoresOverlap(_ hierarchy.Level, a, b []int) float64 {
	c := m.c
	common, onesA, onesB := 0, 0, 0
	va := make([]*acfv.Vector, len(a))
	vb := make([]*acfv.Vector, len(b))
	for _, sh := range c.shards {
		for i, s := range a {
			va[i] = sh.vecs[s]
		}
		for i, s := range b {
			vb[i] = sh.vecs[s]
		}
		ua, ub := acfv.Union(va...), acfv.Union(vb...)
		common += acfv.Overlap(ua, ub)
		onesA += ua.Ones()
		onesB += ub.Ones()
	}
	small := onesA
	if onesB < small {
		small = onesB
	}
	if small == 0 {
		return 0
	}
	return float64(common) / float64(small)
}

// SlicesShareASID implements core.Machine. Each slot is its own address
// space (one tenant's keyspace), so the sharing precondition holds only
// for a single slot — cross-tenant merges are always capacity merges.
func (m machine) SlicesShareASID(slices ...[]int) bool {
	ref := -1
	for _, set := range slices {
		for _, s := range set {
			if ref < 0 {
				ref = s
			} else if ref != s {
				return false
			}
		}
	}
	return ref >= 0
}

// PerCoreMisses implements core.Machine (the §5.3 QoS signal).
func (m machine) PerCoreMisses() []uint64 {
	c := m.c
	out := make([]uint64, c.cfg.Slots)
	for i := range out {
		out[i] = c.misses[i].Load()
	}
	return out
}

// HasFaults implements core.Machine; the serving path injects none.
func (m machine) HasFaults() bool { return false }

// CorruptMonitors implements core.Machine.
func (m machine) CorruptMonitors() []int { return nil }

// MonitorCorrupt implements core.Machine.
func (m machine) MonitorCorrupt(int) bool { return false }

// SpansDeadLink implements core.Machine.
func (m machine) SpansDeadLink(hierarchy.Level, []int) bool { return false }
