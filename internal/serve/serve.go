// Package serve turns the MorphCache controller into a serving-path
// component: a sharded in-memory cache where multi-tenant keyspaces play
// the role of the paper's cores. Each tenant is homed on one "slot" — the
// serving analogue of a private cache slice — and the controller's
// merge/split rules (§2.2–2.3) dynamically repartition capacity between
// tenants at every epoch, exactly as they regroup slices in the simulated
// hierarchy.
//
// Mapping to the paper:
//
//   - A slot is a slice: a set-associative cache.Slice per shard, sized to
//     an equal share of the configured capacity. Slots are the units the
//     topology groups; a tenant's partition is its slot's group.
//   - A tenant is a core: its keyspace is one address space (ASID), so the
//     controller's sharing rules see distinct tenants as distinct address
//     spaces and only capacity merges (rule i) ever fire between them —
//     a hot tenant annexes an under-used neighbor's slots, and the split
//     rules hand the capacity back when demand fades.
//   - The per-tenant demand vector is the ACFV (§2.1): every touched line
//     hashes into a per-epoch bit vector, and |ACFV| normalized by slot
//     capacity is the utilization signal the MSAT thresholds compare. The
//     vector is 4x slot capacity wide, so the estimate tracks demand past
//     capacity (a starved tenant reads well above 1.0) while aliasing
//     keeps it sublinear, like the hardware vectors Fig. 5 calibrates.
//
// Concurrency: keys hash across shards; each shard owns a full column of
// per-slot slices, a PresenceIndex (the PR-5 allocation-free line→owner
// map), and a value store, all under one mutex. Reconfiguration takes
// every shard lock, so the access path never sees a half-applied
// topology.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"morphcache/internal/acfv"
	"morphcache/internal/cache"
	"morphcache/internal/core"
	"morphcache/internal/fault"
	"morphcache/internal/hierarchy"
	"morphcache/internal/mem"
	"morphcache/internal/obs"
	"morphcache/internal/telemetry"
	"morphcache/internal/topology"
	"morphcache/internal/wal"
)

// Errors returned by the cache's operations. They are sentinels so the hit
// path stays allocation-free.
var (
	// ErrUnknownTenant rejects an operation naming a tenant that was not
	// declared at construction.
	ErrUnknownTenant = errors.New("serve: unknown tenant")
	// ErrNotFound reports a miss on Get or Delete.
	ErrNotFound = errors.New("serve: not found")
	// ErrValueTooLarge rejects a Set whose value exceeds MaxValueBytes.
	ErrValueTooLarge = errors.New("serve: value too large")
	// ErrDraining rejects operations once Drain has been called.
	ErrDraining = errors.New("serve: draining")
	// ErrEmptyKey rejects operations with an empty key.
	ErrEmptyKey = errors.New("serve: empty key")
)

// Config sizes the cache and names its tenants.
type Config struct {
	// Tenants are the declared keyspaces, assigned to slots in order.
	// Requests for undeclared tenants fail; slots beyond len(Tenants)
	// start empty and act as donor capacity the controller can grant.
	Tenants []string
	// Slots is the number of capacity slots (the paper's cores); a power
	// of two in [2, 32], at least len(Tenants). Default 16.
	Slots int
	// Shards is the concurrency degree; a power of two. Each shard holds
	// one slice per slot. Default 4.
	Shards int
	// SlotBytes is one slot's capacity in bytes summed over all shards;
	// SlotBytes/Shards must be a valid cache.Config size. Default 256 KiB.
	SlotBytes int
	// Ways is the slice associativity. Default 8.
	Ways int
	// MaxValueBytes bounds one value's size. Default 64 KiB.
	MaxValueBytes int
	// Policy decides reconfigurations at every epoch. Default: the
	// MorphCache controller with DefaultOptions and MaxGroup = Slots.
	Policy core.Policy
	// EpochInterval is the reconfiguration cadence used by RunEpochs.
	// Default 10s.
	EpochInterval time.Duration
	// Persist enables write-ahead-log persistence (see PersistConfig).
	// Nil keeps the cache volatile and its hit paths allocation-free.
	Persist *PersistConfig
	// Admission bounds request admission at the HTTP layer; the zero
	// value disables every limit (see AdmissionConfig).
	Admission AdmissionConfig
	// Faults is an optional serve-layer chaos plan (shard stalls, WAL
	// write errors, disk-full windows) applied at epoch boundaries. It
	// must pass fault.Plan.ValidateServe against Shards.
	Faults *fault.Plan
	// Obs enables request-level observability: structured logging, SLO
	// burn-rate tracking, and request spans (DESIGN.md §15). The zero
	// value keeps the access path allocation-free; the decision audit
	// ring (GET /decisions, /events) is on regardless, since it costs
	// nothing per request.
	Obs ObsConfig
}

func (c Config) withDefaults() Config {
	if c.Slots == 0 {
		c.Slots = 16
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.SlotBytes == 0 {
		c.SlotBytes = 256 << 10
	}
	if c.Ways == 0 {
		c.Ways = 8
	}
	if c.MaxValueBytes == 0 {
		c.MaxValueBytes = 64 << 10
	}
	if c.EpochInterval == 0 {
		c.EpochInterval = 10 * time.Second
	}
	return c
}

// Validate reports whether the (defaulted) configuration is usable.
func (c Config) Validate() error {
	if len(c.Tenants) == 0 {
		return errors.New("serve: no tenants declared")
	}
	if c.Slots < 2 || c.Slots > 32 || c.Slots&(c.Slots-1) != 0 {
		return fmt.Errorf("serve: slots %d not a power of two in [2, 32]", c.Slots)
	}
	if len(c.Tenants) > c.Slots {
		return fmt.Errorf("serve: %d tenants over %d slots", len(c.Tenants), c.Slots)
	}
	if c.Shards < 1 || c.Shards&(c.Shards-1) != 0 {
		return fmt.Errorf("serve: shards %d not a power of two", c.Shards)
	}
	seen := make(map[string]bool, len(c.Tenants))
	for _, t := range c.Tenants {
		if t == "" {
			return errors.New("serve: empty tenant name")
		}
		for i := 0; i < len(t); i++ {
			if t[i] == '/' {
				return fmt.Errorf("serve: tenant name %q contains '/'", t)
			}
		}
		if seen[t] {
			return fmt.Errorf("serve: duplicate tenant %q", t)
		}
		seen[t] = true
	}
	if c.MaxValueBytes <= 0 {
		return fmt.Errorf("serve: non-positive max value size %d", c.MaxValueBytes)
	}
	if c.SlotBytes%c.Shards != 0 {
		return fmt.Errorf("serve: slot bytes %d not divisible by %d shards", c.SlotBytes, c.Shards)
	}
	if err := c.Persist.validate(); err != nil {
		return err
	}
	if err := c.Admission.validate(); err != nil {
		return err
	}
	if err := c.Faults.ValidateServe(c.Shards); err != nil {
		return err
	}
	if err := c.Obs.validate(); err != nil {
		return err
	}
	return cache.Config{SizeBytes: c.SlotBytes / c.Shards, Ways: c.Ways, Policy: cache.LRU}.Validate()
}

// entry is one stored value. The full key is kept to disambiguate hash
// collisions: a Get whose key does not match the resident one is a miss.
type entry struct {
	key string
	val []byte
}

// shard is one concurrency unit: a full column of per-slot slices plus
// the presence index and value store for the keys that hash to it.
type shard struct {
	mu sync.Mutex
	// slices[slot] is this shard's bank of the slot.
	slices []*cache.Slice
	// pres maps a resident global line to the one-bit mask of the slot
	// holding it (the PR-5 open-addressing index; no allocation after New).
	pres *hierarchy.PresenceIndex
	// store holds the values, keyed by ASID-qualified line hash.
	store map[mem.GlobalLine]entry
	// vecs[slot] is the homed tenant's ACFV for this shard's traffic.
	vecs []*acfv.Vector
	// stall is the count of epochs this shard keeps shedding operations
	// with ErrShardStalled (injected fault; guarded by mu).
	stall int
}

// Cache is the policy-governed multi-tenant cache.
type Cache struct {
	cfg     Config
	tenants map[string]int // name -> home slot
	names   []string       // slot -> name ("" = donor slot)
	shards  []*shard
	// slotLines is one slice's line capacity (per shard, per slot).
	slotLines int

	// topo and partMask are the current partitioning; both levels mirror
	// one grouping. Written only with every shard lock held; read under
	// any one shard lock.
	topo     topology.Topology
	partMask []uint32
	epoch    int

	policy   core.Policy
	draining atomic.Bool

	// occupancy[slot] counts the tenant's resident lines across shards
	// (atomic so metric scrapes read without locks).
	occupancy []atomic.Int64
	// misses[slot] is the cumulative per-tenant miss count (core.Machine's
	// PerCoreMisses signal).
	misses []atomic.Uint64

	// wal is the write-ahead log (nil without Config.Persist). walFails
	// counts consecutive append failures; crossing walFailThreshold sets
	// degraded (read-mostly mode — writes shed with ErrDegraded until an
	// epoch-boundary probe append succeeds again).
	wal      *wal.Log
	walFails atomic.Int32
	degraded atomic.Bool

	// adm is the HTTP admission controller (nil when no limit is set).
	adm *admission
	// flt is the serve-layer fault plan; walInjUntil is the epoch at
	// which an injected WAL failure window closes (both read/written
	// only with every shard lock held).
	flt         *fault.Plan
	walInjUntil int

	met *metrics

	// The observability plane (DESIGN.md §15). audit and hub are always
	// on (they cost nothing per request); robs is nil unless ObsConfig
	// enables request-path observation, and every request-path hook hides
	// behind that one nil check so the disabled path stays 0 allocs/op.
	// slog carries the always-on decision/degradation/fault lines (nil =
	// off); now is the injectable wall clock. pendingDelta is the
	// per-tenant granted-slot delta of the topology swap in flight,
	// stashed by machine.SetTopology for the recorder that fires next
	// (only touched with every shard lock held).
	audit        *auditRing
	hub          *eventHub
	robs         *reqObs
	slog         *slog.Logger
	now          func() time.Time
	pendingDelta map[string]int
}

// New builds the cache. A nil registry disables metric export (a private
// registry still backs the counters so the access path is uniform).
func New(cfg Config, reg *obs.Registry) (*Cache, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		opts := core.DefaultOptions()
		opts.MaxGroup = cfg.Slots
		cfg.Policy = core.New(opts)
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	sliceBytes := cfg.SlotBytes / cfg.Shards
	slotLines := sliceBytes / mem.LineSize
	vecWidth := 16
	for vecWidth < 4*slotLines {
		vecWidth <<= 1
	}
	c := &Cache{
		cfg:       cfg,
		tenants:   make(map[string]int, len(cfg.Tenants)),
		names:     make([]string, cfg.Slots),
		shards:    make([]*shard, cfg.Shards),
		slotLines: slotLines,
		partMask:  make([]uint32, cfg.Slots),
		policy:    cfg.Policy,
		occupancy: make([]atomic.Int64, cfg.Slots),
		misses:    make([]atomic.Uint64, cfg.Slots),
	}
	for i, t := range cfg.Tenants {
		c.tenants[t] = i
		c.names[i] = t
	}
	for i := range c.shards {
		sh := &shard{
			slices: make([]*cache.Slice, cfg.Slots),
			pres:   hierarchy.NewPresenceIndex(cfg.Slots * slotLines),
			store:  make(map[mem.GlobalLine]entry, cfg.Slots*slotLines),
			vecs:   make([]*acfv.Vector, cfg.Slots),
		}
		clock := &cache.Clock{}
		for s := range sh.slices {
			sh.slices[s] = cache.New(cache.Config{SizeBytes: sliceBytes, Ways: cfg.Ways, Policy: cache.LRU})
			sh.slices[s].ShareClock(clock)
			sh.vecs[s] = acfv.NewVector(vecWidth, acfv.XOR)
		}
		c.shards[i] = sh
	}
	c.topo = topology.AllPrivate(cfg.Slots)
	c.computePartMask()
	c.flt = cfg.Faults
	if cfg.Admission.enabled() {
		c.adm = newAdmission(cfg.Admission, cfg.Slots)
	}
	c.now = cfg.Obs.Now
	if c.now == nil {
		c.now = time.Now
	}
	c.slog = cfg.Obs.Logger
	c.audit = newAuditRing(cfg.Obs.AuditCapacity)
	c.hub = newEventHub()
	c.robs = newReqObs(cfg.Obs, c)
	// The controller mirrors every applied reconfiguration to a recorder
	// (telemetry.RecorderSettable); routing that mirror into the audit
	// ring gives the serving path the simulator's decision inspection
	// layer for free. A custom policy without the hook just leaves
	// /decisions empty.
	if rs, ok := c.policy.(telemetry.RecorderSettable); ok {
		rs.SetRecorder(auditRecorder{c})
	}
	c.met = newMetrics(reg, c)
	c.met.setPartitionGauges()
	if cfg.Persist != nil {
		if err := c.openWAL(); err != nil {
			return nil, err
		}
		c.met.setPartitionGauges()
	}
	return c, nil
}

// computePartMask caches each slot's group mask; the access path reads it
// on every request (under its shard lock).
func (c *Cache) computePartMask() {
	g := c.topo.L2
	for gi := 0; gi < g.NumGroups(); gi++ {
		var mask uint32
		for _, s := range g.Members(gi) {
			mask |= 1 << uint(s)
		}
		for _, s := range g.Members(gi) {
			c.partMask[s] = mask
		}
	}
}

// asidOf maps a slot to its address space (ASID 0 is reserved).
func asidOf(slot int) mem.ASID { return mem.ASID(slot + 1) }

// hashKey mixes a key into a 64-bit line address: FNV-1a with a
// splitmix64 finalizer so short keys still spread across sets (low bits),
// shards (high bits), and ACFV positions.
func hashKey(key string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	return h ^ h>>31
}

// shardOf picks the shard from the hash's high bits, far from the set
// index bits the slices consume.
func (c *Cache) shardOf(h uint64) *shard {
	return c.shards[int((h>>48)&uint64(len(c.shards)-1))]
}

// Get returns the value stored under (tenant, key), or ErrNotFound. The
// hit path performs no allocation: a presence probe, one slice lookup,
// an LRU touch, and an ACFV bit set. With ObsConfig enabled the call is
// additionally SLO-tracked and sampled into the access log.
func (c *Cache) Get(tenant, key string) ([]byte, error) {
	if ro := c.robs; ro != nil {
		start := ro.now()
		val, err := c.get(tenant, key, nil)
		ro.observe("get", tenant, start, err)
		return val, err
	}
	return c.get(tenant, key, nil)
}

// get is the observation-free core of Get; rs (nil on the library path)
// carries the HTTP request's trace track for child spans.
func (c *Cache) get(tenant, key string, rs *reqSpans) ([]byte, error) {
	if c.draining.Load() {
		return nil, ErrDraining
	}
	slot, ok := c.tenants[tenant]
	if !ok {
		return nil, ErrUnknownTenant
	}
	if key == "" {
		return nil, ErrEmptyKey
	}
	h := hashKey(key)
	line := mem.Line(h)
	gl := mem.GlobalLine{ASID: asidOf(slot), Line: line}
	sh := c.shardOf(h)
	shardIdx := int((h >> 48) & uint64(len(c.shards)-1))
	lockSp := rs.begin("shard_lock_wait")
	sh.mu.Lock()
	lockSp.End()
	storeSp := rs.begin("store_access")
	if sh.stall > 0 {
		sh.mu.Unlock()
		storeSp.End()
		c.met.stalled()
		return nil, ErrShardStalled
	}
	mask := sh.pres.Get(gl) & c.partMask[slot]
	if mask == 0 {
		c.misses[slot].Add(1)
		sh.mu.Unlock()
		storeSp.End()
		c.met.getMiss(slot, shardIdx)
		return nil, ErrNotFound
	}
	phys := bits.TrailingZeros32(mask)
	sl := sh.slices[phys]
	w := sl.Lookup(gl.ASID, line)
	if w < 0 {
		panic("serve: present mask inconsistent")
	}
	e := sh.store[gl]
	if e.key != key {
		// Hash collision: a different key owns the line. Miss.
		c.misses[slot].Add(1)
		sh.mu.Unlock()
		storeSp.End()
		c.met.collision(slot, shardIdx)
		c.met.getMiss(slot, shardIdx)
		return nil, ErrNotFound
	}
	sl.Touch(sl.SetIndex(line), w)
	sh.vecs[slot].Set(line)
	sh.mu.Unlock()
	storeSp.End()
	c.met.getHit(slot, shardIdx)
	return e.val, nil
}

// Set stores val under (tenant, key), evicting within the tenant's
// current partition if its group is full. The cache takes ownership of
// val; callers must not mutate it afterwards. With persistence enabled
// the record is appended to the WAL (and, under FsyncAlways, synced)
// before it is applied — a nil return means the write is durable to the
// configured policy.
func (c *Cache) Set(tenant, key string, val []byte) error {
	if ro := c.robs; ro != nil {
		start := ro.now()
		err := c.set(tenant, key, val, nil)
		ro.observe("set", tenant, start, err)
		return err
	}
	return c.set(tenant, key, val, nil)
}

// set is the observation-free core of Set (see get).
func (c *Cache) set(tenant, key string, val []byte, rs *reqSpans) error {
	if c.draining.Load() {
		return ErrDraining
	}
	slot, ok := c.tenants[tenant]
	if !ok {
		return ErrUnknownTenant
	}
	if key == "" {
		return ErrEmptyKey
	}
	if len(key) > maxKeyBytes {
		return ErrKeyTooLong
	}
	if len(val) > c.cfg.MaxValueBytes {
		return ErrValueTooLarge
	}
	if c.wal != nil && c.degraded.Load() {
		return ErrDegraded
	}
	h := hashKey(key)
	sh := c.shardOf(h)
	shardIdx := int((h >> 48) & uint64(len(c.shards)-1))
	lockSp := rs.begin("shard_lock_wait")
	sh.mu.Lock()
	lockSp.End()
	defer sh.mu.Unlock()
	if sh.stall > 0 {
		c.met.stalled()
		return ErrShardStalled
	}
	if c.wal != nil {
		walSp := rs.begin("wal_append")
		err := c.walAppendLocked(wal.Record{Kind: wal.KindSet, Tenant: tenant, Key: key, Value: val, Epoch: uint64(c.epoch)})
		walSp.End()
		if err != nil {
			return err
		}
	}
	storeSp := rs.begin("store_access")
	c.setLocked(sh, slot, shardIdx, h, key, val)
	storeSp.End()
	return nil
}

// setLocked applies a store to the shard (its lock held): the WAL-free
// core of Set, shared with replay.
func (c *Cache) setLocked(sh *shard, slot, shardIdx int, h uint64, key string, val []byte) {
	line := mem.Line(h)
	gl := mem.GlobalLine{ASID: asidOf(slot), Line: line}
	if mask := sh.pres.Get(gl) & c.partMask[slot]; mask != 0 {
		// Overwrite in place; an aliased key is displaced (cache semantics:
		// at most one resident value per line).
		phys := bits.TrailingZeros32(mask)
		sl := sh.slices[phys]
		w := sl.Lookup(gl.ASID, line)
		if w < 0 {
			panic("serve: present mask inconsistent")
		}
		if sh.store[gl].key != key {
			c.met.collision(slot, shardIdx)
		}
		sh.store[gl] = entry{key: key, val: val}
		sl.Touch(sl.SetIndex(line), w)
		sh.vecs[slot].Set(line)
		c.met.set(slot, shardIdx)
		return
	}
	// Insert at the partition's LRU position for this set: the home slice
	// if it has a free way, else the first group member with one, else the
	// member whose victim is oldest. Victims always come from the tenant's
	// own group — a tenant can never displace lines outside the capacity
	// the controller granted it. (The simulated hierarchy inserts locally
	// and spills to the group LRU instead, to model remote-hit latency;
	// one process has no such gradient, so inserting at the LRU position
	// directly is capacity-equivalent and moves nothing.)
	target := -1
	if sh.slices[slot].FreeWay(line) >= 0 {
		target = slot
	} else {
		var oldest uint64
		for m := c.partMask[slot]; m != 0; m &= m - 1 {
			phys := bits.TrailingZeros32(m)
			age, valid := sh.slices[phys].VictimAge(line)
			if !valid {
				target = phys
				break
			}
			if target < 0 || age < oldest {
				target, oldest = phys, age
			}
		}
	}
	sl := sh.slices[target]
	set := sl.SetIndex(line)
	way := sl.VictimWay(line)
	old := sl.InsertAt(set, way, gl.ASID, line, false)
	if old.Valid {
		ogl := mem.GlobalLine{ASID: old.ASID, Line: old.Line}
		sh.pres.Clear(ogl, 1<<uint(target))
		delete(sh.store, ogl)
		owner := int(old.ASID) - 1
		c.occupancy[owner].Add(-1)
		c.met.evict(owner, "capacity")
	}
	sh.pres.Or(gl, 1<<uint(target))
	sh.store[gl] = entry{key: key, val: val}
	c.occupancy[slot].Add(1)
	sh.vecs[slot].Set(line)
	c.met.set(slot, shardIdx)
}

// Delete removes (tenant, key); ErrNotFound if absent. Like Set, the
// delete is WAL-logged before it is applied when persistence is on
// (absent keys are not logged).
func (c *Cache) Delete(tenant, key string) error {
	if ro := c.robs; ro != nil {
		start := ro.now()
		err := c.del(tenant, key, nil)
		ro.observe("delete", tenant, start, err)
		return err
	}
	return c.del(tenant, key, nil)
}

// del is the observation-free core of Delete (see get).
func (c *Cache) del(tenant, key string, rs *reqSpans) error {
	if c.draining.Load() {
		return ErrDraining
	}
	slot, ok := c.tenants[tenant]
	if !ok {
		return ErrUnknownTenant
	}
	if key == "" {
		return ErrEmptyKey
	}
	if len(key) > maxKeyBytes {
		return ErrKeyTooLong
	}
	if c.wal != nil && c.degraded.Load() {
		return ErrDegraded
	}
	h := hashKey(key)
	sh := c.shardOf(h)
	shardIdx := int((h >> 48) & uint64(len(c.shards)-1))
	lockSp := rs.begin("shard_lock_wait")
	sh.mu.Lock()
	lockSp.End()
	defer sh.mu.Unlock()
	if sh.stall > 0 {
		c.met.stalled()
		return ErrShardStalled
	}
	if c.wal != nil {
		gl := mem.GlobalLine{ASID: asidOf(slot), Line: mem.Line(h)}
		if mask := sh.pres.Get(gl) & c.partMask[slot]; mask == 0 || sh.store[gl].key != key {
			return ErrNotFound
		}
		walSp := rs.begin("wal_append")
		err := c.walAppendLocked(wal.Record{Kind: wal.KindDelete, Tenant: tenant, Key: key, Epoch: uint64(c.epoch)})
		walSp.End()
		if err != nil {
			return err
		}
	}
	storeSp := rs.begin("store_access")
	deleted := c.deleteLocked(sh, slot, shardIdx, h, key)
	storeSp.End()
	if !deleted {
		return ErrNotFound
	}
	return nil
}

// deleteLocked applies a delete to the shard (its lock held): the
// WAL-free core of Delete, shared with replay. It reports whether the
// key was resident.
func (c *Cache) deleteLocked(sh *shard, slot, shardIdx int, h uint64, key string) bool {
	line := mem.Line(h)
	gl := mem.GlobalLine{ASID: asidOf(slot), Line: line}
	mask := sh.pres.Get(gl) & c.partMask[slot]
	if mask == 0 || sh.store[gl].key != key {
		return false
	}
	phys := bits.TrailingZeros32(mask)
	sh.slices[phys].Invalidate(gl.ASID, line)
	sh.pres.Clear(gl, 1<<uint(phys))
	delete(sh.store, gl)
	c.occupancy[slot].Add(-1)
	c.met.del(slot, shardIdx)
	return true
}

// EndEpoch closes a reconfiguration interval: with every shard locked, the
// policy reads the epoch's ACFVs and repartitions, then the vectors reset
// (§2.1). It returns the policy's operation count and asymmetry flag.
func (c *Cache) EndEpoch() (reconfigs int, asymmetric bool) {
	for _, sh := range c.shards {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(c.shards) - 1; i >= 0; i-- {
			c.shards[i].mu.Unlock()
		}
	}()
	c.epoch++
	c.applyFaultsLocked()
	r, asym := c.policy.EndEpoch(c.epoch, machine{c})
	for _, sh := range c.shards {
		for _, v := range sh.vecs {
			v.Reset()
		}
	}
	c.met.epoch(r)
	if c.wal != nil {
		c.walEndEpochLocked(r)
	}
	return r, asym
}

// RunEpochs drives EndEpoch on the configured interval until ctx ends.
func (c *Cache) RunEpochs(ctx context.Context) {
	t := time.NewTicker(c.cfg.EpochInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.EndEpoch()
		}
	}
}

// Drain puts the cache into draining mode: every subsequent operation
// fails with ErrDraining (HTTP 503), letting load balancers fall away
// before shutdown.
func (c *Cache) Drain() { c.draining.Store(true) }

// Draining reports whether Drain has been called.
func (c *Cache) Draining() bool { return c.draining.Load() }

// Tenants returns the declared tenant names in slot order.
func (c *Cache) Tenants() []string { return c.cfg.Tenants }

// PolicyName names the governing policy.
func (c *Cache) PolicyName() string { return c.policy.Name() }

// Epoch returns the number of completed reconfiguration intervals.
func (c *Cache) Epoch() int {
	c.shards[0].mu.Lock()
	defer c.shards[0].mu.Unlock()
	return c.epoch
}

// Spec returns the current topology spec string (e.g. "(16:1:1)").
func (c *Cache) Spec() string {
	c.shards[0].mu.Lock()
	defer c.shards[0].mu.Unlock()
	return c.topo.Spec()
}

// PartitionSlots returns the slots currently granted to a tenant (its
// group's members), for introspection and tests.
func (c *Cache) PartitionSlots(tenant string) ([]int, error) {
	slot, ok := c.tenants[tenant]
	if !ok {
		return nil, ErrUnknownTenant
	}
	c.shards[0].mu.Lock()
	defer c.shards[0].mu.Unlock()
	g := c.topo.L2
	members := g.Members(g.GroupOf(slot))
	out := make([]int, len(members))
	copy(out, members)
	return out, nil
}

// OccupancyLines returns a tenant's resident line count across shards.
func (c *Cache) OccupancyLines(tenant string) (int64, error) {
	slot, ok := c.tenants[tenant]
	if !ok {
		return 0, ErrUnknownTenant
	}
	return c.occupancy[slot].Load(), nil
}
