package serve

import (
	"morphcache/internal/obs"
	"morphcache/internal/wal"
)

// metrics holds the per-tenant series, pre-resolved per slot (and sharded
// by request shard where the access path is hot) so incrementing needs no
// map lookup and no allocation. Exported families (DESIGN.md §12):
//
//	morphserve_requests_total{tenant,op,outcome}   counter
//	morphserve_evictions_total{tenant,reason}      counter
//	morphserve_hash_collisions_total{tenant}       counter
//	morphserve_tenant_occupancy_lines{tenant}      gauge (func)
//	morphserve_tenant_partition_lines{tenant}      gauge
//	morphserve_epochs_total                        counter
//	morphserve_reconfigurations_total              counter
//	morphserve_repartitions_total                  counter
type metrics struct {
	c *Cache
	// Indexed [slot]; nil for donor slots, which serve no requests and
	// own no lines.
	hits, miss, sets, dels []*obs.ShardedCounter
	collisions             []*obs.Counter
	evictCap, evictRepart  []*obs.Counter
	partLines              []*obs.Gauge

	epochs, reconfigs, reparts *obs.Counter

	// Robustness series (DESIGN.md §14): WAL durability, replay health,
	// admission shedding, fault injection, degraded mode.
	walAppends, walAppendErrs, walCompactions           *obs.Counter
	walSegments                                         *obs.Gauge
	replayRecords, replaySkipped, replayTruncatedBytes  *obs.Gauge
	replayClean                                         *obs.Gauge
	admRateRejections, admInflightRejections, stalledOp *obs.Counter
	faultsApplied, internalErrs                         *obs.Counter
	degraded                                            *obs.Gauge

	// Request-level series (DESIGN.md §15.1): per-tenant/per-verb latency
	// histograms on the HTTP path (request-scale µs buckets, sharded like
	// the hot counters), response status classes, and the HTTP-layer
	// in-flight gauge (distinct from the admission in-flight gauge, which
	// only counts when admission control is configured).
	reqDur     [][numOps]*obs.ShardedHistogram // [slot][op]; nil rows for donors
	httpClass  [4]*obs.Counter                 // 2xx, 3xx, 4xx, 5xx
	httpActive *obs.Gauge
}

// Operation indices for the per-verb histograms.
const (
	opGet = iota
	opSet
	opDelete
	numOps
)

var opNames = [numOps]string{"get", "set", "delete"}

func newMetrics(reg *obs.Registry, c *Cache) *metrics {
	m := &metrics{
		c:           c,
		hits:        make([]*obs.ShardedCounter, c.cfg.Slots),
		miss:        make([]*obs.ShardedCounter, c.cfg.Slots),
		sets:        make([]*obs.ShardedCounter, c.cfg.Slots),
		dels:        make([]*obs.ShardedCounter, c.cfg.Slots),
		collisions:  make([]*obs.Counter, c.cfg.Slots),
		evictCap:    make([]*obs.Counter, c.cfg.Slots),
		evictRepart: make([]*obs.Counter, c.cfg.Slots),
		partLines:   make([]*obs.Gauge, c.cfg.Slots),
		reqDur:      make([][numOps]*obs.ShardedHistogram, c.cfg.Slots),
	}
	const req = "morphserve_requests_total"
	const reqHelp = "Cache requests by tenant, operation, and outcome."
	const evict = "morphserve_evictions_total"
	const evictHelp = "Lines evicted, by owning tenant and reason (capacity pressure or partition shrink)."
	shards := len(c.shards)
	for slot, name := range c.names {
		if name == "" {
			continue
		}
		tenant := obs.Labels{"tenant": name}
		m.hits[slot] = reg.ShardedCounter(req, reqHelp, obs.Labels{"tenant": name, "op": "get", "outcome": "hit"}, shards)
		m.miss[slot] = reg.ShardedCounter(req, reqHelp, obs.Labels{"tenant": name, "op": "get", "outcome": "miss"}, shards)
		m.sets[slot] = reg.ShardedCounter(req, reqHelp, obs.Labels{"tenant": name, "op": "set", "outcome": "stored"}, shards)
		m.dels[slot] = reg.ShardedCounter(req, reqHelp, obs.Labels{"tenant": name, "op": "delete", "outcome": "deleted"}, shards)
		m.collisions[slot] = reg.Counter("morphserve_hash_collisions_total",
			"Requests whose key aliased a different resident key's line hash.", tenant)
		m.evictCap[slot] = reg.Counter(evict, evictHelp, obs.Labels{"tenant": name, "reason": "capacity"})
		m.evictRepart[slot] = reg.Counter(evict, evictHelp, obs.Labels{"tenant": name, "reason": "repartition"})
		m.partLines[slot] = reg.Gauge("morphserve_tenant_partition_lines",
			"Line capacity of the tenant's current partition (its slot group, all shards).", tenant)
		occ := &c.occupancy[slot]
		reg.RegisterGaugeFunc("morphserve_tenant_occupancy_lines",
			"Lines currently resident per tenant.", tenant,
			func() float64 { return float64(occ.Load()) })
		for op := 0; op < numOps; op++ {
			m.reqDur[slot][op] = reg.ShardedHistogram("morphserve_request_duration_microseconds",
				"HTTP request duration by tenant and operation, in microseconds.",
				obs.Labels{"tenant": name, "op": opNames[op]}, shards, obs.RequestLatencyBuckets)
		}
		if c.robs != nil && c.robs.slo != nil {
			slo := c.robs.slo
			s := slot
			for wi, w := range slo.windows {
				widx := wi
				reg.RegisterGaugeFunc("morphserve_slo_burn_rate",
					"Per-tenant SLO burn rate: fraction of requests over the p99 latency target, divided by the 1% error budget, per window.",
					obs.Labels{"tenant": name, "window": windowLabel(w.dur)},
					func() float64 { return slo.burn(s, widx) })
			}
		}
	}
	m.epochs = reg.Counter("morphserve_epochs_total",
		"Completed reconfiguration intervals.", nil)
	m.reconfigs = reg.Counter("morphserve_reconfigurations_total",
		"Reconfiguration operations (merges and splits) the policy applied.", nil)
	m.reparts = reg.Counter("morphserve_repartitions_total",
		"Topology changes applied to the serving partition map.", nil)
	m.walAppends = reg.Counter("morphserve_wal_appends_total",
		"Records appended to the write-ahead log.", nil)
	m.walAppendErrs = reg.Counter("morphserve_wal_append_errors_total",
		"WAL appends that failed (the write was rejected, not applied).", nil)
	m.walCompactions = reg.Counter("morphserve_wal_compactions_total",
		"Snapshot compactions of the write-ahead log.", nil)
	m.walSegments = reg.Gauge("morphserve_wal_segments",
		"Live WAL segment files.", nil)
	m.replayRecords = reg.Gauge("morphserve_wal_replay_records",
		"Records applied by the startup WAL replay.", nil)
	m.replaySkipped = reg.Gauge("morphserve_wal_replay_skipped_records",
		"Replay records skipped as no longer applicable (e.g. removed tenants).", nil)
	m.replayTruncatedBytes = reg.Gauge("morphserve_wal_replay_truncated_bytes",
		"Bytes cut from a torn WAL tail during startup repair.", nil)
	m.replayClean = reg.Gauge("morphserve_wal_replay_clean",
		"1 when the startup replay found no torn tail, else 0.", nil)
	m.admRateRejections = reg.Counter("morphserve_admission_rejected_total",
		"Requests shed by admission control, by reason.", obs.Labels{"reason": "tenant_rate"})
	m.admInflightRejections = reg.Counter("morphserve_admission_rejected_total",
		"Requests shed by admission control, by reason.", obs.Labels{"reason": "inflight"})
	m.stalledOp = reg.Counter("morphserve_shard_stalled_total",
		"Operations shed because their shard was stalled by an injected fault.", nil)
	m.faultsApplied = reg.Counter("morphserve_faults_applied_total",
		"Serve-layer fault events applied at epoch boundaries.", nil)
	m.internalErrs = reg.Counter("morphserve_internal_errors_total",
		"Requests that failed with an unclassified internal error.", nil)
	m.degraded = reg.Gauge("morphserve_degraded",
		"1 while the server is in read-mostly degraded mode after persistent WAL failure.", nil)
	reg.RegisterGaugeFunc("morphserve_inflight_requests",
		"Requests currently admitted and executing.", nil,
		func() float64 { return float64(c.InFlight()) })
	const classHelp = "HTTP responses by status class on the cache API routes."
	for i, class := range [...]string{"2xx", "3xx", "4xx", "5xx"} {
		m.httpClass[i] = reg.Counter("morphserve_http_responses_total", classHelp,
			obs.Labels{"class": class})
	}
	m.httpActive = reg.Gauge("morphserve_http_inflight_requests",
		"HTTP requests currently being handled on instrumented routes.", nil)
	reg.RegisterCounterFunc("morphserve_decisions_total",
		"Reconfiguration decisions recorded in the audit ring (all-time, including overwritten ones).",
		nil, c.audit.total)
	return m
}

// httpDone counts one finished HTTP response into its status class.
func (m *metrics) httpDone(status int) {
	if i := status/100 - 2; i >= 0 && i < len(m.httpClass) {
		m.httpClass[i].Inc()
	}
}

// reqObserve records one instrumented request's duration (µs), sharding
// the histogram by the duration's low bits to spread writer contention.
func (m *metrics) reqObserve(slot, op int, us uint64) {
	if h := m.reqDur[slot][op]; h != nil {
		h.Shard(int(us)).Observe(us)
	}
}

// setPartitionGauges refreshes every tenant's granted-capacity gauge from
// the current topology. Called at construction and after each
// repartition (with the shard locks held).
func (m *metrics) setPartitionGauges() {
	c := m.c
	g := c.topo.L2
	for slot, gauge := range m.partLines {
		if gauge == nil {
			continue
		}
		lines := int64(g.GroupSize(g.GroupOf(slot))) * int64(c.slotLines) * int64(len(c.shards))
		gauge.Set(lines)
	}
}

func (m *metrics) getHit(slot, shard int)  { m.hits[slot].Shard(shard).Inc() }
func (m *metrics) getMiss(slot, shard int) { m.miss[slot].Shard(shard).Inc() }
func (m *metrics) set(slot, shard int)     { m.sets[slot].Shard(shard).Inc() }
func (m *metrics) del(slot, shard int)     { m.dels[slot].Shard(shard).Inc() }
func (m *metrics) collision(slot, _ int)   { m.collisions[slot].Inc() }

func (m *metrics) evict(ownerSlot int, reason string) {
	if reason == "repartition" {
		m.evictRepart[ownerSlot].Inc()
		return
	}
	m.evictCap[ownerSlot].Inc()
}

func (m *metrics) epoch(reconfigs int) {
	m.epochs.Inc()
	if reconfigs > 0 {
		m.reconfigs.Add(uint64(reconfigs))
	}
}

func (m *metrics) repartition() { m.reparts.Inc() }

func (m *metrics) walAppend()    { m.walAppends.Inc() }
func (m *metrics) walAppendErr() { m.walAppendErrs.Inc() }

// replayDone publishes the startup replay outcome.
func (m *metrics) replayDone(st wal.ReplayStats) {
	m.replayRecords.Set(st.Records)
	m.replaySkipped.Set(st.Skipped)
	m.replayTruncatedBytes.Set(st.TruncatedBytes)
	if st.Truncated {
		m.replayClean.Set(0)
	} else {
		m.replayClean.Set(1)
	}
}

func (m *metrics) admRejectRate()     { m.admRateRejections.Inc() }
func (m *metrics) admRejectInflight() { m.admInflightRejections.Inc() }
func (m *metrics) stalled()           { m.stalledOp.Inc() }
func (m *metrics) faultApplied()      { m.faultsApplied.Inc() }
func (m *metrics) internalErr()       { m.internalErrs.Inc() }
