package serve

import (
	"encoding/json"
	"sync"

	"morphcache/internal/telemetry"
)

// The decision audit plane (DESIGN.md §15.2). The paper's premise is that
// reconfiguration is only trustworthy when its triggering signals are
// inspectable; PR 2 built that inspection layer for the simulator
// (telemetry.ReconfigEvent), and this promotes it to the serving path: the
// controller's recorder hook feeds a fixed-capacity ring of
// DecisionRecords — every repartition with the rule that fired, the ACFV
// inputs it compared, and the per-tenant capacity delta it granted —
// served as GET /decisions (JSON, last N) and streamed live over
// GET /events (SSE).

// DecisionRecord is one applied reconfiguration decision as the serving
// path saw it: the telemetry.ReconfigEvent fields (rule taxonomy, demand
// inputs, MSAT bounds) plus the per-tenant granted-slot delta the
// topology swap produced. The JSON encoding is deterministic — map keys
// sort, and the timestamp comes from the injectable ObsConfig.Now — so
// two identically seeded runs serve byte-identical /decisions bodies.
type DecisionRecord struct {
	// Seq is the 1-based decision sequence number since process start; a
	// gap at the front of /decisions means the ring overwrote history.
	Seq uint64 `json:"seq"`
	// Epoch is the reconfiguration interval the decision closed.
	Epoch int `json:"epoch"`
	// TimeUnixNano is ObsConfig.Now at record time (wall clock by default).
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Level, Op, Rule, Groups mirror telemetry.ReconfigEvent: the cache
	// level ("L2"/"L3" — the serve topology mirrors one grouping on
	// both), the operation ("merge"/"split"), the rule that fired
	// ("capacity", "sharing", "interference", "stale", "qos", "coupling",
	// "fault"), and the slot groups involved before the operation.
	Level  string `json:"level"`
	Op     string `json:"op"`
	Rule   string `json:"rule"`
	Groups string `json:"groups"`
	// UtilA/UtilB/Overlap are the demand-vector inputs the rule compared
	// (|ACFV| capacity fractions and footprint overlap), and
	// MSATHigh/MSATLow the thresholds in force.
	UtilA    float64 `json:"util_a"`
	UtilB    float64 `json:"util_b"`
	Overlap  float64 `json:"overlap"`
	MSATHigh float64 `json:"msat_high"`
	MSATLow  float64 `json:"msat_low"`
	// SlotDelta maps each tenant whose partition changed size to the slot
	// count it gained (positive) or lost (negative). Omitted for
	// operations that moved no tenant capacity.
	SlotDelta map[string]int `json:"slot_delta,omitempty"`
}

// defaultAuditCapacity is the ring size when ObsConfig.AuditCapacity is 0.
const defaultAuditCapacity = 256

// auditRing retains the last cap decisions. Push happens at epoch
// boundaries (all shard locks held); snapshot happens on /decisions
// scrapes, so a plain mutex costs nothing on the access path.
type auditRing struct {
	mu  sync.Mutex
	buf []DecisionRecord
	seq uint64
}

func newAuditRing(capacity int) *auditRing {
	if capacity <= 0 {
		capacity = defaultAuditCapacity
	}
	return &auditRing{buf: make([]DecisionRecord, capacity)}
}

// push assigns the next sequence number, stores the record (overwriting
// the oldest at capacity), and returns the stored value.
func (a *auditRing) push(rec DecisionRecord) DecisionRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	rec.Seq = a.seq
	a.buf[int((a.seq-1)%uint64(len(a.buf)))] = rec
	return rec
}

// snapshot returns the retained records oldest-first, at most n (n <= 0
// means all retained).
func (a *auditRing) snapshot(n int) []DecisionRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	capacity := uint64(len(a.buf))
	kept := a.seq
	if kept > capacity {
		kept = capacity
	}
	if n > 0 && uint64(n) < kept {
		kept = uint64(n)
	}
	out := make([]DecisionRecord, 0, kept)
	for i := a.seq - kept; i < a.seq; i++ {
		out = append(out, a.buf[int(i%capacity)])
	}
	return out
}

// total returns the all-time decision count (including overwritten ones).
func (a *auditRing) total() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq
}

// auditRecorder adapts the Cache to telemetry.Recorder: the controller
// mirrors every applied operation here (from EndEpoch, all shard locks
// held), and the recorder turns it into an audit record, a live event,
// and an always-on decision log line.
type auditRecorder struct{ c *Cache }

var _ telemetry.Recorder = auditRecorder{}

// RecordEpoch implements telemetry.Recorder; serve mode derives its epoch
// series from metrics, not epoch records.
func (a auditRecorder) RecordEpoch(telemetry.EpochRecord) {}

// RecordReconfig implements telemetry.Recorder.
func (a auditRecorder) RecordReconfig(ev telemetry.ReconfigEvent) {
	c := a.c
	// The controller emits immediately after the SetTopology call that
	// applied the operation, so the delta the machine stashed there
	// belongs to this event. Consume it; an event with no topology change
	// (none exist today in serve mode) would carry no delta.
	delta := c.pendingDelta
	c.pendingDelta = nil
	rec := c.audit.push(DecisionRecord{
		Epoch:        ev.Epoch,
		TimeUnixNano: c.now().UnixNano(),
		Level:        ev.Level,
		Op:           ev.Op,
		Rule:         ev.Rule,
		Groups:       ev.Groups,
		UtilA:        ev.UtilA,
		UtilB:        ev.UtilB,
		Overlap:      ev.Overlap,
		MSATHigh:     ev.MSATHigh,
		MSATLow:      ev.MSATLow,
		SlotDelta:    delta,
	})
	c.hub.publish("decision", rec)
	if c.slog != nil {
		c.slog.Info("decision",
			"seq", rec.Seq, "epoch", rec.Epoch, "op", rec.Op, "rule", rec.Rule,
			"groups", rec.Groups, "util_a", rec.UtilA, "util_b", rec.UtilB,
			"slot_delta", rec.SlotDelta)
	}
}

// sseEvent is one pre-encoded server-sent event.
type sseEvent struct {
	kind string
	data []byte
}

// eventHub fans live events (decision, degraded, stall) out to /events
// subscribers. Publishing never blocks: a subscriber that cannot keep up
// loses events rather than stalling an epoch boundary that holds every
// shard lock.
type eventHub struct {
	mu   sync.Mutex
	subs map[chan sseEvent]struct{}
}

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[chan sseEvent]struct{})}
}

// subscriberBuffer bounds each subscriber's backlog before drops begin.
const subscriberBuffer = 64

// subscribe registers a listener; cancel unregisters it (the channel is
// not closed, so a racing publish never panics).
func (h *eventHub) subscribe() (ch chan sseEvent, cancel func()) {
	ch = make(chan sseEvent, subscriberBuffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		delete(h.subs, ch)
		h.mu.Unlock()
	}
}

// publish encodes the payload once and offers it to every subscriber.
func (h *eventHub) publish(kind string, payload any) {
	h.mu.Lock()
	if len(h.subs) == 0 {
		h.mu.Unlock()
		return
	}
	data, err := json.Marshal(payload)
	if err != nil {
		h.mu.Unlock()
		return
	}
	ev := sseEvent{kind: kind, data: data}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than block an epoch boundary
		}
	}
	h.mu.Unlock()
}

// degradedEvent is the /events payload for read-mostly mode transitions.
type degradedEvent struct {
	On bool `json:"on"`
}

// stallEvent is the /events payload for an injected shard stall.
type stallEvent struct {
	Shard  int `json:"shard"`
	Epochs int `json:"epochs"`
	Epoch  int `json:"epoch"`
}
