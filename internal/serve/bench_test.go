package serve

import (
	"fmt"
	"io"
	"log/slog"
	"testing"
	"time"

	"morphcache/internal/wal"
)

// benchCache builds a production-shaped cache with a warm working set that
// fits one tenant's slot, so the benchmark measures the steady-state hit
// path.
func benchCache(b interface{ Fatal(...any) }) (*Cache, []string) {
	cfg := Config{
		Tenants:   []string{"alpha", "beta"},
		Slots:     16,
		Shards:    4,
		SlotBytes: 256 << 10,
		Ways:      8,
	}
	c, err := New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("user/%04d/profile", i)
		if err := c.Set("alpha", keys[i], []byte("payload-0123456789abcdef")); err != nil {
			b.Fatal(err)
		}
	}
	return c, keys
}

// BenchmarkServeGet is the steady-state hit path: presence probe, slice
// lookup, LRU touch, ACFV set, sharded counter. The bench job gates it at
// 0 allocs/op (cmd/benchjson -zero-allocs).
func BenchmarkServeGet(b *testing.B) {
	c, keys := benchCache(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get("alpha", keys[i&511]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSet overwrites resident keys in place (the steady-state
// write path; the inserted value itself is caller-allocated).
func BenchmarkServeSet(b *testing.B) {
	c, keys := benchCache(b)
	val := []byte("payload-0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Set("alpha", keys[i&511], val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSetWAL is the durable write path: WAL marshal + append
// ride ahead of the in-place overwrite. FsyncNever isolates the logging
// cost from the device; production FsyncAlways adds one fdatasync.
func BenchmarkServeSetWAL(b *testing.B) {
	cfg := Config{
		Tenants:   []string{"alpha", "beta"},
		Slots:     16,
		Shards:    4,
		SlotBytes: 256 << 10,
		Ways:      8,
		Persist: &PersistConfig{
			Dir:   b.TempDir(),
			Fsync: wal.FsyncNever,
		},
	}
	c, err := New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	keys := make([]string, 512)
	val := []byte("payload-0123456789abcdef")
	for i := range keys {
		keys[i] = fmt.Sprintf("user/%04d/profile", i)
		if err := c.Set("alpha", keys[i], val); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Set("alpha", keys[i&511], val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeGetObserved is BenchmarkServeGet with request-level
// observability on (structured logging sampled 1-in-128 plus SLO burn
// tracking) — the published cost of turning DESIGN.md §15 on. It is
// deliberately excluded from the -zero-allocs gate: the observed path
// may allocate (slog sampling); only the disabled path is pinned at 0.
func BenchmarkServeGetObserved(b *testing.B) {
	cfg := Config{
		Tenants:   []string{"alpha", "beta"},
		Slots:     16,
		Shards:    4,
		SlotBytes: 256 << 10,
		Ways:      8,
		Obs: ObsConfig{
			Logger:       slog.New(slog.NewJSONHandler(io.Discard, nil)),
			SLOTargetP99: 5 * time.Millisecond,
		},
	}
	c, err := New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("user/%04d/profile", i)
		if err := c.Set("alpha", keys[i], []byte("payload-0123456789abcdef")); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get("alpha", keys[i&511]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestServeGetZeroAlloc pins the acceptance criterion directly, so the
// regression fails in `go test` even where the bench gate does not run.
func TestServeGetZeroAlloc(t *testing.T) {
	c, keys := benchCache(t)
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		if _, err := c.Get("alpha", keys[i&511]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state Get hit path allocates %.2f per op, want 0", avg)
	}
}

// TestServeSetZeroAlloc pins the persistence-disabled write path at 0
// allocs/op (the ISSUE-8 acceptance criterion: the WAL hooks must stay
// behind nil checks).
func TestServeSetZeroAlloc(t *testing.T) {
	c, keys := benchCache(t)
	val := []byte("payload-0123456789abcdef")
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		if err := c.Set("alpha", keys[i&511], val); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state Set overwrite path allocates %.2f per op, want 0", avg)
	}
}
