package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"morphcache/internal/obs"
)

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func TestHTTPRoundTrip(t *testing.T) {
	c := mustCache(t, testConfig("alpha", "beta"))
	h := c.Handler()

	if rr := do(t, h, "PUT", "/cache/alpha/user/42", "hello"); rr.Code != http.StatusNoContent {
		t.Fatalf("PUT = %d %s", rr.Code, rr.Body)
	}
	rr := do(t, h, "GET", "/cache/alpha/user/42", "")
	if rr.Code != http.StatusOK || rr.Body.String() != "hello" {
		t.Fatalf("GET = %d %q", rr.Code, rr.Body)
	}
	// Keys may contain slashes ({key...} wildcard); tenants namespace them.
	if rr := do(t, h, "GET", "/cache/beta/user/42", ""); rr.Code != http.StatusNotFound {
		t.Fatalf("cross-tenant GET = %d", rr.Code)
	}
	// POST is an alias of PUT.
	if rr := do(t, h, "POST", "/cache/alpha/user/42", "bye"); rr.Code != http.StatusNoContent {
		t.Fatalf("POST = %d", rr.Code)
	}
	if rr := do(t, h, "GET", "/cache/alpha/user/42", ""); rr.Body.String() != "bye" {
		t.Fatalf("GET after POST = %q", rr.Body)
	}
	if rr := do(t, h, "DELETE", "/cache/alpha/user/42", ""); rr.Code != http.StatusNoContent {
		t.Fatalf("DELETE = %d", rr.Code)
	}
	if rr := do(t, h, "GET", "/cache/alpha/user/42", ""); rr.Code != http.StatusNotFound {
		t.Fatalf("GET after DELETE = %d", rr.Code)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	cfg := testConfig("alpha")
	cfg.MaxValueBytes = 8
	c := mustCache(t, cfg)
	h := c.Handler()

	if rr := do(t, h, "GET", "/cache/nobody/k", ""); rr.Code != http.StatusNotFound {
		t.Errorf("unknown tenant = %d, want 404", rr.Code)
	}
	if rr := do(t, h, "PUT", "/cache/alpha/k", "123456789"); rr.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized PUT = %d, want 413", rr.Code)
	}
	if rr := do(t, h, "PUT", "/cache/alpha/k", "12345678"); rr.Code != http.StatusNoContent {
		t.Errorf("at-limit PUT = %d, want 204", rr.Code)
	}
	c.Drain()
	for _, m := range []string{"GET", "PUT", "DELETE"} {
		if rr := do(t, h, m, "/cache/alpha/k", "x"); rr.Code != http.StatusServiceUnavailable {
			t.Errorf("draining %s = %d, want 503", m, rr.Code)
		}
	}
}

func TestHTTPTopology(t *testing.T) {
	c := mustCache(t, testConfig("alpha", "beta"))
	c.Set("alpha", "k", []byte("v"))
	rr := do(t, c.Handler(), "GET", "/topology", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /topology = %d", rr.Code)
	}
	var st TopologyStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Spec != "(1:1:4)" || st.Slots != 4 || len(st.Tenants) != 2 {
		t.Fatalf("topology = %+v", st)
	}
	if st.Tenants[0].Name != "alpha" || st.Tenants[0].OccupancyLines != 1 {
		t.Fatalf("alpha row = %+v", st.Tenants[0])
	}
	if st.Tenants[0].PartitionLines != 128 {
		t.Fatalf("alpha partition lines = %d, want 128", st.Tenants[0].PartitionLines)
	}
}

// TestAdminMount proves the ISSUE's serving shape: the cache API and the
// observability endpoints share one admin mux, and /metrics carries the
// per-tenant series.
func TestAdminMount(t *testing.T) {
	hub := obs.NewHub(obs.HubOptions{Shards: 1})
	c, err := New(testConfig("alpha", "beta"), hub.Registry)
	if err != nil {
		t.Fatal(err)
	}
	admin := obs.NewAdmin(hub.Registry, hub.Jobs)
	c.Register(admin)
	h := admin.Handler()

	if rr := do(t, h, "PUT", "/cache/alpha/k", "v"); rr.Code != http.StatusNoContent {
		t.Fatalf("PUT via admin mux = %d", rr.Code)
	}
	if rr := do(t, h, "GET", "/cache/alpha/k", ""); rr.Body.String() != "v" {
		t.Fatalf("GET via admin mux = %q", rr.Body)
	}
	rr := do(t, h, "GET", "/metrics", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	for _, want := range []string{
		`morphserve_requests_total{op="get",outcome="hit",tenant="alpha"} 1`,
		`morphserve_tenant_occupancy_lines{tenant="alpha"} 1`,
		`morphserve_tenant_partition_lines{tenant="beta"} 128`,
	} {
		if !strings.Contains(rr.Body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if rr := do(t, h, "GET", "/healthz", ""); rr.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", rr.Code)
	}
}
