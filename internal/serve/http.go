package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"morphcache/internal/obs"
)

// Registrar is anything that mounts handlers by Go 1.22 ServeMux pattern:
// *http.ServeMux natively, and obs.Admin via its Handle method — which is
// how the cache API rides the existing -admin mux next to /metrics.
type Registrar interface {
	Handle(pattern string, handler http.Handler)
}

// Register mounts the cache API:
//
//	GET    /cache/{tenant}/{key...}   200 value | 404
//	PUT    /cache/{tenant}/{key...}   204 | 413 too large
//	POST   /cache/{tenant}/{key...}   alias of PUT
//	DELETE /cache/{tenant}/{key...}   204 | 404
//	GET    /topology                  JSON partition map
//	GET    /decisions                 JSON audit ring (last N; ?n= caps it)
//	GET    /events                    SSE live decision/degraded/stall feed
//
// Unknown tenants are 404, draining is 503 for every route. With
// admission control configured, the cache routes ride the overload
// guards (429 + Retry-After; see AdmissionConfig); the observability
// routes do not, so an operator can still inspect an overloaded server.
// Cache routes are instrumented (per-tenant/per-verb latency histograms,
// status classes, in-flight gauge); /events is exempted from the admin
// server's WriteTimeout via obs.Streaming.
func (c *Cache) Register(r Registrar) {
	r.Handle("GET /cache/{tenant}/{key...}", c.instrument(opGet, c.admit(c.handleGet, true)))
	r.Handle("PUT /cache/{tenant}/{key...}", c.instrument(opSet, c.admit(c.handlePut, true)))
	r.Handle("POST /cache/{tenant}/{key...}", c.instrument(opSet, c.admit(c.handlePut, true)))
	r.Handle("DELETE /cache/{tenant}/{key...}", c.instrument(opDelete, c.admit(c.handleDelete, true)))
	r.Handle("GET /topology", c.instrument(-1, c.admit(c.handleTopology, false)))
	r.Handle("GET /decisions", http.HandlerFunc(c.handleDecisions))
	r.Handle("GET /events", obs.Streaming(http.HandlerFunc(c.handleEvents)))
}

// statusWriter captures the response status for the status-class
// counters. Unwrap keeps http.ResponseController (and so obs.Streaming)
// working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a cache route with the request-level series: duration
// histogram (per tenant and verb, for op >= 0 routes naming a tenant),
// status class, and the HTTP in-flight gauge. Unlike logging/SLO/spans
// this is always on — the histograms are the serving path's analogue of
// the simulator's always-on latency hub, and the cost (two clock reads
// and one small wrapper) is paid only by HTTP callers, never by the
// library access path the 0-alloc gate covers.
func (c *Cache) instrument(op int, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := c.now()
		c.met.httpActive.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		c.met.httpActive.Add(-1)
		c.met.httpDone(sw.status)
		if op >= 0 {
			if slot, ok := c.tenants[r.PathValue("tenant")]; ok {
				us := uint64(c.now().Sub(start).Microseconds())
				c.met.reqObserve(slot, op, us)
			}
		}
	})
}

// Handler returns a standalone mux carrying only the cache API (tests and
// embedders that do not use the admin mux).
func (c *Cache) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Register(mux)
	return mux
}

// writeErr maps the cache's sentinel errors onto HTTP statuses. 503 is
// the "server is sick or leaving" family (drain, degraded, persistence,
// stalled shard) so load balancers eject the instance; client mistakes
// stay in the 4xx family. Unclassified errors return a generic 500 —
// never the internal error string — and count on an obs counter.
//
// Every retryable shed sets Retry-After (matching the admission layer's
// 429s): stalls and one-off persistence failures say 1s (transient),
// degraded mode says one epoch interval (recovery is probed at epoch
// boundaries, so sooner retries only burn the client's budget). Draining
// deliberately sends none — the instance is leaving, and the client
// should re-resolve rather than retry here.
func (c *Cache) writeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		http.Error(w, "not found", http.StatusNotFound)
	case errors.Is(err, ErrUnknownTenant):
		http.Error(w, "unknown tenant", http.StatusNotFound)
	case errors.Is(err, ErrValueTooLarge):
		http.Error(w, "value too large", http.StatusRequestEntityTooLarge)
	case errors.Is(err, ErrKeyTooLong):
		http.Error(w, "key too long", http.StatusRequestURITooLong)
	case errors.Is(err, ErrDraining):
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case errors.Is(err, ErrDegraded):
		w.Header().Set("Retry-After", c.degradedRetryAfter())
		http.Error(w, "degraded: read-mostly mode", http.StatusServiceUnavailable)
	case errors.Is(err, ErrPersist):
		w.Header().Set("Retry-After", "1")
		http.Error(w, "persistence failure, retry", http.StatusServiceUnavailable)
	case errors.Is(err, ErrShardStalled):
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shard stalled, retry", http.StatusServiceUnavailable)
	case errors.Is(err, ErrEmptyKey):
		http.Error(w, "empty key", http.StatusBadRequest)
	default:
		c.met.internalErr()
		http.Error(w, "internal error", http.StatusInternalServerError)
	}
}

// degradedRetryAfter is the Retry-After for degraded-mode 503s: the
// epoch interval (rounded up to a whole second), since that is when the
// next WAL recovery probe can lift the degradation.
func (c *Cache) degradedRetryAfter() string {
	s := int64(math.Ceil(c.cfg.EpochInterval.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

// httpOp runs one cache operation with request-level observation: the
// root request span (on the track the client's W3C traceparent pins, if
// any), SLO accounting, and the sampled access line. With observability
// disabled it is exactly the library call.
func (c *Cache) httpOp(r *http.Request, op string, tenant string, f func(rs *reqSpans) error) error {
	ro := c.robs
	if ro == nil {
		return f(nil)
	}
	rs := ro.spansFor(op, r.Header.Get("traceparent"))
	start := ro.now()
	err := f(rs)
	rs.finish()
	ro.observe(op, tenant, start, err)
	return err
}

func (c *Cache) handleGet(w http.ResponseWriter, r *http.Request) {
	tenant, key := r.PathValue("tenant"), r.PathValue("key")
	var val []byte
	err := c.httpOp(r, "get", tenant, func(rs *reqSpans) error {
		var err error
		val, err = c.get(tenant, key, rs)
		return err
	})
	if err != nil {
		c.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(val)))
	w.Write(val)
}

func (c *Cache) handlePut(w http.ResponseWriter, r *http.Request) {
	// MaxBytesReader stops the transfer at the limit (closing the
	// connection) instead of draining an oversized body to count it.
	body := http.MaxBytesReader(w, r.Body, int64(c.cfg.MaxValueBytes))
	val, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		switch {
		case errors.As(err, &mbe):
			c.writeErr(w, ErrValueTooLarge)
		case errors.Is(r.Context().Err(), context.DeadlineExceeded):
			// The client ran out its request deadline mid-body.
			http.Error(w, "request timeout reading body", http.StatusRequestTimeout)
		case r.Context().Err() != nil:
			// The client went away; the status is for the log line.
			http.Error(w, "client closed request", http.StatusBadRequest)
		default:
			http.Error(w, "malformed request body", http.StatusBadRequest)
		}
		return
	}
	// A body that trickled in past the request deadline is rejected
	// before it is applied.
	switch ctxErr := r.Context().Err(); {
	case errors.Is(ctxErr, context.DeadlineExceeded):
		http.Error(w, "request timeout", http.StatusRequestTimeout)
		return
	case ctxErr != nil:
		http.Error(w, "client closed request", http.StatusBadRequest)
		return
	}
	tenant, key := r.PathValue("tenant"), r.PathValue("key")
	if err := c.httpOp(r, "set", tenant, func(rs *reqSpans) error {
		return c.set(tenant, key, val, rs)
	}); err != nil {
		c.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Cache) handleDelete(w http.ResponseWriter, r *http.Request) {
	tenant, key := r.PathValue("tenant"), r.PathValue("key")
	if err := c.httpOp(r, "delete", tenant, func(rs *reqSpans) error {
		return c.del(tenant, key, rs)
	}); err != nil {
		c.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// TenantStatus is one tenant's row in the /topology response.
type TenantStatus struct {
	Name           string `json:"name"`
	Slot           int    `json:"slot"`
	PartitionSlots []int  `json:"partition_slots"`
	PartitionLines int64  `json:"partition_lines"`
	OccupancyLines int64  `json:"occupancy_lines"`
}

// TopologyStatus is the /topology response body.
type TopologyStatus struct {
	Policy  string         `json:"policy"`
	Spec    string         `json:"spec"`
	Epoch   int            `json:"epoch"`
	Slots   int            `json:"slots"`
	Shards  int            `json:"shards"`
	Tenants []TenantStatus `json:"tenants"`
}

// Status snapshots the partition map (also served as GET /topology).
func (c *Cache) Status() TopologyStatus {
	c.shards[0].mu.Lock()
	g := c.topo.L2
	st := TopologyStatus{
		Policy: c.policy.Name(),
		Spec:   c.topo.Spec(),
		Epoch:  c.epoch,
		Slots:  c.cfg.Slots,
		Shards: len(c.shards),
	}
	for slot, name := range c.names {
		if name == "" {
			continue
		}
		members := g.Members(g.GroupOf(slot))
		part := make([]int, len(members))
		copy(part, members)
		st.Tenants = append(st.Tenants, TenantStatus{
			Name:           name,
			Slot:           slot,
			PartitionSlots: part,
			PartitionLines: int64(len(members)) * int64(c.slotLines) * int64(len(c.shards)),
			OccupancyLines: c.occupancy[slot].Load(),
		})
	}
	c.shards[0].mu.Unlock()
	return st
}

func (c *Cache) handleTopology(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(c.Status())
}

// Decisions returns the retained audit records oldest-first, at most n
// (n <= 0 means all retained; capacity bounds both).
func (c *Cache) Decisions(n int) []DecisionRecord {
	return c.audit.snapshot(n)
}

// decisionsBody is the GET /decisions response.
type decisionsBody struct {
	// Total is the all-time decision count; Total > len(Decisions) means
	// the ring overwrote older records.
	Total     uint64           `json:"total"`
	Decisions []DecisionRecord `json:"decisions"`
}

func (c *Cache) handleDecisions(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	body := decisionsBody{Total: c.audit.total(), Decisions: c.audit.snapshot(n)}
	if body.Decisions == nil {
		body.Decisions = []DecisionRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

// handleEvents streams decision/degraded/stall events as server-sent
// events until the client disconnects. Register wraps it in
// obs.Streaming so the admin server's blanket WriteTimeout does not cut
// the stream; a subscriber that stops reading loses events rather than
// blocking publishers (see eventHub).
func (c *Cache) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel := c.hub.subscribe()
	defer cancel()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": morphserve event stream\n\n")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.kind, ev.data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// TenantSLO is one tenant's SLO state in the health detail view.
type TenantSLO struct {
	Tenant string `json:"tenant"`
	// TargetP99Micros is the configured latency target in microseconds.
	TargetP99Micros int64 `json:"target_p99_us"`
	// BurnRate maps window label ("5m") to the current burn rate (over-
	// target fraction over the 1% budget; 1.0 = burning exactly the
	// budget).
	BurnRate map[string]float64 `json:"burn_rate"`
}

// HealthView is the /healthz?verbose=1 detail the serve-mode cache
// registers through obs.Admin.SetHealthDetail.
type HealthView struct {
	Draining  bool   `json:"draining"`
	Degraded  bool   `json:"degraded"`
	Epoch     int    `json:"epoch"`
	Spec      string `json:"spec"`
	Decisions uint64 `json:"decisions_total"`
	// SLO is present only when SLO tracking is configured.
	SLO []TenantSLO `json:"slo,omitempty"`
}

// HealthDetail snapshots the serving state for the verbose health view.
func (c *Cache) HealthDetail() HealthView {
	v := HealthView{
		Draining:  c.Draining(),
		Degraded:  c.Degraded(),
		Epoch:     c.Epoch(),
		Spec:      c.Spec(),
		Decisions: c.audit.total(),
	}
	if c.robs != nil && c.robs.slo != nil {
		slo := c.robs.slo
		for slot, name := range c.names {
			if name == "" {
				continue
			}
			t := TenantSLO{
				Tenant:          name,
				TargetP99Micros: slo.target.Microseconds(),
				BurnRate:        make(map[string]float64, len(slo.windows)),
			}
			for wi, w := range slo.windows {
				t.BurnRate[windowLabel(w.dur)] = slo.burn(slot, wi)
			}
			v.SLO = append(v.SLO, t)
		}
	}
	return v
}
