package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
)

// Registrar is anything that mounts handlers by Go 1.22 ServeMux pattern:
// *http.ServeMux natively, and obs.Admin via its Handle method — which is
// how the cache API rides the existing -admin mux next to /metrics.
type Registrar interface {
	Handle(pattern string, handler http.Handler)
}

// Register mounts the cache API:
//
//	GET    /cache/{tenant}/{key...}   200 value | 404
//	PUT    /cache/{tenant}/{key...}   204 | 413 too large
//	POST   /cache/{tenant}/{key...}   alias of PUT
//	DELETE /cache/{tenant}/{key...}   204 | 404
//	GET    /topology                  JSON partition map
//
// Unknown tenants are 404, draining is 503 for every route. With
// admission control configured, every route rides the overload guards
// (429 + Retry-After; see AdmissionConfig).
func (c *Cache) Register(r Registrar) {
	r.Handle("GET /cache/{tenant}/{key...}", c.admit(c.handleGet, true))
	r.Handle("PUT /cache/{tenant}/{key...}", c.admit(c.handlePut, true))
	r.Handle("POST /cache/{tenant}/{key...}", c.admit(c.handlePut, true))
	r.Handle("DELETE /cache/{tenant}/{key...}", c.admit(c.handleDelete, true))
	r.Handle("GET /topology", c.admit(c.handleTopology, false))
}

// Handler returns a standalone mux carrying only the cache API (tests and
// embedders that do not use the admin mux).
func (c *Cache) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Register(mux)
	return mux
}

// writeErr maps the cache's sentinel errors onto HTTP statuses. 503 is
// the "server is sick or leaving" family (drain, degraded, persistence,
// stalled shard) so load balancers eject the instance; client mistakes
// stay in the 4xx family. Unclassified errors return a generic 500 —
// never the internal error string — and count on an obs counter.
func (c *Cache) writeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		http.Error(w, "not found", http.StatusNotFound)
	case errors.Is(err, ErrUnknownTenant):
		http.Error(w, "unknown tenant", http.StatusNotFound)
	case errors.Is(err, ErrValueTooLarge):
		http.Error(w, "value too large", http.StatusRequestEntityTooLarge)
	case errors.Is(err, ErrKeyTooLong):
		http.Error(w, "key too long", http.StatusRequestURITooLong)
	case errors.Is(err, ErrDraining):
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case errors.Is(err, ErrDegraded):
		http.Error(w, "degraded: read-mostly mode", http.StatusServiceUnavailable)
	case errors.Is(err, ErrPersist):
		http.Error(w, "persistence failure, retry", http.StatusServiceUnavailable)
	case errors.Is(err, ErrShardStalled):
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shard stalled, retry", http.StatusServiceUnavailable)
	case errors.Is(err, ErrEmptyKey):
		http.Error(w, "empty key", http.StatusBadRequest)
	default:
		c.met.internalErr()
		http.Error(w, "internal error", http.StatusInternalServerError)
	}
}

func (c *Cache) handleGet(w http.ResponseWriter, r *http.Request) {
	val, err := c.Get(r.PathValue("tenant"), r.PathValue("key"))
	if err != nil {
		c.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(val)))
	w.Write(val)
}

func (c *Cache) handlePut(w http.ResponseWriter, r *http.Request) {
	// MaxBytesReader stops the transfer at the limit (closing the
	// connection) instead of draining an oversized body to count it.
	body := http.MaxBytesReader(w, r.Body, int64(c.cfg.MaxValueBytes))
	val, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		switch {
		case errors.As(err, &mbe):
			c.writeErr(w, ErrValueTooLarge)
		case errors.Is(r.Context().Err(), context.DeadlineExceeded):
			// The client ran out its request deadline mid-body.
			http.Error(w, "request timeout reading body", http.StatusRequestTimeout)
		case r.Context().Err() != nil:
			// The client went away; the status is for the log line.
			http.Error(w, "client closed request", http.StatusBadRequest)
		default:
			http.Error(w, "malformed request body", http.StatusBadRequest)
		}
		return
	}
	// A body that trickled in past the request deadline is rejected
	// before it is applied.
	switch ctxErr := r.Context().Err(); {
	case errors.Is(ctxErr, context.DeadlineExceeded):
		http.Error(w, "request timeout", http.StatusRequestTimeout)
		return
	case ctxErr != nil:
		http.Error(w, "client closed request", http.StatusBadRequest)
		return
	}
	if err := c.Set(r.PathValue("tenant"), r.PathValue("key"), val); err != nil {
		c.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Cache) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := c.Delete(r.PathValue("tenant"), r.PathValue("key")); err != nil {
		c.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// TenantStatus is one tenant's row in the /topology response.
type TenantStatus struct {
	Name           string `json:"name"`
	Slot           int    `json:"slot"`
	PartitionSlots []int  `json:"partition_slots"`
	PartitionLines int64  `json:"partition_lines"`
	OccupancyLines int64  `json:"occupancy_lines"`
}

// TopologyStatus is the /topology response body.
type TopologyStatus struct {
	Policy  string         `json:"policy"`
	Spec    string         `json:"spec"`
	Epoch   int            `json:"epoch"`
	Slots   int            `json:"slots"`
	Shards  int            `json:"shards"`
	Tenants []TenantStatus `json:"tenants"`
}

// Status snapshots the partition map (also served as GET /topology).
func (c *Cache) Status() TopologyStatus {
	c.shards[0].mu.Lock()
	g := c.topo.L2
	st := TopologyStatus{
		Policy: c.policy.Name(),
		Spec:   c.topo.Spec(),
		Epoch:  c.epoch,
		Slots:  c.cfg.Slots,
		Shards: len(c.shards),
	}
	for slot, name := range c.names {
		if name == "" {
			continue
		}
		members := g.Members(g.GroupOf(slot))
		part := make([]int, len(members))
		copy(part, members)
		st.Tenants = append(st.Tenants, TenantStatus{
			Name:           name,
			Slot:           slot,
			PartitionSlots: part,
			PartitionLines: int64(len(members)) * int64(c.slotLines) * int64(len(c.shards)),
			OccupancyLines: c.occupancy[slot].Load(),
		})
	}
	c.shards[0].mu.Unlock()
	return st
}

func (c *Cache) handleTopology(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(c.Status())
}
