package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync/atomic"
	"time"

	"morphcache/internal/obs"
)

// Request-level observability (DESIGN.md §15). Everything here is opt-in
// and rides behind a single pointer: a Cache built with the zero
// ObsConfig has c.robs == nil and its Get/Set/Delete paths are byte-for-
// byte the PR-8 allocation-free ones (CI gates them at 0 allocs/op).

// ObsConfig turns on request-level observability. The zero value disables
// all of it.
type ObsConfig struct {
	// Logger receives structured logs: always-on decision, degradation,
	// and fault lines, plus sampled access lines. Nil disables logging.
	Logger *slog.Logger
	// AccessLogEvery samples one access log line per N operations
	// (globally, not per tenant). 0 defaults to 128 when Logger is set;
	// negative disables access lines while keeping decision/fault lines.
	AccessLogEvery int
	// SLOTargetP99 is the per-request latency target: SLO tracking counts
	// the fraction of requests over it against the 1% budget a p99 target
	// implies, exported as multi-window burn-rate gauges (§15.3). 0
	// disables SLO tracking.
	SLOTargetP99 time.Duration
	// SLOWindows are the burn-rate windows. Default 5m and 1h.
	SLOWindows []time.Duration
	// Tracer receives request spans (shard-lock wait, WAL append, store
	// access) on the HTTP path; an incoming W3C traceparent pins the
	// request's track so external trace ids line up. Nil disables spans.
	Tracer *obs.Tracer
	// AuditCapacity sizes the decision audit ring (GET /decisions).
	// Default 256. The ring itself is always on — it costs one record per
	// applied reconfiguration, nothing per request.
	AuditCapacity int
	// Now is the wall clock for audit timestamps, SLO windows, and
	// request timing. Nil means time.Now; tests inject a fixed clock to
	// make /decisions bodies byte-identical across runs.
	Now func() time.Time
}

func (o ObsConfig) validate() error {
	if o.SLOTargetP99 < 0 {
		return fmt.Errorf("serve: negative SLO target %s", o.SLOTargetP99)
	}
	if o.AuditCapacity < 0 {
		return fmt.Errorf("serve: negative audit capacity %d", o.AuditCapacity)
	}
	for _, w := range o.SLOWindows {
		if w <= 0 {
			return fmt.Errorf("serve: non-positive SLO window %s", w)
		}
	}
	return nil
}

// enabled reports whether any request-path observation is on (the robs
// pointer is built at all).
func (o ObsConfig) enabled() bool {
	return o.Logger != nil || o.SLOTargetP99 > 0 || o.Tracer != nil
}

// defaultSLOWindows are the canonical multi-window burn-rate pair: the
// short window catches fast burn, the long one slow burn (§15.3).
func defaultSLOWindows() []time.Duration {
	return []time.Duration{5 * time.Minute, time.Hour}
}

// reqObs is the per-request observation state, nil when disabled.
type reqObs struct {
	c        *Cache
	logger   *slog.Logger
	logEvery uint64 // 0 = no access lines
	logCount atomic.Uint64
	slo      *sloTracker
	tracer   *obs.Tracer
	nextTID  atomic.Int64
	now      func() time.Time
}

func newReqObs(cfg ObsConfig, c *Cache) *reqObs {
	if !cfg.enabled() {
		return nil
	}
	ro := &reqObs{c: c, logger: cfg.Logger, tracer: cfg.Tracer, now: c.now}
	if cfg.Logger != nil {
		switch {
		case cfg.AccessLogEvery > 0:
			ro.logEvery = uint64(cfg.AccessLogEvery)
		case cfg.AccessLogEvery == 0:
			ro.logEvery = 128
		}
	}
	if cfg.SLOTargetP99 > 0 {
		windows := cfg.SLOWindows
		if len(windows) == 0 {
			windows = defaultSLOWindows()
		}
		ro.slo = newSLOTracker(cfg.SLOTargetP99, windows, c.cfg.Slots, c.now)
	}
	return ro
}

// observe closes one library-level operation: SLO accounting and the
// sampled access line. Called only when robs != nil.
func (ro *reqObs) observe(op, tenant string, start time.Time, err error) {
	d := ro.now().Sub(start)
	if ro.slo != nil {
		if slot, ok := ro.c.tenants[tenant]; ok {
			ro.slo.observe(slot, d)
		}
	}
	if ro.logEvery > 0 && ro.logCount.Add(1)%ro.logEvery == 0 {
		ro.logger.Info("access",
			"op", op, "tenant", tenant, "us", d.Microseconds(),
			"outcome", outcomeOf(err), "sampled_1_in", ro.logEvery)
	}
}

// outcomeOf renders an operation result for log lines without exposing
// internal error strings.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrNotFound):
		return "miss"
	case errors.Is(err, ErrShardStalled):
		return "stalled"
	case errors.Is(err, ErrDegraded):
		return "degraded"
	case errors.Is(err, ErrPersist):
		return "persist_error"
	case errors.Is(err, ErrDraining):
		return "draining"
	default:
		return "error"
	}
}

// reqSpans carries one HTTP request's trace track into the access path.
// A nil *reqSpans is inert, so the library path passes nil everywhere.
type reqSpans struct {
	tr  *obs.Tracer
	tid int64
	req *obs.Span
}

// spansFor opens the request's root span, on the track an incoming W3C
// traceparent pins (so spans from different services with the same trace
// id land on one Chrome-trace row) or on a fresh locally assigned one.
func (ro *reqObs) spansFor(op, traceparent string) *reqSpans {
	if ro.tracer == nil {
		return nil
	}
	tid, traceID, ok := parseTraceparent(traceparent)
	if !ok {
		tid = ro.nextTID.Add(1)
	}
	rs := &reqSpans{tr: ro.tracer, tid: tid}
	rs.req = ro.tracer.Begin(tid, "request", op)
	if ok {
		rs.req.Arg("trace_id", traceID)
	}
	return rs
}

// begin opens a child span on the request's track; nil-safe, so the
// access path calls it unconditionally through its nil receiver.
func (rs *reqSpans) begin(name string) *obs.Span {
	if rs == nil {
		return nil
	}
	return rs.tr.Begin(rs.tid, "serve", name)
}

// finish closes the request's root span (nil-safe).
func (rs *reqSpans) finish() {
	if rs == nil {
		return
	}
	rs.req.End()
}

// parseTraceparent extracts the trace id and a track id from a W3C
// traceparent header ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex
// flags>"). The track is the trace id's low 62 bits, so every span of
// one distributed trace shares a row in the viewer.
func parseTraceparent(h string) (tid int64, traceID string, ok bool) {
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || h[35] != '-' || h[52] != '-' {
		return 0, "", false
	}
	traceID = h[3:35]
	var v int64
	for i := 19; i < 35; i++ { // low 16 hex digits of the trace id
		c := traceID[i-3]
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		default:
			return 0, "", false
		}
		v = v<<4 | d
	}
	v &= 0x3FFFFFFFFFFFFFFF // keep it positive and clear of local tids
	if strings.Trim(traceID, "0") == "" {
		return 0, "", false // all-zero trace id is invalid per the spec
	}
	return v, traceID, true
}

// sloBuckets is each window's ring resolution: 15 rotating sub-buckets,
// so a 5m window expires in 20s steps.
const sloBuckets = 15

// sloErrorBudget is the allowed over-target fraction a p99 objective
// implies: burn rate = (observed over-target fraction) / 0.01, so burn
// 1.0 consumes the budget exactly, >1 burns it faster (§15.3).
const sloErrorBudget = 0.01

// sloCell is one (tenant, window, sub-bucket) counter pair. The stamp is
// the absolute bucket index; a writer observing a stale stamp rotates the
// cell (CAS so exactly one writer resets it).
type sloCell struct {
	stamp atomic.Int64
	total atomic.Uint64
	slow  atomic.Uint64
}

// sloWindow is one burn-rate window: a ring of sloBuckets cells per slot.
type sloWindow struct {
	dur       time.Duration
	bucketDur int64 // nanoseconds per sub-bucket
	cells     [][sloBuckets]sloCell
}

// sloTracker counts, per tenant, requests over the latency target inside
// each configured window. observe is lock-free (a stamp check plus two
// atomic adds per window); burn sums at scrape time.
type sloTracker struct {
	target  time.Duration
	now     func() time.Time
	windows []*sloWindow
}

func newSLOTracker(target time.Duration, windows []time.Duration, slots int, now func() time.Time) *sloTracker {
	t := &sloTracker{target: target, now: now}
	for _, d := range windows {
		w := &sloWindow{
			dur:       d,
			bucketDur: int64(d) / sloBuckets,
			cells:     make([][sloBuckets]sloCell, slots),
		}
		if w.bucketDur <= 0 {
			w.bucketDur = 1
		}
		t.windows = append(t.windows, w)
	}
	return t
}

func (t *sloTracker) observe(slot int, d time.Duration) {
	nanos := t.now().UnixNano()
	slow := d > t.target
	for _, w := range t.windows {
		idx := nanos / w.bucketDur
		cell := &w.cells[slot][int(idx)%sloBuckets]
		if s := cell.stamp.Load(); s != idx {
			if cell.stamp.CompareAndSwap(s, idx) {
				cell.total.Store(0)
				cell.slow.Store(0)
			}
		}
		cell.total.Add(1)
		if slow {
			cell.slow.Add(1)
		}
	}
}

// burn returns a tenant's burn rate over window wi: the over-target
// request fraction divided by the 1% budget. 0 with no traffic.
func (t *sloTracker) burn(slot, wi int) float64 {
	w := t.windows[wi]
	cur := t.now().UnixNano() / w.bucketDur
	var total, slow uint64
	for i := range w.cells[slot] {
		cell := &w.cells[slot][i]
		if stamp := cell.stamp.Load(); stamp > cur-sloBuckets && stamp <= cur {
			total += cell.total.Load()
			slow += cell.slow.Load()
		}
	}
	if total == 0 {
		return 0
	}
	return float64(slow) / float64(total) / sloErrorBudget
}

// windowLabel renders a window duration compactly for metric labels and
// health detail keys: zero trailing components drop ("5m0s" -> "5m",
// "1h0m0s" -> "1h").
func windowLabel(d time.Duration) string {
	s := d.String()
	if strings.HasSuffix(s, "m0s") {
		s = strings.TrimSuffix(s, "0s")
	}
	if strings.HasSuffix(s, "h0m") {
		s = strings.TrimSuffix(s, "0m")
	}
	return s
}
