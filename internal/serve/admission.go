package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// AdmissionConfig bounds what the HTTP layer admits (DESIGN.md §14.3).
// Each zero-valued field disables that limit; the zero value disables
// admission control entirely. Rejections use 429 + Retry-After — 503 is
// reserved for drain and degraded/persistence failures — so clients can
// tell "you are over your budget, back off" from "the server is sick".
type AdmissionConfig struct {
	// TenantRPS is each tenant's sustained requests-per-second budget,
	// enforced by a token bucket.
	TenantRPS float64
	// TenantBurst is the bucket depth (burst allowance). Default: max(
	// TenantRPS, 1).
	TenantBurst int
	// MaxInFlight caps concurrently executing requests across all
	// tenants; excess requests are shed immediately, never queued.
	MaxInFlight int
	// RequestTimeout is the per-request deadline applied to r.Context().
	RequestTimeout time.Duration
}

func (a AdmissionConfig) enabled() bool {
	return a.TenantRPS > 0 || a.MaxInFlight > 0 || a.RequestTimeout > 0
}

func (a AdmissionConfig) validate() error {
	if a.TenantRPS < 0 || math.IsNaN(a.TenantRPS) || math.IsInf(a.TenantRPS, 0) {
		return fmt.Errorf("serve: invalid tenant rps %v", a.TenantRPS)
	}
	if a.TenantBurst < 0 {
		return fmt.Errorf("serve: negative tenant burst %d", a.TenantBurst)
	}
	if a.MaxInFlight < 0 {
		return fmt.Errorf("serve: negative in-flight cap %d", a.MaxInFlight)
	}
	if a.RequestTimeout < 0 {
		return fmt.Errorf("serve: negative request timeout %s", a.RequestTimeout)
	}
	return nil
}

// ErrOverCapacity is the admission rejection (HTTP 429 + Retry-After).
var ErrOverCapacity = errors.New("serve: over capacity")

// bucket is one tenant's token bucket. Tokens accrue continuously at
// TenantRPS up to the burst depth; a request spends one.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// admission is the serve-layer overload guard: per-tenant token buckets
// plus a global in-flight cap. It is nil on a Cache with the zero
// AdmissionConfig, so the library access path never pays for it.
type admission struct {
	cfg      AdmissionConfig
	burst    float64
	now      func() time.Time // injectable for tests
	inflight atomic.Int64
	buckets  []bucket // indexed by tenant home slot
}

func newAdmission(cfg AdmissionConfig, slots int) *admission {
	burst := float64(cfg.TenantBurst)
	if burst < 1 {
		burst = cfg.TenantRPS
	}
	if burst < 1 {
		burst = 1
	}
	return &admission{
		cfg:     cfg,
		burst:   burst,
		now:     time.Now,
		buckets: make([]bucket, slots),
	}
}

// acquire claims an in-flight slot; false means the global cap is hit
// and the request must be shed (never queued).
func (a *admission) acquire() bool {
	if a.cfg.MaxInFlight <= 0 {
		a.inflight.Add(1)
		return true
	}
	for {
		cur := a.inflight.Load()
		if cur >= int64(a.cfg.MaxInFlight) {
			return false
		}
		if a.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (a *admission) release() { a.inflight.Add(-1) }

// allowTenant spends one token from the tenant's bucket. On rejection it
// returns how long until a token accrues (the Retry-After hint).
func (a *admission) allowTenant(slot int) (bool, time.Duration) {
	if a.cfg.TenantRPS <= 0 {
		return true, 0
	}
	b := &a.buckets[slot]
	now := a.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.tokens = a.burst
	} else if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * a.cfg.TenantRPS
	}
	if b.tokens > a.burst {
		b.tokens = a.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / a.cfg.TenantRPS * float64(time.Second))
	return false, wait
}

// retryAfterSeconds renders a Retry-After value: at least 1, rounded up.
func retryAfterSeconds(d time.Duration) string {
	s := int64(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

// InFlight reports the currently admitted request count (0 when
// admission is disabled).
func (c *Cache) InFlight() int64 {
	if c.adm == nil {
		return 0
	}
	return c.adm.inflight.Load()
}

// admit wraps an HTTP handler with the overload guards: the global
// in-flight cap, the per-tenant token bucket (when the route names a
// tenant), and the per-request deadline. Admission disabled returns the
// handler untouched.
func (c *Cache) admit(h http.HandlerFunc, tenantRoute bool) http.Handler {
	if c.adm == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !c.adm.acquire() {
			c.met.admRejectInflight()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "over capacity: in-flight limit", http.StatusTooManyRequests)
			return
		}
		defer c.adm.release()
		if tenantRoute {
			if slot, ok := c.tenants[r.PathValue("tenant")]; ok {
				if admitted, wait := c.adm.allowTenant(slot); !admitted {
					c.met.admRejectRate()
					w.Header().Set("Retry-After", retryAfterSeconds(wait))
					http.Error(w, "over capacity: tenant rate limit", http.StatusTooManyRequests)
					return
				}
			}
			// Unknown tenants fall through to the handler's 404.
		}
		if c.adm.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), c.adm.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	})
}
