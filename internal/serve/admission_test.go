package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"morphcache/internal/core"
	"morphcache/internal/topology"
)

func doReq(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	var r io.Reader
	if body != "" {
		r = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, r)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestTenantRateLimit(t *testing.T) {
	cfg := testConfig("alpha", "beta")
	cfg.Policy = nopPolicy{}
	cfg.Admission = AdmissionConfig{TenantRPS: 5, TenantBurst: 2}
	c := mustCache(t, cfg)
	now := time.Unix(1000, 0)
	c.adm.now = func() time.Time { return now }
	h := c.Handler()

	for i := 0; i < 2; i++ {
		if rec := doReq(h, "PUT", "/cache/alpha/k", "v"); rec.Code != http.StatusNoContent {
			t.Fatalf("burst request %d = %d, want 204", i, rec.Code)
		}
	}
	rec := doReq(h, "PUT", "/cache/alpha/k", "v")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget request = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	// Budgets are per tenant: beta is unaffected by alpha's exhaustion.
	if rec := doReq(h, "PUT", "/cache/beta/k", "v"); rec.Code != http.StatusNoContent {
		t.Fatalf("beta request = %d, want 204", rec.Code)
	}
	// Untenanted routes bypass the bucket.
	if rec := doReq(h, "GET", "/topology", ""); rec.Code != http.StatusOK {
		t.Fatalf("topology = %d, want 200", rec.Code)
	}
	// Tokens accrue with time.
	now = now.Add(time.Second)
	if rec := doReq(h, "GET", "/cache/alpha/k", ""); rec.Code != http.StatusOK {
		t.Fatalf("request after refill = %d, want 200", rec.Code)
	}
}

// TestInFlightCapUnderFlood holds the server at its in-flight cap with
// requests blocked mid-body, floods it with 2x capacity, and verifies
// the overflow sheds with 429 + Retry-After while the cap is never
// exceeded (the acceptance flood test).
func TestInFlightCapUnderFlood(t *testing.T) {
	const capN = 2
	cfg := testConfig("alpha")
	cfg.Policy = nopPolicy{}
	cfg.Admission = AdmissionConfig{MaxInFlight: capN}
	c := mustCache(t, cfg)
	h := c.Handler()

	var wg sync.WaitGroup
	var admitted atomic.Int64
	writers := make([]*io.PipeWriter, capN)
	// Fill the cap with PUTs whose bodies never finish.
	for i := range writers {
		pr, pw := io.Pipe()
		writers[i] = pw
		wg.Add(1)
		go func(i int, body io.Reader) {
			defer wg.Done()
			req := httptest.NewRequest("PUT", fmt.Sprintf("/cache/alpha/held%d", i), body)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code == http.StatusNoContent {
				admitted.Add(1)
			}
		}(i, pr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.InFlight() != capN {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight = %d, never reached cap %d", c.InFlight(), capN)
		}
		time.Sleep(time.Millisecond)
	}
	// Flood at 2x capacity: every extra request must shed immediately.
	for i := 0; i < 2*capN; i++ {
		rec := doReq(h, "GET", "/cache/alpha/held0", "")
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("flood request %d = %d, want 429", i, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
		if n := c.InFlight(); n > capN {
			t.Fatalf("in-flight %d exceeded cap %d", n, capN)
		}
	}
	// Release the held requests; capacity frees up and service resumes.
	for _, pw := range writers {
		pw.Close()
	}
	wg.Wait()
	if admitted.Load() != capN {
		t.Fatalf("admitted = %d, want %d", admitted.Load(), capN)
	}
	if rec := doReq(h, "PUT", "/cache/alpha/after", "v"); rec.Code != http.StatusNoContent {
		t.Fatalf("request after release = %d, want 204", rec.Code)
	}
	if c.InFlight() != 0 {
		t.Fatalf("in-flight = %d after drain, want 0", c.InFlight())
	}
}

func TestRequestDeadline(t *testing.T) {
	cfg := testConfig("alpha")
	cfg.Policy = nopPolicy{}
	cfg.Admission = AdmissionConfig{RequestTimeout: time.Nanosecond}
	c := mustCache(t, cfg)
	h := c.Handler()
	// The 1ns deadline has passed by the time the body is consumed; the
	// write must be rejected with 408, not applied.
	rec := doReq(h, "PUT", "/cache/alpha/slow", "v")
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("expired-deadline PUT = %d, want 408", rec.Code)
	}
	if _, err := c.Get("alpha", "slow"); err != ErrNotFound {
		t.Fatalf("timed-out write was applied: %v", err)
	}
}

func TestClientDisconnectIs400(t *testing.T) {
	c := mustCache(t, testConfig("alpha"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("PUT", "/cache/alpha/k", strings.NewReader("v")).WithContext(ctx)
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("canceled-client PUT = %d, want 400", rec.Code)
	}
}

func TestAdmissionValidation(t *testing.T) {
	for _, bad := range []AdmissionConfig{
		{TenantRPS: -1},
		{TenantBurst: -1},
		{MaxInFlight: -1},
		{RequestTimeout: -time.Second},
	} {
		cfg := testConfig("alpha")
		cfg.Admission = bad
		if _, err := New(cfg, nil); err == nil {
			t.Fatalf("invalid admission config %+v accepted", bad)
		}
	}
}

// flipPolicy regroups on every epoch, alternating merged and private, so
// concurrent readers race real repartitions.
type flipPolicy struct{ on bool }

func (p *flipPolicy) Name() string { return "test-flip" }

func (p *flipPolicy) EndEpoch(_ int, m core.Machine) (int, bool) {
	p.on = !p.on
	groups := [][]int{{0}, {1}, {2}, {3}}
	if p.on {
		groups = [][]int{{0, 1}, {2, 3}}
	}
	g, err := topology.FromGroups(4, groups)
	if err != nil {
		panic(err)
	}
	if err := m.SetTopology(topology.Topology{L2: g, L3: g}); err != nil {
		panic(err)
	}
	return 1, p.on
}

// TestStatusRacesRepartition hammers Status() and GET /topology while
// EndEpoch flips the partition map, with live traffic — run under -race
// this proves topology snapshots never observe a half-applied map.
func TestStatusRacesRepartition(t *testing.T) {
	cfg := testConfig("alpha", "beta")
	cfg.Policy = &flipPolicy{}
	c := mustCache(t, cfg)
	h := c.Handler()
	for i := 0; i < 64; i++ {
		c.Set("alpha", fmt.Sprintf("k%d", i), []byte("v"))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := c.Status()
				if st.Slots != 4 || len(st.Tenants) != 2 {
					panic(fmt.Sprintf("torn status: %+v", st))
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := doReq(h, "GET", "/topology", "")
				if rec.Code != http.StatusOK {
					panic(fmt.Sprintf("topology = %d", rec.Code))
				}
			}
		}()
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", i%64)
				c.Get("alpha", key)
				if i%7 == 0 {
					c.Set("beta", key, []byte("v"))
				}
			}
		}(w)
	}
	for e := 0; e < 200; e++ {
		c.EndEpoch()
	}
	close(stop)
	wg.Wait()
}
