package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"morphcache/internal/core"
	"morphcache/internal/obs"
)

// nopPolicy freezes the topology: no grants, private partitions forever.
type nopPolicy struct{}

func (nopPolicy) Name() string                           { return "static" }
func (nopPolicy) EndEpoch(int, core.Machine) (int, bool) { return 0, false }

// testConfig is a small, fast shape: 4 slots x 1 shard x 8 KiB per slot
// (128 lines of 8 ways), so a slot overflows after 128 distinct keys.
func testConfig(tenants ...string) Config {
	return Config{
		Tenants:   tenants,
		Slots:     4,
		Shards:    1,
		SlotBytes: 8 << 10,
		Ways:      8,
	}
}

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	c := mustCache(t, testConfig("alpha", "beta"))
	if err := c.Set("alpha", "k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("alpha", "k1")
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v; want v1", got, err)
	}
	// Tenants are namespaces: beta does not see alpha's key.
	if _, err := c.Get("beta", "k1"); err != ErrNotFound {
		t.Fatalf("cross-tenant Get err = %v, want ErrNotFound", err)
	}
	// Overwrite.
	if err := c.Set("alpha", "k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get("alpha", "k1"); string(got) != "v2" {
		t.Fatalf("after overwrite Get = %q, want v2", got)
	}
	if err := c.Delete("alpha", "k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("alpha", "k1"); err != ErrNotFound {
		t.Fatalf("Get after Delete err = %v, want ErrNotFound", err)
	}
	if err := c.Delete("alpha", "k1"); err != ErrNotFound {
		t.Fatalf("second Delete err = %v, want ErrNotFound", err)
	}
}

func TestErrorPaths(t *testing.T) {
	cfg := testConfig("alpha")
	cfg.MaxValueBytes = 16
	c := mustCache(t, cfg)
	if _, err := c.Get("nobody", "k"); err != ErrUnknownTenant {
		t.Fatalf("unknown tenant Get err = %v", err)
	}
	if err := c.Set("nobody", "k", nil); err != ErrUnknownTenant {
		t.Fatalf("unknown tenant Set err = %v", err)
	}
	if err := c.Delete("nobody", "k"); err != ErrUnknownTenant {
		t.Fatalf("unknown tenant Delete err = %v", err)
	}
	if err := c.Set("alpha", "k", make([]byte, 17)); err != ErrValueTooLarge {
		t.Fatalf("oversized Set err = %v", err)
	}
	if err := c.Set("alpha", "", []byte("v")); err != ErrEmptyKey {
		t.Fatalf("empty key err = %v", err)
	}
	if err := c.Set("alpha", "k", make([]byte, 16)); err != nil {
		t.Fatalf("at-limit Set err = %v", err)
	}
	c.Drain()
	if !c.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if _, err := c.Get("alpha", "k"); err != ErrDraining {
		t.Fatalf("draining Get err = %v", err)
	}
	if err := c.Set("alpha", "k2", nil); err != ErrDraining {
		t.Fatalf("draining Set err = %v", err)
	}
	if err := c.Delete("alpha", "k"); err != ErrDraining {
		t.Fatalf("draining Delete err = %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                           // no tenants
		{Tenants: []string{"a", "a"}},                // duplicate
		{Tenants: []string{""}},                      // empty name
		{Tenants: []string{"a/b"}},                   // slash
		{Tenants: []string{"a"}, Slots: 3},           // non-pow2 slots
		{Tenants: []string{"a"}, Slots: 64},          // over 32
		{Tenants: []string{"a"}, Shards: 3},          // non-pow2 shards
		{Tenants: []string{"a", "b", "c"}, Slots: 2}, // tenants > slots
	}
	for i, cfg := range bad {
		if _, err := New(cfg, nil); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestTenantIsolationStatic pins the paper's partition guarantee on the
// serving path: with a frozen private topology (no grants), one tenant's
// churn can never evict another tenant's lines.
func TestTenantIsolationStatic(t *testing.T) {
	cfg := testConfig("victim", "churner")
	cfg.Policy = nopPolicy{}
	c := mustCache(t, cfg)

	const resident = 64 // half the victim's 128-line slot
	for i := 0; i < resident; i++ {
		if err := c.Set("victim", fmt.Sprintf("v%03d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	occ, _ := c.OccupancyLines("victim")
	if occ != resident {
		t.Fatalf("victim occupancy = %d, want %d", occ, resident)
	}

	// Churn far past the churner's own capacity.
	for i := 0; i < 2000; i++ {
		if err := c.Set("churner", fmt.Sprintf("c%04d", i), []byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	if occ, _ = c.OccupancyLines("victim"); occ != resident {
		t.Fatalf("victim occupancy after churn = %d, want %d", occ, resident)
	}
	for i := 0; i < resident; i++ {
		if _, err := c.Get("victim", fmt.Sprintf("v%03d", i)); err != nil {
			t.Fatalf("victim key v%03d lost: %v", i, err)
		}
	}
	// The churner stayed inside its own slot.
	cocc, _ := c.OccupancyLines("churner")
	if cocc != 128 {
		t.Fatalf("churner occupancy = %d, want its full 128-line slot", cocc)
	}
}

// TestControllerGrantLifecycle drives the full serve-mode loop: a starved
// tenant's demand vector pushes its utilization past MSAT.High, the
// controller grants it the idle buddy slot (capacity merge), the tenant
// fills the grant, and when demand fades the stale-merge split takes the
// capacity back, evicting the lines stranded outside the shrunken
// partition.
func TestControllerGrantLifecycle(t *testing.T) {
	c := mustCache(t, testConfig("alpha", "beta"))

	hot := func(n int) {
		for i := 0; i < n; i++ {
			if err := c.Set("alpha", fmt.Sprintf("h%04d", i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Epoch 1: demand ~2x the 128-line slot.
	hot(256)
	if r, _ := c.EndEpoch(); r == 0 {
		t.Fatal("no reconfiguration despite 2x overload next to an idle buddy")
	}
	part, err := c.PartitionSlots("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(part) < 2 {
		t.Fatalf("alpha partition = %v, want a grant beyond its own slot", part)
	}
	if got := c.Spec(); got == "(1:1:4)" {
		t.Fatalf("spec still %s after merge", got)
	}

	// Epoch 2: alpha fills the grant; the merge stays justified.
	hot(256)
	occ, _ := c.OccupancyLines("alpha")
	if occ <= 128 {
		t.Fatalf("alpha occupancy = %d, did not use the granted capacity", occ)
	}
	c.EndEpoch()
	if part, _ = c.PartitionSlots("alpha"); len(part) < 2 {
		t.Fatalf("grant revoked while still hot: %v", part)
	}

	// Epoch 3: demand fades; the stale merge splits and strands evict.
	if r, _ := c.EndEpoch(); r == 0 {
		t.Fatal("idle epoch did not split the stale merge")
	}
	if part, _ = c.PartitionSlots("alpha"); len(part) != 1 {
		t.Fatalf("alpha partition = %v after idle epochs, want its own slot", part)
	}
	if occ, _ = c.OccupancyLines("alpha"); occ > 128 {
		t.Fatalf("alpha occupancy = %d lines with a 128-line partition", occ)
	}
	if got := c.Spec(); got != "(1:1:4)" {
		t.Fatalf("spec = %s after split, want (1:1:4)", got)
	}
}

// TestEpochDeterminism replays one op sequence against two identically
// configured caches with epoch boundaries at the same points and requires
// identical topology decisions — the serving analogue of the simulator's
// golden determinism gates. (The epoch clock is the caller's: EndEpoch is
// driven explicitly, so a fixed tick schedule reproduces exactly.)
func TestEpochDeterminism(t *testing.T) {
	run := func() []string {
		c := mustCache(t, testConfig("alpha", "beta", "gamma"))
		var specs []string
		for e := 0; e < 6; e++ {
			n := 300
			if e >= 3 {
				n = 10 // demand fades
			}
			for i := 0; i < n; i++ {
				c.Set("alpha", fmt.Sprintf("a%d-%d", e, i), []byte("v"))
			}
			for i := 0; i < 20; i++ {
				c.Set("beta", fmt.Sprintf("b%d", i), []byte("v"))
				c.Get("beta", fmt.Sprintf("b%d", i))
			}
			c.EndEpoch()
			specs = append(specs, c.Spec())
		}
		return specs
	}
	a, b := run(), run()
	if strings.Join(a, " ") != strings.Join(b, " ") {
		t.Fatalf("topology sequences diverge:\n  %v\n  %v", a, b)
	}
	// The sequence must actually exercise a reconfiguration.
	changed := false
	for _, s := range a {
		if s != "(1:1:4)" {
			changed = true
		}
	}
	if !changed {
		t.Fatalf("sequence never reconfigured: %v", a)
	}
}

// TestMetricsExport scrapes the registry and checks the per-tenant
// families the admin endpoint exposes.
func TestMetricsExport(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig("alpha", "beta")
	c, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	c.Set("alpha", "k", []byte("v"))
	c.Get("alpha", "k")
	c.Get("alpha", "missing")
	c.EndEpoch()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`morphserve_requests_total{op="get",outcome="hit",tenant="alpha"} 1`,
		`morphserve_requests_total{op="get",outcome="miss",tenant="alpha"} 1`,
		`morphserve_requests_total{op="set",outcome="stored",tenant="alpha"} 1`,
		`morphserve_tenant_occupancy_lines{tenant="alpha"} 1`,
		`morphserve_tenant_partition_lines{tenant="alpha"} 128`,
		`morphserve_tenant_partition_lines{tenant="beta"} 128`,
		`morphserve_epochs_total 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestPresenceConsistency cross-checks the shard presence indexes against
// slice contents and the store after heavy mixed traffic.
func TestPresenceConsistency(t *testing.T) {
	cfg := testConfig("alpha", "beta")
	cfg.Shards = 2
	cfg.SlotBytes = 16 << 10
	c := mustCache(t, cfg)
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("k%d", i%500)
		switch i % 5 {
		case 0, 1:
			c.Set("alpha", k, []byte("v"))
		case 2:
			c.Get("alpha", k)
		case 3:
			c.Set("beta", k, []byte("w"))
		case 4:
			c.Delete("alpha", k)
		}
		if i%700 == 0 {
			c.EndEpoch()
		}
	}
	total := 0
	for _, sh := range c.shards {
		if err := sh.pres.Check(); err != nil {
			t.Fatal(err)
		}
		lines := 0
		for _, sl := range sh.slices {
			lines += sl.ValidLines()
		}
		if lines != sh.pres.Len() {
			t.Fatalf("shard holds %d lines, presence index %d", lines, sh.pres.Len())
		}
		if len(sh.store) != sh.pres.Len() {
			t.Fatalf("store %d entries, presence index %d", len(sh.store), sh.pres.Len())
		}
		total += lines
	}
	var occ int64
	for i := range c.occupancy {
		occ += c.occupancy[i].Load()
	}
	if occ != int64(total) {
		t.Fatalf("occupancy gauges %d, resident lines %d", occ, total)
	}
}

// TestConcurrentTraffic drives mixed traffic from several goroutines with
// epoch reconfigurations interleaved, for the race detector: the shard
// locks, the all-shard EndEpoch path, the atomic occupancy gauges, and
// concurrent metric scrapes must all be clean.
func TestConcurrentTraffic(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig("alpha", "beta")
	cfg.Shards = 4
	cfg.SlotBytes = 32 << 10
	c, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := "alpha"
			if w%2 == 1 {
				tenant = "beta"
			}
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("w%d-%d", w, i%300)
				switch i % 4 {
				case 0, 1:
					c.Set(tenant, k, []byte("v"))
				case 2:
					c.Get(tenant, k)
				case 3:
					c.Delete(tenant, k)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			c.EndEpoch()
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	for _, sh := range c.shards {
		if err := sh.pres.Check(); err != nil {
			t.Fatal(err)
		}
	}
}
