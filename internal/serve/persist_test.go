package serve

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"morphcache/internal/core"
	"morphcache/internal/fault"
	"morphcache/internal/obs"
	"morphcache/internal/topology"
	"morphcache/internal/wal"
)

// persistConfig is testConfig plus a WAL in a fresh directory and the
// static policy (so epochs are deterministic).
func persistConfig(t *testing.T, tenants ...string) Config {
	t.Helper()
	cfg := testConfig(tenants...)
	cfg.Policy = nopPolicy{}
	cfg.Persist = &PersistConfig{Dir: t.TempDir()}
	return cfg
}

func TestPersistRestartRoundTrip(t *testing.T) {
	cfg := persistConfig(t, "alpha", "beta")
	c := mustCache(t, cfg)
	for i := 0; i < 20; i++ {
		if err := c.Set("alpha", fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Set("beta", "solo", []byte("b")); err != nil {
		t.Fatal(err)
	}
	// Overwrites and deletes must replay in order.
	if err := c.Set("alpha", "k03", []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("alpha", "k07"); err != nil {
		t.Fatal(err)
	}
	c.EndEpoch()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustCache(t, cfg)
	defer r.Close()
	if got := r.Epoch(); got != 1 {
		t.Fatalf("restored epoch = %d, want 1", got)
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%02d", i)
		want := fmt.Sprintf("v%02d", i)
		switch i {
		case 3:
			want = "rewritten"
		case 7:
			if _, err := r.Get("alpha", key); err != ErrNotFound {
				t.Fatalf("deleted key %s err = %v, want ErrNotFound", key, err)
			}
			continue
		}
		got, err := r.Get("alpha", key)
		if err != nil || string(got) != want {
			t.Fatalf("Get(alpha, %s) = %q, %v; want %q", key, got, err, want)
		}
	}
	if got, err := r.Get("beta", "solo"); err != nil || string(got) != "b" {
		t.Fatalf("Get(beta, solo) = %q, %v", got, err)
	}
	occ, _ := r.OccupancyLines("alpha")
	if occ != 19 {
		t.Fatalf("restored alpha occupancy = %d, want 19", occ)
	}
}

func TestPersistTornTailTruncated(t *testing.T) {
	cfg := persistConfig(t, "alpha")
	c := mustCache(t, cfg)
	for i := 0; i < 5; i++ {
		if err := c.Set("alpha", fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append: garbage bytes at the tail of the last
	// segment, as a crash mid-write would leave.
	seg := filepath.Join(cfg.Persist.Dir, "00000001.wal")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := obs.NewRegistry()
	r, err := New(cfg, reg)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer r.Close()
	for i := 0; i < 5; i++ {
		if _, err := r.Get("alpha", fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("key k%d lost after torn-tail repair: %v", i, err)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"morphserve_wal_replay_clean 0",
		"morphserve_wal_replay_records 5",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, buf.String())
		}
	}
	// The repaired log accepts appends and a clean reopen follows.
	if err := r.Set("alpha", "after", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := mustCache(t, cfg)
	defer r2.Close()
	if _, err := r2.Get("alpha", "after"); err != nil {
		t.Fatalf("post-repair append lost: %v", err)
	}
}

// mergeOncePolicy applies one fixed regrouping at the first epoch.
type mergeOncePolicy struct {
	groups [][]int
	fired  bool
}

func (p *mergeOncePolicy) Name() string { return "test-merge" }

func (p *mergeOncePolicy) EndEpoch(_ int, m core.Machine) (int, bool) {
	if p.fired {
		return 0, false
	}
	p.fired = true
	g, err := topology.FromGroups(4, p.groups)
	if err != nil {
		panic(err)
	}
	if err := m.SetTopology(topology.Topology{L2: g, L3: g}); err != nil {
		panic(err)
	}
	return 1, false
}

func TestPersistCompactionRestoresGrants(t *testing.T) {
	cfg := persistConfig(t, "alpha", "beta")
	cfg.Policy = &mergeOncePolicy{groups: [][]int{{0, 1}, {2}, {3}}}
	c := mustCache(t, cfg)
	for i := 0; i < 10; i++ {
		if err := c.Set("alpha", fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if r, _ := c.EndEpoch(); r != 1 {
		t.Fatalf("EndEpoch reconfigs = %d, want 1", r)
	}
	wantPart, err := c.PartitionSlots("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(wantPart) != 2 {
		t.Fatalf("alpha partition = %v, want 2 slots", wantPart)
	}
	// Reconfiguration compacts the log to one snapshot segment.
	if n := c.wal.SegmentCount(); n != 1 {
		t.Fatalf("segments after compaction = %d, want 1", n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart under the static policy: the grant must come back from the
	// snapshot, not from re-running the controller.
	cfg.Policy = nopPolicy{}
	r := mustCache(t, cfg)
	defer r.Close()
	gotPart, err := r.PartitionSlots("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(gotPart) != fmt.Sprint(wantPart) {
		t.Fatalf("restored partition = %v, want %v", gotPart, wantPart)
	}
	if got := r.Epoch(); got != 1 {
		t.Fatalf("restored epoch = %d, want 1", got)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Get("alpha", fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("key k%d lost across compaction+restart: %v", i, err)
		}
	}
}

func TestPersistDegradedModeAndRecovery(t *testing.T) {
	cfg := persistConfig(t, "alpha")
	cfg.Faults = &fault.Plan{Events: []fault.Event{
		{Epoch: 1, Kind: fault.WALWriteErr, Duration: 1},
	}}
	c := mustCache(t, cfg)
	defer c.Close()
	if err := c.Set("alpha", "before", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.EndEpoch() // applies the fault; the epoch probe append fails (1)
	var sawPersist bool
	for i := 0; i < walFailThreshold; i++ {
		err := c.Set("alpha", "during", []byte("v"))
		if errors.Is(err, ErrPersist) {
			sawPersist = true
			continue
		}
		if errors.Is(err, ErrDegraded) {
			break
		}
		t.Fatalf("Set under WAL fault err = %v, want ErrPersist or ErrDegraded", err)
	}
	if !sawPersist {
		t.Fatal("no Set surfaced ErrPersist before degradation")
	}
	if !c.Degraded() {
		t.Fatal("cache not degraded after persistent WAL failure")
	}
	if err := c.Set("alpha", "rejected", []byte("v")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded Set err = %v, want ErrDegraded", err)
	}
	// Reads keep serving: degradation is read-mostly, not an outage.
	if _, err := c.Get("alpha", "before"); err != nil {
		t.Fatalf("degraded Get err = %v", err)
	}
	// The fault window closes at the next epoch; the boundary append is
	// the recovery probe.
	c.EndEpoch()
	if c.Degraded() {
		t.Fatal("cache still degraded after fault window closed")
	}
	if err := c.Set("alpha", "after", []byte("v")); err != nil {
		t.Fatalf("Set after recovery err = %v", err)
	}
}

func TestShardStallShedsAndExpires(t *testing.T) {
	cfg := testConfig("alpha") // no WAL: faults work on volatile caches too
	cfg.Policy = nopPolicy{}
	cfg.Faults = &fault.Plan{Events: []fault.Event{
		{Epoch: 1, Kind: fault.ShardStall, Slice: 0, Duration: 1},
	}}
	c := mustCache(t, cfg)
	if err := c.Set("alpha", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.EndEpoch()
	if _, err := c.Get("alpha", "k"); !errors.Is(err, ErrShardStalled) {
		t.Fatalf("stalled Get err = %v, want ErrShardStalled", err)
	}
	if err := c.Set("alpha", "k2", []byte("v")); !errors.Is(err, ErrShardStalled) {
		t.Fatalf("stalled Set err = %v, want ErrShardStalled", err)
	}
	c.EndEpoch()
	if _, err := c.Get("alpha", "k"); err != nil {
		t.Fatalf("Get after stall expiry err = %v", err)
	}
}

func TestPersistSkipsRemovedTenant(t *testing.T) {
	cfg := persistConfig(t, "alpha", "beta")
	c := mustCache(t, cfg)
	if err := c.Set("alpha", "keep", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("beta", "drop", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart with beta removed from the configuration: its records are
	// skipped, alpha's replay.
	cfg2 := cfg
	cfg2.Tenants = []string{"alpha"}
	reg := obs.NewRegistry()
	r, err := New(cfg2, reg)
	if err != nil {
		t.Fatalf("reopen without beta: %v", err)
	}
	defer r.Close()
	if _, err := r.Get("alpha", "keep"); err != nil {
		t.Fatalf("alpha key lost: %v", err)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "morphserve_wal_replay_skipped_records 1") {
		t.Fatalf("skip not reported:\n%s", buf.String())
	}
}

func TestGroupingEncodeDecode(t *testing.T) {
	for _, groups := range [][][]int{
		{{0}, {1}, {2}, {3}},
		{{0, 1}, {2}, {3}},
		{{0, 2}, {1, 3}},
		{{0, 1, 2, 3}},
	} {
		g, err := topology.FromGroups(4, groups)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeGrouping(encodeGrouping(g), 4)
		if err != nil {
			t.Fatalf("decode(%v): %v", groups, err)
		}
		if !got.Equal(g) {
			t.Fatalf("grouping %v did not round-trip: got %v", g, got)
		}
	}
	if _, err := decodeGrouping([]byte{8, 0, 0, 0, 0, 0, 0, 0, 0}, 4); err == nil {
		t.Fatal("slot-count mismatch not rejected")
	}
	if _, err := decodeGrouping([]byte{4, 0, 9, 0, 0}, 4); err == nil {
		t.Fatal("out-of-range group id not rejected")
	}
}

func TestKeyTooLongRejected(t *testing.T) {
	c := mustCache(t, testConfig("alpha"))
	long := strings.Repeat("k", maxKeyBytes+1)
	if err := c.Set("alpha", long, []byte("v")); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("Set err = %v, want ErrKeyTooLong", err)
	}
	if err := c.Delete("alpha", long); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("Delete err = %v, want ErrKeyTooLong", err)
	}
}

func TestPersistConfigValidation(t *testing.T) {
	cfg := testConfig("alpha")
	cfg.Persist = &PersistConfig{}
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("empty WAL dir accepted")
	}
	cfg.Persist = &PersistConfig{Dir: t.TempDir(), Fsync: wal.FsyncPolicy(9)}
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("bogus fsync policy accepted")
	}
}

func TestCloseWithoutPersist(t *testing.T) {
	c := mustCache(t, testConfig("alpha"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
