package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"morphcache/internal/obs"
)

// fixedClock returns an injectable clock pinned to one instant, so audit
// timestamps (and with them /decisions bodies) reproduce exactly.
func fixedClock() func() time.Time {
	at := time.Unix(1700000000, 0).UTC()
	return func() time.Time { return at }
}

// driveMerge overloads alpha (~2x its 128-line slot) and closes the
// epoch, forcing at least one capacity decision.
func driveMerge(t *testing.T, c *Cache) {
	t.Helper()
	for i := 0; i < 256; i++ {
		if err := c.Set("alpha", fmt.Sprintf("h%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if r, _ := c.EndEpoch(); r == 0 {
		t.Fatal("no reconfiguration despite 2x overload next to an idle buddy")
	}
}

func TestDecisionsByteIdentical(t *testing.T) {
	run := func() []byte {
		cfg := testConfig("alpha", "beta")
		cfg.Obs.Now = fixedClock()
		c := mustCache(t, cfg)
		driveMerge(t, c)
		srv := httptest.NewServer(c.Handler())
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/decisions")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/decisions status = %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("/decisions bodies differ across identical runs:\n%s\n----\n%s", a, b)
	}
	// The body must carry at least one decision with the full audit
	// schema: a rule from the taxonomy and the granted-slot delta.
	s := string(a)
	if !strings.Contains(s, `"rule": "capacity"`) {
		t.Fatalf("no capacity decision in body:\n%s", s)
	}
	if !strings.Contains(s, `"slot_delta"`) || !strings.Contains(s, `"alpha"`) {
		t.Fatalf("decision carries no per-tenant slot delta:\n%s", s)
	}
	if !strings.Contains(s, `"time_unix_nano": 1700000000000000000`) {
		t.Fatalf("audit timestamp not from the injected clock:\n%s", s)
	}
}

func TestDecisionsRecordFields(t *testing.T) {
	cfg := testConfig("alpha", "beta")
	cfg.Obs.Now = fixedClock()
	c := mustCache(t, cfg)
	driveMerge(t, c)
	recs := c.Decisions(0)
	if len(recs) == 0 {
		t.Fatal("no decisions recorded")
	}
	first := recs[0]
	if first.Seq != 1 || first.Epoch != 1 || first.Op != "merge" || first.Rule != "capacity" {
		t.Fatalf("unexpected first decision %+v", first)
	}
	if first.Groups == "" || first.UtilA == 0 {
		t.Fatalf("decision missing inputs: %+v", first)
	}
	// The serving partition is the L2 grouping, so the L2 operation of
	// the coupled merge carries alpha's granted-slot delta (the L3 half
	// changes no partition and carries none). A capacity merge pools
	// capacity, so every member of the merged group gains.
	granted := false
	for _, rec := range recs {
		if rec.Level == "L2" && rec.SlotDelta["alpha"] >= 1 {
			granted = true
		}
	}
	if !granted {
		t.Fatalf("no L2 decision granting alpha slots: %+v", recs)
	}
}

func TestAuditRingOverwrite(t *testing.T) {
	r := newAuditRing(4)
	for i := 0; i < 10; i++ {
		r.push(DecisionRecord{Epoch: i})
	}
	if got := r.total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
	recs := r.snapshot(0)
	if len(recs) != 4 {
		t.Fatalf("snapshot kept %d records, want capacity 4", len(recs))
	}
	for i, rec := range recs {
		wantSeq := uint64(7 + i)
		if rec.Seq != wantSeq || rec.Epoch != int(wantSeq-1) {
			t.Fatalf("record %d = seq %d epoch %d, want seq %d (oldest-first)",
				i, rec.Seq, rec.Epoch, wantSeq)
		}
	}
	if recs = r.snapshot(2); len(recs) != 2 || recs[0].Seq != 9 || recs[1].Seq != 10 {
		t.Fatalf("snapshot(2) = %+v, want the last two", recs)
	}
}

// TestEventsSSEMidStream subscribes to /events over a real server, then
// forces a decision and requires the subscriber to receive it live.
func TestEventsSSEMidStream(t *testing.T) {
	cfg := testConfig("alpha", "beta")
	cfg.Obs.Now = fixedClock()
	c := mustCache(t, cfg)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("content type = %q", got)
	}
	sc := bufio.NewScanner(resp.Body)
	// The opening comment proves the stream is live before the decision
	// is emitted — the event below cannot have been buffered at connect.
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), ":") {
		t.Fatalf("no opening comment, got %q (err %v)", sc.Text(), sc.Err())
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		driveMerge(t, c)
	}()

	var event, data string
	deadline := time.After(5 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
scan:
	for {
		select {
		case <-deadline:
			t.Fatal("no decision event within 5s")
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before a decision event")
			}
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: ") && event == "decision":
				data = strings.TrimPrefix(line, "data: ")
				break scan
			}
		}
	}
	<-done
	if !strings.Contains(data, `"rule":"capacity"`) {
		t.Fatalf("decision event data = %s, want a capacity rule", data)
	}
}

func TestEventHubSlowSubscriberDrops(t *testing.T) {
	h := newEventHub()
	ch, cancel := h.subscribe()
	defer cancel()
	for i := 0; i < subscriberBuffer+10; i++ {
		h.publish("decision", DecisionRecord{Seq: uint64(i)})
	}
	// The publisher must not have blocked; the buffer holds the first
	// subscriberBuffer events and the rest were dropped.
	if n := len(ch); n != subscriberBuffer {
		t.Fatalf("buffered %d events, want %d", n, subscriberBuffer)
	}
}

// TestServeRegistryPrometheusValid scrapes the full serve registry — the
// PR-8 families plus the request-level ones — through the validator.
func TestServeRegistryPrometheusValid(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig("alpha", "beta")
	cfg.Persist = &PersistConfig{Dir: t.TempDir()}
	cfg.Admission = AdmissionConfig{TenantRPS: 1000, MaxInFlight: 64}
	cfg.Obs = ObsConfig{
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		SLOTargetP99: 5 * time.Millisecond,
		Tracer:       obs.NewTracer(nil),
		Now:          fixedClock(),
	}
	c, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	driveMerge(t, c)
	c.Get("alpha", "h0001")
	c.Get("beta", "absent")
	c.Delete("alpha", "h0002")
	// Exercise the HTTP layer so the histograms and class counters have
	// samples.
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	http.Get(srv.URL + "/cache/alpha/h0003")
	http.Get(srv.URL + "/cache/nosuch/k")

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	n, err := obs.ValidatePrometheusText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	if n < 60 {
		t.Fatalf("only %d samples; the full serve registry should export far more", n)
	}
	for _, fam := range []string{
		"morphserve_requests_total", "morphserve_evictions_total",
		"morphserve_hash_collisions_total", "morphserve_tenant_occupancy_lines",
		"morphserve_tenant_partition_lines", "morphserve_epochs_total",
		"morphserve_reconfigurations_total", "morphserve_repartitions_total",
		"morphserve_wal_appends_total", "morphserve_wal_append_errors_total",
		"morphserve_wal_compactions_total", "morphserve_wal_segments",
		"morphserve_wal_replay_records", "morphserve_admission_rejected_total",
		"morphserve_shard_stalled_total", "morphserve_faults_applied_total",
		"morphserve_internal_errors_total", "morphserve_degraded",
		"morphserve_inflight_requests",
		"morphserve_request_duration_microseconds",
		"morphserve_http_responses_total", "morphserve_http_inflight_requests",
		"morphserve_slo_burn_rate", "morphserve_decisions_total",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("family %s missing from exposition", fam)
		}
	}
}

// TestRetryAfterShedSources walks every shed path and checks the
// Retry-After contract: stall/persist say 1s, degraded says the epoch
// interval, admission says its token math, draining says nothing (the
// instance is leaving; clients should re-resolve).
func TestRetryAfterShedSources(t *testing.T) {
	cfg := testConfig("alpha", "beta")
	cfg.EpochInterval = 7 * time.Second
	c := mustCache(t, cfg)
	cases := []struct {
		name       string
		err        error
		status     int
		retryAfter string
	}{
		{"stall", ErrShardStalled, http.StatusServiceUnavailable, "1"},
		{"persist", ErrPersist, http.StatusServiceUnavailable, "1"},
		{"degraded", ErrDegraded, http.StatusServiceUnavailable, "7"},
		{"draining", ErrDraining, http.StatusServiceUnavailable, ""},
		{"wrapped persist", fmt.Errorf("%w: disk gone", ErrPersist), http.StatusServiceUnavailable, "1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			c.writeErr(rec, tc.err)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d", rec.Code, tc.status)
			}
			if got := rec.Header().Get("Retry-After"); got != tc.retryAfter {
				t.Fatalf("Retry-After = %q, want %q", got, tc.retryAfter)
			}
		})
	}

	t.Run("admission in-flight cap", func(t *testing.T) {
		acfg := testConfig("alpha")
		acfg.Admission = AdmissionConfig{MaxInFlight: 1}
		ac := mustCache(t, acfg)
		if !ac.adm.acquire() { // pin the only slot
			t.Fatal("could not pin the in-flight slot")
		}
		defer ac.adm.release()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/cache/alpha/k", nil)
		ac.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") != "1" {
			t.Fatalf("in-flight shed: status %d Retry-After %q, want 429 + 1",
				rec.Code, rec.Header().Get("Retry-After"))
		}
	})

	t.Run("admission token bucket", func(t *testing.T) {
		acfg := testConfig("alpha")
		acfg.Admission = AdmissionConfig{TenantRPS: 0.25, TenantBurst: 1}
		ac := mustCache(t, acfg)
		h := ac.Handler()
		first := httptest.NewRecorder()
		h.ServeHTTP(first, httptest.NewRequest("GET", "/cache/alpha/k", nil))
		if first.Code == http.StatusTooManyRequests {
			t.Fatal("first request should spend the burst token, not be shed")
		}
		second := httptest.NewRecorder()
		h.ServeHTTP(second, httptest.NewRequest("GET", "/cache/alpha/k", nil))
		if second.Code != http.StatusTooManyRequests {
			t.Fatalf("second request status = %d, want 429", second.Code)
		}
		if ra := second.Header().Get("Retry-After"); ra == "" || ra == "0" {
			t.Fatalf("token-bucket shed Retry-After = %q, want a positive hint", ra)
		}
	})
}

func TestRequestSpansFromTraceparent(t *testing.T) {
	var clock int64
	tr := obs.NewTracer(func() int64 { clock += 10; return clock })
	cfg := testConfig("alpha", "beta")
	cfg.Obs = ObsConfig{Tracer: tr, Now: fixedClock()}
	c := mustCache(t, cfg)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	put, _ := http.NewRequest("PUT", srv.URL+"/cache/alpha/k1", strings.NewReader("v1"))
	put.Header.Set("traceparent", parent)
	if resp, err := http.DefaultClient.Do(put); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: %v status %v", err, resp.Status)
	}
	get, _ := http.NewRequest("GET", srv.URL+"/cache/alpha/k1", nil)
	get.Header.Set("traceparent", parent)
	if resp, err := http.DefaultClient.Do(get); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: %v status %v", err, resp.Status)
	}

	events := tr.Events()
	byName := map[string]int{}
	var reqTID int64
	for _, ev := range events {
		byName[ev.Name]++
		if ev.Cat == "request" {
			reqTID = ev.TID
		}
	}
	for _, want := range []string{"set", "get", "shard_lock_wait", "store_access"} {
		if byName[want] == 0 {
			t.Fatalf("span %q missing; events: %v", want, byName)
		}
	}
	// All spans of a traceparent-pinned request share the trace id's
	// track, so the child spans nest under the request row.
	wantTID := int64(uint64(0xa3ce929d0e0e4736) & 0x3FFFFFFFFFFFFFFF)
	if reqTID != wantTID {
		t.Fatalf("request track = %#x, want traceparent-derived %#x", reqTID, wantTID)
	}
	for _, ev := range events {
		if ev.TID != wantTID {
			t.Fatalf("span %s on track %#x, want %#x", ev.Name, ev.TID, wantTID)
		}
	}
}

func TestParseTraceparent(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", true},
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", false}, // all-zero trace id
		{"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", false}, // bad hex in low bits
		{"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", false},    // wrong shape
		{"", false},
		{"garbage", false},
	}
	for _, tc := range cases {
		if _, _, ok := parseTraceparent(tc.in); ok != tc.ok {
			t.Errorf("parseTraceparent(%q) ok = %v, want %v", tc.in, ok, tc.ok)
		}
	}
}

func TestSLOBurnRate(t *testing.T) {
	at := time.Unix(1700000000, 0)
	now := func() time.Time { return at }
	tr := newSLOTracker(time.Millisecond, []time.Duration{5 * time.Minute}, 4, now)
	for i := 0; i < 98; i++ {
		tr.observe(0, 100*time.Microsecond)
	}
	tr.observe(0, 5*time.Millisecond)
	tr.observe(0, 5*time.Millisecond)
	// 2 of 100 over target against a 1% budget: burn rate 2.0.
	if got := tr.burn(0, 0); got < 1.99 || got > 2.01 {
		t.Fatalf("burn = %v, want 2.0", got)
	}
	if got := tr.burn(1, 0); got != 0 {
		t.Fatalf("idle tenant burn = %v, want 0", got)
	}
	// Advance past the window: the buckets expire and burn drops to 0.
	at = at.Add(6 * time.Minute)
	if got := tr.burn(0, 0); got != 0 {
		t.Fatalf("burn after window expiry = %v, want 0", got)
	}
}

func TestWindowLabel(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"5m", "5m"}, {"1h", "1h"}, {"30s", "30s"}, {"90s", "1m30s"},
	} {
		d, err := time.ParseDuration(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if got := windowLabel(d); got != tc.want {
			t.Errorf("windowLabel(%s) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestStructuredLogs checks the three always-on log classes (decision,
// degradation via fault injection, fault application) and the sampled
// access class.
func TestStructuredLogs(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig("alpha", "beta")
	cfg.Obs = ObsConfig{
		Logger:         slog.New(slog.NewJSONHandler(&buf, nil)),
		AccessLogEvery: 2,
		Now:            fixedClock(),
	}
	c := mustCache(t, cfg)
	driveMerge(t, c)
	out := buf.String()
	if !strings.Contains(out, `"msg":"decision"`) || !strings.Contains(out, `"rule":"capacity"`) {
		t.Fatalf("no decision log line:\n%s", out)
	}
	// 256 sets sampled 1-in-2: access lines present and rate-limited.
	accesses := strings.Count(out, `"msg":"access"`)
	if accesses < 100 || accesses > 140 {
		t.Fatalf("access lines = %d, want ~128 (1-in-2 of 256)", accesses)
	}
}

func TestHealthDetailView(t *testing.T) {
	cfg := testConfig("alpha", "beta")
	cfg.Obs = ObsConfig{SLOTargetP99: 5 * time.Millisecond, Now: fixedClock()}
	c := mustCache(t, cfg)
	driveMerge(t, c)
	v := c.HealthDetail()
	if v.Epoch != 1 || v.Decisions == 0 || v.Spec == "(1:1:4)" {
		t.Fatalf("health view %+v, want post-merge state", v)
	}
	if len(v.SLO) != 2 {
		t.Fatalf("SLO rows = %d, want one per tenant", len(v.SLO))
	}
	if v.SLO[0].TargetP99Micros != 5000 {
		t.Fatalf("SLO target = %d µs, want 5000", v.SLO[0].TargetP99Micros)
	}
	if _, ok := v.SLO[0].BurnRate["5m"]; !ok {
		t.Fatalf("SLO burn windows = %v, want a 5m window", v.SLO[0].BurnRate)
	}
}

// TestObservedPathStillServes sanity-checks the fully instrumented
// configuration end to end: logging, SLO, tracing, and audit on at once.
func TestObservedPathStillServes(t *testing.T) {
	cfg := testConfig("alpha", "beta")
	cfg.Obs = ObsConfig{
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		SLOTargetP99: time.Millisecond,
		Tracer:       obs.NewTracer(nil),
		Now:          fixedClock(),
	}
	c := mustCache(t, cfg)
	if err := c.Set("alpha", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Get("alpha", "k"); err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := c.Delete("alpha", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("alpha", "k"); err != ErrNotFound {
		t.Fatalf("after delete err = %v", err)
	}
}
