package serve

import (
	"errors"
	"fmt"
	"time"

	"morphcache/internal/topology"
	"morphcache/internal/wal"
)

// PersistConfig enables write-ahead-log persistence (DESIGN.md §14).
// With persistence on, every acknowledged Set/Delete is logged before it
// is applied — under FsyncAlways it is on disk before the client hears
// 204 — and NewServeCache replays the log to rebuild values, the epoch
// counter, and the controller's partition grants after a restart.
type PersistConfig struct {
	// Dir is the log directory (created if missing). Required.
	Dir string
	// Fsync is the durability policy. Default wal.FsyncAlways: every
	// acknowledged write survives kill -9.
	Fsync wal.FsyncPolicy
	// FsyncInterval is the wal.FsyncInterval cadence. Default 100ms.
	FsyncInterval time.Duration
	// SegmentBytes rolls log segments past this size. Default 16 MiB.
	SegmentBytes int64
}

// walFailThreshold is how many consecutive WAL failures drop the server
// to read-mostly degraded mode. The first failures surface as ErrPersist
// (one flaky write is not an outage); persistent failure stops burning
// latency on a dead disk and sheds writes outright.
const walFailThreshold = 3

// errors of the persistence/robustness layer.
var (
	// ErrPersist reports a write whose WAL append failed: the write was
	// NOT applied and the client must retry (HTTP 503).
	ErrPersist = errors.New("serve: persistence failure")
	// ErrDegraded rejects writes while the server is in read-mostly
	// degraded mode after persistent WAL failure (HTTP 503). Reads still
	// serve; the server probes the log at each epoch and recovers
	// automatically when appends succeed again.
	ErrDegraded = errors.New("serve: degraded (read-mostly)")
	// ErrShardStalled sheds an operation whose shard is stalled by an
	// injected fault (HTTP 503 + Retry-After).
	ErrShardStalled = errors.New("serve: shard stalled")
	// ErrKeyTooLong rejects keys over 64 KiB (the WAL record bound; also
	// a sane HTTP path bound) with HTTP 414.
	ErrKeyTooLong = errors.New("serve: key too long")
)

// maxKeyBytes is the largest accepted key (the WAL's u16 key-length bound).
const maxKeyBytes = 65535

func (p *PersistConfig) validate() error {
	if p == nil {
		return nil
	}
	if p.Dir == "" {
		return errors.New("serve: persistence enabled without a directory")
	}
	if p.Fsync < wal.FsyncAlways || p.Fsync > wal.FsyncNever {
		return fmt.Errorf("serve: unknown fsync policy %d", int(p.Fsync))
	}
	if p.FsyncInterval < 0 {
		return fmt.Errorf("serve: negative fsync interval %s", p.FsyncInterval)
	}
	if p.SegmentBytes < 0 {
		return fmt.Errorf("serve: negative segment size %d", p.SegmentBytes)
	}
	return nil
}

// openWAL opens the log, replaying any existing records into the cache:
// sets and deletes rebuild the stores, epoch/snapshot markers restore the
// epoch counter and the partition grants. Records for tenants no longer
// configured (or values over the current bound) are skipped, not fatal —
// a config change must not brick the log.
func (c *Cache) openWAL() error {
	p := c.cfg.Persist
	log, stats, err := wal.Open(p.Dir, wal.Options{
		Fsync:         p.Fsync,
		Interval:      p.FsyncInterval,
		SegmentBytes:  p.SegmentBytes,
		MaxValueBytes: c.cfg.MaxValueBytes,
	}, c.applyReplay)
	if err != nil {
		return fmt.Errorf("serve: wal replay: %w", err)
	}
	c.wal = log
	c.met.replayDone(stats)
	c.met.walSegments.Set(int64(log.SegmentCount()))
	return nil
}

// applyReplay applies one logged record during NewServeCache recovery.
func (c *Cache) applyReplay(r wal.Record) error {
	switch r.Kind {
	case wal.KindSet:
		slot, ok := c.tenants[r.Tenant]
		if !ok || len(r.Value) > c.cfg.MaxValueBytes || r.Key == "" || len(r.Key) > maxKeyBytes {
			return wal.SkipRecord
		}
		h := hashKey(r.Key)
		sh := c.shardOf(h)
		sh.mu.Lock()
		c.setLocked(sh, slot, int((h>>48)&uint64(len(c.shards)-1)), h, r.Key, r.Value)
		sh.mu.Unlock()
	case wal.KindDelete:
		slot, ok := c.tenants[r.Tenant]
		if !ok || r.Key == "" {
			return wal.SkipRecord
		}
		h := hashKey(r.Key)
		sh := c.shardOf(h)
		sh.mu.Lock()
		c.deleteLocked(sh, slot, int((h>>48)&uint64(len(c.shards)-1)), h, r.Key)
		sh.mu.Unlock()
	case wal.KindEpoch, wal.KindSnapshotBegin:
		c.epoch = int(r.Epoch)
		g, err := decodeGrouping(r.Value, c.cfg.Slots)
		if err != nil {
			// A grouping logged under a different slot count cannot be
			// restored; values still replay into default partitions.
			return wal.SkipRecord
		}
		if g.Equal(c.topo.L2) {
			return nil
		}
		t := topology.Topology{L2: g, L3: g}
		if err := (machine{c}).SetTopology(t); err != nil {
			return wal.SkipRecord
		}
	case wal.KindSnapshotEnd:
		// Compaction bracket; nothing to apply.
	}
	return nil
}

// walAppendLocked logs one record on the write path (the caller holds
// the record's shard lock, so replay order matches apply order). A
// failure counts toward the degradation threshold; success resets it.
func (c *Cache) walAppendLocked(r wal.Record) error {
	if err := c.wal.Append(r); err != nil {
		c.met.walAppendErr()
		if c.walFails.Add(1) >= walFailThreshold {
			c.setDegraded(true)
		}
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	c.walFails.Store(0)
	c.met.walAppend()
	return nil
}

// walEndEpochLocked persists the epoch boundary (all shard locks held).
// An epoch that repartitioned capacity triggers snapshot compaction —
// the log is rewritten as the live state under the new grants — while a
// quiet epoch just appends a marker carrying the grouping. Either write
// doubles as the recovery probe: a success in degraded mode lifts the
// server back to read-write.
func (c *Cache) walEndEpochLocked(reconfigs int) {
	state := encodeGrouping(c.topo.L2)
	var err error
	if reconfigs > 0 {
		err = c.wal.Compact(uint64(c.epoch), state, func(emit func(tenant, key string, value []byte) error) error {
			for _, sh := range c.shards {
				for gl, e := range sh.store {
					if err := emit(c.names[int(gl.ASID)-1], e.key, e.val); err != nil {
						return err
					}
				}
			}
			return nil
		})
	} else {
		err = c.wal.Append(wal.Record{Kind: wal.KindEpoch, Epoch: uint64(c.epoch), Value: state})
	}
	if err != nil {
		c.met.walAppendErr()
		if c.walFails.Add(1) >= walFailThreshold {
			c.setDegraded(true)
		}
		return
	}
	if reconfigs > 0 {
		c.met.walCompactions.Inc()
	} else {
		c.met.walAppend()
	}
	c.walFails.Store(0)
	c.setDegraded(false)
	c.met.walSegments.Set(int64(c.wal.SegmentCount()))
}

// setDegraded flips read-mostly mode and its gauge (idempotent). Each
// transition is published to /events subscribers and, with a logger
// configured, logged — entering degraded mode at Warn, recovering at
// Info.
func (c *Cache) setDegraded(on bool) {
	if c.degraded.Swap(on) != on {
		if on {
			c.met.degraded.Set(1)
		} else {
			c.met.degraded.Set(0)
		}
		c.hub.publish("degraded", degradedEvent{On: on})
		if c.slog != nil {
			if on {
				c.slog.Warn("degraded", "on", true,
					"reason", "consecutive WAL append failures", "threshold", walFailThreshold)
			} else {
				c.slog.Info("degraded", "on", false, "reason", "WAL probe append succeeded")
			}
		}
	}
}

// Degraded reports whether the server is in read-mostly degraded mode.
func (c *Cache) Degraded() bool { return c.degraded.Load() }

// Close syncs and closes the write-ahead log (a no-op without
// persistence). Callers should Drain first so no writes race the close.
func (c *Cache) Close() error {
	if c.wal == nil {
		return nil
	}
	return c.wal.Close()
}

// encodeGrouping packs a slot grouping for an epoch record: the slot
// count, then each slot's group id.
func encodeGrouping(g topology.Grouping) []byte {
	b := make([]byte, 1+g.N())
	b[0] = byte(g.N())
	for s := 0; s < g.N(); s++ {
		b[1+s] = byte(g.GroupOf(s))
	}
	return b
}

// decodeGrouping rebuilds a grouping encoded by encodeGrouping,
// normalized through topology.FromGroups.
func decodeGrouping(b []byte, slots int) (topology.Grouping, error) {
	if len(b) != 1+slots || int(b[0]) != slots {
		return topology.Grouping{}, fmt.Errorf("serve: grouping state for %d slots, want %d", lenOrZero(b), slots)
	}
	groups := make([][]int, slots)
	for s := 0; s < slots; s++ {
		gid := int(b[1+s])
		if gid >= slots {
			return topology.Grouping{}, fmt.Errorf("serve: group id %d out of range", gid)
		}
		groups[gid] = append(groups[gid], s)
	}
	compact := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			compact = append(compact, g)
		}
	}
	return topology.FromGroups(slots, compact)
}

func lenOrZero(b []byte) int {
	if len(b) == 0 {
		return 0
	}
	return int(b[0])
}
