package serve

import (
	"errors"

	"morphcache/internal/fault"
)

// Serve-layer chaos (DESIGN.md §14.4). A fault.Plan built by
// fault.NewServePlan (or by hand) schedules three event kinds against the
// serving path, applied at epoch boundaries with every shard lock held:
//
//   - fault.ShardStall: Events[i].Slice names a shard that sheds every
//     operation with ErrShardStalled for Duration epochs.
//   - fault.WALWriteErr: every WAL append fails for Duration epochs.
//   - fault.DiskFull: same, surfaced as a disk-full error.
//
// The WAL kinds exercise the degradation path: after walFailThreshold
// consecutive failed appends the server drops to read-mostly mode, and
// the first epoch-boundary append after the window closes heals it.

// Injected error values, distinguishable in logs and tests.
var (
	errWALInjected  = errors.New("serve: injected wal write error")
	errDiskInjected = errors.New("serve: injected disk full")
)

// applyFaultsLocked advances fault state at an epoch boundary (all shard
// locks held, c.epoch already incremented): expires stall and WAL-failure
// windows, then applies the events scheduled for the new epoch.
func (c *Cache) applyFaultsLocked() {
	if c.flt == nil {
		return
	}
	for _, sh := range c.shards {
		if sh.stall > 0 {
			sh.stall--
		}
	}
	if c.walInjUntil != 0 && c.epoch >= c.walInjUntil {
		c.walInjUntil = 0
		if c.wal != nil {
			c.wal.InjectFailure(nil)
		}
	}
	for _, e := range c.flt.At(c.epoch) {
		dur := e.Duration
		if dur < 1 {
			dur = 1
		}
		switch e.Kind {
		case fault.ShardStall:
			c.shards[e.Slice].stall = dur
			c.met.faultApplied()
			c.hub.publish("stall", stallEvent{Shard: e.Slice, Epochs: dur, Epoch: c.epoch})
			if c.slog != nil {
				c.slog.Warn("fault", "kind", "shard_stall", "shard", e.Slice,
					"epochs", dur, "epoch", c.epoch)
			}
		case fault.WALWriteErr:
			if c.wal != nil {
				c.wal.InjectFailure(errWALInjected)
				c.walInjUntil = c.epoch + dur
			}
			c.met.faultApplied()
			if c.slog != nil {
				c.slog.Warn("fault", "kind", "wal_write_err", "epochs", dur, "epoch", c.epoch)
			}
		case fault.DiskFull:
			if c.wal != nil {
				c.wal.InjectFailure(errDiskInjected)
				c.walInjUntil = c.epoch + dur
			}
			c.met.faultApplied()
			if c.slog != nil {
				c.slog.Warn("fault", "kind", "disk_full", "epochs", dur, "epoch", c.epoch)
			}
		}
	}
}
