// Package runner fans independent simulation jobs out across a bounded
// worker pool. Every figure of the paper's evaluation is an embarrassingly
// parallel sweep — mixes × policies, each one independent Engine.Run — and
// this package is the one place that parallelism lives.
//
// Contract:
//
//   - Results come back in submission order, regardless of completion
//     order, so reports built from them are byte-identical to a sequential
//     run (DESIGN.md §6: identical seeds ⇒ identical results, now at every
//     worker count).
//   - Jobs must be self-contained: each builds its own hierarchy.System,
//     generators, and RNG streams from its spec, sharing nothing mutable
//     with other jobs (read-only tables like workload profiles are fine).
//   - One worker (Workers: 1) restores strictly sequential execution.
//
// Progress events are delivered serially (under an internal lock) in
// completion order, so callers may print from the callback without their
// own synchronization; anything they print must go to a side channel
// (stderr) if report output is to stay byte-identical across worker counts.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Job is one independent unit of work producing a T.
type Job[T any] struct {
	// Label identifies the job in progress events and error messages.
	Label string
	// Run computes the job's result. It must not share mutable state with
	// any other job in the batch.
	Run func() (T, error)
}

// Event describes one completed job.
type Event struct {
	// Index is the job's submission position.
	Index int
	// Label is the job's label.
	Label string
	// Elapsed is the job's wall-clock duration.
	Elapsed time.Duration
	// Err is the job's error, if any.
	Err error
	// Done jobs out of Total have completed, this one included.
	Done, Total int
}

// Options configures a batch.
type Options struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	// 1 restores sequential execution.
	Workers int
	// Progress, when non-nil, receives one Event per completed job, in
	// completion order. Events are delivered serially.
	Progress func(Event)
}

// Run executes the jobs across the pool and returns their results in
// submission order. If any job fails, the error of the earliest-submitted
// failing job is returned (deterministically, whatever the completion
// order was) alongside the partial results. A panicking job is converted
// to an error rather than crashing the process.
func Run[T any](jobs []Job[T], opts Options) ([]T, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards done and serializes Progress
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				results[i], errs[i] = call(jobs[i])
				if opts.Progress != nil {
					mu.Lock()
					done++
					opts.Progress(Event{
						Index:   i,
						Label:   jobs[i].Label,
						Elapsed: time.Since(start),
						Err:     errs[i],
						Done:    done,
						Total:   len(jobs),
					})
					mu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("runner: job %d (%s): %w", i, jobs[i].Label, err)
		}
	}
	return results, nil
}

// call runs one job, converting a panic into an error so one bad job
// surfaces with its label instead of killing the whole sweep.
func call[T any](j Job[T]) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return j.Run()
}

// Map runs fn over items with the given options and returns the outputs in
// item order. Labels default to the item's fmt.Sprint rendering.
func Map[S, T any](items []S, opts Options, fn func(i int, item S) (T, error)) ([]T, error) {
	jobs := make([]Job[T], len(items))
	for i := range items {
		i, item := i, items[i]
		jobs[i] = Job[T]{
			Label: fmt.Sprint(item),
			Run:   func() (T, error) { return fn(i, item) },
		}
	}
	return Run(jobs, opts)
}
