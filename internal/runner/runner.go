// Package runner fans independent simulation jobs out across a bounded
// worker pool. Every figure of the paper's evaluation is an embarrassingly
// parallel sweep — mixes × policies, each one independent Engine.Run — and
// this package is the one place that parallelism lives.
//
// Contract:
//
//   - Results come back in submission order, regardless of completion
//     order, so reports built from them are byte-identical to a sequential
//     run (DESIGN.md §6: identical seeds ⇒ identical results, now at every
//     worker count).
//   - Jobs must be self-contained: each builds its own hierarchy.System,
//     generators, and RNG streams from its spec, sharing nothing mutable
//     with other jobs (read-only tables like workload profiles are fine).
//   - One worker (Workers: 1) restores strictly sequential execution.
//   - Cancelling the context stops dispatch: in-flight jobs are abandoned
//     with the context's error, undispatched jobs never start, and Run
//     returns the partial results alongside a descriptive error. An
//     uncancellable context with no JobTimeout adds no machinery at all.
//
// Progress events are delivered serially (under an internal lock) in
// completion order, so callers may print from the callback without their
// own synchronization; anything they print must go to a side channel
// (stderr) if report output is to stay byte-identical across worker counts.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Job is one independent unit of work producing a T.
type Job[T any] struct {
	// Label identifies the job in progress events and error messages.
	Label string
	// Run computes the job's result. It must not share mutable state with
	// any other job in the batch.
	Run func() (T, error)
}

// Event describes one completed job.
type Event struct {
	// Index is the job's submission position.
	Index int
	// Label is the job's label.
	Label string
	// Elapsed is the job's wall-clock duration.
	Elapsed time.Duration
	// Err is the job's error, if any.
	Err error
	// Done jobs out of Total have completed, this one included.
	Done, Total int
}

// Options configures a batch.
type Options struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	// 1 restores sequential execution.
	Workers int
	// Started, when non-nil, receives one Event per job as a worker picks
	// it up, before the job runs (Elapsed zero, Err nil, Done counting
	// completed jobs so far). Delivered serially, under the same lock as
	// Progress, so the two callbacks never interleave.
	Started func(Event)
	// Progress, when non-nil, receives one Event per completed job, in
	// completion order. Events are delivered serially.
	Progress func(Event)
	// JobTimeout, when positive, bounds each job's wall-clock time: a job
	// exceeding it is abandoned and reported failed. The abandoned
	// goroutine cannot be killed — it keeps running in the background and
	// its result is discarded — so timed-out jobs should be treated as a
	// reason to exit, not to retry in-process.
	JobTimeout time.Duration
}

// Run executes the jobs across the pool and returns their results in
// submission order. If any job fails, the error of the earliest-submitted
// failing job is returned (deterministically, whatever the completion
// order was) alongside the partial results. A panicking job is converted
// to an error (with its stack) rather than crashing the process. When ctx
// is cancelled, dispatch stops, running jobs are abandoned, and every job
// that did not complete carries the context's error.
func Run[T any](ctx context.Context, jobs []Job[T], opts Options) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	// The fast path — uncancellable context, no timeout — runs jobs on the
	// worker goroutine directly; otherwise each job gets a watchdog.
	bounded := ctx.Done() != nil || opts.JobTimeout > 0

	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards done and serializes Progress
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if opts.Started != nil {
					mu.Lock()
					opts.Started(Event{Index: i, Label: jobs[i].Label, Done: done, Total: len(jobs)})
					mu.Unlock()
				}
				start := time.Now()
				if bounded {
					results[i], errs[i] = callBounded(ctx, jobs[i], opts.JobTimeout)
				} else {
					results[i], errs[i] = call(jobs[i])
				}
				if opts.Progress != nil {
					mu.Lock()
					done++
					opts.Progress(Event{
						Index:   i,
						Label:   jobs[i].Label,
						Elapsed: time.Since(start),
						Err:     errs[i],
						Done:    done,
						Total:   len(jobs),
					})
					mu.Unlock()
				}
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Undispatched jobs (this one included) never start; mark them
			// so the batch reports the cancellation.
			for j := i; j < len(jobs); j++ {
				errs[j] = ctx.Err()
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("runner: job %d (%s): %w", i, jobs[i].Label, err)
		}
	}
	return results, nil
}

// call runs one job, converting a panic into an error carrying the stack
// so one bad job surfaces with its label instead of killing the sweep.
func call[T any](j Job[T]) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return j.Run()
}

// callBounded runs one job under the context and an optional wall-clock
// timeout. The job runs on its own goroutine; if it outlives the bound it
// is abandoned (the goroutine drains into a buffered channel) and the
// worker moves on.
func callBounded[T any](ctx context.Context, j Job[T], timeout time.Duration) (T, error) {
	type outcome struct {
		res T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, e := call(j)
		ch <- outcome{r, e}
	}()
	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	var zero T
	select {
	case o := <-ch:
		return o.res, o.err
	case <-expired:
		return zero, fmt.Errorf("timed out after %v", timeout)
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}

// Map runs fn over items with the given options and returns the outputs in
// item order. Labels default to the item's fmt.Sprint rendering.
func Map[S, T any](ctx context.Context, items []S, opts Options, fn func(i int, item S) (T, error)) ([]T, error) {
	jobs := make([]Job[T], len(items))
	for i := range items {
		i, item := i, items[i]
		jobs[i] = Job[T]{
			Label: fmt.Sprint(item),
			Run:   func() (T, error) { return fn(i, item) },
		}
	}
	return Run(ctx, jobs, opts)
}
