package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmissionOrder checks results land by submission index even when
// completion order is scrambled.
func TestSubmissionOrder(t *testing.T) {
	const n = 64
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("job-%d", i),
			Run: func() (int, error) {
				// Earlier jobs sleep longer so they finish later.
				time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
				return i * i, nil
			},
		}
	}
	for _, workers := range []int{1, 2, 7, n, 2 * n} {
		got, err := Run(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestFirstErrorBySubmissionOrder checks the returned error is the
// earliest-submitted failure, not the first to complete.
func TestFirstErrorBySubmissionOrder(t *testing.T) {
	sentinel := errors.New("boom")
	jobs := []Job[int]{
		{Label: "ok", Run: func() (int, error) { return 1, nil }},
		{Label: "slow-fail", Run: func() (int, error) {
			time.Sleep(5 * time.Millisecond)
			return 0, sentinel
		}},
		{Label: "fast-fail", Run: func() (int, error) { return 0, errors.New("later job") }},
	}
	_, err := Run(context.Background(), jobs, Options{Workers: 3})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("want earliest-submitted failure (job 1), got %v", err)
	}
	if !strings.Contains(err.Error(), "slow-fail") {
		t.Fatalf("error must carry the job label, got %v", err)
	}
}

// TestPanicBecomesError checks a panicking job is reported — with the
// goroutine stack, so the crash site is diagnosable — rather than fatal.
func TestPanicBecomesError(t *testing.T) {
	jobs := []Job[int]{
		{Label: "panicky", Run: func() (int, error) { panic("kaboom") }},
	}
	_, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic must surface as an error, got %v", err)
	}
	if !strings.Contains(err.Error(), "goroutine") ||
		!strings.Contains(err.Error(), "runner_test.go") {
		t.Fatalf("panic error must carry the stack trace, got %v", err)
	}
}

// TestProgressEvents checks every job produces exactly one event with a
// monotonically increasing Done counter.
func TestProgressEvents(t *testing.T) {
	const n = 20
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Label: fmt.Sprintf("j%d", i), Run: func() (int, error) { return i, nil }}
	}
	seen := make([]bool, n)
	lastDone := 0
	_, err := Run(context.Background(), jobs, Options{Workers: 4, Progress: func(ev Event) {
		if ev.Total != n {
			t.Errorf("Total = %d, want %d", ev.Total, n)
		}
		if ev.Done != lastDone+1 {
			t.Errorf("Done = %d after %d", ev.Done, lastDone)
		}
		lastDone = ev.Done
		if seen[ev.Index] {
			t.Errorf("job %d reported twice", ev.Index)
		}
		seen[ev.Index] = true
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("job %d never reported", i)
		}
	}
}

// TestEmptyBatch checks the degenerate case.
func TestEmptyBatch(t *testing.T) {
	got, err := Run(context.Background(), []Job[int]{}, Options{})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}

// TestWorkerCap checks no more than Workers jobs run concurrently.
func TestWorkerCap(t *testing.T) {
	var running, peak atomic.Int32
	jobs := make([]Job[int], 16)
	for i := range jobs {
		jobs[i] = Job[int]{Run: func() (int, error) {
			cur := running.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			return 0, nil
		}}
	}
	if _, err := Run(context.Background(), jobs, Options{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d exceeds worker cap 3", got)
	}
}

// TestMap checks the convenience wrapper keeps item order.
func TestMap(t *testing.T) {
	items := []string{"a", "bb", "ccc"}
	got, err := Map(context.Background(), items, Options{Workers: 2}, func(i int, s string) (int, error) {
		return len(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != len(items[i]) {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

// TestCancellation checks a cancelled batch stops dispatching, keeps the
// results of jobs that completed before the cancel, and reports the
// context's error for the rest.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 8
	release := make(chan struct{})
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("j%d", i),
			Run: func() (int, error) {
				if i == 0 {
					return 42, nil // completes before the cancel below
				}
				cancel()
				<-release // the in-flight job blocks until after Run returns
				return i, nil
			},
		}
	}
	got, err := Run(ctx, jobs, Options{Workers: 1})
	close(release)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch must return the context error, got %v", err)
	}
	if got[0] != 42 {
		t.Fatalf("pre-cancel result lost: %v", got)
	}
	for i := 2; i < n; i++ {
		if got[i] != 0 {
			t.Fatalf("undispatched job %d produced a result: %v", i, got)
		}
	}
}

// TestJobTimeout checks a stuck job is abandoned with a timeout error
// while its batch-mates complete normally.
func TestJobTimeout(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	jobs := []Job[int]{
		{Label: "quick", Run: func() (int, error) { return 7, nil }},
		{Label: "stuck", Run: func() (int, error) { <-hang; return 0, nil }},
	}
	got, err := Run(context.Background(), jobs, Options{Workers: 2, JobTimeout: 10 * time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "timed out") || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("want timeout error naming the stuck job, got %v", err)
	}
	if got[0] != 7 {
		t.Fatalf("healthy job's result lost: %v", got)
	}
}
