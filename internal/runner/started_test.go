package runner

import (
	"context"
	"sync"
	"testing"
)

// TestStartedCallback checks the start-side callback: one event per job,
// fired before the job's own Run, never interleaved with Progress.
func TestStartedCallback(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	startedBefore := make([]bool, n) // Started seen before the job ran
	running := make([]bool, n)

	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Label: "job",
			Run: func() (int, error) {
				mu.Lock()
				running[i] = true
				mu.Unlock()
				return i, nil
			},
		}
	}
	var started, finished []int
	_, err := Run(context.Background(), jobs, Options{
		Workers: 4,
		Started: func(ev Event) {
			mu.Lock()
			startedBefore[ev.Index] = !running[ev.Index]
			started = append(started, ev.Index)
			mu.Unlock()
			if ev.Err != nil || ev.Elapsed != 0 {
				t.Errorf("start event carries completion fields: %+v", ev)
			}
			if ev.Total != n {
				t.Errorf("start event Total = %d, want %d", ev.Total, n)
			}
		},
		Progress: func(ev Event) {
			finished = append(finished, ev.Index) // serial: no lock needed
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != n || len(finished) != n {
		t.Fatalf("started %d, finished %d, want %d each", len(started), len(finished), n)
	}
	for i, ok := range startedBefore {
		if !ok {
			t.Errorf("job %d: Started fired after the job began running", i)
		}
	}
}

// TestStartedNilIsFastPath ensures batches without a Started callback behave
// as before.
func TestStartedNilIsFastPath(t *testing.T) {
	jobs := []Job[int]{{Label: "a", Run: func() (int, error) { return 1, nil }}}
	res, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil || res[0] != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}
