package acfv

import (
	"testing"

	"morphcache/internal/mem"
	"morphcache/internal/rng"
)

// TestSaturate checks the stuck-at-1 model fills the vector exactly,
// including non-word-multiple widths.
func TestSaturate(t *testing.T) {
	for _, width := range []int{1, 64, 128, 100} {
		h := XOR
		if width&(width-1) != 0 {
			h = Modulo
		}
		v := NewVector(width, h)
		v.Saturate()
		if v.Ones() != width {
			t.Errorf("width %d: Ones = %d after Saturate", width, v.Ones())
		}
		if v.Utilization() != 1 {
			t.Errorf("width %d: Utilization = %v after Saturate", width, v.Utilization())
		}
		// Every line must read as present.
		for l := mem.Line(0); l < 200; l++ {
			if !v.Bit(l) {
				t.Fatalf("width %d: bit for line %d clear after Saturate", width, l)
			}
		}
		v.Reset()
		if v.Ones() != 0 {
			t.Errorf("width %d: Reset after Saturate left %d ones", width, v.Ones())
		}
	}
}

// TestScrambleDeterministic checks scrambling is a pure function of the
// stream and keeps the ones counter consistent.
func TestScrambleDeterministic(t *testing.T) {
	mk := func() *Vector {
		v := NewVector(128, XOR)
		for l := mem.Line(0); l < 40; l++ {
			v.Set(l)
		}
		return v
	}
	a, b := mk(), mk()
	a.Scramble(32, rng.New(9))
	b.Scramble(32, rng.New(9))
	if a.Ones() != b.Ones() {
		t.Fatalf("same stream, different ones: %d vs %d", a.Ones(), b.Ones())
	}
	if Overlap(a, b) != a.Ones() {
		t.Fatal("same stream produced different bit patterns")
	}
	// Recount bits the slow way to check the ones counter.
	n := 0
	for i := 0; i < 128; i++ {
		if a.words[i/64]&(uint64(1)<<uint(i%64)) != 0 {
			n++
		}
	}
	if n != a.Ones() {
		t.Errorf("ones counter %d disagrees with popcount %d", a.Ones(), n)
	}
	c := mk()
	c.Scramble(32, rng.New(10))
	if Overlap(a, c) == a.Ones() && a.Ones() == c.Ones() {
		t.Log("different seeds produced equal patterns (possible but astronomically unlikely)")
	}
}
