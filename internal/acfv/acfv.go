// Package acfv implements Active Cache Footprint Vectors (§2.1 of the
// paper): small per-core, per-slice bit vectors that approximate the Active
// Cache Footprint (ACF) of a thread — the set of unique cache lines it
// referenced in the current epoch.
//
// The hardware mechanism: the tag of a line being brought into the slice is
// hashed into the vector and its bit set; the tag of the line it replaces is
// hashed and its bit cleared. To keep stale lines from inflating the
// estimate, all bits are reset at every reconfiguration interval. Two
// properties make ACFVs useful (§2.1):
//
//  1. the number of 1s, |ACFV|, tracks the slice's active utilization, and
//  2. the number of common 1s between two vectors of threads sharing an
//     address space tracks their degree of data sharing.
//
// When slices merge, their ACFVs are kept separate but treated logically as
// one vector obtained by juxtaposition (§2.2); Juxtaposed computes exactly
// that fraction of 1s.
//
// The package also provides the one-to-one "oracle" estimator used by the
// paper's Fig. 5 to calibrate how many bits a vector needs (correlation
// 0.94 at 64 bits, 0.96 at 128 for hmmer).
package acfv

import (
	"fmt"
	"math/bits"

	"morphcache/internal/mem"
	"morphcache/internal/rng"
)

// Hash selects the hardware hash used to index the vector. The paper
// evaluates an XOR-folding hash and a modulo hash (Fig. 5); XOR correlates
// better at small widths because it mixes high tag bits into the index.
type Hash uint8

const (
	// XOR folds the tag into log2(width) bits by repeated XOR of the tag's
	// bit-groups, the classic hardware tree-of-XORs hash.
	XOR Hash = iota
	// Modulo indexes by tag mod width.
	Modulo
)

func (h Hash) String() string {
	switch h {
	case XOR:
		return "xor"
	case Modulo:
		return "modulo"
	default:
		return fmt.Sprintf("Hash(%d)", uint8(h))
	}
}

// Index maps a tag to a bit position in [0, width). For XOR, width must be a
// power of two.
func (h Hash) Index(tag uint64, width int) int {
	switch h {
	case XOR:
		shift := uint(bits.Len(uint(width - 1)))
		if width&(width-1) != 0 {
			panic("acfv: XOR hash requires power-of-two width")
		}
		if width == 1 {
			return 0
		}
		v := tag
		folded := uint64(0)
		for v != 0 {
			folded ^= v & uint64(width-1)
			v >>= shift
		}
		return int(folded)
	case Modulo:
		return int(tag % uint64(width))
	default:
		panic("acfv: unknown hash")
	}
}

// Vector is one ACFV. The zero value is unusable; use NewVector.
type Vector struct {
	words []uint64
	width int
	hash  Hash
	ones  int
}

// NewVector returns a cleared vector of the given width (number of bits).
// Width must be positive; for the XOR hash it must be a power of two.
func NewVector(width int, h Hash) *Vector {
	if width <= 0 {
		panic("acfv: non-positive width")
	}
	if h == XOR && width&(width-1) != 0 {
		panic("acfv: XOR hash requires power-of-two width")
	}
	return &Vector{
		words: make([]uint64, (width+63)/64),
		width: width,
		hash:  h,
	}
}

// Width returns the number of bits in the vector.
func (v *Vector) Width() int { return v.width }

// Ones returns |ACFV|, the current number of set bits.
func (v *Vector) Ones() int { return v.ones }

// Utilization returns |ACFV| / width, the active-utilization estimate
// compared against the MSAT thresholds by the MorphCache controller.
func (v *Vector) Utilization() float64 { return float64(v.ones) / float64(v.width) }

// Set records that the line was brought in (or referenced): the hashed bit
// is set.
func (v *Vector) Set(line mem.Line) {
	i := v.hash.Index(uint64(line), v.width)
	w, b := i/64, uint64(1)<<uint(i%64)
	if v.words[w]&b == 0 {
		v.words[w] |= b
		v.ones++
	}
}

// Clear records that the line was evicted: the hashed bit is cleared. Like
// the hardware, this aliases — evicting a line clears the bit even if
// another resident line hashes to it. That imprecision is inherent to the
// design and is what Fig. 5 quantifies.
func (v *Vector) Clear(line mem.Line) {
	i := v.hash.Index(uint64(line), v.width)
	w, b := i/64, uint64(1)<<uint(i%64)
	if v.words[w]&b != 0 {
		v.words[w] &^= b
		v.ones--
	}
}

// Bit reports whether the hashed bit for the line is set.
func (v *Vector) Bit(line mem.Line) bool {
	i := v.hash.Index(uint64(line), v.width)
	return v.words[i/64]&(uint64(1)<<uint(i%64)) != 0
}

// Reset clears every bit (done once per reconfiguration interval, §2.1).
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
	v.ones = 0
}

// Saturate sets every bit — the stuck-at-1 failure mode of a corrupted
// monitor (fault injection): a saturated vector reads as full utilization
// and maximal overlap, which is why the controller quarantines corrupted
// monitors instead of acting on them.
func (v *Vector) Saturate() {
	full := v.width
	for i := range v.words {
		n := full
		if n > 64 {
			n = 64
		}
		if n == 64 {
			v.words[i] = ^uint64(0)
		} else {
			v.words[i] = (uint64(1) << uint(n)) - 1
		}
		full -= n
	}
	v.ones = v.width
}

// Scramble flips up to `flips` pseudo-randomly chosen bits drawn from the
// stream — the transient-corruption failure mode. Positions may repeat
// (a double flip restores the bit), matching independent particle strikes.
func (v *Vector) Scramble(flips int, r *rng.Stream) {
	for i := 0; i < flips; i++ {
		p := r.Intn(v.width)
		w, b := p/64, uint64(1)<<uint(p%64)
		if v.words[w]&b == 0 {
			v.words[w] |= b
			v.ones++
		} else {
			v.words[w] &^= b
			v.ones--
		}
	}
}

// Overlap returns the number of common 1s between a and b — the paper's
// data-sharing signal between two threads. Both vectors must have the same
// width and hash.
func Overlap(a, b *Vector) int {
	if a.width != b.width || a.hash != b.hash {
		panic("acfv: Overlap on incompatible vectors")
	}
	n := 0
	for i := range a.words {
		n += bits.OnesCount64(a.words[i] & b.words[i])
	}
	return n
}

// UnionOnes returns the number of 1s in the bitwise OR of the vectors; with
// per-core vectors over one slice it estimates the slice's total active
// footprint across all cores that use it. All vectors must be compatible.
func UnionOnes(vs ...*Vector) int {
	if len(vs) == 0 {
		return 0
	}
	w := vs[0]
	acc := make([]uint64, len(w.words))
	for _, v := range vs {
		if v.width != w.width || v.hash != w.hash {
			panic("acfv: UnionOnes on incompatible vectors")
		}
		for i := range acc {
			acc[i] |= v.words[i]
		}
	}
	n := 0
	for _, x := range acc {
		n += bits.OnesCount64(x)
	}
	return n
}

// Union returns a new vector that is the bitwise OR of the inputs (all must
// share width and hash; at least one input is required). Group-level
// utilization and overlap computations build on per-slice unions of the
// per-core vectors.
func Union(vs ...*Vector) *Vector {
	if len(vs) == 0 {
		panic("acfv: Union of no vectors")
	}
	out := NewVector(vs[0].width, vs[0].hash)
	for _, v := range vs {
		if v.width != out.width || v.hash != out.hash {
			panic("acfv: Union on incompatible vectors")
		}
		for i := range out.words {
			out.words[i] |= v.words[i]
		}
	}
	n := 0
	for _, w := range out.words {
		n += bits.OnesCount64(w)
	}
	out.ones = n
	return out
}

// Juxtaposed returns the fraction of 1s in the logical concatenation of the
// vectors (§2.2: "the two ACFVs are treated as one large ACFV obtained by
// juxtaposition ... the fraction of 1s in the resultant large ACFV is used
// for computing the active utilization of the new merged slice").
func Juxtaposed(vs ...*Vector) float64 {
	ones, width := 0, 0
	for _, v := range vs {
		ones += v.ones
		width += v.width
	}
	if width == 0 {
		return 0
	}
	return float64(ones) / float64(width)
}

// Oracle is the one-to-one-mapping footprint estimator (an exact set of
// unique referenced lines) the paper uses as ground truth in Fig. 5.
type Oracle struct {
	seen map[mem.Line]struct{}
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{seen: make(map[mem.Line]struct{})}
}

// Set records a referenced line.
func (o *Oracle) Set(line mem.Line) { o.seen[line] = struct{}{} }

// Clear records an evicted line, mirroring the ACFV update rule so the two
// estimators see the same event stream.
func (o *Oracle) Clear(line mem.Line) { delete(o.seen, line) }

// Ones returns the exact number of distinct live lines.
func (o *Oracle) Ones() int { return len(o.seen) }

// Reset empties the oracle.
func (o *Oracle) Reset() { clear(o.seen) }
