package acfv

import (
	"math"
	"testing"
	"testing/quick"

	"morphcache/internal/mem"
	"morphcache/internal/rng"
)

func TestHashIndexInRange(t *testing.T) {
	err := quick.Check(func(tag uint64) bool {
		for _, w := range []int{1, 2, 64, 128, 512} {
			if i := XOR.Index(tag, w); i < 0 || i >= w {
				return false
			}
		}
		for _, w := range []int{1, 3, 7, 100} {
			if i := Modulo.Index(tag, w); i < 0 || i >= w {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestXORRequiresPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("XOR with non-power-of-two width should panic")
		}
	}()
	XOR.Index(5, 100)
}

func TestXORSpreadsHighBits(t *testing.T) {
	// Tags differing only in high bits must map to different indices for at
	// least some pairs (a pure low-bit mask would not).
	w := 64
	diff := 0
	for i := uint64(0); i < 64; i++ {
		if XOR.Index(i<<32, w) != XOR.Index(0, w) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("XOR hash ignores high tag bits")
	}
}

func TestSetClearOnes(t *testing.T) {
	v := NewVector(128, XOR)
	v.Set(10)
	v.Set(10) // idempotent
	if v.Ones() != 1 {
		t.Fatalf("Ones = %d, want 1", v.Ones())
	}
	if !v.Bit(10) {
		t.Fatal("Bit(10) should be set")
	}
	v.Clear(10)
	if v.Ones() != 0 || v.Bit(10) {
		t.Fatal("Clear did not clear")
	}
	v.Clear(10) // idempotent
	if v.Ones() != 0 {
		t.Fatal("double clear broke the counter")
	}
}

func TestOnesMatchesRecount(t *testing.T) {
	err := quick.Check(func(tags []uint64, clears []uint64) bool {
		v := NewVector(64, XOR)
		for _, x := range tags {
			v.Set(mem.Line(x))
		}
		for _, x := range clears {
			v.Clear(mem.Line(x))
		}
		n := 0
		seen := map[int]bool{}
		// Recount by probing every possible index through Bit on
		// representative tags is awkward; instead recount via Utilization
		// identity and a fresh union.
		u := Union(v)
		if u.Ones() != v.Ones() {
			return false
		}
		_ = n
		_ = seen
		return v.Ones() >= 0 && v.Ones() <= 64
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	v := NewVector(256, Modulo)
	for i := 0; i < 100; i++ {
		v.Set(mem.Line(i))
	}
	v.Reset()
	if v.Ones() != 0 || v.Utilization() != 0 {
		t.Fatal("Reset left bits")
	}
}

func TestOverlapAndUnion(t *testing.T) {
	a, b := NewVector(128, XOR), NewVector(128, XOR)
	for i := 0; i < 20; i++ {
		a.Set(mem.Line(i))
	}
	for i := 10; i < 30; i++ {
		b.Set(mem.Line(i))
	}
	ov := Overlap(a, b)
	if ov < 5 || ov > 15 {
		// 10 shared tags, modulo collisions.
		t.Fatalf("overlap = %d, want ~10", ov)
	}
	u := UnionOnes(a, b)
	if u != a.Ones()+b.Ones()-ov {
		t.Fatalf("inclusion-exclusion violated: %d != %d+%d-%d", u, a.Ones(), b.Ones(), ov)
	}
	uv := Union(a, b)
	if uv.Ones() != u {
		t.Fatalf("Union popcount %d != UnionOnes %d", uv.Ones(), u)
	}
}

func TestOverlapIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("incompatible overlap should panic")
		}
	}()
	Overlap(NewVector(64, XOR), NewVector(128, XOR))
}

func TestJuxtaposed(t *testing.T) {
	a, b := NewVector(64, XOR), NewVector(64, XOR)
	for i := 0; i < 64; i++ {
		a.Set(mem.Line(i * 977)) // scatter to fill most of a
	}
	// b stays empty: juxtaposed fraction = ones(a) / 128.
	got := Juxtaposed(a, b)
	want := float64(a.Ones()) / 128
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("juxtaposed = %v, want %v", got, want)
	}
	if Juxtaposed() != 0 {
		t.Fatal("juxtaposed of nothing should be 0")
	}
}

func TestOracle(t *testing.T) {
	o := NewOracle()
	o.Set(1)
	o.Set(2)
	o.Set(1)
	if o.Ones() != 2 {
		t.Fatalf("oracle Ones = %d, want 2", o.Ones())
	}
	o.Clear(1)
	if o.Ones() != 1 {
		t.Fatalf("oracle after clear = %d, want 1", o.Ones())
	}
	o.Reset()
	if o.Ones() != 0 {
		t.Fatal("oracle reset failed")
	}
}

// TestSaturationCurve checks that the expected fraction of set bits follows
// 1-exp(-k/W) for k random distinct tags — the collision model the
// utilization correction in the hierarchy inverts.
func TestSaturationCurve(t *testing.T) {
	const w = 256
	r := rng.New(7)
	for _, k := range []int{32, 128, 512} {
		v := NewVector(w, XOR)
		seen := map[uint64]bool{}
		for len(seen) < k {
			x := r.Uint64()
			if !seen[x] {
				seen[x] = true
				v.Set(mem.Line(x))
			}
		}
		want := float64(w) * (1 - math.Exp(-float64(k)/w))
		got := float64(v.Ones())
		if math.Abs(got-want) > 0.15*want+8 {
			t.Fatalf("k=%d: ones=%v, expected ~%v", k, got, want)
		}
	}
}

// TestWidthFidelity mirrors the Fig. 5 mechanism: wider vectors track a
// varying footprint better.
func TestWidthFidelity(t *testing.T) {
	r := rng.New(3)
	corr := func(w int) float64 {
		v := NewVector(w, XOR)
		var est, truth []float64
		for epoch := 0; epoch < 40; epoch++ {
			k := 5 + (epoch*13)%60 // footprint varies 5..64
			seen := map[uint64]bool{}
			for len(seen) < k {
				x := r.Uint64()
				if !seen[x] {
					seen[x] = true
					v.Set(mem.Line(x))
				}
			}
			est = append(est, float64(v.Ones()))
			truth = append(truth, float64(k))
			v.Reset()
		}
		// Pearson correlation, inline to avoid a stats dependency cycle.
		var mx, my float64
		for i := range est {
			mx += est[i]
			my += truth[i]
		}
		mx /= float64(len(est))
		my /= float64(len(truth))
		var sxy, sxx, syy float64
		for i := range est {
			sxy += (est[i] - mx) * (truth[i] - my)
			sxx += (est[i] - mx) * (est[i] - mx)
			syy += (truth[i] - my) * (truth[i] - my)
		}
		return sxy / math.Sqrt(sxx*syy)
	}
	small, large := corr(8), corr(512)
	if large < 0.95 {
		t.Fatalf("512-bit vector correlation %v, want > 0.95", large)
	}
	if large <= small {
		t.Fatalf("wider vector should track better: 512-bit %v vs 8-bit %v", large, small)
	}
}

func TestNewVectorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewVector(0, XOR) },
		func() { NewVector(100, XOR) }, // non-pow2 for XOR
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
	// Modulo accepts any positive width.
	if v := NewVector(100, Modulo); v.Width() != 100 {
		t.Fatal("modulo vector width")
	}
}
