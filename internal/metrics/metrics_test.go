package metrics

import (
	"math"
	"testing"
)

func TestThroughput(t *testing.T) {
	e := Epoch{PerCoreIPC: []float64{0.5, 0.25, 0.25}}
	if e.Throughput() != 1.0 {
		t.Fatalf("epoch throughput %v", e.Throughput())
	}
	r := Run{PerCoreIPC: []float64{1, 2}}
	if r.Throughput() != 3 {
		t.Fatalf("run throughput %v", r.Throughput())
	}
}

func TestEpochThroughputs(t *testing.T) {
	r := Run{Epochs: []Epoch{
		{PerCoreIPC: []float64{1}},
		{PerCoreIPC: []float64{2}},
	}}
	s := r.EpochThroughputs()
	if len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Fatalf("series %v", s)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	// Two apps at half their alone speed: WS = 1 (out of 2).
	ws := WeightedSpeedup([]float64{0.5, 1}, []float64{1, 2})
	if ws != 1 {
		t.Fatalf("WS = %v, want 1", ws)
	}
}

func TestFairSpeedup(t *testing.T) {
	// Equal speedups: FS equals that speedup.
	fs := FairSpeedup([]float64{0.5, 1}, []float64{1, 2})
	if fs != 0.5 {
		t.Fatalf("FS = %v, want 0.5", fs)
	}
	// FS penalizes imbalance: (1.0, 0.25) has HM 0.4 < AM 0.625.
	fs = FairSpeedup([]float64{1, 0.25}, []float64{1, 1})
	if math.Abs(fs-0.4) > 1e-12 {
		t.Fatalf("FS = %v, want 0.4", fs)
	}
}

func TestSpeedupMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	WeightedSpeedup([]float64{1}, []float64{1, 2})
}
