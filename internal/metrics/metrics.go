// Package metrics defines the performance measures of the paper's §5:
// throughput (sum of per-core IPC), weighted speedup (WS), and fair speedup
// (FS, the harmonic mean of speedups [Smith '88]), plus the per-epoch
// series the figures plot.
package metrics

import (
	"fmt"

	"morphcache/internal/stats"
)

// Epoch is one reconfiguration interval's measurements.
type Epoch struct {
	Index int
	// PerCoreIPC is instructions retired per cycle, per core, in the epoch.
	PerCoreIPC []float64
	// Topology is the configuration in force during the epoch.
	Topology string
}

// Throughput is the sum of per-core IPCs (the paper's throughput metric).
func (e Epoch) Throughput() float64 { return stats.Sum(e.PerCoreIPC) }

// Run aggregates one complete simulation.
type Run struct {
	Policy string
	Epochs []Epoch
	// PerCoreIPC is the whole-run per-core IPC (instructions over measured
	// cycles).
	PerCoreIPC []float64
	// Reconfigurations and AsymmetricSteps report the §2.4 statistics for
	// adaptive policies (zero for statics).
	Reconfigurations int
	AsymmetricSteps  int
}

// Throughput returns the whole-run throughput.
func (r *Run) Throughput() float64 { return stats.Sum(r.PerCoreIPC) }

// EpochThroughputs returns the per-epoch throughput series (Fig. 2(a),
// Fig. 15 inputs).
func (r *Run) EpochThroughputs() []float64 {
	out := make([]float64, len(r.Epochs))
	for i, e := range r.Epochs {
		out[i] = e.Throughput()
	}
	return out
}

// WeightedSpeedup is Σ IPC_i / IPCalone_i: equal weight to each
// application's relative progress (§5.1).
func WeightedSpeedup(ipc, alone []float64) float64 {
	if len(ipc) != len(alone) {
		panic(fmt.Sprintf("metrics: %d IPCs vs %d alone references", len(ipc), len(alone)))
	}
	var ws float64
	for i := range ipc {
		ws += ipc[i] / alone[i]
	}
	return ws
}

// FairSpeedup is the harmonic mean of per-application speedups, the metric
// shown to balance fairness and performance (§5.1).
func FairSpeedup(ipc, alone []float64) float64 {
	if len(ipc) != len(alone) {
		panic(fmt.Sprintf("metrics: %d IPCs vs %d alone references", len(ipc), len(alone)))
	}
	sp := make([]float64, len(ipc))
	for i := range ipc {
		sp[i] = ipc[i] / alone[i]
	}
	return stats.HarmonicMean(sp)
}
