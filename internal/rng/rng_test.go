package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestDeriveOrderSensitive(t *testing.T) {
	a := Derive(7, 1, 2)
	b := Derive(7, 2, 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("Derive should be sensitive to label order")
	}
}

func TestDeriveIndependence(t *testing.T) {
	// Consecutive labels must yield uncorrelated first draws (mixing).
	var prev uint64
	for i := uint64(0); i < 64; i++ {
		v := Derive(1, i).Uint64()
		if v == prev {
			t.Fatalf("Derive(1,%d) equals Derive(1,%d)", i, i-1)
		}
		prev = v
	}
}

func TestIntnBounds(t *testing.T) {
	err := quick.Check(func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		if n == 0 {
			n = 1
		}
		v := New(seed).Intn(n)
		return v >= 0 && v < n
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d has %d draws, want ~%d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	var sum float64
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if m := sum / 100000; math.Abs(m-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", m)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestZipfBounds(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for _, n := range []int{1, 2, 17, 1000} {
			v := r.Zipf(n, 0.5)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	// Higher theta concentrates more mass on the head.
	headMass := func(theta float64) float64 {
		r := New(3)
		const n, draws = 1000, 50000
		head := 0
		for i := 0; i < draws; i++ {
			if r.Zipf(n, theta) < n/10 {
				head++
			}
		}
		return float64(head) / draws
	}
	lo, hi := headMass(0.1), headMass(0.7)
	if hi <= lo {
		t.Fatalf("Zipf(0.7) head mass %v should exceed Zipf(0.1) head mass %v", hi, lo)
	}
	// theta<=0 degenerates to uniform.
	if m := headMass(0); m < 0.07 || m > 0.13 {
		t.Fatalf("Zipf(theta=0) head mass %v, want ~0.10", m)
	}
}

func TestZipfPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Zipf(0) should panic")
		}
	}()
	New(1).Zipf(0, 0.5)
}
