// Package rng provides small, fast, deterministic pseudo-random number
// streams for the simulator.
//
// Everything in this repository must replay bit-identically from a seed:
// workload generation, reconfiguration decisions, and the experiment harness
// all derive their randomness from rng.Stream values seeded from
// (experiment, benchmark, thread, epoch) tuples. The generator is
// splitmix64, which passes through a full 2^64 period, needs no allocation,
// and mixes sequential seeds well — important because we construct many
// streams from small consecutive integers.
package rng

import "math"

// Stream is a deterministic pseudo-random stream. The zero value is a valid
// stream seeded with 0; use New to derive well-separated streams.
type Stream struct {
	state uint64
}

// New returns a stream whose sequence is determined entirely by seed.
func New(seed uint64) *Stream {
	return &Stream{state: seed}
}

// Derive builds a child stream from a parent seed and a sequence of labels.
// It is used to give every (benchmark, thread, epoch, ...) tuple its own
// independent stream without the streams being correlated.
func Derive(seed uint64, labels ...uint64) *Stream {
	s := seed
	for _, l := range labels {
		// Mix in each label with one splitmix64 round so that Derive(s, a, b)
		// and Derive(s, b, a) differ.
		s = mix64(s + 0x9e3779b97f4a7c15 + l)
	}
	return &Stream{state: s}
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

// Uint32 returns the next 32 pseudo-random bits.
func (s *Stream) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free mapping is fine here: the bias
	// for n << 2^64 is far below anything the experiments can resolve.
	hi, _ := mul64(s.Uint64(), uint64(n))
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar Box-Muller method. One value per
// call; the spare is deliberately discarded to keep the stream's consumption
// rate independent of rejection luck... it is not: polar rejection consumes
// a variable number of uniforms, which is fine because each consumer owns
// its stream exclusively.
func (s *Stream) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(q)/q)
	}
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with skew
// parameter theta in (0, 1). theta near 1 concentrates mass on low indices;
// theta near 0 approaches uniform. It uses the standard inverse-CDF
// approximation for Zipf(θ) popularized by the YCSB generator, which is
// accurate enough for locality modeling and allocation-free.
func (s *Stream) Zipf(n int, theta float64) int {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if theta <= 0 {
		return s.Intn(n)
	}
	// Direct inverse-power transform: rank ~ u^(1/(1-theta)) stretched over
	// [0, n). This yields a heavy head at index 0 and a long tail, which is
	// what a hot-set reuse pattern needs.
	u := s.Float64()
	r := math.Pow(u, 1/(1-theta))
	i := int(r * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}
