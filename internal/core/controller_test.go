package core

import (
	"strings"
	"testing"

	"morphcache/internal/hierarchy"
	"morphcache/internal/mem"
	"morphcache/internal/topology"
)

// newSys builds a quiet 4-core hierarchy for planting controller inputs.
func newSys(t *testing.T, topo topology.Topology) *hierarchy.System {
	t.Helper()
	p := hierarchy.ScaledDefault(4, 16)
	p.ChargeRemote = true
	p.L2ChannelCycles, p.L3ChannelCycles, p.MemChannelCycles = 0, 0, 0
	s, err := hierarchy.New(p, topo)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		s.SetCoreASID(c, mem.ASID(c+1))
	}
	return s
}

// plantL3 plants a reuse demand of `frac` × slice capacity for a core:
// the line set is accessed twice, with a fresh once-touched flusher region
// between rounds so the second round misses L1/L2 and marks the L3 demand
// again (flusher lines are single-touch and therefore never count).
func plantL3(s *hierarchy.System, core int, frac float64) {
	lines := int(frac * float64(s.Params().L3SliceBytes/mem.LineSize))
	flush := 3 * s.Params().L2SliceBytes / mem.LineSize * 16 // cover every L2 set amply
	asid := s.CoreASID(core)
	base := mem.Line(uint64(core+1) << 40)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			s.Access(core, mem.Access{Line: base + mem.Line(i), ASID: asid}, 0)
		}
		fbase := base + mem.Line(1<<30) + mem.Line(pass*flush)
		for j := 0; j < flush; j++ {
			s.Access(core, mem.Access{Line: fbase + mem.Line(j), ASID: asid}, 0)
		}
	}
}

func TestMergeConditionCapacity(t *testing.T) {
	c := New(DefaultOptions())
	s := newSys(t, topology.AllPrivate(4))
	// Core 0 overflows (1.5x), core 1 idle.
	plantL3(s, 0, 1.5)
	r, _ := c.EndEpoch(0, s)
	if r == 0 {
		t.Fatal("capacity imbalance should trigger a merge")
	}
	if !s.Topology().L3.SameGroup(0, 1) {
		t.Fatalf("L3 slices 0,1 should be merged, topology %v", s.Topology())
	}
	if c.Merges() == 0 {
		t.Fatal("merge counter not incremented")
	}
}

func TestNoMergeWhenBothFit(t *testing.T) {
	c := New(DefaultOptions())
	s := newSys(t, topology.AllPrivate(4))
	plantL3(s, 0, 0.6)
	plantL3(s, 1, 0.6)
	plantL3(s, 2, 0.6)
	plantL3(s, 3, 0.6)
	r, _ := c.EndEpoch(0, s)
	if r != 0 {
		t.Fatalf("comfortable slices should not reconfigure, got %d ops (%v)", r, s.Topology())
	}
}

func TestNoMergeBothOverflowDifferentASID(t *testing.T) {
	c := New(DefaultOptions())
	s := newSys(t, topology.AllPrivate(4))
	plantL3(s, 0, 1.5)
	plantL3(s, 1, 1.5)
	c.EndEpoch(0, s)
	if s.Topology().L3.SameGroup(0, 1) {
		t.Fatal("two starved, unrelated applications must not merge (no benefit)")
	}
}

func TestSharingMerge(t *testing.T) {
	c := New(DefaultOptions())
	s := newSys(t, topology.AllPrivate(4))
	// Cores 0 and 1 run one address space and share most of their moderate
	// footprints.
	s.SetCoreASID(0, 9)
	s.SetCoreASID(1, 9)
	lines := int(0.8 * float64(s.Params().L3SliceBytes/mem.LineSize))
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			line := mem.Line(i)
			for _, core := range []int{0, 1} {
				s.L1Cache(core).Invalidate(9, line)
				s.Access(core, mem.Access{Line: line, ASID: 9}, 0)
			}
		}
	}
	r, _ := c.EndEpoch(0, s)
	if r == 0 || !s.Topology().L3.SameGroup(0, 1) {
		t.Fatalf("data-sharing threads should merge (rule ii), topology %v", s.Topology())
	}
}

func TestL2MergeDragsL3(t *testing.T) {
	// An L2 merge is only legal when the covering L3 groups merge too
	// (§2.2); the controller must perform both.
	c := New(DefaultOptions())
	s := newSys(t, topology.AllPrivate(4))
	s.SetCoreASID(0, 9)
	s.SetCoreASID(1, 9)
	// Plant L2-level sharing demand directly: L2 demand marks on L2 hits.
	lines := int(1.2 * float64(s.Params().L2SliceBytes/mem.LineSize))
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			line := mem.Line(i)
			for _, core := range []int{0, 1} {
				s.L1Cache(core).Invalidate(9, line)
				s.Access(core, mem.Access{Line: line, ASID: 9}, 0)
			}
		}
	}
	c.EndEpoch(0, s)
	topo := s.Topology()
	if topo.L2.SameGroup(0, 1) && !topo.L3.SameGroup(0, 1) {
		t.Fatalf("L2 merged without covering L3 merge: %v", topo)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitOnInterference(t *testing.T) {
	opts := DefaultOptions()
	opts.Hysteresis = 0
	c := New(opts)
	topo := topology.Topology{
		L2: topology.Private(4),
		L3: mustGroups(t, 4, [][]int{{0, 1}, {2}, {3}}),
	}
	s := newSys(t, topo)
	// Both members of the merged pair become starved, unrelated apps.
	plantL3(s, 0, 1.5)
	plantL3(s, 1, 1.5)
	r, _ := c.EndEpoch(0, s)
	if r == 0 || s.Topology().L3.SameGroup(0, 1) {
		t.Fatalf("destructive interference should split, topology %v", s.Topology())
	}
	if c.Splits() == 0 {
		t.Fatal("split counter not incremented")
	}
}

func TestStaleMergeSplits(t *testing.T) {
	opts := DefaultOptions()
	opts.Hysteresis = 0
	c := New(opts)
	topo := topology.Topology{
		L2: topology.Private(4),
		L3: mustGroups(t, 4, [][]int{{0, 1}, {2}, {3}}),
	}
	s := newSys(t, topo)
	// Neither member uses the capacity: the merge is no longer justified.
	plantL3(s, 0, 0.1)
	plantL3(s, 1, 0.1)
	c.EndEpoch(0, s)
	if s.Topology().L3.SameGroup(0, 1) {
		t.Fatalf("stale merge should dissolve, topology %v", s.Topology())
	}
}

func TestHysteresisKeepsJustifiedMerge(t *testing.T) {
	c := New(DefaultOptions()) // default hysteresis 0.10
	topo := topology.Topology{
		L2: topology.Private(4),
		L3: mustGroups(t, 4, [][]int{{0, 1}, {2}, {3}}),
	}
	s := newSys(t, topo)
	// A capacity pair still near the thresholds: high side slightly under
	// High, low side slightly above Low — within the hysteresis band.
	plantL3(s, 0, 1.00)
	plantL3(s, 1, 0.50)
	c.EndEpoch(0, s)
	if !s.Topology().L3.SameGroup(0, 1) {
		t.Fatalf("merge within the hysteresis band should persist, topology %v", s.Topology())
	}
}

func TestMergeAggressiveLocksAgainstSplit(t *testing.T) {
	// The group merged this interval must not be split in the same interval
	// even if the post-merge signals would allow it (Fig. 6 arbitration).
	c := New(DefaultOptions())
	s := newSys(t, topology.AllPrivate(4))
	plantL3(s, 0, 1.5)
	c.EndEpoch(0, s)
	if !s.Topology().L3.SameGroup(0, 1) {
		t.Skip("no merge formed; nothing to arbitrate")
	}
}

func TestSplitAggressivePolicy(t *testing.T) {
	opts := DefaultOptions()
	opts.Conflict = SplitAggressive
	opts.Hysteresis = 0
	c := New(opts)
	if c.Name() != "MorphCache" {
		t.Fatal("name")
	}
	topo := topology.Topology{
		L2: topology.Private(4),
		L3: mustGroups(t, 4, [][]int{{0, 1}, {2, 3}}),
	}
	s := newSys(t, topo)
	// First pair interferes (split wanted); merging {0,1}+{2,3} would also
	// qualify by rule (i) at the pair level. Split-aggressive splits first
	// and the split halves stay locked against re-merging this interval.
	plantL3(s, 0, 1.4)
	plantL3(s, 1, 1.4)
	plantL3(s, 2, 0.1)
	plantL3(s, 3, 0.1)
	c.EndEpoch(0, s)
	if s.Topology().L3.SameGroup(0, 1) {
		t.Fatalf("split-aggressive should split the interfering pair, topology %v", s.Topology())
	}
	if s.Topology().L3.SameGroup(0, 2) {
		t.Fatalf("freshly split halves must not merge this interval, topology %v", s.Topology())
	}
}

func TestConflictPolicyString(t *testing.T) {
	if MergeAggressive.String() != "merge-aggressive" || SplitAggressive.String() != "split-aggressive" {
		t.Fatal("conflict policy strings")
	}
}

func TestCascadeToQuad(t *testing.T) {
	// Fig. 6's merge-aggressive resolution: a starved dual next to an idle
	// dual merges into a quad.
	c := New(DefaultOptions())
	topo := topology.Topology{
		L2: topology.Private(4),
		L3: mustGroups(t, 4, [][]int{{0, 1}, {2, 3}}),
	}
	s := newSys(t, topo)
	plantL3(s, 0, 1.6)
	plantL3(s, 1, 1.6)
	plantL3(s, 2, 0.1)
	plantL3(s, 3, 0.1)
	c.EndEpoch(0, s)
	if !s.Topology().L3.SameGroup(0, 2) {
		t.Fatalf("starved pair + idle pair should merge into a quad (Fig. 6), topology %v", s.Topology())
	}
}

func TestAsymmetricReporting(t *testing.T) {
	c := New(DefaultOptions())
	s := newSys(t, topology.AllPrivate(4))
	plantL3(s, 0, 1.5) // merge {0,1} only: asymmetric outcome
	r, asym := c.EndEpoch(0, s)
	if r > 0 && !asym {
		t.Fatalf("merging one pair of four slices is asymmetric, topology %v", s.Topology())
	}
}

func TestQoSThrottleUp(t *testing.T) {
	opts := DefaultOptions()
	opts.QoS = true
	c := New(opts)
	s := newSys(t, topology.AllPrivate(4))

	// Interval 0: force a merge.
	plantL3(s, 0, 1.5)
	for i := 0; i < 2000; i++ { // give core 1 a miss history
		s.Access(1, mem.Access{Line: mem.Line(1<<30 + i), ASID: 2}, 0)
	}
	c.EndEpoch(0, s)
	if !s.Topology().L3.SameGroup(0, 1) {
		t.Skip("no merge; QoS has nothing to react to")
	}
	s.ResetFootprints()
	s.ResetEpochCounters()

	// Interval 1: core 1's misses explode after the merge.
	for i := 0; i < 9000; i++ {
		s.Access(1, mem.Access{Line: mem.Line(2<<30 + i), ASID: 2}, 0)
	}
	before := c.MSATBounds()
	c.EndEpoch(1, s)
	after := c.MSATBounds()
	if !(after.High > before.High) {
		t.Fatalf("QoS should throttle MSAT up after hurting a core: %+v -> %+v", before, after)
	}
	if s.Topology().L3.SameGroup(0, 1) {
		t.Fatalf("QoS should retreat the hurt core toward private, topology %v", s.Topology())
	}
}

func TestExtensionArbitrarySizes(t *testing.T) {
	opts := DefaultOptions()
	opts.AllowArbitrarySizes = true
	c := New(opts)
	topo := topology.Topology{
		L2: topology.Private(4),
		L3: mustGroups(t, 4, [][]int{{0, 1}, {2}, {3}}),
	}
	s := newSys(t, topo)
	// The dual is starved; slice 2 is idle: a size-3 group is now legal.
	plantL3(s, 0, 1.6)
	plantL3(s, 1, 1.6)
	c.EndEpoch(0, s)
	g := s.Topology().L3
	if !g.SameGroup(1, 2) {
		t.Fatalf("arbitrary-size extension should annex the idle neighbor, topology %v", s.Topology())
	}
	if g.GroupSize(g.GroupOf(0)) != 3 {
		t.Fatalf("expected a size-3 group, topology %v", s.Topology())
	}
}

func TestExtensionNonNeighbors(t *testing.T) {
	opts := DefaultOptions()
	opts.AllowArbitrarySizes = true
	opts.AllowNonNeighbors = true
	c := New(opts)
	s := newSys(t, topology.AllPrivate(4))
	// Starved slice 0, idle slice 3 (slices 1, 2 moderately busy).
	plantL3(s, 0, 1.6)
	plantL3(s, 1, 0.8)
	plantL3(s, 2, 0.8)
	c.EndEpoch(0, s)
	if !s.Topology().L3.SameGroup(0, 3) {
		t.Fatalf("non-neighbor extension should pair 0 with 3, topology %v", s.Topology())
	}
	if err := s.Topology().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceOutput(t *testing.T) {
	var sb strings.Builder
	opts := DefaultOptions()
	opts.Trace = &sb
	c := New(opts)
	s := newSys(t, topology.AllPrivate(4))
	plantL3(s, 0, 1.5)
	c.EndEpoch(0, s)
	if c.Merges() > 0 && !strings.Contains(sb.String(), "merge") {
		t.Fatalf("trace missing merge records: %q", sb.String())
	}
}

func TestDefaultsSane(t *testing.T) {
	o := DefaultOptions()
	if o.MSAT.High <= o.MSAT.Low {
		t.Fatal("MSAT bounds inverted")
	}
	if o.MaxGroup != 16 || o.MaxPasses <= 0 {
		t.Fatalf("defaults %+v", o)
	}
	// Zero-value fix-ups in New.
	c := New(Options{MSAT: DefaultMSAT()})
	if c.opts.MaxGroup != 16 || c.opts.MaxPasses <= 0 {
		t.Fatalf("New did not default MaxGroup/MaxPasses: %+v", c.opts)
	}
}

func mustGroups(t *testing.T, n int, groups [][]int) topology.Grouping {
	t.Helper()
	g, err := topology.FromGroups(n, groups)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// plantL2Sharing drives two same-ASID cores over a common line set so that
// both accumulate L2-hit demand with high overlap, while keeping their
// L3-tempo demand minimal (lines stay L2-resident between touches).
func plantL2Sharing(s *hierarchy.System, a, b int, frac float64) {
	lines := int(frac * float64(s.Params().L2SliceBytes/mem.LineSize))
	asid := s.CoreASID(a)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			line := mem.Line(i)
			for _, core := range []int{a, b} {
				s.L1Cache(core).Invalidate(asid, line)
				s.Access(core, mem.Access{Line: line, ASID: asid}, 0)
			}
		}
	}
}

func TestL2MergeDragsL3Merge(t *testing.T) {
	// L3 has no merge reason of its own; the L2 sharing merge must pull the
	// covering L3 merge along (§2.2) — and count both operations.
	c := New(DefaultOptions())
	s := newSys(t, topology.AllPrivate(4))
	s.SetCoreASID(0, 9)
	s.SetCoreASID(1, 9)
	plantL2Sharing(s, 0, 1, 0.9)
	r, _ := c.EndEpoch(0, s)
	topo := s.Topology()
	if !topo.L2.SameGroup(0, 1) {
		t.Skipf("L2 sharing merge did not fire (utils: %v/%v, overlap %v)",
			s.CoresUtilization(hierarchy.L2, []int{0}),
			s.CoresUtilization(hierarchy.L2, []int{1}),
			s.CoresOverlap(hierarchy.L2, []int{0}, []int{1}))
	}
	if !topo.L3.SameGroup(0, 1) {
		t.Fatalf("L2 merge without covering L3 merge: %v", topo)
	}
	if r < 2 {
		t.Fatalf("the dragged L3 merge must count as a reconfiguration, got %d ops", r)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestL3SplitForcesStaleL2Split(t *testing.T) {
	// L3 group {0-3} with a spanning L2 group {1,2}: splitting the L3
	// requires splitting the L2 group first, which is allowed because its
	// merge is no longer justified.
	opts := DefaultOptions()
	opts.Hysteresis = 0
	c := New(opts)
	topo := topology.Topology{
		L2: mustGroups(t, 4, [][]int{{0}, {1, 2}, {3}}),
		L3: mustGroups(t, 4, [][]int{{0, 1, 2, 3}}),
	}
	s := newSys(t, topo)
	// Both L3 halves starved, different address spaces: interference split.
	for core := 0; core < 4; core++ {
		plantL3(s, core, 1.4)
	}
	c.EndEpoch(0, s)
	got := s.Topology()
	if got.L3.NumGroups() == 1 {
		t.Fatalf("interfering L3 group did not split: %v", got)
	}
	if got.L2.SameGroup(1, 2) {
		t.Fatalf("spanning L2 group must have been split first: %v", got)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestL3SplitAbandonedWhenL2Justified(t *testing.T) {
	// Same shape, but cores 1 and 2 share an address space with heavy L2
	// overlap: the spanning L2 merge stays justified, so the L3 split is
	// abandoned (§2.3's "only if the corresponding L2 caches can be split").
	opts := DefaultOptions()
	opts.Hysteresis = 0
	c := New(opts)
	topo := topology.Topology{
		L2: mustGroups(t, 4, [][]int{{0}, {1, 2}, {3}}),
		L3: mustGroups(t, 4, [][]int{{0, 1, 2, 3}}),
	}
	s := newSys(t, topo)
	s.SetCoreASID(1, 9)
	s.SetCoreASID(2, 9)
	plantL2Sharing(s, 1, 2, 0.9)
	plantL3(s, 0, 1.4)
	plantL3(s, 3, 1.4)
	c.EndEpoch(0, s)
	if !s.Topology().L2.SameGroup(1, 2) {
		t.Fatalf("justified L2 sharing group should survive: %v", s.Topology())
	}
	// The L3 group must still contain both slices of the L2 group.
	g := s.Topology().L3
	if g.GroupOf(1) != g.GroupOf(2) {
		t.Fatalf("L3 split across a justified L2 group: %v", s.Topology())
	}
}

func TestMaxGroupCap(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxGroup = 2
	c := New(opts)
	topo := topology.Topology{
		L2: topology.Private(4),
		L3: mustGroups(t, 4, [][]int{{0, 1}, {2, 3}}),
	}
	s := newSys(t, topo)
	plantL3(s, 0, 1.6)
	plantL3(s, 1, 1.6)
	plantL3(s, 2, 0.1)
	plantL3(s, 3, 0.1)
	c.EndEpoch(0, s)
	g := s.Topology().L3
	for gi := 0; gi < g.NumGroups(); gi++ {
		if g.GroupSize(gi) > 2 {
			t.Fatalf("MaxGroup=2 violated: %v", s.Topology())
		}
	}
}

func TestDecisionHistory(t *testing.T) {
	c := New(DefaultOptions())
	s := newSys(t, topology.AllPrivate(4))
	plantL3(s, 0, 1.5)
	c.EndEpoch(0, s)
	h := c.History()
	if len(h) == 0 {
		t.Fatal("no decisions recorded")
	}
	first := h[0]
	if !first.Merge || first.Level != hierarchy.L3 || first.Groups == "" {
		t.Fatalf("unexpected first decision %+v", first)
	}
	if first.Rule != "capacity" {
		t.Fatalf("decision rule %q, want capacity (one starved core, private donors)", first.Rule)
	}
	if first.Interval != 1 {
		t.Fatalf("interval %d, want 1", first.Interval)
	}
}

func TestCounterAccessors(t *testing.T) {
	c := New(DefaultOptions())
	s := newSys(t, topology.AllPrivate(4))
	plantL3(s, 0, 1.5)
	c.EndEpoch(0, s)
	if c.Intervals() != 1 {
		t.Fatalf("intervals %d", c.Intervals())
	}
	if c.Merges() > 0 && c.AsymmetricIntervals() == 0 {
		t.Fatal("single-pair merge should register as asymmetric")
	}
	if c.ThrottleUps() != 0 {
		t.Fatal("no QoS means no throttling")
	}
}
