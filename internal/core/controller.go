// Package core implements the MorphCache controller — the paper's primary
// contribution (§2): an ACFV-driven policy that merges and splits L2/L3
// cache slice groups at every reconfiguration interval.
//
// Decision rules (§2.2–2.4):
//
//   - Merge two neighboring groups when (i) one is highly utilized and the
//     other under-utilized (capacity sharing), or (ii) both are highly
//     utilized, their cores share one address space, and their ACFVs overlap
//     significantly (data sharing). "High" and "low" are the MSAT bounds
//     (default 60%/30% of capacity).
//
//   - Split a merged group when its halves are both highly utilized without
//     sharing (destructive interference), or both under-utilized (the merge
//     is no longer justified and remote-hit latency is pure loss).
//
//   - Correctness coupling: an L2 merge requires the covering L3 groups to
//     be merged (done eagerly — merging L3 is always safe); an L3 split
//     requires every L2 group beneath it to fit in one half (spanning L2
//     groups are split first if they qualify, otherwise the L3 split is
//     abandoned). This preserves inclusion (§2.2–2.3).
//
//   - Conflicts (Fig. 6) resolve per the configured aggressiveness: the
//     default merge-aggressive policy runs merges before splits and exempts
//     freshly merged groups from splitting within the interval;
//     split-aggressive does the reverse.
//
// QoS (§5.3): when enabled, the controller tracks per-core miss counts
// across intervals; a miss increase after a merge throttles the MSAT up
// (toward private), otherwise it relaxes back toward the configured bounds.
//
// Extensions (§5.5): AllowArbitrarySizes admits contiguous non-power-of-two
// groups; AllowNonNeighbors admits any group pair, with the hierarchy
// charging span-scaled bus latency for the physical fabric that must cover
// the gap.
package core

import (
	"fmt"
	"io"
	"sort"

	"morphcache/internal/hierarchy"
	"morphcache/internal/obs"
	"morphcache/internal/telemetry"
	"morphcache/internal/topology"
)

// MSAT is the Merge/Split Aggressiveness Threshold pair (h, l) of §2.2.
type MSAT struct {
	High, Low float64
}

// DefaultMSAT returns the default aggressiveness bounds. The paper's
// empirically chosen value is (60, 30) in units of ACFV bit-fraction, which
// saturates near full occupancy — 60% of ACFV bits set corresponds to an
// active working set at or beyond slice capacity. This simulator's
// utilization signal is an exact capacity fraction (hierarchy/footprint.go),
// so the equivalent operating point is (1.05, 0.45): a thread whose active
// set exceeds its group's capacity is starved ("highly utilized"), one
// below 45% has slack worth donating.
func DefaultMSAT() MSAT { return MSAT{High: 1.05, Low: 0.45} }

// ConflictPolicy arbitrates split/merge conflicts (§2.4).
type ConflictPolicy uint8

const (
	// MergeAggressive favors merges on conflict (the paper's default).
	MergeAggressive ConflictPolicy = iota
	// SplitAggressive favors splits on conflict.
	SplitAggressive
)

func (p ConflictPolicy) String() string {
	if p == SplitAggressive {
		return "split-aggressive"
	}
	return "merge-aggressive"
}

// Options configures a Controller.
type Options struct {
	// MSAT is the starting threshold pair.
	MSAT MSAT
	// Conflict selects the §2.4 arbitration policy.
	Conflict ConflictPolicy
	// OverlapThreshold is the "significant common 1s" bound of merge rule
	// (ii), as the fraction of the smaller footprint that is shared.
	OverlapThreshold float64
	// ShareHigh is the utilization bound of merge rule (ii): sharing-driven
	// merges pay off (replication and coherence savings) well before a
	// thread overflows its slice, so this sits below MSAT.High, which
	// governs the capacity rule (i).
	ShareHigh float64
	// MaxGroup caps the sharing degree (16 = up to all-shared).
	MaxGroup int
	// MaxPasses bounds cascading merge/split rounds per interval.
	MaxPasses int
	// QoS enables MSAT throttling (§5.3).
	QoS bool
	// QoSStep is the per-adjustment threshold delta.
	QoSStep float64
	// AllowArbitrarySizes admits contiguous groups of any size (§5.5).
	AllowArbitrarySizes bool
	// AllowNonNeighbors admits merging non-adjacent groups (§5.5); implies
	// arbitrary sizes.
	AllowNonNeighbors bool
	// Hysteresis widens the thresholds when judging whether an existing
	// merge is still justified, so phase noise at a threshold boundary does
	// not thrash the configuration.
	Hysteresis float64
	// Trace, when non-nil, receives a line per reconfiguration decision
	// (diagnostics).
	Trace io.Writer
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		MSAT:             DefaultMSAT(),
		Conflict:         MergeAggressive,
		OverlapThreshold: 0.15,
		ShareHigh:        0.60,
		MaxGroup:         16,
		MaxPasses:        4,
		QoSStep:          0.05,
		Hysteresis:       0.10,
	}
}

// Decision records one applied reconfiguration operation. It is the
// controller's in-process decision surface: the serve-mode audit plane
// and the telemetry recorder both derive their event streams from the
// same emit/record points that append here.
type Decision struct {
	// Interval is the reconfiguration interval the decision was made in.
	Interval int
	// Level is the cache level reconfigured.
	Level hierarchy.Level
	// Merge is true for a merge, false for a split.
	Merge bool
	// Rule names the decision rule that fired, using the telemetry
	// taxonomy: "capacity", "sharing", "interference", "stale", or
	// "fault" (a forced degradation split).
	Rule string
	// Groups describes the slice groups involved (before the operation).
	Groups string
}

// maxHistory bounds the retained decision log.
const maxHistory = 4096

// Controller is the MorphCache reconfiguration policy; it implements
// Policy over any Machine (the simulated hierarchy or the serve-mode
// cache).
type Controller struct {
	opts Options
	msat MSAT

	// QoS state.
	prevMisses  []uint64
	mergedLast  bool
	throttleUps int

	// Cumulative statistics (§2.4 reporting).
	merges, splits   int
	asymmetricConfig int
	intervals        int

	// lockedL2/L3 mark groups (by canonical first-member key) touched by
	// the favored operation this interval, exempt from the opposing one.
	locked map[lockKey]bool

	// degrade enables the graceful-degradation reactions to injected
	// faults (on by default); quarantined tracks which cores' corrupted
	// monitors have already been announced, so quarantine events fire on
	// transitions only.
	degrade     bool
	quarantined map[int]bool

	history []Decision

	// recorder, when non-nil, receives one telemetry.ReconfigEvent per
	// applied operation (primary and coupled); epoch is the absolute epoch
	// index of the interval being decided, stamped onto events.
	recorder telemetry.Recorder
	epoch    int

	// obs, when non-nil, counts applied merges/splits and fault vetoes in
	// the live metrics registry (DESIGN.md §10). Counting only: observation
	// never alters a decision.
	obs *obs.Observer
}

type lockKey struct {
	level hierarchy.Level
	first int
}

// New returns a controller with the given options.
func New(opts Options) *Controller {
	if opts.MaxGroup <= 0 {
		opts.MaxGroup = 16
	}
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = 4
	}
	return &Controller{opts: opts, msat: opts.MSAT, degrade: true}
}

// Name implements Policy.
func (c *Controller) Name() string {
	if !c.degrade {
		return "MorphCache-nodegrade"
	}
	return "MorphCache"
}

// SetDegradation toggles the graceful-degradation reactions to injected
// faults: quarantining corrupted ACFV monitors, refusing merges across dead
// bus links, and force-splitting groups a dead link cuts in two. On by
// default; the "morph-nodegrade" strawman policy turns it off to measure
// what the reactions are worth on a faulty machine.
func (c *Controller) SetDegradation(on bool) { c.degrade = on }

// SetRecorder implements telemetry.RecorderSettable: every applied
// reconfiguration operation is mirrored to r as a telemetry.ReconfigEvent
// carrying the ACFV inputs (utilizations, overlap) and MSAT bounds that
// produced the decision.
func (c *Controller) SetRecorder(r telemetry.Recorder) { c.recorder = r }

// SetObserver implements obs wiring (see sim.ObserverSettable): applied
// merges and splits, and fault vetoes of either, are counted into the
// observer's reconfiguration counters.
func (c *Controller) SetObserver(o *obs.Observer) { c.obs = o }

// emit mirrors one applied operation to the recorder. The utilization and
// overlap arguments are the decision's inputs, computed before the topology
// changed.
func (c *Controller) emit(l hierarchy.Level, op, rule, groups string, ua, ub, ov float64) {
	if c.recorder == nil {
		return
	}
	c.recorder.RecordReconfig(telemetry.ReconfigEvent{
		Epoch:    c.epoch,
		Level:    l.String(),
		Op:       op,
		Rule:     rule,
		Groups:   groups,
		UtilA:    ua,
		UtilB:    ub,
		Overlap:  ov,
		MSATHigh: c.msat.High,
		MSATLow:  c.msat.Low,
	})
}

// MSATBounds returns the current (possibly throttled) thresholds.
func (c *Controller) MSATBounds() MSAT { return c.msat }

// History returns the retained reconfiguration decisions, oldest first
// (bounded at maxHistory; older entries are dropped).
func (c *Controller) History() []Decision { return c.history }

func (c *Controller) record(l hierarchy.Level, merge bool, rule, groups string) {
	if merge {
		c.obs.CountReconfig("merge")
	} else {
		c.obs.CountReconfig("split")
	}
	if len(c.history) >= maxHistory {
		copy(c.history, c.history[1:])
		c.history = c.history[:maxHistory-1]
	}
	c.history = append(c.history, Decision{
		Interval: c.intervals,
		Level:    l,
		Merge:    merge,
		Rule:     rule,
		Groups:   groups,
	})
}

// Merges and Splits return cumulative operation counts.
func (c *Controller) Merges() int { return c.merges }

// Splits returns the cumulative split count.
func (c *Controller) Splits() int { return c.splits }

// Intervals returns how many reconfiguration intervals the controller has
// processed, and AsymmetricIntervals how many of its reconfiguring
// intervals ended in an asymmetric configuration (§2.4).
func (c *Controller) Intervals() int { return c.intervals }

// AsymmetricIntervals reports the §2.4 asymmetric-outcome count.
func (c *Controller) AsymmetricIntervals() int { return c.asymmetricConfig }

// ThrottleUps reports how many times the QoS guard raised the MSAT (§5.3).
func (c *Controller) ThrottleUps() int { return c.throttleUps }

// EndEpoch implements Policy: it examines the interval's ACFVs and
// reconfigures the machine.
func (c *Controller) EndEpoch(e int, sys Machine) (int, bool) {
	c.epoch = e
	c.intervals++
	c.locked = make(map[lockKey]bool)
	total := 0
	if c.degrade {
		total += c.degradePass(sys)
	}
	if c.opts.QoS {
		total += c.throttle(sys)
	}
	mergedThis := false
	for pass := 0; pass < c.opts.MaxPasses; pass++ {
		var n int
		if c.opts.Conflict == SplitAggressive {
			n = c.trySplits(sys)
			n += c.tryMerges(sys, &mergedThis)
		} else {
			n = c.tryMerges(sys, &mergedThis)
			n += c.trySplits(sys)
		}
		total += n
		if n == 0 {
			break
		}
	}

	if c.opts.QoS {
		c.mergedLast = mergedThis
		c.prevMisses = append(c.prevMisses[:0], sys.PerCoreMisses()...)
	}
	asym := !sys.Topology().IsSymmetric()
	if total > 0 && asym {
		c.asymmetricConfig++
	}
	return total, asym
}

// degradePass applies the graceful-degradation reactions before the
// ordinary merge/split rules run (§ fault model, DESIGN.md): corrupted
// ACFV monitors are quarantined (their garbage readings excluded from
// merge/split decisions via the mergeLevel/splitLevel filters), and any
// group a dead bus link cuts in two is force-split so its intra-group
// traffic stops riding the dead link. Every reaction is mirrored to the
// recorder under rule "fault".
func (c *Controller) degradePass(sys Machine) int {
	if !sys.HasFaults() {
		return 0
	}
	// Quarantine transitions: announce each monitor once on entering the
	// quarantine set and once on leaving it (healing), never in between.
	cur := make(map[int]bool)
	for _, core := range sys.CorruptMonitors() {
		cur[core] = true
		if !c.quarantined[core] {
			c.emit(hierarchy.L2, "quarantine", "fault", fmt.Sprintf("[%d]", core), 0, 0, 0)
		}
	}
	var healed []int
	for core := range c.quarantined {
		if !cur[core] {
			healed = append(healed, core)
		}
	}
	sort.Ints(healed)
	for _, core := range healed {
		c.emit(hierarchy.L2, "quarantine", "fault", fmt.Sprintf("[%d]", core), 0, 0, 0)
	}
	c.quarantined = cur

	// Forced splits: no group may span a dead bus link. L2 first (always
	// safe), then L3 — which forces spanning L2 groups apart regardless of
	// their merge justification (the link under them is gone).
	ops := 0
	for _, l := range []hierarchy.Level{hierarchy.L2, hierarchy.L3} {
		for {
			topo := sys.Topology()
			g := topo.L2
			if l == hierarchy.L3 {
				g = topo.L3
			}
			applied := false
			for gi := 0; gi < g.NumGroups(); gi++ {
				m := g.Members(gi)
				if len(m) < 2 || len(m)%2 != 0 || !sys.SpansDeadLink(l, m) {
					continue
				}
				var u1, u2, ov float64
				if c.recorder != nil {
					h1, h2 := m[:len(m)/2], m[len(m)/2:]
					u1 = sys.CoresUtilization(l, h1)
					u2 = sys.CoresUtilization(l, h2)
					ov = sys.CoresOverlap(l, h1, h2)
				}
				n, ok := c.applySplit(sys, l, gi, true)
				if !ok {
					continue
				}
				ops += n
				c.splits += n
				groups := fmt.Sprintf("%v", m)
				c.record(l, false, "fault", groups)
				c.emit(l, "split", "fault", groups, u1, u2, ov)
				// Keep the severed halves apart for the rest of the interval.
				c.locked[lockKey{l, m[0]}] = true
				c.locked[lockKey{l, m[len(m)/2]}] = true
				applied = true
				break // groupings changed; re-enumerate
			}
			if !applied {
				break
			}
		}
	}
	return ops
}

// mergeBlockedByFault vetoes a merge whose resulting group would span a
// dead bus link, or whose decision inputs include a quarantined monitor
// (garbage in, garbage topology out).
func (c *Controller) mergeBlockedByFault(sys Machine, l hierarchy.Level, ma, mb []int) bool {
	if !c.degrade || !sys.HasFaults() {
		return false
	}
	lo, hi := ma[0], ma[0]
	for _, set := range [][]int{ma, mb} {
		for _, s := range set {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
			if sys.MonitorCorrupt(s) {
				c.obs.CountReconfig("veto")
				return true
			}
		}
	}
	if sys.SpansDeadLink(l, []int{lo, hi}) {
		c.obs.CountReconfig("veto")
		return true
	}
	return false
}

// splitBlockedByFault vetoes ordinary (reading-driven) splits of groups
// whose monitors are quarantined: the readings that would justify the
// split cannot be trusted, so the topology is frozen around the corrupted
// core until the monitor recovers. Forced fault splits bypass this.
func (c *Controller) splitBlockedByFault(sys Machine, m []int) bool {
	if !c.degrade || !sys.HasFaults() {
		return false
	}
	for _, s := range m {
		if sys.MonitorCorrupt(s) {
			c.obs.CountReconfig("veto")
			return true
		}
	}
	return false
}

// throttle implements the §5.3 QoS adjustment: after an interval that
// performed merges, any core whose misses grew materially throttles the
// MSAT up (toward private) — and, concretely retreating toward the private
// configuration for the victims, splits the merged groups the worsened
// cores sit in (unless their halves still genuinely share data). When no
// core got worse, the thresholds relax back toward the configured bounds.
// Returns the number of reconfiguration operations performed.
func (c *Controller) throttle(sys Machine) int {
	if !c.mergedLast || len(c.prevMisses) == 0 {
		return 0
	}
	cur := sys.PerCoreMisses()
	ops := 0
	worse := false
	for i := range cur {
		if c.prevMisses[i] > 1000 && float64(cur[i]) > 1.05*float64(c.prevMisses[i]) {
			worse = true
			ops += c.qosSplitAround(sys, i)
		}
	}
	if worse {
		c.msat.High = minf(c.msat.High+c.opts.QoSStep, 1.6)
		c.msat.Low = maxf(c.msat.Low-c.opts.QoSStep, 0.05)
		c.throttleUps++
	} else {
		c.msat.High = maxf(c.msat.High-c.opts.QoSStep, c.opts.MSAT.High)
		c.msat.Low = minf(c.msat.Low+c.opts.QoSStep, c.opts.MSAT.Low)
	}
	return ops
}

// qosSplitAround splits the merged groups containing a hurt core, L2 first
// (always safe), then its L3 group if the coupling rules allow, and locks
// the results so this interval's merge pass cannot re-form them.
func (c *Controller) qosSplitAround(sys Machine, core int) int {
	ops := 0
	for _, l := range []hierarchy.Level{hierarchy.L2, hierarchy.L3} {
		topo := sys.Topology()
		g := topo.L2
		if l == hierarchy.L3 {
			g = topo.L3
		}
		gi := g.GroupOf(core)
		m := g.Members(gi)
		if len(m) < 2 || len(m)%2 != 0 {
			continue
		}
		h1, h2 := m[:len(m)/2], m[len(m)/2:]
		// Do not break genuine data sharing: the hurt would not come from
		// capacity interference there.
		if sys.SlicesShareASID(h1, h2) && sys.CoresOverlap(l, h1, h2) > c.opts.OverlapThreshold {
			continue
		}
		var u1, u2, ov float64
		if c.recorder != nil {
			u1 = sys.CoresUtilization(l, h1)
			u2 = sys.CoresUtilization(l, h2)
			ov = sys.CoresOverlap(l, h1, h2)
		}
		n, ok := c.applySplit(sys, l, gi, false)
		if ok {
			ops += n
			c.splits += n
			c.locked[lockKey{l, m[0]}] = true
			c.locked[lockKey{l, h2[0]}] = true
			c.emit(l, "split", "qos", fmt.Sprintf("%v", m), u1, u2, ov)
		}
	}
	return ops
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// mergeRule evaluates §2.2's two merge rules over two groups of threads
// (cores map one-to-one to slices), returning the rule that fired —
// "capacity" for rule (i), "sharing" for rule (ii), "" for no merge — along
// with the ACFV inputs compared (utilizations of the two sides and their
// overlap). The margin relaxes the bounds: merge decisions use margin 0,
// while "is this existing merge still justified" checks pass a positive
// margin so that groups are not torn down by boundary flicker (hysteresis).
func (c *Controller) mergeRule(sys Machine, l hierarchy.Level, a, b []int, margin float64) (rule string, ua, ub, ov float64) {
	ua = sys.CoresUtilization(l, a)
	ub = sys.CoresUtilization(l, b)
	ov = sys.CoresOverlap(l, a, b)
	h, lo := c.msat.High-margin, c.msat.Low+margin
	// (i) capacity sharing: one side starved, the other with slack.
	if (ua > h && ub < lo) || (ub > h && ua < lo) {
		return "capacity", ua, ub, ov
	}
	// (ii) data sharing: both hot, one address space, overlapping ACFVs.
	// The overlap bar scales with the resulting group width: a wider shared
	// group gives up more of its access bandwidth, so the sharing it
	// captures must be proportionally larger. L3 traffic is a fraction of
	// L2 traffic, so its bar grows four times more slowly.
	// At least one side must be actively using its capacity; demanding it
	// of both would let one low-phase thread veto a merge that removes
	// cache-to-cache transfers and coherence invalidations for the rest.
	sh := c.opts.ShareHigh - margin
	if (ua > sh || ub > sh) && sys.SlicesShareASID(a, b) {
		bar := c.opts.OverlapThreshold - margin/2
		if l == hierarchy.L2 {
			// The L2 carries every L1 miss, so a wider shared L2 group
			// gives up real bandwidth; the sharing it captures must grow
			// with the width. The L3 sees an order of magnitude less
			// traffic and its sharing merges also remove cache-to-cache
			// transfers, so its bar stays flat.
			bar *= maxf(1, float64(len(a)+len(b))/2)
		}
		if ov > bar {
			return "sharing", ua, ub, ov
		}
	}
	return "", ua, ub, ov
}

// mergeCondition reports whether either §2.2 merge rule fires.
func (c *Controller) mergeCondition(sys Machine, l hierarchy.Level, a, b []int, margin float64) bool {
	rule, _, _, _ := c.mergeRule(sys, l, a, b, margin)
	return rule != ""
}

// splitRule evaluates the §2.3 split rule over a group's two halves (by
// thread demand), returning the rule that fired — "interference" (both
// halves starved without sharing), "stale" (the merge reason has lapsed
// even under the hysteresis margin), "" for no split — along with the ACFV
// inputs compared.
func (c *Controller) splitRule(sys Machine, l hierarchy.Level, h1, h2 []int) (rule string, u1, u2, ov float64) {
	u1 = sys.CoresUtilization(l, h1)
	u2 = sys.CoresUtilization(l, h2)
	ov = sys.CoresOverlap(l, h1, h2)
	h := c.msat.High
	if u1 > h && u2 > h {
		// Destructive interference — unless the halves genuinely share data.
		if sys.SlicesShareASID(h1, h2) && ov > c.opts.OverlapThreshold {
			return "", u1, u2, ov
		}
		return "interference", u1, u2, ov
	}
	// Stale merge: neither an imbalance nor a sharing justification remains
	// within the hysteresis band, so the group pays remote latency for
	// nothing.
	if !c.mergeCondition(sys, l, h1, h2, c.opts.Hysteresis) {
		return "stale", u1, u2, ov
	}
	return "", u1, u2, ov
}

// mergeCandidates enumerates group-id pairs eligible to merge under the
// configured reconfiguration space.
func (c *Controller) mergeCandidates(g topology.Grouping) [][2]int {
	var out [][2]int
	switch {
	case c.opts.AllowNonNeighbors:
		for a := 0; a < g.NumGroups(); a++ {
			for b := a + 1; b < g.NumGroups(); b++ {
				if g.GroupSize(a)+g.GroupSize(b) <= c.opts.MaxGroup {
					out = append(out, [2]int{a, b})
				}
			}
		}
	case c.opts.AllowArbitrarySizes:
		// Adjacent contiguous groups, any sizes.
		for a := 0; a < g.NumGroups(); a++ {
			ma := g.Members(a)
			next := ma[len(ma)-1] + 1
			if next >= g.N() {
				continue
			}
			b := g.GroupOf(next)
			if b != a && g.GroupSize(a)+g.GroupSize(b) <= c.opts.MaxGroup {
				out = append(out, [2]int{a, b})
			}
		}
	default:
		// Aligned power-of-two buddies (private/dual/quad/oct/all modes).
		seen := make(map[[2]int]bool)
		for a := 0; a < g.NumGroups(); a++ {
			b := g.BuddyOf(a)
			if b < 0 || g.GroupSize(a)+g.GroupSize(b) > c.opts.MaxGroup {
				continue
			}
			k := [2]int{min2(a, b), max2(a, b)}
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	// Deterministic order: by first slice of the lower group.
	sort.Slice(out, func(i, j int) bool {
		return g.Members(out[i][0])[0] < g.Members(out[j][0])[0]
	})
	return out
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// tryMerges performs one round of merges at both levels; returns the number
// of reconfiguration operations applied.
func (c *Controller) tryMerges(sys Machine, merged *bool) int {
	n := 0
	// L3-motivated merges first: always safe.
	n += c.mergeLevel(sys, hierarchy.L3)
	// L2 merges, pulling the covering L3 merge along when required.
	n += c.mergeLevel(sys, hierarchy.L2)
	if n > 0 {
		*merged = true
	}
	return n
}

func (c *Controller) mergeLevel(sys Machine, l hierarchy.Level) int {
	n := 0
	for {
		topo := sys.Topology()
		g := topo.L2
		if l == hierarchy.L3 {
			g = topo.L3
		}
		applied := false
		for _, pair := range c.mergeCandidates(g) {
			a, b := pair[0], pair[1]
			ma, mb := g.Members(a), g.Members(b)
			if c.locked[lockKey{l, ma[0]}] || c.locked[lockKey{l, mb[0]}] {
				continue
			}
			if c.mergeBlockedByFault(sys, l, ma, mb) {
				continue
			}
			rule, ua, ub, ov := c.mergeRule(sys, l, ma, mb, 0)
			if rule == "" {
				continue
			}
			ops, ok := c.applyMerge(sys, l, a, b)
			if ok {
				groups := fmt.Sprintf("%v+%v", ma, mb)
				c.record(l, true, rule, groups)
				c.emit(l, "merge", rule, groups, ua, ub, ov)
				if c.opts.Trace != nil {
					// The utilizations are the decision's inputs (pre-apply).
					fmt.Fprintf(c.opts.Trace, "merge %v %v+%v u=(%.2f,%.2f) ov=%.2f\n",
						l, ma, mb, ua, ub, ov)
				}
			}
			if ok {
				n += ops
				c.merges += ops
				applied = true
				break // groupings changed; re-enumerate
			}
		}
		if !applied {
			return n
		}
	}
}

// applyMerge merges groups a and b at the level, first merging the covering
// L3 groups if an L2 merge requires it (§2.2). Returns the number of
// operations performed and whether the merge succeeded.
func (c *Controller) applyMerge(sys Machine, l hierarchy.Level, a, b int) (int, bool) {
	topo := sys.Topology()
	ops := 0
	if l == hierarchy.L2 {
		// Correctness: the merged L2 group must lie inside one L3 group.
		ma, mb := topo.L2.Members(a), topo.L2.Members(b)
		ha := topo.L3.GroupOf(ma[0])
		hb := topo.L3.GroupOf(mb[0])
		if ha != hb {
			if topo.L3.GroupSize(ha)+topo.L3.GroupSize(hb) > c.opts.MaxGroup {
				return 0, false
			}
			mha, mhb := topo.L3.Members(ha), topo.L3.Members(hb)
			if c.mergeBlockedByFault(sys, hierarchy.L3, mha, mhb) {
				return 0, false
			}
			var ua3, ub3, ov3 float64
			if c.recorder != nil {
				ua3 = sys.CoresUtilization(hierarchy.L3, mha)
				ub3 = sys.CoresUtilization(hierarchy.L3, mhb)
				ov3 = sys.CoresOverlap(hierarchy.L3, mha, mhb)
			}
			l3g, err := topo.L3.MergeGroups(ha, hb)
			if err != nil {
				return 0, false
			}
			cand := topology.Topology{L2: topo.L2, L3: l3g}
			if cand.Validate() != nil {
				return 0, false
			}
			if err := sys.SetTopology(cand); err != nil {
				return 0, false
			}
			c.lockFirst(hierarchy.L3, min2(l3gFirst(l3g, ma[0]), l3gFirst(l3g, mb[0])))
			ops++
			c.emit(hierarchy.L3, "merge", "coupling", fmt.Sprintf("%v+%v", mha, mhb), ua3, ub3, ov3)
			topo = sys.Topology()
			a = topo.L2.GroupOf(ma[0])
			b = topo.L2.GroupOf(mb[0])
		}
		l2g, err := topo.L2.MergeGroups(a, b)
		if err != nil {
			return ops, ops > 0
		}
		cand := topology.Topology{L2: l2g, L3: topo.L3}
		if cand.Validate() != nil || sys.SetTopology(cand) != nil {
			return ops, ops > 0
		}
		c.lockFirst(hierarchy.L2, l2gFirst(l2g, ma[0]))
		return ops + 1, true
	}
	// L3 merge: always safe.
	first := topo.L3.Members(a)[0]
	l3g, err := topo.L3.MergeGroups(a, b)
	if err != nil {
		return 0, false
	}
	cand := topology.Topology{L2: topo.L2, L3: l3g}
	if cand.Validate() != nil || sys.SetTopology(cand) != nil {
		return 0, false
	}
	c.lockFirst(hierarchy.L3, l3gFirst(l3g, first))
	return 1, true
}

func l3gFirst(g topology.Grouping, member int) int { return g.Members(g.GroupOf(member))[0] }
func l2gFirst(g topology.Grouping, member int) int { return g.Members(g.GroupOf(member))[0] }

func (c *Controller) lockFirst(l hierarchy.Level, first int) {
	if c.opts.Conflict == MergeAggressive {
		c.locked[lockKey{l, first}] = true
	}
}

// trySplits performs one round of splits at both levels.
func (c *Controller) trySplits(sys Machine) int {
	// L2 splits are always safe; L3 splits may require them, so L2 first.
	n := c.splitLevel(sys, hierarchy.L2)
	n += c.splitLevel(sys, hierarchy.L3)
	return n
}

func (c *Controller) splitLevel(sys Machine, l hierarchy.Level) int {
	n := 0
	for {
		topo := sys.Topology()
		g := topo.L2
		if l == hierarchy.L3 {
			g = topo.L3
		}
		applied := false
		for gi := 0; gi < g.NumGroups(); gi++ {
			m := g.Members(gi)
			if len(m) < 2 || len(m)%2 != 0 {
				continue
			}
			if c.locked[lockKey{l, m[0]}] {
				continue
			}
			if c.splitBlockedByFault(sys, m) {
				continue
			}
			h1, h2 := m[:len(m)/2], m[len(m)/2:]
			rule, u1, u2, ov := c.splitRule(sys, l, h1, h2)
			if rule == "" {
				continue
			}
			ops, ok := c.applySplit(sys, l, gi, false)
			if ok {
				groups := fmt.Sprintf("%v", m)
				c.record(l, false, rule, groups)
				c.emit(l, "split", rule, groups, u1, u2, ov)
				if c.opts.Trace != nil {
					fmt.Fprintf(c.opts.Trace, "split %v %v u=(%.2f,%.2f)\n",
						l, m, u1, u2)
				}
			}
			if ok {
				n += ops
				c.splits += ops
				applied = true
				break
			}
		}
		if !applied {
			return n
		}
	}
}

// applySplit splits group gi at the level, first splitting any L2 groups
// that would span an L3 split's halves — but only if they themselves meet
// the split condition (§2.3). With force (fault degradation), spanning L2
// groups are split apart even when their merge is still justified: the
// link beneath them is physically gone.
func (c *Controller) applySplit(sys Machine, l hierarchy.Level, gi int, force bool) (int, bool) {
	topo := sys.Topology()
	ops := 0
	if l == hierarchy.L3 {
		m := topo.L3.Members(gi)
		half := len(m) / 2
		lowSet := make(map[int]bool, half)
		for _, s := range m[:half] {
			lowSet[s] = true
		}
		// Find L2 groups spanning the halves.
		for _, s := range m {
			l2g := topo.L2.GroupOf(s)
			mm := topo.L2.Members(l2g)
			spans := false
			inLow := lowSet[mm[0]]
			for _, x := range mm {
				if lowSet[x] != inLow {
					spans = true
					break
				}
			}
			if !spans {
				continue
			}
			if len(mm)%2 != 0 {
				return ops, false
			}
			h1, h2 := mm[:len(mm)/2], mm[len(mm)/2:]
			// "Can be split" (§2.3): the spanning L2 group may be forced
			// apart unless its own merge is still actively justified.
			if !force && c.mergeCondition(sys, hierarchy.L2, h1, h2, c.opts.Hysteresis) {
				return ops, false
			}
			var u1f, u2f, ovf float64
			if c.recorder != nil {
				u1f = sys.CoresUtilization(hierarchy.L2, h1)
				u2f = sys.CoresUtilization(hierarchy.L2, h2)
				ovf = sys.CoresOverlap(hierarchy.L2, h1, h2)
			}
			l2split, err := topo.L2.SplitGroup(l2g)
			if err != nil {
				return ops, false
			}
			cand := topology.Topology{L2: l2split, L3: topo.L3}
			if cand.Validate() != nil || sys.SetTopology(cand) != nil {
				return ops, false
			}
			if c.opts.Conflict == SplitAggressive {
				c.locked[lockKey{hierarchy.L2, mm[0]}] = true
				c.locked[lockKey{hierarchy.L2, mm[len(mm)/2]}] = true
			}
			ops++ // the forced L2 split counts as a reconfiguration
			c.emit(hierarchy.L2, "split", "coupling", fmt.Sprintf("%v", mm), u1f, u2f, ovf)
			topo = sys.Topology()
			gi = topo.L3.GroupOf(m[0])
		}
		l3split, err := topo.L3.SplitGroup(gi)
		if err != nil {
			return ops, ops > 0
		}
		cand := topology.Topology{L2: topo.L2, L3: l3split}
		if cand.Validate() != nil || sys.SetTopology(cand) != nil {
			return ops, ops > 0
		}
		if c.opts.Conflict == SplitAggressive {
			c.locked[lockKey{hierarchy.L3, m[0]}] = true
			c.locked[lockKey{hierarchy.L3, m[half]}] = true
		}
		return ops + 1, true
	}
	// L2 split: always safe.
	m := topo.L2.Members(gi)
	l2split, err := topo.L2.SplitGroup(gi)
	if err != nil {
		return 0, false
	}
	cand := topology.Topology{L2: l2split, L3: topo.L3}
	if cand.Validate() != nil || sys.SetTopology(cand) != nil {
		return 0, false
	}
	if c.opts.Conflict == SplitAggressive {
		c.locked[lockKey{hierarchy.L2, m[0]}] = true
		c.locked[lockKey{hierarchy.L2, m[len(m)/2]}] = true
	}
	return 1, true
}
