package core

import (
	"morphcache/internal/hierarchy"
	"morphcache/internal/topology"
)

// Machine is the surface a reconfiguration policy observes and rewires: the
// ACFV-derived footprint signals of §2.1, the topology mutation entry point,
// and the fault-status queries the graceful-degradation pass consumes. The
// simulated hierarchy (*hierarchy.System) implements it natively; the
// serve-mode cache (internal/serve) implements it over live multi-tenant
// traffic, with tenants playing the role of cores. Extracting the interface
// here lets the same Controller govern both without either importing the
// other.
type Machine interface {
	// Cores returns the number of cores (serve mode: tenant slots); slices
	// map one-to-one to cores at both levels.
	Cores() int
	// Topology returns the current slice grouping at both levels.
	Topology() topology.Topology
	// SetTopology applies a new grouping at an interval boundary.
	SetTopology(topology.Topology) error

	// CoresUtilization reports the interval's active-footprint fraction of
	// the group capacity backing the given cores at a level (§2.1's |ACFV|
	// signal, normalized to capacity).
	CoresUtilization(l hierarchy.Level, cores []int) float64
	// CoresOverlap reports the shared fraction of the two core sets'
	// footprints (common ACFV 1s over the smaller footprint).
	CoresOverlap(l hierarchy.Level, a, b []int) float64
	// SlicesShareASID reports whether every listed slice group is home to
	// the same address space (merge rule (ii)'s precondition).
	SlicesShareASID(slices ...[]int) bool
	// PerCoreMisses returns cumulative per-core miss counts (QoS, §5.3).
	PerCoreMisses() []uint64

	// HasFaults reports whether any fault is active; the remaining queries
	// refine it for the degradation pass.
	HasFaults() bool
	// CorruptMonitors lists cores whose ACFV monitors read garbage.
	CorruptMonitors() []int
	// MonitorCorrupt reports whether one core's monitor reads garbage.
	MonitorCorrupt(core int) bool
	// SpansDeadLink reports whether a group over the members would ride a
	// dead bus segment at the level.
	SpansDeadLink(l hierarchy.Level, members []int) bool
}

// Policy decides reconfigurations for a Machine at each interval boundary.
// The MorphCache Controller is the canonical implementation; the simulator
// (internal/sim) and the cache server (internal/serve) both drive their
// machines through this interface.
type Policy interface {
	// Name identifies the policy in reports and metrics.
	Name() string
	// EndEpoch runs after an interval completes, before footprint vectors
	// are reset, and returns the number of reconfiguration operations
	// applied and whether the resulting configuration is asymmetric.
	EndEpoch(e int, m Machine) (reconfigs int, asymmetric bool)
}

// Compile-time checks: the simulated hierarchy is a Machine, and the
// Controller is a Policy over it.
var (
	_ Machine = (*hierarchy.System)(nil)
	_ Policy  = (*Controller)(nil)
)
