package core

import (
	"testing"

	"morphcache/internal/fault"
	"morphcache/internal/hierarchy"
	"morphcache/internal/mem"
	"morphcache/internal/telemetry"
	"morphcache/internal/topology"
)

// inject applies fault events to a built hierarchy, failing the test on
// any rejection.
func inject(t *testing.T, s *hierarchy.System, events ...fault.Event) {
	t.Helper()
	for _, ev := range events {
		if err := s.ApplyFault(ev); err != nil {
			t.Fatal(err)
		}
	}
}

// pairTopo merges cores 0 and 1 at both levels, leaving 2 and 3 private.
func pairTopo(t *testing.T) topology.Topology {
	t.Helper()
	g, err := topology.Private(4).MergeGroups(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return topology.Topology{L2: g, L3: g}
}

// TestDegradeForcedSplitOffDeadLink checks the degradation pass splits a
// group spanning a dead bus link immediately, emits a rule:"fault" split
// event, and locks the halves so the very same epoch does not re-merge
// them.
func TestDegradeForcedSplitOffDeadLink(t *testing.T) {
	c := New(DefaultOptions())
	var log telemetry.Log
	c.SetRecorder(&log)
	s := newSys(t, pairTopo(t))
	inject(t, s,
		fault.Event{Kind: fault.LinkDead, Level: 2, Link: 0},
		fault.Event{Kind: fault.LinkDead, Level: 3, Link: 0},
	)
	ops, _ := c.EndEpoch(0, s)
	if ops == 0 {
		t.Fatal("dead link under a merged group triggered no reconfiguration")
	}
	if s.Topology().L2.SameGroup(0, 1) || s.Topology().L3.SameGroup(0, 1) {
		t.Fatalf("group still spans the dead link: %v", s.Topology())
	}
	if c.Splits() == 0 {
		t.Fatal("split counter not incremented")
	}
	faultSplits := 0
	for _, ev := range log.Reconfigs {
		if ev.Op == "split" && ev.Rule == "fault" {
			faultSplits++
		}
	}
	if faultSplits == 0 {
		t.Fatalf("no split event with rule \"fault\" recorded: %+v", log.Reconfigs)
	}
}

// TestDegradeMergeVetoAcrossDeadLink checks an otherwise-justified
// capacity merge is vetoed when the union would span a dead link, and
// that the identical controller with degradation disabled (the strawman)
// walks straight into it.
func TestDegradeMergeVetoAcrossDeadLink(t *testing.T) {
	for _, degrade := range []bool{true, false} {
		c := New(DefaultOptions())
		c.SetDegradation(degrade)
		s := newSys(t, topology.AllPrivate(4))
		inject(t, s,
			fault.Event{Kind: fault.LinkDead, Level: 2, Link: 0},
			fault.Event{Kind: fault.LinkDead, Level: 3, Link: 0},
		)
		// Core 0 overflows, core 1 idle: the capacity rule wants {0,1}.
		plantL3(s, 0, 1.5)
		c.EndEpoch(0, s)
		merged := s.Topology().L3.SameGroup(0, 1)
		if degrade && merged {
			t.Errorf("degrading controller merged across a dead link: %v", s.Topology())
		}
		if !degrade && !merged {
			t.Errorf("strawman controller should have ignored the dead link, topology %v", s.Topology())
		}
	}
}

// TestDegradeQuarantineTransitions checks a corrupted ACFV monitor is
// quarantined with exactly one "quarantine" event per transition (enter
// and, after healing, leave), and that merges whose inputs include the
// quarantined monitor are frozen while it lasts.
func TestDegradeQuarantineTransitions(t *testing.T) {
	c := New(DefaultOptions())
	var log telemetry.Log
	c.SetRecorder(&log)
	s := newSys(t, topology.AllPrivate(4))
	inject(t, s, fault.Event{Kind: fault.MonitorCorrupt, Core: 1, Duration: 2})
	// Corrupted readings saturate high, so without the quarantine core 1
	// would look overflowing next to an idle core 0.
	c.EndEpoch(0, s)
	if s.Topology().L3.SameGroup(0, 1) {
		t.Fatalf("merge driven by a corrupted monitor was not frozen: %v", s.Topology())
	}
	quar := func() int {
		n := 0
		for _, ev := range log.Reconfigs {
			if ev.Op == "quarantine" {
				n++
			}
		}
		return n
	}
	if got := quar(); got != 1 {
		t.Fatalf("quarantine events after first epoch = %d, want 1", got)
	}
	// Still corrupt: no repeat announcement.
	s.AgeFaults()
	c.EndEpoch(1, s)
	if got := quar(); got != 1 {
		t.Fatalf("quarantine re-announced while unchanged: %d events", got)
	}
	// Healed: leaving the quarantine set is the second transition.
	s.AgeFaults()
	if s.MonitorCorrupt(1) {
		t.Fatal("monitor did not heal after its duration elapsed")
	}
	c.EndEpoch(2, s)
	if got := quar(); got != 2 {
		t.Fatalf("quarantine events after healing = %d, want 2", got)
	}
}

// plantL2 plants a reused working set of frac × one L2 slice's capacity
// for a core: three passes over the set, so the second and third passes
// hit L2 and realize the two-touch L2-tempo reuse the ACF counts. The set
// must fit the core's L2 *group* for the later passes to hit (the caller
// picks frac accordingly).
func plantL2(s *hierarchy.System, core int, frac float64) {
	lines := int(frac * float64(s.Params().L2SliceBytes/mem.LineSize))
	asid := s.CoreASID(core)
	base := mem.Line(uint64(core+1) << 40)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			s.Access(core, mem.Access{Line: base + mem.Line(i), ASID: asid}, 0)
		}
	}
}

// TestDegradeSplitFrozenAroundCorruptMonitor checks reading-driven splits
// of a group with a quarantined member are suppressed — the readings that
// would justify the split are garbage — while the strawman splits away.
// Core 0's corrupted monitor saturates at 1.5 and core 1 genuinely runs
// hot at L2 (1.3× one slice, fitting the merged pair), so both halves
// read above MSAT-high: the L2 interference rule fires for any controller
// that trusts the readings.
func TestDegradeSplitFrozenAroundCorruptMonitor(t *testing.T) {
	for _, degrade := range []bool{true, false} {
		c := New(DefaultOptions())
		c.SetDegradation(degrade)
		s := newSys(t, pairTopo(t))
		inject(t, s, fault.Event{Kind: fault.MonitorCorrupt, Core: 0, Duration: 5})
		plantL2(s, 1, 1.3)
		c.EndEpoch(0, s)
		split := !s.Topology().L2.SameGroup(0, 1)
		if degrade && split {
			t.Errorf("split fired on quarantined (garbage) readings: %v", s.Topology())
		}
		if !degrade && !split {
			t.Errorf("strawman should split on apparent interference, topology %v", s.Topology())
		}
	}
}

// TestNodegradeName pins the strawman's reported policy name, which the
// experiment tables and memo keys rely on.
func TestNodegradeName(t *testing.T) {
	c := New(DefaultOptions())
	if got := c.Name(); got != "MorphCache" {
		t.Errorf("default Name() = %q, want MorphCache", got)
	}
	c.SetDegradation(false)
	if got := c.Name(); got != "MorphCache-nodegrade" {
		t.Errorf("Name() with degradation off = %q, want MorphCache-nodegrade", got)
	}
	c.SetDegradation(true)
	if got := c.Name(); got != "MorphCache" {
		t.Errorf("Name() after re-enabling = %q, want MorphCache", got)
	}
}

// TestDegradePassIdleOnHealthyMachine checks the degradation pass is a
// strict no-op without faults: no ops, no events, no quarantine state.
func TestDegradePassIdleOnHealthyMachine(t *testing.T) {
	c := New(DefaultOptions())
	var log telemetry.Log
	c.SetRecorder(&log)
	s := newSys(t, pairTopo(t))
	plantL3(s, 0, 0.8)
	plantL3(s, 1, 0.8)
	c.EndEpoch(0, s)
	for _, ev := range log.Reconfigs {
		if ev.Rule == "fault" || ev.Op == "quarantine" {
			t.Fatalf("fault reaction on a healthy machine: %+v", ev)
		}
	}
}
