package telemetry

import (
	"bytes"
	"testing"
)

// sampleCSV renders a small two-epoch log through the real writer so the
// inline fuzz seeds track schema changes automatically.
func sampleCSV(t testing.TB) []byte {
	l := NewLog()
	l.RecordEpoch(EpochRecord{
		Epoch: 0, Warmup: true, Topology: "(16:1:1)",
		Cores: []CoreEpoch{
			{Core: 0, IPC: 1.25, Instructions: 1000, Accesses: 300, L1Hits: 250,
				L2Hits: 30, L3Hits: 10, C2C: 2, MemReads: 8, MPKI: 10, AvgLatency: 7.5,
				L2Util: 0.5, L3Util: 0.25},
			{Core: 1, IPC: 0.75, Instructions: 600, MPKI: 33.3, AvgLatency: 40.25},
		},
		Bus: &BusEpoch{L2Transactions: 40, L2WaitCycles: 12, MemTransactions: 8, MemWaitCycles: 3},
	})
	l.RecordEpoch(EpochRecord{
		Epoch: 1, Topology: "(8:2:1)",
		Cores: []CoreEpoch{{Core: 0, IPC: 2, Instructions: 2000, MPKI: 1, AvgLatency: 4}},
	})
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCodecRoundTrip feeds arbitrary bytes to the CSV reader; every input
// the reader accepts must re-encode to a stable fixed point (write → read →
// write is byte-identical) and survive the JSON codec unchanged in shape.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(sampleCSV(f))
	f.Add([]byte(""))
	f.Add([]byte("epoch,warmup\n"))
	f.Add(bytes.Replace(sampleCSV(f), []byte("1.25"), []byte("NaN"), 1))
	f.Add(bytes.Replace(sampleCSV(f), []byte("(16:1:1)"), []byte("\"quoted,\ntopology\""), 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected: fine, as long as no panic
		}
		var first bytes.Buffer
		if err := l.WriteCSV(&first); err != nil {
			t.Fatalf("WriteCSV of accepted input failed: %v", err)
		}
		l2, err := ReadCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("ReadCSV rejected its own writer's output: %v\ninput: %q", err, first.String())
		}
		var second bytes.Buffer
		if err := l2.WriteCSV(&second); err != nil {
			t.Fatalf("second WriteCSV failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("CSV round trip is not a fixed point:\nfirst:  %q\nsecond: %q",
				first.String(), second.String())
		}
		var jb bytes.Buffer
		if err := l2.WriteJSON(&jb); err != nil {
			// JSON cannot encode NaN/Inf, which the CSV float fields admit;
			// there is nothing to round-trip for such logs.
			return
		}
		l3, err := ReadJSON(&jb)
		if err != nil {
			t.Fatalf("ReadJSON rejected WriteJSON output: %v", err)
		}
		var third bytes.Buffer
		if err := l3.WriteCSV(&third); err != nil {
			t.Fatalf("WriteCSV after JSON trip failed: %v", err)
		}
		if !bytes.Equal(second.Bytes(), third.Bytes()) {
			t.Fatalf("JSON trip changed the log:\nbefore: %q\nafter:  %q",
				second.String(), third.String())
		}
	})
}
