package telemetry

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// sampleLog builds a log exercising every field: two epochs (one warmup),
// two cores, bus counters, and a reconfiguration event of each op.
func sampleLog() *Log {
	l := NewLog()
	l.RecordEpoch(EpochRecord{
		Epoch: 0, Warmup: true, Topology: "(1:1:16)",
		Cores: []CoreEpoch{
			{Core: 0, IPC: 0.25, Instructions: 50_000, Accesses: 6_250,
				L1Hits: 4_000, L2Hits: 1_200, L3Hits: 700, C2C: 50, MemReads: 300,
				MPKI: 7, AvgLatency: 12.5, L2Util: 0.8, L3Util: 1.3},
			{Core: 1, IPC: 0.5, Instructions: 100_000, Accesses: 12_500,
				L1Hits: 9_000, L2Hits: 2_000, L3Hits: 1_000, C2C: 0, MemReads: 500,
				MPKI: 5, AvgLatency: 9.75, L2Util: 0.25, L3Util: 0.5},
		},
		Bus: &BusEpoch{L2Transactions: 3200, L2WaitCycles: 40,
			L3Transactions: 1700, L3WaitCycles: 12, MemTransactions: 800, MemWaitCycles: 96},
	})
	l.RecordReconfig(ReconfigEvent{
		Epoch: 1, Level: "L3", Op: "merge", Rule: "capacity",
		Groups: "[8]+[9]", UtilA: 0.396, UtilB: 1.313, Overlap: 0.993,
		MSATHigh: 1.05, MSATLow: 0.45,
	})
	l.RecordEpoch(EpochRecord{
		Epoch: 1, Topology: "(1:2:8)",
		Cores: []CoreEpoch{
			{Core: 0, IPC: 0.3, Instructions: 60_000},
			{Core: 1, IPC: 0.55, Instructions: 110_000},
		},
		Bus: &BusEpoch{},
	})
	l.RecordReconfig(ReconfigEvent{
		Epoch: 1, Level: "L2", Op: "split", Rule: "interference",
		Groups: "[0 1] -> [0]/[1]", UtilA: 1.4, UtilB: 1.2, Overlap: 0.1,
		MSATHigh: 1.05, MSATLow: 0.45,
	})
	return l
}

func TestJSONRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Errorf("JSON round-trip mismatch:\n got %+v\nwant %+v", got, l)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The CSV form carries epoch records only (reconfiguration events have
	// no flat rendering), so compare the epochs.
	if !reflect.DeepEqual(got.Epochs, l.Epochs) {
		t.Errorf("CSV round-trip mismatch:\n got %+v\nwant %+v", got.Epochs, l.Epochs)
	}
	if len(got.Reconfigs) != 0 {
		t.Errorf("CSV round-trip invented %d reconfig events", len(got.Reconfigs))
	}
}

func TestCSVSchema(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	wantHeader := strings.Join(CSVHeader(), ",")
	if lines[0] != wantHeader {
		t.Errorf("CSV header = %q, want %q", lines[0], wantHeader)
	}
	// One row per (epoch, core): 2 epochs x 2 cores.
	if got, want := len(lines)-1, 4; got != want {
		t.Errorf("CSV has %d data rows, want %d", got, want)
	}
	cols := len(CSVHeader())
	for i, line := range lines[1:] {
		if n := len(strings.Split(line, ",")); n != cols {
			t.Errorf("row %d has %d columns, want %d", i, n, cols)
		}
	}
}

func TestCSVHeaderIsACopy(t *testing.T) {
	h := CSVHeader()
	h[0] = "clobbered"
	if CSVHeader()[0] != "epoch" {
		t.Error("CSVHeader exposes internal state: mutation through the returned slice persisted")
	}
}

func TestCSVRejectsForeignHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("ReadCSV accepted a foreign header")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("ReadCSV accepted an empty stream")
	}
}

func TestBusCountersDelta(t *testing.T) {
	prev := BusCounters{L2Transactions: 10, L2WaitCycles: 2, L3Transactions: 5,
		L3WaitCycles: 1, MemTransactions: 3, MemWaitCycles: 7}
	cur := BusCounters{L2Transactions: 25, L2WaitCycles: 4, L3Transactions: 11,
		L3WaitCycles: 1, MemTransactions: 9, MemWaitCycles: 20}
	want := BusEpoch{L2Transactions: 15, L2WaitCycles: 2, L3Transactions: 6,
		L3WaitCycles: 0, MemTransactions: 6, MemWaitCycles: 13}
	if got := cur.Delta(prev); got != want {
		t.Errorf("Delta = %+v, want %+v", got, want)
	}
}

func TestThroughputSumsIPC(t *testing.T) {
	r := EpochRecord{Cores: []CoreEpoch{{IPC: 0.25}, {IPC: 0.5}, {IPC: 1.0}}}
	if got, want := r.Throughput(), 1.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("Throughput = %v, want %v", got, want)
	}
}

func TestNopRecorderAcceptsEverything(t *testing.T) {
	// The disabled path must be safe to call unconditionally.
	Nop{}.RecordEpoch(EpochRecord{})
	Nop{}.RecordReconfig(ReconfigEvent{})
}

func TestLogPreservesRecordOrder(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		l.RecordEpoch(EpochRecord{Epoch: i})
		l.RecordReconfig(ReconfigEvent{Epoch: i})
	}
	for i, e := range l.Epochs {
		if e.Epoch != i {
			t.Fatalf("epoch record %d has Epoch=%d", i, e.Epoch)
		}
	}
	for i, ev := range l.Reconfigs {
		if ev.Epoch != i {
			t.Fatalf("reconfig record %d has Epoch=%d", i, ev.Epoch)
		}
	}
}
