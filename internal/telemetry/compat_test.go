package telemetry

import (
	"encoding/json"
	"testing"
)

// oldEpochRecord mirrors the EpochRecord schema as it stood before latency
// summaries were added — the shape an already-deployed reader of
// morphcache-report/v1 documents decodes into.
type oldEpochRecord struct {
	Epoch    int         `json:"epoch"`
	Warmup   bool        `json:"warmup,omitempty"`
	Topology string      `json:"topology,omitempty"`
	Cores    []CoreEpoch `json:"cores"`
	Bus      *BusEpoch   `json:"bus,omitempty"`
	Faults   *FaultState `json:"faults,omitempty"`
}

// TestOldReadersParseLatencyRecords proves the latency field is a
// backward-compatible addition: a reader compiled against the previous
// schema decodes a record carrying latency summaries without error and
// sees every pre-existing field unchanged.
func TestOldReadersParseLatencyRecords(t *testing.T) {
	rec := EpochRecord{
		Epoch:    3,
		Topology: "(4:4:1)",
		Cores:    []CoreEpoch{{Core: 0, IPC: 1.5, Instructions: 1000, Accesses: 50}},
		Bus:      &BusEpoch{},
		Latency: &LatencySummary{
			L1:  &LatencyQuantiles{Count: 40, P50: 2.5, P95: 3, P99: 3},
			Mem: &LatencyQuantiles{Count: 10, P50: 310, P95: 350, P99: 390},
		},
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var old oldEpochRecord
	if err := json.Unmarshal(data, &old); err != nil {
		t.Fatalf("old reader failed on new record: %v", err)
	}
	if old.Epoch != 3 || old.Topology != "(4:4:1)" || len(old.Cores) != 1 || old.Cores[0].IPC != 1.5 {
		t.Fatalf("old reader mangled fields: %+v", old)
	}
}

// TestNewReadersParseOldRecords proves the reverse direction: documents
// written before the latency field existed decode into the current schema
// with a nil Latency.
func TestNewReadersParseOldRecords(t *testing.T) {
	data, err := json.Marshal(oldEpochRecord{
		Epoch: 1, Topology: "(16:1:1)",
		Cores: []CoreEpoch{{Core: 0, IPC: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rec EpochRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("new reader failed on old record: %v", err)
	}
	if rec.Latency != nil {
		t.Fatalf("old record grew a latency summary: %+v", rec.Latency)
	}
	if rec.Epoch != 1 || rec.Cores[0].IPC != 2 {
		t.Fatalf("fields mangled: %+v", rec)
	}
}

// TestLatencyOmittedWhenNil pins the JSON wire shape: an unobserved record
// serializes without any latency key at all, keeping default reports
// byte-identical to earlier releases.
func TestLatencyOmittedWhenNil(t *testing.T) {
	data, err := json.Marshal(EpochRecord{Epoch: 0, Cores: []CoreEpoch{}})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["latency"]; ok {
		t.Fatalf("nil latency serialized: %s", data)
	}
}
