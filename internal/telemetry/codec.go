package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON writes the log as indented JSON (one document; field names are
// the schema documented in DESIGN.md §8).
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}

// ReadJSON parses a log written by WriteJSON.
func ReadJSON(r io.Reader) (*Log, error) {
	var l Log
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, fmt.Errorf("telemetry: decode JSON log: %w", err)
	}
	return &l, nil
}

// csvHeader is the flat per-core-per-epoch CSV schema. One row per
// (epoch, core); epoch-wide fields (topology, bus counters) are repeated on
// every row of the epoch. Reconfiguration events are not representable in
// this flat form and are omitted — use JSON when they matter.
var csvHeader = []string{
	"epoch", "warmup", "topology", "core",
	"ipc", "instructions", "accesses",
	"l1_hits", "l2_hits", "l3_hits", "c2c", "mem_reads",
	"mpki", "avg_latency", "l2_util", "l3_util",
	"bus_l2_transactions", "bus_l2_wait_cycles",
	"bus_l3_transactions", "bus_l3_wait_cycles",
	"bus_mem_transactions", "bus_mem_wait_cycles",
}

// CSVHeader returns the flat schema's column names (a copy).
func CSVHeader() []string { return append([]string(nil), csvHeader...) }

// CSVRecords renders the epoch records as rows matching CSVHeader.
func (l *Log) CSVRecords() [][]string {
	var out [][]string
	for _, e := range l.Epochs {
		var bus BusEpoch
		if e.Bus != nil {
			bus = *e.Bus
		}
		for _, c := range e.Cores {
			out = append(out, []string{
				strconv.Itoa(e.Epoch),
				strconv.FormatBool(e.Warmup),
				e.Topology,
				strconv.Itoa(c.Core),
				formatFloat(c.IPC),
				strconv.FormatUint(c.Instructions, 10),
				strconv.FormatUint(c.Accesses, 10),
				strconv.FormatUint(c.L1Hits, 10),
				strconv.FormatUint(c.L2Hits, 10),
				strconv.FormatUint(c.L3Hits, 10),
				strconv.FormatUint(c.C2C, 10),
				strconv.FormatUint(c.MemReads, 10),
				formatFloat(c.MPKI),
				formatFloat(c.AvgLatency),
				formatFloat(c.L2Util),
				formatFloat(c.L3Util),
				strconv.FormatUint(bus.L2Transactions, 10),
				strconv.FormatUint(bus.L2WaitCycles, 10),
				strconv.FormatUint(bus.L3Transactions, 10),
				strconv.FormatUint(bus.L3WaitCycles, 10),
				strconv.FormatUint(bus.MemTransactions, 10),
				strconv.FormatUint(bus.MemWaitCycles, 10),
			})
		}
	}
	return out
}

// WriteCSV writes the epoch records as flat CSV, one row per (epoch, core).
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, rec := range l.CSVRecords() {
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a log written by WriteCSV. Bus counters are restored on
// every epoch (a zero-valued BusEpoch round-trips as zero counters, not as
// nil); reconfiguration events are not carried by the CSV form.
func ReadCSV(r io.Reader) (*Log, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("telemetry: decode CSV log: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("telemetry: CSV log has no header")
	}
	if len(rows[0]) != len(csvHeader) {
		return nil, fmt.Errorf("telemetry: CSV header has %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	for i, name := range csvHeader {
		if rows[0][i] != name {
			return nil, fmt.Errorf("telemetry: CSV column %d is %q, want %q", i, rows[0][i], name)
		}
	}
	l := NewLog()
	for _, row := range rows[1:] {
		p := &fieldParser{row: row}
		epoch := p.int()
		warmup := p.bool()
		topology := p.string()
		c := CoreEpoch{
			Core:         p.int(),
			IPC:          p.float(),
			Instructions: p.uint(),
			Accesses:     p.uint(),
			L1Hits:       p.uint(),
			L2Hits:       p.uint(),
			L3Hits:       p.uint(),
			C2C:          p.uint(),
			MemReads:     p.uint(),
			MPKI:         p.float(),
			AvgLatency:   p.float(),
			L2Util:       p.float(),
			L3Util:       p.float(),
		}
		bus := BusEpoch{
			L2Transactions:  p.uint(),
			L2WaitCycles:    p.uint(),
			L3Transactions:  p.uint(),
			L3WaitCycles:    p.uint(),
			MemTransactions: p.uint(),
			MemWaitCycles:   p.uint(),
		}
		if p.err != nil {
			return nil, fmt.Errorf("telemetry: decode CSV row: %w", p.err)
		}
		n := len(l.Epochs)
		if n == 0 || l.Epochs[n-1].Epoch != epoch {
			b := bus
			l.Epochs = append(l.Epochs, EpochRecord{
				Epoch: epoch, Warmup: warmup, Topology: topology, Bus: &b,
			})
			n++
		}
		l.Epochs[n-1].Cores = append(l.Epochs[n-1].Cores, c)
	}
	return l, nil
}

// formatFloat renders a float compactly but losslessly (round-trips via
// strconv.ParseFloat).
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// fieldParser consumes one CSV row left to right, latching the first error.
type fieldParser struct {
	row []string
	i   int
	err error
}

func (p *fieldParser) next() string {
	s := p.row[p.i]
	p.i++
	return s
}

func (p *fieldParser) string() string { return p.next() }

func (p *fieldParser) int() int {
	v, err := strconv.Atoi(p.next())
	if err != nil && p.err == nil {
		p.err = err
	}
	return v
}

func (p *fieldParser) uint() uint64 {
	v, err := strconv.ParseUint(p.next(), 10, 64)
	if err != nil && p.err == nil {
		p.err = err
	}
	return v
}

func (p *fieldParser) float() float64 {
	v, err := strconv.ParseFloat(p.next(), 64)
	if err != nil && p.err == nil {
		p.err = err
	}
	return v
}

func (p *fieldParser) bool() bool {
	v, err := strconv.ParseBool(p.next())
	if err != nil && p.err == nil {
		p.err = err
	}
	return v
}
