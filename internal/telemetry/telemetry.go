// Package telemetry is the observability layer of the simulator: a
// pluggable Recorder interface that captures structured per-epoch,
// per-core records and every MorphCache reconfiguration decision, plus
// JSON/CSV codecs for the records.
//
// Design constraints (DESIGN.md §8):
//
//   - Zero overhead when disabled. Nothing on the access path consults a
//     recorder; records are assembled only at epoch boundaries, and only
//     when a Recorder is installed (nil means off).
//   - Per-job recorders. Every simulation job owns its private Log, so the
//     parallel runner needs no synchronization and epoch logs are identical
//     at every worker count.
//   - Schema-stable. The JSON field names below are the machine-readable
//     contract the golden-report CI gate pins; changing any of them (or any
//     number they carry) must show up as an explicit golden diff.
//
// The package depends only on the standard library so that every layer of
// the simulator (hierarchy, engine, controller, facade, CLIs) can use it
// without import cycles.
package telemetry

// Recorder receives telemetry. Implementations need not be safe for
// concurrent use: the engine guarantees one goroutine per recorder (one
// recorder per simulation job).
type Recorder interface {
	// RecordEpoch is called once per epoch (warmup included, flagged), after
	// the epoch's references have executed and before the policy's
	// end-of-epoch reconfiguration runs — so occupancy fields reflect the
	// interval the record describes.
	RecordEpoch(EpochRecord)
	// RecordReconfig is called once per applied reconfiguration operation,
	// after the operation's epoch record was delivered.
	RecordReconfig(ReconfigEvent)
}

// RecorderSettable is implemented by simulation components (targets,
// policies) that can forward reconfiguration decisions to a recorder. The
// engine injects its recorder through this interface at run start.
type RecorderSettable interface {
	SetRecorder(Recorder)
}

// EpochRecord is one epoch's measurements across all cores.
type EpochRecord struct {
	// Epoch is the absolute epoch index, 0-based, counting warmup epochs.
	Epoch int `json:"epoch"`
	// Warmup marks unmeasured warmup epochs (excluded from paper metrics).
	Warmup bool `json:"warmup,omitempty"`
	// Topology is the (x:y:z) configuration in force during the epoch.
	Topology string `json:"topology,omitempty"`
	// Cores holds one record per core, in core order.
	Cores []CoreEpoch `json:"cores"`
	// Bus reports interconnect contention during the epoch (nil when the
	// target does not expose counters, e.g. the PIPP/DSR baselines).
	Bus *BusEpoch `json:"bus,omitempty"`
	// Faults reports the hierarchy's injected-fault state in force during
	// the epoch. Nil on fault-free runs, so their JSON (and the committed
	// goldens) is unchanged; the flat CSV form never carries fault state.
	Faults *FaultState `json:"faults,omitempty"`
	// Latency summarizes the epoch's access-latency distribution per
	// serving level. Nil unless the run was observed (DESIGN.md §10), so
	// default reports are unchanged; like reconfig events, latency
	// summaries never appear in the flat CSV form.
	Latency *LatencySummary `json:"latency,omitempty"`
}

// LatencySummary holds per-serving-level access-latency quantiles for one
// epoch, derived from the observer's fixed-bucket histograms (linear
// interpolation within a bucket, so values are approximate but
// deterministic). A level with no accesses in the epoch is nil.
type LatencySummary struct {
	L1  *LatencyQuantiles `json:"l1,omitempty"`
	L2  *LatencyQuantiles `json:"l2,omitempty"`
	L3  *LatencyQuantiles `json:"l3,omitempty"`
	C2C *LatencyQuantiles `json:"c2c,omitempty"`
	Mem *LatencyQuantiles `json:"mem,omitempty"`
}

// LatencyQuantiles is one level's latency distribution summary.
type LatencyQuantiles struct {
	// Count is the number of accesses the level served this epoch.
	Count uint64 `json:"count"`
	// P50/P95/P99 are latency quantiles in cycles.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// FaultState summarizes the injected hardware faults visible to the
// hierarchy at one epoch boundary. Every field is omitted when empty; a
// fault-free hierarchy reports a nil *FaultState instead of a zero one.
type FaultState struct {
	// DisabledWaysL2/L3[i] is the number of failed ways of slice i (the
	// slices hold a zero for every healthy slice once any slice fails).
	DisabledWaysL2 []int `json:"disabled_ways_l2,omitempty"`
	DisabledWaysL3 []int `json:"disabled_ways_l3,omitempty"`
	// DeadLinksL2/L3 list failed bus links (link l joins slices l, l+1).
	DeadLinksL2 []int `json:"dead_links_l2,omitempty"`
	DeadLinksL3 []int `json:"dead_links_l3,omitempty"`
	// DegradedLinksL2/L3 list slowed-but-alive links.
	DegradedLinksL2 []int `json:"degraded_links_l2,omitempty"`
	DegradedLinksL3 []int `json:"degraded_links_l3,omitempty"`
	// CorruptMonitors lists cores whose ACFV monitors currently read as
	// corrupt (quarantined by the controller's degradation policy).
	CorruptMonitors []int `json:"corrupt_monitors,omitempty"`
	// MemDerate is the memory channel's occupancy multiplier (0 or 1 when
	// healthy; omitted at 0).
	MemDerate float64 `json:"mem_derate,omitempty"`
}

// Throughput is the sum of per-core IPCs in the epoch.
func (e EpochRecord) Throughput() float64 {
	var t float64
	for _, c := range e.Cores {
		t += c.IPC
	}
	return t
}

// CoreEpoch is one core's activity during one epoch. Counters are epoch
// deltas, not cumulative totals. Units: IPC is instructions per CPU cycle;
// MPKI is per 1000 retired instructions; latencies are CPU cycles;
// utilizations are capacity fractions (>1 = working set exceeds capacity).
type CoreEpoch struct {
	Core int `json:"core"`
	// IPC is instructions retired per cycle over the epoch.
	IPC float64 `json:"ipc"`
	// Instructions retired in the epoch.
	Instructions uint64 `json:"instructions"`
	// Accesses is the number of memory references issued.
	Accesses uint64 `json:"accesses,omitempty"`
	// L1Hits/L2Hits/L3Hits count references served at each level (L2/L3
	// include remote hits within a merged group); C2C counts misses served
	// by another group's cache, MemReads off-chip reads.
	L1Hits   uint64 `json:"l1_hits,omitempty"`
	L2Hits   uint64 `json:"l2_hits,omitempty"`
	L3Hits   uint64 `json:"l3_hits,omitempty"`
	C2C      uint64 `json:"c2c,omitempty"`
	MemReads uint64 `json:"mem_reads,omitempty"`
	// MPKI is last-level (L3 group) misses — C2C + MemReads — per 1000
	// retired instructions.
	MPKI float64 `json:"mpki"`
	// AvgLatency is the mean access latency in CPU cycles over the epoch.
	AvgLatency float64 `json:"avg_latency"`
	// L2Util/L3Util are the core's active-footprint (ACFV) utilizations —
	// the controller's reuse-demand signal as a fraction of one slice's
	// capacity, sampled at epoch end before the per-interval reset.
	L2Util float64 `json:"l2_util"`
	L3Util float64 `json:"l3_util"`
}

// BusEpoch reports interconnect contention during one epoch: how many
// transactions each finite-bandwidth channel served and how many CPU cycles
// of queueing delay they suffered beyond the fixed access latencies.
type BusEpoch struct {
	L2Transactions  uint64 `json:"l2_transactions"`
	L2WaitCycles    uint64 `json:"l2_wait_cycles"`
	L3Transactions  uint64 `json:"l3_transactions"`
	L3WaitCycles    uint64 `json:"l3_wait_cycles"`
	MemTransactions uint64 `json:"mem_transactions"`
	MemWaitCycles   uint64 `json:"mem_wait_cycles"`
}

// BusCounters are cumulative interconnect counters (see Snapshot).
type BusCounters struct {
	L2Transactions, L2WaitCycles   uint64
	L3Transactions, L3WaitCycles   uint64
	MemTransactions, MemWaitCycles uint64
}

// Delta returns the per-epoch contention between two cumulative snapshots.
func (b BusCounters) Delta(prev BusCounters) BusEpoch {
	return BusEpoch{
		L2Transactions:  b.L2Transactions - prev.L2Transactions,
		L2WaitCycles:    b.L2WaitCycles - prev.L2WaitCycles,
		L3Transactions:  b.L3Transactions - prev.L3Transactions,
		L3WaitCycles:    b.L3WaitCycles - prev.L3WaitCycles,
		MemTransactions: b.MemTransactions - prev.MemTransactions,
		MemWaitCycles:   b.MemWaitCycles - prev.MemWaitCycles,
	}
}

// CoreCounters are one core's cumulative access counters (see Snapshot).
type CoreCounters struct {
	Accesses, L1Hits, L2Hits, L3Hits, C2C, MemReads, LatencySum uint64
}

// Snapshot is a cumulative counter snapshot a target exposes for epoch
// differencing, plus the per-core occupancy signals of the ending epoch.
type Snapshot struct {
	// Cores holds cumulative per-core counters, in core order.
	Cores []CoreCounters
	// Bus holds cumulative interconnect counters.
	Bus BusCounters
	// L2Util/L3Util are per-core active-footprint utilizations of the
	// current interval (not cumulative; they reset every epoch).
	L2Util, L3Util []float64
	// Faults is the hierarchy's current fault state (nil when fault-free).
	Faults *FaultState
}

// Snapshotter is implemented by targets that expose counter snapshots; the
// engine diffs consecutive snapshots into per-epoch records. Targets that
// do not implement it still produce records with IPC and instruction
// counts.
type Snapshotter interface {
	TelemetrySnapshot() Snapshot
}

// ReconfigEvent is one applied MorphCache reconfiguration operation with
// the ACFV inputs that triggered it.
type ReconfigEvent struct {
	// Epoch is the absolute epoch index the decision was made in (warmup
	// epochs included, matching EpochRecord.Epoch).
	Epoch int `json:"epoch"`
	// Level is the reconfigured cache level ("L2" or "L3").
	Level string `json:"level"`
	// Op is "merge", "split", or "quarantine" (a fault reaction that does
	// not change the topology: a corrupted monitor entering or leaving the
	// controller's quarantine set).
	Op string `json:"op"`
	// Rule names the decision rule that fired: "capacity" (merge rule i),
	// "sharing" (merge rule ii), "interference" or "stale" (split rules),
	// "qos" (§5.3 throttle split), "coupling" (an operation forced by
	// the inclusion-preserving L2/L3 coupling of §2.2–2.3), or "fault"
	// (a graceful-degradation reaction, DESIGN.md §9: forced splits off
	// dead bus links and monitor quarantine transitions).
	Rule string `json:"rule"`
	// Groups renders the slice groups involved, before the operation.
	Groups string `json:"groups"`
	// UtilA/UtilB are the two sides' ACFV utilizations (capacity fractions)
	// and Overlap the fraction of the smaller side's footprint both sides
	// reference — the inputs the merge/split conditions compared.
	UtilA   float64 `json:"util_a"`
	UtilB   float64 `json:"util_b"`
	Overlap float64 `json:"overlap"`
	// MSATHigh/MSATLow are the (possibly QoS-throttled) thresholds in force.
	MSATHigh float64 `json:"msat_high"`
	MSATLow  float64 `json:"msat_low"`
}

// Log is the standard in-memory Recorder: it retains every record in
// arrival order. One Log serves one simulation job; it is not safe for
// concurrent use.
type Log struct {
	Epochs    []EpochRecord   `json:"epochs"`
	Reconfigs []ReconfigEvent `json:"reconfig_events,omitempty"`
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// RecordEpoch implements Recorder.
func (l *Log) RecordEpoch(r EpochRecord) { l.Epochs = append(l.Epochs, r) }

// RecordReconfig implements Recorder.
func (l *Log) RecordReconfig(ev ReconfigEvent) { l.Reconfigs = append(l.Reconfigs, ev) }

// Nop is a Recorder that discards everything (useful as an explicit
// placeholder; a nil Recorder is equally valid everywhere).
type Nop struct{}

// RecordEpoch implements Recorder.
func (Nop) RecordEpoch(EpochRecord) {}

// RecordReconfig implements Recorder.
func (Nop) RecordReconfig(ReconfigEvent) {}
