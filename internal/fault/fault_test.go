package fault

import (
	"reflect"
	"testing"
)

// TestNewPlanDeterministic pins the core determinism contract: same seed and
// spec, same plan — and different seeds diverge.
func TestNewPlanDeterministic(t *testing.T) {
	spec := Spec{Cores: 16, FirstEpoch: 2, Epochs: 8, Events: 8}
	a, err := NewPlan(7, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(7, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a.Events, b.Events)
	}
	c, err := NewPlan(8, spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal plans have unequal fingerprints")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("distinct plans share a fingerprint")
	}
}

// TestNewPlanPrefixStable checks that growing Events appends without
// disturbing the prefix (event i depends only on (seed, i)).
func TestNewPlanPrefixStable(t *testing.T) {
	small, err := NewPlan(3, Spec{Cores: 8, Epochs: 10, Events: 4})
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewPlan(3, Spec{Cores: 8, Epochs: 10, Events: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(small.Events, big.Events[:4]) {
		t.Fatalf("prefix mismatch:\nsmall: %v\nbig:   %v", small.Events, big.Events[:4])
	}
}

// TestNewPlanInRange checks every drawn event validates and lands in the
// injection window.
func TestNewPlanInRange(t *testing.T) {
	spec := Spec{Cores: 4, FirstEpoch: 3, Epochs: 5, Events: 32}
	p, err := NewPlan(11, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Events); got != 32 {
		t.Fatalf("got %d events, want 32", got)
	}
	kinds := map[Kind]bool{}
	for _, e := range p.Events {
		if e.Epoch < 3 || e.Epoch >= 8 {
			t.Errorf("event %v outside window [3,8)", e)
		}
		kinds[e.Kind] = true
	}
	for _, k := range []Kind{WayDisable, LinkDead, LinkDegrade, MonitorCorrupt, MemDerate} {
		if !kinds[k] {
			t.Errorf("32-event plan never drew kind %s", k)
		}
	}
}

// TestValidateRejects checks descriptive rejection of malformed events.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"negative epoch", Event{Epoch: -1, Kind: MemDerate, Factor: 2}},
		{"bad level", Event{Kind: WayDisable, Level: 1, Ways: 1}},
		{"slice out of range", Event{Kind: WayDisable, Level: 2, Slice: 4, Ways: 1}},
		{"zero ways", Event{Kind: WayDisable, Level: 2, Slice: 0, Ways: 0}},
		{"link out of range", Event{Kind: LinkDead, Level: 2, Link: 3}},
		{"degrade factor below 1", Event{Kind: LinkDegrade, Level: 3, Link: 0, Factor: 0.5}},
		{"core out of range", Event{Kind: MonitorCorrupt, Core: -1}},
		{"negative duration", Event{Kind: MonitorCorrupt, Core: 0, Duration: -2}},
		{"derate below 1", Event{Kind: MemDerate, Factor: 0.9}},
		{"unknown kind", Event{Kind: Kind(99)}},
	}
	for _, tc := range cases {
		p := &Plan{Events: []Event{tc.ev}}
		if err := p.Validate(4); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.ev)
		}
	}
}

// TestValidateNilSafe checks the nil plan behaves as empty everywhere.
func TestValidateNilSafe(t *testing.T) {
	var p *Plan
	if err := p.Validate(16); err != nil {
		t.Errorf("nil plan failed validation: %v", err)
	}
	if !p.Empty() {
		t.Error("nil plan not Empty")
	}
	if got := p.At(0); got != nil {
		t.Errorf("nil plan At(0) = %v", got)
	}
	if got := p.Fingerprint(); got != "" {
		t.Errorf("nil plan fingerprint = %q", got)
	}
}

// TestAtFiltersByEpoch checks At returns exactly the events of one epoch in
// schedule order.
func TestAtFiltersByEpoch(t *testing.T) {
	p := &Plan{Events: []Event{
		{Epoch: 1, Kind: MemDerate, Factor: 2},
		{Epoch: 3, Kind: LinkDead, Level: 2, Link: 0},
		{Epoch: 1, Kind: MonitorCorrupt, Core: 2, Duration: 1},
	}}
	got := p.At(1)
	if len(got) != 2 || got[0].Kind != MemDerate || got[1].Kind != MonitorCorrupt {
		t.Errorf("At(1) = %v", got)
	}
	if got := p.At(2); got != nil {
		t.Errorf("At(2) = %v, want nil", got)
	}
}

// TestNewPlanRejectsBadSpecs covers the Spec guard rails.
func TestNewPlanRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Cores: 1, Epochs: 4, Events: 1},
		{Cores: 8, Epochs: 0, Events: 1},
		{Cores: 8, Epochs: 4, Events: -1},
		{Cores: 8, FirstEpoch: -1, Epochs: 4, Events: 1},
	}
	for _, s := range bad {
		if _, err := NewPlan(1, s); err == nil {
			t.Errorf("NewPlan accepted bad spec %+v", s)
		}
	}
}
