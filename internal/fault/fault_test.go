package fault

import (
	"reflect"
	"testing"
)

// TestNewPlanDeterministic pins the core determinism contract: same seed and
// spec, same plan — and different seeds diverge.
func TestNewPlanDeterministic(t *testing.T) {
	spec := Spec{Cores: 16, FirstEpoch: 2, Epochs: 8, Events: 8}
	a, err := NewPlan(7, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(7, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a.Events, b.Events)
	}
	c, err := NewPlan(8, spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal plans have unequal fingerprints")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("distinct plans share a fingerprint")
	}
}

// TestNewPlanPrefixStable checks that growing Events appends without
// disturbing the prefix (event i depends only on (seed, i)).
func TestNewPlanPrefixStable(t *testing.T) {
	small, err := NewPlan(3, Spec{Cores: 8, Epochs: 10, Events: 4})
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewPlan(3, Spec{Cores: 8, Epochs: 10, Events: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(small.Events, big.Events[:4]) {
		t.Fatalf("prefix mismatch:\nsmall: %v\nbig:   %v", small.Events, big.Events[:4])
	}
}

// TestNewPlanInRange checks every drawn event validates and lands in the
// injection window.
func TestNewPlanInRange(t *testing.T) {
	spec := Spec{Cores: 4, FirstEpoch: 3, Epochs: 5, Events: 32}
	p, err := NewPlan(11, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Events); got != 32 {
		t.Fatalf("got %d events, want 32", got)
	}
	kinds := map[Kind]bool{}
	for _, e := range p.Events {
		if e.Epoch < 3 || e.Epoch >= 8 {
			t.Errorf("event %v outside window [3,8)", e)
		}
		kinds[e.Kind] = true
	}
	for _, k := range []Kind{WayDisable, LinkDead, LinkDegrade, MonitorCorrupt, MemDerate} {
		if !kinds[k] {
			t.Errorf("32-event plan never drew kind %s", k)
		}
	}
}

// TestValidateRejects checks descriptive rejection of malformed events.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"negative epoch", Event{Epoch: -1, Kind: MemDerate, Factor: 2}},
		{"bad level", Event{Kind: WayDisable, Level: 1, Ways: 1}},
		{"slice out of range", Event{Kind: WayDisable, Level: 2, Slice: 4, Ways: 1}},
		{"zero ways", Event{Kind: WayDisable, Level: 2, Slice: 0, Ways: 0}},
		{"link out of range", Event{Kind: LinkDead, Level: 2, Link: 3}},
		{"degrade factor below 1", Event{Kind: LinkDegrade, Level: 3, Link: 0, Factor: 0.5}},
		{"core out of range", Event{Kind: MonitorCorrupt, Core: -1}},
		{"negative duration", Event{Kind: MonitorCorrupt, Core: 0, Duration: -2}},
		{"derate below 1", Event{Kind: MemDerate, Factor: 0.9}},
		{"unknown kind", Event{Kind: Kind(99)}},
	}
	for _, tc := range cases {
		p := &Plan{Events: []Event{tc.ev}}
		if err := p.Validate(4); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.ev)
		}
	}
}

// TestValidateNilSafe checks the nil plan behaves as empty everywhere.
func TestValidateNilSafe(t *testing.T) {
	var p *Plan
	if err := p.Validate(16); err != nil {
		t.Errorf("nil plan failed validation: %v", err)
	}
	if !p.Empty() {
		t.Error("nil plan not Empty")
	}
	if got := p.At(0); got != nil {
		t.Errorf("nil plan At(0) = %v", got)
	}
	if got := p.Fingerprint(); got != "" {
		t.Errorf("nil plan fingerprint = %q", got)
	}
}

// TestAtFiltersByEpoch checks At returns exactly the events of one epoch in
// schedule order.
func TestAtFiltersByEpoch(t *testing.T) {
	p := &Plan{Events: []Event{
		{Epoch: 1, Kind: MemDerate, Factor: 2},
		{Epoch: 3, Kind: LinkDead, Level: 2, Link: 0},
		{Epoch: 1, Kind: MonitorCorrupt, Core: 2, Duration: 1},
	}}
	got := p.At(1)
	if len(got) != 2 || got[0].Kind != MemDerate || got[1].Kind != MonitorCorrupt {
		t.Errorf("At(1) = %v", got)
	}
	if got := p.At(2); got != nil {
		t.Errorf("At(2) = %v, want nil", got)
	}
}

// TestNewPlanRejectsBadSpecs covers the Spec guard rails.
func TestNewPlanRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Cores: 1, Epochs: 4, Events: 1},
		{Cores: 8, Epochs: 0, Events: 1},
		{Cores: 8, Epochs: 4, Events: -1},
		{Cores: 8, FirstEpoch: -1, Epochs: 4, Events: 1},
	}
	for _, s := range bad {
		if _, err := NewPlan(1, s); err == nil {
			t.Errorf("NewPlan accepted bad spec %+v", s)
		}
	}
}

// TestServePlanDeterministic pins the serve-plan derivation: same seed,
// same plan; different seeds diverge; the cycle leads with WALWriteErr.
func TestServePlanDeterministic(t *testing.T) {
	spec := ServeSpec{Shards: 4, Epochs: 10, Events: 5}
	a, err := NewServePlan(7, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewServePlan(7, spec)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same seed diverged:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
	c, _ := NewServePlan(8, spec)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical serve plans")
	}
	if a.Events[0].Kind != WALWriteErr {
		t.Fatalf("serve cycle leads with %s, want wal-write-error", a.Events[0].Kind)
	}
	for i, e := range a.Events {
		if !e.Kind.ServeOnly() {
			t.Fatalf("event %d kind %s is not serve-only", i, e.Kind)
		}
		if e.Duration < 1 || e.Duration > 3 {
			t.Fatalf("event %d duration %d out of [1,3]", i, e.Duration)
		}
		if e.Kind == ShardStall && (e.Slice < 0 || e.Slice >= spec.Shards) {
			t.Fatalf("event %d shard %d out of range", i, e.Slice)
		}
	}
}

// TestServeSimKindSeparation: each layer's validator rejects the other
// layer's kinds, so a plan can never silently cross domains.
func TestServeSimKindSeparation(t *testing.T) {
	serve := &Plan{Events: []Event{{Kind: WALWriteErr, Duration: 1}}}
	if err := serve.Validate(8); err == nil {
		t.Fatal("simulator Validate accepted a serve-only kind")
	}
	if err := serve.ValidateServe(4); err != nil {
		t.Fatalf("ValidateServe rejected a valid serve plan: %v", err)
	}
	sim := &Plan{Events: []Event{{Kind: MemDerate, Factor: 2}}}
	if err := sim.ValidateServe(4); err == nil {
		t.Fatal("ValidateServe accepted a simulator-only kind")
	}
	if err := sim.Validate(8); err != nil {
		t.Fatalf("Validate rejected a valid sim plan: %v", err)
	}
}

// TestValidateServeRejects covers the serve guard rails.
func TestValidateServeRejects(t *testing.T) {
	bad := []Plan{
		{Events: []Event{{Kind: ShardStall, Slice: 4, Duration: 1}}},  // shard out of range
		{Events: []Event{{Kind: ShardStall, Slice: -1, Duration: 1}}}, // negative shard
		{Events: []Event{{Kind: WALWriteErr, Duration: -1}}},          // negative duration
		{Events: []Event{{Kind: DiskFull, Epoch: -1}}},                // negative epoch
	}
	for i := range bad {
		if err := bad[i].ValidateServe(4); err == nil {
			t.Errorf("ValidateServe accepted bad plan %d", i)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.ValidateServe(4); err != nil {
		t.Errorf("nil plan ValidateServe = %v", err)
	}
	if _, err := NewServePlan(1, ServeSpec{Shards: 0, Epochs: 1, Events: 1}); err == nil {
		t.Error("NewServePlan accepted zero shards")
	}
	if _, err := NewServePlan(1, ServeSpec{Shards: 2, Epochs: 0, Events: 1}); err == nil {
		t.Error("NewServePlan accepted zero epoch window")
	}
}
