// Package fault models deterministic hardware-fault injection for the
// simulated hierarchy.
//
// A Plan is a schedule of Events, each landing at the start of one epoch.
// Events describe cache way failures, segmented-bus link faults (dead or
// degraded), ACFV monitor corruption, and memory-channel derating. The plan
// is pure data: it never touches the hierarchy itself. internal/sim applies
// the events at epoch boundaries, and internal/hierarchy + internal/core
// implement the physical effect and the controller's graceful-degradation
// reaction (DESIGN.md §9).
//
// Determinism: NewPlan draws every event from rng.Derive(seed, index)
// streams, so a (seed, Spec) pair always yields the same plan, and because
// events are applied single-threaded at epoch boundaries, fault-enabled runs
// stay byte-identical at every -jobs count.
package fault

import (
	"fmt"
	"strings"

	"morphcache/internal/rng"
)

// Kind enumerates the modeled fault classes.
type Kind uint8

const (
	// WayDisable permanently disables the top Ways ways of one cache slice
	// (Level 2 or 3), shrinking its effective associativity and capacity.
	WayDisable Kind = iota
	// LinkDead marks one segmented-bus link (between slice Link and
	// Link+1 of a level's ring) as failed: traffic crossing it is
	// re-routed with a severe stall penalty, and the controller must not
	// form groups spanning it.
	LinkDead
	// LinkDegrade leaves a link functional but slow: remote traffic
	// crossing it pays Factor× the normal hop overhead.
	LinkDegrade
	// MonitorCorrupt corrupts Core's ACFV monitor hardware: its
	// utilization/overlap readings saturate (stuck-at-1 counters) until
	// the monitor self-heals after Duration epochs. The controller should
	// quarantine the core's readings rather than act on them.
	MonitorCorrupt
	// MemDerate multiplies the memory channel's service occupancy by
	// Factor (≥ 1), modeling a DRAM channel dropping to a slower speed bin.
	MemDerate

	// The kinds below target the serve layer (internal/serve), not the
	// simulated hierarchy: a simulator plan containing them fails
	// Validate, and a serve plan containing simulator kinds fails
	// ValidateServe. They reuse the Event fields (Slice as the shard
	// index, Duration as the epoch count), so Fingerprint is unchanged.

	// ShardStall stalls serve shard Slice for Duration epochs: operations
	// that hash to it shed with ErrShardStalled (HTTP 503 + Retry-After)
	// instead of queueing behind a wedged lock.
	ShardStall
	// WALWriteErr makes every write-ahead-log append fail for Duration
	// epochs (an I/O error on the log device). Persistent failure drops
	// the server to read-mostly degraded mode.
	WALWriteErr
	// DiskFull models ENOSPC on the log volume for Duration epochs:
	// appends and compactions both fail, driving the same read-mostly
	// degradation until space returns.
	DiskFull
)

func (k Kind) String() string {
	switch k {
	case WayDisable:
		return "way-disable"
	case LinkDead:
		return "link-dead"
	case LinkDegrade:
		return "link-degrade"
	case MonitorCorrupt:
		return "monitor-corrupt"
	case MemDerate:
		return "mem-derate"
	case ShardStall:
		return "shard-stall"
	case WALWriteErr:
		return "wal-write-error"
	case DiskFull:
		return "disk-full"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ServeOnly reports whether the kind targets the serve layer rather than
// the simulated hierarchy.
func (k Kind) ServeOnly() bool {
	switch k {
	case ShardStall, WALWriteErr, DiskFull:
		return true
	}
	return false
}

// Event is one scheduled fault. Fields are used per Kind; unused fields are
// zero.
type Event struct {
	// Epoch is the absolute epoch index (warmup included) at whose start
	// the event is applied.
	Epoch int
	// Kind selects the fault class.
	Kind Kind
	// Level is the cache level (2 or 3) for WayDisable, LinkDead, and
	// LinkDegrade.
	Level int
	// Slice is the slice index for WayDisable.
	Slice int
	// Ways is the number of ways to disable for WayDisable (cumulative
	// with earlier events on the same slice, clamped by the hierarchy so
	// at least one way survives).
	Ways int
	// Link is the bus link index (between slice Link and Link+1) for
	// LinkDead and LinkDegrade.
	Link int
	// Core is the corrupted monitor's core for MonitorCorrupt.
	Core int
	// Duration is how many epochs a MonitorCorrupt event persists before
	// the monitor self-heals (0 means one epoch).
	Duration int
	// Factor is the slowdown multiplier for LinkDegrade and MemDerate
	// (≥ 1; 1 is a no-op).
	Factor float64
}

func (e Event) String() string {
	switch e.Kind {
	case WayDisable:
		return fmt.Sprintf("epoch %d: disable %d way(s) of L%d slice %d", e.Epoch, e.Ways, e.Level, e.Slice)
	case LinkDead:
		return fmt.Sprintf("epoch %d: L%d bus link %d dead", e.Epoch, e.Level, e.Link)
	case LinkDegrade:
		return fmt.Sprintf("epoch %d: L%d bus link %d degraded %.2fx", e.Epoch, e.Level, e.Link, e.Factor)
	case MonitorCorrupt:
		return fmt.Sprintf("epoch %d: core %d ACFV monitor corrupt for %d epoch(s)", e.Epoch, e.Core, e.Duration)
	case MemDerate:
		return fmt.Sprintf("epoch %d: memory channel derated %.2fx", e.Epoch, e.Factor)
	case ShardStall:
		return fmt.Sprintf("epoch %d: serve shard %d stalled for %d epoch(s)", e.Epoch, e.Slice, e.Duration)
	case WALWriteErr:
		return fmt.Sprintf("epoch %d: WAL writes failing for %d epoch(s)", e.Epoch, e.Duration)
	case DiskFull:
		return fmt.Sprintf("epoch %d: WAL volume full for %d epoch(s)", e.Epoch, e.Duration)
	default:
		return fmt.Sprintf("epoch %d: %s", e.Epoch, e.Kind)
	}
}

// Plan is a deterministic fault schedule. The zero value (and nil) is a
// valid empty plan.
type Plan struct {
	// Seed records the generating seed for reporting; it has no effect on
	// a hand-built plan.
	Seed uint64
	// Events is the schedule. Order within an epoch is application order.
	Events []Event
}

// Empty reports whether the plan schedules nothing (nil-safe).
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// At returns the events scheduled for the given absolute epoch, in
// application order (nil-safe).
func (p *Plan) At(epoch int) []Event {
	if p == nil {
		return nil
	}
	var out []Event
	for _, e := range p.Events {
		if e.Epoch == epoch {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks every event against a machine with the given core count
// (cores slices per level, cores-1 bus links per level). It is nil-safe.
func (p *Plan) Validate(cores int) error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if e.Epoch < 0 {
			return fmt.Errorf("fault: event %d (%s): negative epoch", i, e)
		}
		switch e.Kind {
		case WayDisable:
			if e.Level != 2 && e.Level != 3 {
				return fmt.Errorf("fault: event %d (%s): level must be 2 or 3", i, e)
			}
			if e.Slice < 0 || e.Slice >= cores {
				return fmt.Errorf("fault: event %d (%s): slice out of range [0,%d)", i, e, cores)
			}
			if e.Ways < 1 {
				return fmt.Errorf("fault: event %d (%s): must disable at least one way", i, e)
			}
		case LinkDead, LinkDegrade:
			if e.Level != 2 && e.Level != 3 {
				return fmt.Errorf("fault: event %d (%s): level must be 2 or 3", i, e)
			}
			if e.Link < 0 || e.Link >= cores-1 {
				return fmt.Errorf("fault: event %d (%s): link out of range [0,%d)", i, e, cores-1)
			}
			if e.Kind == LinkDegrade && e.Factor < 1 {
				return fmt.Errorf("fault: event %d (%s): degrade factor must be >= 1", i, e)
			}
		case MonitorCorrupt:
			if e.Core < 0 || e.Core >= cores {
				return fmt.Errorf("fault: event %d (%s): core out of range [0,%d)", i, e, cores)
			}
			if e.Duration < 0 {
				return fmt.Errorf("fault: event %d (%s): negative duration", i, e)
			}
		case MemDerate:
			if e.Factor < 1 {
				return fmt.Errorf("fault: event %d (%s): derate factor must be >= 1", i, e)
			}
		case ShardStall, WALWriteErr, DiskFull:
			return fmt.Errorf("fault: event %d (%s): serve-only fault kind in a simulator plan", i, e)
		default:
			return fmt.Errorf("fault: event %d: unknown kind %d", i, uint8(e.Kind))
		}
	}
	return nil
}

// ValidateServe checks a serve-layer plan against a cache with the given
// shard count. Simulator-only kinds are rejected — the serve layer has no
// bus links or ACFV monitor hardware to break. It is nil-safe.
func (p *Plan) ValidateServe(shards int) error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if e.Epoch < 0 {
			return fmt.Errorf("fault: event %d (%s): negative epoch", i, e)
		}
		switch e.Kind {
		case ShardStall:
			if e.Slice < 0 || e.Slice >= shards {
				return fmt.Errorf("fault: event %d (%s): shard out of range [0,%d)", i, e, shards)
			}
			if e.Duration < 0 {
				return fmt.Errorf("fault: event %d (%s): negative duration", i, e)
			}
		case WALWriteErr, DiskFull:
			if e.Duration < 0 {
				return fmt.Errorf("fault: event %d (%s): negative duration", i, e)
			}
		default:
			return fmt.Errorf("fault: event %d (%s): simulator-only fault kind in a serve plan", i, e)
		}
	}
	return nil
}

// Fingerprint returns a stable textual digest of the plan, suitable for
// memo keys and report labels. Equal plans produce equal fingerprints; the
// empty plan's fingerprint is "" (nil-safe).
func (p *Plan) Fingerprint() string {
	if p.Empty() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, e := range p.Events {
		fmt.Fprintf(&b, ";%d:%d:%d:%d:%d:%d:%d:%d:%g",
			e.Epoch, e.Kind, e.Level, e.Slice, e.Ways, e.Link, e.Core, e.Duration, e.Factor)
	}
	return b.String()
}

// Spec parameterizes NewPlan.
type Spec struct {
	// Cores is the machine's core count (= slices per level).
	Cores int
	// FirstEpoch is the earliest absolute epoch an event may land on
	// (set it to the warmup count so faults hit the measured region).
	FirstEpoch int
	// Epochs is the width of the injection window starting at FirstEpoch.
	Epochs int
	// Events is how many events to draw.
	Events int
}

// kindCycle is the deterministic round-robin of event kinds NewPlan walks.
// Leading with a dead link guarantees every non-trivial plan exercises the
// controller's topology-fallback path; the rest covers the full taxonomy.
var kindCycle = []Kind{LinkDead, MonitorCorrupt, WayDisable, LinkDegrade, MemDerate, LinkDead, WayDisable, MonitorCorrupt}

// NewPlan draws a deterministic plan from the seed. Event i's parameters
// come from rng.Derive(seed, i), so plans with a shared seed prefix-match:
// growing Spec.Events appends events without disturbing earlier ones.
// Kinds follow a fixed round-robin so small plans still cover the taxonomy.
func NewPlan(seed uint64, spec Spec) (*Plan, error) {
	if spec.Cores < 2 {
		return nil, fmt.Errorf("fault: NewPlan needs >= 2 cores, got %d", spec.Cores)
	}
	if spec.Epochs < 1 {
		return nil, fmt.Errorf("fault: NewPlan needs a positive epoch window, got %d", spec.Epochs)
	}
	if spec.Events < 0 {
		return nil, fmt.Errorf("fault: NewPlan with negative event count %d", spec.Events)
	}
	if spec.FirstEpoch < 0 {
		return nil, fmt.Errorf("fault: NewPlan with negative first epoch %d", spec.FirstEpoch)
	}
	p := &Plan{Seed: seed}
	for i := 0; i < spec.Events; i++ {
		r := rng.Derive(seed, uint64(i))
		e := Event{
			Epoch: spec.FirstEpoch + r.Intn(spec.Epochs),
			Kind:  kindCycle[i%len(kindCycle)],
		}
		switch e.Kind {
		case WayDisable:
			e.Level = 2 + r.Intn(2)
			e.Slice = r.Intn(spec.Cores)
			e.Ways = 1 + r.Intn(2)
		case LinkDead:
			e.Level = 2 + r.Intn(2)
			e.Link = r.Intn(spec.Cores - 1)
		case LinkDegrade:
			e.Level = 2 + r.Intn(2)
			e.Link = r.Intn(spec.Cores - 1)
			e.Factor = 2 + 2*r.Float64() // 2x-4x hop slowdown
		case MonitorCorrupt:
			e.Core = r.Intn(spec.Cores)
			e.Duration = 2 + r.Intn(3)
		case MemDerate:
			e.Factor = 1.25 + 0.75*r.Float64() // 1.25x-2x channel derate
		}
		p.Events = append(p.Events, e)
	}
	if err := p.Validate(spec.Cores); err != nil {
		return nil, err
	}
	return p, nil
}

// ServeSpec parameterizes NewServePlan.
type ServeSpec struct {
	// Shards is the serve cache's shard count.
	Shards int
	// FirstEpoch is the earliest epoch an event may land on.
	FirstEpoch int
	// Epochs is the width of the injection window starting at FirstEpoch.
	Epochs int
	// Events is how many events to draw.
	Events int
}

// serveKindCycle leads with a WAL write-error so every non-trivial serve
// plan exercises the read-mostly degradation path.
var serveKindCycle = []Kind{WALWriteErr, ShardStall, DiskFull, ShardStall, WALWriteErr}

// NewServePlan draws a deterministic serve-layer plan from the seed, with
// the same prefix-stability property as NewPlan (event i comes from
// rng.Derive(seed, i), offset so serve and simulator plans with one seed
// do not correlate).
func NewServePlan(seed uint64, spec ServeSpec) (*Plan, error) {
	if spec.Shards < 1 {
		return nil, fmt.Errorf("fault: NewServePlan needs >= 1 shard, got %d", spec.Shards)
	}
	if spec.Epochs < 1 {
		return nil, fmt.Errorf("fault: NewServePlan needs a positive epoch window, got %d", spec.Epochs)
	}
	if spec.Events < 0 {
		return nil, fmt.Errorf("fault: NewServePlan with negative event count %d", spec.Events)
	}
	if spec.FirstEpoch < 0 {
		return nil, fmt.Errorf("fault: NewServePlan with negative first epoch %d", spec.FirstEpoch)
	}
	p := &Plan{Seed: seed}
	for i := 0; i < spec.Events; i++ {
		r := rng.Derive(seed, 0x5E12_F00D+uint64(i))
		e := Event{
			Epoch:    spec.FirstEpoch + r.Intn(spec.Epochs),
			Kind:     serveKindCycle[i%len(serveKindCycle)],
			Duration: 1 + r.Intn(3),
		}
		if e.Kind == ShardStall {
			e.Slice = r.Intn(spec.Shards)
		}
		p.Events = append(p.Events, e)
	}
	if err := p.ValidateServe(spec.Shards); err != nil {
		return nil, err
	}
	return p, nil
}
