// Package topology describes cache-slice groupings and whole-hierarchy
// topologies.
//
// The paper's notation (§1.2): a configuration (x:y:z) for a 16-core CMP
// means each L2 slice group is shared by x cores, each L3 group by y L2
// groups, and there are z L3 groups, with x*y*z = #cores. So (16:1:1) is
// all-shared L2 and L3, (1:1:16) is fully private, and (1:16:1) is private
// L2 with one shared L3.
//
// A Grouping is a partition of the per-core slices at one level into shared
// groups. MorphCache's default reconfiguration space restricts groups to
// aligned power-of-two runs of neighboring slices ("buddies": private, dual,
// quad, oct, all — §2), which is what the segmented bus can isolate. The
// §5.5 extensions relax this to arbitrary contiguous runs and, beyond that,
// to arbitrary sets realized over a spanning physical segment.
//
// A Topology is the pair of L2 and L3 groupings plus the inclusiveness
// correctness rule of §2.2–2.3: every L2 group must be contained in a single
// L3 group, otherwise a merged L2 could outgrow its (split) L3 and inclusion
// could not be maintained.
package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Grouping partitions n slices into groups. The zero value is not valid;
// use Private, Shared, FromGroups, or FromSpec.
type Grouping struct {
	n       int
	groupOf []int   // slice -> group id, ids dense, ordered by first member
	members [][]int // group id -> sorted slice indices
}

// Private returns the all-private grouping of n slices.
func Private(n int) Grouping {
	g := make([][]int, n)
	for i := range g {
		g[i] = []int{i}
	}
	gr, err := FromGroups(n, g)
	if err != nil {
		panic(err)
	}
	return gr
}

// Shared returns the single all-shared group over n slices.
func Shared(n int) Grouping {
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	gr, err := FromGroups(n, [][]int{all})
	if err != nil {
		panic(err)
	}
	return gr
}

// Uniform returns the grouping of n slices into contiguous groups of the
// given size. size must divide n.
func Uniform(n, size int) (Grouping, error) {
	if size <= 0 || n%size != 0 {
		return Grouping{}, fmt.Errorf("topology: group size %d does not divide %d slices", size, n)
	}
	groups := make([][]int, 0, n/size)
	for base := 0; base < n; base += size {
		g := make([]int, size)
		for i := range g {
			g[i] = base + i
		}
		groups = append(groups, g)
	}
	return FromGroups(n, groups)
}

// FromGroups builds a grouping from explicit member lists. The lists must
// form a partition of [0, n).
func FromGroups(n int, groups [][]int) (Grouping, error) {
	if n <= 0 {
		return Grouping{}, fmt.Errorf("topology: non-positive slice count %d", n)
	}
	groupOf := make([]int, n)
	for i := range groupOf {
		groupOf[i] = -1
	}
	members := make([][]int, 0, len(groups))
	for _, g := range groups {
		if len(g) == 0 {
			return Grouping{}, fmt.Errorf("topology: empty group")
		}
		m := append([]int(nil), g...)
		sort.Ints(m)
		for _, s := range m {
			if s < 0 || s >= n {
				return Grouping{}, fmt.Errorf("topology: slice %d out of range [0,%d)", s, n)
			}
			if groupOf[s] != -1 {
				return Grouping{}, fmt.Errorf("topology: slice %d in two groups", s)
			}
			groupOf[s] = -2 // placeholder until ids assigned
		}
		members = append(members, m)
	}
	for s, g := range groupOf {
		if g == -1 {
			return Grouping{}, fmt.Errorf("topology: slice %d not in any group", s)
		}
	}
	// Normalize: order groups by their first (smallest) member and assign
	// dense ids, so structurally equal groupings compare equal.
	sort.Slice(members, func(i, j int) bool { return members[i][0] < members[j][0] })
	for id, m := range members {
		for _, s := range m {
			groupOf[s] = id
		}
	}
	return Grouping{n: n, groupOf: groupOf, members: members}, nil
}

// N returns the number of slices.
func (g Grouping) N() int { return g.n }

// NumGroups returns the number of groups.
func (g Grouping) NumGroups() int { return len(g.members) }

// GroupOf returns the group id containing the slice.
func (g Grouping) GroupOf(slice int) int { return g.groupOf[slice] }

// Members returns the sorted member slices of the group. The returned slice
// must not be modified.
func (g Grouping) Members(group int) []int { return g.members[group] }

// GroupSize returns the number of slices in the group.
func (g Grouping) GroupSize(group int) int { return len(g.members[group]) }

// SameGroup reports whether two slices share a group.
func (g Grouping) SameGroup(a, b int) bool { return g.groupOf[a] == g.groupOf[b] }

// String renders the grouping as, e.g., "[0-3][4-5][6][7]". Non-contiguous
// groups render their member list: "[0,2]".
func (g Grouping) String() string {
	var b strings.Builder
	for _, m := range g.members {
		b.WriteByte('[')
		if contiguous(m) {
			if len(m) == 1 {
				b.WriteString(strconv.Itoa(m[0]))
			} else {
				fmt.Fprintf(&b, "%d-%d", m[0], m[len(m)-1])
			}
		} else {
			for i, s := range m {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(s))
			}
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Equal reports structural equality.
func (g Grouping) Equal(o Grouping) bool {
	if g.n != o.n || len(g.members) != len(o.members) {
		return false
	}
	for i := range g.groupOf {
		if g.groupOf[i] != o.groupOf[i] {
			return false
		}
	}
	return true
}

func contiguous(m []int) bool {
	for i := 1; i < len(m); i++ {
		if m[i] != m[i-1]+1 {
			return false
		}
	}
	return true
}

// IsBuddyGrouping reports whether every group is an aligned power-of-two
// contiguous run — the default MorphCache reconfiguration space (private /
// dual / quad / oct / all shared modes, §2).
func (g Grouping) IsBuddyGrouping() bool {
	for _, m := range g.members {
		sz := len(m)
		if sz&(sz-1) != 0 || !contiguous(m) || m[0]%sz != 0 {
			return false
		}
	}
	return true
}

// IsContiguous reports whether every group is a contiguous run of neighbors
// (the §5.5 "arbitrary number of neighboring cores" extension space).
func (g Grouping) IsContiguous() bool {
	for _, m := range g.members {
		if !contiguous(m) {
			return false
		}
	}
	return true
}

// Uniform reports whether all groups have equal size, and that size.
func (g Grouping) Uniform() (size int, ok bool) {
	size = len(g.members[0])
	for _, m := range g.members[1:] {
		if len(m) != size {
			return 0, false
		}
	}
	return size, true
}

// MergeGroups returns a new grouping with groups a and b fused. It does not
// check buddy alignment; callers enforce their own reconfiguration space.
func (g Grouping) MergeGroups(a, b int) (Grouping, error) {
	if a == b {
		return Grouping{}, fmt.Errorf("topology: merging group %d with itself", a)
	}
	groups := make([][]int, 0, len(g.members)-1)
	var fused []int
	for id, m := range g.members {
		switch id {
		case a, b:
			fused = append(fused, m...)
		default:
			groups = append(groups, m)
		}
	}
	groups = append(groups, fused)
	return FromGroups(g.n, groups)
}

// SplitGroup returns a new grouping with the group divided into its lower
// and upper halves (by sorted member order). The group size must be even.
func (g Grouping) SplitGroup(group int) (Grouping, error) {
	m := g.members[group]
	if len(m)%2 != 0 {
		return Grouping{}, fmt.Errorf("topology: splitting odd-size group %v", m)
	}
	groups := make([][]int, 0, len(g.members)+1)
	for id, mm := range g.members {
		if id == group {
			groups = append(groups, mm[:len(mm)/2], mm[len(mm)/2:])
		} else {
			groups = append(groups, mm)
		}
	}
	return FromGroups(g.n, groups)
}

// BuddyOf returns the group id that is the aligned buddy of the given group
// (the neighbor it may merge with in the buddy space), or -1 if the group
// has no same-size aligned buddy under the current grouping.
func (g Grouping) BuddyOf(group int) int {
	m := g.members[group]
	sz := len(m)
	if !contiguous(m) || sz&(sz-1) != 0 || m[0]%sz != 0 {
		return -1
	}
	var buddyFirst int
	if m[0]%(2*sz) == 0 {
		buddyFirst = m[0] + sz
	} else {
		buddyFirst = m[0] - sz
	}
	if buddyFirst < 0 || buddyFirst >= g.n {
		return -1
	}
	b := g.groupOf[buddyFirst]
	bm := g.members[b]
	if len(bm) != sz || !contiguous(bm) || bm[0] != buddyFirst {
		return -1
	}
	return b
}

// Topology is the full two-level sliced arrangement (L1s are always
// private).
type Topology struct {
	// L2 and L3 group the per-core L2 and L3 slices.
	L2, L3 Grouping
}

// Validate enforces the §2.2 correctness rule: every L2 group must be
// contained in exactly one L3 group, so that the inclusive L3 is always at
// least as large (per group) as the union of L2s beneath it.
func (t Topology) Validate() error {
	if t.L2.n != t.L3.n {
		return fmt.Errorf("topology: L2 has %d slices, L3 has %d", t.L2.n, t.L3.n)
	}
	for _, m := range t.L2.members {
		h := t.L3.groupOf[m[0]]
		for _, s := range m[1:] {
			if t.L3.groupOf[s] != h {
				return fmt.Errorf("topology: L2 group %v spans L3 groups", m)
			}
		}
	}
	return nil
}

// IsSymmetric reports whether the topology matches some (x:y:z): uniform
// group sizes at both levels with contiguous alignment.
func (t Topology) IsSymmetric() bool {
	x, ok := t.L2.Uniform()
	if !ok || !t.L2.IsContiguous() {
		return false
	}
	l3sz, ok := t.L3.Uniform()
	if !ok || !t.L3.IsContiguous() {
		return false
	}
	return l3sz%x == 0
}

// Spec returns the (x:y:z) string for a symmetric topology, or the explicit
// group lists otherwise.
func (t Topology) Spec() string {
	if t.IsSymmetric() {
		x, _ := t.L2.Uniform()
		l3sz, _ := t.L3.Uniform()
		y := l3sz / x
		z := t.L3.NumGroups()
		return fmt.Sprintf("(%d:%d:%d)", x, y, z)
	}
	return "L2" + t.L2.String() + " L3" + t.L3.String()
}

// String implements fmt.Stringer.
func (t Topology) String() string { return t.Spec() }

// Equal reports structural equality of both levels.
func (t Topology) Equal(o Topology) bool { return t.L2.Equal(o.L2) && t.L3.Equal(o.L3) }

// FromSpec parses "(x:y:z)" (parentheses optional) into a symmetric
// topology over n slices. It requires x*y*z == n.
func FromSpec(spec string, n int) (Topology, error) {
	s := strings.TrimSpace(spec)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Topology{}, fmt.Errorf("topology: spec %q is not x:y:z", spec)
	}
	var xyz [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return Topology{}, fmt.Errorf("topology: bad component %q in %q", p, spec)
		}
		xyz[i] = v
	}
	x, y, z := xyz[0], xyz[1], xyz[2]
	if x*y*z != n {
		return Topology{}, fmt.Errorf("topology: %q implies %d cores, want %d", spec, x*y*z, n)
	}
	l2, err := Uniform(n, x)
	if err != nil {
		return Topology{}, err
	}
	l3, err := Uniform(n, x*y)
	if err != nil {
		return Topology{}, err
	}
	t := Topology{L2: l2, L3: l3}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// AllPrivate returns (1:1:n), MorphCache's initial configuration (§2.2).
func AllPrivate(n int) Topology {
	return Topology{L2: Private(n), L3: Private(n)}
}

// AllShared returns (n:1:1), the paper's baseline.
func AllShared(n int) Topology {
	return Topology{L2: Shared(n), L3: Shared(n)}
}

// StandardSpecs lists the static configurations the paper compares against
// for a 16-core CMP (§5): the baseline and the four alternatives of Fig. 2,
// plus (2:2:4), the best weighted-speedup static of §5.1.
func StandardSpecs() []string {
	return []string{"(16:1:1)", "(1:1:16)", "(4:4:1)", "(8:2:1)", "(1:16:1)", "(2:2:4)"}
}
