package topology

import (
	"testing"
	"testing/quick"

	"morphcache/internal/rng"
)

func TestFromSpec(t *testing.T) {
	cases := []struct {
		spec               string
		l2Groups, l3Groups int
	}{
		{"(16:1:1)", 1, 1},
		{"(1:1:16)", 16, 16},
		{"(4:4:1)", 4, 1},
		{"(8:2:1)", 2, 1},
		{"(1:16:1)", 16, 1},
		{"(2:2:4)", 8, 4},
	}
	for _, c := range cases {
		topo, err := FromSpec(c.spec, 16)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if topo.L2.NumGroups() != c.l2Groups || topo.L3.NumGroups() != c.l3Groups {
			t.Fatalf("%s: groups L2=%d L3=%d, want %d/%d",
				c.spec, topo.L2.NumGroups(), topo.L3.NumGroups(), c.l2Groups, c.l3Groups)
		}
		if !topo.IsSymmetric() {
			t.Fatalf("%s should be symmetric", c.spec)
		}
		if topo.Spec() != c.spec {
			t.Fatalf("round trip: %s -> %s", c.spec, topo.Spec())
		}
	}
}

func TestFromSpecErrors(t *testing.T) {
	for _, s := range []string{"(4:4:4)", "4:4", "(a:1:1)", "(0:1:16)", "(16:1:1:1)"} {
		if _, err := FromSpec(s, 16); err == nil {
			t.Errorf("spec %q should be rejected", s)
		}
	}
	// Parens optional.
	if _, err := FromSpec("4:4:1", 16); err != nil {
		t.Fatalf("parenless spec rejected: %v", err)
	}
}

func TestPrivateShared(t *testing.T) {
	p := Private(8)
	if p.NumGroups() != 8 {
		t.Fatal("Private groups")
	}
	s := Shared(8)
	if s.NumGroups() != 1 || s.GroupSize(0) != 8 {
		t.Fatal("Shared groups")
	}
	if !p.IsBuddyGrouping() || !s.IsBuddyGrouping() {
		t.Fatal("private/shared should be buddy groupings")
	}
}

func TestFromGroupsValidation(t *testing.T) {
	if _, err := FromGroups(4, [][]int{{0, 1}, {1, 2, 3}}); err == nil {
		t.Fatal("overlapping groups should fail")
	}
	if _, err := FromGroups(4, [][]int{{0, 1}}); err == nil {
		t.Fatal("non-covering groups should fail")
	}
	if _, err := FromGroups(4, [][]int{{0, 1}, {2, 4}}); err == nil {
		t.Fatal("out-of-range slice should fail")
	}
	if _, err := FromGroups(4, [][]int{{0, 1}, {}, {2, 3}}); err == nil {
		t.Fatal("empty group should fail")
	}
}

func TestMergeSplitRoundTrip(t *testing.T) {
	g := Private(8)
	merged, err := g.MergeGroups(g.GroupOf(2), g.GroupOf(3))
	if err != nil {
		t.Fatal(err)
	}
	if !merged.SameGroup(2, 3) || merged.NumGroups() != 7 {
		t.Fatalf("merge failed: %v", merged)
	}
	split, err := merged.SplitGroup(merged.GroupOf(2))
	if err != nil {
		t.Fatal(err)
	}
	if !split.Equal(g) {
		t.Fatalf("split did not restore: %v vs %v", split, g)
	}
}

func TestBuddyOf(t *testing.T) {
	g := Private(8)
	if b := g.BuddyOf(g.GroupOf(0)); g.Members(b)[0] != 1 {
		t.Fatal("buddy of {0} should be {1}")
	}
	if b := g.BuddyOf(g.GroupOf(5)); g.Members(b)[0] != 4 {
		t.Fatal("buddy of {5} should be {4}")
	}
	// After merging {0,1}, its buddy is {2,3} only once they are a group.
	m01, _ := g.MergeGroups(g.GroupOf(0), g.GroupOf(1))
	if b := m01.BuddyOf(m01.GroupOf(0)); b != -1 {
		t.Fatalf("buddy of {0,1} should be -1 while {2},{3} are split, got %v", m01.Members(b))
	}
	m23, _ := m01.MergeGroups(m01.GroupOf(2), m01.GroupOf(3))
	if b := m23.BuddyOf(m23.GroupOf(0)); b == -1 || m23.Members(b)[0] != 2 {
		t.Fatal("buddy of {0,1} should be {2,3}")
	}
	// A misaligned pair has no buddy status.
	mis, err := FromGroups(8, [][]int{{0}, {1, 2}, {3}, {4}, {5}, {6}, {7}})
	if err != nil {
		t.Fatal(err)
	}
	if !mis.IsContiguous() || mis.IsBuddyGrouping() {
		t.Fatal("{1,2} is contiguous but not an aligned buddy group")
	}
}

func TestValidateInclusionRule(t *testing.T) {
	// L2 group {1,2} spans L3 groups {0,1} and {2,3}: invalid.
	l2, err := FromGroups(4, [][]int{{0}, {1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	l3, err := FromGroups(4, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	topo := Topology{L2: l2, L3: l3}
	if topo.Validate() == nil {
		t.Fatal("L2 group spanning L3 groups must be invalid (§2.2)")
	}
	// The reverse nesting is fine.
	ok := Topology{L2: Private(4), L3: l3}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
}

func TestAsymmetricSpec(t *testing.T) {
	l2, _ := FromGroups(4, [][]int{{0, 1}, {2}, {3}})
	topo := Topology{L2: l2, L3: Shared(4)}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.IsSymmetric() {
		t.Fatal("mixed group sizes should be asymmetric")
	}
	if topo.Spec() == "" {
		t.Fatal("asymmetric spec should render")
	}
}

func TestGroupingString(t *testing.T) {
	g, _ := FromGroups(4, [][]int{{0, 1}, {2}, {3}})
	if s := g.String(); s != "[0-1][2][3]" {
		t.Fatalf("String = %q", s)
	}
	nc, _ := FromGroups(4, [][]int{{0, 2}, {1}, {3}})
	if s := nc.String(); s != "[0,2][1][3]" {
		t.Fatalf("non-contiguous String = %q", s)
	}
}

func TestStandardSpecsParse(t *testing.T) {
	for _, s := range StandardSpecs() {
		if _, err := FromSpec(s, 16); err != nil {
			t.Fatalf("standard spec %q invalid: %v", s, err)
		}
	}
}

func TestAllPrivateAllShared(t *testing.T) {
	if AllPrivate(16).Spec() != "(1:1:16)" {
		t.Fatal("AllPrivate spec")
	}
	if AllShared(16).Spec() != "(16:1:1)" {
		t.Fatal("AllShared spec")
	}
}

// TestPartitionInvariant: any sequence of random merges and splits keeps
// the grouping a partition with consistent GroupOf/Members views.
func TestPartitionInvariant(t *testing.T) {
	r := rng.New(12)
	g := Private(16)
	check := func() {
		seen := make([]bool, 16)
		for gi := 0; gi < g.NumGroups(); gi++ {
			for _, s := range g.Members(gi) {
				if seen[s] {
					t.Fatalf("slice %d in two groups: %v", s, g)
				}
				seen[s] = true
				if g.GroupOf(s) != gi {
					t.Fatalf("GroupOf(%d)=%d, member of %d", s, g.GroupOf(s), gi)
				}
			}
		}
		for s, ok := range seen {
			if !ok {
				t.Fatalf("slice %d uncovered: %v", s, g)
			}
		}
	}
	for step := 0; step < 500; step++ {
		if r.Intn(2) == 0 && g.NumGroups() > 1 {
			a := r.Intn(g.NumGroups())
			b := g.BuddyOf(a)
			if b >= 0 {
				if ng, err := g.MergeGroups(a, b); err == nil {
					g = ng
				}
			}
		} else {
			a := r.Intn(g.NumGroups())
			if g.GroupSize(a) > 1 {
				if ng, err := g.SplitGroup(a); err == nil {
					g = ng
				}
			}
		}
		check()
		if !g.IsBuddyGrouping() {
			t.Fatalf("buddy ops left non-buddy grouping: %v", g)
		}
	}
}

// TestUniformProperty: Uniform(n, size) always yields n/size equal groups.
func TestUniformProperty(t *testing.T) {
	err := quick.Check(func(a, b uint8) bool {
		sizes := []int{1, 2, 4, 8, 16}
		n := 16
		size := sizes[int(a)%len(sizes)]
		g, err := Uniform(n, size)
		if err != nil {
			return false
		}
		u, ok := g.Uniform()
		return ok && u == size && g.NumGroups() == n/size
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Uniform(16, 3); err == nil {
		t.Fatal("Uniform(16,3) should fail")
	}
}

func TestMergeGroupsSelfError(t *testing.T) {
	g := Private(4)
	if _, err := g.MergeGroups(1, 1); err == nil {
		t.Fatal("merging a group with itself should fail")
	}
}

func TestSplitOddGroupError(t *testing.T) {
	g, err := FromGroups(4, [][]int{{0, 1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.SplitGroup(g.GroupOf(0)); err == nil {
		t.Fatal("splitting an odd-size group should fail")
	}
}

func TestNonContiguousBuddy(t *testing.T) {
	g, err := FromGroups(4, [][]int{{0, 2}, {1}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if b := g.BuddyOf(g.GroupOf(0)); b != -1 {
		t.Fatal("non-contiguous group has no buddy")
	}
}

func TestUniformOfWholeGrouping(t *testing.T) {
	g := Shared(8)
	if sz, ok := g.Uniform(); !ok || sz != 8 {
		t.Fatalf("uniform of shared: %d %v", sz, ok)
	}
	mixed, _ := FromGroups(4, [][]int{{0, 1}, {2}, {3}})
	if _, ok := mixed.Uniform(); ok {
		t.Fatal("mixed sizes are not uniform")
	}
}
