package hierarchy

import "morphcache/internal/telemetry"

// TelemetrySnapshot implements telemetry.Snapshotter: cumulative per-core
// and interconnect counters plus the per-core active-footprint (ACFV)
// utilizations of the current interval. The engine diffs consecutive
// snapshots into per-epoch records, so it must be taken before
// ResetFootprints clears the interval's demand.
func (s *System) TelemetrySnapshot() telemetry.Snapshot {
	snap := telemetry.Snapshot{
		Cores:  make([]telemetry.CoreCounters, s.p.Cores),
		L2Util: make([]float64, s.p.Cores),
		L3Util: make([]float64, s.p.Cores),
		Bus: telemetry.BusCounters{
			L2Transactions:  s.stats.L2BusTransactions,
			L2WaitCycles:    s.stats.L2BusWaitCycles,
			L3Transactions:  s.stats.L3BusTransactions,
			L3WaitCycles:    s.stats.L3BusWaitCycles,
			MemTransactions: s.stats.MemTransactions,
			MemWaitCycles:   s.stats.MemWaitCycles,
		},
		Faults: s.FaultState(),
	}
	for c := 0; c < s.p.Cores; c++ {
		cs := s.perCore[c]
		snap.Cores[c] = telemetry.CoreCounters{
			Accesses:   cs.Accesses,
			L1Hits:     cs.L1Hits,
			L2Hits:     cs.L2Hits,
			L3Hits:     cs.L3Hits,
			C2C:        cs.C2C,
			MemReads:   cs.MemReads,
			LatencySum: cs.LatencySum,
		}
		snap.L2Util[c] = s.CoresUtilization(L2, []int{c})
		snap.L3Util[c] = s.CoresUtilization(L3, []int{c})
	}
	return snap
}
