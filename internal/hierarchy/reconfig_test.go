package hierarchy

import (
	"testing"

	"morphcache/internal/fault"
	"morphcache/internal/mem"
	"morphcache/internal/rng"
	"morphcache/internal/topology"
)

// TestReconfigEdgeCases drives SetTopology through the degenerate shapes the
// controller can legally request — re-applying the current topology,
// merging clusters that are already merged, collapsing around a single live
// core, and reconfiguring slices with fault-disabled ways — and checks the
// inclusion invariants and bookkeeping survive every one.
func TestReconfigEdgeCases(t *testing.T) {
	pairs := topology.Topology{
		L2: mustGroups(t, 4, [][]int{{0, 1}, {2}, {3}}),
		L3: mustGroups(t, 4, [][]int{{0, 1}, {2}, {3}}),
	}
	cases := []struct {
		name string
		// start is the topology the hierarchy is built with.
		start topology.Topology
		// live lists the cores that issue the warm-up accesses.
		live []int
		// faults are injected after the warm-up, before the reconfig.
		faults []fault.Event
		// target is handed to SetTopology.
		target topology.Topology
		// wantInv is whether the reconfig must strand (invalidate) lines.
		wantInv bool
	}{
		{
			name:   "reapply identical topology",
			start:  pairs,
			live:   []int{0, 1, 2, 3},
			target: pairs,
		},
		{
			name:  "merge already-merged pair into quad",
			start: pairs,
			live:  []int{0, 1, 2, 3},
			target: topology.Topology{
				L2: topology.Shared(4),
				L3: topology.Shared(4),
			},
		},
		{
			name:    "split already-split slices further is a no-op",
			start:   topology.AllPrivate(4),
			live:    []int{0, 1, 2, 3},
			target:  topology.AllPrivate(4),
			wantInv: false,
		},
		{
			name:  "single live core merge then keep",
			start: topology.AllPrivate(4),
			live:  []int{0},
			target: topology.Topology{
				L2: topology.Shared(4),
				L3: topology.Shared(4),
			},
		},
		{
			name:    "single live core split from shared",
			start:   topology.Topology{L2: topology.Shared(4), L3: topology.Shared(4)},
			live:    []int{0},
			target:  topology.AllPrivate(4),
			wantInv: true, // core 0's spilled lines strand in remote slices
		},
		{
			name:  "merge with disabled ways",
			start: topology.AllPrivate(4),
			live:  []int{0, 1, 2, 3},
			faults: []fault.Event{
				{Kind: fault.WayDisable, Level: 2, Slice: 1, Ways: 2},
				{Kind: fault.WayDisable, Level: 3, Slice: 0, Ways: 1},
			},
			target: topology.Topology{
				L2: topology.Shared(4),
				L3: topology.Shared(4),
			},
		},
		{
			name:  "split with disabled ways",
			start: topology.Topology{L2: topology.Shared(4), L3: topology.Shared(4)},
			live:  []int{0, 1, 2, 3},
			faults: []fault.Event{
				{Kind: fault.WayDisable, Level: 3, Slice: 2, Ways: 3},
			},
			target:  topology.AllPrivate(4),
			wantInv: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := quiet(t, tc.start, true)
			r := rng.New(11)
			for i := 0; i < 20000; i++ {
				c := tc.live[r.Intn(len(tc.live))]
				s.Access(c, rd(mem.Line(uint64(c)<<22|uint64(r.Intn(2500))), mem.ASID(c+1)), uint64(i*20))
			}
			if err := s.CheckInclusion(); err != nil {
				t.Fatalf("pre-reconfig: %v", err)
			}
			for _, ev := range tc.faults {
				if err := s.ApplyFault(ev); err != nil {
					t.Fatal(err)
				}
			}
			before := s.Stats().InclusionInv
			if err := s.SetTopology(tc.target); err != nil {
				t.Fatal(err)
			}
			inv := s.Stats().InclusionInv - before
			if tc.wantInv && inv == 0 {
				t.Error("shrinking reconfig stranded no lines")
			}
			if !tc.wantInv && inv != 0 {
				t.Errorf("non-shrinking reconfig invalidated %d lines", inv)
			}
			if err := s.CheckInclusion(); err != nil {
				t.Fatalf("post-reconfig: %v", err)
			}
			// Disabled ways are physical damage: they survive reconfiguration.
			for _, ev := range tc.faults {
				if ev.Kind != fault.WayDisable {
					continue
				}
				if got := s.SliceCache(faultLevel(ev.Level), ev.Slice).DisabledWays(); got != ev.Ways {
					t.Errorf("L%d slice %d disabled ways %d after reconfig, want %d", ev.Level, ev.Slice, got, ev.Ways)
				}
			}
			// The machine keeps running under the new topology.
			for i := 0; i < 5000; i++ {
				c := tc.live[r.Intn(len(tc.live))]
				s.Access(c, rd(mem.Line(uint64(c)<<22|uint64(r.Intn(2500))), mem.ASID(c+1)), uint64(i*20))
			}
			if err := s.CheckInclusion(); err != nil {
				t.Fatalf("post-reconfig traffic: %v", err)
			}
		})
	}
}

// TestRemoteOverheadRecompute checks span-scaled overheads are recomputed on
// every reconfiguration, including back to private.
func TestRemoteOverheadRecompute(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	base := s.Params().BusTiming.OverheadCPUCycles()
	if err := s.SetTopology(topology.Topology{
		L2: mustGroups(t, 4, [][]int{{0, 3}, {1}, {2}}),
		L3: mustGroups(t, 4, [][]int{{0, 3}, {1}, {2}}),
	}); err != nil {
		t.Fatal(err)
	}
	if ov := s.remoteOvL2[0]; ov != base*4/2 {
		t.Fatalf("span-4 size-2 overhead %d, want %d", ov, base*4/2)
	}
	if err := s.SetTopology(topology.AllPrivate(4)); err != nil {
		t.Fatal(err)
	}
	if ov := s.remoteOvL2[0]; ov != base {
		t.Fatalf("overhead not restored on split: %d, want %d", ov, base)
	}
}
