// Package hierarchy implements the three-level inclusive CMP cache
// hierarchy the MorphCache controller reconfigures: per-core private L1s,
// per-core L2 and L3 slices grouped by a topology.Topology, backed by main
// memory (Table 3 of the paper).
//
// A merged group behaves as one cache whose set i is the union of its
// member slices' set i (associativities sum, set count is preserved —
// footnote 1). A hit in the requester's own slice costs the local latency;
// a hit in any other member slice additionally pays the segmented-bus
// overhead (25 vs. 10 cycles at L2, 45 vs. 30 at L3). Static topologies are
// modeled with the paper's assumption of fixed local latencies at any
// sharing degree (Params.ChargeRemote = false).
//
// The hierarchy is inclusive (L1 ⊆ L2 group ⊆ L3 group): L3 evictions
// back-invalidate L2 and L1 copies beneath them, and reconfigurations that
// shrink a group conservatively invalidate lines that would violate
// inclusion. Merges leave duplicate copies in place and resolve them by
// lazy invalidation on first access (§2.2). Writes invalidate copies held
// by other groups (the replication/coherence traffic that merging of
// sharers removes), and misses that another group can supply are served by
// cache-to-cache transfer instead of memory.
package hierarchy

import (
	"fmt"

	"morphcache/internal/bus"
	"morphcache/internal/cache"
	"morphcache/internal/mem"
	"morphcache/internal/obs"
	"morphcache/internal/topology"
)

// Level identifies a cache level.
type Level uint8

const (
	// L2 and L3 are the reconfigurable sliced levels.
	L2 Level = iota
	L3
)

func (l Level) String() string {
	switch l {
	case L2:
		return "L2"
	case L3:
		return "L3"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Params is the hierarchy configuration (defaults are the paper's Table 3).
type Params struct {
	// Cores is the number of cores; there is one L1 and one L2/L3 slice per
	// core. Must be a power of two.
	Cores int

	// L1 configuration: 32 KB, 4-way, 3-cycle access.
	L1SizeBytes, L1Ways, L1HitCycles int

	// L2 slices: 256 KB, 8-way; 10 cycles local, 25 merged.
	L2SliceBytes, L2Ways, L2LocalCycles, L2MergedCycles int

	// L3 slices: 1 MB, 16-way; 30 cycles local, 45 merged.
	L3SliceBytes, L3Ways, L3LocalCycles, L3MergedCycles int

	// MemCycles is the off-chip access latency (300).
	MemCycles int

	// C2CCycles is the latency of a cache-to-cache transfer from an L3
	// group that holds the line when the requester's group misses. The
	// transfer crosses the memory-side interconnect twice (request out,
	// data back) on top of the remote L3 access, which is cheaper than
	// off-chip memory but far costlier than a merged-group hit — this is
	// the "repeated transfers of cache lines among different cache slices"
	// overhead that merging sharers removes (§2.1).
	C2CCycles int

	// Policy is the slice replacement policy (the paper uses LRU for all
	// applications, §6).
	Policy cache.Policy

	// ChargeRemote selects whether hits in non-local member slices of a
	// merged group pay the segmented-bus overhead. True for MorphCache and
	// DSR; false for the idealized static topologies the paper compares
	// against (§4).
	ChargeRemote bool

	// BusTiming parameterizes the remote-access overhead; the merged
	// latencies above must equal local + BusTiming.OverheadCPUCycles().
	BusTiming bus.Timing

	// ModelContention, when true, additionally serializes remote accesses
	// through the per-group segmented bus occupancy model, charging queueing
	// delay beyond the fixed overhead.
	ModelContention bool

	// Interconnect selects the finite-bandwidth model: the default
	// segmented Bus gives every slice group ONE access channel (requests
	// within a group serialize — the paper's §3.1 bus bandwidth argument),
	// while Crossbar gives every slice its own port (requests serialize
	// only per serving slice), trading the paper's noted implementation
	// complexity and quadratic area for bandwidth.
	Interconnect InterconnectKind

	// L2ChannelCycles / L3ChannelCycles / MemChannelCycles model finite
	// bandwidth: every transaction at a level occupies its slice group's
	// access channel for this many cycles (one channel per group — a shared
	// cache is one logical port, which is the paper's own argument for
	// segmenting the bus: "when multiple devices ... are connected to a
	// single shared bus, each gets only a fraction of the available
	// bandwidth", §3.1). Requests that find the channel busy queue, so wide
	// sharing buys capacity at the price of bandwidth — for static
	// topologies and MorphCache alike. Zero disables a channel. Fractional
	// values model wider/banked ports (service time below one cycle per
	// request on average).
	L2ChannelCycles, L3ChannelCycles, MemChannelCycles float64
}

// InterconnectKind selects the bandwidth model (see Params.Interconnect).
type InterconnectKind uint8

const (
	// Bus is the segmented bus: one channel per slice group.
	Bus InterconnectKind = iota
	// Crossbar is a full crossbar: one port per slice.
	Crossbar
)

func (k InterconnectKind) String() string {
	if k == Crossbar {
		return "crossbar"
	}
	return "segmented-bus"
}

// Default returns the paper's Table 3 baseline for n cores.
func Default(n int) Params {
	t := bus.DefaultTiming()
	// The paper's §3.2 footnote overlaps arbitration with the previous
	// transfer, cutting the merged-access overhead from 15 to 10 CPU
	// cycles; the default configuration adopts that optimization.
	t.Pipelined = true
	ov := t.OverheadCPUCycles() // 10
	return Params{
		Cores:       n,
		L1SizeBytes: 32 << 10, L1Ways: 4, L1HitCycles: 3,
		L2SliceBytes: 256 << 10, L2Ways: 8, L2LocalCycles: 10, L2MergedCycles: 10 + ov,
		L3SliceBytes: 1 << 20, L3Ways: 16, L3LocalCycles: 30, L3MergedCycles: 30 + ov,
		MemCycles:        300,
		C2CCycles:        30 + 2*ov,
		Policy:           cache.LRU,
		BusTiming:        t,
		L2ChannelCycles:  5,
		L3ChannelCycles:  2,
		MemChannelCycles: 2,
	}
}

// ScaledDefault returns the Table 3 configuration with every cache capacity
// divided by div (associativities and latencies unchanged). Experiments run
// on a scaled system so that one scaled epoch covers several times the
// working set, preserving the capacity-pressure ratios of the full-size
// machine at a fraction of the simulation cost. div must divide the L1 size
// down to at least one set.
func ScaledDefault(n, div int) Params {
	p := Default(n)
	// The L1 scales only by div/4: its job in the model is to filter the
	// hot head off the L2 traffic the way a real L1 does (~80-90% hit
	// rate); scaling it as aggressively as the capacity-study levels would
	// multiply L2 traffic far beyond the paper's regime and distort both
	// bandwidth contention and merged-hit overheads.
	l1div := div / 4
	if l1div < 1 {
		l1div = 1
	}
	p.L1SizeBytes /= l1div
	p.L2SliceBytes /= div
	p.L3SliceBytes /= div
	return p
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.Cores <= 0 || p.Cores&(p.Cores-1) != 0 {
		return fmt.Errorf("hierarchy: cores %d not a power of two", p.Cores)
	}
	for _, c := range []cache.Config{
		{SizeBytes: p.L1SizeBytes, Ways: p.L1Ways, Policy: p.Policy},
		{SizeBytes: p.L2SliceBytes, Ways: p.L2Ways, Policy: p.Policy},
		{SizeBytes: p.L3SliceBytes, Ways: p.L3Ways, Policy: p.Policy},
	} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if p.MemCycles <= p.L3MergedCycles {
		return fmt.Errorf("hierarchy: memory latency %d not beyond L3 merged %d", p.MemCycles, p.L3MergedCycles)
	}
	return nil
}

// CoreStats aggregates one core's access outcomes.
type CoreStats struct {
	Accesses   uint64
	L1Hits     uint64
	L2Hits     uint64 // local + remote
	L3Hits     uint64
	C2C        uint64
	MemReads   uint64
	LatencySum uint64
}

// AvgLatency returns the mean access latency in cycles.
func (c CoreStats) AvgLatency() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.LatencySum) / float64(c.Accesses)
}

// Stats aggregates hierarchy-wide event counters.
type Stats struct {
	Accesses  uint64
	L1Hits    uint64
	L2Local   uint64 // hits in the requester's own slice
	L2Remote  uint64 // hits in another slice of the requester's group
	L2Misses  uint64
	L3Local   uint64
	L3Remote  uint64
	L3Misses  uint64
	C2C       uint64 // misses served by another group's L3
	MemReads  uint64
	Writeback uint64 // dirty L3 evictions to memory
	// CoherenceInv counts copies invalidated in other groups by writes.
	CoherenceInv uint64
	// LazyInv counts duplicate copies removed by lazy invalidation (§2.2).
	LazyInv uint64
	// InclusionInv counts lines conservatively invalidated to restore
	// inclusion after a reconfiguration.
	InclusionInv uint64
	// BackInv counts inclusion back-invalidations from L3 evictions.
	BackInv uint64
	// Migrations counts remote-hit promotions into the local slice.
	Migrations uint64
	// Interconnect contention (telemetry): *Transactions counts requests
	// charged to each finite-bandwidth channel and *WaitCycles the CPU
	// cycles of queueing delay they suffered beyond the fixed latencies.
	// Channels disabled via the *ChannelCycles parameters count nothing.
	L2BusTransactions uint64
	L2BusWaitCycles   uint64
	L3BusTransactions uint64
	L3BusWaitCycles   uint64
	MemTransactions   uint64
	MemWaitCycles     uint64
}

// System is the simulated hierarchy.
type System struct {
	p    Params
	topo topology.Topology

	l1 []*cache.Slice
	l2 []*cache.Slice
	l3 []*cache.Slice

	// pres*.Get(line) is the bitmask of slices holding the line at each
	// level; slice indices are stable across reconfigurations, so the masks
	// survive topology changes. The indexes are fixed-size open-addressing
	// tables (see presence.go) so the access path never hashes through a Go
	// map or allocates.
	presL2 *PresenceIndex
	presL3 *PresenceIndex

	// demand[level][core][slice] are the per-interval reuse-demand
	// footprints the controller reads (see footprint.go).
	demandL2, demandL3 [][]demandTable
	l2Lines, l3Lines   int

	// scratchA/scratchB are the reusable line-set scratch buffers behind
	// the utilization/overlap signals, and scratchGL the reusable
	// stale-line buffer of enforceInclusion; all grown once to their
	// high-water size and reset per use.
	scratchA, scratchB lineSet
	scratchGL          []mem.GlobalLine

	// coreASID[c] is the address space the thread on core c runs in; set by
	// the simulation engine each epoch so the controller can apply the
	// same-address-space condition of merge rule (ii).
	coreASID []mem.ASID

	busL2, busL3 *bus.SegmentedBus

	stats Stats
	// perCore[c] aggregates each core's access outcomes for the lifetime of
	// the run.
	perCore []CoreStats
	// perCoreMisses[c] counts L2-group misses by core c; the QoS throttle
	// (§5.3) compares these across reconfigurations.
	perCoreMisses []uint64

	// chanBusyL2/L3[group] and the memory channel hold the finite-bandwidth
	// occupancies (see the *ChannelCycles parameters). In crossbar mode the
	// port* arrays (indexed by slice) are used instead of chan* (indexed by
	// group). The chan* slices are views into cores-sized backing arrays
	// (chanStore*) resliced and zeroed on every reconfiguration instead of
	// reallocated.
	chanBusyL2, chanBusyL3   []float64
	chanStoreL2, chanStoreL3 []float64
	portBusyL2, portBusyL3   []float64
	memChan                  *mem.Channel

	// groupMaskL2/L3[slice] caches groupSliceMask for the current topology:
	// the bitmask of the slices in the group containing each slice. Derived
	// in applyTopology; read on every access.
	groupMaskL2, groupMaskL3 []uint32

	// flt is the injected-fault state (see fault.go); zero value = healthy.
	flt faultState

	// obs, when non-nil, receives one ObserveAccess per reference (live
	// latency histograms and per-level counters, DESIGN.md §10). Nil by
	// default: the access path pays a single nil check and nothing else.
	obs *obs.Observer

	// remoteOverheadL2/L3[slice] caches the per-slice bus overhead for the
	// current topology; differs from the uniform overhead only for
	// non-neighbor groups (§5.5), where it grows with the physical span of
	// the group's fabric.
	remoteOvL2, remoteOvL3 []int
}

// New builds a hierarchy in the given initial topology.
func New(p Params, topo topology.Topology) (*System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if topo.L2.N() != p.Cores {
		return nil, fmt.Errorf("hierarchy: topology over %d slices, want %d", topo.L2.N(), p.Cores)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		p:             p,
		presL2:        NewPresenceIndex(p.Cores * p.L2SliceBytes / mem.LineSize),
		presL3:        NewPresenceIndex(p.Cores * p.L3SliceBytes / mem.LineSize),
		coreASID:      make([]mem.ASID, p.Cores),
		perCore:       make([]CoreStats, p.Cores),
		perCoreMisses: make([]uint64, p.Cores),
		busL2:         bus.NewSegmentedBus(p.Cores, p.BusTiming),
		busL3:         bus.NewSegmentedBus(p.Cores, p.BusTiming),
		memChan:       mem.NewChannel(p.MemChannelCycles),
		chanStoreL2:   make([]float64, p.Cores),
		chanStoreL3:   make([]float64, p.Cores),
		portBusyL2:    make([]float64, p.Cores),
		portBusyL3:    make([]float64, p.Cores),
		remoteOvL2:    make([]int, p.Cores),
		remoteOvL3:    make([]int, p.Cores),
		groupMaskL2:   make([]uint32, p.Cores),
		groupMaskL3:   make([]uint32, p.Cores),
	}
	clockL2, clockL3 := &cache.Clock{}, &cache.Clock{}
	for i := 0; i < p.Cores; i++ {
		s.l1 = append(s.l1, cache.New(cache.Config{SizeBytes: p.L1SizeBytes, Ways: p.L1Ways, Policy: p.Policy}))
		l2 := cache.New(cache.Config{SizeBytes: p.L2SliceBytes, Ways: p.L2Ways, Policy: p.Policy})
		l2.ShareClock(clockL2)
		s.l2 = append(s.l2, l2)
		l3 := cache.New(cache.Config{SizeBytes: p.L3SliceBytes, Ways: p.L3Ways, Policy: p.Policy})
		l3.ShareClock(clockL3)
		s.l3 = append(s.l3, l3)
	}
	s.initFootprints()
	if err := s.applyTopology(topo, true); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *System) initFootprints() {
	s.l2Lines = s.p.L2SliceBytes / mem.LineSize
	s.l3Lines = s.p.L3SliceBytes / mem.LineSize
	mk := func() [][]demandTable {
		dd := make([][]demandTable, s.p.Cores)
		for c := range dd {
			dd[c] = make([]demandTable, s.p.Cores)
		}
		return dd
	}
	s.demandL2, s.demandL3 = mk(), mk()
}

// Params returns the configuration.
func (s *System) Params() Params { return s.p }

// Topology returns the current topology.
func (s *System) Topology() topology.Topology { return s.topo }

// Cores returns the core count.
func (s *System) Cores() int { return s.p.Cores }

// Stats returns a pointer to the event counters.
func (s *System) Stats() *Stats { return &s.stats }

// SetObserver installs the live observability hooks (nil to detach). The
// observer only reads what the access path already computed — results are
// identical with or without one.
func (s *System) SetObserver(o *obs.Observer) { s.obs = o }

// CoreStats returns a copy of one core's cumulative counters.
func (s *System) CoreStats(core int) CoreStats { return s.perCore[core] }

// PerCoreMisses returns the per-core L2-group miss counters (QoS input).
func (s *System) PerCoreMisses() []uint64 { return s.perCoreMisses }

// ResetEpochCounters zeroes the per-core miss counters at an epoch boundary.
func (s *System) ResetEpochCounters() {
	for i := range s.perCoreMisses {
		s.perCoreMisses[i] = 0
	}
}

// SetCoreASID records which address space the thread on core c belongs to.
func (s *System) SetCoreASID(core int, asid mem.ASID) { s.coreASID[core] = asid }

// CoreASID returns the address space of the thread on core c.
func (s *System) CoreASID(core int) mem.ASID { return s.coreASID[core] }

// SliceCache returns the slice for white-box tests.
func (s *System) SliceCache(l Level, slice int) *cache.Slice {
	if l == L2 {
		return s.l2[slice]
	}
	return s.l3[slice]
}

// L1Cache returns core c's L1 for white-box tests.
func (s *System) L1Cache(core int) *cache.Slice { return s.l1[core] }

func (s *System) grouping(l Level) topology.Grouping {
	if l == L2 {
		return s.topo.L2
	}
	return s.topo.L3
}

// groupSliceMask returns the bitmask of slices in the group containing
// `slice` at the level (precomputed per topology in applyTopology).
func (s *System) groupSliceMask(l Level, slice int) uint32 {
	if l == L2 {
		return s.groupMaskL2[slice]
	}
	return s.groupMaskL3[slice]
}

// pres returns the level's presence index.
func (s *System) pres(l Level) *PresenceIndex {
	if l == L2 {
		return s.presL2
	}
	return s.presL3
}

// PresentMask returns the bitmask of slices holding the line at the level
// (white-box test support; the simulation path uses the index directly).
func (s *System) PresentMask(l Level, gl mem.GlobalLine) uint32 {
	return s.pres(l).Get(gl)
}
