package hierarchy

import (
	"fmt"

	"morphcache/internal/mem"
)

// PresenceIndex maps a global line to the bitmask of slices holding it at
// one level. It replaces the former map[mem.GlobalLine]uint32: the access
// path probes it on every reference, so it is a fixed-size open-addressing
// table (linear probing, backward-shift deletion) instead of a Go map — no
// hashing interface, no incremental growth, no allocation after New.
//
// Sizing argument: every key in the index corresponds to at least one valid
// entry in some slice of the level, so the number of distinct keys can never
// exceed the level's total line capacity (cores × lines per slice). The
// table is sized to twice that bound at construction, capping the load
// factor at 0.5 and making probe chains short; it never grows, and Or()
// panics if the bound is ever violated (which would be a bookkeeping bug of
// the same severity as the "present mask inconsistent" panic).
//
// Determinism: the structure is only ever probed by key — nothing iterates
// it on the simulation path — so replacing the map cannot reorder any
// observable event. All default outputs are byte-identical to the map-based
// implementation (enforced by the golden-report CI jobs).
type PresenceIndex struct {
	mask   uint64
	lines  []mem.Line
	asids  []mem.ASID
	owners []uint32 // 0 = empty slot (a present line always has owners)
	n      int      // live keys
	cap    int      // maximum keys (level line capacity)
}

// NewPresenceIndex builds an index able to hold maxKeys distinct lines.
func NewPresenceIndex(maxKeys int) *PresenceIndex {
	slots := 16
	for slots < 2*maxKeys {
		slots <<= 1
	}
	return &PresenceIndex{
		mask:   uint64(slots - 1),
		lines:  make([]mem.Line, slots),
		asids:  make([]mem.ASID, slots),
		owners: make([]uint32, slots),
		cap:    maxKeys,
	}
}

// presenceHash mixes an address-space-qualified line into a table index.
// Fibonacci-style multiplicative hashing with a fold of the high bits keeps
// the low bits (the ones the mask selects) well mixed even for the
// strided, small-range line addresses the workload models generate.
func presenceHash(asid mem.ASID, line mem.Line) uint64 {
	h := uint64(line)*0x9E3779B97F4A7C15 ^ uint64(asid)*0xC2B2AE3D27D4EB4F
	return h ^ h>>32
}

// Get returns the owner mask of the line, or 0 if absent.
func (p *PresenceIndex) Get(gl mem.GlobalLine) uint32 {
	i := presenceHash(gl.ASID, gl.Line) & p.mask
	for {
		o := p.owners[i]
		if o == 0 {
			return 0
		}
		if p.lines[i] == gl.Line && p.asids[i] == gl.ASID {
			return o
		}
		i = (i + 1) & p.mask
	}
}

// Or adds the slice bit to the line's owner mask, inserting the key if new.
func (p *PresenceIndex) Or(gl mem.GlobalLine, bit uint32) {
	i := presenceHash(gl.ASID, gl.Line) & p.mask
	for {
		o := p.owners[i]
		if o == 0 {
			if p.n >= p.cap {
				panic("hierarchy: presence index over line capacity")
			}
			p.lines[i], p.asids[i], p.owners[i] = gl.Line, gl.ASID, bit
			p.n++
			return
		}
		if p.lines[i] == gl.Line && p.asids[i] == gl.ASID {
			p.owners[i] = o | bit
			return
		}
		i = (i + 1) & p.mask
	}
}

// Clear removes the slice bit from the line's owner mask, deleting the key
// when the mask empties. Clearing an absent line is a no-op.
func (p *PresenceIndex) Clear(gl mem.GlobalLine, bit uint32) {
	i := presenceHash(gl.ASID, gl.Line) & p.mask
	for {
		o := p.owners[i]
		if o == 0 {
			return
		}
		if p.lines[i] == gl.Line && p.asids[i] == gl.ASID {
			if o &^= bit; o != 0 {
				p.owners[i] = o
				return
			}
			p.deleteAt(i)
			return
		}
		i = (i + 1) & p.mask
	}
}

// deleteAt empties slot i and compacts the probe chain behind it
// (backward-shift deletion), so lookups never need tombstones.
func (p *PresenceIndex) deleteAt(i uint64) {
	p.n--
	for {
		p.owners[i] = 0
		j := i
		for {
			j = (j + 1) & p.mask
			if p.owners[j] == 0 {
				return
			}
			h := presenceHash(p.asids[j], p.lines[j]) & p.mask
			// The entry at j may move into the hole at i iff its home h
			// does not lie cyclically within (i, j] — otherwise moving it
			// would put it before its home and break its own chain.
			if (j-h)&p.mask >= (j-i)&p.mask {
				p.lines[i], p.asids[i], p.owners[i] = p.lines[j], p.asids[j], p.owners[j]
				i = j
				break
			}
		}
	}
}

// Len returns the number of distinct lines present at the level.
func (p *PresenceIndex) Len() int { return p.n }

// Check verifies the structural invariants of the table: the live count
// matches n, every live entry is reachable from its home slot without
// crossing an empty slot, and no key occurs twice. It is the test-time
// generalization of the access path's "present mask inconsistent" panic.
func (p *PresenceIndex) Check() error {
	live := 0
	for i := range p.owners {
		if p.owners[i] == 0 {
			continue
		}
		live++
		gl := mem.GlobalLine{ASID: p.asids[i], Line: p.lines[i]}
		// Probe from the home slot: the first matching key must be slot i
		// (anything else is a duplicate key or a broken chain), and the
		// chain up to i must have no holes.
		j := presenceHash(gl.ASID, gl.Line) & p.mask
		for {
			if p.owners[j] == 0 {
				return fmt.Errorf("hierarchy: presence entry %+v at slot %d unreachable (hole at %d)", gl, i, j)
			}
			if p.lines[j] == gl.Line && p.asids[j] == gl.ASID {
				if j != uint64(i) {
					return fmt.Errorf("hierarchy: presence key %+v duplicated at slots %d and %d", gl, j, i)
				}
				break
			}
			j = (j + 1) & p.mask
		}
	}
	if live != p.n {
		return fmt.Errorf("hierarchy: presence index count %d, live slots %d", p.n, live)
	}
	if p.n > p.cap {
		return fmt.Errorf("hierarchy: presence index holds %d keys over capacity %d", p.n, p.cap)
	}
	return nil
}
