package hierarchy

import (
	"fmt"

	"morphcache/internal/cache"
	"morphcache/internal/mem"
	"morphcache/internal/topology"
)

// SetTopology reconfigures the hierarchy to a new topology at an epoch
// boundary. Merging needs no data movement — duplicates are resolved lazily
// on first access (§2.2). Shrinking a group can strand lines outside the
// inclusion envelope (an L1 line whose L2 copy left the core's group, or an
// L2 line whose L3 copy left the slice's L3 group); those are
// conservatively invalidated here, which is the simulator's analogue of the
// correctness rules in §2.2–2.3.
func (s *System) SetTopology(topo topology.Topology) error {
	return s.applyTopology(topo, false)
}

func (s *System) applyTopology(topo topology.Topology, initial bool) error {
	if topo.L2.N() != s.p.Cores || topo.L3.N() != s.p.Cores {
		return fmt.Errorf("hierarchy: topology over %d/%d slices, want %d", topo.L2.N(), topo.L3.N(), s.p.Cores)
	}
	if err := topo.Validate(); err != nil {
		return err
	}
	s.topo = topo
	s.computeRemoteOverheads()
	s.computeGroupMasks()
	s.chanBusyL2 = resetChan(s.chanStoreL2, topo.L2.NumGroups())
	s.chanBusyL3 = resetChan(s.chanStoreL3, topo.L3.NumGroups())
	if topo.L2.IsBuddyGrouping() {
		if err := s.busL2.Configure(topo.L2); err != nil {
			return err
		}
	}
	if topo.L3.IsBuddyGrouping() {
		if err := s.busL3.Configure(topo.L3); err != nil {
			return err
		}
	}
	if !initial {
		s.enforceInclusion()
	}
	return nil
}

// computeRemoteOverheads derives each slice's merged-access bus overhead.
// For contiguous groups this is the uniform segmented-bus overhead (15 CPU
// cycles by default). For the §5.5 non-neighbor extension, the group's
// logical traffic rides a physical fabric spanning all slices between its
// extremes, so the overhead scales with span/size — the model behind the
// paper's observed 7.1% degradation when non-neighbor sharing is allowed.
func (s *System) computeRemoteOverheads() {
	base := s.p.BusTiming.OverheadCPUCycles()
	fill := func(g topology.Grouping, out []int) {
		for gi := 0; gi < g.NumGroups(); gi++ {
			m := g.Members(gi)
			size := len(m)
			span := m[len(m)-1] - m[0] + 1
			ov := base
			if span > size {
				ov = (base*span + size - 1) / size
			}
			for _, sl := range m {
				out[sl] = ov
			}
		}
	}
	fill(s.topo.L2, s.remoteOvL2)
	fill(s.topo.L3, s.remoteOvL3)
}

// resetChan reslices a cores-sized backing array to the group count and
// zeroes it, so reconfigurations reuse storage instead of reallocating.
func resetChan(store []float64, groups int) []float64 {
	ch := store[:groups]
	for i := range ch {
		ch[i] = 0
	}
	return ch
}

// computeGroupMasks caches groupSliceMask for every slice of the current
// topology; the access path reads these on every reference.
func (s *System) computeGroupMasks() {
	fill := func(g topology.Grouping, out []uint32) {
		for gi := 0; gi < g.NumGroups(); gi++ {
			var mask uint32
			for _, sl := range g.Members(gi) {
				mask |= 1 << uint(sl)
			}
			for _, sl := range g.Members(gi) {
				out[sl] = mask
			}
		}
	}
	fill(s.topo.L2, s.groupMaskL2)
	fill(s.topo.L3, s.groupMaskL3)
}

// enforceInclusion removes lines that the new topology places outside their
// owner's reach: L2 lines whose L3 copy is no longer in the same L3 group,
// and L1 lines whose L2 copy is no longer in the core's L2 group.
func (s *System) enforceInclusion() {
	// L2 against L3 groups.
	for sl := 0; sl < s.p.Cores; sl++ {
		l3mask := s.groupSliceMask(L3, sl)
		stale := s.scratchGL[:0]
		s.l2[sl].ForEachValid(func(_, _ int, e cache.Entry) {
			gl := mem.GlobalLine{ASID: e.ASID, Line: e.Line}
			if s.presL3.Get(gl)&l3mask == 0 {
				stale = append(stale, gl)
			}
		})
		for _, gl := range stale {
			s.stats.InclusionInv++
			s.invalidateAt(L2, sl, gl, true)
		}
		s.scratchGL = stale[:0]
	}
	// L1 against L2 groups.
	for c := 0; c < s.p.Cores; c++ {
		l2mask := s.groupSliceMask(L2, c)
		stale := s.scratchGL[:0]
		s.l1[c].ForEachValid(func(_, _ int, e cache.Entry) {
			gl := mem.GlobalLine{ASID: e.ASID, Line: e.Line}
			if s.presL2.Get(gl)&l2mask == 0 {
				stale = append(stale, gl)
			}
		})
		for _, gl := range stale {
			s.stats.InclusionInv++
			s.l1[c].Invalidate(gl.ASID, gl.Line)
		}
		s.scratchGL = stale[:0]
	}
}

// CheckInclusion verifies the inclusion invariants exhaustively (test
// support): every valid L1 line has an L2 copy within the core's L2 group,
// and every valid L2 line has an L3 copy within its slice's L3 group. It
// also cross-checks the present masks against actual slice contents.
func (s *System) CheckInclusion() error {
	if err := s.CheckPresence(); err != nil {
		return err
	}
	// L1 ⊆ L2 group.
	for c := 0; c < s.p.Cores; c++ {
		mask := s.groupSliceMask(L2, c)
		var err error
		s.l1[c].ForEachValid(func(_, _ int, e cache.Entry) {
			gl := mem.GlobalLine{ASID: e.ASID, Line: e.Line}
			if err == nil && s.presL2.Get(gl)&mask == 0 {
				err = fmt.Errorf("hierarchy: L1 of core %d holds %+v with no L2 copy in group", c, gl)
			}
		})
		if err != nil {
			return err
		}
	}
	// L2 ⊆ L3 group.
	for sl := 0; sl < s.p.Cores; sl++ {
		mask := s.groupSliceMask(L3, sl)
		var err error
		s.l2[sl].ForEachValid(func(_, _ int, e cache.Entry) {
			gl := mem.GlobalLine{ASID: e.ASID, Line: e.Line}
			if err == nil && s.presL3.Get(gl)&mask == 0 {
				err = fmt.Errorf("hierarchy: L2 slice %d holds %+v with no L3 copy in group", sl, gl)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// CheckPresence verifies the presence indexes exhaustively (test support):
// each index's structural invariants hold (probe chains intact, no duplicate
// keys, live count consistent), and its owner masks agree exactly with the
// valid lines the slices actually hold. It is the exhaustive generalization
// of the access path's "present mask inconsistent" panic.
func (s *System) CheckPresence() error {
	for l, caches := range map[Level][]*cache.Slice{L2: s.l2, L3: s.l3} {
		idx := s.pres(l)
		if err := idx.Check(); err != nil {
			return fmt.Errorf("%v index: %w", l, err)
		}
		counts := make(map[mem.GlobalLine]uint32)
		for i, c := range caches {
			c.ForEachValid(func(_, _ int, e cache.Entry) {
				counts[mem.GlobalLine{ASID: e.ASID, Line: e.Line}] |= 1 << uint(i)
			})
		}
		if len(counts) != idx.Len() {
			return fmt.Errorf("hierarchy: %v presence index has %d lines, slices hold %d", l, idx.Len(), len(counts))
		}
		for gl, mask := range counts {
			if got := idx.Get(gl); got != mask {
				return fmt.Errorf("hierarchy: %v present mask %#x != contents %#x for %+v", l, got, mask, gl)
			}
		}
	}
	return nil
}
