package hierarchy

import "morphcache/internal/mem"

// Footprint signals for the MorphCache controller (§2.1–2.2).
//
// The controller consumes the *reuse demand* of each (core, slice): the set
// of unique lines the core referenced at that level at least twice in the
// current interval. This refines the paper's ACF in two ways that matter in
// a trace-driven setting:
//
//   - demand, not residency: a thrashing slice (working set ≫ capacity)
//     must read as highly utilized even though each line barely stays
//     resident, otherwise merge rule (i) can never see the starvation it is
//     supposed to relieve;
//   - two-touch filter: lines referenced exactly once (streams) exert no
//     capacity *utility* — giving them cache space returns nothing — so
//     they are excluded, mirroring the paper's observation that stale,
//     unreused data must not inflate the estimate.
//
// The hardware ACFV bit-vector of §2.1 (package acfv) approximates exactly
// this kind of set; Fig. 5 of the paper — reproduced by the fig5 experiment
// — quantifies how well small vectors track the true footprint. The
// simulator hands the controller the exact set (the paper's "oracle") so
// that policy quality is studied separately from estimator fidelity.

// demandSet tracks one (core, slice) footprint: line -> touch count
// (saturating).
type demandSet map[mem.Line]uint8

func (d demandSet) mark(line mem.Line) {
	if v := d[line]; v < 15 {
		d[line] = v + 1
	}
}

// Reuse thresholds: a line belongs to a level's demand when the core
// touched it at this level at least this many times in the interval. L2
// marks fire only on L2 hits, so the threshold selects lines whose reuse is
// actually realized at L2 tempo; L3 marks fire on L3 hits and fills (i.e.,
// accesses that missed L2), so two touches there identify L3-tempo reuse —
// including the working set of a thrashing slice, which hits nowhere but
// keeps coming back. Once-touched lines (streams) never count anywhere.
const (
	l2ReuseThreshold = 2
	l3ReuseThreshold = 2
)

func reuseThreshold(l Level) uint8 {
	if l == L2 {
		return l2ReuseThreshold
	}
	return l3ReuseThreshold
}

func (s *System) markDemand(l Level, core, slice int, line mem.Line) {
	dd := s.demandL2
	if l == L3 {
		dd = s.demandL3
	}
	d := dd[core][slice]
	if d == nil {
		d = make(demandSet)
		dd[core][slice] = d
	}
	d.mark(line)
}

// ResetFootprints clears every footprint set; called once per
// reconfiguration interval so the sets track only the current interval's
// actively used data (§2.1).
func (s *System) ResetFootprints() {
	for c := 0; c < s.p.Cores; c++ {
		for sl := 0; sl < s.p.Cores; sl++ {
			s.demandL2[c][sl] = nil
			s.demandL3[c][sl] = nil
		}
	}
}

func (s *System) sliceLines(l Level) int {
	if l == L2 {
		return s.l2Lines
	}
	return s.l3Lines
}

// sliceReused builds the union over cores of one slice's reused lines.
func (s *System) sliceReused(l Level, slice int, into map[mem.Line]struct{}) {
	dd := s.demandL2
	if l == L3 {
		dd = s.demandL3
	}
	thr := reuseThreshold(l)
	for c := 0; c < s.p.Cores; c++ {
		for line, v := range dd[c][slice] {
			if v >= thr {
				into[line] = struct{}{}
			}
		}
	}
}

// SliceUtilization returns the reuse demand of one slice as a fraction of
// its capacity — the signal compared against the MSAT bounds. Values above
// 1 mean the active working set exceeds the slice.
func (s *System) SliceUtilization(l Level, slice int) float64 {
	set := make(map[mem.Line]struct{})
	s.sliceReused(l, slice, set)
	if !s.flt.any {
		return float64(len(set)) / float64(s.sliceLines(l))
	}
	return float64(len(set)) / float64(s.effSliceLines(l, slice))
}

// SubsetUtilization returns the juxtaposed utilization of a set of slices
// (§2.2): total reuse demand over total capacity. With a whole group it is
// the group's utilization; with half a group it is the signal the split
// rule examines.
func (s *System) SubsetUtilization(l Level, slices []int) float64 {
	set := make(map[mem.Line]struct{})
	for _, sl := range slices {
		s.sliceReused(l, sl, set)
	}
	if !s.flt.any {
		return float64(len(set)) / (float64(len(slices)) * float64(s.sliceLines(l)))
	}
	capLines := 0
	for _, sl := range slices {
		capLines += s.effSliceLines(l, sl)
	}
	return float64(len(set)) / float64(capLines)
}

// GroupUtilization returns the utilization of a whole group.
func (s *System) GroupUtilization(l Level, group int) float64 {
	return s.SubsetUtilization(l, s.grouping(l).Members(group))
}

// SubsetOverlap returns the data-sharing signal between two slice sets at a
// level: the fraction of the smaller set's reuse demand that both sets
// reference. This is the "significant number of common 1s" test of merge
// rule (ii); the caller is responsible for the same-address-space check.
func (s *System) SubsetOverlap(l Level, a, b []int) float64 {
	sa := make(map[mem.Line]struct{})
	sb := make(map[mem.Line]struct{})
	for _, sl := range a {
		s.sliceReused(l, sl, sa)
	}
	for _, sl := range b {
		s.sliceReused(l, sl, sb)
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	small, big := sa, sb
	if len(sb) < len(sa) {
		small, big = sb, sa
	}
	common := 0
	for line := range small {
		if _, ok := big[line]; ok {
			common++
		}
	}
	return float64(common) / float64(len(small))
}

// GroupOverlap is SubsetOverlap over two existing groups.
func (s *System) GroupOverlap(l Level, ga, gb int) float64 {
	g := s.grouping(l)
	return s.SubsetOverlap(l, g.Members(ga), g.Members(gb))
}

// SlicesShareASID reports whether all listed cores run threads of one
// address space — the precondition of merge rule (ii). Cores map one-to-one
// to slices, so slice indices double as core ids.
func (s *System) SlicesShareASID(slices ...[]int) bool {
	ref := s.coreASID[slices[0][0]]
	for _, set := range slices {
		for _, c := range set {
			if s.coreASID[c] != ref {
				return false
			}
		}
	}
	return true
}

// coreReused collects one core's reused lines at a level across every slice
// its data lands in. This is the paper's per-thread ACF: "the set of unique
// cache lines referenced by that thread in that epoch" — independent of
// *where* a merged group placed the lines, which matters because the
// locality spill spreads a thread's working set across its group.
func (s *System) coreReused(l Level, core int, into map[mem.Line]struct{}) {
	dd := s.demandL2
	if l == L3 {
		dd = s.demandL3
	}
	thr := reuseThreshold(l)
	for sl := 0; sl < s.p.Cores; sl++ {
		for line, v := range dd[core][sl] {
			if v >= thr {
				into[line] = struct{}{}
			}
		}
	}
}

// CoresUtilization returns the combined reuse demand of a set of cores
// (threads) as a fraction of len(cores) slices of capacity — the per-thread
// ACF signal the controller's merge and split rules compare against the
// MSAT bounds. Under faults, the denominator counts only usable capacity
// (disabled ways excluded), and a corrupted monitor in the set saturates
// the reading to corruptUtilization — the garbage a stuck-at-1 ACFV feeds
// an unprotected controller.
func (s *System) CoresUtilization(l Level, cores []int) float64 {
	set := make(map[mem.Line]struct{})
	for _, c := range cores {
		s.coreReused(l, c, set)
	}
	if !s.flt.any {
		return float64(len(set)) / (float64(len(cores)) * float64(s.sliceLines(l)))
	}
	capLines, corrupt := 0, false
	for _, c := range cores {
		capLines += s.effSliceLines(l, c)
		corrupt = corrupt || s.MonitorCorrupt(c)
	}
	u := float64(len(set)) / float64(capLines)
	if corrupt && u < corruptUtilization {
		u = corruptUtilization
	}
	return u
}

// CoresOverlap returns the fraction of the smaller side's per-thread reuse
// demand that both sides reference — the data-sharing signal of merge rule
// (ii), computed per thread group. A corrupted monitor on either side reads
// full overlap (stuck-at-1 vectors intersect everywhere).
func (s *System) CoresOverlap(l Level, a, b []int) float64 {
	if s.flt.any {
		for _, set := range [][]int{a, b} {
			for _, c := range set {
				if s.MonitorCorrupt(c) {
					return 1
				}
			}
		}
	}
	sa := make(map[mem.Line]struct{})
	sb := make(map[mem.Line]struct{})
	for _, c := range a {
		s.coreReused(l, c, sa)
	}
	for _, c := range b {
		s.coreReused(l, c, sb)
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	small, big := sa, sb
	if len(sb) < len(sa) {
		small, big = sb, sa
	}
	common := 0
	for line := range small {
		if _, ok := big[line]; ok {
			common++
		}
	}
	return float64(common) / float64(len(small))
}
