package hierarchy

import "morphcache/internal/mem"

// Footprint signals for the MorphCache controller (§2.1–2.2).
//
// The controller consumes the *reuse demand* of each (core, slice): the set
// of unique lines the core referenced at that level at least twice in the
// current interval. This refines the paper's ACF in two ways that matter in
// a trace-driven setting:
//
//   - demand, not residency: a thrashing slice (working set ≫ capacity)
//     must read as highly utilized even though each line barely stays
//     resident, otherwise merge rule (i) can never see the starvation it is
//     supposed to relieve;
//   - two-touch filter: lines referenced exactly once (streams) exert no
//     capacity *utility* — giving them cache space returns nothing — so
//     they are excluded, mirroring the paper's observation that stale,
//     unreused data must not inflate the estimate.
//
// The hardware ACFV bit-vector of §2.1 (package acfv) approximates exactly
// this kind of set; Fig. 5 of the paper — reproduced by the fig5 experiment
// — quantifies how well small vectors track the true footprint. The
// simulator hands the controller the exact set (the paper's "oracle") so
// that policy quality is studied separately from estimator fidelity.
//
// Representation: the sets used to be map[mem.Line]uint8 values rebuilt
// from scratch every interval, which made markDemand (on the access path)
// and every epoch reset allocate. They are now generation-stamped
// open-addressing tables: a slot is live only when its gen equals the
// table's current generation, so ResetFootprints is one counter bump and
// the backing arrays are reused across intervals (grown geometrically to
// the high-water footprint, then allocation-free). Iteration order over a
// table is array order — deterministic — and every consumer below reduces
// to order-independent set cardinalities anyway.

// demandHash mixes a line address into a table index (same multiplicative
// scheme as presenceHash, without the ASID term: demand sets are per-core
// and cores do not mix address spaces within an interval).
func demandHash(line mem.Line) uint64 {
	h := uint64(line) * 0x9E3779B97F4A7C15
	return h ^ h>>32
}

// demandTable tracks one (core, slice) footprint: line -> touch count
// (saturating at 15). The zero value is an empty table.
type demandTable struct {
	mask  uint64
	lines []mem.Line
	cnt   []uint8
	gen   []uint32
	cur   uint32 // current generation; slots with gen != cur are empty
	n     int    // live entries in the current generation
}

// mark records one touch of the line in the current interval.
func (d *demandTable) mark(line mem.Line) {
	if d.lines == nil {
		d.grow(64)
	}
	i := demandHash(line) & d.mask
	for {
		if d.gen[i] != d.cur {
			d.lines[i], d.gen[i], d.cnt[i] = line, d.cur, 1
			d.n++
			if 4*d.n > 3*len(d.lines) {
				d.grow(2 * len(d.lines))
			}
			return
		}
		if d.lines[i] == line {
			if d.cnt[i] < 15 {
				d.cnt[i]++
			}
			return
		}
		i = (i + 1) & d.mask
	}
}

// grow rehashes the live entries into a table of the given slot count.
func (d *demandTable) grow(slots int) {
	oldLines, oldCnt, oldGen, oldCur := d.lines, d.cnt, d.gen, d.cur
	d.lines = make([]mem.Line, slots)
	d.cnt = make([]uint8, slots)
	d.gen = make([]uint32, slots)
	d.mask = uint64(slots - 1)
	d.cur = 1
	for i, g := range oldGen {
		if g != oldCur {
			continue
		}
		j := demandHash(oldLines[i]) & d.mask
		for d.gen[j] == d.cur {
			j = (j + 1) & d.mask
		}
		d.lines[j], d.gen[j], d.cnt[j] = oldLines[i], 1, oldCnt[i]
	}
}

// reset empties the table for the next interval without touching the
// backing arrays: slots stamped with older generations read as empty.
func (d *demandTable) reset() {
	if d.lines == nil {
		return
	}
	d.cur++
	if d.cur == 0 {
		// Generation counter wrapped (after 2^32 intervals): clear the
		// stamps so stale slots cannot alias the new generation.
		for i := range d.gen {
			d.gen[i] = 0
		}
		d.cur = 1
	}
	d.n = 0
}

// forEach calls fn for every line touched at least thr times this interval.
func (d *demandTable) forEach(thr uint8, fn func(mem.Line)) {
	for i, g := range d.gen {
		if g == d.cur && d.cnt[i] >= thr {
			fn(d.lines[i])
		}
	}
}

// lineSet is a reusable set of lines with the same generation-stamped
// reset: the utilization/overlap signals below build their union sets in
// two of these scratch instances owned by the System instead of allocating
// fresh maps on every controller query. The zero value is an empty set.
type lineSet struct {
	mask  uint64
	lines []mem.Line
	gen   []uint32
	cur   uint32
	n     int
}

// reset empties the set.
func (s *lineSet) reset() {
	if s.lines == nil {
		return
	}
	s.cur++
	if s.cur == 0 {
		for i := range s.gen {
			s.gen[i] = 0
		}
		s.cur = 1
	}
	s.n = 0
}

// add inserts the line (idempotent).
func (s *lineSet) add(line mem.Line) {
	if s.lines == nil {
		s.grow(64)
	}
	i := demandHash(line) & s.mask
	for {
		if s.gen[i] != s.cur {
			s.lines[i], s.gen[i] = line, s.cur
			s.n++
			if 4*s.n > 3*len(s.lines) {
				s.grow(2 * len(s.lines))
			}
			return
		}
		if s.lines[i] == line {
			return
		}
		i = (i + 1) & s.mask
	}
}

// has reports membership.
func (s *lineSet) has(line mem.Line) bool {
	if s.lines == nil {
		return false
	}
	i := demandHash(line) & s.mask
	for {
		if s.gen[i] != s.cur {
			return false
		}
		if s.lines[i] == line {
			return true
		}
		i = (i + 1) & s.mask
	}
}

// size returns the set cardinality.
func (s *lineSet) size() int { return s.n }

// forEach calls fn for every member.
func (s *lineSet) forEach(fn func(mem.Line)) {
	for i, g := range s.gen {
		if g == s.cur {
			fn(s.lines[i])
		}
	}
}

// grow rehashes the members into a table of the given slot count.
func (s *lineSet) grow(slots int) {
	oldLines, oldGen, oldCur := s.lines, s.gen, s.cur
	s.lines = make([]mem.Line, slots)
	s.gen = make([]uint32, slots)
	s.mask = uint64(slots - 1)
	s.cur = 1
	for i, g := range oldGen {
		if g != oldCur {
			continue
		}
		j := demandHash(oldLines[i]) & s.mask
		for s.gen[j] == s.cur {
			j = (j + 1) & s.mask
		}
		s.lines[j], s.gen[j] = oldLines[i], 1
	}
}

// Reuse thresholds: a line belongs to a level's demand when the core
// touched it at this level at least this many times in the interval. L2
// marks fire only on L2 hits, so the threshold selects lines whose reuse is
// actually realized at L2 tempo; L3 marks fire on L3 hits and fills (i.e.,
// accesses that missed L2), so two touches there identify L3-tempo reuse —
// including the working set of a thrashing slice, which hits nowhere but
// keeps coming back. Once-touched lines (streams) never count anywhere.
const (
	l2ReuseThreshold = 2
	l3ReuseThreshold = 2
)

func reuseThreshold(l Level) uint8 {
	if l == L2 {
		return l2ReuseThreshold
	}
	return l3ReuseThreshold
}

func (s *System) markDemand(l Level, core, slice int, line mem.Line) {
	dd := s.demandL2
	if l == L3 {
		dd = s.demandL3
	}
	dd[core][slice].mark(line)
}

// ResetFootprints clears every footprint set; called once per
// reconfiguration interval so the sets track only the current interval's
// actively used data (§2.1). The backing tables are retained (generation
// bump), so steady-state epochs allocate nothing.
func (s *System) ResetFootprints() {
	for c := 0; c < s.p.Cores; c++ {
		for sl := 0; sl < s.p.Cores; sl++ {
			s.demandL2[c][sl].reset()
			s.demandL3[c][sl].reset()
		}
	}
}

func (s *System) sliceLines(l Level) int {
	if l == L2 {
		return s.l2Lines
	}
	return s.l3Lines
}

// sliceReused builds the union over cores of one slice's reused lines.
func (s *System) sliceReused(l Level, slice int, into *lineSet) {
	dd := s.demandL2
	if l == L3 {
		dd = s.demandL3
	}
	thr := reuseThreshold(l)
	for c := 0; c < s.p.Cores; c++ {
		dd[c][slice].forEach(thr, into.add)
	}
}

// SliceUtilization returns the reuse demand of one slice as a fraction of
// its capacity — the signal compared against the MSAT bounds. Values above
// 1 mean the active working set exceeds the slice.
func (s *System) SliceUtilization(l Level, slice int) float64 {
	set := &s.scratchA
	set.reset()
	s.sliceReused(l, slice, set)
	if !s.flt.any {
		return float64(set.size()) / float64(s.sliceLines(l))
	}
	return float64(set.size()) / float64(s.effSliceLines(l, slice))
}

// SubsetUtilization returns the juxtaposed utilization of a set of slices
// (§2.2): total reuse demand over total capacity. With a whole group it is
// the group's utilization; with half a group it is the signal the split
// rule examines.
func (s *System) SubsetUtilization(l Level, slices []int) float64 {
	set := &s.scratchA
	set.reset()
	for _, sl := range slices {
		s.sliceReused(l, sl, set)
	}
	if !s.flt.any {
		return float64(set.size()) / (float64(len(slices)) * float64(s.sliceLines(l)))
	}
	capLines := 0
	for _, sl := range slices {
		capLines += s.effSliceLines(l, sl)
	}
	return float64(set.size()) / float64(capLines)
}

// GroupUtilization returns the utilization of a whole group.
func (s *System) GroupUtilization(l Level, group int) float64 {
	return s.SubsetUtilization(l, s.grouping(l).Members(group))
}

// overlapOf returns the fraction of the smaller set's members that both
// sets contain, 0 when either set is empty.
func overlapOf(sa, sb *lineSet) float64 {
	if sa.size() == 0 || sb.size() == 0 {
		return 0
	}
	small, big := sa, sb
	if sb.size() < sa.size() {
		small, big = sb, sa
	}
	common := 0
	small.forEach(func(line mem.Line) {
		if big.has(line) {
			common++
		}
	})
	return float64(common) / float64(small.size())
}

// SubsetOverlap returns the data-sharing signal between two slice sets at a
// level: the fraction of the smaller set's reuse demand that both sets
// reference. This is the "significant number of common 1s" test of merge
// rule (ii); the caller is responsible for the same-address-space check.
func (s *System) SubsetOverlap(l Level, a, b []int) float64 {
	sa, sb := &s.scratchA, &s.scratchB
	sa.reset()
	sb.reset()
	for _, sl := range a {
		s.sliceReused(l, sl, sa)
	}
	for _, sl := range b {
		s.sliceReused(l, sl, sb)
	}
	return overlapOf(sa, sb)
}

// GroupOverlap is SubsetOverlap over two existing groups.
func (s *System) GroupOverlap(l Level, ga, gb int) float64 {
	g := s.grouping(l)
	return s.SubsetOverlap(l, g.Members(ga), g.Members(gb))
}

// SlicesShareASID reports whether all listed cores run threads of one
// address space — the precondition of merge rule (ii). Cores map one-to-one
// to slices, so slice indices double as core ids.
func (s *System) SlicesShareASID(slices ...[]int) bool {
	ref := s.coreASID[slices[0][0]]
	for _, set := range slices {
		for _, c := range set {
			if s.coreASID[c] != ref {
				return false
			}
		}
	}
	return true
}

// coreReused collects one core's reused lines at a level across every slice
// its data lands in. This is the paper's per-thread ACF: "the set of unique
// cache lines referenced by that thread in that epoch" — independent of
// *where* a merged group placed the lines, which matters because the
// locality spill spreads a thread's working set across its group.
func (s *System) coreReused(l Level, core int, into *lineSet) {
	dd := s.demandL2
	if l == L3 {
		dd = s.demandL3
	}
	thr := reuseThreshold(l)
	for sl := 0; sl < s.p.Cores; sl++ {
		dd[core][sl].forEach(thr, into.add)
	}
}

// CoresUtilization returns the combined reuse demand of a set of cores
// (threads) as a fraction of len(cores) slices of capacity — the per-thread
// ACF signal the controller's merge and split rules compare against the
// MSAT bounds. Under faults, the denominator counts only usable capacity
// (disabled ways excluded), and a corrupted monitor in the set saturates
// the reading to corruptUtilization — the garbage a stuck-at-1 ACFV feeds
// an unprotected controller.
func (s *System) CoresUtilization(l Level, cores []int) float64 {
	set := &s.scratchA
	set.reset()
	for _, c := range cores {
		s.coreReused(l, c, set)
	}
	if !s.flt.any {
		return float64(set.size()) / (float64(len(cores)) * float64(s.sliceLines(l)))
	}
	capLines, corrupt := 0, false
	for _, c := range cores {
		capLines += s.effSliceLines(l, c)
		corrupt = corrupt || s.MonitorCorrupt(c)
	}
	u := float64(set.size()) / float64(capLines)
	if corrupt && u < corruptUtilization {
		u = corruptUtilization
	}
	return u
}

// CoresOverlap returns the fraction of the smaller side's per-thread reuse
// demand that both sides reference — the data-sharing signal of merge rule
// (ii), computed per thread group. A corrupted monitor on either side reads
// full overlap (stuck-at-1 vectors intersect everywhere).
func (s *System) CoresOverlap(l Level, a, b []int) float64 {
	if s.flt.any {
		for _, set := range [][]int{a, b} {
			for _, c := range set {
				if s.MonitorCorrupt(c) {
					return 1
				}
			}
		}
	}
	sa, sb := &s.scratchA, &s.scratchB
	sa.reset()
	sb.reset()
	for _, c := range a {
		s.coreReused(l, c, sa)
	}
	for _, c := range b {
		s.coreReused(l, c, sb)
	}
	return overlapOf(sa, sb)
}
