package hierarchy

import (
	"fmt"

	"morphcache/internal/bus"
	"morphcache/internal/fault"
	"morphcache/internal/telemetry"
)

// Fault plumbing: the hierarchy is the component that turns an abstract
// fault.Event into concrete damage — dead ways, slow links, lying monitors,
// a derated memory channel — and that exposes the resulting state to the
// controller (which reacts) and to telemetry (which records). The healthy
// path is kept bit-identical to the pre-fault simulator: every fault check
// sits behind the flt.any flag, which stays false until the first
// ApplyFault call.

// corruptUtilization is the utilization a corrupted (stuck-at-1) ACFV
// monitor reports: the vector reads near-saturated regardless of the true
// footprint, so any group containing the core appears to demand 1.5 slices
// of capacity per core. The value is chosen to clear every MSAT High bound
// (1.05 by default) so an untreated corruption reliably drives the
// controller's capacity rules.
const corruptUtilization = 1.5

// faultState aggregates injected damage. Zero value = healthy machine; the
// slices stay nil until the first fault of their kind so the hot paths pay
// one flag test.
type faultState struct {
	// any flips true on the first applied fault and never resets (hardware
	// faults do not heal).
	any bool
	// linkSlow*[k] is the occupancy/latency multiplier of the interior bus
	// link between slices k and k+1 (1 = healthy); linkDead*[k] marks links
	// that failed entirely (multiplier pinned at bus.DeadLinkFactor).
	linkSlowL2, linkSlowL3 []float64
	linkDeadL2, linkDeadL3 []bool
	// corrupt[c] is the number of epochs core c's ACFV monitor remains
	// corrupted; aged by AgeFaults at epoch boundaries.
	corrupt []int
}

func (f *faultState) ensureLinks(cores int) {
	if f.linkSlowL2 == nil {
		f.linkSlowL2 = make([]float64, cores-1)
		f.linkSlowL3 = make([]float64, cores-1)
		f.linkDeadL2 = make([]bool, cores-1)
		f.linkDeadL3 = make([]bool, cores-1)
		for k := range f.linkSlowL2 {
			f.linkSlowL2[k], f.linkSlowL3[k] = 1, 1
		}
	}
}

func (f *faultState) links(l Level) (dead []bool, slow []float64) {
	if l == L2 {
		return f.linkDeadL2, f.linkSlowL2
	}
	return f.linkDeadL3, f.linkSlowL3
}

func faultLevel(l int) Level {
	if l == 2 {
		return L2
	}
	return L3
}

func (s *System) busAt(l Level) *bus.SegmentedBus {
	if l == L2 {
		return s.busL2
	}
	return s.busL3
}

// ApplyFault injects one fault event into the running hierarchy. Faults are
// cumulative and permanent (except monitor corruption, which ages out via
// AgeFaults). Lines resident in ways that a WayDisable kills are evicted
// through the ordinary eviction path, so inclusion and the present masks
// stay consistent.
func (s *System) ApplyFault(ev fault.Event) error {
	plan := fault.Plan{Events: []fault.Event{ev}}
	if err := plan.Validate(s.p.Cores); err != nil {
		return err
	}
	switch ev.Kind {
	case fault.WayDisable:
		l := faultLevel(ev.Level)
		sl := s.sliceAt(l, ev.Slice)
		dropped := sl.SetDisabledWays(sl.DisabledWays() + ev.Ways)
		for _, e := range dropped {
			s.dropEvicted(l, ev.Slice, e)
		}
	case fault.LinkDead:
		l := faultLevel(ev.Level)
		s.flt.ensureLinks(s.p.Cores)
		dead, slow := s.flt.links(l)
		dead[ev.Link] = true
		slow[ev.Link] = bus.DeadLinkFactor
		s.busAt(l).SetLinkDead(ev.Link)
	case fault.LinkDegrade:
		l := faultLevel(ev.Level)
		s.flt.ensureLinks(s.p.Cores)
		dead, slow := s.flt.links(l)
		if !dead[ev.Link] && ev.Factor > slow[ev.Link] {
			slow[ev.Link] = ev.Factor
		}
		s.busAt(l).SetLinkDegrade(ev.Link, ev.Factor)
	case fault.MonitorCorrupt:
		if s.flt.corrupt == nil {
			s.flt.corrupt = make([]int, s.p.Cores)
		}
		dur := ev.Duration
		if dur < 1 {
			dur = 1
		}
		if dur > s.flt.corrupt[ev.Core] {
			s.flt.corrupt[ev.Core] = dur
		}
	case fault.MemDerate:
		if ev.Factor > s.memChan.Derate() {
			s.memChan.SetDerate(ev.Factor)
		}
	default:
		return fmt.Errorf("hierarchy: unknown fault kind %v", ev.Kind)
	}
	s.flt.any = true
	return nil
}

// AgeFaults advances transient faults by one epoch: monitor corruption
// counts down and eventually clears. Called by the engine at epoch starts.
func (s *System) AgeFaults() {
	for i, d := range s.flt.corrupt {
		if d > 0 {
			s.flt.corrupt[i] = d - 1
		}
	}
}

// HasFaults reports whether any fault has ever been applied.
func (s *System) HasFaults() bool { return s.flt.any }

// MonitorCorrupt reports whether core c's ACFV monitor is currently
// corrupted (its utilization/overlap readings are garbage).
func (s *System) MonitorCorrupt(core int) bool {
	return s.flt.corrupt != nil && s.flt.corrupt[core] > 0
}

// CorruptMonitors lists the cores with currently corrupted monitors, in
// ascending order.
func (s *System) CorruptMonitors() []int {
	var out []int
	for c, d := range s.flt.corrupt {
		if d > 0 {
			out = append(out, c)
		}
	}
	return out
}

// SpansDeadLink reports whether a contiguous slice span [members[0],
// members[len-1]] crosses a dead interior bus link at the level — such a
// group's intra-group traffic must ride the dead link and pays
// bus.DeadLinkFactor on every crossing.
func (s *System) SpansDeadLink(l Level, members []int) bool {
	dead, _ := s.flt.links(l)
	if dead == nil || len(members) < 2 {
		return false
	}
	lo, hi := members[0], members[len(members)-1]
	if lo > hi {
		lo, hi = hi, lo
	}
	for k := lo; k < hi; k++ {
		if dead[k] {
			return true
		}
	}
	return false
}

// linkExtra returns the extra cycles a remote access between slices a and b
// pays for degraded/dead links on its path: each crossed link with
// multiplier f > 1 stretches the base bus overhead by (f-1)×base.
func (s *System) linkExtra(l Level, a, b int) int {
	_, slow := s.flt.links(l)
	if slow == nil || a == b {
		return 0
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	base := float64(s.p.BusTiming.OverheadCPUCycles())
	extra := 0
	for k := lo; k < hi; k++ {
		if f := slow[k]; f > 1 {
			extra += int(base * (f - 1))
		}
	}
	return extra
}

// effSliceLines returns the usable line capacity of one slice: full
// capacity minus the sets×ways killed by disabled ways.
func (s *System) effSliceLines(l Level, slice int) int {
	sl := s.sliceAt(l, slice)
	if sl.DisabledWays() > 0 {
		return sl.Sets() * sl.EffectiveWays()
	}
	return s.sliceLines(l)
}

// FaultState summarizes the current fault state for telemetry, or nil on a
// healthy machine (so no-fault runs serialize byte-identically to builds
// that predate fault injection).
func (s *System) FaultState() *telemetry.FaultState {
	if !s.flt.any {
		return nil
	}
	fs := &telemetry.FaultState{CorruptMonitors: s.CorruptMonitors()}
	if d := s.memChan.Derate(); d > 1 {
		fs.MemDerate = d
	}
	dis := func(l Level) []int {
		out := make([]int, s.p.Cores)
		nz := false
		for i := range out {
			out[i] = s.sliceAt(l, i).DisabledWays()
			nz = nz || out[i] > 0
		}
		if !nz {
			return nil
		}
		return out
	}
	fs.DisabledWaysL2, fs.DisabledWaysL3 = dis(L2), dis(L3)
	links := func(dead []bool, slow []float64) (dl, dg []int) {
		for k := range slow {
			switch {
			case dead[k]:
				dl = append(dl, k)
			case slow[k] > 1:
				dg = append(dg, k)
			}
		}
		return dl, dg
	}
	if s.flt.linkSlowL2 != nil {
		fs.DeadLinksL2, fs.DegradedLinksL2 = links(s.flt.linkDeadL2, s.flt.linkSlowL2)
		fs.DeadLinksL3, fs.DegradedLinksL3 = links(s.flt.linkDeadL3, s.flt.linkSlowL3)
	}
	return fs
}
