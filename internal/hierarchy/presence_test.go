package hierarchy

import (
	"testing"

	"morphcache/internal/mem"
	"morphcache/internal/rng"
	"morphcache/internal/topology"
)

func TestPresenceIndexBasics(t *testing.T) {
	p := NewPresenceIndex(64)
	a := mem.GlobalLine{ASID: 1, Line: 100}
	b := mem.GlobalLine{ASID: 2, Line: 100} // same line, different space

	if p.Get(a) != 0 {
		t.Fatal("empty index reports a line present")
	}
	p.Or(a, 1<<0)
	p.Or(a, 1<<3)
	p.Or(b, 1<<1)
	if got := p.Get(a); got != 1<<0|1<<3 {
		t.Fatalf("mask %#x, want %#x", got, 1<<0|1<<3)
	}
	if got := p.Get(b); got != 1<<1 {
		t.Fatalf("ASIDs not distinguished: mask %#x", got)
	}
	if p.Len() != 2 {
		t.Fatalf("Len %d, want 2", p.Len())
	}
	p.Clear(a, 1<<0)
	if got := p.Get(a); got != 1<<3 {
		t.Fatalf("after partial clear mask %#x, want %#x", got, 1<<3)
	}
	p.Clear(a, 1<<3)
	if p.Get(a) != 0 || p.Len() != 1 {
		t.Fatal("clearing the last bit must delete the key")
	}
	p.Clear(a, 1<<5) // absent key: no-op
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPresenceIndexOverflowPanics(t *testing.T) {
	p := NewPresenceIndex(4)
	for i := 0; i < 4; i++ {
		p.Or(mem.GlobalLine{ASID: 1, Line: mem.Line(i)}, 1)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("inserting beyond capacity must panic")
		}
	}()
	p.Or(mem.GlobalLine{ASID: 1, Line: 99}, 1)
}

// TestPresenceIndexChurn drives randomized or/clear traffic against a
// reference map, exercising the backward-shift deletion paths, and verifies
// both the answers and the structural invariants after every phase.
func TestPresenceIndexChurn(t *testing.T) {
	const keys = 512
	p := NewPresenceIndex(keys)
	ref := make(map[mem.GlobalLine]uint32)
	r := rng.New(11)
	gl := func() mem.GlobalLine {
		// A small keyspace with strided lines forces dense probe chains.
		return mem.GlobalLine{ASID: mem.ASID(1 + r.Intn(3)), Line: mem.Line(r.Intn(keys/4) * 16)}
	}
	for round := 0; round < 200; round++ {
		for op := 0; op < 64; op++ {
			k := gl()
			bit := uint32(1) << uint(r.Intn(8))
			if r.Intn(3) == 0 {
				p.Clear(k, bit)
				if v := ref[k] &^ bit; v == 0 {
					delete(ref, k)
				} else {
					ref[k] = v
				}
			} else if len(ref) < keys || ref[k] != 0 {
				p.Or(k, bit)
				ref[k] |= bit
			}
		}
		if err := p.Check(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if p.Len() != len(ref) {
			t.Fatalf("round %d: Len %d, reference %d", round, p.Len(), len(ref))
		}
		for k, v := range ref {
			if got := p.Get(k); got != v {
				t.Fatalf("round %d: get(%+v) = %#x, want %#x", round, k, got, v)
			}
		}
	}
}

// dupTopo merges slices 0 and 1 at both levels, leaving 2 and 3 private.
func dupTopo(t *testing.T) topology.Topology {
	t.Helper()
	return topology.Topology{
		L2: mustGroups(t, 4, [][]int{{0, 1}, {2}, {3}}),
		L3: mustGroups(t, 4, [][]int{{0, 1}, {2}, {3}}),
	}
}

// seedDuplicates puts a duplicate copy of the line in the L2 and L3 of both
// slice 0 and slice 1 (reads under a private topology replicate via C2C),
// then merges the two slices so the duplicates share a group.
func seedDuplicates(t *testing.T, s *System, line mem.Line, asid mem.ASID) {
	t.Helper()
	s.SetCoreASID(0, asid)
	s.SetCoreASID(1, asid)
	s.Access(0, rd(line, asid), 0)
	s.Access(1, rd(line, asid), 0)
	if err := s.SetTopology(dupTopo(t)); err != nil {
		t.Fatal(err)
	}
	gl := mem.GlobalLine{ASID: asid, Line: line}
	if s.presL2.Get(gl) != 3 || s.presL3.Get(gl) != 3 {
		t.Fatalf("duplicates not seeded: L2 %#x L3 %#x", s.presL2.Get(gl), s.presL3.Get(gl))
	}
}

// TestDirtyCreditSurvivesLazyInvalidation proves the fillL1/findInGroup
// asymmetry safe: fillL1 credits a dirty L1 eviction to the lowest-index
// duplicate while findInGroup retains the copy nearest the requester, so
// the credited copy can be the one lazy invalidation discards — but
// invalidateAt propagates the discarded copy's dirtiness to the L3 copy, so
// the writeback is never lost. This is the regression test for that
// sequence.
func TestDirtyCreditSurvivesLazyInvalidation(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	const asid, line = 7, 100
	gl := mem.GlobalLine{ASID: asid, Line: line}
	seedDuplicates(t, s, line, asid)

	// Core 1 dirties the line in its L1 (an L1 hit: the in-group L2/L3
	// duplicates are untouched and stay clean).
	s.Access(1, wr(line, asid), 0)
	for _, sl := range []int{0, 1} {
		if e := s.SliceCache(L2, sl).Entry(s.SliceCache(L2, sl).SetIndex(line), mustWay(t, s, L2, sl, gl)); e.Dirty {
			t.Fatalf("L2 slice %d dirty before the L1 eviction", sl)
		}
	}

	// Evict the dirty line from core 1's L1 by filling its set. The
	// eviction's fillL1 credit goes to the lowest-index L2 duplicate
	// (slice 0) even though core 1's surviving copy is slice 1.
	l1 := s.L1Cache(1)
	for i := 1; i <= l1.Ways(); i++ {
		s.Access(1, rd(line+mem.Line(i*l1.Sets()), asid), 0)
	}
	if l1.Lookup(asid, line) >= 0 {
		t.Fatal("line still in core 1's L1")
	}
	e0 := s.SliceCache(L2, 0).Entry(s.SliceCache(L2, 0).SetIndex(line), mustWay(t, s, L2, 0, gl))
	e1 := s.SliceCache(L2, 1).Entry(s.SliceCache(L2, 1).SetIndex(line), mustWay(t, s, L2, 1, gl))
	if !e0.Dirty || e1.Dirty {
		t.Fatalf("credit should land on the lowest-index duplicate: slice0 %v slice1 %v", e0.Dirty, e1.Dirty)
	}

	// Core 1 re-reads: findInGroup keeps slice 1 (nearest the requester)
	// and lazily invalidates the dirty slice 0 copy, whose dirtiness must
	// propagate to the L3 copy instead of vanishing.
	r := s.Access(1, rd(line, asid), 0)
	if r.Served != ByL2 || r.Remote {
		t.Fatalf("expected a local L2 hit, got %+v", r)
	}
	if mask := s.presL2.Get(gl); mask != 1<<1 {
		t.Fatalf("surviving L2 copy mask %#x, want slice 1 only", mask)
	}
	l3set := s.SliceCache(L3, 0).SetIndex(line)
	if w := s.SliceCache(L3, 0).Lookup(asid, line); w < 0 {
		t.Fatal("L3 slice 0 copy missing")
	} else if !s.SliceCache(L3, 0).Entry(l3set, w).Dirty {
		t.Fatal("dirtiness lost: the lazily invalidated dirty L2 copy must mark the L3 copy dirty")
	}
	if err := s.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func mustWay(t *testing.T, s *System, l Level, slice int, gl mem.GlobalLine) int {
	t.Helper()
	w := s.SliceCache(l, slice).Lookup(gl.ASID, gl.Line)
	if w < 0 {
		t.Fatalf("%v slice %d does not hold %+v", l, slice, gl)
	}
	return w
}

// TestFillGroupDuplicateVictimSuppression covers the merged-group eviction
// of a line that still has a duplicate in another member slice: the victim
// must not spill (that would double-insert it), its presence bit must drop
// cleanly, and its dirtiness must propagate to the surviving copy.
func TestFillGroupDuplicateVictimSuppression(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	const asid, line = 7, 100
	gl := mem.GlobalLine{ASID: asid, Line: line}
	seedDuplicates(t, s, line, asid)

	// Dirty slice 0's copy through core 0's dirty L1 eviction (the credit
	// targets the lowest-index duplicate, which here is also core 0's own
	// surviving copy).
	s.Access(0, wr(line, asid), 0)
	l1 := s.L1Cache(0)
	for i := 1; i <= l1.Ways(); i++ {
		s.Access(0, rd(line+mem.Line(i*l1.Sets()), asid), 0)
	}
	if e := s.SliceCache(L2, 0).Entry(s.SliceCache(L2, 0).SetIndex(line), mustWay(t, s, L2, 0, gl)); !e.Dirty {
		t.Fatal("setup: slice 0 L2 copy not dirty")
	}

	// Fill slice 0's L2 set with fresh lines until the dirty duplicate is
	// evicted. Its twin in slice 1 must absorb the dirtiness, and the
	// victim must not be spilled back into the group.
	l2 := s.SliceCache(L2, 0)
	evictions := l2.Ways() + 4
	for i := 1; i <= evictions; i++ {
		s.Access(0, rd(line+mem.Line(4*i*l2.Sets()), asid), 0)
	}
	if got := s.presL2.Get(gl); got != 1<<1 {
		t.Fatalf("after eviction, presence mask %#x, want only the slice 1 duplicate", got)
	}
	if w := s.SliceCache(L2, 1).Lookup(asid, line); w < 0 {
		t.Fatal("surviving duplicate missing from slice 1")
	} else if !s.SliceCache(L2, 1).Entry(s.SliceCache(L2, 1).SetIndex(line), w).Dirty {
		t.Fatal("dirtiness not propagated to the surviving duplicate")
	}
	if err := s.CheckPresence(); err != nil {
		t.Fatal(err)
	}
}

// TestFillGroupSpillMovesPresence covers the ordinary spill: a victim with
// no duplicate displaced from the requester's slice moves to another member
// slice, and the presence index must track the move exactly.
func TestFillGroupSpillMovesPresence(t *testing.T) {
	topo := topology.Topology{
		L2: mustGroups(t, 4, [][]int{{0, 1}, {2}, {3}}),
		L3: mustGroups(t, 4, [][]int{{0, 1}, {2}, {3}}),
	}
	s := quiet(t, topo, true)
	const asid = 7
	s.SetCoreASID(0, asid)
	s.SetCoreASID(1, asid)

	// Core 0 streams one L2 set's worth of lines plus one: the overflow
	// victim must spill into slice 1's free ways, not leave the level.
	l2 := s.SliceCache(L2, 0)
	n := l2.Ways() + 1
	for i := 0; i < n; i++ {
		s.Access(0, rd(mem.Line(100+i*l2.Sets()), asid), 0)
	}
	spilled := 0
	for i := 0; i < n; i++ {
		gl := mem.GlobalLine{ASID: asid, Line: mem.Line(100 + i*l2.Sets())}
		switch s.presL2.Get(gl) {
		case 1 << 0:
		case 1 << 1:
			spilled++
			if w := s.SliceCache(L2, 1).Lookup(gl.ASID, gl.Line); w < 0 {
				t.Fatalf("presence claims slice 1 holds %+v but it does not", gl)
			}
		default:
			t.Fatalf("line %+v has unexpected presence mask %#x", gl, s.presL2.Get(gl))
		}
	}
	if spilled != 1 {
		t.Fatalf("%d lines spilled to slice 1, want exactly the one overflow victim", spilled)
	}
	if err := s.CheckPresence(); err != nil {
		t.Fatal(err)
	}
}

// TestPresenceConsistencyUnderChurn runs a randomized multi-space workload
// across reconfigurations (merging, splitting, and re-merging) and verifies
// the presence indexes against the slices' actual contents — the exhaustive
// form of the access path's "present mask inconsistent" panic.
func TestPresenceConsistencyUnderChurn(t *testing.T) {
	s := quiet(t, topology.AllShared(4), true)
	for c := 0; c < 4; c++ {
		s.SetCoreASID(c, mem.ASID(1+c%2))
	}
	r := rng.New(3)
	topos := []topology.Topology{
		topology.AllShared(4),
		topology.AllPrivate(4),
		{L2: mustGroups(t, 4, [][]int{{0, 1}, {2, 3}}), L3: mustGroups(t, 4, [][]int{{0, 1}, {2, 3}})},
		{L2: mustGroups(t, 4, [][]int{{0}, {1}, {2, 3}}), L3: mustGroups(t, 4, [][]int{{0, 1}, {2, 3}})},
	}
	for phase := 0; phase < 8; phase++ {
		for i := 0; i < 6000; i++ {
			c := r.Intn(4)
			a := mem.Access{Line: mem.Line(r.Intn(2048)), ASID: mem.ASID(1 + c%2)}
			if r.Intn(4) == 0 {
				a.Kind = mem.Write
			}
			s.Access(c, a, uint64(i))
		}
		if err := s.CheckInclusion(); err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		if err := s.SetTopology(topos[r.Intn(len(topos))]); err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		if err := s.CheckPresence(); err != nil {
			t.Fatalf("phase %d after reconfig: %v", phase, err)
		}
		s.ResetFootprints()
	}
}
