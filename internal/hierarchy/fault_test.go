package hierarchy

import (
	"testing"

	"morphcache/internal/bus"
	"morphcache/internal/fault"
	"morphcache/internal/mem"
	"morphcache/internal/topology"
)

func TestApplyFaultRejectsInvalidEvents(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	bad := []fault.Event{
		{Kind: fault.WayDisable, Level: 2, Slice: 9, Ways: 1}, // slice out of range
		{Kind: fault.LinkDead, Level: 4, Link: 0},             // no such level
		{Kind: fault.LinkDegrade, Level: 2, Link: 0, Factor: 0.5},
		{Kind: fault.Kind(99)},
	}
	for _, ev := range bad {
		if err := s.ApplyFault(ev); err == nil {
			t.Errorf("ApplyFault(%+v) accepted", ev)
		}
	}
	if s.HasFaults() {
		t.Fatal("rejected events must not mark the machine faulty")
	}
	if s.FaultState() != nil {
		t.Fatal("healthy machine must report nil fault state")
	}
}

func TestWayDisableShrinksCapacityAndKeepsInclusion(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	// Load core 0's slices so the disabled ways actually hold lines.
	for i := 0; i < 4000; i++ {
		s.Access(0, rd(mem.Line(i), 1), 0)
	}
	if err := s.CheckInclusion(); err != nil {
		t.Fatalf("pre-fault: %v", err)
	}
	full := s.effSliceLines(L2, 0)
	if err := s.ApplyFault(fault.Event{Kind: fault.WayDisable, Level: 2, Slice: 0, Ways: 2}); err != nil {
		t.Fatal(err)
	}
	sl := s.SliceCache(L2, 0)
	if sl.DisabledWays() != 2 || sl.EffectiveWays() != sl.Ways()-2 {
		t.Fatalf("disabled=%d effective=%d of %d ways", sl.DisabledWays(), sl.EffectiveWays(), sl.Ways())
	}
	if got, want := s.effSliceLines(L2, 0), sl.Sets()*(sl.Ways()-2); got != want {
		t.Fatalf("effective lines %d, want %d (full %d)", got, want, full)
	}
	// Dropped lines must have gone through the ordinary eviction path.
	if err := s.CheckInclusion(); err != nil {
		t.Fatalf("post-fault: %v", err)
	}
	// Cumulative: a second event stacks, clamped to leave one live way.
	if err := s.ApplyFault(fault.Event{Kind: fault.WayDisable, Level: 2, Slice: 0, Ways: 99}); err != nil {
		t.Fatal(err)
	}
	if sl.EffectiveWays() != 1 {
		t.Fatalf("over-disabling must leave one way, got %d", sl.EffectiveWays())
	}
	if err := s.CheckInclusion(); err != nil {
		t.Fatalf("post-clamp: %v", err)
	}
	// The slice still works.
	s.Access(0, rd(7, 1), 0)
	if r := s.Access(0, rd(7, 1), 0); r.Served != ByL1 {
		t.Fatalf("access after way disable: %+v", r)
	}
}

func TestDeadLinkStretchesRemoteHits(t *testing.T) {
	remoteHit := func(withFault bool) int {
		topo := topology.Topology{L2: topology.Shared(4), L3: topology.Shared(4)}
		s := quiet(t, topo, true)
		s.SetCoreASID(0, 7)
		s.SetCoreASID(1, 7)
		if withFault {
			if err := s.ApplyFault(fault.Event{Kind: fault.LinkDead, Level: 2, Link: 0}); err != nil {
				t.Fatal(err)
			}
		}
		s.Access(1, rd(500, 7), 0) // fills slice 1
		r := s.Access(0, rd(500, 7), 0)
		if r.Served != ByL2 || !r.Remote {
			t.Fatalf("expected remote L2 hit, got %+v", r)
		}
		return r.Latency
	}
	healthy, faulty := remoteHit(false), remoteHit(true)
	base := ScaledDefault(4, 16).BusTiming.OverheadCPUCycles()
	want := healthy + int(float64(base)*(bus.DeadLinkFactor-1))
	if faulty != want {
		t.Fatalf("dead-link remote hit latency %d, want %d (healthy %d)", faulty, want, healthy)
	}
}

func TestLinkDegradeAndDeadPrecedence(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	if err := s.ApplyFault(fault.Event{Kind: fault.LinkDegrade, Level: 3, Link: 1, Factor: 3}); err != nil {
		t.Fatal(err)
	}
	base := s.Params().BusTiming.OverheadCPUCycles()
	if got, want := s.linkExtra(L3, 0, 2), int(float64(base)*2); got != want {
		t.Fatalf("degraded link extra %d, want %d", got, want)
	}
	// A weaker degrade must not relax the stronger one.
	if err := s.ApplyFault(fault.Event{Kind: fault.LinkDegrade, Level: 3, Link: 1, Factor: 1.5}); err != nil {
		t.Fatal(err)
	}
	if got := s.linkExtra(L3, 0, 2); got != int(float64(base)*2) {
		t.Fatalf("weaker degrade overwrote: %d", got)
	}
	// Death pins the multiplier at DeadLinkFactor; later degrades are moot.
	if err := s.ApplyFault(fault.Event{Kind: fault.LinkDead, Level: 3, Link: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyFault(fault.Event{Kind: fault.LinkDegrade, Level: 3, Link: 1, Factor: 40}); err != nil {
		t.Fatal(err)
	}
	if got, want := s.linkExtra(L3, 0, 2), int(float64(base)*(bus.DeadLinkFactor-1)); got != want {
		t.Fatalf("dead link extra %d, want %d", got, want)
	}
	// Paths not crossing the link pay nothing extra.
	if s.linkExtra(L3, 0, 1) != 0 || s.linkExtra(L3, 2, 3) != 0 {
		t.Fatal("non-crossing paths must stay free")
	}
}

func TestSpansDeadLink(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	if s.SpansDeadLink(L3, []int{0, 1, 2, 3}) {
		t.Fatal("healthy machine has no dead links")
	}
	if err := s.ApplyFault(fault.Event{Kind: fault.LinkDead, Level: 3, Link: 1}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		members []int
		want    bool
	}{
		{[]int{0, 1}, false}, // link 0 is healthy
		{[]int{1, 2}, true},  // crosses link 1
		{[]int{0, 1, 2, 3}, true},
		{[]int{2, 3}, false},
		{[]int{2}, false}, // singleton spans nothing
	}
	for _, c := range cases {
		if got := s.SpansDeadLink(L3, c.members); got != c.want {
			t.Errorf("SpansDeadLink(L3, %v) = %v, want %v", c.members, got, c.want)
		}
	}
	// The other level is unaffected.
	if s.SpansDeadLink(L2, []int{1, 2}) {
		t.Fatal("L2 links are healthy")
	}
}

func TestMonitorCorruptionSaturatesThenHeals(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	// Plant a small true footprint for core 0.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 50; i++ {
			s.markDemand(L3, 0, 0, mem.Line(i))
		}
	}
	real0 := s.CoresUtilization(L3, []int{0})
	if real0 >= corruptUtilization {
		t.Fatalf("planted footprint too big for the test: %v", real0)
	}
	if err := s.ApplyFault(fault.Event{Kind: fault.MonitorCorrupt, Core: 0, Duration: 2}); err != nil {
		t.Fatal(err)
	}
	if !s.MonitorCorrupt(0) || s.MonitorCorrupt(1) {
		t.Fatal("corruption must be per-core")
	}
	if got := s.CoresUtilization(L3, []int{0}); got != corruptUtilization {
		t.Fatalf("corrupted utilization %v, want saturated %v", got, corruptUtilization)
	}
	if got := s.CoresOverlap(L3, []int{0}, []int{1}); got != 1 {
		t.Fatalf("corrupted overlap %v, want 1", got)
	}
	// Healthy cores' readings stay truthful while another core is corrupt.
	if got := s.CoresUtilization(L3, []int{1}); got != 0 {
		t.Fatalf("healthy core's reading disturbed: %v", got)
	}
	// Ages out after Duration epochs, then the true reading returns.
	s.AgeFaults()
	if !s.MonitorCorrupt(0) {
		t.Fatal("corruption must persist for its full duration")
	}
	s.AgeFaults()
	if s.MonitorCorrupt(0) {
		t.Fatal("corruption must heal after its duration")
	}
	if got := s.CoresUtilization(L3, []int{0}); got != real0 {
		t.Fatalf("healed reading %v, want true %v", got, real0)
	}
}

func TestMemDerateStretchesChannel(t *testing.T) {
	run := func(withFault bool) uint64 {
		p := ScaledDefault(4, 16)
		p.ChargeRemote = true
		s, err := New(p, topology.AllPrivate(4))
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 4; c++ {
			s.SetCoreASID(c, mem.ASID(c+1))
		}
		if withFault {
			if err := s.ApplyFault(fault.Event{Kind: fault.MemDerate, Factor: 2}); err != nil {
				t.Fatal(err)
			}
		}
		// Four simultaneous cold misses collide on the one memory channel.
		for c := 0; c < 4; c++ {
			s.Access(c, rd(mem.Line(uint64(c)<<20), mem.ASID(c+1)), 0)
		}
		return s.Stats().MemWaitCycles
	}
	healthy, derated := run(false), run(true)
	if healthy == 0 {
		t.Fatal("test needs channel contention to observe the derate")
	}
	if derated != 2*healthy {
		t.Fatalf("2x derate should double queueing: healthy %d, derated %d", healthy, derated)
	}
}

func TestFaultStateSnapshot(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	events := []fault.Event{
		{Kind: fault.WayDisable, Level: 3, Slice: 2, Ways: 1},
		{Kind: fault.LinkDead, Level: 2, Link: 0},
		{Kind: fault.LinkDegrade, Level: 2, Link: 2, Factor: 2.5},
		{Kind: fault.MonitorCorrupt, Core: 3, Duration: 4},
		{Kind: fault.MemDerate, Factor: 1.5},
	}
	for _, ev := range events {
		if err := s.ApplyFault(ev); err != nil {
			t.Fatal(err)
		}
	}
	fs := s.FaultState()
	if fs == nil {
		t.Fatal("faulty machine must report state")
	}
	if fs.DisabledWaysL2 != nil {
		t.Fatalf("no L2 ways disabled, got %v", fs.DisabledWaysL2)
	}
	if len(fs.DisabledWaysL3) != 4 || fs.DisabledWaysL3[2] != 1 {
		t.Fatalf("DisabledWaysL3 %v", fs.DisabledWaysL3)
	}
	if len(fs.DeadLinksL2) != 1 || fs.DeadLinksL2[0] != 0 {
		t.Fatalf("DeadLinksL2 %v", fs.DeadLinksL2)
	}
	if len(fs.DegradedLinksL2) != 1 || fs.DegradedLinksL2[0] != 2 {
		t.Fatalf("DegradedLinksL2 %v", fs.DegradedLinksL2)
	}
	if len(fs.DeadLinksL3) != 0 || len(fs.DegradedLinksL3) != 0 {
		t.Fatalf("L3 links are healthy: %v / %v", fs.DeadLinksL3, fs.DegradedLinksL3)
	}
	if len(fs.CorruptMonitors) != 1 || fs.CorruptMonitors[0] != 3 {
		t.Fatalf("CorruptMonitors %v", fs.CorruptMonitors)
	}
	if fs.MemDerate != 1.5 {
		t.Fatalf("MemDerate %v", fs.MemDerate)
	}
	// The telemetry snapshot carries the same state.
	if snap := s.TelemetrySnapshot(); snap.Faults == nil || snap.Faults.MemDerate != 1.5 {
		t.Fatalf("Snapshot.Faults = %+v", s.TelemetrySnapshot().Faults)
	}
	// Corruption healing drops the core from subsequent snapshots.
	for i := 0; i < 4; i++ {
		s.AgeFaults()
	}
	if fs := s.FaultState(); len(fs.CorruptMonitors) != 0 {
		t.Fatalf("healed monitor still reported: %v", fs.CorruptMonitors)
	}
}
