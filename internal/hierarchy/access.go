package hierarchy

import (
	"math/bits"

	"morphcache/internal/cache"
	"morphcache/internal/mem"
)

// AccessResult reports where an access was served and what it cost.
type AccessResult struct {
	// Latency is the total CPU cycles for the access, including the L1
	// lookup and any bus/memory time.
	Latency int
	// Served names the satisfying level: 0=L1, 1=L2, 2=L3, 3=C2C, 4=memory.
	Served ServedBy
	// Remote reports whether the serving slice was a non-local member of a
	// merged group.
	Remote bool
}

// ServedBy identifies the component that satisfied an access.
type ServedBy uint8

// Access service points.
const (
	ByL1 ServedBy = iota
	ByL2
	ByL3
	ByC2C
	ByMemory
)

func (s ServedBy) String() string {
	switch s {
	case ByL1:
		return "L1"
	case ByL2:
		return "L2"
	case ByL3:
		return "L3"
	case ByC2C:
		return "c2c"
	case ByMemory:
		return "memory"
	default:
		return "?"
	}
}

// Access simulates one memory reference by the core at CPU cycle `now`
// (used only by the optional contention model) and returns its cost.
func (s *System) Access(core int, a mem.Access, now uint64) AccessResult {
	res := s.access(core, a, now)
	cs := &s.perCore[core]
	cs.Accesses++
	cs.LatencySum += uint64(res.Latency)
	switch res.Served {
	case ByL1:
		cs.L1Hits++
	case ByL2:
		cs.L2Hits++
	case ByL3:
		cs.L3Hits++
	case ByC2C:
		cs.C2C++
	case ByMemory:
		cs.MemReads++
	}
	if s.obs != nil {
		s.obs.ObserveAccess(int(res.Served), res.Latency)
	}
	return res
}

func (s *System) access(core int, a mem.Access, now uint64) AccessResult {
	s.stats.Accesses++
	gl := a.Global()
	write := a.Kind == mem.Write
	lat := s.p.L1HitCycles

	// L1.
	if s.l1[core].Access(a.ASID, a.Line, write) >= 0 {
		s.stats.L1Hits++
		if write {
			s.writeInvalidateOthers(core, gl)
		}
		return AccessResult{Latency: lat, Served: ByL1}
	}

	// L2 group: the lookup occupies the interconnect whether it hits or
	// not. On the bus, the whole group's channel; on a crossbar, the port
	// of the slice that serves (or would have served) the request.
	l2Slice, l2Way := s.findInGroup(L2, core, gl)
	servedAt := l2Slice
	if servedAt < 0 {
		servedAt = core
	}
	lat += s.interconnectWait(L2, core, servedAt, now+uint64(lat), s.p.L2ChannelCycles)
	if slice, way := l2Slice, l2Way; slice >= 0 {
		remote := slice != core
		if remote && s.p.ChargeRemote {
			lat += s.p.L2LocalCycles + s.remoteOvL2[slice]
			if s.flt.any {
				lat += s.linkExtra(L2, core, slice)
			}
			if s.p.ModelContention {
				_, ov := s.busL2.Transact(slice, now)
				if extra := int(ov) - s.p.BusTiming.OverheadCPUCycles(); extra > 0 {
					lat += extra
				}
			}
			s.stats.L2Remote++
		} else {
			lat += s.p.L2LocalCycles
			if remote {
				s.stats.L2Remote++
			} else {
				s.stats.L2Local++
			}
		}
		set := s.l2[slice].SetIndex(a.Line)
		s.l2[slice].Touch(set, way)
		s.l2[slice].Stats().Hits++
		if write {
			s.l2[slice].SetDirty(set, way)
		}
		s.markDemand(L2, core, slice, a.Line)
		if remote && s.p.ChargeRemote {
			s.migrate(L2, core, slice, a)
		}
		s.fillL1(core, a, write)
		if write {
			s.writeInvalidateOthers(core, gl)
		}
		return AccessResult{Latency: lat, Served: ByL2, Remote: remote}
	}
	s.stats.L2Misses++
	s.perCoreMisses[core]++

	// L3 group.
	l3Slice, l3Way := s.findInGroup(L3, core, gl)
	servedAt = l3Slice
	if servedAt < 0 {
		servedAt = core
	}
	lat += s.interconnectWait(L3, core, servedAt, now+uint64(lat), s.p.L3ChannelCycles)
	if slice, way := l3Slice, l3Way; slice >= 0 {
		remote := slice != core
		if remote && s.p.ChargeRemote {
			lat += s.p.L3LocalCycles + s.remoteOvL3[slice]
			if s.flt.any {
				lat += s.linkExtra(L3, core, slice)
			}
			if s.p.ModelContention {
				_, ov := s.busL3.Transact(slice, now)
				if extra := int(ov) - s.p.BusTiming.OverheadCPUCycles(); extra > 0 {
					lat += extra
				}
			}
			s.stats.L3Remote++
		} else {
			lat += s.p.L3LocalCycles
			if remote {
				s.stats.L3Remote++
			} else {
				s.stats.L3Local++
			}
		}
		set := s.l3[slice].SetIndex(a.Line)
		s.l3[slice].Touch(set, way)
		s.l3[slice].Stats().Hits++
		s.markDemand(L3, core, slice, a.Line)
		if remote && s.p.ChargeRemote {
			s.migrate(L3, core, slice, a)
		}
		s.fillL2(core, a, write)
		s.fillL1(core, a, write)
		if write {
			s.writeInvalidateOthers(core, gl)
		}
		return AccessResult{Latency: lat, Served: ByL3, Remote: remote}
	}
	s.stats.L3Misses++

	// Off-group: cache-to-cache transfer if any other L3 group holds the
	// line, otherwise main memory.
	served := ByMemory
	if s.presL3.Get(gl)&^s.groupSliceMask(L3, core) != 0 {
		lat += s.p.C2CCycles
		s.stats.C2C++
		served = ByC2C
	} else {
		lat += s.memWait(now + uint64(lat))
		lat += s.p.MemCycles
		s.stats.MemReads++
	}
	s.fillL3(core, a)
	s.fillL2(core, a, write)
	s.fillL1(core, a, write)
	if write {
		s.writeInvalidateOthers(core, gl)
	}
	return AccessResult{Latency: lat, Served: served}
}

// findInGroup looks the line up in every member slice of the core's group
// at the level, resolving duplicates by lazy invalidation (§2.2): the copy
// nearest the requester is retained, all others are invalidated on this
// access. Returns (-1, -1) on a group miss.
func (s *System) findInGroup(l Level, core int, gl mem.GlobalLine) (slice, way int) {
	mask := s.pres(l).Get(gl) & s.groupSliceMask(l, core)
	if mask == 0 {
		return -1, -1
	}
	keep := -1
	if mask&(1<<uint(core)) != 0 {
		keep = core
	} else {
		keep = bits.TrailingZeros32(mask)
	}
	// Lazy invalidation of the other copies within the group.
	for m := mask &^ (1 << uint(keep)); m != 0; m &= m - 1 {
		dup := bits.TrailingZeros32(m)
		s.invalidateAt(l, dup, gl, false)
		s.stats.LazyInv++
	}
	w := s.sliceAt(l, keep).Lookup(gl.ASID, gl.Line)
	if w < 0 {
		// The present mask claimed a copy that is not there: bookkeeping bug.
		panic("hierarchy: present mask inconsistent with slice contents")
	}
	return keep, w
}

func (s *System) sliceAt(l Level, i int) *cache.Slice {
	if l == L2 {
		return s.l2[i]
	}
	return s.l3[i]
}

// fillL1 installs the line in the requester's L1, crediting the eviction's
// dirtiness to the L2 copy (which inclusion guarantees exists).
func (s *System) fillL1(core int, a mem.Access, write bool) {
	old := s.l1[core].Insert(a.ASID, a.Line, write)
	if old.Valid && old.Dirty {
		ogl := mem.GlobalLine{ASID: old.ASID, Line: old.Line}
		if mask := s.presL2.Get(ogl) & s.groupSliceMask(L2, core); mask != 0 {
			sl := bits.TrailingZeros32(mask)
			if w := s.l2[sl].Lookup(old.ASID, old.Line); w >= 0 {
				s.l2[sl].SetDirty(s.l2[sl].SetIndex(old.Line), w)
			}
		}
	}
}

// fillL2 installs the line in the requester's L2 group. Unlike L3, the L2
// fill does not mark demand: L2 demand counts realized L2-tempo reuse (two
// hits), not traffic passing through on its way to the L1.
func (s *System) fillL2(core int, a mem.Access, dirty bool) {
	s.fillGroup(L2, core, a.ASID, a.Line, dirty)
}

// fillL3 installs the line in the requester's L3 group.
func (s *System) fillL3(core int, a mem.Access) {
	slice := s.fillGroup(L3, core, a.ASID, a.Line, false)
	s.markDemand(L3, core, slice, a.Line)
}

// fillGroup places a new line in the requester's group with
// locality-preserving spill semantics: the line always lands in the
// requester's *local* slice (so a thread's hot data keeps the local hit
// latency — the slices are "closely located" to their cores, §2), and the
// displaced local victim spills to the group's least-recently-used slot in
// another member slice if it is younger than that slot's occupant.
// Group-wide, the evicted line is (approximately) the union-LRU victim, so
// a merged group still behaves as one cache of summed associativity
// (footnote 1); the spill only decides *where* the surviving lines sit.
// Spill transfers ride the memory-side segmented bus in the background and
// are not charged to the access latency. Returns the slice the new line
// landed in.
func (s *System) fillGroup(l Level, core int, asid mem.ASID, line mem.Line, dirty bool) int {
	local := s.sliceAt(l, core)
	set := local.SetIndex(line)
	gl := mem.GlobalLine{ASID: asid, Line: line}

	if w := local.FreeWay(line); w >= 0 {
		local.InsertAt(set, w, asid, line, dirty)
		s.addPresent(l, core, gl)
		return core
	}
	victim := local.InsertAt(set, local.VictimWay(line), asid, line, dirty)
	// Remove the victim's key before adding the new line's: the index is
	// sized to the level's physical line capacity, and this ordering keeps
	// its key count within that bound at every step. The keys are always
	// distinct (fillGroup runs only on a group miss), so the swap is
	// invisible.
	vgl := mem.GlobalLine{ASID: victim.ASID, Line: victim.Line}
	s.removePresent(l, core, vgl)
	s.addPresent(l, core, gl)

	// Merges leave duplicates in place until lazy invalidation resolves
	// them; if another copy of the victim survives within the group there
	// is nothing to spill (and spilling would double-insert the line into
	// one slice). Dirtiness propagates to the surviving copy.
	if mask := s.pres(l).Get(vgl) & s.groupSliceMask(l, core); mask != 0 {
		if victim.Dirty {
			dup := bits.TrailingZeros32(mask)
			dsl := s.sliceAt(l, dup)
			if w := dsl.Lookup(vgl.ASID, vgl.Line); w >= 0 {
				dsl.SetDirty(dsl.SetIndex(vgl.Line), w)
			}
		}
		return core
	}

	// Spill the displaced local victim into the group if another member has
	// a free or older slot.
	g := s.grouping(l)
	members := g.Members(g.GroupOf(core))
	target, targetAge, targetFree := -1, victim.LastUse, false
	for _, m := range members {
		if m == core {
			continue
		}
		sl := s.sliceAt(l, m)
		if w := sl.FreeWay(victim.Line); w >= 0 {
			target, targetFree = m, true
			break
		}
		if age, valid := sl.VictimAge(victim.Line); valid && age < targetAge {
			target, targetAge = m, age
		}
	}
	if target < 0 {
		// The victim is the group's oldest (or the group is just this
		// slice): it leaves the level.
		s.dropEvicted(l, core, victim)
		return core
	}
	tsl := s.sliceAt(l, target)
	old := tsl.InsertAt(tsl.SetIndex(victim.Line), tsl.VictimWay(victim.Line), victim.ASID, victim.Line, victim.Dirty)
	// As above: retire the displaced occupant's key before registering the
	// spilled victim's, keeping the index within its capacity bound. The
	// eviction handlers never consult the victim's own presence, so the
	// order of the two is unobservable.
	if old.Valid && !targetFree {
		s.dropEvicted(l, target, old)
	}
	s.addPresent(l, target, vgl)
	return core
}

// migrate promotes a line that just hit in a remote member slice into the
// requester's local slice (the displaced local victim takes the spill
// path). Repeatedly used remote data — spilled overflow coming back into
// its owner's phase, or shared lines ping-ponged between sharers — thereby
// regains the local hit latency after one remote hit, the standard
// promotion/migration discipline of reconfigurable NUCA caches. The move
// itself rides the segmented bus in the background (the requester already
// paid the bus transaction for this hit).
func (s *System) migrate(l Level, core, from int, a mem.Access) {
	if from == core {
		return
	}
	e := s.sliceAt(l, from).Invalidate(a.ASID, a.Line)
	if !e.Valid {
		return
	}
	s.removePresent(l, from, a.Global())
	s.fillGroup(l, core, a.ASID, a.Line, e.Dirty)
	s.stats.Migrations++
}

// dropEvicted routes an eviction to the level's handler.
func (s *System) dropEvicted(l Level, slice int, e cache.Entry) {
	if l == L2 {
		s.onL2Evict(slice, e)
	} else {
		s.onL3Evict(slice, e)
	}
}

// onL2Evict handles an L2 eviction: present-mask and ACFV bookkeeping,
// back-invalidation of L1 copies beneath the slice, and dirty writeback to
// the L3 copy under the slice's L3 group.
func (s *System) onL2Evict(slice int, e cache.Entry) {
	gl := mem.GlobalLine{ASID: e.ASID, Line: e.Line}
	s.removePresent(L2, slice, gl)
	s.backInvalidateL1(slice, gl)
	if e.Dirty {
		if mask := s.presL3.Get(gl) & s.groupSliceMask(L3, slice); mask != 0 {
			sl := bits.TrailingZeros32(mask)
			if w := s.l3[sl].Lookup(e.ASID, e.Line); w >= 0 {
				s.l3[sl].SetDirty(s.l3[sl].SetIndex(e.Line), w)
			}
		}
	}
}

// onL3Evict handles an L3 eviction: inclusion back-invalidation of the L2
// (and transitively L1) copies beneath this L3 group, plus writeback.
func (s *System) onL3Evict(slice int, e cache.Entry) {
	gl := mem.GlobalLine{ASID: e.ASID, Line: e.Line}
	s.removePresent(L3, slice, gl)
	under := s.presL2.Get(gl) & s.slicesUnderL3Group(slice)
	for m := under; m != 0; m &= m - 1 {
		l2s := bits.TrailingZeros32(m)
		s.stats.BackInv++
		s.invalidateAt(L2, l2s, gl, true)
	}
	if e.Dirty {
		s.stats.Writeback++
	}
}

// slicesUnderL3Group returns the bitmask of L2 slices whose L3 group is the
// group of the given L3 slice. Because topology validity keeps each L2
// group inside one L3 group and slices are per-core at both levels, these
// are exactly the member slices of the L3 group.
func (s *System) slicesUnderL3Group(slice int) uint32 {
	return s.groupSliceMask(L3, slice)
}

// invalidateAt removes the line from one slice at the level, with all
// bookkeeping. If cascade is true, an L2 invalidation also back-invalidates
// the L1s beneath it. Dirty data is propagated: a dirty L2 copy marks the
// L3 copy dirty; a dirty L3 copy counts as a memory writeback.
func (s *System) invalidateAt(l Level, slice int, gl mem.GlobalLine, cascade bool) {
	e := s.sliceAt(l, slice).Invalidate(gl.ASID, gl.Line)
	if !e.Valid {
		return
	}
	s.removePresent(l, slice, gl)
	if l == L2 {
		if cascade {
			s.backInvalidateL1(slice, gl)
		}
		if e.Dirty {
			if mask := s.presL3.Get(gl) & s.groupSliceMask(L3, slice); mask != 0 {
				sl := bits.TrailingZeros32(mask)
				if w := s.l3[sl].Lookup(gl.ASID, gl.Line); w >= 0 {
					s.l3[sl].SetDirty(s.l3[sl].SetIndex(gl.Line), w)
				}
			}
		}
	} else if e.Dirty {
		s.stats.Writeback++
	}
}

// backInvalidateL1 removes the line from the L1s of every core whose L2
// group contains the slice (only those cores can have filled their L1 from
// it under inclusion).
func (s *System) backInvalidateL1(slice int, gl mem.GlobalLine) {
	g := s.topo.L2
	for _, c := range g.Members(g.GroupOf(slice)) {
		s.l1[c].Invalidate(gl.ASID, gl.Line)
	}
}

// writeInvalidateOthers applies the write-invalidation coherence action: a
// write by core c removes copies of the line from all other cores' L1s and
// from L2/L3 slices outside c's groups. Split groups replicating shared
// data therefore keep paying this cost; merged groups hold one copy (§2.1).
func (s *System) writeInvalidateOthers(core int, gl mem.GlobalLine) {
	for c := range s.l1 {
		if c != core {
			if e := s.l1[c].Invalidate(gl.ASID, gl.Line); e.Valid {
				s.stats.CoherenceInv++
			}
		}
	}
	for m := s.presL2.Get(gl) &^ s.groupSliceMask(L2, core); m != 0; m &= m - 1 {
		sl := bits.TrailingZeros32(m)
		s.stats.CoherenceInv++
		s.invalidateAt(L2, sl, gl, true)
	}
	for m := s.presL3.Get(gl) &^ s.groupSliceMask(L3, core); m != 0; m &= m - 1 {
		sl := bits.TrailingZeros32(m)
		s.stats.CoherenceInv++
		s.invalidateAt(L3, sl, gl, false)
	}
}

func (s *System) addPresent(l Level, slice int, gl mem.GlobalLine) {
	s.pres(l).Or(gl, 1<<uint(slice))
}

func (s *System) removePresent(l Level, slice int, gl mem.GlobalLine) {
	s.pres(l).Clear(gl, 1<<uint(slice))
}

// interconnectWait charges one transaction on the level's interconnect,
// returning the queueing delay suffered (see the *ChannelCycles
// parameters). Bus mode serializes per slice group; crossbar mode
// serializes per serving slice port.
func (s *System) interconnectWait(l Level, core, serveSlice int, now uint64, service float64) int {
	if service == 0 {
		return 0
	}
	var busy []float64
	var idx int
	if s.p.Interconnect == Crossbar {
		if l == L2 {
			busy = s.portBusyL2
		} else {
			busy = s.portBusyL3
		}
		idx = serveSlice
	} else {
		g := s.grouping(l)
		idx = g.GroupOf(core)
		if l == L2 {
			busy = s.chanBusyL2
		} else {
			busy = s.chanBusyL3
		}
	}
	start := float64(now)
	if busy[idx] > start {
		start = busy[idx]
	}
	busy[idx] = start + service
	wait := int(start - float64(now))
	if l == L2 {
		s.stats.L2BusTransactions++
		s.stats.L2BusWaitCycles += uint64(wait)
	} else {
		s.stats.L3BusTransactions++
		s.stats.L3BusWaitCycles += uint64(wait)
	}
	return wait
}

// memWait charges one transaction on the shared memory channel (whose
// service time a MemDerate fault can stretch).
func (s *System) memWait(now uint64) int {
	wait, charged := s.memChan.Wait(now)
	if !charged {
		return 0
	}
	s.stats.MemTransactions++
	s.stats.MemWaitCycles += uint64(wait)
	return wait
}
