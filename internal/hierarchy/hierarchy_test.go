package hierarchy

import (
	"testing"

	"morphcache/internal/mem"
	"morphcache/internal/rng"
	"morphcache/internal/topology"
)

// quiet returns a small 4-core hierarchy with bandwidth modeling off, so
// latency assertions are exact.
func quiet(t *testing.T, topo topology.Topology, chargeRemote bool) *System {
	t.Helper()
	p := ScaledDefault(4, 16)
	p.ChargeRemote = chargeRemote
	p.L2ChannelCycles, p.L3ChannelCycles, p.MemChannelCycles = 0, 0, 0
	s, err := New(p, topo)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		s.SetCoreASID(c, mem.ASID(c+1))
	}
	return s
}

func rd(line mem.Line, asid mem.ASID) mem.Access { return mem.Access{Line: line, ASID: asid} }
func wr(line mem.Line, asid mem.ASID) mem.Access {
	return mem.Access{Line: line, ASID: asid, Kind: mem.Write}
}

func TestLatencyLadderPrivate(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	p := s.Params()

	// Cold miss: L1 + memory.
	r := s.Access(0, rd(100, 1), 0)
	if r.Served != ByMemory || r.Latency != p.L1HitCycles+p.MemCycles {
		t.Fatalf("cold miss: %+v", r)
	}
	// Immediate re-access: L1 hit.
	r = s.Access(0, rd(100, 1), 0)
	if r.Served != ByL1 || r.Latency != p.L1HitCycles {
		t.Fatalf("L1 hit: %+v", r)
	}
	// Evict from L1 by filling its set, then re-access: L2 local hit.
	l1 := s.L1Cache(0)
	set := l1.SetIndex(100)
	for i := 1; i <= l1.Ways(); i++ {
		line := mem.Line(100 + i*l1.Sets())
		s.Access(0, rd(line, 1), 0)
		if l1.SetIndex(line) != set {
			t.Fatalf("test line %d not in set %d", line, set)
		}
	}
	r = s.Access(0, rd(100, 1), 0)
	if r.Served != ByL2 || r.Latency != p.L1HitCycles+p.L2LocalCycles {
		t.Fatalf("L2 local hit: %+v (want %d)", r, p.L1HitCycles+p.L2LocalCycles)
	}
}

func TestMergedRemoteHitLatency(t *testing.T) {
	topo := topology.Topology{L2: topology.Shared(4), L3: topology.Shared(4)}
	s := quiet(t, topo, true)
	p := s.Params()

	// Core 1 brings a line in (lands in its local slice 1); core 0 then
	// hits it remotely: local latency + bus overhead. Same address space.
	s.SetCoreASID(0, 7)
	s.SetCoreASID(1, 7)
	s.Access(1, rd(500, 7), 0)
	r := s.Access(0, rd(500, 7), 0)
	if r.Served != ByL2 || !r.Remote {
		t.Fatalf("expected remote L2 hit, got %+v", r)
	}
	if want := p.L1HitCycles + p.L2MergedCycles; r.Latency != want {
		t.Fatalf("remote L2 hit latency %d, want %d", r.Latency, want)
	}
	// Static topologies charge the local latency instead.
	st := quiet(t, topo, false)
	st.SetCoreASID(0, 7)
	st.SetCoreASID(1, 7)
	st.Access(1, rd(500, 7), 0)
	r = st.Access(0, rd(500, 7), 0)
	if r.Latency != p.L1HitCycles+p.L2LocalCycles {
		t.Fatalf("static remote hit latency %d, want local %d", r.Latency, p.L1HitCycles+p.L2LocalCycles)
	}
}

func TestCapacityPooling(t *testing.T) {
	// One core with a working set of 1.5 slices thrashes alone but fits in
	// a merged pair: the memory-access share must collapse.
	run := func(merged bool) float64 {
		topo := topology.AllPrivate(2)
		if merged {
			topo = topology.AllShared(2)
		}
		p := ScaledDefault(2, 16)
		p.ChargeRemote = true
		s, err := New(p, topo)
		if err != nil {
			t.Fatal(err)
		}
		s.SetCoreASID(0, 1)
		s.SetCoreASID(1, 2)
		lines := p.L3SliceBytes / mem.LineSize * 3 / 2
		r := rng.New(4)
		for i := 0; i < 120000; i++ {
			s.Access(0, rd(mem.Line(r.Intn(lines)), 1), uint64(i*40))
			s.Access(1, rd(mem.Line(1<<20+r.Intn(32)), 2), uint64(i*40))
		}
		st := s.Stats()
		return float64(st.MemReads) / float64(st.Accesses)
	}
	private, merged := run(false), run(true)
	if merged > private/3 {
		t.Fatalf("merging should collapse memory traffic: private %.3f, merged %.3f", private, merged)
	}
}

func TestLazyInvalidation(t *testing.T) {
	// Two cores of one address space fill the same line privately, then the
	// slices merge: the first access must keep one copy and drop the rest.
	s := quiet(t, topology.AllPrivate(4), true)
	s.SetCoreASID(0, 9)
	s.SetCoreASID(1, 9)
	s.Access(0, rd(42, 9), 0)
	s.Access(1, rd(42, 9), 0)
	if s.presL2.Get(mem.GlobalLine{ASID: 9, Line: 42}) == 0 {
		t.Fatal("line not present")
	}
	topo := topology.Topology{L2: mustGroups(t, 4, [][]int{{0, 1}, {2}, {3}}),
		L3: mustGroups(t, 4, [][]int{{0, 1}, {2}, {3}})}
	if err := s.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().LazyInv
	// L1s still hold the line; invalidate them so the access reaches L2.
	s.L1Cache(0).Invalidate(9, 42)
	s.L1Cache(1).Invalidate(9, 42)
	s.Access(0, rd(42, 9), 0)
	if s.Stats().LazyInv != before+1 {
		t.Fatalf("lazy invalidation count %d, want %d", s.Stats().LazyInv, before+1)
	}
	mask := s.presL2.Get(mem.GlobalLine{ASID: 9, Line: 42})
	if mask != 1<<0 {
		t.Fatalf("exactly the local copy should remain, mask %#x", mask)
	}
	if err := s.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func mustGroups(t *testing.T, n int, groups [][]int) topology.Grouping {
	t.Helper()
	g, err := topology.FromGroups(n, groups)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWriteInvalidatesOtherGroups(t *testing.T) {
	// Threads of one address space in different (private) groups replicate
	// a line; a write by one must kill the other copies.
	s := quiet(t, topology.AllPrivate(4), true)
	s.SetCoreASID(0, 5)
	s.SetCoreASID(1, 5)
	s.Access(0, rd(77, 5), 0)
	s.Access(1, rd(77, 5), 0)
	gl := mem.GlobalLine{ASID: 5, Line: 77}
	if s.presL3.Get(gl)&(1<<1) == 0 {
		t.Fatal("replica missing before write")
	}
	s.Access(0, wr(77, 5), 0)
	if s.presL3.Get(gl)&(1<<1) != 0 || s.presL2.Get(gl)&(1<<1) != 0 {
		t.Fatal("write did not invalidate the other group's copies")
	}
	if s.L1Cache(1).Lookup(5, 77) >= 0 {
		t.Fatal("write did not invalidate the other core's L1")
	}
	if s.Stats().CoherenceInv == 0 {
		t.Fatal("coherence invalidations not counted")
	}
}

func TestC2CTransfer(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	p := s.Params()
	s.SetCoreASID(0, 5)
	s.SetCoreASID(1, 5)
	s.Access(1, rd(900, 5), 0)
	r := s.Access(0, rd(900, 5), 0)
	if r.Served != ByC2C {
		t.Fatalf("expected cache-to-cache service, got %v", r.Served)
	}
	if want := p.L1HitCycles + p.C2CCycles; r.Latency != want {
		t.Fatalf("C2C latency %d, want %d", r.Latency, want)
	}
	if s.Stats().C2C != 1 {
		t.Fatal("C2C not counted")
	}
}

func TestMigrationPromotesRemoteHits(t *testing.T) {
	topo := topology.Topology{L2: topology.Shared(4), L3: topology.Shared(4)}
	s := quiet(t, topo, true)
	s.SetCoreASID(0, 7)
	s.SetCoreASID(1, 7)
	s.Access(1, rd(321, 7), 0)
	r := s.Access(0, rd(321, 7), 0) // remote hit, line migrates to slice 0
	if !r.Remote {
		t.Fatal("first group hit should be remote")
	}
	if s.Stats().Migrations == 0 {
		t.Fatal("migration not performed")
	}
	s.L1Cache(0).Invalidate(7, 321) // force the next access to L2
	r = s.Access(0, rd(321, 7), 0)
	if r.Remote {
		t.Fatal("line should now be local to core 0")
	}
	if err := s.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigEnforcesInclusion(t *testing.T) {
	// Fill under a merged topology so lines spill across slices, then
	// split: stranded lines must be conservatively invalidated and the
	// inclusion invariant restored.
	topo := topology.Topology{L2: topology.Shared(4), L3: topology.Shared(4)}
	s := quiet(t, topo, true)
	r := rng.New(8)
	for i := 0; i < 60000; i++ {
		c := r.Intn(4)
		s.Access(c, rd(mem.Line(uint64(c)<<24|uint64(r.Intn(4000))), mem.ASID(c+1)), uint64(i*20))
	}
	if err := s.CheckInclusion(); err != nil {
		t.Fatalf("pre-split: %v", err)
	}
	if err := s.SetTopology(topology.AllPrivate(4)); err != nil {
		t.Fatal(err)
	}
	if s.Stats().InclusionInv == 0 {
		t.Fatal("splitting a loaded group should strand (and invalidate) some lines")
	}
	if err := s.CheckInclusion(); err != nil {
		t.Fatalf("post-split: %v", err)
	}
}

func TestInclusionInvariantUnderRandomOps(t *testing.T) {
	// Property: arbitrary interleavings of accesses and legal reconfigs
	// preserve inclusion and present-mask consistency.
	p := ScaledDefault(4, 16)
	p.ChargeRemote = true
	s, err := New(p, topology.AllPrivate(4))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		s.SetCoreASID(c, mem.ASID(c%2+1)) // two address spaces
	}
	r := rng.New(77)
	topos := []topology.Topology{
		topology.AllPrivate(4),
		{L2: mustGroups(t, 4, [][]int{{0, 1}, {2}, {3}}), L3: mustGroups(t, 4, [][]int{{0, 1}, {2, 3}})},
		{L2: topology.Private(4), L3: topology.Shared(4)},
		topology.AllShared(4),
	}
	var now uint64
	for step := 0; step < 40; step++ {
		topo := topos[r.Intn(len(topos))]
		if err := s.SetTopology(topo); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			c := r.Intn(4)
			a := mem.Access{
				Line: mem.Line(uint64(c%2)<<22 | uint64(r.Intn(3000))),
				ASID: s.CoreASID(c),
			}
			if r.Intn(5) == 0 {
				a.Kind = mem.Write
			}
			s.Access(c, a, now)
			now += 30
		}
		if err := s.CheckInclusion(); err != nil {
			t.Fatalf("step %d (%v): %v", step, topo.Spec(), err)
		}
	}
}

func TestDemandMeasurement(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	lines := 200
	// Touch a planted set twice (L3 demand counts two L2-missing touches).
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			s.L1Cache(0).Invalidate(1, mem.Line(i))
			// Also force L2 misses on the second pass by invalidating; the
			// simpler route: just access — first pass misses everywhere,
			// second pass hits L2, marking L2 demand instead.
			s.Access(0, rd(mem.Line(i), 1), 0)
		}
	}
	u3 := s.CoresUtilization(L3, []int{0})
	want := float64(lines) / float64(s.sliceLines(L3))
	// First pass marks L3 (fills); second pass hits L2, so L3 sees one
	// touch per line: demand needs two. Do a third pass with L2 evicted to
	// produce the second L3 touch.
	_ = u3
	_ = want
	// Simpler, direct check of the plumbing:
	s.ResetFootprints()
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			s.markDemand(L3, 0, 0, mem.Line(i))
		}
	}
	got := s.CoresUtilization(L3, []int{0})
	if got != float64(lines)/float64(s.sliceLines(L3)) {
		t.Fatalf("planted demand %v, want %v", got, float64(lines)/float64(s.sliceLines(L3)))
	}
	// Once-touched lines are excluded.
	s.ResetFootprints()
	for i := 0; i < lines; i++ {
		s.markDemand(L3, 0, 0, mem.Line(i))
	}
	if u := s.CoresUtilization(L3, []int{0}); u != 0 {
		t.Fatalf("single-touch lines counted: %v", u)
	}
}

func TestOverlapSignal(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	// Cores 0 and 1 share 50 of 100 reused lines.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 100; i++ {
			s.markDemand(L3, 0, 0, mem.Line(i))
			s.markDemand(L3, 1, 1, mem.Line(i+50))
		}
	}
	ov := s.CoresOverlap(L3, []int{0}, []int{1})
	if ov < 0.49 || ov > 0.51 {
		t.Fatalf("overlap %v, want 0.5", ov)
	}
}

func TestSlicesShareASID(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	s.SetCoreASID(0, 1)
	s.SetCoreASID(1, 1)
	s.SetCoreASID(2, 2)
	if !s.SlicesShareASID([]int{0}, []int{1}) {
		t.Fatal("cores 0,1 share an address space")
	}
	if s.SlicesShareASID([]int{0}, []int{2}) {
		t.Fatal("cores 0,2 do not share an address space")
	}
}

func TestChannelContention(t *testing.T) {
	// With channel modeling on, a 4-shared group must accumulate queueing
	// that a private configuration does not.
	run := func(topo topology.Topology) uint64 {
		p := ScaledDefault(4, 16)
		p.ChargeRemote = false
		s, err := New(p, topo)
		if err != nil {
			t.Fatal(err)
		}
		var total uint64
		r := rng.New(6)
		for i := 0; i < 20000; i++ {
			for c := 0; c < 4; c++ {
				// Same instant for every core: maximal collision pressure.
				a := rd(mem.Line(uint64(c)<<20|uint64(r.Intn(2000))), mem.ASID(c+1))
				res := s.Access(c, a, uint64(i)*10)
				total += uint64(res.Latency)
			}
		}
		return total
	}
	private := run(topology.AllPrivate(4))
	shared := run(topology.Topology{L2: topology.Shared(4), L3: topology.Shared(4)})
	if shared <= private {
		t.Fatalf("shared group should pay channel contention: %d <= %d", shared, private)
	}
}

func TestNonNeighborOverheadScales(t *testing.T) {
	p := ScaledDefault(4, 16)
	p.ChargeRemote = true
	topo := topology.Topology{
		L2: mustGroups(t, 4, [][]int{{0, 3}, {1}, {2}}),
		L3: mustGroups(t, 4, [][]int{{0, 3}, {1}, {2}}),
	}
	// {0,3} is valid (both in one L3 group) but spans 4 slices with size 2.
	s, err := New(p, topo)
	if err != nil {
		t.Fatal(err)
	}
	base := p.BusTiming.OverheadCPUCycles()
	if ov := s.remoteOvL2[0]; ov != base*4/2 {
		t.Fatalf("span-4 size-2 group overhead %d, want %d (§5.5 span scaling)", ov, base*4/2)
	}
	if ov := s.remoteOvL2[1]; ov != base {
		t.Fatalf("singleton overhead %d, want %d", ov, base)
	}
}

func TestValidateParams(t *testing.T) {
	p := Default(16)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.Cores = 12
	if bad.Validate() == nil {
		t.Fatal("non-power-of-two cores should fail")
	}
	bad = p
	bad.MemCycles = 10
	if bad.Validate() == nil {
		t.Fatal("memory faster than L3 should fail")
	}
}

func TestScaledDefault(t *testing.T) {
	p := ScaledDefault(16, 16)
	if p.L2SliceBytes != (256<<10)/16 || p.L3SliceBytes != (1<<20)/16 {
		t.Fatalf("scaled sizes %d/%d", p.L2SliceBytes, p.L3SliceBytes)
	}
	// L1 scales by div/4 only.
	if p.L1SizeBytes != (32<<10)/4 {
		t.Fatalf("scaled L1 %d, want %d", p.L1SizeBytes, (32<<10)/4)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Stats {
		s := quiet(t, topology.AllShared(4), true)
		r := rng.New(123)
		for i := 0; i < 30000; i++ {
			c := r.Intn(4)
			s.Access(c, rd(mem.Line(r.Intn(5000)), mem.ASID(c+1)), uint64(i*17))
		}
		return *s.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay diverged:\n%+v\n%+v", a, b)
	}
}

func TestCoreStats(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	s.Access(0, rd(1, 1), 0) // memory
	s.Access(0, rd(1, 1), 0) // L1 hit
	cs := s.CoreStats(0)
	if cs.Accesses != 2 || cs.MemReads != 1 || cs.L1Hits != 1 {
		t.Fatalf("core stats %+v", cs)
	}
	if cs.AvgLatency() <= 0 {
		t.Fatal("average latency must be positive")
	}
	if s.CoreStats(1).Accesses != 0 {
		t.Fatal("idle core accumulated stats")
	}
	var zero CoreStats
	if zero.AvgLatency() != 0 {
		t.Fatal("zero-value AvgLatency")
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	if s.Cores() != 4 {
		t.Fatal("Cores")
	}
	if s.Topology().Spec() != "(1:1:4)" {
		t.Fatalf("Topology %v", s.Topology())
	}
	if L2.String() != "L2" || L3.String() != "L3" || Level(9).String() == "" {
		t.Fatal("Level strings")
	}
	for _, sb := range []ServedBy{ByL1, ByL2, ByL3, ByC2C, ByMemory, ServedBy(99)} {
		if sb.String() == "" {
			t.Fatal("ServedBy string")
		}
	}
	if s.SliceCache(L2, 0).Ways() != s.Params().L2Ways {
		t.Fatal("SliceCache L2")
	}
	if s.SliceCache(L3, 0).Ways() != s.Params().L3Ways {
		t.Fatal("SliceCache L3")
	}
	s.Access(0, rd(1, 1), 0)
	s.Access(0, rd(1<<20, 1), 0)
	if s.PerCoreMisses()[0] == 0 {
		t.Fatal("per-core misses not counted")
	}
	s.ResetEpochCounters()
	if s.PerCoreMisses()[0] != 0 {
		t.Fatal("ResetEpochCounters")
	}
}

func TestSliceLevelFootprintAccessors(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	// Plant demand at slice granularity.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 100; i++ {
			s.markDemand(L3, 0, 0, mem.Line(i))
			s.markDemand(L3, 1, 1, mem.Line(i+50))
		}
	}
	u := s.SliceUtilization(L3, 0)
	if u <= 0 {
		t.Fatal("slice utilization")
	}
	if g := s.GroupUtilization(L3, s.Topology().L3.GroupOf(0)); g != u {
		t.Fatalf("singleton group utilization %v != slice %v", g, u)
	}
	if su := s.SubsetUtilization(L3, []int{0, 1}); su <= 0 {
		t.Fatal("subset utilization")
	}
	ga := s.Topology().L3.GroupOf(0)
	gb := s.Topology().L3.GroupOf(1)
	ov := s.GroupOverlap(L3, ga, gb)
	if ov < 0.49 || ov > 0.51 {
		t.Fatalf("group overlap %v, want ~0.5", ov)
	}
	if e := s.SubsetOverlap(L3, []int{2}, []int{3}); e != 0 {
		t.Fatalf("empty slices should not overlap: %v", e)
	}
	// L2 accessors use the L2 threshold.
	for pass := 0; pass < 3; pass++ {
		s.markDemand(L2, 0, 0, mem.Line(7))
	}
	if s.SliceUtilization(L2, 0) <= 0 {
		t.Fatal("L2 slice utilization")
	}
}

func TestCrossbarRelievesSharedContention(t *testing.T) {
	// The same all-shared workload under the two interconnects: the
	// crossbar's per-slice ports must strictly reduce total latency
	// relative to the one-channel segmented bus group (§3.1's bandwidth
	// comparison).
	run := func(kind InterconnectKind) uint64 {
		p := ScaledDefault(4, 16)
		p.ChargeRemote = false
		p.Interconnect = kind
		s, err := New(p, topology.AllShared(4))
		if err != nil {
			t.Fatal(err)
		}
		var total uint64
		r := rng.New(21)
		for i := 0; i < 20000; i++ {
			for c := 0; c < 4; c++ {
				a := rd(mem.Line(uint64(c)<<20|uint64(r.Intn(2000))), mem.ASID(c+1))
				res := s.Access(c, a, uint64(i)*10)
				total += uint64(res.Latency)
			}
		}
		return total
	}
	busLat, xbarLat := run(Bus), run(Crossbar)
	if xbarLat >= busLat {
		t.Fatalf("crossbar should relieve shared-group contention: bus %d, crossbar %d", busLat, xbarLat)
	}
	if Bus.String() == Crossbar.String() {
		t.Fatal("interconnect kind strings")
	}
}

func TestInterconnectKindString(t *testing.T) {
	if Bus.String() != "segmented-bus" || Crossbar.String() != "crossbar" {
		t.Fatal("interconnect kind strings")
	}
}

func TestSetTopologyRejectsInvalid(t *testing.T) {
	s := quiet(t, topology.AllPrivate(4), true)
	// L2 group spanning two L3 groups violates §2.2.
	bad := topology.Topology{
		L2: mustGroups(t, 4, [][]int{{0}, {1, 2}, {3}}),
		L3: mustGroups(t, 4, [][]int{{0, 1}, {2, 3}}),
	}
	if err := s.SetTopology(bad); err == nil {
		t.Fatal("invalid topology accepted")
	}
	// Wrong slice count.
	if err := s.SetTopology(topology.AllPrivate(8)); err == nil {
		t.Fatal("mismatched topology size accepted")
	}
}

func TestDirtyWritebackChain(t *testing.T) {
	// A dirty line must propagate its dirtiness down the hierarchy as it is
	// evicted level by level, ending in a memory writeback.
	s := quiet(t, topology.AllPrivate(4), true)
	s.Access(0, wr(5, 1), 0)
	// Evict through L1, L2 and L3 by flooding with conflicting lines.
	flood := 4 * s.Params().L3SliceBytes / mem.LineSize
	for i := 1; i <= flood; i++ {
		s.Access(0, rd(mem.Line(5+i*64), 1), 0)
	}
	if s.Stats().Writeback == 0 {
		t.Fatal("dirty line never reached memory")
	}
}
