package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// collect replays a directory into a flat record list with a fresh Open.
func collect(t *testing.T, dir string, opts Options) ([]Record, ReplayStats, *Log) {
	t.Helper()
	var got []Record
	l, stats, err := Open(dir, opts, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return got, stats, l
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, stats, err := Open(dir, Options{Fsync: FsyncNever}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 || stats.Truncated {
		t.Fatalf("fresh log stats = %+v", stats)
	}
	recs := []Record{
		{Kind: KindSet, Tenant: "alpha", Key: "user/1", Value: []byte("v1")},
		{Kind: KindSet, Tenant: "beta", Key: "k", Value: []byte{}},
		{Kind: KindDelete, Tenant: "alpha", Key: "user/1"},
		{Kind: KindEpoch, Epoch: 7, Value: []byte{4, 0, 0, 1, 1}},
		{Kind: KindSet, Tenant: "alpha", Key: "user/2", Value: bytes.Repeat([]byte("x"), 1000)},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append(%v): %v", r.Kind, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if stats.Truncated || stats.Records != int64(len(recs)) {
		t.Fatalf("replay stats = %+v, want %d clean records", stats, len(recs))
	}
	for i, r := range recs {
		g := got[i]
		// Empty and nil values replay as nil.
		if len(r.Value) == 0 {
			r.Value = nil
		}
		if g.Kind != r.Kind || g.Tenant != r.Tenant || g.Key != r.Key ||
			g.Epoch != r.Epoch || !bytes.Equal(g.Value, r.Value) {
			t.Fatalf("record %d = %+v, want %+v", i, g, r)
		}
	}
}

func TestAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindSet, Tenant: "a", Key: "k1", Value: []byte("1")}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l, _, err = Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindSet, Tenant: "a", Key: "k2", Value: []byte("2")}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, stats, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if stats.Records != 2 || got[0].Key != "k1" || got[1].Key != "k2" {
		t.Fatalf("after reopen-append replay = %+v (stats %+v)", got, stats)
	}
}

func TestSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a roll every couple of records.
	l, _, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := l.Append(Record{Kind: KindSet, Tenant: "t", Key: fmt.Sprintf("key/%02d", i), Value: []byte("0123456789")}); err != nil {
			t.Fatal(err)
		}
	}
	if sc := l.SegmentCount(); sc < 3 {
		t.Fatalf("SegmentCount() = %d, want several after rolling", sc)
	}
	l.Close()
	got, stats, l2 := collect(t, dir, Options{SegmentBytes: 128})
	defer l2.Close()
	if stats.Records != n || stats.Truncated {
		t.Fatalf("rolled replay stats = %+v, want %d records", stats, n)
	}
	for i, r := range got {
		if want := fmt.Sprintf("key/%02d", i); r.Key != want {
			t.Fatalf("record %d key = %q, want %q (order must survive rolling)", i, r.Key, want)
		}
	}
}

// TestTruncationEveryCut is the crash-recovery table test: a log cut at
// every possible byte offset must reopen without error, replay exactly
// the records fully durable before the cut, and truncate the rest.
func TestTruncationEveryCut(t *testing.T) {
	master := t.TempDir()
	l, _, err := Open(master, Options{Fsync: FsyncNever}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindSet, Tenant: "a", Key: "k1", Value: []byte("hello")},
		{Kind: KindDelete, Tenant: "a", Key: "k1"},
		{Kind: KindEpoch, Epoch: 3, Value: []byte{1, 2}},
		{Kind: KindSet, Tenant: "b", Key: "k2", Value: []byte("world")},
	}
	var ends []int64 // cumulative valid end offsets after each record
	off := int64(segHeaderLen)
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		b, _ := marshal(nil, r)
		off += int64(len(b))
		ends = append(ends, off)
	}
	l.Close()
	img, err := os.ReadFile(filepath.Join(master, "00000001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(img)) != off {
		t.Fatalf("image %d bytes, expected %d", len(img), off)
	}
	for cut := 0; cut <= len(img); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000001.wal"), img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var wantRecords int64
		for _, e := range ends {
			if int64(cut) >= e {
				wantRecords++
			}
		}
		got, stats, l := collect(t, dir, Options{})
		if stats.Records != wantRecords {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, stats.Records, wantRecords)
		}
		// A cut exactly on a record boundary (or the bare header) is
		// clean; anything else — including a torn segment header — is a
		// truncation the repair must report.
		clean := int64(cut) == segHeaderLen
		for _, e := range ends {
			if int64(cut) == e {
				clean = true
			}
		}
		wantTrunc := !clean
		if stats.Truncated != wantTrunc {
			t.Fatalf("cut %d: Truncated = %v, want %v (stats %+v)", cut, stats.Truncated, wantTrunc, stats)
		}
		// The log must accept appends after repair, and a second replay
		// must see old records + the new one with no truncation.
		if err := l.Append(Record{Kind: KindSet, Tenant: "z", Key: "post", Value: []byte("post")}); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		l.Close()
		got2, stats2, l2 := collect(t, dir, Options{})
		l2.Close()
		if stats2.Truncated || stats2.Records != wantRecords+1 {
			t.Fatalf("cut %d: second replay stats = %+v, want %d clean", cut, stats2, wantRecords+1)
		}
		if got2[len(got2)-1].Key != "post" {
			t.Fatalf("cut %d: appended record missing from replay", cut)
		}
		_ = got
	}
}

func TestCorruptMidLogIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := l.Append(Record{Kind: KindSet, Tenant: "t", Key: fmt.Sprintf("k%d", i), Value: []byte("0123456789abcdef")}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Flip a byte in the FIRST segment: damage with later segments present
	// is not a torn tail and must refuse to open.
	path := filepath.Join(dir, "00000001.wal")
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[segHeaderLen+3] ^= 0xFF
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{}, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-log damage = %v, want ErrCorrupt", err)
	}
}

func TestCRCCatchesBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncNever}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: KindSet, Tenant: "t", Key: "k", Value: []byte("payload")})
	l.Append(Record{Kind: KindSet, Tenant: "t", Key: "k2", Value: []byte("payload2")})
	l.Close()
	path := filepath.Join(dir, "00000001.wal")
	img, _ := os.ReadFile(path)
	// Flip one payload byte of the LAST record: CRC must catch it and the
	// repair must cut back to the first record.
	img[len(img)-6] ^= 0x01
	os.WriteFile(path, img, 0o644)
	got, stats, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if !stats.Truncated || stats.Records != 1 || got[0].Key != "k" {
		t.Fatalf("bit-flip replay = %d records (stats %+v), want 1 truncated", len(got), stats)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	live := map[string]string{}
	for i := 0; i < 30; i++ {
		k, v := fmt.Sprintf("key/%02d", i), fmt.Sprintf("val/%02d", i)
		if err := l.Append(Record{Kind: KindSet, Tenant: "t", Key: k, Value: []byte(v)}); err != nil {
			t.Fatal(err)
		}
		live[k] = v
	}
	// Deletes shrink the live set; compaction must not resurrect them.
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("key/%02d", i)
		if err := l.Append(Record{Kind: KindDelete, Tenant: "t", Key: k}); err != nil {
			t.Fatal(err)
		}
		delete(live, k)
	}
	before := l.SegmentCount()
	if before < 2 {
		t.Fatalf("want multiple segments before compaction, have %d", before)
	}
	state := []byte{0xAB, 0xCD}
	err = l.Compact(42, state, func(emit func(string, string, []byte) error) error {
		for k, v := range live {
			if err := emit("t", k, []byte(v)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if after := l.SegmentCount(); after != 1 {
		t.Fatalf("SegmentCount() after compaction = %d, want 1", after)
	}
	// Post-compaction appends land after the snapshot.
	if err := l.Append(Record{Kind: KindSet, Tenant: "t", Key: "post", Value: []byte("p")}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	got, stats, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if stats.Truncated {
		t.Fatalf("compacted replay truncated: %+v", stats)
	}
	if got[0].Kind != KindSnapshotBegin || got[0].Epoch != 42 || !bytes.Equal(got[0].Value, state) {
		t.Fatalf("first record = %+v, want snapshot-begin epoch 42", got[0])
	}
	rebuilt := map[string]string{}
	for _, r := range got {
		switch r.Kind {
		case KindSet:
			rebuilt[r.Key] = string(r.Value)
		case KindDelete:
			delete(rebuilt, r.Key)
		}
	}
	live["post"] = "p"
	want := map[string]string{}
	for k, v := range live {
		want[k] = v
	}
	if !reflect.DeepEqual(rebuilt, want) {
		t.Fatalf("state after compacted replay = %v, want %v", rebuilt, want)
	}
	sawEnd := false
	for _, r := range got {
		if r.Kind == KindSnapshotEnd {
			sawEnd = true
		}
	}
	if !sawEnd {
		t.Fatal("no snapshot-end marker in compacted replay")
	}
}

func TestInjectedFailure(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncNever}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Kind: KindSet, Tenant: "t", Key: "pre", Value: []byte("1")}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	l.InjectFailure(boom)
	if err := l.Append(Record{Kind: KindSet, Tenant: "t", Key: "k", Value: []byte("1")}); !errors.Is(err, boom) {
		t.Fatalf("Append under injection = %v, want injected error", err)
	}
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync under injection = %v", err)
	}
	if err := l.Compact(1, nil, nil); !errors.Is(err, boom) {
		t.Fatalf("Compact under injection = %v", err)
	}
	l.InjectFailure(nil)
	if err := l.Append(Record{Kind: KindSet, Tenant: "t", Key: "k", Value: []byte("1")}); err != nil {
		t.Fatalf("Append after clearing injection = %v", err)
	}
}

func TestAppendBounds(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncNever, MaxValueBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Kind: KindSet, Tenant: "t", Key: "k", Value: make([]byte, 65)}); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized value Append = %v", err)
	}
	long := make([]byte, 70000)
	if err := l.Append(Record{Kind: KindSet, Tenant: "t", Key: string(long), Value: nil}); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized key Append = %v", err)
	}
	if err := l.Append(Record{Kind: KindSet, Tenant: string(make([]byte, 300)), Key: "k"}); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized tenant Append = %v", err)
	}
}

func TestReplaySkip(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncNever}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: KindSet, Tenant: "gone", Key: "k", Value: []byte("1")})
	l.Append(Record{Kind: KindSet, Tenant: "kept", Key: "k", Value: []byte("2")})
	l.Close()
	var kept int
	_, stats, err := Open(dir, Options{}, func(r Record) error {
		if r.Tenant == "gone" {
			return SkipRecord
		}
		kept++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 || stats.Skipped != 1 || kept != 1 {
		t.Fatalf("skip replay stats = %+v (kept %d)", stats, kept)
	}
}

func TestFsyncIntervalSurfacesAndUseAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncInterval, Interval: time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindSet, Tenant: "t", Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the timer sync run at least once
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindSet, Tenant: "t", Key: "k"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v", err)
	}
	if err := l.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v", err)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() round-trip %q != %q", got.String(), s)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted junk")
	}
}

// segImage builds an in-memory segment from records, for reader tests.
func segImage(t testing.TB, recs ...Record) []byte {
	var buf bytes.Buffer
	var hdr [segHeaderLen]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:], segVersion)
	buf.Write(hdr[:])
	for _, r := range recs {
		b, err := marshal(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

func TestReadRecordsUnknownKind(t *testing.T) {
	img := segImage(t, Record{Kind: KindSet, Tenant: "t", Key: "k", Value: []byte("v")})
	bad, _ := marshal(nil, Record{Kind: KindDelete, Tenant: "t", Key: "k"})
	bad[0] = 99 // unknown kind; CRC now also mismatches, either way: invalid
	img = append(img, bad...)
	n, err := ReadRecords(bytes.NewReader(img), 1<<20, nil)
	if n != 1 || !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadRecords over unknown kind = %d, %v", n, err)
	}
}

func TestReadRecordsHugeLength(t *testing.T) {
	img := segImage(t)
	var hdr [headerLen]byte
	hdr[0] = byte(KindSet)
	binary.LittleEndian.PutUint32(hdr[4:], 0xFFFFFFF0) // absurd value length
	img = append(img, hdr[:]...)
	n, err := ReadRecords(bytes.NewReader(img), 1<<20, nil)
	if n != 0 || !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadRecords over huge length = %d, %v (must not allocate 4GiB)", n, err)
	}
}

// FuzzReplay feeds arbitrary bytes to the segment reader: it must never
// panic, and the valid-prefix contract must hold — re-serializing the
// records it reports and re-reading them must yield the same records.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MCWL"))
	f.Add(segImage(f,
		Record{Kind: KindSet, Tenant: "alpha", Key: "user/1", Value: []byte("hello")},
		Record{Kind: KindDelete, Tenant: "alpha", Key: "user/1"},
		Record{Kind: KindEpoch, Epoch: 9, Value: []byte{1, 0, 1, 0}},
		Record{Kind: KindSnapshotBegin, Epoch: 9, Value: []byte{1}},
		Record{Kind: KindSnapshotEnd},
	))
	// Torn tail.
	whole := segImage(f, Record{Kind: KindSet, Tenant: "t", Key: "key", Value: []byte("value")})
	f.Add(whole[:len(whole)-3])
	// Unknown kind.
	bad := append([]byte(nil), whole...)
	bad[segHeaderLen] = 0xEE
	f.Add(bad)
	// Corrupt CRC.
	flip := append([]byte(nil), whole...)
	flip[len(flip)-1] ^= 0x80
	f.Add(flip)
	// Wrong version.
	ver := append([]byte(nil), whole...)
	ver[4] = 0xFF
	f.Add(ver)

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		n, err := ReadRecords(bytes.NewReader(data), 1<<16, func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if int64(len(recs)) != n {
			t.Fatalf("reported %d records, callback saw %d", n, len(recs))
		}
		if err == nil {
			// Clean read: the image must round-trip.
			img := segImage(t, recs...)
			if !bytes.Equal(img, data) {
				t.Fatalf("clean read did not round-trip: %d vs %d bytes", len(img), len(data))
			}
		}
		for _, r := range recs {
			if r.Kind < KindSet || r.Kind > KindSnapshotEnd {
				t.Fatalf("reader emitted invalid kind %d", r.Kind)
			}
			if len(r.Value) > 1<<16 {
				t.Fatalf("reader emitted value over bound: %d", len(r.Value))
			}
		}
	})
}
