// Package wal is a segmented append-only write-ahead log for the
// serve-mode cache (DESIGN.md §14).
//
// The log is a directory of numbered segment files. Each segment starts
// with a fixed header and carries a sequence of binary records — tenant/
// key/value sets, deletes, and epoch/reconfiguration markers — each
// protected by a CRC32 trailer. Records are written strictly append-only,
// so the only corruption a crash can produce is a torn tail: replay
// truncates the log at the last valid record (in the style of
// internal/trace.ErrTruncated) and the server continues from there.
// Corruption anywhere else — an invalid record followed by more segments,
// a bad header on a non-final segment — cannot be produced by a torn
// write and is reported as ErrCorrupt instead of silently dropped.
//
// Durability is governed by the fsync policy:
//
//   - FsyncAlways: every Append returns only after fdatasync; every
//     acknowledged write survives kill -9.
//   - FsyncInterval: a background goroutine syncs every Interval; a crash
//     loses at most the last interval's acknowledged writes.
//   - FsyncNever: the OS page cache decides; a crash loses whatever was
//     not yet written back.
//
// Compaction rewrites the live state into a fresh segment bracketed by
// snapshot markers, syncs it, and only then removes the older segments
// (oldest first), so a crash at any point leaves a replayable log: a
// partial snapshot replays as idempotent re-sets on top of the still-
// present older segments.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the record types.
type Kind uint8

const (
	// KindSet stores Value under (Tenant, Key).
	KindSet Kind = 1
	// KindDelete removes (Tenant, Key).
	KindDelete Kind = 2
	// KindEpoch marks a reconfiguration-epoch boundary: Epoch is the
	// completed epoch count and Value is the owner's opaque partition
	// state (the serve layer encodes its slot grouping there).
	KindEpoch Kind = 3
	// KindSnapshotBegin opens a compaction snapshot; Epoch and Value are
	// as in KindEpoch. The KindSet records that follow re-log live state.
	KindSnapshotBegin Kind = 4
	// KindSnapshotEnd closes a compaction snapshot; older segments are
	// removed only after it is durable.
	KindSnapshotEnd Kind = 5
)

func (k Kind) String() string {
	switch k {
	case KindSet:
		return "set"
	case KindDelete:
		return "delete"
	case KindEpoch:
		return "epoch"
	case KindSnapshotBegin:
		return "snapshot-begin"
	case KindSnapshotEnd:
		return "snapshot-end"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one logged operation.
//
// Wire format (little-endian), CRC32 (IEEE) over header and payload:
//
//	kind u8 | tenantLen u8 | keyLen u16 | valLen u32 | epoch u64
//	tenant bytes | key bytes | value bytes
//	crc u32
type Record struct {
	Kind   Kind
	Tenant string
	Key    string
	Value  []byte
	// Epoch is the completed-epoch counter on KindEpoch and
	// KindSnapshotBegin records; zero otherwise.
	Epoch uint64
}

const (
	headerLen  = 16
	trailerLen = 4
	// segHeaderLen is the per-segment file header: magic, version, zero.
	segHeaderLen = 8
	segMagic     = "MCWL"
	segVersion   = 1
)

// Errors reported by the log.
var (
	// ErrTruncated is wrapped by replay stats when a final segment ends
	// mid-record. It is informational — Open repairs the tail and
	// succeeds — and mirrors internal/trace.ErrTruncated.
	ErrTruncated = errors.New("wal: truncated mid-record")
	// ErrCorrupt reports invalid bytes that a torn append cannot explain:
	// a bad record in a non-final segment, or a bad segment header with
	// later segments present. Open fails rather than silently dropping
	// acknowledged writes.
	ErrCorrupt = errors.New("wal: corrupt")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("wal: closed")
	// ErrRecordTooLarge rejects an Append whose payload exceeds the
	// configured bounds.
	ErrRecordTooLarge = errors.New("wal: record too large")
)

// FsyncPolicy selects the durability/latency trade-off.
type FsyncPolicy int

const (
	// FsyncAlways syncs on every Append (the zero value: safest default).
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background timer.
	FsyncInterval
	// FsyncNever never syncs explicitly.
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses "always", "interval", or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// Options configures a log.
type Options struct {
	// Fsync is the durability policy. Default FsyncAlways.
	Fsync FsyncPolicy
	// Interval is the FsyncInterval cadence. Default 100ms.
	Interval time.Duration
	// SegmentBytes rolls to a new segment past this size. Default 16 MiB.
	SegmentBytes int64
	// MaxValueBytes bounds one record's value, both on Append and as the
	// replay-side sanity bound before allocating. Default 1 MiB.
	MaxValueBytes int
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.MaxValueBytes <= 0 {
		o.MaxValueBytes = 1 << 20
	}
	return o
}

// ReplayStats summarizes what Open recovered.
type ReplayStats struct {
	// Segments is how many segment files were replayed.
	Segments int
	// Records is how many valid records were applied.
	Records int64
	// Skipped is how many records the apply callback declined (see
	// SkipRecord).
	Skipped int64
	// Truncated reports a torn tail that was cut back to the last valid
	// record.
	Truncated bool
	// TruncatedBytes is how many bytes the repair dropped.
	TruncatedBytes int64
}

// SkipRecord, returned by an Open apply callback, skips the record (it is
// counted in ReplayStats.Skipped) without aborting replay — for records
// that no longer apply, e.g. a tenant removed from the configuration.
var SkipRecord = errors.New("wal: skip record")

// Log is an open write-ahead log. All methods are safe for concurrent
// use; appends from different callers serialize on one internal mutex, so
// replay order always matches acknowledgment order.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	seq    int   // current segment number
	size   int64 // bytes written to the current segment
	buf    []byte
	closed bool
	// injected, when non-nil, fails every Append/Sync/Compact — the
	// serve-layer fault hook (shard-level WAL write-error and disk-full
	// events) and a test seam for real disk failures.
	injected error
	// syncErr is a sticky background-sync failure: under FsyncInterval a
	// failed timer sync must surface, so the next Append returns it
	// instead of acknowledging a write that may never reach disk.
	syncErr error
	// dirty marks bytes appended since the last sync.
	dirty bool
	// compacting suppresses size-based rolling while a snapshot streams,
	// so a snapshot always occupies one segment regardless of its size.
	compacting bool

	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if needed) the log in dir, replays every existing
// record through apply in append order, repairs a torn tail, and leaves
// the log ready for Append. A nil apply discards records (still
// validated). Any apply error other than SkipRecord aborts Open.
func Open(dir string, opts Options, apply func(Record) error) (*Log, ReplayStats, error) {
	opts = opts.withDefaults()
	var stats ReplayStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, buf: make([]byte, 0, 4096)}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, stats, err
	}
	for i, seg := range segs {
		final := i == len(segs)-1
		path := l.segPath(seg)
		applied, skipped, valid, torn, err := replaySegment(path, opts.MaxValueBytes, apply)
		if err != nil {
			if !torn {
				return nil, stats, err
			}
			if !final {
				// A torn record can only be the log's very tail; mid-log
				// damage is not crash-shaped and repair would drop later
				// acknowledged segments.
				return nil, stats, fmt.Errorf("%w: segment %08d damaged with later segments present: %v", ErrCorrupt, seg, err)
			}
			fi, statErr := os.Stat(path)
			if statErr != nil {
				return nil, stats, fmt.Errorf("wal: %w", statErr)
			}
			stats.Truncated = true
			stats.TruncatedBytes = fi.Size() - valid
			if valid < segHeaderLen {
				// Even the segment header is torn; drop the file and let
				// the next roll recreate the number.
				if err := os.Remove(path); err != nil {
					return nil, stats, fmt.Errorf("wal: %w", err)
				}
				segs = segs[:len(segs)-1]
			} else if err := os.Truncate(path, valid); err != nil {
				return nil, stats, fmt.Errorf("wal: %w", err)
			}
		}
		stats.Segments++
		stats.Records += applied
		stats.Skipped += skipped
	}
	if len(segs) == 0 {
		if err := l.newSegmentLocked(1); err != nil {
			return nil, stats, err
		}
	} else {
		last := segs[len(segs)-1]
		f, err := os.OpenFile(l.segPath(last), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, stats, fmt.Errorf("wal: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("wal: %w", err)
		}
		l.f, l.seq, l.size = f, last, fi.Size()
	}
	if opts.Fsync == FsyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, stats, nil
}

func (l *Log) segPath(seq int) string {
	return filepath.Join(l.dir, fmt.Sprintf("%08d.wal", seq))
}

// listSegments returns the existing segment numbers in ascending order.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []int
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") || len(name) != 12 {
			continue
		}
		n, err := strconv.Atoi(name[:8])
		if err != nil || n <= 0 {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// newSegmentLocked closes the current segment (if any) and starts seq.
func (l *Log) newSegmentLocked(seq int) error {
	if l.f != nil {
		// Acked-but-unsynced bytes must not ride only in a file we are
		// about to stop writing: sync the old segment before moving on.
		if l.dirty {
			if err := l.f.Sync(); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			l.dirty = false
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.f = nil
	}
	f, err := os.OpenFile(l.segPath(seq), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.seq, l.size = f, seq, segHeaderLen
	return nil
}

// syncDir makes directory mutations (segment create/remove) durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// marshal appends r's wire form to buf and returns the extended slice.
func marshal(buf []byte, r Record) ([]byte, error) {
	if len(r.Tenant) > 255 {
		return buf, fmt.Errorf("%w: tenant %d bytes", ErrRecordTooLarge, len(r.Tenant))
	}
	if len(r.Key) > 65535 {
		return buf, fmt.Errorf("%w: key %d bytes", ErrRecordTooLarge, len(r.Key))
	}
	start := len(buf)
	var hdr [headerLen]byte
	hdr[0] = byte(r.Kind)
	hdr[1] = byte(len(r.Tenant))
	binary.LittleEndian.PutUint16(hdr[2:], uint16(len(r.Key)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(r.Value)))
	binary.LittleEndian.PutUint64(hdr[8:], r.Epoch)
	buf = append(buf, hdr[:]...)
	buf = append(buf, r.Tenant...)
	buf = append(buf, r.Key...)
	buf = append(buf, r.Value...)
	crc := crc32.ChecksumIEEE(buf[start:])
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	return append(buf, tr[:]...), nil
}

// Append logs one record under the configured durability policy: when it
// returns nil under FsyncAlways, the record is on disk.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(r, true)
}

func (l *Log) appendLocked(r Record, policySync bool) error {
	if l.closed {
		return ErrClosed
	}
	if l.injected != nil {
		return l.injected
	}
	if l.syncErr != nil {
		err := l.syncErr
		// Retry the sync so a transient failure heals: if it works, the
		// previously acknowledged bytes are durable after all.
		if l.f != nil && l.f.Sync() == nil {
			l.syncErr, l.dirty = nil, false
		} else {
			return err
		}
	}
	if len(r.Value) > l.opts.MaxValueBytes {
		return fmt.Errorf("%w: value %d bytes over %d", ErrRecordTooLarge, len(r.Value), l.opts.MaxValueBytes)
	}
	if l.size >= l.opts.SegmentBytes && !l.compacting {
		if err := l.newSegmentLocked(l.seq + 1); err != nil {
			return err
		}
	}
	var err error
	l.buf, err = marshal(l.buf[:0], r)
	if err != nil {
		return err
	}
	n, err := l.f.Write(l.buf)
	l.size += int64(n)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.dirty = true
	if policySync && l.opts.Fsync == FsyncAlways {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.dirty = false
	}
	return nil
}

// Sync forces buffered appends to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed {
		return ErrClosed
	}
	if l.injected != nil {
		return l.injected
	}
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.syncErr = fmt.Errorf("wal: %w", err)
		return l.syncErr
	}
	l.dirty = false
	l.syncErr = nil
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.injected == nil && l.dirty {
				if err := l.f.Sync(); err != nil {
					l.syncErr = fmt.Errorf("wal: %w", err)
				} else {
					l.dirty = false
					l.syncErr = nil
				}
			}
			l.mu.Unlock()
		}
	}
}

// Compact rewrites the live state as a snapshot — a fresh segment holding
// KindSnapshotBegin (carrying epoch and the opaque partition state),
// the KindSet records stream emits, and KindSnapshotEnd — syncs it, and
// removes all older segments. The caller must guarantee no concurrent
// Appends mutate the state being streamed (the serve layer compacts with
// every shard locked).
func (l *Log) Compact(epoch uint64, state []byte, stream func(emit func(tenant, key string, value []byte) error) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.injected != nil {
		return l.injected
	}
	old := l.seq
	if err := l.newSegmentLocked(l.seq + 1); err != nil {
		return err
	}
	l.compacting = true
	defer func() { l.compacting = false }()
	if err := l.appendLocked(Record{Kind: KindSnapshotBegin, Epoch: epoch, Value: state}, false); err != nil {
		return err
	}
	if stream != nil {
		err := stream(func(tenant, key string, value []byte) error {
			return l.appendLocked(Record{Kind: KindSet, Tenant: tenant, Key: key, Value: value}, false)
		})
		if err != nil {
			return err
		}
	}
	if err := l.appendLocked(Record{Kind: KindSnapshotEnd}, false); err != nil {
		return err
	}
	// The snapshot must be durable before the history it replaces goes
	// away; a crash in between replays old segments + a partial snapshot,
	// which is idempotent.
	if err := l.syncLocked(); err != nil {
		return err
	}
	for seq := 1; seq <= old; seq++ {
		if err := os.Remove(l.segPath(seq)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return syncDir(l.dir)
}

// InjectFailure makes every subsequent Append/Sync/Compact fail with err
// until cleared with nil — the deterministic fault-injection seam
// (internal/fault WALWriteErr and DiskFull events).
func (l *Log) InjectFailure(err error) {
	l.mu.Lock()
	l.injected = err
	l.mu.Unlock()
}

// SegmentCount returns the number of live segment files (for metrics).
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0
	}
	return len(segs)
}

// Size returns the byte size of the current segment (for metrics).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close syncs and closes the log. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	var err error
	if l.injected == nil && l.dirty {
		if serr := l.f.Sync(); serr != nil {
			err = fmt.Errorf("wal: %w", serr)
		}
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	l.closed = true
	stop, done := l.stop, l.done
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// replaySegment streams one segment's records through apply. It returns
// the number applied and skipped, the byte offset of the end of the last
// valid record, whether the failure is torn-tail-shaped (repairable by
// truncation when the segment is the log's last), and the error.
func replaySegment(path string, maxValue int, apply func(Record) error) (applied, skipped, valid int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, segHeaderLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, 0, 0, true, fmt.Errorf("%w: segment header: %v", ErrTruncated, err)
	}
	if string(hdr[:4]) != segMagic {
		return 0, 0, 0, true, fmt.Errorf("%w: bad segment magic %q", ErrTruncated, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != segVersion {
		return 0, 0, 0, false, fmt.Errorf("%w: unsupported segment version %d", ErrCorrupt, v)
	}
	if binary.LittleEndian.Uint16(hdr[6:]) != 0 {
		return 0, 0, 0, true, fmt.Errorf("%w: nonzero reserved header bytes", ErrTruncated)
	}
	valid = segHeaderLen
	for {
		rec, n, err := readRecord(br, maxValue)
		if err == io.EOF {
			return applied, skipped, valid, false, nil
		}
		if err != nil {
			return applied, skipped, valid, true,
				fmt.Errorf("%w: record at byte %d: %v", ErrTruncated, valid, err)
		}
		switch aerr := callApply(apply, rec); {
		case aerr == nil:
			applied++
		case errors.Is(aerr, SkipRecord):
			skipped++
		default:
			return applied, skipped, valid, false, fmt.Errorf("wal: replay apply: %w", aerr)
		}
		valid += n
	}
}

// callApply invokes apply if non-nil.
func callApply(apply func(Record) error, r Record) error {
	if apply == nil {
		return nil
	}
	return apply(r)
}

// readRecord reads one record. io.EOF means a clean end exactly on a
// record boundary; any other error means the bytes at the cursor are not
// a valid record.
func readRecord(br *bufio.Reader, maxValue int) (Record, int64, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, fmt.Errorf("short header: %v", err)
	}
	kind := Kind(hdr[0])
	if kind < KindSet || kind > KindSnapshotEnd {
		return Record{}, 0, fmt.Errorf("unknown record kind %d", hdr[0])
	}
	tl := int(hdr[1])
	kl := int(binary.LittleEndian.Uint16(hdr[2:]))
	vl := int(binary.LittleEndian.Uint32(hdr[4:]))
	if vl > maxValue {
		return Record{}, 0, fmt.Errorf("value length %d over bound %d", vl, maxValue)
	}
	payload := make([]byte, tl+kl+vl+trailerLen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Record{}, 0, fmt.Errorf("short payload: %v", err)
	}
	body := payload[:tl+kl+vl]
	want := binary.LittleEndian.Uint32(payload[tl+kl+vl:])
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	if crc != want {
		return Record{}, 0, fmt.Errorf("crc mismatch (have %08x, want %08x)", crc, want)
	}
	r := Record{
		Kind:   kind,
		Tenant: string(body[:tl]),
		Key:    string(body[tl : tl+kl]),
		Epoch:  binary.LittleEndian.Uint64(hdr[8:]),
	}
	if vl > 0 {
		r.Value = append([]byte(nil), body[tl+kl:]...)
	}
	return r, int64(headerLen + tl + kl + vl + trailerLen), nil
}

// ReadRecords streams the records of one segment image (for tests and the
// fuzz harness): it returns the count of valid records before the first
// invalid byte, and an error wrapping ErrTruncated unless the image ends
// cleanly on a record boundary.
func ReadRecords(r io.Reader, maxValue int, fn func(Record) error) (int64, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, segHeaderLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, fmt.Errorf("%w: segment header: %v", ErrTruncated, err)
	}
	if string(hdr[:4]) != segMagic {
		return 0, fmt.Errorf("%w: bad segment magic %q", ErrTruncated, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != segVersion {
		return 0, fmt.Errorf("%w: unsupported segment version %d", ErrCorrupt, v)
	}
	if binary.LittleEndian.Uint16(hdr[6:]) != 0 {
		return 0, fmt.Errorf("%w: nonzero reserved header bytes", ErrTruncated)
	}
	var n int64
	for {
		rec, _, err := readRecord(br, maxValue)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("%w: record %d: %v", ErrTruncated, n, err)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return n, err
			}
		}
		n++
	}
}
