package sim

import (
	"bytes"
	"testing"

	"morphcache/internal/core"
	"morphcache/internal/hierarchy"
	"morphcache/internal/mem"
	"morphcache/internal/topology"
	"morphcache/internal/trace"
	"morphcache/internal/workload"
)

func testConfig() Config {
	c := DefaultConfig()
	c.Epochs = 4
	c.WarmupEpochs = 1
	c.EpochCycles = 100_000
	return c
}

func testGens(t *testing.T, mixName string, cores int) []*workload.Generator {
	t.Helper()
	mix, err := workload.MixByName(mixName)
	if err != nil {
		t.Fatal(err)
	}
	mix.Benchmarks = mix.Benchmarks[:cores]
	return workload.MixGenerators(mix, workload.ScaledGenConfig(16), 1)
}

func TestRunStaticBasics(t *testing.T) {
	p := hierarchy.ScaledDefault(4, 16)
	run, err := RunStatic(testConfig(), p, "(4:1:1)", testGens(t, "MIX 01", 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Epochs) != 4 {
		t.Fatalf("%d measured epochs, want 4", len(run.Epochs))
	}
	if run.Throughput() <= 0 {
		t.Fatal("throughput must be positive")
	}
	if run.Policy != "(4:1:1)" {
		t.Fatalf("policy label %q", run.Policy)
	}
	if run.Reconfigurations != 0 {
		t.Fatal("static topology must not reconfigure")
	}
	for _, e := range run.Epochs {
		if e.Topology != "(4:1:1)" {
			t.Fatalf("epoch topology %q", e.Topology)
		}
		if len(e.PerCoreIPC) != 4 {
			t.Fatalf("per-core IPCs %d", len(e.PerCoreIPC))
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := hierarchy.ScaledDefault(4, 16)
	a, err := RunStatic(testConfig(), p, "(1:1:4)", testGens(t, "MIX 02", 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStatic(testConfig(), p, "(1:1:4)", testGens(t, "MIX 02", 4))
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.PerCoreIPC {
		if a.PerCoreIPC[c] != b.PerCoreIPC[c] {
			t.Fatalf("non-deterministic IPC for core %d: %v vs %v", c, a.PerCoreIPC[c], b.PerCoreIPC[c])
		}
	}
}

func TestGeneratorCountValidation(t *testing.T) {
	p := hierarchy.ScaledDefault(4, 16)
	sys, err := hierarchy.New(p, topology.AllPrivate(4))
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(testConfig(), &HierarchyTarget{Sys: sys, Policy: NopPolicy{}}, testGens(t, "MIX 01", 2))
	if err == nil {
		t.Fatal("mismatched generator count must be rejected")
	}
	bad := testConfig()
	bad.Epochs = 0
	_, err = New(bad, &HierarchyTarget{Sys: sys, Policy: NopPolicy{}}, testGens(t, "MIX 01", 4))
	if err == nil {
		t.Fatal("zero epochs must be rejected")
	}
}

// countingPolicy verifies the engine's policy/epoch contract.
type countingPolicy struct {
	calls  int
	epochs []int
}

func (p *countingPolicy) Name() string { return "counting" }
func (p *countingPolicy) EndEpoch(e int, _ core.Machine) (int, bool) {
	p.calls++
	p.epochs = append(p.epochs, e)
	return 1, true // pretend every interval reconfigured asymmetrically
}

func TestPolicyContract(t *testing.T) {
	p := hierarchy.ScaledDefault(4, 16)
	sys, err := hierarchy.New(p, topology.AllPrivate(4))
	if err != nil {
		t.Fatal(err)
	}
	cp := &countingPolicy{}
	eng, err := New(testConfig(), &HierarchyTarget{Sys: sys, Policy: cp}, testGens(t, "MIX 01", 4))
	if err != nil {
		t.Fatal(err)
	}
	run := eng.Run()
	// EndEpoch fires after every epoch, warmup included.
	if cp.calls != 5 {
		t.Fatalf("policy called %d times, want 5 (1 warmup + 4 measured)", cp.calls)
	}
	// Only measured intervals count toward the statistics.
	if run.Reconfigurations != 4 || run.AsymmetricSteps != 4 {
		t.Fatalf("reconfig stats %d/%d, want 4/4", run.Reconfigurations, run.AsymmetricSteps)
	}
}

func TestRunPolicyStartsPrivate(t *testing.T) {
	p := hierarchy.ScaledDefault(4, 16)
	run, err := RunPolicy(testConfig(), p, NopPolicy{Label: "nop"}, testGens(t, "MIX 03", 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range run.Epochs {
		if e.Topology != "(1:1:4)" {
			t.Fatalf("policy runs start all-private (§2.2), got %q", e.Topology)
		}
	}
}

func TestSoloIPC(t *testing.T) {
	prof, err := workload.ByName("namd")
	if err != nil {
		t.Fatal(err)
	}
	ipc, err := SoloIPC(testConfig(), hierarchy.ScaledDefault(16, 16), prof, workload.ScaledGenConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if ipc <= 0 || ipc > 4 {
		t.Fatalf("solo IPC %v outside (0, issue width]", ipc)
	}
}

func TestVirtualTimeInterleaving(t *testing.T) {
	// A target that records access order must see cores interleaved, not
	// one core running an epoch alone.
	p := hierarchy.ScaledDefault(4, 16)
	sys, err := hierarchy.New(p, topology.AllPrivate(4))
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingTarget{inner: &HierarchyTarget{Sys: sys, Policy: NopPolicy{}}}
	cfg := testConfig()
	cfg.Epochs, cfg.WarmupEpochs = 1, 0
	eng, err := New(cfg, rec, testGens(t, "MIX 01", 4))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	switches := 0
	for i := 1; i < len(rec.order); i++ {
		if rec.order[i] != rec.order[i-1] {
			switches++
		}
	}
	if switches < len(rec.order)/8 {
		t.Fatalf("cores barely interleave: %d switches over %d accesses", switches, len(rec.order))
	}
}

type recordingTarget struct {
	inner *HierarchyTarget
	order []int
}

func (r *recordingTarget) Name() string { return "recording" }
func (r *recordingTarget) Cores() int   { return r.inner.Cores() }
func (r *recordingTarget) SetCoreASID(c int, a mem.ASID) {
	r.inner.SetCoreASID(c, a)
}
func (r *recordingTarget) Access(c int, a mem.Access, now uint64) hierarchy.AccessResult {
	r.order = append(r.order, c)
	return r.inner.Access(c, a, now)
}
func (r *recordingTarget) EndEpoch(e int) (int, bool) { return r.inner.EndEpoch(e) }
func (r *recordingTarget) Spec() string               { return r.inner.Spec() }

// flatTarget is a 1-core target with a fixed access latency, for exact
// cycle-accounting tests.
type flatTarget struct {
	latency  int
	accesses int
}

func (f *flatTarget) Name() string              { return "flat" }
func (f *flatTarget) Cores() int                { return 1 }
func (f *flatTarget) SetCoreASID(int, mem.ASID) {}
func (f *flatTarget) EndEpoch(int) (int, bool)  { return 0, false }
func (f *flatTarget) Spec() string              { return "(1:1:1)" }
func (f *flatTarget) Access(int, mem.Access, uint64) hierarchy.AccessResult {
	f.accesses++
	return hierarchy.AccessResult{Latency: f.latency}
}

// flatSource emits the same line forever.
type flatSource struct{}

func (flatSource) ASID() mem.ASID   { return 1 }
func (flatSource) BeginEpoch(int)   {}
func (flatSource) Next() mem.Access { return mem.Access{Line: 1, ASID: 1} }

// TestFractionalGapCycles checks the engine charges the exact average
// GapInstr/IssueWidth compute gap instead of truncating it: GapInstr=10 at
// IssueWidth=4 must cost 2.5 cycles per reference on average (alternating
// 2 and 3), so 1000 zero-latency cycles fit exactly 400 references — not
// the 500 that integer truncation to 2 cycles used to admit.
func TestFractionalGapCycles(t *testing.T) {
	cfg := Config{EpochCycles: 1000, Epochs: 1, GapInstr: 10, IssueWidth: 4, Seed: 1}
	ft := &flatTarget{latency: 0}
	eng, err := NewFromSources(cfg, ft, []Source{flatSource{}})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if ft.accesses != 400 {
		t.Fatalf("%d accesses in 1000 cycles at 2.5 cycles/gap, want 400", ft.accesses)
	}

	// The exactly-divisible default (8/4 = 2.0) must be unchanged: 500
	// references in the same window (paper-metric parity with the seed).
	cfg.GapInstr, cfg.IssueWidth = 8, 4
	ft = &flatTarget{latency: 0}
	eng, err = NewFromSources(cfg, ft, []Source{flatSource{}})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if ft.accesses != 500 {
		t.Fatalf("%d accesses at 2.0 cycles/gap, want 500", ft.accesses)
	}

	// Sub-cycle gaps (GapInstr < IssueWidth) now charge their true average
	// too: 2/4 = 0.5 cycles per reference with 1-cycle latency = 1.5
	// cycles/reference, so 1000 cycles fit 667 references (the old
	// clamp-to-1 model admitted only 500).
	cfg.GapInstr, cfg.IssueWidth = 2, 4
	ft = &flatTarget{latency: 1}
	eng, err = NewFromSources(cfg, ft, []Source{flatSource{}})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if ft.accesses != 667 {
		t.Fatalf("%d accesses at 1.5 cycles/reference, want 667", ft.accesses)
	}
}

// TestGapModelValidation checks degenerate gap parameters are rejected.
func TestGapModelValidation(t *testing.T) {
	for _, cfg := range []Config{
		{EpochCycles: 1000, Epochs: 1, GapInstr: 8, IssueWidth: 0},
		{EpochCycles: 1000, Epochs: 1, GapInstr: -1, IssueWidth: 4},
	} {
		if _, err := NewFromSources(cfg, &flatTarget{}, []Source{flatSource{}}); err == nil {
			t.Fatalf("config %+v must be rejected", cfg)
		}
	}
}

// recordingSource mirrors a source's output into a trace writer (the same
// interposition cmd/morphsim uses for -trace-out).
type recordingSource struct {
	inner Source
	core  int
	w     *trace.Writer
	t     *testing.T
}

func (r *recordingSource) ASID() mem.ASID { return r.inner.ASID() }
func (r *recordingSource) BeginEpoch(e int) {
	if e > 0 && r.core == 0 {
		if err := r.w.EpochBoundary(); err != nil {
			r.t.Fatal(err)
		}
	}
	r.inner.BeginEpoch(e)
}
func (r *recordingSource) Next() mem.Access {
	a := r.inner.Next()
	if err := r.w.Record(r.core, a); err != nil {
		r.t.Fatal(err)
	}
	return a
}

func TestEngineWithTraceSources(t *testing.T) {
	// Record the references an actual run consumes, then drive a second run
	// from the trace: the replay must reproduce the throughput exactly.
	cfg := testConfig()
	run := func(srcs []Source) float64 {
		p := hierarchy.ScaledDefault(4, 16)
		sys, err := hierarchy.New(p, topology.AllPrivate(4))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewFromSources(cfg, &HierarchyTarget{Sys: sys, Policy: NopPolicy{Label: "replay"}}, srcs)
		if err != nil {
			t.Fatal(err)
		}
		return eng.Run().Throughput()
	}

	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	recorded := make([]Source, 4)
	for c, g := range testGens(t, "MIX 01", 4) {
		recorded[c] = &recordingSource{inner: g, core: c, w: w, t: t}
	}
	want := run(recorded)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	tr, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]Source, 4)
	for c := 0; c < 4; c++ {
		cur, err := tr.Cursor(c)
		if err != nil {
			t.Fatal(err)
		}
		srcs[c] = cur
	}
	got := run(srcs)
	if got != want {
		t.Fatalf("trace replay throughput %v != live %v", got, want)
	}
}
