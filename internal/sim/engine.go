// Package sim is the epoch-based simulation engine: it interleaves the
// per-core reference streams in virtual time over a cache system, runs the
// system's reconfiguration/partitioning hook at every epoch boundary, and
// produces the metrics the experiments report.
//
// Time model: each core is an instruction stream punctuated by memory
// references. Between references a core retires GapInstr instructions at
// IssueWidth IPC; each reference then stalls the core for the hierarchy's
// access latency. Cores advance in virtual-time order (always the core with
// the smallest clock issues next), which interleaves the streams the way a
// shared cache would see them. An epoch is a fixed window of cycles — the
// scaled-down analogue of the paper's 300-million-cycle reconfiguration
// interval (§4).
package sim

import (
	"fmt"

	"morphcache/internal/core"
	"morphcache/internal/fault"
	"morphcache/internal/hierarchy"
	"morphcache/internal/mem"
	"morphcache/internal/metrics"
	"morphcache/internal/obs"
	"morphcache/internal/telemetry"
	"morphcache/internal/topology"
	"morphcache/internal/workload"
)

// Source is one core's reference stream: the synthetic workload models
// (workload.Generator) and trace replay cursors (trace.Cursor) both
// satisfy it.
type Source interface {
	// ASID is the address space the stream belongs to.
	ASID() mem.ASID
	// BeginEpoch positions the stream at the start of epoch e.
	BeginEpoch(e int)
	// Next produces the stream's next reference.
	Next() mem.Access
}

// FromGenerators adapts workload generators to Sources.
func FromGenerators(gens []*workload.Generator) []Source {
	out := make([]Source, len(gens))
	for i, g := range gens {
		out[i] = g
	}
	return out
}

// Target is a simulated cache system under some management policy: the
// MorphCache-controlled hierarchy, a static hierarchy, or the PIPP/DSR
// baselines.
type Target interface {
	// Name labels the policy in reports.
	Name() string
	// Cores returns the core count.
	Cores() int
	// SetCoreASID tells the system which address space runs on a core.
	SetCoreASID(core int, asid mem.ASID)
	// Access simulates one reference at CPU cycle now.
	Access(core int, a mem.Access, now uint64) hierarchy.AccessResult
	// EndEpoch runs the policy's per-interval work (reconfiguration,
	// repartitioning, monitor reset) after epoch e. It returns the number
	// of reconfiguration operations and whether the resulting configuration
	// is asymmetric (§2.4 statistics; zero/false for non-topology policies).
	EndEpoch(e int) (reconfigs int, asymmetric bool)
	// Spec describes the current configuration (e.g. "(4:4:1)").
	Spec() string
}

// Policy decides reconfigurations for a hierarchy-backed target. Static
// topologies use NopPolicy; the MorphCache controller implements this. It
// is the shared core.Policy interface, which the serve-mode cache
// (internal/serve) drives too — the simulator passes a *hierarchy.System
// as the core.Machine.
type Policy = core.Policy

// NopPolicy is the no-op policy of a fixed topology.
type NopPolicy struct{ Label string }

// Name returns the label.
func (p NopPolicy) Name() string { return p.Label }

// EndEpoch does nothing.
func (p NopPolicy) EndEpoch(int, core.Machine) (int, bool) { return 0, false }

// HierarchyTarget adapts a hierarchy.System plus a Policy to the Target
// interface.
type HierarchyTarget struct {
	Sys    *hierarchy.System
	Policy Policy
}

// Name implements Target.
func (t *HierarchyTarget) Name() string { return t.Policy.Name() }

// Cores implements Target.
func (t *HierarchyTarget) Cores() int { return t.Sys.Cores() }

// SetCoreASID implements Target.
func (t *HierarchyTarget) SetCoreASID(core int, asid mem.ASID) { t.Sys.SetCoreASID(core, asid) }

// Access implements Target.
func (t *HierarchyTarget) Access(core int, a mem.Access, now uint64) hierarchy.AccessResult {
	return t.Sys.Access(core, a, now)
}

// EndEpoch implements Target: policy first (it reads the interval's ACFVs
// and miss counters), then the per-interval resets (§2.1).
func (t *HierarchyTarget) EndEpoch(e int) (int, bool) {
	r, asym := t.Policy.EndEpoch(e, t.Sys)
	t.Sys.ResetFootprints()
	t.Sys.ResetEpochCounters()
	return r, asym
}

// Spec implements Target.
func (t *HierarchyTarget) Spec() string { return t.Sys.Topology().Spec() }

// ApplyFault implements FaultInjectable by delegating to the hierarchy.
func (t *HierarchyTarget) ApplyFault(ev fault.Event) error { return t.Sys.ApplyFault(ev) }

// AgeFaults implements FaultInjectable.
func (t *HierarchyTarget) AgeFaults() { t.Sys.AgeFaults() }

// TelemetrySnapshot implements telemetry.Snapshotter by delegating to the
// hierarchy's counters.
func (t *HierarchyTarget) TelemetrySnapshot() telemetry.Snapshot {
	return t.Sys.TelemetrySnapshot()
}

// SetRecorder implements telemetry.RecorderSettable: the recorder is
// forwarded to the policy (the MorphCache controller emits its
// reconfiguration decisions through it; other policies ignore it).
func (t *HierarchyTarget) SetRecorder(r telemetry.Recorder) {
	if rs, ok := t.Policy.(telemetry.RecorderSettable); ok {
		rs.SetRecorder(r)
	}
}

// ObserverSettable is implemented by targets (and policies) that accept an
// observability hook set. A nil observer is always valid and must restore
// the unobserved behavior.
type ObserverSettable interface {
	SetObserver(*obs.Observer)
}

// SetObserver implements ObserverSettable: the hierarchy gets the access
// hook and the policy (when it supports it — the MorphCache controller
// does) gets the decision counters.
func (t *HierarchyTarget) SetObserver(o *obs.Observer) {
	t.Sys.SetObserver(o)
	if os, ok := t.Policy.(ObserverSettable); ok {
		os.SetObserver(o)
	}
}

// Config parameterizes a run.
type Config struct {
	// EpochCycles is the reconfiguration interval in CPU cycles.
	EpochCycles uint64
	// Epochs is the number of measured intervals; WarmupEpochs run first
	// and are excluded from metrics (the paper measures a region of
	// interest in a warmed-up cache, §1.2).
	Epochs, WarmupEpochs int
	// StartEpoch is the absolute index of the first epoch the engine runs
	// (warmup included). The default 0 is the ordinary full run. A positive
	// value resumes the workload mid-run: sources are positioned with
	// BeginEpoch(StartEpoch+i), clocks start at StartEpoch*EpochCycles, and
	// telemetry records carry the absolute epoch index — this is how sampled
	// simulation (internal/sampled) replays one representative window
	// without simulating the epochs before it. Generators reseed per epoch
	// from (seed, asid, thread, epoch), so a resumed window sees exactly the
	// reference stream of the full run's same epochs.
	StartEpoch int
	// GapInstr instructions retire between consecutive memory references,
	// at IssueWidth IPC (4-way issue superscalar, Table 3), so each
	// reference charges GapInstr/IssueWidth cycles of compute on top of the
	// access latency. The quotient need not be an integer: the engine
	// accumulates the fractional part per core and charges a whole cycle
	// whenever the carry reaches one, so over a run the average gap charge
	// equals GapInstr/IssueWidth exactly (e.g. GapInstr=10, IssueWidth=4
	// alternates 2- and 3-cycle gaps, averaging 2.5 — not the 2 that plain
	// integer truncation used to charge, which skewed any sensitivity sweep
	// varying issue width). IssueWidth must be positive.
	GapInstr   int
	IssueWidth float64
	// Seed drives all workload randomness.
	Seed uint64
	// Recorder, when non-nil, receives per-epoch telemetry records (warmup
	// epochs included, flagged) and — for targets/policies that support it —
	// reconfiguration events. Nil (the default) records nothing and adds no
	// work to the run. The engine calls the recorder from its own goroutine
	// only, so one recorder per run needs no synchronization.
	Recorder telemetry.Recorder
	// Observer, when non-nil, receives the run's observability stream: one
	// ObserveAccess per reference, reconfiguration decision counts, epoch
	// counts, and — when its tracer is on — phase spans. Requires a target
	// implementing ObserverSettable for the access/decision hooks; the
	// engine-level hooks (spans, epoch counts, latency summaries) work with
	// any target. Nil (the default) observes nothing: the run is
	// byte-identical to a build without the obs package.
	Observer *obs.Observer
	// Faults, when non-nil and non-empty, is the deterministic fault plan:
	// each event is injected into the target at the start of its epoch
	// (absolute index, warmup included). The target must implement
	// FaultInjectable. Nil injects nothing and leaves the run byte-identical
	// to a build without fault support.
	Faults *fault.Plan
}

// FaultInjectable is implemented by targets that can absorb fault events
// and age transient ones at epoch boundaries (the hierarchy-backed
// targets; the PIPP/DSR baselines do not).
type FaultInjectable interface {
	ApplyFault(fault.Event) error
	AgeFaults()
}

// DefaultConfig returns the scaled experiment defaults: 20 measured epochs
// of one million cycles after two warmup epochs.
func DefaultConfig() Config {
	return Config{
		EpochCycles:  1_000_000,
		Epochs:       20,
		WarmupEpochs: 2,
		GapInstr:     8,
		IssueWidth:   4,
		Seed:         1,
	}
}

// Engine drives one simulation.
type Engine struct {
	cfg      Config
	target   Target
	gens     []Source
	clock    []uint64  // per-core cycle counters (persist across epochs)
	gapCarry []float64 // per-core fractional gap cycles not yet charged
	inj      FaultInjectable
}

// New builds an engine over a target. There must be exactly one generator
// per core.
func New(cfg Config, target Target, gens []*workload.Generator) (*Engine, error) {
	return NewFromSources(cfg, target, FromGenerators(gens))
}

// NewFromSources builds an engine over arbitrary reference sources (e.g.
// trace replay cursors).
func NewFromSources(cfg Config, target Target, srcs []Source) (*Engine, error) {
	if len(srcs) != target.Cores() {
		return nil, fmt.Errorf("sim: %d sources for %d cores", len(srcs), target.Cores())
	}
	if cfg.EpochCycles == 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("sim: bad config %+v", cfg)
	}
	if cfg.IssueWidth <= 0 || cfg.GapInstr < 0 {
		return nil, fmt.Errorf("sim: bad gap model (GapInstr=%d, IssueWidth=%v)", cfg.GapInstr, cfg.IssueWidth)
	}
	if cfg.StartEpoch < 0 {
		return nil, fmt.Errorf("sim: StartEpoch must be >= 0, got %d", cfg.StartEpoch)
	}
	var inj FaultInjectable
	if !cfg.Faults.Empty() {
		if err := cfg.Faults.Validate(target.Cores()); err != nil {
			return nil, err
		}
		var ok bool
		if inj, ok = target.(FaultInjectable); !ok {
			return nil, fmt.Errorf("sim: fault plan given but target %q does not support fault injection", target.Name())
		}
	}
	return &Engine{
		cfg:      cfg,
		target:   target,
		gens:     srcs,
		clock:    make([]uint64, target.Cores()),
		gapCarry: make([]float64, target.Cores()),
		inj:      inj,
	}, nil
}

// Run executes warmup plus measured epochs and returns the metrics.
func (e *Engine) Run() *metrics.Run {
	run := &metrics.Run{Policy: e.target.Name()}
	n := e.target.Cores()
	totalInstr := make([]uint64, n)
	gap := float64(e.cfg.GapInstr) / e.cfg.IssueWidth
	gapWhole := uint64(gap)
	gapFrac := gap - float64(gapWhole)

	// Telemetry: inject the recorder into the target (so the policy can
	// emit reconfiguration events) and baseline the cumulative counters.
	var prevSnap telemetry.Snapshot
	snapper, _ := e.target.(telemetry.Snapshotter)
	if e.cfg.Recorder != nil {
		if rs, ok := e.target.(telemetry.RecorderSettable); ok {
			rs.SetRecorder(e.cfg.Recorder)
		}
		if snapper != nil {
			prevSnap = snapper.TelemetrySnapshot()
		}
	}

	// Observability: hand the observer to the target (access hook, decision
	// counters) and start per-run latency collection when telemetry will
	// consume it. A telemetry run without a configured observer gets a bare
	// one (latency summaries only, no hub, no tracer), so epoch records
	// carry latency quantiles whenever they are recorded at all. All hooks
	// below are nil-safe, so the unobserved run takes the exact same path it
	// always did.
	o := e.cfg.Observer
	var prevLat [obs.NumServed]obs.HistSnapshot
	if o == nil && e.cfg.Recorder != nil {
		o = &obs.Observer{}
	}
	if o != nil {
		if os, ok := e.target.(ObserverSettable); ok {
			os.SetObserver(o)
		}
		if e.cfg.Recorder != nil && o.Access == nil {
			o.Access = obs.NewAccessStats()
		}
	}

	// Epoch indices: off counts epochs the engine actually runs; ep is the
	// absolute epoch index of the workload (off + StartEpoch). Warmup/measured
	// status follows off (the engine's own warmup prefix); sources, clocks,
	// fault schedules, and telemetry follow ep (the workload's timeline).
	// With StartEpoch == 0 the two coincide and this loop is exactly the
	// classic full run.
	totalEpochs := e.cfg.WarmupEpochs + e.cfg.Epochs
	for off := 0; off < totalEpochs; off++ {
		ep := e.cfg.StartEpoch + off
		epochSpan := o.Span("sim", "epoch").Arg("epoch", ep).Arg("warmup", off < e.cfg.WarmupEpochs)
		epochStart := uint64(ep) * e.cfg.EpochCycles
		epochEnd := epochStart + e.cfg.EpochCycles
		instr := make([]uint64, n)
		for c := 0; c < n; c++ {
			e.gens[c].BeginEpoch(ep)
			e.target.SetCoreASID(c, e.gens[c].ASID())
			if e.clock[c] < epochStart {
				e.clock[c] = epochStart
			}
		}
		if e.inj != nil {
			e.inj.AgeFaults()
			for _, ev := range e.cfg.Faults.At(ep) {
				faultSpan := o.Span("sim", "fault").Arg("event", ev.String())
				if err := e.inj.ApplyFault(ev); err != nil {
					// The plan was validated against this target in
					// NewFromSources; a failure here is a bookkeeping bug.
					panic("sim: validated fault event failed to apply: " + err.Error())
				}
				faultSpan.End()
			}
		}
		spec := e.target.Spec()
		for {
			// Advance the laggard core still inside the epoch.
			core := -1
			var minClock uint64
			for c := 0; c < n; c++ {
				if e.clock[c] < epochEnd && (core < 0 || e.clock[c] < minClock) {
					core, minClock = c, e.clock[c]
				}
			}
			if core < 0 {
				break
			}
			a := e.gens[core].Next()
			res := e.target.Access(core, a, e.clock[core])
			charge := gapWhole
			if gapFrac > 0 {
				e.gapCarry[core] += gapFrac
				if e.gapCarry[core] >= 1 {
					whole := uint64(e.gapCarry[core])
					charge += whole
					e.gapCarry[core] -= float64(whole)
				}
			}
			if charge == 0 && res.Latency <= 0 {
				charge = 1 // guarantee forward progress in virtual time
			}
			e.clock[core] += charge + uint64(res.Latency)
			instr[core] += uint64(e.cfg.GapInstr)
		}

		measured := off >= e.cfg.WarmupEpochs
		if measured {
			ipc := make([]float64, n)
			for c := 0; c < n; c++ {
				ipc[c] = float64(instr[c]) / float64(e.cfg.EpochCycles)
				totalInstr[c] += instr[c]
			}
			run.Epochs = append(run.Epochs, metrics.Epoch{
				Index:      off - e.cfg.WarmupEpochs,
				PerCoreIPC: ipc,
				Topology:   spec,
			})
		}

		// Emit the epoch's telemetry record before EndEpoch: the snapshot
		// reads the interval's ACFV footprints, which EndEpoch resets, and
		// reconfiguration events the policy emits during EndEpoch must
		// follow the record of the epoch they were decided in.
		if e.cfg.Recorder != nil {
			sampleSpan := o.Span("sim", "acfv-sample").Arg("epoch", ep)
			rec := e.epochRecord(ep, !measured, spec, instr, snapper, &prevSnap)
			if o != nil && o.Access != nil {
				rec.Latency = latencySummary(o.Access.Snapshot(), &prevLat)
			}
			sampleSpan.End()
			e.cfg.Recorder.RecordEpoch(rec)
		}

		reconfSpan := o.Span("sim", "reconfigure").Arg("epoch", ep).Arg("topology", spec)
		reconf, asym := e.target.EndEpoch(ep)
		reconfSpan.Arg("reconfigs", reconf).End()
		o.CountEpoch()
		epochSpan.End()
		if measured {
			run.Reconfigurations += reconf
			if reconf > 0 && asym {
				run.AsymmetricSteps++
			}
		}
	}

	measuredCycles := float64(uint64(e.cfg.Epochs) * e.cfg.EpochCycles)
	run.PerCoreIPC = make([]float64, n)
	for c := 0; c < n; c++ {
		run.PerCoreIPC[c] = float64(totalInstr[c]) / measuredCycles
	}
	return run
}

// epochRecord assembles one epoch's telemetry record, diffing the target's
// cumulative counters against prev (updated in place). Targets without
// snapshot support (the PIPP/DSR baselines) yield IPC-and-instruction-only
// records.
func (e *Engine) epochRecord(ep int, warmup bool, spec string, instr []uint64, snapper telemetry.Snapshotter, prev *telemetry.Snapshot) telemetry.EpochRecord {
	n := e.target.Cores()
	rec := telemetry.EpochRecord{
		Epoch:    ep,
		Warmup:   warmup,
		Topology: spec,
		Cores:    make([]telemetry.CoreEpoch, n),
	}
	for c := 0; c < n; c++ {
		rec.Cores[c] = telemetry.CoreEpoch{
			Core:         c,
			IPC:          float64(instr[c]) / float64(e.cfg.EpochCycles),
			Instructions: instr[c],
		}
	}
	if snapper == nil {
		return rec
	}
	snap := snapper.TelemetrySnapshot()
	bus := snap.Bus.Delta(prev.Bus)
	rec.Bus = &bus
	rec.Faults = snap.Faults
	for c := 0; c < n && c < len(snap.Cores); c++ {
		cur, was := snap.Cores[c], telemetry.CoreCounters{}
		if c < len(prev.Cores) {
			was = prev.Cores[c]
		}
		ce := &rec.Cores[c]
		ce.Accesses = cur.Accesses - was.Accesses
		ce.L1Hits = cur.L1Hits - was.L1Hits
		ce.L2Hits = cur.L2Hits - was.L2Hits
		ce.L3Hits = cur.L3Hits - was.L3Hits
		ce.C2C = cur.C2C - was.C2C
		ce.MemReads = cur.MemReads - was.MemReads
		// MPKI counts last-level (L3 group) misses: references served by
		// another group's cache or by memory. Guard the zero-instruction
		// case (an idle epoch) — JSON cannot carry NaN.
		if ce.Instructions > 0 {
			ce.MPKI = float64(ce.C2C+ce.MemReads) * 1000 / float64(ce.Instructions)
		}
		if ce.Accesses > 0 {
			ce.AvgLatency = float64(cur.LatencySum-was.LatencySum) / float64(ce.Accesses)
		}
		if c < len(snap.L2Util) {
			ce.L2Util = snap.L2Util[c]
		}
		if c < len(snap.L3Util) {
			ce.L3Util = snap.L3Util[c]
		}
	}
	*prev = snap
	return rec
}

// latencySummary converts the per-run latency collector's cumulative
// histograms into one epoch's quantile summary, diffing against prev
// (updated in place). Levels with no accesses this epoch are nil; an epoch
// with no accesses at all (e.g. a target that never feeds the collector,
// like the PIPP/DSR baselines) yields nil, keeping those records unchanged.
func latencySummary(cur [obs.NumServed]obs.HistSnapshot, prev *[obs.NumServed]obs.HistSnapshot) *telemetry.LatencySummary {
	sum := &telemetry.LatencySummary{}
	any := false
	slots := [obs.NumServed]**telemetry.LatencyQuantiles{
		obs.ServedL1:  &sum.L1,
		obs.ServedL2:  &sum.L2,
		obs.ServedL3:  &sum.L3,
		obs.ServedC2C: &sum.C2C,
		obs.ServedMem: &sum.Mem,
	}
	for l := range cur {
		d := cur[l].Sub(prev[l])
		if d.Count > 0 {
			*slots[l] = &telemetry.LatencyQuantiles{
				Count: d.Count,
				P50:   d.Quantile(0.50),
				P95:   d.Quantile(0.95),
				P99:   d.Quantile(0.99),
			}
			any = true
		}
	}
	*prev = cur
	if !any {
		return nil
	}
	return sum
}

// RunStatic builds a hierarchy in a fixed (x:y:z) topology with the paper's
// idealized static latencies and runs the workload on it.
func RunStatic(cfg Config, p hierarchy.Params, spec string, gens []*workload.Generator) (*metrics.Run, error) {
	topo, err := topology.FromSpec(spec, p.Cores)
	if err != nil {
		return nil, err
	}
	p.ChargeRemote = false
	sys, err := hierarchy.New(p, topo)
	if err != nil {
		return nil, err
	}
	eng, err := New(cfg, &HierarchyTarget{Sys: sys, Policy: NopPolicy{Label: spec}}, gens)
	if err != nil {
		return nil, err
	}
	return eng.Run(), nil
}

// RunPolicy builds a MorphCache-style adaptive hierarchy (remote-hit
// charging on, starting all-private per §2.2) under the given policy.
func RunPolicy(cfg Config, p hierarchy.Params, policy Policy, gens []*workload.Generator) (*metrics.Run, error) {
	p.ChargeRemote = true
	sys, err := hierarchy.New(p, topology.AllPrivate(p.Cores))
	if err != nil {
		return nil, err
	}
	eng, err := New(cfg, &HierarchyTarget{Sys: sys, Policy: policy}, gens)
	if err != nil {
		return nil, err
	}
	return eng.Run(), nil
}

// SoloIPC runs one benchmark thread alone on a single-core private
// hierarchy (its fair-share slice, as the QoS discussion of §5.3 frames
// it) and returns its whole-run IPC — the IPCalone reference for WS/FS.
func SoloIPC(cfg Config, p hierarchy.Params, prof *workload.Profile, gcfg workload.GenConfig) (float64, error) {
	p.Cores = 1
	// IPCalone is the healthy fair-share reference even on a faulty
	// machine (and the plan targets the full core count anyway).
	cfg.Faults = nil
	sys, err := hierarchy.New(p, topology.AllPrivate(1))
	if err != nil {
		return 0, err
	}
	gen := workload.NewGenerator(prof, gcfg, mem.ASID(1), 0, cfg.Seed)
	eng, err := New(cfg, &HierarchyTarget{Sys: sys, Policy: NopPolicy{Label: "solo"}}, []*workload.Generator{gen})
	if err != nil {
		return 0, err
	}
	run := eng.Run()
	return run.PerCoreIPC[0], nil
}
