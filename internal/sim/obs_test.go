package sim

import (
	"reflect"
	"testing"

	"morphcache/internal/hierarchy"
	"morphcache/internal/obs"
	"morphcache/internal/telemetry"
	"morphcache/internal/topology"
)

// runObserved runs a small static hierarchy with the given config mutator
// and returns the engine's output.
func runObserved(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := testConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	p := hierarchy.ScaledDefault(4, 16)
	topo, err := topology.FromSpec("(4:1:1)", 4)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := hierarchy.New(p, topo)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, &HierarchyTarget{Sys: sys, Policy: NopPolicy{Label: "(4:1:1)"}}, testGens(t, "MIX 01", 4))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	return eng
}

// fakeClock returns a deterministic microsecond counter.
func fakeClock() func() int64 {
	var t int64
	return func() int64 { t += 3; return t }
}

func TestEngineEmitsLatencySummaries(t *testing.T) {
	tl := telemetry.NewLog()
	runObserved(t, func(c *Config) { c.Recorder = tl })
	if len(tl.Epochs) == 0 {
		t.Fatal("no epoch records")
	}
	for _, rec := range tl.Epochs {
		if rec.Latency == nil {
			t.Fatalf("epoch %d: no latency summary", rec.Epoch)
		}
		if rec.Latency.L1 == nil || rec.Latency.L1.Count == 0 {
			t.Fatalf("epoch %d: missing L1 latency quantiles: %+v", rec.Epoch, rec.Latency)
		}
		q := rec.Latency.L1
		if q.P50 <= 0 || q.P50 > q.P95 || q.P95 > q.P99 {
			t.Fatalf("epoch %d: implausible quantiles %+v", rec.Epoch, q)
		}
	}
}

func TestEngineLatencySummariesAreDeterministic(t *testing.T) {
	collect := func() []*telemetry.LatencySummary {
		tl := telemetry.NewLog()
		runObserved(t, func(c *Config) { c.Recorder = tl })
		out := make([]*telemetry.LatencySummary, len(tl.Epochs))
		for i, rec := range tl.Epochs {
			out[i] = rec.Latency
		}
		return out
	}
	a, b := collect(), collect()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("latency summaries differ between identical runs")
	}
}

func TestEngineEmitsPhaseSpans(t *testing.T) {
	hub := obs.NewHub(obs.HubOptions{Shards: 1, Trace: true, Clock: fakeClock()})
	o := hub.Observer("(4:1:1) MIX 01")
	tl := telemetry.NewLog()
	runObserved(t, func(c *Config) {
		c.Recorder = tl
		c.Observer = o
	})

	byName := map[string]int{}
	for _, ev := range hub.Tracer.Events() {
		byName[ev.Name]++
		if ev.Ph != "X" {
			t.Fatalf("unexpected phase %q on %s", ev.Ph, ev.Name)
		}
	}
	// testConfig: 1 warmup + 4 measured epochs, recorder on.
	if byName["epoch"] != 5 {
		t.Fatalf("epoch spans = %d, want 5 (events %v)", byName["epoch"], byName)
	}
	if byName["reconfigure"] != 5 || byName["acfv-sample"] != 5 {
		t.Fatalf("phase spans = %v", byName)
	}
}

func TestEngineCountsIntoHub(t *testing.T) {
	hub := obs.NewHub(obs.HubOptions{Shards: 1})
	o := hub.Observer("(4:1:1) MIX 01")
	runObserved(t, func(c *Config) { c.Observer = o })

	if got := hub.Metrics.EpochsValue(); got != 5 {
		t.Fatalf("epochs counted = %d, want 5", got)
	}
	var total uint64
	for l := 0; l < obs.NumServed; l++ {
		total += hub.Metrics.ServedValue(l)
	}
	if total == 0 {
		t.Fatal("no accesses counted into the hub")
	}
}

func TestObserverDoesNotChangeResults(t *testing.T) {
	base := runObservedRun(t, nil)
	hub := obs.NewHub(obs.HubOptions{Shards: 1, Trace: true})
	o := hub.Observer("job")
	observed := runObservedRun(t, func(c *Config) { c.Observer = o })
	if !reflect.DeepEqual(base, observed) {
		t.Fatal("observation changed simulation results")
	}
}

// runObservedRun is runObserved returning the metrics run.
func runObservedRun(t *testing.T, mutate func(*Config)) interface{} {
	t.Helper()
	cfg := testConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	p := hierarchy.ScaledDefault(4, 16)
	topo, err := topology.FromSpec("(4:1:1)", 4)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := hierarchy.New(p, topo)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, &HierarchyTarget{Sys: sys, Policy: NopPolicy{Label: "(4:1:1)"}}, testGens(t, "MIX 01", 4))
	if err != nil {
		t.Fatal(err)
	}
	return eng.Run()
}
