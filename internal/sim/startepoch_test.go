package sim

import (
	"reflect"
	"testing"

	"morphcache/internal/hierarchy"
	"morphcache/internal/mem"
)

// streamCapture records the access sequence each epoch feeds the target, so
// a resumed run's stream can be compared against the full run's at the same
// absolute epoch.
type streamCapture struct {
	cur     []mem.Access
	byEpoch map[int][]mem.Access
}

func newStreamCapture() *streamCapture {
	return &streamCapture{byEpoch: map[int][]mem.Access{}}
}

func (s *streamCapture) Name() string              { return "capture" }
func (s *streamCapture) Cores() int                { return 1 }
func (s *streamCapture) SetCoreASID(int, mem.ASID) {}
func (s *streamCapture) Spec() string              { return "(1:1:1)" }
func (s *streamCapture) Access(_ int, a mem.Access, _ uint64) hierarchy.AccessResult {
	s.cur = append(s.cur, a)
	return hierarchy.AccessResult{Latency: 1}
}
func (s *streamCapture) EndEpoch(e int) (int, bool) {
	s.byEpoch[e] = s.cur
	s.cur = nil
	return 0, false
}

// workloadStreamLen mirrors internal/workload's streaming-region size (2 Mi
// lines): the one generator state that persists across epochs is the
// streaming cursor, so resumed streaming accesses are the full run's shifted
// by a constant offset modulo this length.
const workloadStreamLen = 0x0020_0000

// TestStartEpochResumesStream is the soundness check behind sampled
// simulation: an engine resumed at absolute epoch r must drive the target
// with the reference stream the full run produced at epoch r — identical in
// length, access kinds, and every non-streaming line, with streaming lines
// offset by one constant cursor shift (the documented approximation).
func TestStartEpochResumesStream(t *testing.T) {
	cfg := Config{EpochCycles: 20_000, Epochs: 4, GapInstr: 8, IssueWidth: 4, Seed: 7}
	gens := func() []Source { return FromGenerators(testGens(t, "MIX 03", 1)) }

	full := newStreamCapture()
	eng, err := NewFromSources(cfg, full, gens())
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()

	rcfg := cfg
	rcfg.StartEpoch = 2
	rcfg.Epochs = 2
	resumed := newStreamCapture()
	eng, err = NewFromSources(rcfg, resumed, gens())
	if err != nil {
		t.Fatal(err)
	}
	run := eng.Run()

	f2, r2 := full.byEpoch[2], resumed.byEpoch[2]
	// The full run may enter epoch 2 with a reference still in flight from
	// epoch 1 (cycle debt), costing it at most one trailing reference versus
	// the cleanly started window; both sources reseed at BeginEpoch(2), so
	// the streams align position by position regardless.
	n := len(f2)
	if len(r2) < n {
		n = len(r2)
	}
	if n == 0 || len(f2)-len(r2) > 1 || len(r2)-len(f2) > 1 {
		t.Fatalf("epoch-2 stream lengths: full %d, resumed %d", len(f2), len(r2))
	}
	shift, haveShift := uint64(0), false
	for i := 0; i < n; i++ {
		if f2[i].Kind != r2[i].Kind || f2[i].ASID != r2[i].ASID {
			t.Fatalf("ref %d: kind/ASID diverged (%+v vs %+v)", i, f2[i], r2[i])
		}
		if f2[i].Line == r2[i].Line {
			continue
		}
		d := (uint64(f2[i].Line) + workloadStreamLen - uint64(r2[i].Line)) % workloadStreamLen
		if !haveShift {
			shift, haveShift = d, true
		} else if d != shift {
			t.Fatalf("ref %d: line delta %d is not the constant streaming shift %d", i, d, shift)
		}
	}
	if reflect.DeepEqual(full.byEpoch[0], f2) {
		t.Fatal("epochs 0 and 2 produced identical streams; the resume check is vacuous")
	}
	// Measured-epoch indexing stays window-relative: the resumed run's two
	// epochs report as indices 0 and 1.
	if len(run.Epochs) != 2 || run.Epochs[0].Index != 0 || run.Epochs[1].Index != 1 {
		t.Fatalf("resumed run epochs %+v", run.Epochs)
	}
}

func TestStartEpochWithWarmup(t *testing.T) {
	cfg := Config{EpochCycles: 10_000, Epochs: 1, WarmupEpochs: 2, StartEpoch: 3, GapInstr: 8, IssueWidth: 4, Seed: 7}
	cap := newStreamCapture()
	eng, err := NewFromSources(cfg, cap, FromGenerators(testGens(t, "MIX 01", 1)))
	if err != nil {
		t.Fatal(err)
	}
	run := eng.Run()
	// Absolute epochs 3 and 4 warm up, 5 is measured.
	for _, e := range []int{3, 4, 5} {
		if len(cap.byEpoch[e]) == 0 {
			t.Fatalf("absolute epoch %d not simulated (have %v)", e, cap.byEpoch)
		}
	}
	if len(run.Epochs) != 1 || run.Epochs[0].Index != 0 {
		t.Fatalf("measured epochs %+v", run.Epochs)
	}
}

func TestStartEpochValidation(t *testing.T) {
	cfg := testConfig()
	cfg.StartEpoch = -1
	if _, err := NewFromSources(cfg, newStreamCapture(), FromGenerators(testGens(t, "MIX 01", 1))); err == nil {
		t.Fatal("negative StartEpoch accepted")
	}
}
