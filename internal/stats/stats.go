// Package stats provides the small numerical helpers the experiments need:
// means, standard deviations, harmonic means, Pearson correlation, and
// geometric means. All functions are defined for the edge cases the harness
// actually hits (empty slices, zero variance) and return NaN only where the
// quantity is genuinely undefined.
package stats

import "math"

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or NaN if xs is
// empty. Population (not sample) deviation is what the paper's Table 4
// σ columns describe: the spread of a benchmark's per-epoch ACFs around its
// own mean, where the epochs are the entire population of interest.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// HarmonicMean returns the harmonic mean of xs. It returns NaN for an empty
// slice and 0 if any element is 0 (the limit of the harmonic mean as an
// element approaches zero). Negative elements are invalid and yield NaN.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		if x < 0 {
			return math.NaN()
		}
		if x == 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// GeoMean returns the geometric mean of xs, or NaN if xs is empty or any
// element is negative.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		if x < 0 {
			return math.NaN()
		}
		if x == 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Correlation returns the Pearson correlation coefficient between xs and ys.
// It panics if the lengths differ, and returns NaN if either series has zero
// variance or fewer than two points. This is the statistic Fig. 5 of the
// paper reports between ACFV-estimated and oracle footprints.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Correlation length mismatch")
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Min returns the minimum of xs, or NaN if empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN if empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
