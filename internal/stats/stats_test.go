package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean of empty should be NaN")
	}
}

func TestStdDev(t *testing.T) {
	if s := StdDev([]float64{2, 2, 2}); s != 0 {
		t.Fatalf("StdDev of constants = %v, want 0", s)
	}
	// Population std of {1,3} is 1.
	if s := StdDev([]float64{1, 3}); !approx(s, 1, 1e-12) {
		t.Fatalf("StdDev = %v, want 1", s)
	}
	if !math.IsNaN(StdDev(nil)) {
		t.Fatal("StdDev of empty should be NaN")
	}
}

func TestHarmonicMean(t *testing.T) {
	if h := HarmonicMean([]float64{1, 1, 1}); h != 1 {
		t.Fatalf("harmonic mean = %v, want 1", h)
	}
	// HM(1,2) = 4/3.
	if h := HarmonicMean([]float64{1, 2}); !approx(h, 4.0/3, 1e-12) {
		t.Fatalf("harmonic mean = %v, want 4/3", h)
	}
	if h := HarmonicMean([]float64{1, 0, 5}); h != 0 {
		t.Fatalf("harmonic mean with a zero = %v, want 0", h)
	}
	if !math.IsNaN(HarmonicMean([]float64{1, -1})) {
		t.Fatal("harmonic mean with negatives should be NaN")
	}
	if !math.IsNaN(HarmonicMean(nil)) {
		t.Fatal("harmonic mean of empty should be NaN")
	}
}

func TestHarmonicLEMean(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		// AM-HM inequality.
		return HarmonicMean(xs) <= Mean(xs)*(1+1e-9)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); !approx(g, 2, 1e-12) {
		t.Fatalf("geomean = %v, want 2", g)
	}
	if g := GeoMean([]float64{3, 0}); g != 0 {
		t.Fatalf("geomean with zero = %v, want 0", g)
	}
	if !math.IsNaN(GeoMean([]float64{-1})) {
		t.Fatal("geomean with negatives should be NaN")
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if c := Correlation(x, y); !approx(c, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %v, want 1", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(x, neg); !approx(c, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %v, want -1", c)
	}
	if !math.IsNaN(Correlation(x, []float64{1, 1, 1, 1, 1})) {
		t.Fatal("correlation with zero-variance series should be NaN")
	}
	if !math.IsNaN(Correlation([]float64{1}, []float64{2})) {
		t.Fatal("correlation of single points should be NaN")
	}
}

func TestCorrelationPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Correlation([]float64{1, 2}, []float64{1})
}

func TestCorrelationBounded(t *testing.T) {
	err := quick.Check(func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n < 2 {
			return true
		}
		xs, ys := make([]float64, 0, n), make([]float64, 0, n)
		for i := 0; i < n; i++ {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) ||
				math.Abs(a[i]) > 1e100 || math.Abs(b[i]) > 1e100 {
				return true
			}
			xs, ys = append(xs, a[i]), append(ys, b[i])
		}
		c := Correlation(xs, ys)
		return math.IsNaN(c) || (c >= -1-1e-9 && c <= 1+1e-9)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Fatalf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("Min/Max of empty should be NaN")
	}
	if Sum(nil) != 0 {
		t.Fatal("Sum of empty should be 0")
	}
}
