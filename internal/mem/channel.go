package mem

// Channel models one finite-bandwidth memory channel as a single-server
// occupancy line: each transaction holds the channel for the service time,
// and later arrivals queue behind it. It carries the hierarchy's former
// inline accounting so fault injection can derate the channel (a DRAM
// channel dropping to a slower speed bin) without the hierarchy knowing the
// details.
type Channel struct {
	// service is the healthy per-transaction occupancy in CPU cycles
	// (fractional values model banked/wide channels). Zero disables the
	// channel entirely.
	service float64
	// derate multiplies the occupancy (fault injection); 1 is healthy.
	derate float64
	// busy is the cycle at which the channel frees up.
	busy float64
}

// NewChannel returns a healthy channel with the given service occupancy.
func NewChannel(service float64) *Channel {
	return &Channel{service: service, derate: 1}
}

// SetDerate sets the occupancy multiplier. Factors below 1 are clamped to 1
// (faults only slow a channel down).
func (c *Channel) SetDerate(f float64) {
	if f < 1 {
		f = 1
	}
	c.derate = f
}

// Derate returns the current occupancy multiplier.
func (c *Channel) Derate() float64 { return c.derate }

// Wait charges one transaction starting at CPU cycle now. It returns the
// queueing delay in cycles and whether the channel is modeled at all
// (disabled channels charge nothing and count nothing).
func (c *Channel) Wait(now uint64) (wait int, charged bool) {
	if c == nil || c.service == 0 {
		return 0, false
	}
	start := float64(now)
	if c.busy > start {
		start = c.busy
	}
	c.busy = start + c.service*c.derate
	return int(start - float64(now)), true
}
