// Package mem defines the memory addressing vocabulary shared by the whole
// simulator: byte addresses, cache-line (block) addresses, address spaces,
// and access records.
//
// The simulator is trace-driven at cache-line granularity. Every access
// carries the address space it belongs to (single-threaded applications in a
// multiprogrammed mix each own a private address space; all threads of a
// multithreaded application share one), which is how the hierarchy knows
// when two cores may share data.
package mem

import "fmt"

// LineSize is the cache block size in bytes (Table 3: 64-byte lines at every
// level). It is a package constant rather than a parameter because the paper
// uses 64 B uniformly and the workload models generate line-granular
// addresses directly.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// Addr is a byte address within an address space.
type Addr uint64

// Line is a cache-line (block) address: Addr >> LineShift.
type Line uint64

// LineOf returns the line containing a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// Addr returns the first byte address of the line.
func (l Line) Addr() Addr { return Addr(l) << LineShift }

// ASID identifies an address space. Accesses with different ASIDs can never
// alias; accesses with the same ASID and the same line address refer to the
// same datum.
type ASID uint16

// Kind distinguishes reads from writes. Writes matter to the hierarchy
// because a write to a line replicated in several split cache groups
// invalidates the remote copies (the coherence cost that merging removes).
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Access is one memory reference issued by a core.
type Access struct {
	// Line is the cache-line address within the address space.
	Line Line
	// ASID is the address space of the reference.
	ASID ASID
	// Kind is Read or Write.
	Kind Kind
}

// GlobalLine is an address-space-qualified line, used as a map key by
// structures (sharing tracker, oracle footprint sets) that span address
// spaces.
type GlobalLine struct {
	ASID ASID
	Line Line
}

// Global returns the address-space-qualified line of the access.
func (a Access) Global() GlobalLine { return GlobalLine{ASID: a.ASID, Line: a.Line} }
