package mem

import "testing"

// TestChannelQueueing checks the basic occupancy line.
func TestChannelQueueing(t *testing.T) {
	c := NewChannel(2)
	if w, ok := c.Wait(100); w != 0 || !ok {
		t.Fatalf("first transaction waited %d (charged=%v), want 0/true", w, ok)
	}
	if w, _ := c.Wait(100); w != 2 {
		t.Fatalf("back-to-back transaction waited %d, want 2", w)
	}
	if w, _ := c.Wait(200); w != 0 {
		t.Fatalf("late transaction waited %d, want 0", w)
	}
}

// TestChannelDerate checks a derated channel stretches occupancy and that
// derate 1 is exactly the healthy behavior.
func TestChannelDerate(t *testing.T) {
	healthy, derated := NewChannel(2), NewChannel(2)
	derated.SetDerate(1) // explicit no-op must change nothing
	for now := uint64(0); now < 10; now++ {
		hw, _ := healthy.Wait(now)
		dw, _ := derated.Wait(now)
		if hw != dw {
			t.Fatalf("derate=1 diverged at now=%d: %d vs %d", now, hw, dw)
		}
	}
	c := NewChannel(2)
	c.SetDerate(2)
	c.Wait(0)
	if w, _ := c.Wait(0); w != 4 {
		t.Fatalf("derated queueing = %d, want 4", w)
	}
	c.SetDerate(0.5) // clamps to 1
	if c.Derate() != 1 {
		t.Fatalf("derate clamped to %v, want 1", c.Derate())
	}
}

// TestChannelDisabled checks zero-service and nil channels charge nothing.
func TestChannelDisabled(t *testing.T) {
	var nilc *Channel
	if w, ok := nilc.Wait(0); w != 0 || ok {
		t.Errorf("nil channel charged (%d, %v)", w, ok)
	}
	c := NewChannel(0)
	if w, ok := c.Wait(0); w != 0 || ok {
		t.Errorf("disabled channel charged (%d, %v)", w, ok)
	}
}
