package mem

import (
	"testing"
	"testing/quick"
)

func TestLineRoundTrip(t *testing.T) {
	err := quick.Check(func(a uint64) bool {
		addr := Addr(a)
		l := LineOf(addr)
		// The line's base address is the address with the offset cleared.
		return l.Addr() == addr&^Addr(LineSize-1)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLineSize(t *testing.T) {
	if LineSize != 1<<LineShift {
		t.Fatalf("LineSize %d != 1<<LineShift %d", LineSize, 1<<LineShift)
	}
	if LineSize != 64 {
		t.Fatalf("Table 3 uses 64-byte lines, got %d", LineSize)
	}
}

func TestSameLine(t *testing.T) {
	if LineOf(0) != LineOf(63) {
		t.Fatal("addresses 0 and 63 should share a line")
	}
	if LineOf(63) == LineOf(64) {
		t.Fatal("addresses 63 and 64 should be on different lines")
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatalf("Kind strings: %q %q", Read, Write)
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func TestGlobal(t *testing.T) {
	a := Access{Line: 100, ASID: 7, Kind: Write}
	g := a.Global()
	if g.ASID != 7 || g.Line != 100 {
		t.Fatalf("Global = %+v", g)
	}
	// GlobalLine must distinguish address spaces.
	b := Access{Line: 100, ASID: 8}
	if a.Global() == b.Global() {
		t.Fatal("same line in different address spaces must not alias")
	}
}
