package energy

import (
	"strings"
	"testing"

	"morphcache/internal/hierarchy"
	"morphcache/internal/topology"
)

func statsWith(l2loc, l2rem, l3loc, l3rem, mem uint64) hierarchy.Stats {
	return hierarchy.Stats{
		Accesses: l2loc + l2rem + l3loc + l3rem + mem + 1000,
		L1Hits:   1000,
		L2Local:  l2loc, L2Remote: l2rem,
		L2Misses: l3loc + l3rem + mem,
		L3Local:  l3loc, L3Remote: l3rem,
		L3Misses: mem,
		MemReads: mem,
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter(Default())
	m.Charge(hierarchy.Stats{}, statsWith(100, 0, 50, 0, 10), topology.AllPrivate(16))
	if m.TotalNJ <= 0 || m.CacheNJ <= 0 || m.MemNJ <= 0 {
		t.Fatalf("meter did not accumulate: %+v", m)
	}
	if m.BusNJ != 0 {
		t.Fatalf("private topology must use no bus energy, got %v", m.BusNJ)
	}
	if m.TotalNJ != m.CacheNJ+m.BusNJ+m.MemNJ {
		t.Fatal("breakdown does not sum to total")
	}
}

func TestSegmentationSavesBusEnergy(t *testing.T) {
	// Same traffic, three designs: private (no bus), dual-segmented, and
	// monolithic. Bus energy must be strictly ordered.
	traffic := statsWith(1000, 200, 500, 100, 50)
	run := func(topo topology.Topology) float64 {
		m := NewMeter(Default())
		m.Charge(hierarchy.Stats{}, traffic, topo)
		return m.BusNJ
	}
	duals := topology.Topology{
		L2: mustUniform(t, 16, 2),
		L3: mustUniform(t, 16, 2),
	}
	private := run(topology.AllPrivate(16))
	segmented := run(duals)
	monolithic := run(MonolithicTopology(16))
	if !(private < segmented && segmented < monolithic) {
		t.Fatalf("bus energy ordering violated: private %v, dual %v, monolithic %v",
			private, segmented, monolithic)
	}
	// The monolithic fabric spans 8x the dual segments.
	if monolithic < 4*segmented {
		t.Fatalf("monolithic bus should cost several times the dual segments: %v vs %v",
			monolithic, segmented)
	}
}

func mustUniform(t *testing.T, n, size int) topology.Grouping {
	t.Helper()
	g, err := topology.Uniform(n, size)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMemoryDominatesThrash(t *testing.T) {
	m := NewMeter(Default())
	m.Charge(hierarchy.Stats{}, statsWith(10, 0, 10, 0, 1000), topology.AllPrivate(16))
	if m.MemNJ < m.CacheNJ {
		t.Fatal("a thrashing workload's energy must be memory-dominated")
	}
}

func TestPerAccess(t *testing.T) {
	m := NewMeter(Default())
	if m.PerAccessNJ(0) != 0 {
		t.Fatal("zero accesses")
	}
	st := statsWith(100, 0, 0, 0, 0)
	m.Charge(hierarchy.Stats{}, st, topology.AllPrivate(16))
	if got := m.PerAccessNJ(st.Accesses); got <= 0 {
		t.Fatalf("per-access %v", got)
	}
}

func TestDeltaCharging(t *testing.T) {
	// Charging in two increments equals charging once with the total.
	a := statsWith(500, 100, 200, 50, 20)
	half := statsWith(250, 50, 100, 25, 10)
	topo := MonolithicTopology(16)
	whole := NewMeter(Default())
	whole.Charge(hierarchy.Stats{}, a, topo)
	split := NewMeter(Default())
	split.Charge(hierarchy.Stats{}, half, topo)
	split.Charge(half, a, topo)
	if diff := whole.TotalNJ - split.TotalNJ; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("incremental charging diverges: %v vs %v", whole.TotalNJ, split.TotalNJ)
	}
}

func TestString(t *testing.T) {
	m := NewMeter(Default())
	m.Charge(hierarchy.Stats{}, statsWith(10, 0, 5, 0, 1), topology.AllPrivate(16))
	if s := m.String(); !strings.Contains(s, "total") {
		t.Fatalf("summary %q", s)
	}
}
