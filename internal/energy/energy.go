// Package energy implements the dynamic-energy accounting the paper leaves
// as future work (§7: "we believe that the segmented-bus architecture would
// lead to reduced power consumption in MorphCache, we would like to
// quantify this improvement in the future").
//
// The model is an event-based CACTI-style estimate: every cache access
// costs the energy of one associative lookup at that structure's size,
// every bus transaction costs wire energy proportional to the physical span
// of the segment group it traverses (the segmentation benefit: an isolated
// segment switches only its own capacitance), and every off-chip access
// costs a fixed DRAM energy. Absolute joules are not the point — the
// comparisons are (a) segmented vs. monolithic bus energy for the same
// traffic, and (b) the energy cost of topologies that overshare.
//
// Default coefficients are derived from published 45 nm CACTI
// characterizations (energy per read access, rounded):
//
//	32 KB 4-way SRAM   ≈ 0.02 nJ
//	256 KB 8-way SRAM  ≈ 0.1  nJ
//	1 MB 16-way SRAM   ≈ 0.3  nJ
//	DRAM access        ≈ 15   nJ
//	on-chip wire       ≈ 0.08 pJ/bit/mm -> 64 B line over 1 mm ≈ 0.04 nJ
package energy

import (
	"fmt"

	"morphcache/internal/hierarchy"
	"morphcache/internal/topology"
)

// Params are the per-event energy coefficients in nanojoules.
type Params struct {
	// L1Access, L2Access, L3Access are per-lookup energies of one slice.
	L1Access, L2Access, L3Access float64
	// WirePerMM is the energy of moving one 64-byte line one millimeter.
	WirePerMM float64
	// SliceSpacingMM is the physical distance between adjacent slices on
	// the Fig. 12 floorplan (5 mm tiles).
	SliceSpacingMM float64
	// MemAccess is the off-chip access energy.
	MemAccess float64
	// ArbiterOp is the energy of one arbitration round through the tree.
	ArbiterOp float64
}

// Default returns 45 nm coefficients for the Table 3 structures.
func Default() Params {
	return Params{
		L1Access:       0.02,
		L2Access:       0.10,
		L3Access:       0.30,
		WirePerMM:      0.04,
		SliceSpacingMM: 5.0,
		MemAccess:      15.0,
		ArbiterOp:      0.005,
	}
}

// Meter accumulates energy for one simulated system. It is driven from the
// hierarchy's counters plus the topology in force, so it can be applied
// after a run (coarse, using final stats) or per epoch.
type Meter struct {
	p Params
	// TotalNJ is the accumulated dynamic energy in nanojoules.
	TotalNJ float64
	// BusNJ is the interconnect share (the §7 quantity of interest).
	BusNJ float64
	// Breakdown per component.
	CacheNJ, MemNJ float64
}

// NewMeter returns a meter with the given coefficients.
func NewMeter(p Params) *Meter { return &Meter{p: p} }

// spanMM returns the physical span of a slice group on the floorplan.
func (m *Meter) spanMM(g topology.Grouping, slice int) float64 {
	mem := g.Members(g.GroupOf(slice))
	span := mem[len(mem)-1] - mem[0] + 1
	return float64(span) * m.p.SliceSpacingMM
}

// Charge consumes the delta between two hierarchy stat snapshots under the
// topology that produced them and adds the implied energy.
//
// Cache lookups: every access that reaches a level pays one slice lookup;
// a lookup in a merged group probes the group over the bus, paying wire
// energy across the group span for remote hits and half a span (average
// request distance) for local ones. Monolithic designs are modeled by
// passing a topology whose groups span the whole chip.
func (m *Meter) Charge(prev, cur hierarchy.Stats, topo topology.Topology) {
	d := delta(prev, cur)

	// L1: private, no bus.
	m.CacheNJ += float64(d.Accesses) * m.p.L1Access

	// L2 level: hits probe one slice; every L2-level transaction in a
	// non-singleton group also arbitrates and drives the segment.
	l2tx := d.L2Local + d.L2Remote + d.L2Misses
	m.CacheNJ += float64(l2tx) * m.p.L2Access
	m.busCharge(topo.L2, d.L2Local, d.L2Remote, l2tx)

	l3tx := d.L3Local + d.L3Remote + d.L3Misses
	m.CacheNJ += float64(l3tx) * m.p.L3Access
	m.busCharge(topo.L3, d.L3Local, d.L3Remote, l3tx)

	// Cache-to-cache transfers cross the chip-level fabric.
	m.BusNJ += float64(d.C2C) * m.p.WirePerMM * 16 * m.p.SliceSpacingMM / 2

	m.MemNJ += float64(d.MemReads+d.Writeback) * m.p.MemAccess
	m.TotalNJ = m.CacheNJ + m.BusNJ + m.MemNJ
}

// busCharge adds segment-bus energy for one level's transactions, using
// the average group span weighted by transaction counts. Local hits in a
// merged group still traverse half the segment on average (request
// broadcast); remote hits traverse the full span; singleton groups are
// free.
func (m *Meter) busCharge(g topology.Grouping, local, remote, tx uint64) {
	// Weight by each group's span; transactions are attributed uniformly
	// across groups with more than one member (the counters are not
	// per-group, so this is the mean-field estimate).
	var mergedSliceCount int
	var spanSum float64
	for gi := 0; gi < g.NumGroups(); gi++ {
		if g.GroupSize(gi) > 1 {
			mem := g.Members(gi)
			spanSum += float64(mem[len(mem)-1]-mem[0]+1) * m.p.SliceSpacingMM * float64(len(mem))
			mergedSliceCount += len(mem)
		}
	}
	if mergedSliceCount == 0 {
		return
	}
	avgSpan := spanSum / float64(mergedSliceCount)
	mergedFrac := float64(mergedSliceCount) / float64(g.N())
	nLocal := float64(local) * mergedFrac
	nRemote := float64(remote) // remote hits only happen in merged groups
	nTx := float64(tx) * mergedFrac
	m.BusNJ += nLocal * m.p.WirePerMM * avgSpan / 2
	m.BusNJ += nRemote * m.p.WirePerMM * avgSpan
	m.BusNJ += nTx * m.p.ArbiterOp
}

func delta(prev, cur hierarchy.Stats) hierarchy.Stats {
	return hierarchy.Stats{
		Accesses:  cur.Accesses - prev.Accesses,
		L1Hits:    cur.L1Hits - prev.L1Hits,
		L2Local:   cur.L2Local - prev.L2Local,
		L2Remote:  cur.L2Remote - prev.L2Remote,
		L2Misses:  cur.L2Misses - prev.L2Misses,
		L3Local:   cur.L3Local - prev.L3Local,
		L3Remote:  cur.L3Remote - prev.L3Remote,
		L3Misses:  cur.L3Misses - prev.L3Misses,
		C2C:       cur.C2C - prev.C2C,
		MemReads:  cur.MemReads - prev.MemReads,
		Writeback: cur.Writeback - prev.Writeback,
	}
}

// PerAccessNJ returns the mean energy per memory reference.
func (m *Meter) PerAccessNJ(accesses uint64) float64 {
	if accesses == 0 {
		return 0
	}
	return m.TotalNJ / float64(accesses)
}

// String summarizes the meter.
func (m *Meter) String() string {
	return fmt.Sprintf("total %.1f uJ (cache %.1f, bus %.1f, memory %.1f)",
		m.TotalNJ/1000, m.CacheNJ/1000, m.BusNJ/1000, m.MemNJ/1000)
}

// MonolithicTopology returns the topology an un-segmented design implies
// for energy purposes: every group spans the whole chip, so every
// transaction switches the full bus capacitance (the paper's §3.1 argument
// for segmentation).
func MonolithicTopology(n int) topology.Topology {
	return topology.AllShared(n)
}
