package cache

import (
	"testing"

	"morphcache/internal/mem"
)

func fill(t *testing.T, s *Slice, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		s.Insert(1, mem.Line(i*s.Sets()), false) // all map to set 0
	}
}

// TestSetDisabledWaysShrinksAssociativity checks that disabling ways drops
// resident lines, reports them, and caps future occupancy.
func TestSetDisabledWaysShrinksAssociativity(t *testing.T) {
	for _, pol := range []Policy{LRU, TreePLRU, SRRIP} {
		s := New(Config{SizeBytes: 4 * 1024, Ways: 4, Policy: pol})
		fill(t, s, 4) // set 0 full
		if got := s.ValidLines(); got != 4 {
			t.Fatalf("[%s] valid lines after fill = %d, want 4", pol, got)
		}
		dropped := s.SetDisabledWays(2)
		if s.EffectiveWays() != 2 || s.DisabledWays() != 2 {
			t.Errorf("[%s] effective/disabled = %d/%d, want 2/2", pol, s.EffectiveWays(), s.DisabledWays())
		}
		if len(dropped) != 2 {
			t.Errorf("[%s] dropped %d entries, want 2", pol, len(dropped))
		}
		if got := s.ValidLines(); got != 2 {
			t.Errorf("[%s] valid lines after disable = %d, want 2", pol, got)
		}
		// Insertions must stay inside the live ways.
		for i := 10; i < 20; i++ {
			s.Insert(1, mem.Line(i*s.Sets()), false)
			if v := s.VictimWay(mem.Line(i * s.Sets())); v >= s.EffectiveWays() {
				t.Fatalf("[%s] victim way %d in disabled region", pol, v)
			}
		}
		if got := s.ValidLines(); got != 2 {
			t.Errorf("[%s] valid lines after churn = %d, want 2", pol, got)
		}
		// A line resident in a disabled way must not be found.
		for w := s.EffectiveWays(); w < s.Ways(); w++ {
			if e := s.Entry(0, w); e.Valid {
				t.Errorf("[%s] disabled way %d still holds %v", pol, w, e)
			}
		}
	}
}

// TestSetDisabledWaysClamps checks at least one way always survives and
// negative n re-enables.
func TestSetDisabledWaysClamps(t *testing.T) {
	s := New(Config{SizeBytes: 4 * 1024, Ways: 4, Policy: LRU})
	s.SetDisabledWays(99)
	if s.EffectiveWays() != 1 {
		t.Errorf("over-disable left %d effective ways, want 1", s.EffectiveWays())
	}
	if dropped := s.SetDisabledWays(-1); dropped != nil {
		t.Errorf("re-enable returned dropped entries %v", dropped)
	}
	if s.EffectiveWays() != 4 {
		t.Errorf("re-enable left %d effective ways, want 4", s.EffectiveWays())
	}
}

// TestDisabledCumulative checks that raising the disable count again drops
// only the newly dead ways.
func TestDisabledCumulative(t *testing.T) {
	s := New(Config{SizeBytes: 4 * 1024, Ways: 4, Policy: LRU})
	fill(t, s, 4)
	if got := len(s.SetDisabledWays(1)); got != 1 {
		t.Fatalf("first disable dropped %d, want 1", got)
	}
	fill(t, s, 3) // refill live ways
	if got := len(s.SetDisabledWays(3)); got != 2 {
		t.Fatalf("second disable dropped %d, want 2", got)
	}
	if got := s.ValidLines(); got != 1 {
		t.Errorf("valid lines = %d, want 1", got)
	}
}
