// Package cache implements the set-associative cache slice that every level
// of the hierarchy is built from.
//
// A Slice is one physical bank: Sets × Ways entries of 64-byte lines. The
// paper's topology reconfiguration never changes a slice — merging two
// n-way slices of size S produces a logically 2n-way cache of size 2S with
// the *same number of sets* (footnote 1 of the paper), so a merged group is
// simply the union, set by set, of its member slices. That union logic lives
// in internal/hierarchy; this package deliberately knows nothing about
// groups, levels, or inclusion.
//
// Two replacement policies are provided:
//
//   - true LRU via per-entry timestamps, which merge trivially across slices
//     (the paper: "In an ideal LRU implementation, we can merge the entries
//     according to time-stamps"), and
//   - tree pseudo-LRU (Robinson's generalized tree-LRU), the practical
//     policy the paper cites, whose per-slice trees are merged "in any
//     order" by the hierarchy's cross-slice victim rotor.
package cache

import (
	"fmt"
	"math/bits"

	"morphcache/internal/mem"
)

// Policy selects the replacement policy of a slice.
type Policy uint8

const (
	// LRU is true least-recently-used with per-entry timestamps.
	LRU Policy = iota
	// TreePLRU is binary-tree pseudo-LRU. Ways must be a power of two.
	TreePLRU
	// SRRIP is static re-reference interval prediction (2-bit RRPV):
	// insertions predict a long re-reference interval, hits promote to
	// near-immediate, and the victim is the first line predicted distant.
	// Included as an ablation point against the paper's LRU default.
	SRRIP
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case TreePLRU:
		return "tree-plru"
	case SRRIP:
		return "srrip"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Entry is one cache line's bookkeeping state.
type Entry struct {
	Valid bool
	Dirty bool
	ASID  mem.ASID
	// Line is the full line address (tag and index bits together); keeping
	// the whole address makes back-invalidation and inclusion checks direct.
	Line mem.Line
	// LastUse is the slice-local logical time of the most recent touch,
	// maintained for the LRU policy and for cross-slice victim selection in
	// merged groups.
	LastUse uint64
}

// Stats counts slice-local events. Counters accumulate until Reset.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Inserts   uint64
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// Config sizes a slice.
type Config struct {
	// SizeBytes is the slice capacity in bytes.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// Policy selects the replacement policy.
	Policy Policy
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int {
	lines := c.SizeBytes / mem.LineSize
	if c.Ways <= 0 || lines <= 0 || lines%c.Ways != 0 {
		panic(fmt.Sprintf("cache: invalid config %+v", c))
	}
	return lines / c.Ways
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 {
		return fmt.Errorf("cache: non-positive size %d", c.SizeBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive ways %d", c.Ways)
	}
	lines := c.SizeBytes / mem.LineSize
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	if c.Ways > 64 {
		return fmt.Errorf("cache: %d ways over the 64-way limit (one occupancy bit per way)", c.Ways)
	}
	if c.Policy == TreePLRU && c.Ways&(c.Ways-1) != 0 {
		return fmt.Errorf("cache: tree-PLRU needs power-of-two ways, got %d", c.Ways)
	}
	return nil
}

// Clock is a logical timestamp source for LRU bookkeeping. Slices that can
// be merged into one group must share a Clock, otherwise their LastUse
// values are not comparable and cross-slice victim selection is
// meaningless.
type Clock struct{ now uint64 }

// Tick advances the clock and returns the new timestamp.
func (c *Clock) Tick() uint64 {
	c.now++
	return c.now
}

// Slice is one physical cache bank.
type Slice struct {
	sets    int
	ways    int
	setMask uint64
	policy  Policy
	entries []Entry // sets*ways, row-major by set
	// occ holds one occupancy bit per way of each set (bit w of occ[set] is
	// entries[set*ways+w].Valid), so free-way probes are a single mask and
	// TrailingZeros instead of a scan. Ways is capped at 64 to fit.
	occ []uint64
	// plru holds the tree-PLRU state, ways-1 bits per set packed into one
	// uint64 per set (sufficient for ways <= 64).
	plru []uint64
	// rrpv holds the 2-bit SRRIP re-reference prediction per entry.
	rrpv  []uint8
	clock *Clock
	stats Stats
	// disabled is the number of failed ways (fault injection): ways
	// [ways-disabled, ways) hold no data and are skipped by every lookup
	// and victim scan, shrinking effective associativity. Zero on a
	// healthy slice.
	disabled int
}

// New builds an empty slice from cfg. It panics on an invalid configuration;
// configurations are program constants, not user input.
func New(cfg Config) *Slice {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	s := &Slice{
		sets:    sets,
		ways:    cfg.Ways,
		setMask: uint64(sets - 1),
		policy:  cfg.Policy,
		entries: make([]Entry, sets*cfg.Ways),
		occ:     make([]uint64, sets),
		clock:   &Clock{},
	}
	if cfg.Policy == TreePLRU {
		s.plru = make([]uint64, sets)
	}
	if cfg.Policy == SRRIP {
		s.rrpv = make([]uint8, sets*cfg.Ways)
		for i := range s.rrpv {
			s.rrpv[i] = rrpvMax
		}
	}
	return s
}

// SRRIP constants: 2-bit RRPV, insert at "long" (max-1), promote to 0.
const (
	rrpvMax    = 3
	rrpvInsert = 2
)

// Sets returns the number of sets.
func (s *Slice) Sets() int { return s.sets }

// Ways returns the associativity.
func (s *Slice) Ways() int { return s.ways }

// EffectiveWays returns the associativity minus any fault-disabled ways.
func (s *Slice) EffectiveWays() int { return s.ways - s.disabled }

// DisabledWays returns the number of fault-disabled ways.
func (s *Slice) DisabledWays() int { return s.disabled }

// SetDisabledWays marks the top n ways of every set as failed. At least one
// way always survives (n is clamped to ways-1; negative n re-enables all).
// Entries resident in newly disabled ways are invalidated and returned so
// the hierarchy can propagate back-invalidations; the slice's eviction
// counter is not charged (the lines were lost, not replaced). Re-enabling
// ways returns nil — failed ways come back empty.
func (s *Slice) SetDisabledWays(n int) []Entry {
	if n < 0 {
		n = 0
	}
	if n > s.ways-1 {
		n = s.ways - 1
	}
	var dropped []Entry
	if n > s.disabled {
		for set := 0; set < s.sets; set++ {
			base := set * s.ways
			for w := s.ways - n; w < s.ways; w++ {
				if e := &s.entries[base+w]; e.Valid {
					dropped = append(dropped, *e)
					*e = Entry{}
					s.occ[set] &^= 1 << uint(w)
				}
			}
		}
	}
	s.disabled = n
	return dropped
}

// SizeBytes returns the capacity in bytes.
func (s *Slice) SizeBytes() int { return s.sets * s.ways * mem.LineSize }

// Stats returns a pointer to the slice's counters.
func (s *Slice) Stats() *Stats { return &s.stats }

// ShareClock makes the slice stamp LastUse from the given shared clock.
// All slices of one reconfigurable level must share a clock so that
// cross-slice LRU comparisons in merged groups are meaningful.
func (s *Slice) ShareClock(c *Clock) { s.clock = c }

// SetIndex maps a line address to its set. All slices of equal set count map
// a line to the same index, which is what makes union-of-sets merging work.
func (s *Slice) SetIndex(line mem.Line) int { return int(uint64(line) & s.setMask) }

// entry returns a pointer to (set, way).
func (s *Slice) entry(set, way int) *Entry { return &s.entries[set*s.ways+way] }

// Entry returns a copy of the entry at (set, way) for inspection.
func (s *Slice) Entry(set, way int) Entry { return *s.entry(set, way) }

// Lookup searches the line's set. It returns the way index on a hit and -1
// on a miss. It does not touch replacement state or counters; callers that
// model a real access should use Access or follow up with Touch.
func (s *Slice) Lookup(asid mem.ASID, line mem.Line) int {
	set := s.SetIndex(line)
	base := set * s.ways
	for m := s.occ[set] & (1<<uint(s.ways-s.disabled) - 1); m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		e := &s.entries[base+w]
		if e.ASID == asid && e.Line == line {
			return w
		}
	}
	return -1
}

// Touch records a use of (set, way): bumps the LRU timestamp and steers the
// PLRU tree away from the way.
func (s *Slice) Touch(set, way int) {
	e := s.entry(set, way)
	e.LastUse = s.clock.Tick()
	switch s.policy {
	case TreePLRU:
		s.plruTouch(set, way)
	case SRRIP:
		s.rrpv[set*s.ways+way] = 0
	}
}

// Access performs a full lookup-and-touch, updating hit/miss counters.
// It returns the way on a hit, -1 on a miss.
func (s *Slice) Access(asid mem.ASID, line mem.Line, write bool) int {
	w := s.Lookup(asid, line)
	if w < 0 {
		s.stats.Misses++
		return -1
	}
	s.stats.Hits++
	set := s.SetIndex(line)
	s.Touch(set, w)
	if write {
		s.entry(set, w).Dirty = true
	}
	return w
}

// FreeWay returns the index of the first invalid way in the line's set, or
// -1 if the set is full (one mask-and-count on the occupancy bits).
func (s *Slice) FreeWay(line mem.Line) int {
	set := s.SetIndex(line)
	free := ^s.occ[set] & (1<<uint(s.ways-s.disabled) - 1)
	if free == 0 {
		return -1
	}
	return bits.TrailingZeros64(free)
}

// VictimWay returns the way the replacement policy would evict from the
// line's set, preferring invalid ways. The set must be non-empty of ways
// (always true). It does not evict.
func (s *Slice) VictimWay(line mem.Line) int {
	if w := s.FreeWay(line); w >= 0 {
		return w
	}
	set := s.SetIndex(line)
	switch s.policy {
	case TreePLRU:
		// The PLRU tree spans all physical ways, so with disabled ways it
		// can point at a dead leaf; fall back to the timestamp scan
		// (LastUse is maintained under every policy).
		if s.disabled == 0 {
			return s.plruVictim(set)
		}
	case SRRIP:
		return s.srripVictim(set)
	}
	base := set * s.ways
	victim, oldest := 0, s.entries[base].LastUse
	for w := 1; w < s.ways-s.disabled; w++ {
		if u := s.entries[base+w].LastUse; u < oldest {
			victim, oldest = w, u
		}
	}
	return victim
}

// VictimAge returns the LastUse timestamp of the entry VictimWay would
// replace, and whether that entry is valid. Merged groups compare victim
// ages across member slices to approximate a union-wide LRU.
func (s *Slice) VictimAge(line mem.Line) (age uint64, valid bool) {
	w := s.VictimWay(line)
	e := s.entry(s.SetIndex(line), w)
	return e.LastUse, e.Valid
}

// SetDirty marks the entry at (set, way) dirty without touching replacement
// state or counters (used for writebacks propagating down the hierarchy).
func (s *Slice) SetDirty(set, way int) { s.entry(set, way).Dirty = true }

// InsertAt fills (set, way) with the line, returning the evicted entry (its
// Valid field reports whether anything was displaced). The inserted entry is
// touched.
func (s *Slice) InsertAt(set, way int, asid mem.ASID, line mem.Line, dirty bool) Entry {
	e := s.entry(set, way)
	old := *e
	if old.Valid {
		s.stats.Evictions++
	}
	*e = Entry{Valid: true, Dirty: dirty, ASID: asid, Line: line}
	s.occ[set] |= 1 << uint(way)
	s.stats.Inserts++
	s.Touch(set, way)
	if s.policy == SRRIP {
		// Insertions predict a long re-reference interval (the Touch above
		// set 0; override to the insertion prediction).
		s.rrpv[set*s.ways+way] = rrpvInsert
	}
	return old
}

// Insert places the line in its set, evicting per the replacement policy if
// the set is full, and returns the displaced entry.
func (s *Slice) Insert(asid mem.ASID, line mem.Line, dirty bool) Entry {
	set := s.SetIndex(line)
	return s.InsertAt(set, s.VictimWay(line), asid, line, dirty)
}

// Invalidate removes the line if present and returns the removed entry.
func (s *Slice) Invalidate(asid mem.ASID, line mem.Line) Entry {
	w := s.Lookup(asid, line)
	if w < 0 {
		return Entry{}
	}
	return s.InvalidateWay(s.SetIndex(line), w)
}

// InvalidateWay clears (set, way) and returns the prior entry.
func (s *Slice) InvalidateWay(set, way int) Entry {
	e := s.entry(set, way)
	old := *e
	*e = Entry{}
	s.occ[set] &^= 1 << uint(way)
	return old
}

// Flush invalidates every entry and returns the number of valid lines
// removed. Replacement metadata and counters are preserved.
func (s *Slice) Flush() int {
	n := 0
	for i := range s.entries {
		if s.entries[i].Valid {
			n++
			s.entries[i] = Entry{}
		}
	}
	for i := range s.occ {
		s.occ[i] = 0
	}
	return n
}

// ValidLines returns the number of valid entries.
func (s *Slice) ValidLines() int {
	n := 0
	for _, m := range s.occ {
		n += bits.OnesCount64(m)
	}
	return n
}

// ForEachValid calls fn for every valid entry, with its set and way.
// fn must not mutate the slice.
func (s *Slice) ForEachValid(fn func(set, way int, e Entry)) {
	for set := 0; set < s.sets; set++ {
		base := set * s.ways
		for w := 0; w < s.ways; w++ {
			if e := s.entries[base+w]; e.Valid {
				fn(set, w, e)
			}
		}
	}
}

// --- tree pseudo-LRU -------------------------------------------------------
//
// The tree is the classic complete binary tree over the ways: node 1 is the
// root, node i has children 2i and 2i+1, and leaves correspond to ways. A
// bit value of 0 means "the LRU side is the left subtree". On a touch, every
// node on the path to the touched way is pointed *away* from it; the victim
// is found by following the pointed-to sides from the root.

func (s *Slice) plruTouch(set, way int) {
	bits := s.plru[set]
	// Walk from the root toward the leaf for `way`, setting each node to
	// point away from the taken direction.
	node := 1
	span := s.ways
	lo := 0
	for span > 1 {
		half := span / 2
		bit := uint64(1) << uint(node)
		if way < lo+half {
			bits |= bit // LRU side is right
			node = 2 * node
			span = half
		} else {
			bits &^= bit // LRU side is left
			node = 2*node + 1
			lo += half
			span -= half
		}
	}
	s.plru[set] = bits
}

func (s *Slice) plruVictim(set int) int {
	bits := s.plru[set]
	node := 1
	span := s.ways
	lo := 0
	for span > 1 {
		half := span / 2
		if bits&(uint64(1)<<uint(node)) == 0 {
			node = 2 * node
			span = half
		} else {
			node = 2*node + 1
			lo += half
			span -= half
		}
	}
	return lo
}

// srripVictim finds the first way predicted "distant" (RRPV == max), aging
// the whole set until one appears.
func (s *Slice) srripVictim(set int) int {
	base := set * s.ways
	for {
		for w := 0; w < s.ways-s.disabled; w++ {
			if s.rrpv[base+w] == rrpvMax {
				return w
			}
		}
		for w := 0; w < s.ways-s.disabled; w++ {
			s.rrpv[base+w]++
		}
	}
}
