package cache

import (
	"testing"

	"morphcache/internal/mem"
	"morphcache/internal/rng"
)

func small(policy Policy) *Slice {
	// 4 sets x 4 ways of 64-byte lines = 1 KiB.
	return New(Config{SizeBytes: 1024, Ways: 4, Policy: policy})
}

func TestConfigSets(t *testing.T) {
	c := Config{SizeBytes: 256 << 10, Ways: 8}
	if c.Sets() != 512 {
		t.Fatalf("256KB 8-way: %d sets, want 512 (Table 3 L2 slice)", c.Sets())
	}
	c = Config{SizeBytes: 1 << 20, Ways: 16}
	if c.Sets() != 1024 {
		t.Fatalf("1MB 16-way: %d sets, want 1024 (Table 3 L3 slice)", c.Sets())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 4},
		{SizeBytes: 1024, Ways: 0},
		{SizeBytes: 1024, Ways: 5},                      // 16 lines not divisible by 5... actually 16/5 fails divisibility
		{SizeBytes: 3 * 64 * 4, Ways: 4},                // 3 sets: not a power of two
		{SizeBytes: 64 * 12, Ways: 3, Policy: TreePLRU}, // PLRU needs pow2 ways
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v) should be invalid", i, c)
		}
	}
	if err := (Config{SizeBytes: 1024, Ways: 4}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || TreePLRU.String() != "tree-plru" {
		t.Fatal("policy strings")
	}
}

func TestBasicHitMiss(t *testing.T) {
	s := small(LRU)
	if w := s.Access(1, 0x100, false); w >= 0 {
		t.Fatal("empty cache should miss")
	}
	s.Insert(1, 0x100, false)
	if w := s.Access(1, 0x100, false); w < 0 {
		t.Fatal("inserted line should hit")
	}
	// Different ASID, same line address: distinct datum.
	if w := s.Access(2, 0x100, false); w >= 0 {
		t.Fatal("other address space must not hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Inserts != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	s := small(LRU)
	// Four lines mapping to set 0 (set = line & 3): lines 0,4,8,12.
	for _, l := range []mem.Line{0, 4, 8, 12} {
		s.Insert(1, l, false)
	}
	// Touch line 0 so line 4 becomes LRU.
	s.Access(1, 0, false)
	old := s.Insert(1, 16, false)
	if !old.Valid || old.Line != 4 {
		t.Fatalf("evicted %+v, want line 4", old)
	}
}

func TestVictimAgePrefersInvalid(t *testing.T) {
	s := small(LRU)
	s.Insert(1, 0, false)
	if _, valid := s.VictimAge(4); valid {
		t.Fatal("set with free ways should report an invalid victim")
	}
}

func TestInsertAtAndInvalidate(t *testing.T) {
	s := small(LRU)
	s.InsertAt(2, 3, 1, 0xABC2, true) // line 0xABC2 maps to set 2
	e := s.Entry(2, 3)
	if !e.Valid || !e.Dirty || e.Line != 0xABC2 {
		t.Fatalf("entry %+v", e)
	}
	old := s.Invalidate(1, 0xABC2)
	if !old.Valid || old.Line != 0xABC2 {
		t.Fatalf("invalidate returned %+v", old)
	}
	if s.Lookup(1, 0xABC2) >= 0 {
		t.Fatal("line should be gone")
	}
	if e := s.Invalidate(1, 0xABC2); e.Valid {
		t.Fatal("double invalidate should be a no-op")
	}
}

func TestSetDirty(t *testing.T) {
	s := small(LRU)
	s.Insert(1, 5, false)
	set := s.SetIndex(5)
	w := s.Lookup(1, 5)
	s.SetDirty(set, w)
	if !s.Entry(set, w).Dirty {
		t.Fatal("SetDirty did not stick")
	}
}

func TestFlushAndValidLines(t *testing.T) {
	s := small(LRU)
	for i := mem.Line(0); i < 10; i++ {
		s.Insert(1, i, false)
	}
	if n := s.ValidLines(); n != 10 {
		t.Fatalf("ValidLines = %d, want 10", n)
	}
	if n := s.Flush(); n != 10 {
		t.Fatalf("Flush removed %d, want 10", n)
	}
	if s.ValidLines() != 0 {
		t.Fatal("flush left lines behind")
	}
}

func TestForEachValid(t *testing.T) {
	s := small(LRU)
	want := map[mem.Line]bool{1: true, 2: true, 7: true}
	for l := range want {
		s.Insert(3, l, false)
	}
	got := map[mem.Line]bool{}
	s.ForEachValid(func(set, way int, e Entry) {
		if e.ASID != 3 {
			t.Fatalf("wrong ASID %d", e.ASID)
		}
		got[e.Line] = true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
}

func TestSharedClockOrdersAcrossSlices(t *testing.T) {
	clk := &Clock{}
	a, b := small(LRU), small(LRU)
	a.ShareClock(clk)
	b.ShareClock(clk)
	// Fill set 0 of both slices (lines 0,4,8,12 map to set 0); a's lines are
	// inserted strictly before b's on the shared clock.
	for _, l := range []mem.Line{0, 4, 8, 12} {
		a.Insert(1, l, false)
	}
	for _, l := range []mem.Line{0, 4, 8, 12} {
		b.Insert(1, l, false)
	}
	ageA, okA := a.VictimAge(16)
	ageB, okB := b.VictimAge(16)
	if !okA || !okB {
		t.Fatal("full sets should report valid victims")
	}
	if !(ageA < ageB) {
		// a's LRU entry predates b's LRU entry on the shared clock.
		t.Fatalf("cross-slice ages not comparable: a=%d b=%d", ageA, ageB)
	}
}

func TestTreePLRUVictimNeverMRU(t *testing.T) {
	s := New(Config{SizeBytes: 64 * 8, Ways: 8, Policy: TreePLRU}) // 1 set x 8 ways
	for i := 0; i < 8; i++ {
		s.Insert(1, mem.Line(i*1), false)
	}
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		way := r.Intn(8)
		s.Touch(0, way)
		if v := s.VictimWay(0); v == way {
			t.Fatalf("PLRU victim %d equals just-touched way", v)
		}
	}
}

func TestTreePLRUCyclesThroughWays(t *testing.T) {
	s := New(Config{SizeBytes: 64 * 4, Ways: 4, Policy: TreePLRU})
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		v := s.VictimWay(0)
		seen[v] = true
		s.InsertAt(0, v, 1, mem.Line(i), false)
	}
	if len(seen) != 4 {
		t.Fatalf("PLRU used %d distinct ways, want 4", len(seen))
	}
}

// TestLRUMatchesReferenceModel drives a slice and an exact per-set LRU list
// model with the same random access stream and checks that contents and
// evictions agree at every step.
func TestLRUMatchesReferenceModel(t *testing.T) {
	s := New(Config{SizeBytes: 64 * 32, Ways: 4, Policy: LRU}) // 8 sets x 4 ways
	type key struct {
		asid mem.ASID
		line mem.Line
	}
	model := make(map[int][]key) // set -> MRU-first list
	find := func(set int, k key) int {
		for i, x := range model[set] {
			if x == k {
				return i
			}
		}
		return -1
	}
	r := rng.New(99)
	for step := 0; step < 20000; step++ {
		line := mem.Line(r.Intn(64)) // 64 lines over 8 sets: constant pressure
		asid := mem.ASID(1 + r.Intn(2))
		k := key{asid, line}
		set := s.SetIndex(line)

		modelHit := find(set, k) >= 0
		sliceHit := s.Access(asid, line, false) >= 0
		if modelHit != sliceHit {
			t.Fatalf("step %d: model hit=%v, slice hit=%v for %+v", step, modelHit, sliceHit, k)
		}
		if modelHit {
			// Move to MRU.
			i := find(set, k)
			model[set] = append([]key{k}, append(model[set][:i:i], model[set][i+1:]...)...)
			continue
		}
		old := s.Insert(asid, line, false)
		list := model[set]
		if len(list) == 4 {
			victim := list[len(list)-1]
			if !old.Valid || old.ASID != victim.asid || old.Line != victim.line {
				t.Fatalf("step %d: slice evicted %+v, model evicts %+v", step, old, victim)
			}
			list = list[:len(list)-1]
		} else if old.Valid {
			t.Fatalf("step %d: eviction from non-full set", step)
		}
		model[set] = append([]key{k}, list...)
	}
}

func TestSRRIPBasics(t *testing.T) {
	s := New(Config{SizeBytes: 64 * 4, Ways: 4, Policy: SRRIP}) // 1 set x 4 ways
	if SRRIP.String() != "srrip" {
		t.Fatal("policy string")
	}
	// Fill the set; every line inserted with a long prediction.
	for i := 0; i < 4; i++ {
		s.Insert(1, mem.Line(i), false)
	}
	// Promote line 0 with a hit; it must survive the next two insertions.
	s.Access(1, 0, false)
	s.Insert(1, 10, false)
	s.Insert(1, 11, false)
	if s.Lookup(1, 0) < 0 {
		t.Fatal("hit-promoted line evicted before unpromoted peers")
	}
}

func TestSRRIPScanResistance(t *testing.T) {
	// SRRIP's selling point: a one-pass scan cannot displace an actively
	// reused working set the way LRU does.
	run := func(policy Policy) int {
		s := New(Config{SizeBytes: 64 * 8, Ways: 8, Policy: policy}) // 1 set
		scan := 100
		// Rounds of hot reuse interleaved with a scan burst longer than the
		// associativity: LRU's reuse distance exceeds the set, SRRIP's
		// promoted lines out-predict the single-use scans.
		for round := 0; round < 4; round++ {
			for pass := 0; pass < 2; pass++ { // reuse, not just presence
				for i := 0; i < 4; i++ {
					if s.Access(1, mem.Line(i), false) < 0 {
						s.Insert(1, mem.Line(i), false)
					}
				}
			}
			for j := 0; j < 12; j++ {
				if s.Access(1, mem.Line(scan), false) < 0 {
					s.Insert(1, mem.Line(scan), false)
				}
				scan++
			}
		}
		alive := 0
		for i := 0; i < 4; i++ {
			if s.Lookup(1, mem.Line(i)) >= 0 {
				alive++
			}
		}
		return alive
	}
	_ = run
	srrip, lru := run(SRRIP), run(LRU)
	if lru != 0 {
		t.Fatalf("LRU should lose the hot set to the scan, kept %d", lru)
	}
	if srrip < 3 {
		t.Fatalf("SRRIP should keep the hot set through the scan, kept %d", srrip)
	}
}

func TestSRRIPInHierarchyConfig(t *testing.T) {
	if err := (Config{SizeBytes: 1024, Ways: 4, Policy: SRRIP}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestOccupancyMaskConsistency cross-checks the per-set occupancy bitmask
// (the O(1) FreeWay/ValidLines fast path) against a linear scan of the
// entries through randomized insert/invalidate/disable/flush traffic.
func TestOccupancyMaskConsistency(t *testing.T) {
	s := New(Config{SizeBytes: 64 * 4 * 8, Ways: 8, Policy: LRU})
	r := rng.New(17)
	checkOcc := func(step int) {
		t.Helper()
		valid := 0
		for set := 0; set < s.Sets(); set++ {
			var want uint64
			for w := 0; w < s.Ways(); w++ {
				if s.Entry(set, w).Valid {
					want |= 1 << uint(w)
					valid++
				}
			}
			if s.occ[set] != want {
				t.Fatalf("step %d: set %d occupancy %#x, entries say %#x", step, set, s.occ[set], want)
			}
			free := -1
			for w := 0; w < s.Ways()-s.DisabledWays(); w++ {
				if !s.Entry(set, w).Valid {
					free = w
					break
				}
			}
			// FreeWay takes a line; any line indexing this set will do.
			if got := s.FreeWay(mem.Line(set)); got != free {
				t.Fatalf("step %d: set %d FreeWay %d, scan says %d", step, set, got, free)
			}
		}
		if got := s.ValidLines(); got != valid {
			t.Fatalf("step %d: ValidLines %d, scan says %d", step, got, valid)
		}
	}
	for step := 0; step < 3000; step++ {
		line := mem.Line(r.Intn(64))
		switch r.Intn(10) {
		case 0:
			s.Invalidate(1, line)
		case 1:
			s.SetDisabledWays(r.Intn(4))
		case 2:
			if step%500 == 0 {
				s.Flush()
			}
		default:
			if s.Access(1, line, r.Intn(2) == 0) < 0 {
				s.Insert(1, line, r.Intn(2) == 0)
			}
		}
		if step%250 == 0 {
			checkOcc(step)
		}
	}
	checkOcc(-1)
}

func TestWays64Limit(t *testing.T) {
	if err := (Config{SizeBytes: 64 * 128 * 2, Ways: 128}).Validate(); err == nil {
		t.Fatal("more than 64 ways must be rejected (one occupancy bit per way)")
	}
	if err := (Config{SizeBytes: 64 * 64 * 2, Ways: 64}).Validate(); err != nil {
		t.Fatalf("64 ways should be valid: %v", err)
	}
}
