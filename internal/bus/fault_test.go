package bus

import (
	"testing"

	"morphcache/internal/topology"
)

func pairedBus(t *testing.T) *SegmentedBus {
	t.Helper()
	b := NewSegmentedBus(4, DefaultTiming())
	g, err := topology.Private(4).MergeGroups(0, 1) // {0,1},{2},{3}
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Configure(g); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestLinkDegradeStretchesTransactions checks a degraded interior link slows
// its group and leaves other groups alone.
func TestLinkDegradeStretchesTransactions(t *testing.T) {
	healthy, slow := pairedBus(t), pairedBus(t)
	slow.SetLinkDegrade(0, 2) // interior to group {0,1}
	_, hov := healthy.Transact(0, 0)
	_, sov := slow.Transact(0, 0)
	if sov != 2*hov {
		t.Errorf("degraded overhead = %d, want %d", sov, 2*hov)
	}
	// Queueing behind the stretched occupancy.
	_, h2 := healthy.Transact(1, 0)
	_, s2 := slow.Transact(1, 0)
	if s2 <= h2 {
		t.Errorf("degraded queueing %d not beyond healthy %d", s2, h2)
	}
	if slow.LinkSlow(0) != 2 || slow.LinkSlow(1) != 1 {
		t.Errorf("link multipliers = %v/%v, want 2/1", slow.LinkSlow(0), slow.LinkSlow(1))
	}
}

// TestLinkDeadDominates checks a dead link imposes DeadLinkFactor and never
// heals back to a mere degrade.
func TestLinkDeadDominates(t *testing.T) {
	b := pairedBus(t)
	b.SetLinkDead(0)
	b.SetLinkDegrade(0, 2) // must not soften the dead link
	if got := b.LinkSlow(0); got != DeadLinkFactor {
		t.Fatalf("dead link multiplier = %v, want %v", got, DeadLinkFactor)
	}
	base, _ := pairedBus(t).Transact(0, 0)
	_ = base
	_, ov := b.Transact(0, 0)
	want := uint64(float64(DefaultTiming().OverheadCPUCycles()) * DeadLinkFactor)
	if ov != want {
		t.Errorf("dead-link overhead = %d, want %d", ov, want)
	}
}

// TestLinkFaultOutsideGroupIsFree checks links outside a group's span do not
// slow it, and singleton groups stay off the bus entirely.
func TestLinkFaultOutsideGroupIsFree(t *testing.T) {
	b := pairedBus(t)
	b.SetLinkDead(2) // between slices 2 and 3: exterior to every group
	if _, ov := b.Transact(0, 0); ov != uint64(DefaultTiming().OverheadCPUCycles()) {
		t.Errorf("exterior dead link changed group {0,1} overhead: %d", ov)
	}
	if _, ov := b.Transact(2, 0); ov != 0 {
		t.Errorf("singleton slice paid bus overhead %d", ov)
	}
}

// TestFaultSurvivesReconfigure checks link state persists across Configure
// (hardware faults do not heal on reconfiguration) and applies to the new
// grouping.
func TestFaultSurvivesReconfigure(t *testing.T) {
	b := pairedBus(t)
	b.SetLinkDegrade(2, 3)
	g, err := topology.Private(4).MergeGroups(2, 3) // {0},{1},{2,3}
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Configure(g); err != nil {
		t.Fatal(err)
	}
	_, ov := b.Transact(2, 0)
	want := uint64(float64(DefaultTiming().OverheadCPUCycles()) * 3)
	if ov != want {
		t.Errorf("post-reconfig overhead = %d, want %d", ov, want)
	}
}
