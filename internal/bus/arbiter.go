// Package bus implements MorphCache's reconfigurable interconnect (§3): a
// segmented bus per cache level whose adjacent segments are connected or
// isolated by switches, with hierarchical round-robin arbitration performed
// by a binary tree of identical 2-input arbiters (Fig. 9–11).
//
// Two views are provided:
//
//   - a functional, cycle-stepped model (ArbiterTree, SegmentedBus) that
//     reproduces the protocol — per-node Lastgnt round-robin state, Fwdreq
//     propagation up to each segment group's root, one grant per isolated
//     group per transaction, and the 3-bus-cycle request/grant/transfer
//     timing — and is used both by the hierarchy's contention accounting and
//     by the protocol property tests; and
//
//   - an analytical physical model (physical.go) that derives the bus clock
//     and the CPU-cycle overhead of a merged-slice access from the Table 1
//     technology parameters and the Fig. 12 floorplan.
package bus

import (
	"fmt"
	"math/bits"

	"morphcache/internal/topology"
)

// ArbiterTree is the hierarchy of 2-input arbiters over n leaves (cache
// slices), n a power of two. Node 1 is the root; node i has children 2i and
// 2i+1; the leaves of the subtree rooted at a level-k node (k = 1 at the
// leaf-most arbiter level) are the 2^k slices it covers.
//
// Segmentation is expressed exactly as in the paper: each arbiter's Fwdreq
// input says whether it forwards its request upward. Arbiters whose span
// lies strictly inside a segment group forward; the arbiter whose span
// equals the group is that group's root and grants autonomously. Groups must
// therefore be aligned power-of-two runs — the same reconfiguration space
// the switches can isolate.
type ArbiterTree struct {
	leaves int
	// lastGnt[i] is the round-robin state of internal node i (1-based heap
	// indexing): 0 means input 0 (left) was granted last.
	lastGnt []uint8
	// rootNode[g] is the heap index of group g's root arbiter, or 0 for a
	// singleton group (which needs no arbitration).
	rootNode []int
	grouping topology.Grouping
}

// NewArbiterTree builds a tree over n leaves (n must be a power of two ≥ 1)
// configured with every slice private.
func NewArbiterTree(n int) *ArbiterTree {
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("bus: leaf count %d not a power of two", n))
	}
	t := &ArbiterTree{
		leaves:  n,
		lastGnt: make([]uint8, 2*n), // nodes 1..n-1 used; sized generously
	}
	t.Configure(topology.Private(n))
	return t
}

// Leaves returns the number of leaves.
func (t *ArbiterTree) Leaves() int { return t.leaves }

// NumArbiters returns the number of 2-input arbiters in a full tree over
// the leaves (n-1), matching the paper's counts: 7 for 8 slices, 15 for 16.
func (t *ArbiterTree) NumArbiters() int { return t.leaves - 1 }

// Levels returns the tree depth in arbiter levels: 3 for 8 leaves, 4 for 16.
func (t *ArbiterTree) Levels() int { return bits.Len(uint(t.leaves)) - 1 }

// Configure programs the Fwdreq/Share signals for a new segment grouping.
// Every group must be an aligned power-of-two contiguous run.
func (t *ArbiterTree) Configure(g topology.Grouping) error {
	if g.N() != t.leaves {
		return fmt.Errorf("bus: grouping over %d slices, tree has %d", g.N(), t.leaves)
	}
	if !g.IsBuddyGrouping() {
		return fmt.Errorf("bus: grouping %v not aligned power-of-two segments", g)
	}
	roots := make([]int, g.NumGroups())
	for gi := range roots {
		m := g.Members(gi)
		sz := len(m)
		if sz == 1 {
			roots[gi] = 0
			continue
		}
		// The node covering span [m[0], m[0]+sz) at height log2(sz): heap
		// index = leaves/sz + m[0]/sz.
		roots[gi] = t.leaves/sz + m[0]/sz
	}
	t.rootNode = roots
	t.grouping = g
	return nil
}

// Grouping returns the current segment configuration.
func (t *ArbiterTree) Grouping() topology.Grouping { return t.grouping }

// Arbitrate performs one arbitration round: given the per-leaf request
// lines, it returns the granted leaf for each group (indexed by group id;
// -1 if the group has no requester). Round-robin Lastgnt state is updated at
// every arbiter that made a choice, exactly as the Fig. 10 arbiter does.
func (t *ArbiterTree) Arbitrate(req []bool) []int {
	if len(req) != t.leaves {
		panic("bus: request vector length mismatch")
	}
	winners := make([]int, t.grouping.NumGroups())
	for gi := range winners {
		m := t.grouping.Members(gi)
		if len(m) == 1 {
			if req[m[0]] {
				winners[gi] = m[0]
			} else {
				winners[gi] = -1
			}
			continue
		}
		winners[gi] = t.grantDown(t.rootNode[gi], req)
	}
	return winners
}

// grantDown walks from an arbiter down to a requesting leaf, applying
// round-robin at each node with two pending request inputs.
func (t *ArbiterTree) grantDown(node int, req []bool) int {
	lo, hi := t.span(node)
	if hi-lo == 1 {
		if req[lo] {
			return lo
		}
		return -1
	}
	left, right := 2*node, 2*node+1
	lReq := t.anyReq(left, req)
	rReq := t.anyReq(right, req)
	switch {
	case !lReq && !rReq:
		return -1
	case lReq && !rReq:
		t.lastGnt[node] = 0
		return t.grantDown(left, req)
	case !lReq && rReq:
		t.lastGnt[node] = 1
		return t.grantDown(right, req)
	default:
		// Both request: grant the input not granted last time.
		if t.lastGnt[node] == 0 {
			t.lastGnt[node] = 1
			return t.grantDown(right, req)
		}
		t.lastGnt[node] = 0
		return t.grantDown(left, req)
	}
}

// span returns the leaf interval [lo, hi) covered by a heap node. Nodes with
// index >= leaves are leaves themselves.
func (t *ArbiterTree) span(node int) (lo, hi int) {
	level := bits.Len(uint(node)) - 1 // root is level 0
	size := t.leaves >> uint(level)
	first := (node - 1<<uint(level)) * size
	return first, first + size
}

func (t *ArbiterTree) anyReq(node int, req []bool) bool {
	lo, hi := t.span(node)
	for i := lo; i < hi; i++ {
		if req[i] {
			return true
		}
	}
	return false
}

// Timing collects the bus transaction cycle counts of §3.2.
type Timing struct {
	// RequestGrantCycles is the bus cycles between raising a request and
	// receiving the grant (2 in the paper).
	RequestGrantCycles int
	// TransferCycles is the data transfer time for one 64-byte block over
	// the 64-byte-wide bus (1 cycle).
	TransferCycles int
	// CPUPerBusCycle is the core-to-bus clock ratio (5 GHz core / 1 GHz bus).
	CPUPerBusCycle int
	// Pipelined overlaps the first cycles of the next arbitration with the
	// previous data transfer, reducing the per-transaction overhead from 15
	// to 10 CPU cycles (§3.2 footnote).
	Pipelined bool
}

// DefaultTiming returns the paper's timing: 2+1 bus cycles at a 1 GHz bus
// under a 5 GHz core, unpipelined.
func DefaultTiming() Timing {
	return Timing{RequestGrantCycles: 2, TransferCycles: 1, CPUPerBusCycle: 5}
}

// BusCycles returns the bus cycles one transaction occupies.
func (t Timing) BusCycles() int { return t.RequestGrantCycles + t.TransferCycles }

// OverheadCPUCycles returns the CPU-cycle overhead a merged (remote) slice
// access pays for the segmented bus: 15 unpipelined, 10 pipelined.
func (t Timing) OverheadCPUCycles() int {
	c := t.BusCycles() * t.CPUPerBusCycle
	if t.Pipelined {
		c -= t.CPUPerBusCycle
	}
	return c
}

// SegmentedBus models one level's segmented bus with per-group serialization
// (a group's segments form one shared medium; isolated groups proceed in
// parallel, which is the bandwidth benefit of segmentation).
type SegmentedBus struct {
	tree   *ArbiterTree
	timing Timing
	// busyUntil[g] is the CPU cycle at which group g's bus frees up.
	busyUntil []uint64
	stats     BusStats
	// linkSlow[l] is the fault-injected occupancy multiplier of the link
	// between slices l and l+1: 1 healthy, >1 degraded, DeadLinkFactor
	// dead (traffic is re-routed/retried over the stalled segment). Nil
	// until the first fault — the healthy path never consults it.
	linkSlow []float64
	// groupSlow[g] caches the worst multiplier over group g's interior
	// links; recomputed on Configure and on link-state changes.
	groupSlow []float64
}

// DeadLinkFactor is the occupancy multiplier a dead link imposes on its
// group's transactions: the segment's switches must re-route and retry, so
// every crossing effectively serializes over a crawling maintenance path.
const DeadLinkFactor = 16.0

// BusStats aggregates contention accounting.
type BusStats struct {
	Transactions uint64
	// WaitCPUCycles is the total CPU cycles transactions spent queued behind
	// earlier owners of their segment group.
	WaitCPUCycles uint64
}

// NewSegmentedBus builds a bus over n slices with the given timing.
func NewSegmentedBus(n int, timing Timing) *SegmentedBus {
	return &SegmentedBus{
		tree:      NewArbiterTree(n),
		timing:    timing,
		busyUntil: make([]uint64, n),
	}
}

// Configure reprograms the switches for a new grouping and clears pending
// occupancy (a reconfiguration quiesces the bus).
func (b *SegmentedBus) Configure(g topology.Grouping) error {
	if err := b.tree.Configure(g); err != nil {
		return err
	}
	if need := g.NumGroups(); cap(b.busyUntil) >= need {
		b.busyUntil = b.busyUntil[:need]
	} else {
		b.busyUntil = make([]uint64, need)
	}
	for i := range b.busyUntil {
		b.busyUntil[i] = 0
	}
	b.recomputeGroupSlow()
	return nil
}

// SetLinkDead marks the link between slices link and link+1 as failed.
func (b *SegmentedBus) SetLinkDead(link int) { b.setLinkSlow(link, DeadLinkFactor) }

// SetLinkDegrade sets the link's occupancy multiplier (clamped to >= 1).
// It never downgrades a dead link back to merely slow.
func (b *SegmentedBus) SetLinkDegrade(link int, factor float64) {
	if factor < 1 {
		factor = 1
	}
	b.setLinkSlow(link, factor)
}

// LinkSlow returns the link's current multiplier (1 when healthy).
func (b *SegmentedBus) LinkSlow(link int) float64 {
	if b.linkSlow == nil || link < 0 || link >= len(b.linkSlow) {
		return 1
	}
	return b.linkSlow[link]
}

func (b *SegmentedBus) setLinkSlow(link int, factor float64) {
	if link < 0 || link >= b.tree.Leaves()-1 {
		return
	}
	if b.linkSlow == nil {
		b.linkSlow = make([]float64, b.tree.Leaves()-1)
		for i := range b.linkSlow {
			b.linkSlow[i] = 1
		}
	}
	if factor > b.linkSlow[link] {
		b.linkSlow[link] = factor
	}
	b.recomputeGroupSlow()
}

// recomputeGroupSlow refreshes the per-group worst-link cache for the
// current grouping. A group spanning slices [lo, hi] is slowed by the worst
// of its interior links lo..hi-1.
func (b *SegmentedBus) recomputeGroupSlow() {
	if b.linkSlow == nil {
		return
	}
	g := b.tree.grouping
	if need := g.NumGroups(); cap(b.groupSlow) >= need {
		b.groupSlow = b.groupSlow[:need]
	} else {
		b.groupSlow = make([]float64, need)
	}
	for gi := range b.groupSlow {
		m := g.Members(gi)
		worst := 1.0
		for _, sl := range m[:len(m)-1] {
			if f := b.linkSlow[sl]; f > worst {
				worst = f
			}
		}
		b.groupSlow[gi] = worst
	}
}

// Tree exposes the arbiter tree (for tests and the physical model).
func (b *SegmentedBus) Tree() *ArbiterTree { return b.tree }

// Stats returns the accumulated contention counters.
func (b *SegmentedBus) Stats() BusStats { return b.stats }

// ResetStats zeroes the counters.
func (b *SegmentedBus) ResetStats() { b.stats = BusStats{} }

// Transact performs one bus transaction by the slice starting at CPU cycle
// `now`, returning the cycle at which the transfer completes and the CPU
// cycles of overhead incurred (arbitration + transfer + queueing). Singleton
// groups never use the bus and return zero overhead.
func (b *SegmentedBus) Transact(slice int, now uint64) (done uint64, overhead uint64) {
	g := b.tree.grouping.GroupOf(slice)
	if b.tree.grouping.GroupSize(g) == 1 {
		return now, 0
	}
	start := now
	if b.busyUntil[g] > start {
		start = b.busyUntil[g]
	}
	wait := start - now
	occupancy := uint64(b.timing.BusCycles() * b.timing.CPUPerBusCycle)
	latency := uint64(b.timing.OverheadCPUCycles())
	if b.groupSlow != nil {
		// A faulted link inside the group stretches both the occupancy
		// and the transfer latency by the worst link's multiplier.
		if f := b.groupSlow[g]; f > 1 {
			occupancy = uint64(float64(occupancy) * f)
			latency = uint64(float64(latency) * f)
		}
	}
	if b.timing.Pipelined && occupancy > uint64(b.timing.CPUPerBusCycle) {
		// The next transaction's arbitration overlaps this transfer, so the
		// bus frees up one bus cycle earlier for the successor.
		b.busyUntil[g] = start + occupancy - uint64(b.timing.CPUPerBusCycle)
	} else {
		b.busyUntil[g] = start + occupancy
	}
	done = start + latency
	b.stats.Transactions++
	b.stats.WaitCPUCycles += wait
	return done, done - now
}
