package bus

import (
	"math"
	"testing"

	"morphcache/internal/topology"
)

func TestTreeCounts(t *testing.T) {
	t8 := NewArbiterTree(8)
	if t8.NumArbiters() != 7 || t8.Levels() != 3 {
		t.Fatalf("8-leaf tree: %d arbiters %d levels, want 7/3 (Table 2)", t8.NumArbiters(), t8.Levels())
	}
	t16 := NewArbiterTree(16)
	if t16.NumArbiters() != 15 || t16.Levels() != 4 {
		t.Fatalf("16-leaf tree: %d arbiters %d levels, want 15/4 (Table 2)", t16.NumArbiters(), t16.Levels())
	}
}

func TestTreeRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two leaves should panic")
		}
	}()
	NewArbiterTree(6)
}

func TestConfigureRejectsNonBuddy(t *testing.T) {
	tree := NewArbiterTree(8)
	g, err := topology.FromGroups(8, [][]int{{0}, {1, 2}, {3}, {4}, {5}, {6}, {7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Configure(g); err == nil {
		t.Fatal("misaligned segment group should be rejected")
	}
}

func TestSingleRequesterWins(t *testing.T) {
	tree := NewArbiterTree(8)
	if err := tree.Configure(topology.Shared(8)); err != nil {
		t.Fatal(err)
	}
	req := make([]bool, 8)
	req[5] = true
	w := tree.Arbitrate(req)
	if len(w) != 1 || w[0] != 5 {
		t.Fatalf("grants %v, want [5]", w)
	}
	// No requesters: no grant.
	if w := tree.Arbitrate(make([]bool, 8)); w[0] != -1 {
		t.Fatalf("idle bus granted %v", w)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	tree := NewArbiterTree(8)
	if err := tree.Configure(topology.Shared(8)); err != nil {
		t.Fatal(err)
	}
	req := make([]bool, 8)
	for i := range req {
		req[i] = true
	}
	counts := make([]int, 8)
	for i := 0; i < 64; i++ {
		w := tree.Arbitrate(req)
		counts[w[0]]++
	}
	for leaf, c := range counts {
		if c != 8 {
			t.Fatalf("leaf %d granted %d of 64 rounds, want 8 (hierarchical round robin)", leaf, c)
		}
	}
}

func TestNoStarvation(t *testing.T) {
	// A lone requester against a heavy neighbor must be served within the
	// group-size bound.
	tree := NewArbiterTree(8)
	if err := tree.Configure(topology.Shared(8)); err != nil {
		t.Fatal(err)
	}
	req := []bool{true, false, false, false, false, false, false, true}
	for i := 0; i < 4; i++ {
		got7 := false
		for j := 0; j < 2; j++ { // two requesters -> served at least every 2 rounds
			if tree.Arbitrate(req)[0] == 7 {
				got7 = true
			}
		}
		if !got7 {
			t.Fatal("requester 7 starved")
		}
	}
}

func TestIsolatedSegmentsGrantInParallel(t *testing.T) {
	tree := NewArbiterTree(8)
	g, err := topology.Uniform(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Configure(g); err != nil {
		t.Fatal(err)
	}
	req := make([]bool, 8)
	for i := range req {
		req[i] = true
	}
	w := tree.Arbitrate(req)
	if len(w) != 4 {
		t.Fatalf("4 isolated segments should produce 4 grants, got %v", w)
	}
	for gi, leaf := range w {
		if leaf < gi*2 || leaf > gi*2+1 {
			t.Fatalf("group %d granted leaf %d outside its segment", gi, leaf)
		}
	}
}

func TestTimingNumbers(t *testing.T) {
	tm := DefaultTiming()
	if tm.BusCycles() != 3 {
		t.Fatalf("transaction = %d bus cycles, want 3 (§3.2)", tm.BusCycles())
	}
	if tm.OverheadCPUCycles() != 15 {
		t.Fatalf("overhead = %d CPU cycles, want 15", tm.OverheadCPUCycles())
	}
	tm.Pipelined = true
	if tm.OverheadCPUCycles() != 10 {
		t.Fatalf("pipelined overhead = %d, want 10 (§3.2 footnote)", tm.OverheadCPUCycles())
	}
}

func TestSegmentedBusOccupancy(t *testing.T) {
	b := NewSegmentedBus(8, DefaultTiming())
	if err := b.Configure(topology.Shared(8)); err != nil {
		t.Fatal(err)
	}
	done1, ov1 := b.Transact(0, 100)
	if ov1 != 15 || done1 != 115 {
		t.Fatalf("first transaction done=%d overhead=%d, want 115/15", done1, ov1)
	}
	// A second transaction at the same time queues behind the first.
	_, ov2 := b.Transact(1, 100)
	if ov2 <= ov1 {
		t.Fatalf("queued transaction overhead %d should exceed %d", ov2, ov1)
	}
	st := b.Stats()
	if st.Transactions != 2 || st.WaitCPUCycles == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSegmentedBusPrivateFree(t *testing.T) {
	b := NewSegmentedBus(8, DefaultTiming())
	if err := b.Configure(topology.Private(8)); err != nil {
		t.Fatal(err)
	}
	if _, ov := b.Transact(3, 50); ov != 0 {
		t.Fatalf("private slice should not use the bus, overhead %d", ov)
	}
}

func TestSegmentedBusIsolation(t *testing.T) {
	b := NewSegmentedBus(8, DefaultTiming())
	g, _ := topology.Uniform(8, 4)
	if err := b.Configure(g); err != nil {
		t.Fatal(err)
	}
	b.Transact(0, 100) // occupies group {0-3}
	if _, ov := b.Transact(4, 100); ov != 15 {
		t.Fatalf("isolated group should not queue, overhead %d", ov)
	}
}

func TestPhysicalModel(t *testing.T) {
	rep := Characterize(DefaultTech(), DefaultFloorplan())
	if rep.L2.NumArbiters != 7 || rep.L3.NumArbiters != 15 {
		t.Fatalf("arbiter counts %d/%d, want 7/15 (Table 2)", rep.L2.NumArbiters, rep.L3.NumArbiters)
	}
	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*want
	}
	if !within(rep.L2.TotalAreaUM2, 160.5, 0.01) || !within(rep.L3.TotalAreaUM2, 343.9, 0.01) {
		t.Fatalf("areas %.1f/%.1f, want 160.5/343.9", rep.L2.TotalAreaUM2, rep.L3.TotalAreaUM2)
	}
	if !within(rep.L2.ReqWireNs, 0.31, 0.15) || !within(rep.L3.ReqWireNs, 0.40, 0.15) {
		t.Fatalf("request wire delays %.2f/%.2f, want ~0.31/0.40", rep.L2.ReqWireNs, rep.L3.ReqWireNs)
	}
	if !within(rep.MaxPathNs, 0.89, 0.1) {
		t.Fatalf("max path %.2f ns, want ~0.89", rep.MaxPathNs)
	}
	if !within(rep.MaxBusGHz, 1.12, 0.1) {
		t.Fatalf("max frequency %.2f GHz, want ~1.12", rep.MaxBusGHz)
	}
	if rep.OverheadCPUCycles != 15 || rep.PipelinedOverheadCPUCycles != 10 {
		t.Fatalf("overheads %d/%d, want 15/10", rep.OverheadCPUCycles, rep.PipelinedOverheadCPUCycles)
	}
	if rep.TransactionBusCycles != 3 {
		t.Fatalf("bus cycles %d, want 3", rep.TransactionBusCycles)
	}
}

func TestArbitrateLengthPanics(t *testing.T) {
	tree := NewArbiterTree(8)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong request vector length should panic")
		}
	}()
	tree.Arbitrate(make([]bool, 4))
}

func TestCrossbarAreaDominates(t *testing.T) {
	tech := DefaultTech()
	rep := Characterize(tech, DefaultFloorplan())
	xbar := CrossbarAreaUM2(tech, 16)
	treeArea := rep.L3.TotalAreaUM2
	if xbar < 10*treeArea {
		t.Fatalf("a 16-port crossbar (%.0f um^2) should dwarf the arbiter tree (%.0f um^2)", xbar, treeArea)
	}
}
