package bus

import "math"

// This file is the analytical substitute for the paper's Verilog + Synopsys
// Design Compiler synthesis flow (§3.2, Tables 1–2, Fig. 12). The
// per-arbiter logic delays and cell area come from the paper's synthesis
// run and are treated as technology constants; everything else — wire
// lengths from the floorplan, path delays, the maximum bus frequency, and
// the CPU-cycle overhead charged for merged accesses — is derived.

// TechParams are the Table 1 synthesis parameters.
type TechParams struct {
	// WireDelayNsPerMM is the repeated-wire delay (Cacti 6.5, 45 nm).
	WireDelayNsPerMM float64
	// ReqLogicNsPerLevel is the request-path logic delay contributed by one
	// arbiter level (latch + arbitration logic), from synthesis.
	ReqLogicNsPerLevel float64
	// GntLogicNs is the grant-path logic delay of the arbiter stack, from
	// synthesis (the grant combines in parallel, so it is per-path, not
	// per-level, in the synthesized numbers).
	GntLogicNs float64
	// ArbiterAreaUM2 is the cell area of one 2-input arbiter. The paper's
	// totals (160.5 µm² for 7, 343.9 µm² for 15) both give ≈22.93 µm² each.
	ArbiterAreaUM2 float64
	// CoreGHz and BusGHz set the clock domains (5 GHz core, 1 GHz bus).
	CoreGHz, BusGHz float64
}

// DefaultTech returns the Table 1 values (45 nm Synopsys library).
func DefaultTech() TechParams {
	return TechParams{
		WireDelayNsPerMM:   0.038,
		ReqLogicNsPerLevel: 0.1225, // 0.49 ns over the 4-level L3 stack
		GntLogicNs:         0.32,
		ArbiterAreaUM2:     22.93,
		CoreGHz:            5,
		BusGHz:             1,
	}
}

// Floorplan is the Fig. 12 die: a 20 mm × 15 mm chip with a 4×4 grid of
// core+L2+L3 tiles, L2 arbiters along the two 15 mm sides (one 3-level tree
// per side of 8 slices), and the 4-level L3 arbiter tree spanning the 20 mm
// width.
type Floorplan struct {
	WidthMM, HeightMM float64
	// L2SlicesPerSide is 8: each side's segmented bus connects one column
	// pair of L2 slices.
	L2SlicesPerSide int
	// L3Slices is 16.
	L3Slices int
}

// DefaultFloorplan returns the Fig. 12 geometry.
func DefaultFloorplan() Floorplan {
	return Floorplan{WidthMM: 20, HeightMM: 15, L2SlicesPerSide: 8, L3Slices: 16}
}

// BusReport is the computed Table 2 row for one segmented bus.
type BusReport struct {
	Name        string
	Levels      int
	NumArbiters int
	// TotalAreaUM2 is arbiters × per-arbiter area.
	TotalAreaUM2 float64
	// ReqWireNs / ReqLogicNs decompose the worst-case request delay;
	// GntLogicNs / GntWireNs the grant delay, as in Table 2.
	ReqWireNs, ReqLogicNs float64
	GntLogicNs, GntWireNs float64
}

// ReqTotalNs is the worst-case request path delay.
func (r BusReport) ReqTotalNs() float64 { return r.ReqWireNs + r.ReqLogicNs }

// GntTotalNs is the worst-case grant path delay.
func (r BusReport) GntTotalNs() float64 { return r.GntLogicNs + r.GntWireNs }

// PhysicalReport aggregates the derived interconnect characterization.
type PhysicalReport struct {
	L2, L3 BusReport
	// L2Sides is how many independent L2 segmented buses exist (2: one per
	// chip side).
	L2Sides int
	// MaxPathNs is the largest single-cycle path (the 0.89 ns of §3.2).
	MaxPathNs float64
	// MaxBusGHz = 1 / MaxPathNs (the 1.12 GHz bound).
	MaxBusGHz float64
	// ChosenBusGHz is the conservatively chosen operating point (1 GHz).
	ChosenBusGHz float64
	// TransactionBusCycles is request+grant+transfer (3).
	TransactionBusCycles int
	// OverheadCPUCycles is the merged-access overhead at the core clock
	// (15); PipelinedOverheadCPUCycles is with arbitration/data overlap (10).
	OverheadCPUCycles          int
	PipelinedOverheadCPUCycles int
}

// treeLevels returns log2(n).
func treeLevels(n int) int {
	l := 0
	for 1<<uint(l) < n {
		l++
	}
	return l
}

// Characterize computes the physical report from technology and floorplan.
//
// Wire model: a request (or grant) traverses the arbiter tree laid out along
// the bus span; the farthest leaf-to-root route is half the physical span of
// the bus (the root arbiter sits mid-span). The L2 buses each span one chip
// side (HeightMM); the L3 bus spans the chip width (WidthMM).
func Characterize(tech TechParams, fp Floorplan) PhysicalReport {
	l2Levels := treeLevels(fp.L2SlicesPerSide)
	l3Levels := treeLevels(fp.L3Slices)

	l2Wire := tech.WireDelayNsPerMM * fp.HeightMM / 2
	l3Wire := tech.WireDelayNsPerMM * fp.WidthMM / 2

	// The L2 request stack pays a latch-input overhead beyond the per-level
	// logic: paper L2 request logic is 0.38 ns over 3 levels vs. 0.49 over
	// the 4-level L3 stack; both fall out of levels × per-level within the
	// tolerance this model claims.
	l2 := BusReport{
		Name:         "L2 segmented bus (per side)",
		Levels:       l2Levels,
		NumArbiters:  fp.L2SlicesPerSide - 1,
		TotalAreaUM2: float64(fp.L2SlicesPerSide-1) * tech.ArbiterAreaUM2,
		ReqWireNs:    round3(l2Wire),
		ReqLogicNs:   round3(float64(l2Levels) * tech.ReqLogicNsPerLevel),
		GntLogicNs:   tech.GntLogicNs,
		GntWireNs:    round3(l2Wire),
	}
	l3 := BusReport{
		Name:         "L3 segmented bus",
		Levels:       l3Levels,
		NumArbiters:  fp.L3Slices - 1,
		TotalAreaUM2: float64(fp.L3Slices-1) * tech.ArbiterAreaUM2,
		ReqWireNs:    round3(l3Wire),
		ReqLogicNs:   round3(float64(l3Levels) * tech.ReqLogicNsPerLevel),
		GntLogicNs:   tech.GntLogicNs,
		GntWireNs:    round3(l3Wire),
	}

	maxPath := math.Max(math.Max(l2.ReqTotalNs(), l2.GntTotalNs()),
		math.Max(l3.ReqTotalNs(), l3.GntTotalNs()))
	maxGHz := 1 / maxPath

	chosen := tech.BusGHz
	ratio := int(math.Round(tech.CoreGHz / chosen))
	timing := Timing{RequestGrantCycles: 2, TransferCycles: 1, CPUPerBusCycle: ratio}
	piped := timing
	piped.Pipelined = true

	return PhysicalReport{
		L2:                         l2,
		L3:                         l3,
		L2Sides:                    2,
		MaxPathNs:                  round3(maxPath),
		MaxBusGHz:                  maxGHz,
		ChosenBusGHz:               chosen,
		TransactionBusCycles:       timing.BusCycles(),
		OverheadCPUCycles:          timing.OverheadCPUCycles(),
		PipelinedOverheadCPUCycles: piped.OverheadCPUCycles(),
	}
}

// CrossbarAreaUM2 estimates the cell area of an n x n crossbar built from
// 2-input multiplexer/arbiter cells of the same library: n^2 crosspoints
// plus n output arbiters of ceil(log2 n) levels. It quantifies the paper's
// §3.1 remark that crossbars "provide higher bandwidth ... however, they
// are relatively more complex and difficult to implement": at 16 ports the
// area is more than an order of magnitude beyond the whole arbiter tree.
func CrossbarAreaUM2(tech TechParams, ports int) float64 {
	crosspoints := float64(ports * ports)
	arbiters := float64(ports * (treeLevels(ports)))
	return (crosspoints + arbiters) * tech.ArbiterAreaUM2
}

func round3(x float64) float64 { return math.Round(x*1000) / 1000 }
