// Package textplot renders small multi-series line charts as text, for the
// experiment harness's per-epoch figures (Fig. 2(a), Fig. 15). It is
// deliberately tiny: fixed-height charts, one rune per series, shared
// y-scale, an axis legend — enough to see curves cross in a terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	Points []float64
	// Rune marks the series on the canvas.
	Rune rune
}

// DefaultRunes are assigned to series without an explicit rune.
var DefaultRunes = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the series into a text chart of the given height (rows).
// All series must have equal length; the x axis is the point index.
func Render(series []Series, height int) (string, error) {
	if len(series) == 0 {
		return "", fmt.Errorf("textplot: no series")
	}
	n := len(series[0].Points)
	if n == 0 {
		return "", fmt.Errorf("textplot: empty series")
	}
	for _, s := range series[1:] {
		if len(s.Points) != n {
			return "", fmt.Errorf("textplot: series %q has %d points, want %d", s.Name, len(s.Points), n)
		}
	}
	if height < 2 {
		height = 2
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Points {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return "", fmt.Errorf("textplot: series %q contains a non-finite value", s.Name)
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1 // flat lines render on one row
	}

	// Canvas: rows x n columns (each point one column).
	canvas := make([][]rune, height)
	for r := range canvas {
		canvas[r] = []rune(strings.Repeat(" ", n))
	}
	rowOf := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(frac * float64(height-1)))
		return height - 1 - r // row 0 is the top
	}
	for si, s := range series {
		mark := s.Rune
		if mark == 0 {
			mark = DefaultRunes[si%len(DefaultRunes)]
		}
		for x, v := range s.Points {
			r := rowOf(v)
			if canvas[r][x] != ' ' && canvas[r][x] != mark {
				canvas[r][x] = '?' // collision: several series share the cell
			} else {
				canvas[r][x] = mark
			}
		}
	}

	var b strings.Builder
	for r, row := range canvas {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3f ", hi)
		case height - 1:
			label = fmt.Sprintf("%7.3f ", lo)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("\n")
	}
	b.WriteString("        +")
	b.WriteString(strings.Repeat("-", n))
	b.WriteString("\n")
	// Legend.
	b.WriteString("        ")
	for si, s := range series {
		mark := s.Rune
		if mark == 0 {
			mark = DefaultRunes[si%len(DefaultRunes)]
		}
		fmt.Fprintf(&b, " %c=%s", mark, s.Name)
	}
	b.WriteString("\n")
	return b.String(), nil
}
