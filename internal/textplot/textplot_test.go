package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out, err := Render([]Series{
		{Name: "up", Points: []float64{0, 2, 2, 3}},
		{Name: "down", Points: []float64{3, 2, 1, 0}},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*=up") || !strings.Contains(out, "o=down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 6 {
		t.Fatalf("chart too short:\n%s", out)
	}
	// Extremes labeled on the axis.
	if !strings.Contains(out, "3.000") || !strings.Contains(out, "0.000") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	// The crossing point collides.
	if !strings.Contains(out, "?") {
		t.Fatalf("crossing series should collide somewhere:\n%s", out)
	}
}

func TestRenderFlatSeries(t *testing.T) {
	out, err := Render([]Series{{Name: "flat", Points: []float64{1, 1, 1}}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	canvas := out[:strings.Index(out, "+")]
	if strings.Count(canvas, "*") != 3 {
		t.Fatalf("flat line should render every point:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(nil, 5); err == nil {
		t.Fatal("no series accepted")
	}
	if _, err := Render([]Series{{Name: "e"}}, 5); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, err := Render([]Series{
		{Name: "a", Points: []float64{1, 2}},
		{Name: "b", Points: []float64{1}},
	}, 5); err == nil {
		t.Fatal("ragged series accepted")
	}
	if _, err := Render([]Series{{Name: "nan", Points: []float64{math.NaN()}}}, 5); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestRenderCustomRune(t *testing.T) {
	out, err := Render([]Series{{Name: "m", Points: []float64{1, 2}, Rune: 'M'}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "M=m") {
		t.Fatalf("custom rune ignored:\n%s", out)
	}
}
