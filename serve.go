package morphcache

import (
	"morphcache/internal/core"
	"morphcache/internal/obs"
	"morphcache/internal/serve"
)

// Serve-mode re-exports: the embeddable policy-governed cache server
// (internal/serve; DESIGN.md §12). The aliases let programs outside this
// module embed the server — internal packages are unnameable to them, but
// an exported alias of an internal type is fully usable.
//
//	cache, err := morphcache.NewServeCache(morphcache.ServeConfig{
//		Tenants: []string{"alpha", "beta"},
//	}, nil)
//	cache.Register(mux) // or mount on an obs admin mux
//	go cache.RunEpochs(ctx)
//
// The controller that repartitions tenants is the same core.Controller the
// simulator runs; both drive it through the extracted PolicyInterface.
type (
	// ServeConfig sizes the serve-mode cache and names its tenants.
	ServeConfig = serve.Config
	// ServeCache is the sharded multi-tenant cache under MorphCache control.
	ServeCache = serve.Cache
	// PolicyInterface is the shared policy contract (core.Policy) both the
	// simulator and the serve-mode cache consume.
	PolicyInterface = core.Policy
	// PolicyMachine is the surface a policy governs (core.Machine): the
	// simulated hierarchy and the serve-mode cache both implement it.
	PolicyMachine = core.Machine
)

// NewServeCache builds a serve-mode cache; reg may be nil (metrics stay
// private). See serve.New.
func NewServeCache(cfg ServeConfig, reg *obs.Registry) (*ServeCache, error) {
	return serve.New(cfg, reg)
}
