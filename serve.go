package morphcache

import (
	"morphcache/internal/core"
	"morphcache/internal/fault"
	"morphcache/internal/obs"
	"morphcache/internal/serve"
	"morphcache/internal/wal"
)

// Serve-mode re-exports: the embeddable policy-governed cache server
// (internal/serve; DESIGN.md §12). The aliases let programs outside this
// module embed the server — internal packages are unnameable to them, but
// an exported alias of an internal type is fully usable.
//
//	cache, err := morphcache.NewServeCache(morphcache.ServeConfig{
//		Tenants: []string{"alpha", "beta"},
//	}, nil)
//	cache.Register(mux) // or mount on an obs admin mux
//	go cache.RunEpochs(ctx)
//
// The controller that repartitions tenants is the same core.Controller the
// simulator runs; both drive it through the extracted PolicyInterface.
type (
	// ServeConfig sizes the serve-mode cache and names its tenants.
	ServeConfig = serve.Config
	// ServeCache is the sharded multi-tenant cache under MorphCache control.
	ServeCache = serve.Cache
	// PolicyInterface is the shared policy contract (core.Policy) both the
	// simulator and the serve-mode cache consume.
	PolicyInterface = core.Policy
	// PolicyMachine is the surface a policy governs (core.Machine): the
	// simulated hierarchy and the serve-mode cache both implement it.
	PolicyMachine = core.Machine
	// ServePersistConfig enables crash-safe WAL persistence on a
	// ServeConfig (serve.PersistConfig; DESIGN.md §14).
	ServePersistConfig = serve.PersistConfig
	// ServeAdmissionConfig bounds request admission on a ServeConfig
	// (serve.AdmissionConfig): per-tenant token buckets, a global
	// in-flight cap, and per-request deadlines.
	ServeAdmissionConfig = serve.AdmissionConfig
	// FsyncPolicy selects the WAL durability mode (wal.FsyncPolicy).
	FsyncPolicy = wal.FsyncPolicy
	// ServeFaultSpec shapes a seed-derived serve-layer chaos plan
	// (fault.ServeSpec) for ServeConfig.Faults.
	ServeFaultSpec = fault.ServeSpec
	// ServeFaultPlan is a fault-injection schedule (fault.Plan); the same
	// type the simulator's Config.Faults consumes.
	ServeFaultPlan = fault.Plan
	// ServeObsConfig turns on request-level observability on a ServeConfig
	// (serve.ObsConfig; DESIGN.md §15): structured logging, SLO burn-rate
	// tracking, request spans, and the decision audit ring.
	ServeObsConfig = serve.ObsConfig
	// ServeDecisionRecord is one decision audit record (serve.DecisionRecord)
	// as served by GET /decisions and the /events SSE stream.
	ServeDecisionRecord = serve.DecisionRecord
	// ServeHealthView is the verbose health detail (serve.HealthView)
	// returned by ServeCache.HealthDetail and /healthz?verbose=1.
	ServeHealthView = serve.HealthView
)

// WAL fsync policies (see wal.FsyncPolicy).
const (
	// FsyncAlways syncs every acknowledged write (the default).
	FsyncAlways = wal.FsyncAlways
	// FsyncInterval syncs on a background cadence.
	FsyncInterval = wal.FsyncInterval
	// FsyncNever leaves syncing to the OS.
	FsyncNever = wal.FsyncNever
)

// NewServeFaultPlan derives a deterministic serve-layer chaos plan
// (shard stalls, WAL write errors, disk-full windows) from a seed; see
// fault.NewServePlan.
func NewServeFaultPlan(seed uint64, spec ServeFaultSpec) (*ServeFaultPlan, error) {
	return fault.NewServePlan(seed, spec)
}

// NewServeCache builds a serve-mode cache; reg may be nil (metrics stay
// private). See serve.New.
func NewServeCache(cfg ServeConfig, reg *obs.Registry) (*ServeCache, error) {
	return serve.New(cfg, reg)
}
