// Package morphcache is a trace-driven simulator of MorphCache, the
// reconfigurable adaptive multi-level cache hierarchy of Srikantaiah et
// al. (HPCA 2011), together with every baseline the paper evaluates
// against: arbitrary static (x:y:z) topologies, PIPP and DSR extended to
// two cache levels, and the per-epoch ideal offline scheme.
//
// This root package is the high-level entry point: it wires the calibrated
// workload models (synthetic SPEC CPU 2006 / PARSEC stand-ins parameterized
// by the paper's Table 4), the three-level inclusive cache hierarchy, the
// segmented-bus interconnect model, and the MorphCache controller into
// one-call experiment runners. The sub-systems live in internal/ packages:
//
//	internal/cache      set-associative slices (LRU, tree-PLRU)
//	internal/acfv       Active Cache Footprint Vector hardware model (§2.1)
//	internal/topology   (x:y:z) topologies, groupings, buddy operations
//	internal/bus        segmented bus, arbiter tree, physical model (§3)
//	internal/hierarchy  inclusive L1/L2/L3 system with merged groups
//	internal/core       the MorphCache controller (§2)
//	internal/baselines  pipp, dsr, offline
//	internal/workload   Table 4/5 benchmark models and mixes
//	internal/sim        epoch-based engine and metrics
//
// The quickstart example (examples/quickstart) shows typical use:
//
//	cfg := morphcache.LabConfig()
//	res, err := morphcache.RunMorphCache(cfg, morphcache.Mix("MIX 01"))
//	base, err := morphcache.RunStatic(cfg, "(16:1:1)", morphcache.Mix("MIX 01"))
//	fmt.Println(res.Throughput / base.Throughput)
package morphcache

import (
	"context"
	"fmt"
	"time"

	"morphcache/internal/baselines/dsr"
	"morphcache/internal/baselines/offline"
	"morphcache/internal/baselines/pipp"
	"morphcache/internal/core"
	"morphcache/internal/fault"
	"morphcache/internal/hierarchy"
	"morphcache/internal/metrics"
	"morphcache/internal/obs"
	"morphcache/internal/runner"
	"morphcache/internal/sim"
	"morphcache/internal/telemetry"
	"morphcache/internal/topology"
	"morphcache/internal/workload"
)

// Config sizes one experiment. The zero value is not valid; start from
// LabConfig (the calibrated scaled system all experiments use) or
// PaperConfig (the full Table 3 capacities) and adjust.
type Config struct {
	// Cores is the CMP size (power of two; the paper evaluates 16 and 8).
	Cores int
	// Scale divides every cache capacity (L1 by Scale/4) and the workload
	// footprints by the same factor, preserving capacity-pressure ratios
	// while keeping runs fast. 1 = full Table 3 sizes.
	Scale int
	// Epochs is the number of measured reconfiguration intervals;
	// WarmupEpochs run first, unmeasured.
	Epochs, WarmupEpochs int
	// EpochCycles is the interval length in CPU cycles (the scaled
	// analogue of the paper's 300M-cycle interval).
	EpochCycles uint64
	// Seed drives all workload generation deterministically.
	Seed uint64
	// Morph configures the controller (zero value: DefaultOptions).
	Morph core.Options
	// Telemetry, when true, attaches a per-run telemetry.Log — per-epoch,
	// per-core records plus every reconfiguration event — to each Result.
	// Off by default: nothing is recorded and the hot path pays nothing.
	// Simulation results are identical either way.
	Telemetry bool
	// Faults, when non-nil and non-empty, is a deterministic fault plan
	// (see internal/fault): each event damages the hierarchy at the start
	// of its epoch. Only hierarchy-backed policies (static, morph,
	// morph-nodegrade) accept faults; PIPP/DSR runs reject them. Nil (the
	// default) leaves every run byte-identical to a fault-free build.
	Faults *fault.Plan
	// Sampled, when non-nil, switches the run to sampled simulation: the
	// measured epochs are clustered into phases, one representative window
	// per phase is simulated, and the Result is the weighted reconstruction
	// (with Result.SampledReport attached; DESIGN.md §13). Incompatible
	// with Faults. Nil (the default) simulates every epoch as always.
	Sampled *SampledConfig
	// Bandit, when non-nil, configures the bandit meta-policy used by
	// RunBandit and Policy "bandit" (see internal/baselines/bandit and
	// DESIGN.md §16): arm list, selection strategy, reward mode, and window
	// size. Incompatible with Faults and Sampled. Nil runs the defaults.
	// Non-bandit entry points reject a set Bandit instead of ignoring it.
	Bandit *BanditConfig
	// Observer, when non-nil, attaches live observability hooks to the run:
	// per-level access counters and latency histograms, controller decision
	// counts, phase spans when its tracer is on, and — with Telemetry also
	// set — per-epoch latency quantile summaries in the epoch log. Nil (the
	// default) observes nothing and leaves results and reports
	// byte-identical (DESIGN.md §10). Observation never changes simulation
	// results.
	Observer *obs.Observer
}

// Validate rejects configurations the simulator cannot run meaningfully:
// a non-power-of-two core count, non-positive scale, epoch count, or epoch
// length, a negative warmup, or a fault plan that does not fit the
// machine. Every Run* entry point calls it, so a bad configuration fails
// fast with a descriptive error instead of panicking mid-run.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.Cores&(c.Cores-1) != 0 {
		return fmt.Errorf("morphcache: Cores must be a positive power of two, got %d", c.Cores)
	}
	if c.Scale < 1 {
		return fmt.Errorf("morphcache: Scale must be >= 1, got %d", c.Scale)
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("morphcache: Epochs must be positive, got %d", c.Epochs)
	}
	if c.WarmupEpochs < 0 {
		return fmt.Errorf("morphcache: WarmupEpochs must be >= 0, got %d", c.WarmupEpochs)
	}
	if c.EpochCycles == 0 {
		return fmt.Errorf("morphcache: EpochCycles must be positive")
	}
	if err := c.Faults.Validate(c.Cores); err != nil {
		return fmt.Errorf("morphcache: %w", err)
	}
	if c.Sampled != nil {
		if err := c.Sampled.Validate(); err != nil {
			return fmt.Errorf("morphcache: %w", err)
		}
		if !c.Faults.Empty() {
			return fmt.Errorf("morphcache: Sampled and Faults are incompatible (fault plans damage specific epochs; a sampled run does not simulate them all)")
		}
	}
	if c.Bandit != nil {
		if err := c.Bandit.Validate(); err != nil {
			return fmt.Errorf("morphcache: %w", err)
		}
		if !c.Faults.Empty() {
			return fmt.Errorf("morphcache: Bandit and Faults are incompatible (fault plans damage specific absolute epochs; bandit windows replay epochs on fresh targets and would re-inject the damage per window)")
		}
		if c.Sampled != nil {
			return fmt.Errorf("morphcache: Bandit and Sampled are incompatible (both re-slice the run into windows; the bandit needs the full epoch sequence to learn from)")
		}
	}
	return nil
}

// LabConfig returns the calibrated experiment configuration: a 16-core
// system at 1/16 capacity scale, 20 measured epochs of one million cycles
// (matching the 20-interval structure of the paper's Fig. 2(a)).
func LabConfig() Config {
	return Config{
		Cores:        16,
		Scale:        16,
		Epochs:       20,
		WarmupEpochs: 2,
		EpochCycles:  1_000_000,
		Seed:         1,
		Morph:        core.DefaultOptions(),
	}
}

// PaperConfig returns the full-size Table 3 configuration (slow: one run
// needs hundreds of millions of simulated references to exercise the
// full-size working sets).
func PaperConfig() Config {
	c := LabConfig()
	c.Scale = 1
	c.EpochCycles = 16_000_000
	return c
}

// simConfig converts to the engine configuration.
func (c Config) simConfig() sim.Config {
	return sim.Config{
		EpochCycles:  c.EpochCycles,
		Epochs:       c.Epochs,
		WarmupEpochs: c.WarmupEpochs,
		GapInstr:     8,
		IssueWidth:   4,
		Seed:         c.Seed,
		Faults:       c.Faults,
		Observer:     c.Observer,
	}
}

// instrumented returns the engine configuration plus the telemetry log the
// run will fill (nil when Config.Telemetry is off). Each run gets its own
// log, so batches stay deterministic at any worker count.
func (c Config) instrumented() (sim.Config, *telemetry.Log) {
	sc := c.simConfig()
	if !c.Telemetry {
		return sc, nil
	}
	tl := telemetry.NewLog()
	sc.Recorder = tl
	return sc, tl
}

// Params returns the hierarchy parameters implied by the configuration.
func (c Config) Params() hierarchy.Params {
	if c.Scale <= 1 {
		return hierarchy.Default(c.Cores)
	}
	return hierarchy.ScaledDefault(c.Cores, c.Scale)
}

// genConfig returns the matching workload generator configuration.
func (c Config) genConfig() workload.GenConfig {
	if c.Scale <= 1 {
		return workload.DefaultGenConfig()
	}
	return workload.ScaledGenConfig(c.Scale)
}

// Workload names a workload: a Table 5 multiprogrammed mix or a PARSEC
// application run with one thread per core.
type Workload struct {
	name string
	mix  bool
}

// Mix selects a Table 5 multiprogrammed mix ("MIX 01" .. "MIX 12").
func Mix(name string) Workload { return Workload{name: name, mix: true} }

// Parsec selects a PARSEC benchmark (e.g. "dedup") with Cores threads.
func Parsec(name string) Workload { return Workload{name: name} }

// String returns the workload name.
func (w Workload) String() string { return w.name }

// Generators instantiates the per-core reference generators.
func (w Workload) Generators(c Config) ([]*workload.Generator, error) {
	g := c.genConfig()
	if w.mix {
		mix, err := workload.MixByName(w.name)
		if err != nil {
			return nil, err
		}
		if len(mix.Benchmarks) != c.Cores {
			if c.Cores > len(mix.Benchmarks) {
				return nil, fmt.Errorf("morphcache: mix %q has %d applications, config has %d cores", w.name, len(mix.Benchmarks), c.Cores)
			}
			mix.Benchmarks = mix.Benchmarks[:c.Cores]
		}
		return workload.MixGenerators(mix, g, c.Seed), nil
	}
	p, err := workload.ByName(w.name)
	if err != nil {
		return nil, err
	}
	if p.Suite != workload.PARSEC {
		return nil, fmt.Errorf("morphcache: %q is a SPEC benchmark; use Mix(...) for multiprogrammed workloads", w.name)
	}
	return workload.ParsecGenerators(p, c.Cores, g, c.Seed), nil
}

// Result is the outcome of one run.
type Result struct {
	// Policy labels the management scheme.
	Policy string
	// Throughput is the whole-run sum of per-core IPC (the paper's
	// throughput metric).
	Throughput float64
	// PerCoreIPC is the whole-run IPC per core.
	PerCoreIPC []float64
	// EpochThroughputs is the per-epoch series (Fig. 2(a) style).
	EpochThroughputs []float64
	// EpochTopologies records the configuration in force each epoch.
	EpochTopologies []string
	// Reconfigurations counts merge/split operations over the measured
	// epochs; AsymmetricSteps counts intervals whose reconfiguration left
	// an asymmetric configuration (§2.4).
	Reconfigurations, AsymmetricSteps int
	// Telemetry is the run's epoch log (nil unless Config.Telemetry was
	// set; see DESIGN.md §8 for the schema). For sampled runs it holds the
	// simulated representative windows only (absolute epoch indices, window
	// warmup records flagged).
	Telemetry *telemetry.Log
	// SampledReport describes the phase clustering and metric
	// reconstruction of a sampled run (nil for full runs).
	SampledReport *SampledReport
	// BanditReport describes a bandit run's arm schedule and statistics
	// (nil for non-bandit runs).
	BanditReport *BanditReport
}

func fromRun(r *metrics.Run) *Result {
	res := &Result{
		Policy:           r.Policy,
		Throughput:       r.Throughput(),
		PerCoreIPC:       r.PerCoreIPC,
		EpochThroughputs: r.EpochThroughputs(),
		Reconfigurations: r.Reconfigurations,
		AsymmetricSteps:  r.AsymmetricSteps,
	}
	for _, e := range r.Epochs {
		res.EpochTopologies = append(res.EpochTopologies, e.Topology)
	}
	return res
}

// RunStatic runs the workload on a fixed (x:y:z) topology with the paper's
// idealized static latencies.
func RunStatic(c Config, spec string, w Workload) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := c.rejectBandit("RunStatic"); err != nil {
		return nil, err
	}
	if c.Sampled != nil {
		return runSampled(c, w, "static", spec)
	}
	gens, err := w.Generators(c)
	if err != nil {
		return nil, err
	}
	sc, tl := c.instrumented()
	run, err := sim.RunStatic(sc, c.Params(), spec, gens)
	if err != nil {
		return nil, err
	}
	res := fromRun(run)
	res.Telemetry = tl
	return res, nil
}

// RunMorphCache runs the workload under the MorphCache controller
// (starting all-private, remote-hit charging on).
func RunMorphCache(c Config, w Workload) (*Result, error) {
	if c.Sampled != nil {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		return runSampled(c, w, "morph", "")
	}
	res, _, err := RunMorphCacheWithController(c, w)
	return res, err
}

// RunMorphCacheWithController is RunMorphCache plus the controller for
// post-run inspection (merge/split counts, throttled MSAT bounds). It
// rejects sampled configurations: a sampled run builds a fresh controller
// per representative window, so there is no single controller to return —
// use RunMorphCache and inspect Result.SampledReport instead.
func RunMorphCacheWithController(c Config, w Workload) (*Result, *core.Controller, error) {
	if c.Sampled != nil {
		return nil, nil, fmt.Errorf("morphcache: RunMorphCacheWithController does not support sampled runs (one controller per representative window); use RunMorphCache")
	}
	if c.Bandit != nil {
		return nil, nil, fmt.Errorf("morphcache: RunMorphCacheWithController does not support bandit runs (one controller per arm window, and only for windows that pick a morph arm); use RunBandit and inspect Result.BanditReport")
	}
	ctrl := core.New(c.Morph)
	res, err := runControlled(c, w, ctrl)
	if err != nil {
		return nil, nil, err
	}
	return res, ctrl, nil
}

// RunMorphCacheNoDegrade runs the MorphCache controller with its
// graceful-degradation reactions switched off — the strawman for fault
// experiments: the controller trusts corrupted monitors and merges across
// dead bus links as if the machine were healthy. On a fault-free
// configuration it behaves identically to RunMorphCache.
func RunMorphCacheNoDegrade(c Config, w Workload) (*Result, error) {
	if c.Sampled != nil {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		return runSampled(c, w, "morph-nodegrade", "")
	}
	ctrl := core.New(c.Morph)
	ctrl.SetDegradation(false)
	return runControlled(c, w, ctrl)
}

func runControlled(c Config, w Workload, ctrl *core.Controller) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := c.rejectBandit("RunMorphCache"); err != nil {
		return nil, err
	}
	gens, err := w.Generators(c)
	if err != nil {
		return nil, err
	}
	sc, tl := c.instrumented()
	run, err := sim.RunPolicy(sc, c.Params(), ctrl, gens)
	if err != nil {
		return nil, err
	}
	res := fromRun(run)
	res.Telemetry = tl
	return res, nil
}

// RunPIPP runs the workload under the PIPP baseline (shared L2 and L3,
// promotion/insertion pseudo-partitioning).
func RunPIPP(c Config, w Workload) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := c.rejectBandit("RunPIPP"); err != nil {
		return nil, err
	}
	if c.Sampled != nil {
		return runSampled(c, w, "pipp", "")
	}
	gens, err := w.Generators(c)
	if err != nil {
		return nil, err
	}
	sc, tl := c.instrumented()
	run, err := pipp.Run(sc, c.Params(), gens)
	if err != nil {
		return nil, err
	}
	res := fromRun(run)
	res.Telemetry = tl
	return res, nil
}

// RunDSR runs the workload under the DSR baseline (private slices with
// dynamic spill-receive at both levels).
func RunDSR(c Config, w Workload) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := c.rejectBandit("RunDSR"); err != nil {
		return nil, err
	}
	if c.Sampled != nil {
		return runSampled(c, w, "dsr", "")
	}
	gens, err := w.Generators(c)
	if err != nil {
		return nil, err
	}
	sc, tl := c.instrumented()
	run, err := dsr.Run(sc, c.Params(), gens)
	if err != nil {
		return nil, err
	}
	res := fromRun(run)
	res.Telemetry = tl
	return res, nil
}

// RunSpec names one independent simulation job for RunBatch: a workload
// under a policy, optionally with its own configuration.
type RunSpec struct {
	// Policy selects the management scheme: a static "(x:y:z)" spec,
	// "morph", "morph-nodegrade" (MorphCache with graceful degradation
	// off — the fault-experiment strawman), "pipp", "dsr", or "bandit"
	// (the meta-policy over Config.Bandit's arm zoo).
	Policy string
	// Workload is the mix or PARSEC application to run.
	Workload Workload
	// Morph, when non-nil, overrides the controller options for a "morph"
	// job (QoS, conflict policy, §5.5 extensions, ...).
	Morph *core.Options
	// Config, when non-nil, overrides the batch configuration for this job
	// (sensitivity sweeps vary seeds, epoch lengths, and scales per job).
	Config *Config
}

// Label renders the spec for progress reporting.
func (s RunSpec) Label() string {
	l := s.Policy + " " + s.Workload.String()
	if s.Morph != nil {
		l += " (opts)"
	}
	if s.Config != nil {
		l += fmt.Sprintf(" (seed %d, %d epochs)", s.Config.Seed, s.Config.Epochs)
	}
	return l
}

// run executes one spec. A non-nil observer overrides the configuration's
// (RunBatch mints one per job, so each run lands on its own trace track
// and job row).
func (s RunSpec) run(cfg Config, o *obs.Observer) (*Result, error) {
	c := cfg
	if s.Config != nil {
		c = *s.Config
	}
	if o != nil {
		c.Observer = o
	}
	switch s.Policy {
	case "morph":
		if s.Morph != nil {
			c.Morph = *s.Morph
		}
		return RunMorphCache(c, s.Workload)
	case "morph-nodegrade":
		if s.Morph != nil {
			c.Morph = *s.Morph
		}
		return RunMorphCacheNoDegrade(c, s.Workload)
	case "pipp":
		return RunPIPP(c, s.Workload)
	case "dsr":
		return RunDSR(c, s.Workload)
	case "bandit":
		return RunBandit(c, s.Workload)
	default:
		return RunStatic(c, s.Policy, s.Workload)
	}
}

// JobEvent reports one completed batch job to a BatchOptions.Progress
// callback. Events arrive serially, in completion order.
type JobEvent struct {
	// Index is the job's position in the submitted spec slice.
	Index int
	// Label describes the job (policy + workload).
	Label string
	// Elapsed is the job's wall-clock duration.
	Elapsed time.Duration
	// Err is the job's error, if any.
	Err error
	// Done jobs out of Total have completed, this one included.
	Done, Total int
}

// BatchOptions configures RunBatch.
type BatchOptions struct {
	// Workers is the worker-pool size; <= 0 uses GOMAXPROCS, 1 restores
	// strictly sequential execution.
	Workers int
	// Started, when non-nil, receives one JobEvent as each job begins
	// (Elapsed zero, Err nil). Started and Progress callbacks are delivered
	// serially under one lock and never interleave.
	Started func(JobEvent)
	// Progress, when non-nil, receives one JobEvent per completed job.
	Progress func(JobEvent)
	// Observe, when non-nil, mints the observer for each job before it is
	// submitted (obs.Hub.Observer is the intended implementation; nil
	// returns are fine and leave that job unobserved). RunBatch marks the
	// observer's job lifecycle (JobStarted/JobFinished) around the run, so
	// live /jobs views and trace job spans need no further wiring.
	Observe func(index int, label string) *obs.Observer
	// Context, when non-nil, cancels the batch: dispatch stops, in-flight
	// jobs are abandoned, and RunBatch returns the partial results with a
	// descriptive error (errors.Is(err, context.Canceled) holds). Nil means
	// run to completion.
	Context context.Context
	// JobTimeout, when positive, bounds each job's wall-clock time; a job
	// exceeding it fails the batch with a timeout error.
	JobTimeout time.Duration
}

// RunBatch executes the specs concurrently across a worker pool and returns
// their results in submission order. Every job builds its own hierarchy and
// generators from its spec — jobs share nothing mutable — and all
// randomness derives from each job's seed via rng.Derive, so results are
// identical at every worker count (DESIGN.md §6) and identical to calling
// the corresponding Run* functions in a loop.
func RunBatch(cfg Config, specs []RunSpec, opts BatchOptions) ([]*Result, error) {
	jobs := make([]runner.Job[*Result], len(specs))
	observers := make([]*obs.Observer, len(specs))
	for i := range specs {
		i, s := i, specs[i]
		label := s.Label()
		if opts.Observe != nil {
			observers[i] = opts.Observe(i, label)
		}
		jobs[i] = runner.Job[*Result]{
			Label: label,
			Run:   func() (*Result, error) { return s.run(cfg, observers[i]) },
		}
	}
	toJobEvent := func(ev runner.Event) JobEvent {
		return JobEvent{
			Index:   ev.Index,
			Label:   ev.Label,
			Elapsed: ev.Elapsed,
			Err:     ev.Err,
			Done:    ev.Done,
			Total:   ev.Total,
		}
	}
	var started func(runner.Event)
	if opts.Started != nil || opts.Observe != nil {
		started = func(ev runner.Event) {
			observers[ev.Index].JobStarted()
			if opts.Started != nil {
				opts.Started(toJobEvent(ev))
			}
		}
	}
	var progress func(runner.Event)
	if opts.Progress != nil || opts.Observe != nil {
		progress = func(ev runner.Event) {
			observers[ev.Index].JobFinished(ev.Err, ev.Elapsed)
			if opts.Progress != nil {
				opts.Progress(toJobEvent(ev))
			}
		}
	}
	return runner.Run(opts.Context, jobs, runner.Options{
		Workers:    opts.Workers,
		Started:    started,
		Progress:   progress,
		JobTimeout: opts.JobTimeout,
	})
}

// StandardStatics lists the paper's static comparison topologies for the
// configured core count.
func StandardStatics(c Config) []string {
	if c.Cores == 16 {
		return topology.StandardSpecs()
	}
	n := c.Cores
	return []string{
		fmt.Sprintf("(%d:1:1)", n),
		fmt.Sprintf("(1:1:%d)", n),
		fmt.Sprintf("(4:%d:1)", n/4),
		fmt.Sprintf("(1:%d:1)", n),
	}
}

// IdealOffline composes the per-epoch upper envelope over a set of static
// results (the paper's ideal offline scheme, Fig. 15). It returns the
// per-epoch best throughput, which configuration achieved it, and the mean.
func IdealOffline(results []*Result) (series []float64, choice []string, mean float64, err error) {
	runs := make([]*metrics.Run, len(results))
	for i, r := range results {
		run := &metrics.Run{Policy: r.Policy}
		for e, t := range r.EpochThroughputs {
			// Reconstruct a one-core epoch carrying the throughput.
			run.Epochs = append(run.Epochs, metrics.Epoch{Index: e, PerCoreIPC: []float64{t}})
		}
		runs[i] = run
	}
	series, choice, err = offline.Ideal(runs)
	if err != nil {
		return nil, nil, 0, err
	}
	return series, choice, offline.Throughput(series), nil
}

// WeightedSpeedup computes Σ IPC_i/IPCalone_i for a result against
// per-benchmark alone-IPC references.
func WeightedSpeedup(r *Result, alone []float64) float64 {
	return metrics.WeightedSpeedup(r.PerCoreIPC, alone)
}

// FairSpeedup computes the harmonic mean of per-application speedups.
func FairSpeedup(r *Result, alone []float64) float64 {
	return metrics.FairSpeedup(r.PerCoreIPC, alone)
}

// SoloIPCs measures each application of a mix running alone on a
// single-core private hierarchy — the IPCalone references for WS/FS.
func SoloIPCs(c Config, w Workload) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if !w.mix {
		return nil, fmt.Errorf("morphcache: SoloIPCs needs a multiprogrammed mix")
	}
	mix, err := workload.MixByName(w.name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(mix.Benchmarks))
	for i, b := range mix.Benchmarks {
		ipc, err := sim.SoloIPC(c.simConfig(), c.Params(), b, c.genConfig())
		if err != nil {
			return nil, err
		}
		out[i] = ipc
	}
	return out, nil
}
