module morphcache

go 1.22
