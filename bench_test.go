// Benchmarks: one per table/figure of the paper's evaluation (see the
// experiment index in DESIGN.md §3), plus ablations of the design choices
// DESIGN.md calls out. Each benchmark runs a reduced instance of the
// corresponding experiment and reports the domain metric (throughput,
// gain, correlation) alongside ns/op so `go test -bench=.` doubles as a
// miniature reproduction run. cmd/experiments regenerates the full-size
// artifacts.
package morphcache

import (
	"testing"

	"morphcache/internal/acfv"
	"morphcache/internal/bus"
	"morphcache/internal/cache"
	"morphcache/internal/core"
	"morphcache/internal/hierarchy"
	"morphcache/internal/mem"
	"morphcache/internal/obs"
	"morphcache/internal/sim"
	"morphcache/internal/stats"
	"morphcache/internal/topology"
	"morphcache/internal/workload"
)

// benchConfig is the reduced configuration the benchmarks run.
func benchConfig() Config {
	c := LabConfig()
	c.Epochs = 6
	c.WarmupEpochs = 1
	c.EpochCycles = 300_000
	return c
}

func mustRunStatic(b *testing.B, cfg Config, spec string, w Workload) *Result {
	b.Helper()
	r, err := RunStatic(cfg, spec, w)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func mustRunMorph(b *testing.B, cfg Config, w Workload) *Result {
	b.Helper()
	r, err := RunMorphCache(cfg, w)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFig2a — per-epoch throughput of Mix 01 under the static
// topologies (the motivation figure's data series).
func BenchmarkFig2a(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		base := mustRunStatic(b, cfg, "(16:1:1)", Mix("MIX 01"))
		alt := mustRunStatic(b, cfg, "(4:4:1)", Mix("MIX 01"))
		b.ReportMetric(alt.Throughput/base.Throughput, "quad/shared")
	}
}

// BenchmarkFig2b — dedup vs freqmine across topologies.
func BenchmarkFig2b(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		base := mustRunStatic(b, cfg, "(16:1:1)", Parsec("dedup"))
		quad := mustRunStatic(b, cfg, "(4:4:1)", Parsec("dedup"))
		b.ReportMetric(quad.Throughput/base.Throughput, "dedup-quad/shared")
	}
}

// BenchmarkFig5 — ACFV-vs-oracle correlation at 128 bits (paper: 0.96).
func BenchmarkFig5(b *testing.B) {
	prof, err := workload.ByName("hmmer")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		slice := cache.New(cache.Config{SizeBytes: 1 << 20, Ways: 16, Policy: cache.LRU})
		indexBits := 0
		for 1<<indexBits < slice.Sets() {
			indexBits++
		}
		gen := workload.NewGenerator(prof, workload.DefaultGenConfig(), 1, 0, 1)
		v := acfv.NewVector(128, acfv.XOR)
		oracle := acfv.NewOracle()
		var est, truth []float64
		for e := 0; e < 24; e++ {
			gen.BeginEpoch(e)
			for r := 0; r < 20000; r++ {
				a := gen.Next()
				if slice.Access(a.ASID, a.Line, false) >= 0 {
					continue
				}
				old := slice.Insert(a.ASID, a.Line, false)
				tag := a.Line >> uint(indexBits)
				v.Set(tag)
				oracle.Set(tag)
				if old.Valid {
					v.Clear(old.Line >> uint(indexBits))
					oracle.Clear(old.Line >> uint(indexBits))
				}
			}
			est = append(est, float64(v.Ones()))
			truth = append(truth, float64(oracle.Ones()))
			v.Reset()
			oracle.Reset()
		}
		b.ReportMetric(stats.Correlation(est, truth), "corr-128b")
	}
}

// BenchmarkTable2 — the analytical interconnect characterization.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := bus.Characterize(bus.DefaultTech(), bus.DefaultFloorplan())
		b.ReportMetric(rep.MaxBusGHz, "maxGHz")
		b.ReportMetric(float64(rep.OverheadCPUCycles), "overhead-cycles")
	}
}

// BenchmarkTable4 — closed-loop footprint measurement of one benchmark.
func BenchmarkTable4(b *testing.B) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		gcfg := workload.ScaledGenConfig(cfg.Scale)
		gen := workload.NewGenerator(prof, gcfg, 1, 0, 1)
		p := cfg.Params()
		p.Cores = 1
		sys, err := hierarchy.New(p, topology.AllPrivate(1))
		if err != nil {
			b.Fatal(err)
		}
		var now uint64
		gen.BeginEpoch(0)
		for r := 0; r < 50000; r++ {
			res := sys.Access(0, gen.Next(), now)
			now += uint64(res.Latency)
		}
		b.ReportMetric(sys.CoresUtilization(hierarchy.L3, []int{0}), "l3util")
	}
}

// BenchmarkFig13 — MorphCache vs the all-shared baseline on one mix.
func BenchmarkFig13(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		base := mustRunStatic(b, cfg, "(16:1:1)", Mix("MIX 05"))
		m := mustRunMorph(b, cfg, Mix("MIX 05"))
		b.ReportMetric(m.Throughput/base.Throughput, "morph/shared")
	}
}

// BenchmarkFig14 — weighted and fair speedup of MorphCache on one mix.
func BenchmarkFig14(b *testing.B) {
	cfg := benchConfig()
	alone, err := SoloIPCs(cfg, Mix("MIX 01"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mustRunMorph(b, cfg, Mix("MIX 01"))
		b.ReportMetric(WeightedSpeedup(m, alone), "WS")
		b.ReportMetric(FairSpeedup(m, alone), "FS")
	}
}

// BenchmarkFig15 — MorphCache against the ideal offline envelope. The four
// runs are independent, so they go through the parallel batch runner.
func BenchmarkFig15(b *testing.B) {
	cfg := benchConfig()
	specs := []RunSpec{
		{Policy: "(16:1:1)", Workload: Mix("MIX 01")},
		{Policy: "(1:1:16)", Workload: Mix("MIX 01")},
		{Policy: "(4:4:1)", Workload: Mix("MIX 01")},
		{Policy: "morph", Workload: Mix("MIX 01")},
	}
	for i := 0; i < b.N; i++ {
		rs, err := RunBatch(cfg, specs, BatchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		_, _, ideal, err := IdealOffline(rs[:3])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[3].Throughput/ideal, "morph/ideal")
	}
}

// BenchmarkFig16 — MorphCache vs all-shared on a PARSEC application.
func BenchmarkFig16(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		base := mustRunStatic(b, cfg, "(16:1:1)", Parsec("dedup"))
		m := mustRunMorph(b, cfg, Parsec("dedup"))
		b.ReportMetric(m.Throughput/base.Throughput, "morph/shared")
	}
}

// BenchmarkFig17 — MorphCache vs PIPP and DSR on one mix, batched.
func BenchmarkFig17(b *testing.B) {
	cfg := benchConfig()
	specs := []RunSpec{
		{Policy: "pipp", Workload: Mix("MIX 05")},
		{Policy: "dsr", Workload: Mix("MIX 05")},
		{Policy: "morph", Workload: Mix("MIX 05")},
	}
	for i := 0; i < b.N; i++ {
		rs, err := RunBatch(cfg, specs, BatchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[2].Throughput/rs[0].Throughput, "morph/pipp")
		b.ReportMetric(rs[2].Throughput/rs[1].Throughput, "morph/dsr")
	}
}

// BenchmarkReconStats — §2.4 reconfiguration statistics.
func BenchmarkReconStats(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		m := mustRunMorph(b, cfg, Mix("MIX 05"))
		b.ReportMetric(float64(m.Reconfigurations), "reconfigs")
		b.ReportMetric(float64(m.AsymmetricSteps), "asym-steps")
	}
}

// BenchmarkQoS — §5.3 MSAT throttling.
func BenchmarkQoS(b *testing.B) {
	cfg := benchConfig()
	cfg.Morph = core.DefaultOptions()
	cfg.Morph.QoS = true
	for i := 0; i < b.N; i++ {
		m := mustRunMorph(b, cfg, Mix("MIX 08"))
		b.ReportMetric(m.Throughput, "throughput")
	}
}

// BenchmarkSensitivity — §5.4: MorphCache gain with doubled L2 capacity.
func BenchmarkSensitivity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		gens, err := Mix("MIX 05").Generators(cfg)
		if err != nil {
			b.Fatal(err)
		}
		p := cfg.Params()
		p.L2SliceBytes *= 2
		p.ChargeRemote = true
		sys, err := hierarchy.New(p, topology.AllPrivate(p.Cores))
		if err != nil {
			b.Fatal(err)
		}
		thr, err := runEngine(cfg, sys, gens)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(thr, "throughput-2xL2")
	}
}

// BenchmarkExtensions — §5.5: the relaxed reconfiguration spaces, expressed
// as per-spec controller-option overrides on one batch.
func BenchmarkExtensions(b *testing.B) {
	cfg := benchConfig()
	arbOpts := core.DefaultOptions()
	arbOpts.AllowArbitrarySizes = true
	nonOpts := core.DefaultOptions()
	nonOpts.AllowArbitrarySizes = true
	nonOpts.AllowNonNeighbors = true
	specs := []RunSpec{
		{Policy: "morph", Workload: Mix("MIX 05")},
		{Policy: "morph", Workload: Mix("MIX 05"), Morph: &arbOpts},
		{Policy: "morph", Workload: Mix("MIX 05"), Morph: &nonOpts},
	}
	for i := 0; i < b.N; i++ {
		rs, err := RunBatch(cfg, specs, BatchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[1].Throughput/rs[0].Throughput, "arbitrary/default")
		b.ReportMetric(rs[2].Throughput/rs[0].Throughput, "nonneighbor/default")
	}
}

// BenchmarkBatchSweep — a Fig. 13-shaped sweep submitted through the batch
// runner at the default worker count; run with -cpu 1,N to compare the
// sequential and parallel cost of the same job list.
func BenchmarkBatchSweep(b *testing.B) {
	cfg := benchConfig()
	var specs []RunSpec
	for _, mn := range []string{"MIX 01", "MIX 05"} {
		w := Mix(mn)
		for _, s := range []string{"(16:1:1)", "(1:1:16)", "(4:4:1)"} {
			specs = append(specs, RunSpec{Policy: s, Workload: w})
		}
		specs = append(specs, RunSpec{Policy: "morph", Workload: w})
	}
	for i := 0; i < b.N; i++ {
		rs, err := RunBatch(cfg, specs, BatchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rs {
			sum += r.Throughput
		}
		b.ReportMetric(sum/float64(len(rs)), "mean-throughput")
	}
}

// BenchmarkBatchSweepSampled — the same Fig. 13-shaped sweep in sampled
// mode with the Fast preset (2 phases, 1 warmup epoch per window, window
// epochs truncated to a quarter interval): the CI-gated demonstration that
// a sweep job costs a fraction of the full run. The reported mean
// throughput should track BenchmarkBatchSweep's within the Fast preset's
// accuracy (the Defaults preset is the one gated at ≤ 3% by -run sampled).
func BenchmarkBatchSweepSampled(b *testing.B) {
	cfg := benchConfig()
	so := FastSampledConfig(cfg.EpochCycles / 3)
	cfg.Sampled = &so
	var specs []RunSpec
	for _, mn := range []string{"MIX 01", "MIX 05"} {
		w := Mix(mn)
		for _, s := range []string{"(16:1:1)", "(1:1:16)", "(4:4:1)"} {
			specs = append(specs, RunSpec{Policy: s, Workload: w})
		}
		specs = append(specs, RunSpec{Policy: "morph", Workload: w})
	}
	for i := 0; i < b.N; i++ {
		rs, err := RunBatch(cfg, specs, BatchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rs {
			sum += r.Throughput
		}
		b.ReportMetric(sum/float64(len(rs)), "mean-throughput")
	}
}

// BenchmarkBanditSweep — the bandit meta-policy on the adversarial
// phase-shift mix (DESIGN.md §16), reduced to one square-wave period worth
// of epochs. Reports the stitched run's throughput and the number of arm
// switches; the full-size gated version is `cmd/experiments -run bandit`.
func BenchmarkBanditSweep(b *testing.B) {
	cfg := benchConfig()
	cfg.Epochs = 10
	bo := DefaultBanditConfig()
	bo.Arms = []string{"morph", "pipp", "dsr", "(16:1:1)"}
	bo.WindowEpochs = 1
	cfg.Bandit = &bo
	w := Mix(workload.PhaseShiftMixName)
	for i := 0; i < b.N; i++ {
		r, err := RunBandit(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		if r.BanditReport == nil {
			b.Fatal("bandit run returned no report")
		}
		b.ReportMetric(r.Throughput, "throughput")
		b.ReportMetric(float64(r.BanditReport.Switches), "switches")
	}
}

// --- ablations of DESIGN.md §4's design decisions ---------------------------

// BenchmarkAblationUniformLatency — charge every merged-group hit the
// remote latency (no locality placement benefit), quantifying decision 1.
func BenchmarkAblationUniformLatency(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		gens, err := Mix("MIX 05").Generators(cfg)
		if err != nil {
			b.Fatal(err)
		}
		p := cfg.Params()
		p.ChargeRemote = true
		p.L2LocalCycles = p.L2MergedCycles
		p.L3LocalCycles = p.L3MergedCycles
		sys, err := hierarchy.New(p, topology.AllPrivate(p.Cores))
		if err != nil {
			b.Fatal(err)
		}
		run, err := runEngine(cfg, sys, gens)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(run, "throughput-uniform")
	}
}

// BenchmarkAblationSplitAggressive — the §2.4 alternate conflict policy.
func BenchmarkAblationSplitAggressive(b *testing.B) {
	cfg := benchConfig()
	cfg.Morph = core.DefaultOptions()
	cfg.Morph.Conflict = core.SplitAggressive
	for i := 0; i < b.N; i++ {
		m := mustRunMorph(b, cfg, Mix("MIX 05"))
		b.ReportMetric(m.Throughput, "throughput-splitagg")
	}
}

// BenchmarkAblationEpochLength — halved reconfiguration interval.
func BenchmarkAblationEpochLength(b *testing.B) {
	cfg := benchConfig()
	cfg.EpochCycles /= 2
	cfg.Epochs *= 2
	for i := 0; i < b.N; i++ {
		m := mustRunMorph(b, cfg, Mix("MIX 05"))
		b.ReportMetric(m.Throughput, "throughput-short-epoch")
	}
}

// BenchmarkAblationTreePLRU — tree pseudo-LRU replacement instead of LRU.
func BenchmarkAblationTreePLRU(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		gens, err := Mix("MIX 05").Generators(cfg)
		if err != nil {
			b.Fatal(err)
		}
		p := cfg.Params()
		p.Policy = cache.TreePLRU
		p.ChargeRemote = true
		sys, err := hierarchy.New(p, topology.AllPrivate(p.Cores))
		if err != nil {
			b.Fatal(err)
		}
		run, err := runEngine(cfg, sys, gens)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(run, "throughput-plru")
	}
}

// BenchmarkAblationSRRIP — SRRIP replacement instead of the paper's LRU.
func BenchmarkAblationSRRIP(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		gens, err := Mix("MIX 05").Generators(cfg)
		if err != nil {
			b.Fatal(err)
		}
		p := cfg.Params()
		p.Policy = cache.SRRIP
		p.ChargeRemote = true
		sys, err := hierarchy.New(p, topology.AllPrivate(p.Cores))
		if err != nil {
			b.Fatal(err)
		}
		run, err := runEngine(cfg, sys, gens)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(run, "throughput-srrip")
	}
}

// BenchmarkAblationSquarePhases — abrupt working-set phases instead of the
// default smooth drift: stresses reaction time over tracking.
func BenchmarkAblationSquarePhases(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		gcfg := workload.ScaledGenConfig(cfg.Scale)
		gcfg.Model.SquarePhases = true
		mix, err := workload.MixByName("MIX 05")
		if err != nil {
			b.Fatal(err)
		}
		gens := workload.MixGenerators(mix, gcfg, cfg.Seed)
		p := cfg.Params()
		p.ChargeRemote = true
		sys, err := hierarchy.New(p, topology.AllPrivate(p.Cores))
		if err != nil {
			b.Fatal(err)
		}
		thr, err := runEngine(cfg, sys, gens)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(thr, "throughput-square")
	}
}

// BenchmarkAccessPath — raw single-access cost of the hierarchy (the
// simulator's hot loop).
func BenchmarkAccessPath(b *testing.B) {
	p := hierarchy.ScaledDefault(16, 16)
	p.ChargeRemote = true
	sys, err := hierarchy.New(p, topology.AllShared(16))
	if err != nil {
		b.Fatal(err)
	}
	for c := 0; c < 16; c++ {
		sys.SetCoreASID(c, mem.ASID(c+1))
	}
	warmAccessPath(sys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := i & 15
		sys.Access(c, mem.Access{Line: mem.Line(uint64(c)<<24 | uint64(i%4096)), ASID: mem.ASID(c + 1)}, uint64(i))
	}
}

// warmAccessPath drives the benchmark's access pattern long enough for the
// demand tables to reach their high-water capacity (lines keep migrating
// into new slices for a while, so one pattern period is not enough) before
// timing starts: the steady-state access path is allocation-free, and the
// benchmarks gate on that.
func warmAccessPath(sys *hierarchy.System) {
	for i := 0; i < 1<<17; i++ {
		c := i & 15
		sys.Access(c, mem.Access{Line: mem.Line(uint64(c)<<24 | uint64(i%4096)), ASID: mem.ASID(c + 1)}, uint64(i))
	}
}

// BenchmarkAccessPathObserver — the same hot loop with the live
// observability hooks fully enabled (hub-bound sharded counters and
// latency histograms plus the per-run access collector). The delta
// against BenchmarkAccessPath is the cost of turning observation on;
// BenchmarkAccessPath itself measures the default nil-observer path,
// whose only added work is one pointer compare per access.
func BenchmarkAccessPathObserver(b *testing.B) {
	p := hierarchy.ScaledDefault(16, 16)
	p.ChargeRemote = true
	sys, err := hierarchy.New(p, topology.AllShared(16))
	if err != nil {
		b.Fatal(err)
	}
	for c := 0; c < 16; c++ {
		sys.SetCoreASID(c, mem.ASID(c+1))
	}
	hub := obs.NewHub(obs.HubOptions{Shards: 1})
	o := hub.Observer("bench")
	o.Access = obs.NewAccessStats()
	sys.SetObserver(o)
	warmAccessPath(sys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := i & 15
		sys.Access(c, mem.Access{Line: mem.Line(uint64(c)<<24 | uint64(i%4096)), ASID: mem.ASID(c + 1)}, uint64(i))
	}
}

// runEngine runs a custom hierarchy under the MorphCache controller and
// returns the throughput.
func runEngine(cfg Config, sys *hierarchy.System, gens []*workload.Generator) (float64, error) {
	eng, err := sim.New(cfg.simConfig(), &sim.HierarchyTarget{Sys: sys, Policy: core.New(cfg.Morph)}, gens)
	if err != nil {
		return 0, err
	}
	return eng.Run().Throughput(), nil
}
