package morphcache

import (
	"fmt"

	"morphcache/internal/baselines/bandit"
	"morphcache/internal/sim"
)

// BanditConfig configures the bandit meta-policy (see internal/baselines/
// bandit and DESIGN.md §16): a multi-armed bandit that, at every window of
// epochs, picks one policy from the zoo — MorphCache, PIPP, DSR, or a
// static topology — runs it for the window via the resume machinery, and
// learns from the observed reward. Attach one to Config.Bandit (or leave
// it nil for the defaults) and run with RunBandit or Policy "bandit". The
// zero value of every field selects the defaults.
type BanditConfig = bandit.Options

// BanditReport is a bandit run's decision summary (arm schedule, per-arm
// statistics, degradation warnings, and — when the caller computed it —
// the regret against the offline oracle); Result.BanditReport carries it.
type BanditReport = bandit.Report

// BanditRegret compares a realized per-epoch throughput series against the
// offline oracle envelope (see IdealOffline); the -run bandit experiment
// embeds it in BanditReport.Regret.
type BanditRegret = bandit.RegretReport

// DefaultBanditConfig returns the default bandit options: discounted UCB1
// over throughput rewards with two-epoch windows.
func DefaultBanditConfig() BanditConfig { return bandit.Defaults() }

// DefaultBanditArms returns the default zoo for the configured machine:
// the MorphCache controller, both baselines, and the paper's standard
// static topologies.
func DefaultBanditArms(c Config) []string {
	return append([]string{"morph", "pipp", "dsr"}, StandardStatics(c)...)
}

// ComputeBanditRegret computes the regret report of a realized per-epoch
// throughput series against an oracle envelope (both non-empty, equal
// length).
func ComputeBanditRegret(realized, oracle []float64) (*BanditRegret, error) {
	return bandit.Regret(realized, oracle)
}

// RunBandit runs the workload under the bandit meta-policy: Config.Bandit
// (or the defaults when nil) selects strategy, reward, window size, and the
// arm list (empty = DefaultBanditArms). The Result is the stitched
// per-epoch run with Result.BanditReport attached.
func RunBandit(c Config, w Workload) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	bo := DefaultBanditConfig()
	if c.Bandit != nil {
		bo = *c.Bandit
	}
	if len(bo.Arms) == 0 {
		bo.Arms = DefaultBanditArms(c)
	}
	f := bandit.Factories{
		NewTarget: func(arm string) (sim.Target, error) { return c.armTarget(arm) },
		NewSources: func() ([]sim.Source, error) {
			gens, err := w.Generators(c)
			if err != nil {
				return nil, err
			}
			return sim.FromGenerators(gens), nil
		},
	}
	sc, tl := c.instrumented()
	rr, err := bandit.Run(sc, bo, f)
	if err != nil {
		return nil, fmt.Errorf("morphcache: %w", err)
	}
	res := fromRun(rr.Run)
	res.BanditReport = rr.Report
	res.Telemetry = tl
	return res, nil
}

// armTarget builds a fresh target for one bandit arm. Arm names use the
// RunSpec policy vocabulary: "morph", "morph-nodegrade", "pipp", "dsr", or
// a static "(x:y:z)" spec. Each window gets its own target — windows share
// nothing mutable — so every arm evaluation starts from the state a full
// run of that policy starts from.
func (c Config) armTarget(arm string) (sim.Target, error) {
	switch arm {
	case "morph", "morph-nodegrade", "pipp", "dsr":
		return c.sampledTarget(arm, "")
	default:
		return c.sampledTarget("static", arm)
	}
}

// rejectBandit guards the non-bandit entry points: a Config.Bandit that
// would be silently ignored is a configuration error, not a no-op.
func (c Config) rejectBandit(entry string) error {
	if c.Bandit != nil {
		return fmt.Errorf("morphcache: %s ignores Bandit configs; use RunBandit (or Policy %q)", entry, "bandit")
	}
	return nil
}
