package morphcache_test

import (
	"fmt"

	mc "morphcache"
)

// The simplest use: run a Table 5 mix under MorphCache and compare with the
// all-shared static baseline.
func Example() {
	cfg := mc.LabConfig()
	cfg.Epochs = 4
	cfg.WarmupEpochs = 1
	cfg.EpochCycles = 100_000

	w := mc.Mix("MIX 01")
	base, err := mc.RunStatic(cfg, "(16:1:1)", w)
	if err != nil {
		panic(err)
	}
	morph, err := mc.RunMorphCache(cfg, w)
	if err != nil {
		panic(err)
	}
	fmt.Println(base.Throughput > 0, morph.Throughput > 0, len(morph.EpochTopologies) == 4)
	// Output: true true true
}

// Static topologies use the paper's (x:y:z) notation: x cores per L2
// group, y L2 groups per L3 group, z L3 groups.
func ExampleRunStatic() {
	cfg := mc.LabConfig()
	cfg.Epochs = 2
	cfg.WarmupEpochs = 1
	cfg.EpochCycles = 100_000

	r, err := mc.RunStatic(cfg, "(4:4:1)", mc.Mix("MIX 02"))
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Policy, len(r.PerCoreIPC))
	// Output: (4:4:1) 16
}

// PARSEC workloads run one application with a thread per core, all in one
// address space — the case MorphCache's sharing-merge rule targets.
func ExampleParsec() {
	cfg := mc.LabConfig()
	cfg.Epochs = 2
	cfg.WarmupEpochs = 1
	cfg.EpochCycles = 100_000

	r, err := mc.RunMorphCache(cfg, mc.Parsec("dedup"))
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Throughput > 0)
	// Output: true
}

// IdealOffline composes the per-epoch best static topology with perfect
// foresight — the upper bound of Fig. 15.
func ExampleIdealOffline() {
	cfg := mc.LabConfig()
	cfg.Epochs = 3
	cfg.WarmupEpochs = 1
	cfg.EpochCycles = 100_000

	w := mc.Mix("MIX 03")
	var rs []*mc.Result
	for _, spec := range []string{"(16:1:1)", "(1:1:16)"} {
		r, err := mc.RunStatic(cfg, spec, w)
		if err != nil {
			panic(err)
		}
		rs = append(rs, r)
	}
	series, _, mean, err := mc.IdealOffline(rs)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(series) == 3, mean > 0)
	// Output: true true
}
