package morphcache

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"morphcache/internal/fault"
)

// sampledConfig is fastConfig with accuracy-light sampling: two phases and
// one warmup epoch keep each test run to a few window epochs.
func sampledConfig() Config {
	c := fastConfig()
	so := DefaultSampledConfig()
	so.MaxPhases = 2
	so.WindowWarmup = 1
	so.ProfileRefs = 256
	c.Sampled = &so
	return c
}

func TestSampledReportShape(t *testing.T) {
	cfg := sampledConfig()
	r, err := RunMorphCache(cfg, Mix("MIX 01"))
	if err != nil {
		t.Fatal(err)
	}
	rep := r.SampledReport
	if rep == nil {
		t.Fatal("sampled run returned no report")
	}
	if rep.MeasuredEpochs != cfg.Epochs {
		t.Fatalf("measured epochs %d, want %d", rep.MeasuredEpochs, cfg.Epochs)
	}
	if len(rep.Phases) < 1 || len(rep.Phases) > 2 {
		t.Fatalf("%d phases", len(rep.Phases))
	}
	weight, covered := 0.0, 0
	if !sort.SliceIsSorted(rep.Phases, func(i, j int) bool {
		return rep.Phases[i].Representative < rep.Phases[j].Representative
	}) {
		t.Fatal("phases not sorted by representative")
	}
	for _, ph := range rep.Phases {
		weight += ph.Weight
		covered += len(ph.Epochs)
		repInMembers := false
		for _, e := range ph.Epochs {
			if e == ph.Representative {
				repInMembers = true
			}
			if e < cfg.WarmupEpochs || e >= cfg.WarmupEpochs+cfg.Epochs {
				t.Fatalf("phase epoch %d outside the measured region", e)
			}
		}
		if !repInMembers {
			t.Fatalf("representative %d not among its phase's epochs %v", ph.Representative, ph.Epochs)
		}
	}
	if math.Abs(weight-1) > 1e-9 || covered != cfg.Epochs {
		t.Fatalf("weights %v cover %d epochs", weight, covered)
	}
	if rep.SimulatedEpochs <= 0 || rep.Speedup <= 0 {
		t.Fatalf("cost summary %+v", rep)
	}
	if rep.Throughput.Value != r.Throughput {
		t.Fatalf("report throughput %v != result %v", rep.Throughput.Value, r.Throughput)
	}
	if rep.Hits == nil || rep.MPKI.Value <= 0 {
		t.Fatal("hierarchy targets must reconstruct MPKI and hit shares")
	}
	if len(r.EpochThroughputs) != cfg.Epochs || len(r.EpochTopologies) != cfg.Epochs {
		t.Fatalf("per-epoch series %d/%d", len(r.EpochThroughputs), len(r.EpochTopologies))
	}
}

// TestSampledBatchDeterminism is the worker-count/job-order gate: the same
// sampled specs must produce byte-identical results at 1 worker, at 4
// workers, and under a permuted submission order.
func TestSampledBatchDeterminism(t *testing.T) {
	cfg := sampledConfig()
	specs := []RunSpec{
		{Policy: "morph", Workload: Mix("MIX 01")},
		{Policy: "(4:4:1)", Workload: Mix("MIX 01")},
		{Policy: "morph", Workload: Mix("MIX 05")},
		{Policy: "(4:4:1)", Workload: Mix("MIX 05")},
	}
	seq, err := RunBatch(cfg, specs, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunBatch(cfg, specs, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{2, 0, 3, 1}
	permSpecs := make([]RunSpec, len(specs))
	for i, p := range perm {
		permSpecs[i] = specs[p]
	}
	permuted, err := RunBatch(cfg, permSpecs, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, a, b *Result) {
		t.Helper()
		if a.Throughput != b.Throughput || !reflect.DeepEqual(a.PerCoreIPC, b.PerCoreIPC) {
			t.Fatalf("%s: metrics diverged (%v vs %v)", name, a.Throughput, b.Throughput)
		}
		if !reflect.DeepEqual(a.SampledReport, b.SampledReport) {
			t.Fatalf("%s: phase assignments or reconstruction diverged:\n%+v\nvs\n%+v",
				name, a.SampledReport, b.SampledReport)
		}
		if !reflect.DeepEqual(a.EpochTopologies, b.EpochTopologies) {
			t.Fatalf("%s: topology series diverged", name)
		}
	}
	for i := range specs {
		check(specs[i].Policy+" workers", seq[i], par[i])
	}
	for i, p := range perm {
		check(permSpecs[i].Policy+" permuted", permuted[i], seq[p])
	}
}

func TestSampledIncompatibilities(t *testing.T) {
	cfg := sampledConfig()
	plan, err := fault.NewPlan(1, fault.Spec{Cores: cfg.Cores, FirstEpoch: 1, Epochs: 2, Events: 1})
	if err != nil {
		t.Fatal(err)
	}
	fcfg := cfg
	fcfg.Faults = plan
	if err := fcfg.Validate(); err == nil {
		t.Fatal("sampled + faults accepted")
	}
	if _, _, err := RunMorphCacheWithController(cfg, Mix("MIX 01")); err == nil {
		t.Fatal("sampled WithController accepted (windows use private controllers)")
	}
	bad := cfg
	so := *bad.Sampled
	so.SignatureBits = 100
	bad.Sampled = &so
	if _, err := RunStatic(bad, "(16:1:1)", Mix("MIX 01")); err == nil {
		t.Fatal("invalid sampling options accepted")
	}
}

func TestSampledBaselinesWithoutCounters(t *testing.T) {
	// PIPP/DSR targets record no telemetry counters; the reconstruction
	// must degrade gracefully (no MPKI, no hit shares) instead of reporting
	// zeros as real values.
	r, err := RunPIPP(sampledConfig(), Mix("MIX 01"))
	if err != nil {
		t.Fatal(err)
	}
	rep := r.SampledReport
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Hits != nil || rep.MPKI.Value != 0 {
		t.Fatalf("counter-less target reported MPKI %v hits %+v", rep.MPKI, rep.Hits)
	}
	if r.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}
