package morphcache

import (
	"strings"
	"testing"

	"morphcache/internal/fault"
	"morphcache/internal/sim"
	"morphcache/internal/telemetry"
)

// banditTestConfig is a small fast configuration for facade-level bandit
// tests: 4 cores so mixes truncate, short epochs.
func banditTestConfig() Config {
	c := LabConfig()
	c.Cores = 4
	c.Epochs = 6
	c.WarmupEpochs = 1
	c.EpochCycles = 40_000
	return c
}

func TestRunBanditFacade(t *testing.T) {
	c := banditTestConfig()
	bo := DefaultBanditConfig()
	bo.Arms = []string{"(4:1:1)", "(1:1:4)"}
	bo.WindowEpochs = 2
	c.Bandit = &bo
	res, err := RunBandit(c, Mix("MIX 01"))
	if err != nil {
		t.Fatal(err)
	}
	if res.BanditReport == nil {
		t.Fatal("bandit run must attach a BanditReport")
	}
	if len(res.EpochThroughputs) != c.Epochs {
		t.Fatalf("stitched run has %d epochs, want %d", len(res.EpochThroughputs), c.Epochs)
	}
	if got := len(res.BanditReport.Windows); got != 3 {
		t.Fatalf("%d windows for 6 epochs at W=2, want 3", got)
	}
	if res.Throughput <= 0 {
		t.Fatal("bandit run produced no throughput")
	}
	for _, w := range res.BanditReport.Windows {
		if w.Arm != "(4:1:1)" && w.Arm != "(1:1:4)" {
			t.Fatalf("window chose unknown arm %q", w.Arm)
		}
	}
}

func TestRunBanditDefaultArms(t *testing.T) {
	c := banditTestConfig()
	c.Epochs = 2
	arms := DefaultBanditArms(c)
	if len(arms) < 5 {
		t.Fatalf("default zoo too small: %v", arms)
	}
	for _, want := range []string{"morph", "pipp", "dsr"} {
		found := false
		for _, a := range arms {
			found = found || a == want
		}
		if !found {
			t.Fatalf("default zoo %v lacks %q", arms, want)
		}
	}
}

func TestValidateBanditRejections(t *testing.T) {
	base := banditTestConfig()
	bo := DefaultBanditConfig()

	c := base
	c.Bandit = &bo
	c.Faults = &fault.Plan{Events: []fault.Event{{Kind: fault.WayDisable, Level: 3, Slice: 0, Ways: 1}}}
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "Faults") {
		t.Fatalf("Bandit+Faults must be rejected, got %v", err)
	}

	c = base
	c.Bandit = &bo
	sc := DefaultSampledConfig()
	c.Sampled = &sc
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "Sampled") {
		t.Fatalf("Bandit+Sampled must be rejected, got %v", err)
	}

	c = base
	bad := DefaultBanditConfig()
	bad.Strategy = "oracle"
	c.Bandit = &bad
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "strategy") {
		t.Fatalf("bad bandit options must fail Validate, got %v", err)
	}

	c = base
	c.Bandit = &bo
	if _, _, err := RunMorphCacheWithController(c, Mix("MIX 01")); err == nil || !strings.Contains(err.Error(), "bandit") {
		t.Fatalf("RunMorphCacheWithController must reject Bandit, got %v", err)
	}
}

func TestNonBanditEntryPointsRejectBandit(t *testing.T) {
	c := banditTestConfig()
	bo := DefaultBanditConfig()
	c.Bandit = &bo
	w := Mix("MIX 01")
	if _, err := RunStatic(c, "(4:1:1)", w); err == nil || !strings.Contains(err.Error(), "Bandit") {
		t.Fatalf("RunStatic must reject Bandit, got %v", err)
	}
	if _, err := RunMorphCache(c, w); err == nil || !strings.Contains(err.Error(), "Bandit") {
		t.Fatalf("RunMorphCache must reject Bandit, got %v", err)
	}
	if _, err := RunPIPP(c, w); err == nil || !strings.Contains(err.Error(), "Bandit") {
		t.Fatalf("RunPIPP must reject Bandit, got %v", err)
	}
	if _, err := RunDSR(c, w); err == nil || !strings.Contains(err.Error(), "Bandit") {
		t.Fatalf("RunDSR must reject Bandit, got %v", err)
	}
}

// TestArmRewardCapabilityPerPolicy pins which zoo policies can feed which
// reward modes: hierarchy-backed arms expose telemetry counters (MPKI) and
// hierarchy stats (energy); the counter-less PIPP/DSR baselines expose
// neither, so those reward modes must degrade.
func TestArmRewardCapabilityPerPolicy(t *testing.T) {
	c := banditTestConfig()
	cases := []struct {
		arm      string
		counters bool // telemetry.Snapshotter → usable for MPKI rewards
		energy   bool // *sim.HierarchyTarget → usable for energy rewards
	}{
		{"morph", true, true},
		{"morph-nodegrade", true, true},
		{"(4:1:1)", true, true},
		{"(1:1:4)", true, true},
		{"pipp", false, false},
		{"dsr", false, false},
	}
	for _, tc := range cases {
		t.Run(tc.arm, func(t *testing.T) {
			target, err := c.armTarget(tc.arm)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := target.(telemetry.Snapshotter); ok != tc.counters {
				t.Fatalf("arm %q Snapshotter=%v, want %v", tc.arm, ok, tc.counters)
			}
			if _, ok := target.(*sim.HierarchyTarget); ok != tc.energy {
				t.Fatalf("arm %q HierarchyTarget=%v, want %v", tc.arm, ok, tc.energy)
			}
		})
	}
}

// A zoo containing a counter-less arm degrades MPKI/energy rewards to
// throughput with a warning instead of starving those arms with zero
// rewards.
func TestBanditRewardDegradesWithCounterlessArm(t *testing.T) {
	c := banditTestConfig()
	c.Epochs = 4
	bo := DefaultBanditConfig()
	bo.Arms = []string{"pipp", "(4:1:1)"}
	bo.Reward = "mpki"
	bo.WindowEpochs = 2
	c.Bandit = &bo
	res, err := RunBandit(c, Mix("MIX 01"))
	if err != nil {
		t.Fatal(err)
	}
	rep := res.BanditReport
	if rep.Reward != "throughput" || rep.RewardRequested != "mpki" {
		t.Fatalf("expected degradation to throughput, got reward %q (requested %q)", rep.Reward, rep.RewardRequested)
	}
	if len(rep.Warnings) == 0 || !strings.Contains(rep.Warnings[0], "pipp") {
		t.Fatalf("warning must name the counter-less arm, got %v", rep.Warnings)
	}

	// An all-hierarchy zoo keeps the requested reward.
	bo2 := DefaultBanditConfig()
	bo2.Arms = []string{"(4:1:1)", "(1:1:4)"}
	bo2.Reward = "mpki"
	bo2.WindowEpochs = 2
	c.Bandit = &bo2
	res2, err := RunBandit(c, Mix("MIX 01"))
	if err != nil {
		t.Fatal(err)
	}
	if res2.BanditReport.Reward != "mpki" || len(res2.BanditReport.Warnings) != 0 {
		t.Fatalf("all-hierarchy zoo must keep mpki rewards, got %q warnings %v",
			res2.BanditReport.Reward, res2.BanditReport.Warnings)
	}
}

func TestBanditSpecDispatch(t *testing.T) {
	c := banditTestConfig()
	c.Epochs = 4
	bo := DefaultBanditConfig()
	bo.Arms = []string{"(4:1:1)", "(1:1:4)"}
	c.Bandit = &bo
	results, err := RunBatch(c, []RunSpec{{Policy: "bandit", Workload: Mix("MIX 01")}}, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].BanditReport == nil {
		t.Fatal("RunSpec policy \"bandit\" must route to RunBandit")
	}
	if results[0].Policy != "bandit" {
		t.Fatalf("policy label %q, want bandit", results[0].Policy)
	}
}

// The facade-level determinism check: the same bandit config over a real
// workload yields byte-identical schedules at different worker counts (the
// run is a single job, but its sub-windows must not depend on timing).
func TestBanditFacadeDeterminism(t *testing.T) {
	c := banditTestConfig()
	c.Epochs = 4
	bo := DefaultBanditConfig()
	bo.Arms = []string{"(4:1:1)", "(1:1:4)", "dsr"}
	bo.WindowEpochs = 1
	c.Bandit = &bo
	var ref *Result
	for i := 0; i < 3; i++ {
		res, err := RunBandit(c, Mix("MIX 01"))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		for w := range ref.BanditReport.Windows {
			if res.BanditReport.Windows[w] != ref.BanditReport.Windows[w] {
				t.Fatalf("rerun %d window %d differs: %+v vs %+v", i, w,
					res.BanditReport.Windows[w], ref.BanditReport.Windows[w])
			}
		}
		for e := range ref.EpochThroughputs {
			if res.EpochThroughputs[e] != ref.EpochThroughputs[e] {
				t.Fatalf("rerun %d epoch %d throughput differs", i, e)
			}
		}
	}
}
