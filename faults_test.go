package morphcache

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"morphcache/internal/fault"
)

// testPlan builds a small deterministic plan that fits fastConfig (16
// cores, 4 measured epochs after 1 warmup).
func testPlan(t *testing.T) *fault.Plan {
	t.Helper()
	p, err := fault.NewPlan(7, fault.Spec{Cores: 16, FirstEpoch: 1, Epochs: 2, Events: 4})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestConfigValidateRejections checks every Validate clause fires with a
// descriptive error, and that the Run* entry points propagate it instead
// of running.
func TestConfigValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }, "power of two"},
		{"non-power-of-two cores", func(c *Config) { c.Cores = 12 }, "power of two"},
		{"zero scale", func(c *Config) { c.Scale = 0 }, "Scale"},
		{"zero epochs", func(c *Config) { c.Epochs = 0 }, "Epochs"},
		{"negative warmup", func(c *Config) { c.WarmupEpochs = -1 }, "WarmupEpochs"},
		{"zero epoch cycles", func(c *Config) { c.EpochCycles = 0 }, "EpochCycles"},
		{"fault plan off the machine", func(c *Config) {
			c.Faults = &fault.Plan{Events: []fault.Event{
				{Kind: fault.WayDisable, Level: 3, Slice: 99, Ways: 1},
			}}
		}, "fault"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := fastConfig()
			tc.mut(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", c)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if _, rerr := RunMorphCache(c, Mix("MIX 01")); rerr == nil {
				t.Error("RunMorphCache ran an invalid configuration")
			}
		})
	}
	if err := fastConfig().Validate(); err != nil {
		t.Fatalf("Validate rejected the baseline test config: %v", err)
	}
}

// TestRunBatchCancelledContext checks a cancelled BatchOptions.Context
// stops the batch with the context error rather than returning results.
func TestRunBatchCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := []RunSpec{{Policy: "morph", Workload: Mix("MIX 01")}}
	_, err := RunBatch(fastConfig(), specs, BatchOptions{Workers: 2, Context: ctx})
	if err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFaultRunsDeterministic checks a faulty run is reproducible — same
// plan, same results — and byte-identical across batch worker counts, the
// same invariant the healthy path guarantees.
func TestFaultRunsDeterministic(t *testing.T) {
	c := fastConfig()
	c.Faults = testPlan(t)
	a, err := RunMorphCache(c, Mix("MIX 02"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMorphCache(c, Mix("MIX 02"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated faulty runs differ:\n%+v\n%+v", a, b)
	}
	specs := []RunSpec{
		{Policy: "morph", Workload: Mix("MIX 02")},
		{Policy: "morph-nodegrade", Workload: Mix("MIX 02")},
		{Policy: "(16:1:1)", Workload: Mix("MIX 02")},
	}
	r1, err := RunBatch(c, specs, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunBatch(c, specs, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Fatal("faulty batch results differ between -jobs 1 and -jobs 4")
	}
}

// TestFaultsChangeTheRun checks the plan actually damages the machine: a
// faulty run must not be identical to the healthy run of the same
// workload, and the healthy path must stay untouched by the fault code.
func TestFaultsChangeTheRun(t *testing.T) {
	healthy, err := RunMorphCache(fastConfig(), Mix("MIX 03"))
	if err != nil {
		t.Fatal(err)
	}
	c := fastConfig()
	c.Faults = testPlan(t)
	faulty, err := RunMorphCache(c, Mix("MIX 03"))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(healthy, faulty) {
		t.Fatal("fault plan had no effect on the run")
	}
}

// TestNoDegradeFacade checks the strawman entry point: it accepts the same
// faulty configuration and reports the distinct policy name.
func TestNoDegradeFacade(t *testing.T) {
	c := fastConfig()
	c.Faults = testPlan(t)
	r, err := RunMorphCacheNoDegrade(c, Mix("MIX 01"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Policy != "MorphCache-nodegrade" {
		t.Errorf("policy name %q, want MorphCache-nodegrade", r.Policy)
	}
}

// TestFaultsRejectedByNonHierarchyPolicies checks PIPP and DSR refuse a
// fault plan instead of silently ignoring it.
func TestFaultsRejectedByNonHierarchyPolicies(t *testing.T) {
	c := fastConfig()
	c.Faults = testPlan(t)
	if _, err := RunPIPP(c, Mix("MIX 01")); err == nil {
		t.Error("PIPP accepted a fault plan")
	}
	if _, err := RunDSR(c, Mix("MIX 01")); err == nil {
		t.Error("DSR accepted a fault plan")
	}
}
