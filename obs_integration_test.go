package morphcache

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"morphcache/internal/obs"
)

// obsClock returns a deterministic, concurrency-safe microsecond counter.
func obsClock() func() int64 {
	var mu sync.Mutex
	var t int64
	return func() int64 {
		mu.Lock()
		defer mu.Unlock()
		t += 5
		return t
	}
}

// runObservedBatch runs a small sweep with full observability at the given
// worker count and returns the results and the hub.
func runObservedBatch(t *testing.T, workers int) ([]*Result, *obs.Hub) {
	t.Helper()
	cfg := batchTestConfig()
	specs := fig13Specs([]string{"MIX 01"})
	hub := obs.NewHub(obs.HubOptions{Shards: workers, Trace: true, Clock: obsClock()})
	results, err := RunBatch(cfg, specs, BatchOptions{
		Workers: workers,
		Observe: func(_ int, label string) *obs.Observer { return hub.Observer(label) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, hub
}

// TestObservedBatchMatchesUnobserved asserts the DESIGN.md §10 invariant:
// attaching the full observability stack (metrics, job tracking, tracing)
// changes no simulation result.
func TestObservedBatchMatchesUnobserved(t *testing.T) {
	cfg := batchTestConfig()
	specs := fig13Specs([]string{"MIX 01"})
	plain, err := RunBatch(cfg, specs, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	observed, _ := runObservedBatch(t, 2)
	if !reflect.DeepEqual(plain, observed) {
		t.Fatal("observation changed batch results")
	}
}

// TestBatchTraceCanonicalAcrossWorkers asserts the trace-determinism
// acceptance gate: the canonical trace (timestamps, durations, and track
// ids stripped; lines sorted) of the same sweep is byte-identical at
// Workers 1 and Workers 4.
func TestBatchTraceCanonicalAcrossWorkers(t *testing.T) {
	canon := func(workers int) string {
		_, hub := runObservedBatch(t, workers)
		var buf bytes.Buffer
		if err := obs.CanonicalTrace(hub.Tracer.Events(), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq, par := canon(1), canon(4)
	if seq == "" {
		t.Fatal("empty canonical trace")
	}
	if seq != par {
		t.Fatalf("canonical traces differ between worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", seq, par)
	}
}

// TestBatchJobLifecycleTracked checks the /jobs accounting RunBatch drives
// through the per-job observers.
func TestBatchJobLifecycleTracked(t *testing.T) {
	results, hub := runObservedBatch(t, 2)
	v := hub.Jobs()
	if v.Total != len(results) || v.Done != len(results) || v.Running != 0 || v.Queued != 0 || v.Failed != 0 {
		t.Fatalf("jobs view after batch = %+v", v)
	}
	if got := hub.Metrics.EpochsValue(); got == 0 {
		t.Fatal("no epochs counted")
	}
	if got := hub.Metrics.ServedValue(obs.ServedL1); got == 0 {
		t.Fatal("no L1 accesses counted")
	}
	// The morph jobs reconfigure; their decisions must be counted.
	if hub.Metrics.ReconfigValue("merge")+hub.Metrics.ReconfigValue("split") == 0 {
		t.Fatal("no reconfiguration decisions counted")
	}
}

// TestBatchStartedCallback checks the facade-level start events: one per
// job, before the corresponding completion event.
func TestBatchStartedCallback(t *testing.T) {
	cfg := batchTestConfig()
	specs := fig13Specs([]string{"MIX 01"})
	var mu sync.Mutex
	startedAt := map[int]int{} // job index -> sequence number
	seq := 0
	_, err := RunBatch(cfg, specs, BatchOptions{
		Workers: 2,
		Started: func(ev JobEvent) {
			mu.Lock()
			startedAt[ev.Index] = seq
			seq++
			mu.Unlock()
		},
		Progress: func(ev JobEvent) {
			mu.Lock()
			_, ok := startedAt[ev.Index]
			seq++
			mu.Unlock()
			if !ok {
				t.Errorf("job %d finished without a start event", ev.Index)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(startedAt) != len(specs) {
		t.Fatalf("%d start events for %d jobs", len(startedAt), len(specs))
	}
}
