// Command calib runs a reduced experiment matrix for calibrating the
// workload model and controller: a few mixes and PARSEC apps across the
// static topologies, MorphCache, PIPP and DSR, printing throughput
// normalized to the (16:1:1) baseline (the paper's Fig. 13/16/17 format).
package main

import (
	"flag"
	"fmt"
	"os"

	"morphcache/internal/baselines/dsr"
	"morphcache/internal/baselines/pipp"
	"morphcache/internal/core"
	"morphcache/internal/hierarchy"
	"morphcache/internal/metrics"
	"morphcache/internal/sim"
	"morphcache/internal/workload"
)

func main() {
	var (
		scale  = flag.Int("scale", 8, "capacity divisor")
		epochs = flag.Int("epochs", 8, "measured epochs")
		cycles = flag.Uint64("cycles", 500_000, "epoch cycles")
		mixes  = flag.String("mixes", "MIX 01,MIX 04,MIX 08,MIX 10", "comma list")
		par    = flag.String("parsec", "dedup,freqmine,streamcluster,blackscholes", "comma list")
		full   = flag.Bool("pipp", false, "include PIPP and DSR")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.Epochs = *epochs
	cfg.WarmupEpochs = 2
	cfg.EpochCycles = *cycles
	gcfg := workload.ScaledGenConfig(*scale)

	policies := []string{"(16:1:1)", "(1:1:16)", "(4:4:1)", "(8:2:1)", "(1:16:1)", "morph"}
	if *full {
		policies = append(policies, "pipp", "dsr")
	}

	fmt.Printf("%-14s", "workload")
	for _, p := range policies {
		fmt.Printf(" %10s", p)
	}
	fmt.Println("   (normalized to (16:1:1))")

	runOne := func(name string, gens func() []*workload.Generator) {
		var base float64
		fmt.Printf("%-14s", name)
		for _, pol := range policies {
			run, err := execute(cfg, *scale, pol, gens())
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			t := run.Throughput()
			if pol == "(16:1:1)" {
				base = t
			}
			fmt.Printf(" %10.3f", t/base)
		}
		fmt.Println()
	}

	for _, mn := range split(*mixes) {
		mix, err := workload.MixByName(mn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runOne(mn, func() []*workload.Generator { return workload.MixGenerators(mix, gcfg, 1) })
	}
	for _, pn := range split(*par) {
		p, err := workload.ByName(pn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runOne(pn, func() []*workload.Generator { return workload.ParsecGenerators(p, 16, gcfg, 1) })
	}
}

func split(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func execute(cfg sim.Config, scale int, policy string, gens []*workload.Generator) (*metrics.Run, error) {
	params := hierarchy.ScaledDefault(16, scale)
	switch policy {
	case "morph":
		return sim.RunPolicy(cfg, params, core.New(core.DefaultOptions()), gens)
	case "pipp":
		return pipp.Run(cfg, params, gens)
	case "dsr":
		return dsr.Run(cfg, params, gens)
	default:
		return sim.RunStatic(cfg, params, policy, gens)
	}
}
