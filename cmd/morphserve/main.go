// Command morphserve runs the serve-mode MorphCache: a sharded in-memory
// cache whose capacity is dynamically repartitioned between tenants by
// the paper's ACFV-driven controller (internal/serve; DESIGN.md §12).
//
// The cache API and the admin endpoints share one mux and listener:
//
//	GET/PUT/POST/DELETE /cache/{tenant}/{key...}
//	GET /topology                 current partition map (JSON)
//	GET /decisions                controller decision audit ring (JSON)
//	GET /events                   live decision/degraded/stall SSE feed
//	GET /metrics                  Prometheus text (per-tenant series)
//	GET /healthz                  200, 503 once draining (?verbose=1: detail)
//	/debug/pprof, /debug/vars
//
// With -wal the cache is crash-safe: every acknowledged write is logged
// (and under -fsync always, synced) before it is applied, and a restart
// replays the log — values, epoch counter, and partition grants all come
// back, with a torn tail truncated at the last valid record. The
// -tenant-rps/-max-inflight/-request-timeout flags arm overload
// admission (429 + Retry-After; see internal/serve.AdmissionConfig).
//
// Observability (DESIGN.md §15): -log text|json|off selects structured
// logging (decision/degradation/fault lines always on, access lines
// sampled 1-in—access-log-every), -slo-p99 arms per-tenant burn-rate
// tracking on /metrics and /healthz?verbose=1, -audit sizes the
// /decisions ring, and -trace writes a Chrome trace of request spans
// (shard-lock wait, WAL append, store access) at shutdown.
//
// SIGINT/SIGTERM drains gracefully: /healthz flips to 503, in-flight
// requests finish (bounded by -shutdown-timeout), new cache operations
// get 503, the WAL is synced and closed, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"morphcache/internal/obs"
	"morphcache/internal/serve"
	"morphcache/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "morphserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:8944", "listen address for the cache + admin mux")
		tenants   = flag.String("tenants", "", "comma-separated tenant names (required)")
		slots     = flag.Int("slots", 16, "capacity slots (the paper's cores); power of two in [2, 32]")
		shards    = flag.Int("shards", 4, "concurrency shards; power of two")
		slotBytes = flag.Int("slot-bytes", 256<<10, "per-slot capacity in bytes (across shards)")
		ways      = flag.Int("ways", 8, "slice associativity")
		maxValue  = flag.Int("max-value-bytes", 64<<10, "largest accepted value")
		epoch     = flag.Duration("epoch", 10*time.Second, "reconfiguration interval")

		walDir        = flag.String("wal", "", "write-ahead log directory; empty disables persistence")
		fsync         = flag.String("fsync", "always", "WAL durability: always | interval | never")
		fsyncInterval = flag.Duration("fsync-interval", 100*time.Millisecond, "sync cadence for -fsync interval")
		segBytes      = flag.Int64("wal-segment-bytes", 16<<20, "WAL segment roll size")

		tenantRPS   = flag.Float64("tenant-rps", 0, "per-tenant sustained requests/sec (0 = unlimited)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant burst allowance (0 = max(rps, 1))")
		maxInflight = flag.Int("max-inflight", 0, "global concurrent-request cap (0 = unlimited)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request deadline (0 = none)")

		logMode   = flag.String("log", "off", "structured logging: text | json | off")
		logEvery  = flag.Int("access-log-every", 0, "sample one access log line per N operations (0 = default 128)")
		sloP99    = flag.Duration("slo-p99", 0, "per-tenant p99 latency target; arms SLO burn-rate gauges (0 = off)")
		auditCap  = flag.Int("audit", 0, "decision audit ring capacity for /decisions (0 = default 256)")
		traceFile = flag.String("trace", "", "write a Chrome trace of request spans here at shutdown (empty = off)")

		shutdownTimeout = flag.Duration("shutdown-timeout", 5*time.Second, "graceful drain deadline on SIGINT/SIGTERM")
	)
	flag.Parse()
	if *tenants == "" {
		return fmt.Errorf("-tenants is required (e.g. -tenants alpha,beta)")
	}

	cfg := serve.Config{
		Tenants:       strings.Split(*tenants, ","),
		Slots:         *slots,
		Shards:        *shards,
		SlotBytes:     *slotBytes,
		Ways:          *ways,
		MaxValueBytes: *maxValue,
		EpochInterval: *epoch,
		Admission: serve.AdmissionConfig{
			TenantRPS:      *tenantRPS,
			TenantBurst:    *tenantBurst,
			MaxInFlight:    *maxInflight,
			RequestTimeout: *reqTimeout,
		},
		Obs: serve.ObsConfig{
			AccessLogEvery: *logEvery,
			SLOTargetP99:   *sloP99,
			AuditCapacity:  *auditCap,
		},
	}
	switch *logMode {
	case "text":
		cfg.Obs.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		cfg.Obs.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
	default:
		return fmt.Errorf("unknown -log mode %q (want text, json, or off)", *logMode)
	}
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer(nil)
		cfg.Obs.Tracer = tracer
	}
	if *walDir != "" {
		policy, err := wal.ParseFsyncPolicy(*fsync)
		if err != nil {
			return err
		}
		cfg.Persist = &serve.PersistConfig{
			Dir:           *walDir,
			Fsync:         policy,
			FsyncInterval: *fsyncInterval,
			SegmentBytes:  *segBytes,
		}
	}
	hub := obs.NewHub(obs.HubOptions{Shards: 1})
	cache, err := serve.New(cfg, hub.Registry)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	admin := obs.NewAdmin(hub.Registry, hub.Jobs)
	cache.Register(admin)
	admin.SetHealthDetail(func() any { return cache.HealthDetail() })
	srv, err := obs.Serve(*addr, admin)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "morphserve: serving %d tenants on http://%s (policy %s, epoch %s)\n",
		len(cfg.Tenants), srv.Addr(), cache.PolicyName(), *epoch)
	if cfg.Persist != nil {
		fmt.Fprintf(os.Stderr, "morphserve: wal %s (fsync %s)\n", cfg.Persist.Dir, *fsync)
	}

	go cache.RunEpochs(ctx)

	<-ctx.Done()
	stop() // a second signal kills immediately
	fmt.Fprintln(os.Stderr, "morphserve: draining")
	admin.SetHealthy(false)
	cache.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := cache.Close(); err != nil {
		return fmt.Errorf("wal close: %w", err)
	}
	if tracer != nil {
		if err := writeTrace(*traceFile, tracer); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "morphserve: trace written to %s\n", *traceFile)
	}
	fmt.Fprintln(os.Stderr, "morphserve: done")
	return nil
}

// writeTrace dumps the collected request spans as a Chrome trace file.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
