// Command morphserve runs the serve-mode MorphCache: a sharded in-memory
// cache whose capacity is dynamically repartitioned between tenants by
// the paper's ACFV-driven controller (internal/serve; DESIGN.md §12).
//
// The cache API and the admin endpoints share one mux and listener:
//
//	GET/PUT/POST/DELETE /cache/{tenant}/{key...}
//	GET /topology                 current partition map (JSON)
//	GET /metrics                  Prometheus text (per-tenant series)
//	GET /healthz                  200, 503 once draining
//	/debug/pprof, /debug/vars
//
// With -wal the cache is crash-safe: every acknowledged write is logged
// (and under -fsync always, synced) before it is applied, and a restart
// replays the log — values, epoch counter, and partition grants all come
// back, with a torn tail truncated at the last valid record. The
// -tenant-rps/-max-inflight/-request-timeout flags arm overload
// admission (429 + Retry-After; see internal/serve.AdmissionConfig).
//
// SIGINT/SIGTERM drains gracefully: /healthz flips to 503, in-flight
// requests finish (bounded by -shutdown-timeout), new cache operations
// get 503, the WAL is synced and closed, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"morphcache/internal/obs"
	"morphcache/internal/serve"
	"morphcache/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "morphserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:8944", "listen address for the cache + admin mux")
		tenants   = flag.String("tenants", "", "comma-separated tenant names (required)")
		slots     = flag.Int("slots", 16, "capacity slots (the paper's cores); power of two in [2, 32]")
		shards    = flag.Int("shards", 4, "concurrency shards; power of two")
		slotBytes = flag.Int("slot-bytes", 256<<10, "per-slot capacity in bytes (across shards)")
		ways      = flag.Int("ways", 8, "slice associativity")
		maxValue  = flag.Int("max-value-bytes", 64<<10, "largest accepted value")
		epoch     = flag.Duration("epoch", 10*time.Second, "reconfiguration interval")

		walDir        = flag.String("wal", "", "write-ahead log directory; empty disables persistence")
		fsync         = flag.String("fsync", "always", "WAL durability: always | interval | never")
		fsyncInterval = flag.Duration("fsync-interval", 100*time.Millisecond, "sync cadence for -fsync interval")
		segBytes      = flag.Int64("wal-segment-bytes", 16<<20, "WAL segment roll size")

		tenantRPS   = flag.Float64("tenant-rps", 0, "per-tenant sustained requests/sec (0 = unlimited)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant burst allowance (0 = max(rps, 1))")
		maxInflight = flag.Int("max-inflight", 0, "global concurrent-request cap (0 = unlimited)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request deadline (0 = none)")

		shutdownTimeout = flag.Duration("shutdown-timeout", 5*time.Second, "graceful drain deadline on SIGINT/SIGTERM")
	)
	flag.Parse()
	if *tenants == "" {
		return fmt.Errorf("-tenants is required (e.g. -tenants alpha,beta)")
	}

	cfg := serve.Config{
		Tenants:       strings.Split(*tenants, ","),
		Slots:         *slots,
		Shards:        *shards,
		SlotBytes:     *slotBytes,
		Ways:          *ways,
		MaxValueBytes: *maxValue,
		EpochInterval: *epoch,
		Admission: serve.AdmissionConfig{
			TenantRPS:      *tenantRPS,
			TenantBurst:    *tenantBurst,
			MaxInFlight:    *maxInflight,
			RequestTimeout: *reqTimeout,
		},
	}
	if *walDir != "" {
		policy, err := wal.ParseFsyncPolicy(*fsync)
		if err != nil {
			return err
		}
		cfg.Persist = &serve.PersistConfig{
			Dir:           *walDir,
			Fsync:         policy,
			FsyncInterval: *fsyncInterval,
			SegmentBytes:  *segBytes,
		}
	}
	hub := obs.NewHub(obs.HubOptions{Shards: 1})
	cache, err := serve.New(cfg, hub.Registry)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	admin := obs.NewAdmin(hub.Registry, hub.Jobs)
	cache.Register(admin)
	srv, err := obs.Serve(*addr, admin)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "morphserve: serving %d tenants on http://%s (policy %s, epoch %s)\n",
		len(cfg.Tenants), srv.Addr(), cache.PolicyName(), *epoch)
	if cfg.Persist != nil {
		fmt.Fprintf(os.Stderr, "morphserve: wal %s (fsync %s)\n", cfg.Persist.Dir, *fsync)
	}

	go cache.RunEpochs(ctx)

	<-ctx.Done()
	stop() // a second signal kills immediately
	fmt.Fprintln(os.Stderr, "morphserve: draining")
	admin.SetHealthy(false)
	cache.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := cache.Close(); err != nil {
		return fmt.Errorf("wal close: %w", err)
	}
	fmt.Fprintln(os.Stderr, "morphserve: done")
	return nil
}
