package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile drops content into a temp file and returns its path.
func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const validTrace = `{"traceEvents":[
	{"name":"job","cat":"batch","ph":"X","ts":10,"dur":40,"pid":1,"tid":2,"args":{"label":"morph MIX 01"}},
	{"name":"epoch","cat":"sim","ph":"X","ts":12,"dur":8,"pid":1,"tid":2,"args":{"epoch":0}},
	{"name":"fault","cat":"sim","ph":"i","ts":14,"pid":1,"tid":2}
],"displayTimeUnit":"ms"}`

func TestValidTrace(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{writeFile(t, validTrace)}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "3 event(s) OK") {
		t.Fatalf("summary missing: %s", errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("stdout should be empty without -canon: %s", out.String())
	}
}

func TestCanonOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-canon", writeFile(t, validTrace)}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("canonical lines = %d, want 3:\n%s", len(lines), out.String())
	}
	for _, l := range lines {
		for _, field := range []string{`"ts"`, `"dur"`, `"pid"`, `"tid"`} {
			if strings.Contains(l, field) {
				t.Fatalf("canonical line retains %s: %s", field, l)
			}
		}
	}
	if !sortedLines(lines) {
		t.Fatalf("canonical lines not sorted:\n%s", out.String())
	}
}

func sortedLines(lines []string) bool {
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			return false
		}
	}
	return true
}

func TestInvalidTraces(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents":[`,
		"empty events":  `{"traceEvents":[]}`,
		"nameless":      `{"traceEvents":[{"name":"","ph":"X","ts":1}]}`,
		"unknown phase": `{"traceEvents":[{"name":"e","ph":"B","ts":1}]}`,
		"negative ts":   `{"traceEvents":[{"name":"e","ph":"i","ts":-1}]}`,
		"negative dur":  `{"traceEvents":[{"name":"e","ph":"X","ts":1,"dur":-2}]}`,
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run([]string{writeFile(t, content)}, &out, &errb); code != 1 {
				t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
			}
		})
	}
}

func TestMissingFile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "nope.json")}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{{}, {"a.json", "b.json"}, {"-bogus"}} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Fatalf("args %v: exit %d, want 2", args, code)
		}
	}
}
