// Command tracecheck validates a Chrome trace-event JSON document (the
// -trace output of experiments and morphsim) and optionally emits its
// canonical form.
//
// Usage:
//
//	tracecheck run.trace.json
//	tracecheck -canon run.trace.json > run.canon
//
// Validation checks the document loads in chrome://tracing-compatible
// viewers: an object with a non-empty traceEvents array whose events have
// names, known phases (complete "X" or instant "i"), and non-negative
// timestamps and durations.
//
// -canon prints one sorted JSON line per event with every nondeterministic
// field (timestamp, duration, pid, tid) stripped. Two runs of the same
// batch produce identical canonical traces at any -jobs count, which is
// what the CI obs gate diffs (DESIGN.md §10).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"morphcache/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point (0 = valid, 1 = invalid or unreadable,
// 2 = usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	canon := fs.Bool("canon", false, "print the canonical (determinism-comparable) form on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: tracecheck [-canon] <trace.json>")
		return 2
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "tracecheck:", err)
		return 1
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(stderr, "tracecheck: %s: not a trace document: %v\n", path, err)
		return 1
	}
	if err := check(doc); err != nil {
		fmt.Fprintf(stderr, "tracecheck: %s: %v\n", path, err)
		return 1
	}
	if *canon {
		if err := obs.CanonicalTrace(doc.TraceEvents, stdout); err != nil {
			fmt.Fprintln(stderr, "tracecheck:", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "tracecheck: %s: %d event(s) OK\n", path, len(doc.TraceEvents))
	return 0
}

// check validates the event stream.
func check(doc obs.TraceDoc) error {
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("no trace events")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("event %d: empty name", i)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				return fmt.Errorf("event %d (%s): negative duration %d", i, ev.Name, ev.Dur)
			}
		case "i":
			// Instant events carry no duration.
		default:
			return fmt.Errorf("event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.TS < 0 {
			return fmt.Errorf("event %d (%s): negative timestamp %d", i, ev.Name, ev.TS)
		}
		if ev.PID < 0 || ev.TID < 0 {
			return fmt.Errorf("event %d (%s): negative pid/tid", i, ev.Name)
		}
	}
	return nil
}
