// Command tracestat summarizes a trace file produced by morphsim
// -trace-out (or any writer of the internal/trace format): per-core
// reference counts, write fractions, unique-line footprints, and per-epoch
// footprint series — the quantities the MorphCache controller's decisions
// are built on.
//
//	morphsim -workload "MIX 05" -policy morph -trace-out mix05.mctr
//	tracestat mix05.mctr
package main

import (
	"flag"
	"fmt"
	"os"

	"morphcache/internal/mem"
	"morphcache/internal/trace"
)

func main() {
	perEpoch := flag.Bool("epochs", false, "print per-epoch unique-line footprints per core")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-epochs] <file.mctr>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("trace: %d cores, %d recorded epochs\n\n", tr.Cores, tr.Epochs())
	fmt.Printf("%-5s %6s %12s %10s %10s %10s\n", "core", "asid", "refs", "writes", "unique", "footprint")
	var totalRefs, totalUnique int
	for c := 0; c < tr.Cores; c++ {
		cur, err := tr.Cursor(c)
		if err != nil {
			fmt.Printf("%-5d %s\n", c, err)
			continue
		}
		refs := tr.Len(c)
		writes := 0
		unique := make(map[mem.GlobalLine]struct{})
		cur.BeginEpoch(0)
		for i := 0; i < refs; i++ {
			a := cur.Next()
			if a.Kind == mem.Write {
				writes++
			}
			unique[a.Global()] = struct{}{}
		}
		fmt.Printf("%-5d %6d %12d %9.1f%% %10d %9.1f%%\n",
			c, cur.ASID(), refs, 100*float64(writes)/float64(max(refs, 1)),
			len(unique), 100*float64(len(unique))/float64(max(refs, 1)))
		totalRefs += refs
		totalUnique += len(unique)
	}
	fmt.Printf("\ntotal: %d references, %d unique (per-core) lines\n", totalRefs, totalUnique)

	if *perEpoch {
		fmt.Println("\nper-epoch unique lines per core:")
		fmt.Printf("%-6s", "epoch")
		for c := 0; c < tr.Cores; c++ {
			fmt.Printf(" %8s", fmt.Sprintf("c%d", c))
		}
		fmt.Println()
		for e := 0; e < tr.Epochs(); e++ {
			fmt.Printf("%-6d", e)
			for c := 0; c < tr.Cores; c++ {
				fmt.Printf(" %8d", epochUnique(tr, c, e))
			}
			fmt.Println()
		}
	}
}

// epochUnique counts a core's distinct lines within one recorded epoch.
func epochUnique(tr *trace.Trace, core, epoch int) int {
	cur, err := tr.Cursor(core)
	if err != nil {
		return 0
	}
	n := tr.EpochLen(core, epoch)
	cur.BeginEpoch(epoch)
	unique := make(map[mem.Line]struct{}, n)
	for i := 0; i < n; i++ {
		unique[cur.Next().Line] = struct{}{}
	}
	return len(unique)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracestat:", err)
	os.Exit(1)
}
