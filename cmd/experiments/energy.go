package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/core"
	"morphcache/internal/energy"
	"morphcache/internal/hierarchy"
	"morphcache/internal/runner"
	"morphcache/internal/sim"
	"morphcache/internal/stats"
	"morphcache/internal/topology"
)

// energyExp quantifies the §7 future-work claim: the segmented bus reduces
// interconnect energy because isolated segment groups only switch their own
// capacitance. It meters three designs on the same workloads:
//
//   - MorphCache on the segmented bus (groups sized by the controller),
//   - MorphCache's traffic charged as if every transaction drove a
//     monolithic chip-spanning bus, and
//   - the all-shared static baseline (whose every transaction genuinely
//     crosses the whole chip).
func energyExp(cfg mc.Config, quick bool) error {
	names := mixNames(quick)
	if len(names) > 4 {
		names = names[:4]
	}
	// One metering job per mix; each job builds its own hierarchies and
	// meters, returning only the numbers the table needs.
	type energyRow struct{ segUJ, monoUJ, sharedUJ, saving float64 }
	rows, err := runner.Map(runCtx, names, runner.Options{Workers: jobCount(), Progress: runnerProgress},
		func(_ int, mn string) (energyRow, error) {
			w := mc.Mix(mn)
			gens, err := w.Generators(cfg)
			if err != nil {
				return energyRow{}, err
			}
			p := cfg.Params()
			p.ChargeRemote = true
			sys, err := hierarchy.New(p, topology.AllPrivate(p.Cores))
			if err != nil {
				return energyRow{}, err
			}
			seg := energy.NewMeter(energy.Default())
			mono := energy.NewMeter(energy.Default())
			pol := &meteredPolicy{inner: core.New(cfg.Morph), sys: sys, seg: seg, mono: mono}
			eng, err := sim.New(simConfigOf(cfg), &sim.HierarchyTarget{Sys: sys, Policy: pol}, gens)
			if err != nil {
				return energyRow{}, err
			}
			eng.Run()
			pol.flush()

			// The all-shared static baseline, metered on its own traffic.
			gens2, err := w.Generators(cfg)
			if err != nil {
				return energyRow{}, err
			}
			sp := cfg.Params()
			sp.ChargeRemote = false
			ssys, err := hierarchy.New(sp, topology.AllShared(sp.Cores))
			if err != nil {
				return energyRow{}, err
			}
			seng, err := sim.New(simConfigOf(cfg), &sim.HierarchyTarget{Sys: ssys, Policy: sim.NopPolicy{Label: "(16:1:1)"}}, gens2)
			if err != nil {
				return energyRow{}, err
			}
			seng.Run()
			sharedMeter := energy.NewMeter(energy.Default())
			sharedMeter.Charge(hierarchy.Stats{}, *ssys.Stats(), energy.MonolithicTopology(sp.Cores))

			return energyRow{
				segUJ:    seg.TotalNJ / 1000,
				monoUJ:   mono.TotalNJ / 1000,
				sharedUJ: sharedMeter.TotalNJ / 1000,
				saving:   1 - seg.BusNJ/mono.BusNJ,
			}, nil
		})
	if err != nil {
		return err
	}
	header("mix", []string{"morph-seg", "morph-mono", "shared", "seg-saving"})
	var savings []float64
	for i, mn := range names {
		r := rows[i]
		fmt.Fprintf(outw, "%-14s %9.1fuJ %9.1fuJ %9.1fuJ %9.0f%%\n",
			mn, r.segUJ, r.monoUJ, r.sharedUJ, 100*r.saving)
		savings = append(savings, r.saving)
	}
	fmt.Fprintf(outw, "\nmean interconnect energy saved by segmentation (same traffic): %.0f%%\n",
		100*stats.Mean(savings))
	fmt.Fprintln(outw, "(the paper's §7 expectation, quantified: isolated segments switch only")
	fmt.Fprintln(outw, "their own capacitance, so right-sized groups cut bus energy sharply)")
	return nil
}

// meteredPolicy decorates the MorphCache controller with per-epoch energy
// charging under the topology that was in force during the epoch.
type meteredPolicy struct {
	inner     *core.Controller
	sys       *hierarchy.System
	seg, mono *energy.Meter
	prev      hierarchy.Stats
}

func (m *meteredPolicy) Name() string { return "MorphCache+energy" }

func (m *meteredPolicy) EndEpoch(e int, mach core.Machine) (int, bool) {
	cur := *m.sys.Stats()
	m.seg.Charge(m.prev, cur, m.sys.Topology())
	m.mono.Charge(m.prev, cur, energy.MonolithicTopology(m.sys.Cores()))
	m.prev = cur
	return m.inner.EndEpoch(e, mach)
}

// flush charges any tail accumulated after the last EndEpoch.
func (m *meteredPolicy) flush() {
	cur := *m.sys.Stats()
	m.seg.Charge(m.prev, cur, m.sys.Topology())
	m.mono.Charge(m.prev, cur, energy.MonolithicTopology(m.sys.Cores()))
	m.prev = cur
}
