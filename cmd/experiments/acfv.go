package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/acfv"
	"morphcache/internal/cache"
	"morphcache/internal/mem"
	"morphcache/internal/stats"
	"morphcache/internal/workload"
)

// fig5 reproduces Fig. 5: the correlation coefficient between the ACF
// estimated by vectors of 2..512 bits (XOR vs. modulo hashing) and the
// one-to-one oracle, for the hmmer benchmark on a 1 MB L2 slice. The
// replay uses the paper's exact update rule: on every fill the incoming
// tag's bit is set and the victim's bit cleared; all vectors reset at each
// interval; |ACFV| is sampled at interval end.
//
// Paper: correlation ≈0.94 at 64 bits and ≈0.96 at 128 bits, XOR
// consistently above modulo at small widths.
func fig5(cfg mc.Config, quick bool) error {
	prof, err := workload.ByName("hmmer")
	if err != nil {
		return err
	}
	// A full-size 1 MB slice, as in the paper's calibration. The vectors
	// hash the *tag* of the line (its address above the index bits), so a
	// footprint of thousands of lines maps to tens of distinct tags —
	// which is what lets vectors as small as 64 bits track it (Fig. 4
	// shows the tag feeding H(addr)).
	slice := cache.New(cache.Config{SizeBytes: 1 << 20, Ways: 16, Policy: cache.LRU})
	indexBits := 0
	for 1<<indexBits < slice.Sets() {
		indexBits++
	}
	tagOf := func(l mem.Line) mem.Line { return l >> uint(indexBits) }
	gen := workload.NewGenerator(prof, workload.DefaultGenConfig(), 1, 0, cfg.Seed)

	widths := []int{2, 8, 32, 64, 128, 512}
	type est struct {
		hash acfv.Hash
		vecs []*acfv.Vector
	}
	ests := []est{{hash: acfv.XOR}, {hash: acfv.Modulo}}
	for i := range ests {
		for _, w := range widths {
			ests[i].vecs = append(ests[i].vecs, acfv.NewVector(w, ests[i].hash))
		}
	}
	oracle := acfv.NewOracle()

	// The sampling interval is chosen so the per-interval footprint is a
	// few hundred lines: a W-bit vector can only resolve footprints up to
	// roughly W*ln(W) distinct lines, which is exactly the regime Fig. 5
	// sweeps (2..512 bits).
	epochs, refsPerEpoch := 48, 30000
	if quick {
		epochs = 24
	}
	samples := make(map[string][]float64) // "hash/width" -> per-epoch |ACFV|
	var oracleSamples []float64

	for e := 0; e < epochs; e++ {
		gen.BeginEpoch(e)
		for i := 0; i < refsPerEpoch; i++ {
			a := gen.Next()
			if slice.Access(a.ASID, a.Line, false) >= 0 {
				continue
			}
			old := slice.Insert(a.ASID, a.Line, false)
			for _, es := range ests {
				for _, v := range es.vecs {
					v.Set(tagOf(a.Line))
					if old.Valid {
						v.Clear(tagOf(old.Line))
					}
				}
			}
			oracle.Set(tagOf(a.Line))
			if old.Valid {
				oracle.Clear(tagOf(old.Line))
			}
		}
		for _, es := range ests {
			for wi, v := range es.vecs {
				key := fmt.Sprintf("%v/%d", es.hash, widths[wi])
				samples[key] = append(samples[key], float64(v.Ones()))
				v.Reset()
			}
		}
		oracleSamples = append(oracleSamples, float64(oracle.Ones()))
		oracle.Reset()
	}

	fmt.Fprintln(outw, "correlation with oracle ACF estimator (hmmer, 1 MB slice):")
	header("bits", []string{"xor", "modulo"})
	for wi, w := range widths {
		_ = wi
		x := stats.Correlation(samples[fmt.Sprintf("xor/%d", w)], oracleSamples)
		m := stats.Correlation(samples[fmt.Sprintf("modulo/%d", w)], oracleSamples)
		fmt.Fprintf(outw, "%-14d %10.3f %10.3f\n", w, x, m)
	}
	fmt.Fprintln(outw, "\npaper reference: 0.94 at 64 bits, 0.96 at 128 bits; small vectors suffice.")
	return nil
}
