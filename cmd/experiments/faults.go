package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/fault"
	"morphcache/internal/stats"
)

// faultsExp measures graceful degradation under deterministic hardware
// faults (DESIGN.md §9). For each mix it runs three jobs:
//
//   - MorphCache on a healthy machine (the reference),
//   - MorphCache on a machine following a deterministic fault plan, with
//     the controller's degradation pass reacting (quarantining corrupted
//     monitors, splitting groups off dead links, avoiding faulty spans),
//   - the same faulty machine under "morph-nodegrade": the identical
//     controller with the degradation pass disabled — the strawman that
//     keeps acting on corrupted readings and keeps groups spanning dead
//     links.
//
// The table reports the throughput each faulty run retains relative to the
// healthy reference. The claim under test: reacting to faults retains
// strictly more throughput than ignoring them.
func faultsExp(cfg mc.Config, quick bool) error {
	// Fault plans damage the machine at specific epochs; a sampled run does
	// not simulate them all, so the facade rejects the combination. The
	// fault experiment is therefore always a full simulation, -sampled or
	// not (the flag's help says so).
	cfg.Sampled = nil
	names := mixNames(quick)

	// One plan for every mix, drawn from the workload seed: the injection
	// window is the first half of the measured region, so warmup stays
	// clean and every fault persists long enough to matter. Eight events
	// walk the full fault taxonomy (two dead links, two corrupt monitors,
	// two way failures, one degraded link, one memory derate).
	window := cfg.Epochs / 2
	if window < 1 {
		window = 1
	}
	plan, err := fault.NewPlan(cfg.Seed, fault.Spec{
		Cores:      cfg.Cores,
		FirstEpoch: cfg.WarmupEpochs,
		Epochs:     window,
		Events:     8,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(outw, "fault plan (shared by every mix):")
	for _, e := range plan.Events {
		fmt.Fprintln(outw, "  ", e)
	}
	fmt.Fprintln(outw)

	fcfg := cfg
	fcfg.Faults = plan

	var specs []mc.RunSpec
	for _, mn := range names {
		w := mc.Mix(mn)
		specs = append(specs,
			mc.RunSpec{Policy: "morph", Workload: w},
			mc.RunSpec{Policy: "morph", Workload: w, Config: &fcfg},
			mc.RunSpec{Policy: "morph-nodegrade", Workload: w, Config: &fcfg},
		)
	}
	if err := prefetch(cfg, specs); err != nil {
		return err
	}

	header("mix", []string{"healthy", "degrade", "nodegrade"})
	var degRet, noRet []float64
	for _, mn := range names {
		w := mc.Mix(mn)
		healthy, err := specResult(cfg, mc.RunSpec{Policy: "morph", Workload: w})
		if err != nil {
			return err
		}
		deg, err := specResult(cfg, mc.RunSpec{Policy: "morph", Workload: w, Config: &fcfg})
		if err != nil {
			return err
		}
		nod, err := specResult(cfg, mc.RunSpec{Policy: "morph-nodegrade", Workload: w, Config: &fcfg})
		if err != nil {
			return err
		}
		row(mn, []float64{healthy.Throughput, deg.Throughput, nod.Throughput}, healthy.Throughput)
		degRet = append(degRet, deg.Throughput/healthy.Throughput)
		noRet = append(noRet, nod.Throughput/healthy.Throughput)
	}
	dm, nm := stats.Mean(degRet), stats.Mean(noRet)
	fmt.Fprintf(outw, "\nmean throughput retained under faults: degradation %.1f%%, strawman %.1f%% (%+.1f points)\n",
		100*dm, 100*nm, 100*(dm-nm))
	if dm <= nm {
		fmt.Fprintln(outw, "WARNING: graceful degradation did not beat the no-degradation strawman")
	}
	return nil
}
