package main

import (
	"fmt"
	"math"

	mc "morphcache"
)

// sampledTolPct is the CI-gated reconstruction-error bound: the sampled
// throughput of every validated (mix, policy) pair must land within this
// percentage of the full run's. The CI `sampled` job greps the experiment's
// output for the WARNING lines printed on violation.
const sampledTolPct = 3.0

// sampledExp validates sampled simulation against full runs: for every
// Table 5 mix (the -quick subset under -quick) it runs MorphCache and one
// static topology both ways with the default sampling parameters, then
// reports the throughput reconstruction error, the worst per-core IPC
// error, and the phase/cost structure. The experiment always compares
// against true full runs, even under -sampled.
func sampledExp(cfg mc.Config, quick bool) error {
	full := cfg
	full.Sampled = nil
	sopts := mc.DefaultSampledConfig()
	scfg := full
	scfg.Sampled = &sopts

	policies := []string{"morph", "(4:4:1)"}
	mixes := mixNames(quick)
	var specs []mc.RunSpec
	for _, mn := range mixes {
		w := mc.Mix(mn)
		for _, pol := range policies {
			specs = append(specs,
				mc.RunSpec{Policy: pol, Workload: w, Config: &full},
				mc.RunSpec{Policy: pol, Workload: w, Config: &scfg})
		}
	}
	if err := prefetch(cfg, specs); err != nil {
		return err
	}

	fmt.Fprintf(outw, "Sampled simulation vs full runs (defaults: %s; gate |err| <= %.1f%%).\n",
		sopts.Fingerprint(), sampledTolPct)
	fmt.Fprintf(outw, "%-10s %-10s %10s %10s %8s %8s %7s %7s %8s\n",
		"mix", "policy", "full", "sampled", "err%", "coreMax%", "phases", "simEp", "speedup")
	var warnings int
	maxErr, sumSpeedup := 0.0, 0.0
	rows := 0
	for _, mn := range mixes {
		w := mc.Mix(mn)
		for _, pol := range policies {
			f, err := specResult(cfg, mc.RunSpec{Policy: pol, Workload: w, Config: &full})
			if err != nil {
				return err
			}
			s, err := specResult(cfg, mc.RunSpec{Policy: pol, Workload: w, Config: &scfg})
			if err != nil {
				return err
			}
			rep := s.SampledReport
			if rep == nil {
				return fmt.Errorf("sampled: run %s %s returned no SampledReport", pol, mn)
			}
			errPct := 100 * (s.Throughput - f.Throughput) / f.Throughput
			coreMax := 0.0
			for c := range f.PerCoreIPC {
				if f.PerCoreIPC[c] <= 0 {
					continue
				}
				if d := 100 * math.Abs(s.PerCoreIPC[c]-f.PerCoreIPC[c]) / f.PerCoreIPC[c]; d > coreMax {
					coreMax = d
				}
			}
			fmt.Fprintf(outw, "%-10s %-10s %10.4f %10.4f %+7.2f%% %7.2f%% %7d %7d %7.1fx\n",
				mn, pol, f.Throughput, s.Throughput, errPct, coreMax,
				len(rep.Phases), rep.SimulatedEpochs, rep.Speedup)
			if math.Abs(errPct) > maxErr {
				maxErr = math.Abs(errPct)
			}
			sumSpeedup += rep.Speedup
			rows++
			if math.Abs(errPct) > sampledTolPct {
				warnings++
				fmt.Fprintf(outw, "WARNING: sampled reconstruction error %+.2f%% exceeds %.1f%% on %s %s\n",
					errPct, sampledTolPct, mn, pol)
			}
		}
	}
	fmt.Fprintf(outw, "max |throughput err| %.2f%% (gate %.1f%%), mean simulated-cycle speedup %.1fx\n",
		maxErr, sampledTolPct, sumSpeedup/float64(rows))
	fmt.Fprintln(outw, "Note: at this epoch count the default (accuracy-first) sampling parameters")
	fmt.Fprintln(outw, "simulate about as many window epochs as the full run has; the speedup grows")
	fmt.Fprintln(outw, "with Epochs/MaxPhases and with WindowCycles truncation (DESIGN.md §13).")
	if warnings > 0 {
		fmt.Fprintf(outw, "%d pair(s) exceeded the reconstruction-error gate\n", warnings)
	}
	return nil
}
