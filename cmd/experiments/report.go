package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	mc "morphcache"

	"morphcache/internal/telemetry"
)

// The structured report (-out json|csv) is assembled as a side effect of
// the memo caches: every facade simulation an experiment performs is
// recorded exactly once, keyed by its memo fingerprint, together with each
// experiment's text rendering. Runs are emitted sorted by key, so the
// document is byte-identical at every -jobs value. Experiments that build
// custom hierarchies outside the facade (sens, xbar, table2, fig5, energy)
// contribute through their text sections only.

// reportSchema versions the JSON document; bump on any field change.
const reportSchema = "morphcache-report/v1"

// reportDoc is the -out json document.
type reportDoc struct {
	Schema      string             `json:"schema"`
	Config      reportConfig       `json:"config"`
	Experiments []reportExperiment `json:"experiments"`
	Runs        []reportRun        `json:"runs"`
	Solo        []reportSolo       `json:"solo,omitempty"`
}

// reportConfig summarizes the invocation's base configuration.
type reportConfig struct {
	Cores        int    `json:"cores"`
	Scale        int    `json:"scale"`
	Epochs       int    `json:"epochs"`
	WarmupEpochs int    `json:"warmup_epochs"`
	EpochCycles  uint64 `json:"epoch_cycles"`
	Seed         uint64 `json:"seed"`
	Quick        bool   `json:"quick,omitempty"`
}

// reportExperiment is one experiment's text rendering.
type reportExperiment struct {
	ID    string `json:"id"`
	About string `json:"about"`
	Text  string `json:"text"`
}

// reportRun is one facade simulation with its telemetry.
type reportRun struct {
	// Key is the memo fingerprint (policy, workload, and every
	// result-affecting configuration field).
	Key              string         `json:"key"`
	Policy           string         `json:"policy"`
	Workload         string         `json:"workload"`
	Throughput       float64        `json:"throughput"`
	PerCoreIPC       []float64      `json:"per_core_ipc"`
	EpochThroughputs []float64      `json:"epoch_throughputs"`
	EpochTopologies  []string       `json:"epoch_topologies,omitempty"`
	Reconfigurations int            `json:"reconfigurations"`
	AsymmetricSteps  int            `json:"asymmetric_steps"`
	Telemetry        *telemetry.Log `json:"telemetry,omitempty"`
	// Sampled is the reconstruction report of a sampled run (absent for
	// full runs, so documents without sampled runs — the committed goldens
	// among them — are byte-identical to prior releases).
	Sampled *mc.SampledReport `json:"sampled,omitempty"`
	// Bandit is the decision report of a bandit meta-policy run (absent
	// otherwise, preserving the goldens the same way). The experiment
	// attaches the regret series to the shared report before the document
	// encodes, so it appears here too.
	Bandit *mc.BanditReport `json:"bandit,omitempty"`
}

// reportSolo is one alone-IPC reference measurement.
type reportSolo struct {
	Key       string  `json:"key"`
	Benchmark string  `json:"benchmark"`
	IPC       float64 `json:"ipc"`
}

var (
	reportMu    sync.Mutex
	reportOn    bool
	reportCfg   reportConfig
	reportExps  []reportExperiment
	reportRuns  map[string]reportRun
	reportSolos map[string]reportSolo
)

// reportReset clears all collection state (telemetry off).
func reportReset() {
	reportMu.Lock()
	defer reportMu.Unlock()
	reportOn = false
	reportCfg = reportConfig{}
	reportExps = nil
	reportRuns = nil
	reportSolos = nil
}

// reportInit switches collection on for this invocation.
func reportInit(cfg mc.Config, quick bool) {
	reportMu.Lock()
	defer reportMu.Unlock()
	reportOn = true
	reportCfg = reportConfig{
		Cores:        cfg.Cores,
		Scale:        cfg.Scale,
		Epochs:       cfg.Epochs,
		WarmupEpochs: cfg.WarmupEpochs,
		EpochCycles:  cfg.EpochCycles,
		Seed:         cfg.Seed,
		Quick:        quick,
	}
	reportExps = nil
	reportRuns = map[string]reportRun{}
	reportSolos = map[string]reportSolo{}
}

// reportAddExperiment appends one experiment's captured text section.
func reportAddExperiment(id, about, text string) {
	reportMu.Lock()
	defer reportMu.Unlock()
	if !reportOn {
		return
	}
	reportExps = append(reportExps, reportExperiment{ID: id, About: about, Text: text})
}

// reportRecordRun records one facade simulation under its memo key (first
// store wins; later memo hits are the same result). Called from the memo
// layer, possibly from worker goroutines.
func reportRecordRun(key string, s mc.RunSpec, res *mc.Result) {
	reportMu.Lock()
	defer reportMu.Unlock()
	if !reportOn || reportRuns == nil {
		return
	}
	if _, dup := reportRuns[key]; dup {
		return
	}
	reportRuns[key] = reportRun{
		Key:              key,
		Policy:           res.Policy,
		Workload:         s.Workload.String(),
		Throughput:       res.Throughput,
		PerCoreIPC:       res.PerCoreIPC,
		EpochThroughputs: res.EpochThroughputs,
		EpochTopologies:  res.EpochTopologies,
		Reconfigurations: res.Reconfigurations,
		AsymmetricSteps:  res.AsymmetricSteps,
		Telemetry:        res.Telemetry,
		Sampled:          res.SampledReport,
		Bandit:           res.BanditReport,
	}
}

// reportRecordSolo records one alone-IPC reference under its memo key.
func reportRecordSolo(key, bench string, ipc float64) {
	reportMu.Lock()
	defer reportMu.Unlock()
	if !reportOn || reportSolos == nil {
		return
	}
	reportSolos[key] = reportSolo{Key: key, Benchmark: bench, IPC: ipc}
}

// reportBuild assembles the document with runs and solos sorted by key.
func reportBuild() *reportDoc {
	reportMu.Lock()
	defer reportMu.Unlock()
	doc := &reportDoc{
		Schema:      reportSchema,
		Config:      reportCfg,
		Experiments: reportExps,
		Runs:        []reportRun{},
	}
	keys := make([]string, 0, len(reportRuns))
	for k := range reportRuns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		doc.Runs = append(doc.Runs, reportRuns[k])
	}
	skeys := make([]string, 0, len(reportSolos))
	for k := range reportSolos {
		skeys = append(skeys, k)
	}
	sort.Strings(skeys)
	for _, k := range skeys {
		doc.Solo = append(doc.Solo, reportSolos[k])
	}
	return doc
}

// reportWriteJSON emits the full report document.
func reportWriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reportBuild())
}

// reportWriteCSV emits the flat per-epoch form: every run's telemetry rows
// (schema of telemetry.CSVHeader) prefixed with the run's memo key.
// Reconfiguration events and experiment text have no flat rendering — use
// -out json when they matter.
func reportWriteCSV(w io.Writer) error {
	doc := reportBuild()
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"run"}, telemetry.CSVHeader()...)); err != nil {
		return err
	}
	for _, r := range doc.Runs {
		if r.Telemetry == nil {
			continue
		}
		for _, rec := range r.Telemetry.CSVRecords() {
			if err := cw.Write(append([]string{r.Key}, rec...)); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// epochLogSchema versions the -epochlog document.
const epochLogSchema = "morphcache-epochlog/v1"

// epochLogDoc is the -epochlog file: just the per-run telemetry.
type epochLogDoc struct {
	Schema string        `json:"schema"`
	Runs   []epochLogRun `json:"runs"`
}

type epochLogRun struct {
	Key       string         `json:"key"`
	Telemetry *telemetry.Log `json:"telemetry"`
}

// reportWriteEpochLog writes the per-run epoch logs to path.
func reportWriteEpochLog(path string) error {
	doc := reportBuild()
	out := epochLogDoc{Schema: epochLogSchema, Runs: []epochLogRun{}}
	for _, r := range doc.Runs {
		if r.Telemetry == nil {
			continue
		}
		out.Runs = append(out.Runs, epochLogRun{Key: r.Key, Telemetry: r.Telemetry})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return fmt.Errorf("encode %s: %w", path, err)
	}
	return f.Close()
}
