package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/stats"
)

// fig13 reproduces Fig. 13: MorphCache throughput against five static
// topologies on the 12 multiprogrammed mixes, normalized to the all-shared
// baseline. Paper averages: MorphCache +29.9% over (16:1:1), +29.3% over
// (1:1:16), +19.9% over (4:4:1), +18.8% over (8:2:1), +27.9% over (1:16:1);
// mixes 1-3, 6-7 and 10 (uniformly large ACFs) gain least.
// fig13Jobs enumerates the sweep's independent runs: every mix under every
// static topology plus MorphCache (fig14/fig15 reuse the same runs).
func fig13Jobs(quick bool) []mc.RunSpec {
	var specs []mc.RunSpec
	for _, mn := range mixNames(quick) {
		w := mc.Mix(mn)
		for _, s := range staticSpecs {
			specs = append(specs, mc.RunSpec{Policy: s, Workload: w})
		}
		specs = append(specs, mc.RunSpec{Policy: "morph", Workload: w})
	}
	return specs
}

func fig13(cfg mc.Config, quick bool) error {
	if err := prefetch(cfg, fig13Jobs(quick)); err != nil {
		return err
	}
	cols := append(append([]string{}, staticSpecs...), "morph")
	header("mix", cols)
	gains := map[string][]float64{}
	for _, mn := range mixNames(quick) {
		w := mc.Mix(mn)
		vals := make([]float64, 0, len(cols))
		var base float64
		for _, s := range staticSpecs {
			r, err := staticResult(cfg, s, w)
			if err != nil {
				return err
			}
			if s == "(16:1:1)" {
				base = r.Throughput
			}
			vals = append(vals, r.Throughput)
		}
		m, err := morphResult(cfg, w)
		if err != nil {
			return err
		}
		vals = append(vals, m.Throughput)
		row(mn, vals, base)
		for i, s := range staticSpecs {
			gains[s] = append(gains[s], m.Throughput/vals[i])
		}
	}
	fmt.Fprintln(outw, "\naverage MorphCache gain over each static (measured | paper):")
	paper := map[string]string{
		"(16:1:1)": "+29.9%", "(1:1:16)": "+29.3%", "(4:4:1)": "+19.9%",
		"(8:2:1)": "+18.8%", "(1:16:1)": "+27.9%",
	}
	for _, s := range staticSpecs {
		fmt.Fprintf(outw, "  vs %-9s %+6.1f%% | %s\n", s, 100*(mean(gains[s])-1), paper[s])
	}
	return nil
}

// fig14 reproduces Fig. 14: weighted speedup (WS) and fair speedup (FS) of
// MorphCache against the baseline and the best static topology per metric.
// Paper: +32.8% WS over baseline, +12.3% over the best WS static (2:2:4);
// +29.7% FS over baseline, +10.8% over the best FS static (4:4:1).
func fig14(cfg mc.Config, quick bool) error {
	specs := append(append([]string{}, staticSpecs...), "(2:2:4)")
	jobs := fig13Jobs(quick)
	for _, mn := range mixNames(quick) {
		jobs = append(jobs, mc.RunSpec{Policy: "(2:2:4)", Workload: mc.Mix(mn)})
	}
	if err := prefetch(cfg, jobs); err != nil {
		return err
	}
	if err := prefetchSolo(cfg, mixNames(quick)); err != nil {
		return err
	}
	header("mix", []string{"WS-base", "WS-best", "FS-base", "FS-best"})
	var wsBase, wsBest, fsBase, fsBest []float64
	for _, mn := range mixNames(quick) {
		w := mc.Mix(mn)
		alone, err := soloIPCs(cfg, mn)
		if err != nil {
			return err
		}
		m, err := morphResult(cfg, w)
		if err != nil {
			return err
		}
		mws := mc.WeightedSpeedup(m, alone)
		mfs := mc.FairSpeedup(m, alone)
		var baseWS, baseFS, bestWS, bestFS float64
		for _, s := range specs {
			r, err := staticResult(cfg, s, w)
			if err != nil {
				return err
			}
			ws := mc.WeightedSpeedup(r, alone)
			fs := mc.FairSpeedup(r, alone)
			if s == "(16:1:1)" {
				baseWS, baseFS = ws, fs
			}
			if ws > bestWS {
				bestWS = ws
			}
			if fs > bestFS {
				bestFS = fs
			}
		}
		fmt.Fprintf(outw, "%-14s %10.3f %10.3f %10.3f %10.3f\n", mn, mws/baseWS, mws/bestWS, mfs/baseFS, mfs/bestFS)
		wsBase = append(wsBase, mws/baseWS)
		wsBest = append(wsBest, mws/bestWS)
		fsBase = append(fsBase, mfs/baseFS)
		fsBest = append(fsBest, mfs/bestFS)
	}
	fmt.Fprintf(outw, "\naverages (measured | paper):\n")
	fmt.Fprintf(outw, "  WS vs baseline:    %+6.1f%% | +32.8%%\n", 100*(mean(wsBase)-1))
	fmt.Fprintf(outw, "  WS vs best static: %+6.1f%% | +12.3%%\n", 100*(mean(wsBest)-1))
	fmt.Fprintf(outw, "  FS vs baseline:    %+6.1f%% | +29.7%%\n", 100*(mean(fsBase)-1))
	fmt.Fprintf(outw, "  FS vs best static: %+6.1f%% | +10.8%%\n", 100*(mean(fsBest)-1))
	return nil
}

// fig15 reproduces Fig. 15: MorphCache against the ideal offline scheme
// that picks the best static topology for every epoch with perfect
// foresight. Paper: MorphCache reaches ≈97% of the ideal scheme.
func fig15(cfg mc.Config, quick bool) error {
	if err := prefetch(cfg, fig13Jobs(quick)); err != nil {
		return err
	}
	header("mix", []string{"morph", "ideal", "ratio"})
	var ratios []float64
	for _, mn := range mixNames(quick) {
		w := mc.Mix(mn)
		var results []*mc.Result
		var base float64
		for _, s := range staticSpecs {
			r, err := staticResult(cfg, s, w)
			if err != nil {
				return err
			}
			if s == "(16:1:1)" {
				base = r.Throughput
			}
			results = append(results, r)
		}
		_, _, ideal, err := mc.IdealOffline(results)
		if err != nil {
			return err
		}
		m, err := morphResult(cfg, w)
		if err != nil {
			return err
		}
		fmt.Fprintf(outw, "%-14s %10.3f %10.3f %10.3f\n", mn, m.Throughput/base, ideal/base, m.Throughput/ideal)
		ratios = append(ratios, m.Throughput/ideal)
	}
	fmt.Fprintf(outw, "\naverage MorphCache / ideal-offline: %.1f%% (paper: ~97%%)\n", 100*mean(ratios))
	fmt.Fprintf(outw, "spread of per-mix ratios: min %.3f max %.3f\n",
		stats.Min(ratios), stats.Max(ratios))
	return nil
}
