package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/bus"
	"morphcache/internal/topology"
)

// table2 reproduces Tables 1–2 and the §3.2 interconnect characterization
// from the analytical physical model: arbiter counts and area, worst-case
// request/grant path delays from the Fig. 12 floorplan geometry, the
// maximum bus frequency, and the CPU-cycle overhead of a merged access.
// It also exercises the functional arbiter tree for a round-robin fairness
// spot check.
func table2(_ mc.Config, _ bool) error {
	rep := bus.Characterize(bus.DefaultTech(), bus.DefaultFloorplan())

	fmt.Fprintln(outw, "segmented bus characterization (measured | paper):")
	fmt.Fprintf(outw, "%-34s %18s %18s\n", "", "L2 bus (per side)", "L3 bus")
	fmt.Fprintf(outw, "%-34s %12d | 7  %13d | 15\n", "arbiters", rep.L2.NumArbiters, rep.L3.NumArbiters)
	fmt.Fprintf(outw, "%-34s %9d | 3     %10d | 4\n", "tree levels", rep.L2.Levels, rep.L3.Levels)
	fmt.Fprintf(outw, "%-34s %8.1f | 160.5 %8.1f | 343.9\n", "total arbiter area (um^2)", rep.L2.TotalAreaUM2, rep.L3.TotalAreaUM2)
	fmt.Fprintf(outw, "%-34s %8.2f | 0.31  %8.2f | 0.40\n", "request wire delay (ns)", rep.L2.ReqWireNs, rep.L3.ReqWireNs)
	fmt.Fprintf(outw, "%-34s %8.2f | 0.38  %8.2f | 0.49\n", "request logic delay (ns)", rep.L2.ReqLogicNs, rep.L3.ReqLogicNs)
	fmt.Fprintf(outw, "%-34s %8.2f | 0.32  %8.2f | 0.32\n", "grant logic delay (ns)", rep.L2.GntLogicNs, rep.L3.GntLogicNs)
	fmt.Fprintf(outw, "%-34s %8.2f | 0.31  %8.2f | 0.40\n", "grant wire delay (ns)", rep.L2.GntWireNs, rep.L3.GntWireNs)
	fmt.Fprintf(outw, "\nmax single-cycle path: %.2f ns (paper: 0.89 ns)\n", rep.MaxPathNs)
	fmt.Fprintf(outw, "max bus frequency:     %.2f GHz (paper: 1.12 GHz); operating point %.0f GHz\n", rep.MaxBusGHz, rep.ChosenBusGHz)
	fmt.Fprintf(outw, "bus transaction:       %d bus cycles (paper: 3)\n", rep.TransactionBusCycles)
	fmt.Fprintf(outw, "merged-access overhead: %d CPU cycles unpipelined, %d pipelined (paper: 15 / 10)\n",
		rep.OverheadCPUCycles, rep.PipelinedOverheadCPUCycles)

	// Functional spot check: a 4-shared segment group arbitrates round-robin.
	tree := bus.NewArbiterTree(8)
	g, err := topology.FromGroups(8, [][]int{{0, 1, 2, 3}, {4, 5}, {6}, {7}})
	if err != nil {
		return err
	}
	if err := tree.Configure(g); err != nil {
		return err
	}
	req := []bool{true, true, true, true, true, true, false, false}
	grantCounts := make([]int, 8)
	for i := 0; i < 64; i++ {
		for _, winner := range tree.Arbitrate(req) {
			if winner >= 0 {
				grantCounts[winner]++
			}
		}
	}
	fmt.Fprintf(outw, "\narbiter-tree fairness over 64 rounds, groups (4,2,1,1), requesters 0-5: grants %v\n", grantCounts[:6])
	fmt.Fprintln(outw, "(each 4-shared requester should get ~16, each 2-shared ~32)")
	return nil
}
