package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/sim"
	"morphcache/internal/workload"
)

// Results are memoized per (config, policy, workload) so that experiments
// sharing runs (fig13/fig14/fig15/fig17) do not recompute them within one
// invocation.
var memo = map[string]*mc.Result{}

func memoKey(cfg mc.Config, policy string, w mc.Workload) string {
	return fmt.Sprintf("%s|%s|%d|%d|%d|%d", policy, w, cfg.Cores, cfg.Scale, cfg.Epochs, cfg.Seed)
}

func staticResult(cfg mc.Config, spec string, w mc.Workload) (*mc.Result, error) {
	k := memoKey(cfg, spec, w)
	if r, ok := memo[k]; ok {
		return r, nil
	}
	r, err := mc.RunStatic(cfg, spec, w)
	if err != nil {
		return nil, err
	}
	memo[k] = r
	return r, nil
}

func morphResult(cfg mc.Config, w mc.Workload) (*mc.Result, error) {
	k := memoKey(cfg, "morph", w)
	if r, ok := memo[k]; ok {
		return r, nil
	}
	r, err := mc.RunMorphCache(cfg, w)
	if err != nil {
		return nil, err
	}
	memo[k] = r
	return r, nil
}

func pippResult(cfg mc.Config, w mc.Workload) (*mc.Result, error) {
	k := memoKey(cfg, "pipp", w)
	if r, ok := memo[k]; ok {
		return r, nil
	}
	r, err := mc.RunPIPP(cfg, w)
	if err != nil {
		return nil, err
	}
	memo[k] = r
	return r, nil
}

func dsrResult(cfg mc.Config, w mc.Workload) (*mc.Result, error) {
	k := memoKey(cfg, "dsr", w)
	if r, ok := memo[k]; ok {
		return r, nil
	}
	r, err := mc.RunDSR(cfg, w)
	if err != nil {
		return nil, err
	}
	memo[k] = r
	return r, nil
}

// soloMemo caches per-benchmark alone-IPC references (benchmarks repeat
// across mixes, so the cache is keyed by benchmark, not by mix).
var soloMemo = map[string]float64{}

func soloIPCs(cfg mc.Config, mixName string) ([]float64, error) {
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(mix.Benchmarks))
	for i, b := range mix.Benchmarks {
		k := fmt.Sprintf("%s|%d|%d", b.Name, cfg.Scale, cfg.Seed)
		if v, ok := soloMemo[k]; ok {
			out[i] = v
			continue
		}
		gcfg := workload.ScaledGenConfig(cfg.Scale)
		if cfg.Scale <= 1 {
			gcfg = workload.DefaultGenConfig()
		}
		v, err := sim.SoloIPC(simConfigOf(cfg), cfg.Params(), b, gcfg)
		if err != nil {
			return nil, err
		}
		soloMemo[k] = v
		out[i] = v
	}
	return out, nil
}

// simConfigOf mirrors Config.simConfig (unexported in the facade).
func simConfigOf(c mc.Config) sim.Config {
	return sim.Config{
		EpochCycles:  c.EpochCycles,
		Epochs:       c.Epochs,
		WarmupEpochs: c.WarmupEpochs,
		GapInstr:     8,
		IssueWidth:   4,
		Seed:         c.Seed,
	}
}
