package main

import (
	"fmt"
	"sort"
	"sync"

	mc "morphcache"

	"morphcache/internal/core"
	"morphcache/internal/runner"
	"morphcache/internal/sim"
	"morphcache/internal/workload"
)

// Results are memoized per (config, policy, workload) so that experiments
// sharing runs (fig13/fig14/fig15/fig17) do not recompute them within one
// invocation. The memo is written concurrently by the worker pool, so all
// access goes through memoMu; everything else the jobs can reach
// (workload profiles, mix tables) is read-only after package init.
var (
	memoMu sync.Mutex
	memo   = map[string]*mc.Result{}
)

// specKey fingerprints one job: the policy (with effective controller
// options for morph jobs), the workload, and every configuration field that
// changes results. Seeds, epoch counts AND epoch lengths are all part of
// the key — the interval experiment varies EpochCycles, the robustness
// experiment varies Seed, and the QoS/extension experiments vary the
// controller options, and none of those runs may alias another.
func specKey(cfg mc.Config, s mc.RunSpec) string {
	c := cfg
	if s.Config != nil {
		c = *s.Config
	}
	policy := s.Policy
	if s.Policy == "morph" || s.Policy == "morph-nodegrade" {
		opts := c.Morph
		if s.Morph != nil {
			opts = *s.Morph
		}
		opts.Trace = nil // diagnostics sink, not part of the result
		policy = fmt.Sprintf("%s%+v", s.Policy, opts)
	}
	key := fmt.Sprintf("%s|%s|%d|%d|%d|%d|%d|%d",
		policy, s.Workload, c.Cores, c.Scale, c.Epochs, c.WarmupEpochs, c.EpochCycles, c.Seed)
	// Fault plans change results, so they are part of the key — but only
	// when present, keeping every fault-free key (and thus the golden-report
	// run IDs) byte-identical to prior releases.
	if c.Faults != nil {
		key += "|faults:" + c.Faults.Fingerprint()
	}
	// Sampling changes results too (the run is a reconstruction), so a
	// sampled run must never alias its full-run twin. Present-only, like
	// faults, so fault-free full-run keys stay byte-identical to prior
	// releases.
	if c.Sampled != nil {
		key += "|sampled:" + c.Sampled.Fingerprint()
	}
	// Bandit runs are stitched arm schedules; every option (arms, strategy,
	// window size, ...) changes the schedule and thus the result. Present-
	// only, like faults and sampled, so bandit-free keys stay byte-identical
	// to prior releases.
	if c.Bandit != nil {
		key += "|bandit:" + c.Bandit.Fingerprint()
	}
	return key
}

// prefetch computes every not-yet-memoized spec across the worker pool and
// stores the results. Experiments call it with their full job list up
// front, then read rows back through the accessors below (all memo hits),
// so report output is byte-identical to a sequential run at any -jobs
// count. Progress goes to stderr only.
func prefetch(cfg mc.Config, specs []mc.RunSpec) error {
	var missing []mc.RunSpec
	seen := map[string]bool{}
	memoMu.Lock()
	for _, s := range specs {
		k := specKey(cfg, s)
		if memo[k] != nil || seen[k] {
			continue
		}
		seen[k] = true
		missing = append(missing, s)
	}
	memoMu.Unlock()
	if len(missing) == 0 {
		return nil
	}
	results, err := mc.RunBatch(cfg, missing, mc.BatchOptions{
		Context:  runCtx,
		Workers:  jobCount(),
		Started:  batchStarted,
		Progress: batchProgress,
		Observe:  batchObserve(),
	})
	if err != nil {
		return err
	}
	memoMu.Lock()
	for i, s := range missing {
		memo[specKey(cfg, s)] = results[i]
	}
	memoMu.Unlock()
	for i, s := range missing {
		reportRecordRun(specKey(cfg, s), s, results[i])
	}
	return nil
}

// specResult returns one spec's result, computing it (sequentially) on a
// memo miss — experiments that prefetched correctly never miss.
func specResult(cfg mc.Config, s mc.RunSpec) (*mc.Result, error) {
	k := specKey(cfg, s)
	memoMu.Lock()
	r := memo[k]
	memoMu.Unlock()
	if r != nil {
		return r, nil
	}
	results, err := mc.RunBatch(cfg, []mc.RunSpec{s}, mc.BatchOptions{
		Context: runCtx,
		Workers: 1,
		Observe: batchObserve(),
	})
	if err != nil {
		return nil, err
	}
	memoMu.Lock()
	memo[k] = results[0]
	memoMu.Unlock()
	reportRecordRun(k, s, results[0])
	return results[0], nil
}

func staticResult(cfg mc.Config, spec string, w mc.Workload) (*mc.Result, error) {
	return specResult(cfg, mc.RunSpec{Policy: spec, Workload: w})
}

func morphResult(cfg mc.Config, w mc.Workload) (*mc.Result, error) {
	return specResult(cfg, mc.RunSpec{Policy: "morph", Workload: w})
}

// morphOptResult is morphResult under explicit controller options (QoS,
// §5.5 extensions).
func morphOptResult(cfg mc.Config, opts core.Options, w mc.Workload) (*mc.Result, error) {
	return specResult(cfg, mc.RunSpec{Policy: "morph", Workload: w, Morph: &opts})
}

func pippResult(cfg mc.Config, w mc.Workload) (*mc.Result, error) {
	return specResult(cfg, mc.RunSpec{Policy: "pipp", Workload: w})
}

func dsrResult(cfg mc.Config, w mc.Workload) (*mc.Result, error) {
	return specResult(cfg, mc.RunSpec{Policy: "dsr", Workload: w})
}

// soloMemo caches per-benchmark alone-IPC references (benchmarks repeat
// across mixes, so the cache is keyed by benchmark, not by mix). Guarded by
// soloMu: the solo prefetch fills it from the worker pool.
var (
	soloMu   sync.Mutex
	soloMemo = map[string]float64{}
)

func soloKey(cfg mc.Config, bench string) string {
	return fmt.Sprintf("%s|%d|%d|%d|%d|%d", bench, cfg.Scale, cfg.Epochs, cfg.WarmupEpochs, cfg.EpochCycles, cfg.Seed)
}

// prefetchSolo computes the alone-IPC references of every benchmark that
// appears in the given mixes, fanned out across the worker pool. Each job
// runs one benchmark on its own single-core hierarchy — nothing shared.
func prefetchSolo(cfg mc.Config, mixNames []string) error {
	seen := map[string]*workload.Profile{}
	for _, mn := range mixNames {
		mix, err := workload.MixByName(mn)
		if err != nil {
			return err
		}
		for _, b := range mix.Benchmarks {
			k := soloKey(cfg, b.Name)
			soloMu.Lock()
			_, have := soloMemo[k]
			soloMu.Unlock()
			if !have && seen[k] == nil {
				seen[k] = b
			}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic job order
	_, err := runner.Map(runCtx, keys, runner.Options{Workers: jobCount(), Progress: runnerProgress}, func(_ int, k string) (struct{}, error) {
		b := seen[k]
		v, err := sim.SoloIPC(simConfigOf(cfg), cfg.Params(), b, genConfigOf(cfg))
		if err != nil {
			return struct{}{}, err
		}
		soloMu.Lock()
		soloMemo[k] = v
		soloMu.Unlock()
		reportRecordSolo(k, b.Name, v)
		return struct{}{}, nil
	})
	return err
}

func soloIPCs(cfg mc.Config, mixName string) ([]float64, error) {
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(mix.Benchmarks))
	for i, b := range mix.Benchmarks {
		k := soloKey(cfg, b.Name)
		soloMu.Lock()
		v, ok := soloMemo[k]
		soloMu.Unlock()
		if !ok {
			v, err = sim.SoloIPC(simConfigOf(cfg), cfg.Params(), b, genConfigOf(cfg))
			if err != nil {
				return nil, err
			}
			soloMu.Lock()
			soloMemo[k] = v
			soloMu.Unlock()
			reportRecordSolo(k, b.Name, v)
		}
		out[i] = v
	}
	return out, nil
}

// genConfigOf mirrors Config.genConfig (unexported in the facade).
func genConfigOf(cfg mc.Config) workload.GenConfig {
	if cfg.Scale <= 1 {
		return workload.DefaultGenConfig()
	}
	return workload.ScaledGenConfig(cfg.Scale)
}

// simConfigOf mirrors Config.simConfig (unexported in the facade).
func simConfigOf(c mc.Config) sim.Config {
	return sim.Config{
		EpochCycles:  c.EpochCycles,
		Epochs:       c.Epochs,
		WarmupEpochs: c.WarmupEpochs,
		GapInstr:     8,
		IssueWidth:   4,
		Seed:         c.Seed,
		Faults:       c.Faults,
	}
}
